// Package repro is a Go implementation of density-biased sampling for
// approximate data mining, reproducing "An Efficient Approximation Scheme
// for Data Mining Tasks" (Kollios, Gunopulos, Koudas, Berchtold — ICDE
// 2001).
//
// The library reduces a large multidimensional dataset to a small sample
// whose composition is tuned to the analysis task: kernel density
// estimation (one dataset pass) yields a density f, and each point x is
// kept with probability proportional to f(x)^a. Positive exponents
// concentrate the sample on dense regions (robust cluster detection under
// noise); exponents in (-1, 0) lift small and sparse clusters without
// losing the dense ones; strongly negative exponents hunt outliers.
// Standard algorithms — a CURE-style hierarchical clusterer, weighted
// k-means/k-medoids, distance-based DB(p,k) outlier detection — then run
// on the sample.
//
// The top-level package is a facade over the internal subsystems:
//
//	internal/core        density-biased sampling (the paper's algorithm)
//	internal/kde         kernel density estimation
//	internal/cure        hierarchical clustering with representatives
//	internal/birch       BIRCH (comparison system)
//	internal/kmeans      weighted k-means / k-medoids
//	internal/outlier     DB(p,k) outlier detection, exact + approximate
//	internal/gridsample  Palmer-Faloutsos grid sampling (baseline)
//	internal/synth       synthetic workload generators
//	internal/experiments reproduction of every table/figure (see DESIGN.md)
//
// A minimal end-to-end flow:
//
//	ds, _ := repro.FromPoints(points)
//	est, _ := repro.BuildEstimator(ds, repro.EstimatorOptions{}, rng)
//	s, _ := repro.BiasedSample(ds, est, repro.SampleOptions{Alpha: 1, Size: 1000}, rng)
//	clusters, _ := repro.Cluster(s.Points(), repro.ClusterOptions{K: 10})
//
// See the examples/ directory for runnable programs and EXPERIMENTS.md
// for the paper-versus-measured record.
package repro
