// Command dbsample draws a sample from a binary dataset file using
// density-biased sampling (the paper's algorithm), uniform Bernoulli
// sampling, or the Palmer-Faloutsos grid baseline, and writes the sample
// as CSV (point coordinates, with the inclusion weight in the last column
// for the biased methods).
//
// Usage:
//
//	dbsample -in data.dbs -method biased -alpha 1 -size 2000 -out sample.csv
//	dbsample -in data.dbs -method uniform -size 2000 -out sample.csv
//	dbsample -in data.dbs -method grid -alpha -0.5 -size 2000 -out sample.csv
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"syscall"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/gridsample"
	"repro/internal/kde"
	"repro/internal/obs"
	"repro/internal/stats"
)

func main() {
	var (
		in      = flag.String("in", "", "input dataset (binary format); required")
		out     = flag.String("out", "", "output CSV (default stdout)")
		method  = flag.String("method", "biased", "sampling method: biased|uniform|grid")
		alpha   = flag.Float64("alpha", 1, "bias exponent a (biased) or e (grid)")
		size    = flag.Int("size", 1000, "expected sample size b")
		kernels = flag.Int("kernels", kde.DefaultNumKernels, "number of kernels (biased)")
		kernel  = flag.String("kernel", "epanechnikov", "kernel function (biased)")
		onePass = flag.Bool("onepass", false, "use the integrated one-pass variant (biased)")
		prec    = flag.String("precision", "float64", "density evaluation arithmetic: float64 (exact contract) | float32 (faster, approximate)")
		par     = flag.Int("p", 0, "worker parallelism: 0 = all CPUs, 1 = serial (same sample either way)")
		seed    = flag.Uint64("seed", 1, "random seed")
		obsf    obs.Flags
	)
	obsf.Register(flag.CommandLine)
	flag.Parse()
	if *in == "" {
		fatal("missing -in")
	}
	run, err := obsf.Start()
	if err != nil {
		run.Close()
		fatal("%v", err)
	}
	defer run.Close()
	// Ctrl-C / SIGTERM cancel the passes at block granularity instead of
	// leaving a long scan running to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	precision, err := parsePrecision(*prec)
	if err != nil {
		fatal("%v", err)
	}
	// Open sniffs the format: DBS1 files decode block-by-block, DBS2
	// segment files are memory-mapped and scanned zero-copy.
	ds, err := dataset.Open(*in)
	if err != nil {
		fatal("%v", err)
	}
	if c, ok := ds.(io.Closer); ok {
		defer c.Close()
	}
	rng := stats.NewRNG(*seed)

	var w *bufio.Writer
	if *out == "" {
		w = bufio.NewWriter(os.Stdout)
	} else {
		f, err := os.Create(*out)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	writeRow := func(p geom.Point, weight float64, withWeight bool) {
		for i, v := range p {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		if withWeight {
			w.WriteByte(',')
			w.WriteString(strconv.FormatFloat(weight, 'g', -1, 64))
		}
		w.WriteByte('\n')
	}

	switch *method {
	case "biased":
		kern := kde.KernelByName(*kernel)
		if kern == nil {
			fatal("unknown kernel %q", *kernel)
		}
		est, err := kde.Build(ds, kde.Options{
			NumKernels:  *kernels,
			Kernel:      kern,
			Parallelism: *par,
			Ctx:         ctx,
			Obs:         run.Rec,
			Progress:    run.ProgressFunc("estimator"),
		}, rng)
		if err != nil {
			fatal("building estimator: %v", err)
		}
		s, err := core.Draw(ds, est, core.Options{
			Alpha:       *alpha,
			TargetSize:  *size,
			OnePass:     *onePass,
			Parallelism: *par,
			Precision:   precision,
			Ctx:         ctx,
			Obs:         run.Rec,
			Progress:    run.ProgressFunc("sampling"),
			VerifyNorm:  *onePass,
		}, rng)
		if err != nil {
			fatal("sampling: %v", err)
		}
		for _, wp := range s.Points {
			writeRow(wp.P, wp.W, true)
		}
		fmt.Fprintf(os.Stderr, "biased sample: %d points, a=%g, k_a=%g, %d data passes (+1 estimator pass)\n",
			len(s.Points), *alpha, s.Norm, s.DataPasses)
	case "uniform":
		pts, err := dataset.Bernoulli(ds, *size, rng)
		if err != nil {
			fatal("sampling: %v", err)
		}
		for _, p := range pts {
			writeRow(p, 0, false)
		}
		fmt.Fprintf(os.Stderr, "uniform sample: %d points, 1 data pass\n", len(pts))
	case "grid":
		bounds, err := dataset.Bounds(ds)
		if err != nil {
			fatal("%v", err)
		}
		res, err := gridsample.Draw(ds, bounds, gridsample.Options{Exponent: *alpha, TargetSize: *size}, rng)
		if err != nil {
			fatal("sampling: %v", err)
		}
		for _, wp := range res.Points {
			writeRow(wp.P, wp.W, true)
		}
		fmt.Fprintf(os.Stderr, "grid sample: %d points, e=%g, %d bucket collisions, %d data passes\n",
			len(res.Points), *alpha, res.Collisions, res.DataPasses+1)
	default:
		fatal("unknown -method %q", *method)
	}
}

func parsePrecision(s string) (core.Precision, error) {
	switch s {
	case "float64", "":
		return core.Float64, nil
	case "float32":
		return core.Float32, nil
	}
	return core.Float64, fmt.Errorf("unknown -precision %q (want float64 or float32)", s)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dbsample: "+format+"\n", args...)
	os.Exit(1)
}
