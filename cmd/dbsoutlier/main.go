// Command dbsoutlier detects DB(p,k) distance-based outliers (§3.2) in a
// binary dataset file, exactly (kd-tree) or approximately via the paper's
// density-guided two-pass algorithm, and can estimate just the outlier
// count in a single pass for parameter exploration.
//
// Usage:
//
//	dbsoutlier -in data.dbs -radius 0.05 -p 3 -method approx
//	dbsoutlier -in data.dbs -radius 0.05 -frac 0.0001 -method exact
//	dbsoutlier -in data.dbs -radius 0.05 -p 3 -method estimate
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/dataset"
	"repro/internal/kde"
	"repro/internal/obs"
	"repro/internal/outlier"
	"repro/internal/stats"
)

func main() {
	var (
		in      = flag.String("in", "", "input dataset (binary format); required")
		radius  = flag.Float64("radius", 0.05, "neighbourhood radius k")
		p       = flag.Int("p", -1, "max neighbours an outlier may have")
		frac    = flag.Float64("frac", -1, "alternatively, p as a fraction of |D|")
		method  = flag.String("method", "approx", "detection method: exact|approx|estimate")
		kernels = flag.Int("kernels", kde.DefaultNumKernels, "number of kernels (approx/estimate)")
		factor  = flag.Float64("factor", 3, "candidate threshold factor (approx)")
		par     = flag.Int("par", 0, "worker parallelism: 0 = all CPUs, 1 = serial (same outliers either way)")
		seed    = flag.Uint64("seed", 1, "random seed")
		obsf    obs.Flags
	)
	obsf.Register(flag.CommandLine)
	flag.Parse()
	if *in == "" {
		fatal("missing -in")
	}
	run, err := obsf.Start()
	if err != nil {
		run.Close()
		fatal("%v", err)
	}
	defer run.Close()
	// Ctrl-C / SIGTERM cancel the scans at block granularity instead of
	// leaving a long pass running to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Open sniffs the format: DBS1 files decode block-by-block, DBS2
	// segment files are memory-mapped and scanned zero-copy.
	ds, err := dataset.Open(*in)
	if err != nil {
		fatal("%v", err)
	}
	if c, ok := ds.(io.Closer); ok {
		defer c.Close()
	}
	var prm outlier.Params
	switch {
	case *p >= 0 && *frac >= 0:
		fatal("set either -p or -frac, not both")
	case *p >= 0:
		prm = outlier.Params{K: *radius, P: *p}
	case *frac >= 0:
		prm = outlier.FromFraction(*radius, *frac, ds.Len())
	default:
		fatal("set -p or -frac")
	}
	prm.Parallelism = *par
	prm.Ctx = ctx
	prm.Obs = run.Rec
	prm.Progress = run.ProgressFunc("outlier scan")
	rng := stats.NewRNG(*seed)

	switch *method {
	case "exact":
		mem, err := dataset.Collect(ds)
		if err != nil {
			fatal("%v", err)
		}
		idx, err := outlier.Exact(mem.Points(), prm)
		if err != nil {
			fatal("%v", err)
		}
		for _, i := range idx {
			fmt.Println(mem.Points()[i])
		}
		fmt.Fprintf(os.Stderr, "exact: %d DB(p=%d, k=%g) outliers\n", len(idx), prm.P, prm.K)
	case "approx":
		est, err := kde.Build(ds, kde.Options{
			NumKernels:  *kernels,
			Parallelism: *par,
			Ctx:         ctx,
			Obs:         run.Rec,
			Progress:    run.ProgressFunc("estimator"),
		}, rng)
		if err != nil {
			fatal("building estimator: %v", err)
		}
		res, err := outlier.Approximate(ds, est, prm, outlier.ApproxOptions{CandidateFactor: *factor})
		if err != nil {
			fatal("%v", err)
		}
		for _, o := range res.Outliers {
			fmt.Println(o)
		}
		fmt.Fprintf(os.Stderr, "approx: %d outliers from %d candidates, %d data passes (+1 estimator pass)\n",
			len(res.Outliers), res.NumCandidates, res.DataPasses)
	case "estimate":
		est, err := kde.Build(ds, kde.Options{
			NumKernels:  *kernels,
			Parallelism: *par,
			Ctx:         ctx,
			Obs:         run.Rec,
			Progress:    run.ProgressFunc("estimator"),
		}, rng)
		if err != nil {
			fatal("building estimator: %v", err)
		}
		n, err := outlier.EstimateCount(ds, est, prm)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("estimated DB(p=%d, k=%g) outliers: %d (single pass)\n", prm.P, prm.K, n)
	default:
		fatal("unknown -method %q", *method)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dbsoutlier: "+format+"\n", args...)
	os.Exit(1)
}
