// Command dbsbench regenerates the paper's tables and figures. Each
// experiment id corresponds to one artifact of the evaluation section;
// see DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// paper-versus-measured results.
//
// Usage:
//
//	dbsbench -list
//	dbsbench -exp fig4a
//	dbsbench -all -quick
//	dbsbench -exp obs -json > BENCH_obs.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// benchDoc is the BENCH_*.json document -json emits: the environment the
// numbers were taken in plus every experiment's table and benchmark
// entries (name, iters, ns/op, points/sec, speedup).
type benchDoc struct {
	Environment benchEnv             `json:"environment"`
	Results     []*experiments.Table `json:"results"`
}

type benchEnv struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	BlockSize  int    `json:"block_size"`
	Quick      bool   `json:"quick,omitempty"`
}

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id to run (see -list)")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list experiment ids")
		quick   = flag.Bool("quick", false, "reduced workload sizes")
		par     = flag.Int("p", 0, "worker parallelism for the parallel experiments: 0 = all CPUs, 1 = serial")
		seed    = flag.Uint64("seed", 1, "random seed")
		jsonOut = flag.Bool("json", false, "emit results as a BENCH_*.json document on stdout instead of tables")
		obsf    obs.Flags
	)
	obsf.Register(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-18s %s\n", id, experiments.Title(id))
		}
		return
	}
	run, err := obsf.Start()
	if err != nil {
		run.Close()
		fatal("%v", err)
	}
	defer run.Close()
	cfg := experiments.Config{Seed: *seed, Quick: *quick, Parallelism: *par, Obs: run.Rec}
	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *exp != "":
		ids = []string{*exp}
	default:
		fmt.Fprintln(os.Stderr, "dbsbench: need -exp <id>, -all, or -list")
		os.Exit(2)
	}
	doc := benchDoc{Environment: benchEnv{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		BlockSize:  parallel.DefaultBlockSize,
		Quick:      *quick,
	}}
	for _, id := range ids {
		start := time.Now()
		tb, err := experiments.Run(id, cfg)
		if err != nil {
			fatal("%s: %v", id, err)
		}
		tb.ID = id
		tb.Title = experiments.Title(id)
		if *jsonOut {
			doc.Results = append(doc.Results, tb)
			fmt.Fprintf(os.Stderr, "(%s completed in %.1fs)\n", id, time.Since(start).Seconds())
			continue
		}
		fmt.Println(tb.String())
		fmt.Printf("(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatal("encoding JSON: %v", err)
		}
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dbsbench: "+format+"\n", args...)
	os.Exit(1)
}
