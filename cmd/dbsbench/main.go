// Command dbsbench regenerates the paper's tables and figures. Each
// experiment id corresponds to one artifact of the evaluation section;
// see DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// paper-versus-measured results.
//
// Usage:
//
//	dbsbench -list
//	dbsbench -exp fig4a
//	dbsbench -all -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		list  = flag.Bool("list", false, "list experiment ids")
		quick = flag.Bool("quick", false, "reduced workload sizes")
		par   = flag.Int("p", 0, "worker parallelism for the parallel experiments: 0 = all CPUs, 1 = serial")
		seed  = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-18s %s\n", id, experiments.Title(id))
		}
		return
	}
	cfg := experiments.Config{Seed: *seed, Quick: *quick, Parallelism: *par}
	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *exp != "":
		ids = []string{*exp}
	default:
		fmt.Fprintln(os.Stderr, "dbsbench: need -exp <id>, -all, or -list")
		os.Exit(2)
	}
	for _, id := range ids {
		start := time.Now()
		tb, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dbsbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		tb.ID = id
		tb.Title = experiments.Title(id)
		fmt.Println(tb.String())
		fmt.Printf("(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}
