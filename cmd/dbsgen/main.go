// Command dbsgen generates the synthetic and substitute datasets of the
// paper's evaluation (§4.1) and writes them to the binary dataset format
// (or CSV). Ground-truth labels can be written to a sidecar file for
// external scoring.
//
// Usage:
//
//	dbsgen -kind ds1 -n 100000 -out ds1.dbs
//	dbsgen -kind varied -n 100000 -d 2 -k 10 -noise 0.5 -out noisy.dbs
//	dbsgen -kind northeast -out ne.dbs -labels ne.labels
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/synth"
)

func main() {
	var (
		kind   = flag.String("kind", "equal", "dataset kind: equal|varied|ds1|ds2|northeast|california|forestcover")
		n      = flag.Int("n", 100000, "approximate number of cluster points (equal/varied/ds1/ds2)")
		d      = flag.Int("d", 2, "dimensionality (equal/varied)")
		k      = flag.Int("k", 10, "number of clusters (equal/varied)")
		noise  = flag.Float64("noise", 0.1, "noise fraction fn (equal/varied)")
		ratio  = flag.Float64("ratio", 10, "density ratio densest/sparsest (varied)")
		sratio = flag.Float64("sizeratio", 20, "size ratio largest/smallest (varied)")
		seed   = flag.Uint64("seed", 1, "random seed")
		out    = flag.String("out", "", "output file (binary format); required")
		labels = flag.String("labels", "", "optional sidecar file for ground-truth labels")
		csv    = flag.Bool("csv", false, "write CSV instead of binary")
		seg    = flag.Bool("segmented", false, "write the appendable segmented format (DBS2) instead of DBS1; segmented files are served zero-copy via mmap")
		outl   = flag.Int("outliers", 0, "plant this many isolated outliers")
		obsf   obs.Flags
	)
	obsf.Register(flag.CommandLine)
	flag.Parse()
	if *out == "" {
		fatal("missing -out")
	}
	run, err := obsf.Start()
	if err != nil {
		run.Close()
		fatal("%v", err)
	}
	defer run.Close()

	rng := stats.NewRNG(*seed)
	var l *synth.Labeled
	switch *kind {
	case "equal":
		l = synth.EqualClusters(*k, *d, *n, *noise, rng)
	case "varied":
		l = synth.VariedClusters(*k, *d, *n, *ratio, *sratio, *noise, rng)
	case "ds1":
		l = synth.DS1(*n, *noise, rng)
	case "ds2":
		l = synth.DS2(*n, rng)
	case "northeast":
		l = synth.NorthEast(rng)
	case "california":
		l = synth.California(rng)
	case "forestcover":
		l = synth.ForestCover(rng)
	default:
		fatal("unknown -kind %q", *kind)
	}
	if *outl > 0 {
		synth.PlantOutliers(l, *outl, 0.05, rng)
	}

	ds := l.Dataset()
	if *csv && *seg {
		fatal("-csv and -segmented are mutually exclusive")
	}
	if *seg {
		sf, err := dataset.CreateSegmented(*out, ds)
		if err == nil {
			err = sf.Close()
		}
		if err != nil {
			fatal("writing %s: %v", *out, err)
		}
	} else {
		f, err := os.Create(*out)
		if err != nil {
			fatal("%v", err)
		}
		if *csv {
			err = dataset.WriteCSV(f, ds)
		} else {
			err = dataset.WriteBinary(f, ds)
		}
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			fatal("writing %s: %v", *out, err)
		}
	}

	if *labels != "" {
		lf, err := os.Create(*labels)
		if err != nil {
			fatal("%v", err)
		}
		w := bufio.NewWriter(lf)
		for _, lb := range l.Labels {
			fmt.Fprintln(w, lb)
		}
		if err := w.Flush(); err == nil {
			err = lf.Close()
		}
		if err != nil {
			fatal("writing %s: %v", *labels, err)
		}
	}
	fmt.Printf("wrote %d points (%d dims, %d clusters, %d noise) to %s\n",
		len(l.Points), ds.Dims(), len(l.Clusters), l.NumNoise(), *out)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dbsgen: "+format+"\n", args...)
	os.Exit(1)
}
