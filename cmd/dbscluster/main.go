// Command dbscluster runs end-to-end approximate clustering (§3.1): draw
// a density-biased or uniform sample from a binary dataset file, cluster
// the sample with the CURE-style hierarchical algorithm (or weighted
// k-means), and print per-cluster summaries. With -assign, every dataset
// point is labelled with its cluster and the labels written to a file.
//
// Usage:
//
//	dbscluster -in data.dbs -k 10 -alpha 1 -size 2000
//	dbscluster -in data.dbs -k 10 -method uniform -size 2000
//	dbscluster -in data.dbs -k 10 -algo kmeans -alpha -0.5 -size 2000
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/cure"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/kde"
	"repro/internal/kmeans"
	"repro/internal/obs"
	"repro/internal/stats"
)

func main() {
	var (
		in      = flag.String("in", "", "input dataset (binary format); required")
		k       = flag.Int("k", 10, "number of clusters")
		algo    = flag.String("algo", "cure", "clustering algorithm: cure|kmeans|kmedoids")
		method  = flag.String("method", "biased", "sampling method: biased|uniform")
		alpha   = flag.Float64("alpha", 1, "bias exponent a")
		size    = flag.Int("size", 1000, "expected sample size")
		kernels = flag.Int("kernels", kde.DefaultNumKernels, "number of kernels")
		trim    = flag.Bool("trim", true, "enable CURE noise-trim phases")
		assign  = flag.String("assign", "", "write full-dataset labels to this file (cure only)")
		prec    = flag.String("precision", "float64", "density evaluation arithmetic: float64 (exact contract) | float32 (faster, approximate)")
		par     = flag.Int("p", 0, "worker parallelism: 0 = all CPUs, 1 = serial (same clustering either way)")
		seed    = flag.Uint64("seed", 1, "random seed")
		obsf    obs.Flags
	)
	obsf.Register(flag.CommandLine)
	flag.Parse()
	if *in == "" {
		fatal("missing -in")
	}
	run, err := obsf.Start()
	if err != nil {
		run.Close()
		fatal("%v", err)
	}
	defer run.Close()
	// Ctrl-C / SIGTERM cancel the pipeline at block granularity instead of
	// leaving a long scan running to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	precision, err := parsePrecision(*prec)
	if err != nil {
		fatal("%v", err)
	}
	// Open sniffs the format: DBS1 files decode block-by-block, DBS2
	// segment files are memory-mapped and scanned zero-copy.
	ds, err := dataset.Open(*in)
	if err != nil {
		fatal("%v", err)
	}
	if c, ok := ds.(io.Closer); ok {
		defer c.Close()
	}
	rng := stats.NewRNG(*seed)

	var weighted []dataset.WeightedPoint
	switch *method {
	case "biased":
		est, err := kde.Build(ds, kde.Options{
			NumKernels:  *kernels,
			Parallelism: *par,
			Ctx:         ctx,
			Obs:         run.Rec,
			Progress:    run.ProgressFunc("estimator"),
		}, rng)
		if err != nil {
			fatal("building estimator: %v", err)
		}
		s, err := core.Draw(ds, est, core.Options{
			Alpha:       *alpha,
			TargetSize:  *size,
			Parallelism: *par,
			Precision:   precision,
			Ctx:         ctx,
			Obs:         run.Rec,
			Progress:    run.ProgressFunc("sampling"),
		}, rng)
		if err != nil {
			fatal("sampling: %v", err)
		}
		weighted = s.Points
	case "uniform":
		pts, err := dataset.Bernoulli(ds, *size, rng)
		if err != nil {
			fatal("sampling: %v", err)
		}
		weighted = dataset.UniformWeighted(pts, ds.Len())
	default:
		fatal("unknown -method %q", *method)
	}
	if len(weighted) == 0 {
		fatal("empty sample")
	}
	fmt.Printf("sample: %d points (%s, a=%g)\n", len(weighted), *method, *alpha)

	switch *algo {
	case "cure":
		pts := make([]geom.Point, len(weighted))
		for i, wp := range weighted {
			pts[i] = wp.P
		}
		opts := cure.Options{K: *k, NumReps: 10, Shrink: 0.3, Parallelism: *par, Ctx: ctx, Obs: run.Rec}
		if *trim {
			opts.TrimAt, opts.TrimMinSize, opts.FinalTrimAt, opts.FinalTrimMinSize = cure.NoiseTrimSizing(len(pts), *k, 500)
		}
		clusters, err := cure.Run(pts, opts)
		if err != nil {
			fatal("clustering: %v", err)
		}
		for i, c := range clusters {
			fmt.Printf("cluster %d: %d sample points, mean %v\n", i, c.Size(), c.Mean)
			for _, r := range c.Reps {
				fmt.Printf("  rep %v\n", r)
			}
		}
		if *assign != "" {
			if err := writeAssignments(ds, clusters, *assign); err != nil {
				fatal("%v", err)
			}
			fmt.Printf("labels written to %s\n", *assign)
		}
	case "kmeans", "kmedoids":
		var res *kmeans.Result
		var err error
		if *algo == "kmeans" {
			res, err = kmeans.Run(weighted, kmeans.Options{K: *k}, rng)
		} else {
			res, err = kmeans.RunMedoids(weighted, kmeans.Options{K: *k}, rng)
		}
		if err != nil {
			fatal("clustering: %v", err)
		}
		for i, c := range res.Centers {
			fmt.Printf("center %d: %v\n", i, c)
		}
		fmt.Printf("weighted cost %.6g after %d iterations\n", res.Cost, res.Iterations)
	default:
		fatal("unknown -algo %q", *algo)
	}
}

// writeAssignments labels every dataset point by nearest representative
// in one streaming pass.
func writeAssignments(ds dataset.Dataset, clusters []cure.Cluster, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	// Assign in one pass without materializing the dataset.
	var reps []geom.Point
	var owner []int
	for ci := range clusters {
		for _, r := range clusters[ci].Reps {
			reps = append(reps, r)
			owner = append(owner, ci)
		}
	}
	err = ds.Scan(func(p geom.Point) error {
		best, bestD := 0, -1.0
		for ri, r := range reps {
			d := geom.SquaredDistance(p, r)
			if bestD < 0 || d < bestD {
				best, bestD = ri, d
			}
		}
		_, werr := fmt.Fprintln(w, owner[best])
		return werr
	})
	if err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parsePrecision(s string) (core.Precision, error) {
	switch s {
	case "float64", "":
		return core.Float64, nil
	case "float32":
		return core.Float32, nil
	}
	return core.Float64, fmt.Errorf("unknown -precision %q (want float64 or float32)", s)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dbscluster: "+format+"\n", args...)
	os.Exit(1)
}
