// Command dbsserve serves the sampling pipeline over HTTP: a dataset
// registry, density-biased sampling, clustering, and outlier detection,
// with an artifact cache so repeat queries skip dataset passes and
// admission control so a saturated server sheds load (429) instead of
// queueing without bound. Observability (/metrics, /debug/pprof) rides on
// the same listener.
//
// Usage:
//
//	dbsserve -addr :8080 gauss=data/gauss.dbs grid=data/grid.dbs
//	dbsserve -addr :8080 -cache-bytes 67108864 -max-inflight 4 -deadline 10s
//	dbsserve -addr :8080 -tenants 'gold:weight=4,priority=high;bronze:weight=1,queue=4' \
//	         -disk-cache /var/lib/dbs/artifacts -degrade-ok
//
// Positional arguments pre-register datasets as name=path; more can be
// registered at runtime via POST /v1/datasets. SIGINT/SIGTERM begin a
// graceful drain: health flips to "draining", new pipeline requests get
// 503, and in-flight ones finish before the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		cacheBytes = flag.Int64("cache-bytes", 256<<20, "artifact cache budget in bytes (0 disables)")
		maxInFl    = flag.Int("max-inflight", 0, "max concurrently executing pipeline requests (0 = parallelism degree)")
		maxQueue   = flag.Int("max-queue", 0, "max requests waiting for a slot before shedding with 429 (0 = 2x max-inflight, negative = no queue)")
		deadline   = flag.Duration("deadline", 30*time.Second, "per-request deadline")
		par        = flag.Int("p", 0, "scan worker parallelism per request: 0 = all CPUs, 1 = serial (same results either way)")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")
		retry      = flag.Int("retry", 2, "retries per build stage on transient dataset I/O failures (0 disables)")
		stageWait  = flag.Duration("stage-timeout", 0, "per-attempt build stage timeout; blown stages retry under -retry (0 = request deadline only)")
		staleOK    = flag.Bool("stale-ok", false, "serve stale cached artifacts (X-DBS-Cache: stale) when a rebuild fails")
		driftTol   = flag.Float64("drift-tol", 0, "relative drift budget for incremental builds after appends (0 = always rebuild exactly)")
		prec       = flag.String("precision", "float64", "server-wide density evaluation arithmetic: float64 (exact contract) | float32 (faster, approximate); cache keys are unaffected")
		trSample   = flag.Float64("trace-sample", 0, "fraction of request traces retained in /debug/traces (0 = none, 1 = all); the decision is a pure function of the trace ID")
		slowMs     = flag.Int("slow-ms", 0, "slow-trace keeper: requests at or over this many milliseconds are always retained in /debug/traces (0 disables)")
		accessLog  = flag.String("access-log", "", "structured JSON access log destination: a file path (appended) or - for stderr (empty disables)")
		trRing     = flag.Int("trace-ring", 64, "capacity of each /debug/traces ring (recent and slow)")
		trSeed     = flag.Uint64("trace-seed", 0, "deterministic trace-ID stream seed (0 = random); set for reproducible trace IDs in tests")
		tenants    = flag.String("tenants", "", `per-tenant admission policies keyed by the X-DBS-Tenant header, as name:key=value,...;... (keys: weight, inflight, queue, priority=low|normal|high; "*" is the wildcard tenant; bare "gold:4" is weight shorthand); empty = one shared policy`)
		diskDir    = flag.String("disk-cache", "", "disk artifact tier directory: built estimators and samples persist here and survive restarts (empty disables)")
		diskBytes  = flag.Int64("disk-cache-bytes", 0, "disk artifact tier budget in bytes (0 = 4 GiB, negative = unbounded)")
		degradeOK  = flag.Bool("degrade-ok", false, "degrade ladder: answer shed or transiently failing /v1/sample requests from the cached a=0 artifact (X-DBS-Degraded: a0) when one is resident")
		shards     = flag.String("shards", "", "shard the sampling pipeline: an integer N for N in-process workers, or a comma-separated name=url list of dbsserve peers running -shard-of name (empty = single-node)")
		shardOf    = flag.String("shard-of", "", "serve as the named shard worker: only shard RPCs addressed to this name are accepted (empty = not pinned)")
		replicas   = flag.Int("replicas", 0, "replicas per block in sharded mode; failed shard RPCs fall back across them (0 = 2, capped at shard count)")
		hedgeMs    = flag.Int("hedge-ms", 0, "sharded mode latency budget: a shard RPC still pending after this many milliseconds is hedged to the next replica, first success wins (0 disables)")
		window     = flag.String("window", "", "sliding window for stream datasets (/v1/streams/{name}/append): an integer point count or a duration like 30s; queries cover only the window's rows (empty = unwindowed)")
	)
	flag.Parse()
	windowPts, windowDur, err := parseWindow(*window)
	if err != nil {
		fatal("%v", err)
	}

	precision, err := parsePrecision(*prec)
	if err != nil {
		fatal("%v", err)
	}
	shardWorkers, shardPeers, err := parseShards(*shards)
	if err != nil {
		fatal("%v", err)
	}
	if (shardWorkers > 0 || len(shardPeers) > 0) && precision == core.Float32 {
		fatal("-shards requires -precision float64: float32 arithmetic breaks the bit-identical shard merge")
	}
	cache := *cacheBytes
	if cache == 0 {
		cache = -1 // Config treats negative as disabled, zero as default.
	}
	policies, err := server.ParseTenantPolicies(*tenants)
	if err != nil {
		fatal("%v", err)
	}
	var accessW io.Writer
	if *accessLog == "-" {
		accessW = os.Stderr
	} else if *accessLog != "" {
		f, ferr := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if ferr != nil {
			fatal("opening access log: %v", ferr)
		}
		defer f.Close()
		accessW = f
	}
	srv := server.New(server.Config{
		Parallelism:   *par,
		Precision:     precision,
		CacheBytes:    cache,
		MaxInFlight:   *maxInFl,
		MaxQueue:      *maxQueue,
		Deadline:      *deadline,
		Retry:         *retry,
		StageTimeout:  *stageWait,
		StaleOK:       *staleOK,
		DriftTol:      *driftTol,
		Rec:           obs.New(),
		TraceSample:   *trSample,
		SlowThreshold: time.Duration(*slowMs) * time.Millisecond,
		TraceRing:     *trRing,
		TraceSeed:     *trSeed,
		AccessLog:     accessW,
		Tenants:       policies,
		DegradeOK:     *degradeOK,
		DiskDir:       *diskDir,
		DiskBytes:     *diskBytes,
		ShardWorkers:  shardWorkers,
		ShardPeers:    shardPeers,
		ShardReplicas: *replicas,
		ShardHedge:    time.Duration(*hedgeMs) * time.Millisecond,
		ShardOf:       *shardOf,
		WindowPoints:  windowPts,
		WindowDur:     windowDur,
	})

	for _, arg := range flag.Args() {
		name, path, ok := strings.Cut(arg, "=")
		if !ok {
			fatal("argument %q is not name=path", arg)
		}
		if err := srv.Registry().RegisterPath(name, path); err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "dbsserve: registered %s -> %s\n", name, path)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "dbsserve: listening on %s\n", *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal("%v", err)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "dbsserve: draining")
	srv.StartDraining()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		fatal("shutdown: %v", err)
	}
	fmt.Fprintln(os.Stderr, "dbsserve: drained")
}

// parseShards reads the -shards flag: a bare integer means that many
// in-process workers; otherwise a comma-separated name=url list of HTTP
// peers. Empty means single-node.
func parseShards(s string) (workers int, peers map[string]string, err error) {
	if s == "" {
		return 0, nil, nil
	}
	if n, perr := strconv.Atoi(s); perr == nil {
		if n < 1 {
			return 0, nil, fmt.Errorf("-shards %d: want at least 1 worker", n)
		}
		return n, nil, nil
	}
	peers = make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		name, url, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || url == "" {
			return 0, nil, fmt.Errorf("-shards entry %q is not name=url", part)
		}
		if _, dup := peers[name]; dup {
			return 0, nil, fmt.Errorf("-shards: duplicate shard name %q", name)
		}
		peers[name] = url
	}
	return 0, peers, nil
}

func parseWindow(s string) (points int, dur time.Duration, err error) {
	if s == "" {
		return 0, 0, nil
	}
	if n, perr := strconv.Atoi(s); perr == nil {
		if n < 1 {
			return 0, 0, fmt.Errorf("-window %d: want a positive point count", n)
		}
		return n, 0, nil
	}
	d, derr := time.ParseDuration(s)
	if derr != nil {
		return 0, 0, fmt.Errorf("-window %q: want a point count or a duration like 30s", s)
	}
	if d <= 0 {
		return 0, 0, fmt.Errorf("-window %v: want a positive duration", d)
	}
	return 0, d, nil
}

func parsePrecision(s string) (core.Precision, error) {
	switch s {
	case "float64", "":
		return core.Float64, nil
	case "float32":
		return core.Float32, nil
	}
	return core.Float64, fmt.Errorf("unknown -precision %q (want float64 or float32)", s)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dbsserve: "+format+"\n", args...)
	os.Exit(1)
}
