// Command dbsload is the sustained-load generator for the serving
// layer. With no target it self-hosts the "load" experiment — the
// three-tenant WFQ/degrade/chaos proof — and emits the BENCH_load.json
// document:
//
//	dbsload -json > BENCH_load.json
//	dbsload -quick
//
// With -addr it drives an already-running server (e.g. dbsserve) with a
// configurable tenant mix and prints the per-tenant report as JSON:
//
//	dbsload -addr http://localhost:8080 -dataset pts \
//	        -tenants gold:closed:4,bronze:open:200 -duration 10s
//
// Each tenant entry is name:mode:rate — closed-loop rate is the worker
// count, open-loop rate is arrivals per second. Requests rotate -seeds
// distinct seeds; 1 keeps the artifact cache hot, large values force
// cold builds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/loadgen"
	"repro/internal/parallel"
)

// benchDoc mirrors dbsbench's BENCH_*.json schema.
type benchDoc struct {
	Environment benchEnv             `json:"environment"`
	Results     []*experiments.Table `json:"results"`
}

type benchEnv struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	BlockSize  int    `json:"block_size"`
	Quick      bool   `json:"quick,omitempty"`
}

func main() {
	var (
		addr     = flag.String("addr", "", "target server base URL; empty self-hosts the load experiment")
		duration = flag.Duration("duration", 5*time.Second, "measurement window (-addr mode)")
		tenants  = flag.String("tenants", "gold:closed:2,bronze:open:100", "tenant mix as name:mode:rate[,...] (-addr mode)")
		dsName   = flag.String("dataset", "pts", "dataset name on the target (-addr mode)")
		alpha    = flag.Float64("alpha", 1, "sample alpha (-addr mode)")
		size     = flag.Int("size", 400, "sample size b (-addr mode)")
		kernels  = flag.Int("kernels", 128, "kernel count (-addr mode)")
		seeds    = flag.Int("seeds", 4, "distinct seeds rotated per tenant (-addr mode)")
		quick    = flag.Bool("quick", false, "reduced workload (self-hosted mode)")
		par      = flag.Int("p", 0, "worker parallelism: 0 = all CPUs")
		seed     = flag.Uint64("seed", 1, "random seed (self-hosted mode)")
		jsonOut  = flag.Bool("json", false, "emit JSON instead of a table")
	)
	flag.Parse()

	if *addr != "" {
		specs, err := parseMix(*tenants, *dsName, *alpha, *size, *kernels, *seeds)
		if err != nil {
			fatal("%v", err)
		}
		rep, err := loadgen.Run(loadgen.Options{BaseURL: strings.TrimRight(*addr, "/"), Duration: *duration, Specs: specs})
		if err != nil {
			fatal("%v", err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal("encoding JSON: %v", err)
		}
		return
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick, Parallelism: *par}
	start := time.Now()
	tb, err := experiments.Run("load", cfg)
	if err != nil {
		fatal("%v", err)
	}
	tb.ID = "load"
	tb.Title = experiments.Title("load")
	if *jsonOut {
		doc := benchDoc{
			Environment: benchEnv{
				GoVersion:  runtime.Version(),
				GOMAXPROCS: runtime.GOMAXPROCS(0),
				NumCPU:     runtime.NumCPU(),
				BlockSize:  parallel.DefaultBlockSize,
				Quick:      *quick,
			},
			Results: []*experiments.Table{tb},
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatal("encoding JSON: %v", err)
		}
		fmt.Fprintf(os.Stderr, "(load completed in %.1fs)\n", time.Since(start).Seconds())
		return
	}
	fmt.Println(tb.String())
	fmt.Printf("(load completed in %.1fs)\n", time.Since(start).Seconds())
}

// parseMix parses name:mode:rate tenant entries into loadgen specs.
func parseMix(spec, dataset string, alpha float64, size, kernels, nseeds int) ([]loadgen.TenantSpec, error) {
	if nseeds < 1 {
		return nil, fmt.Errorf("dbsload: -seeds must be >= 1")
	}
	seeds := make([]uint64, nseeds)
	for i := range seeds {
		seeds[i] = 101 + uint64(i)
	}
	var specs []loadgen.TenantSpec
	for _, ent := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(ent), ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("dbsload: tenant entry %q: want name:mode:rate", ent)
		}
		name, mode := parts[0], parts[1]
		rate, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || rate <= 0 {
			return nil, fmt.Errorf("dbsload: tenant entry %q: bad rate %q", ent, parts[2])
		}
		ts := loadgen.TenantSpec{
			Tenant: name, Mode: mode,
			Dataset: dataset, Alpha: alpha, Size: size, Kernels: kernels, Seeds: seeds,
		}
		switch mode {
		case "closed":
			ts.Conc = int(rate)
		case "open":
			ts.RPS = rate
		default:
			return nil, fmt.Errorf("dbsload: tenant entry %q: mode must be closed or open", ent)
		}
		specs = append(specs, ts)
	}
	return specs, nil
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dbsload: "+format+"\n", args...)
	os.Exit(1)
}
