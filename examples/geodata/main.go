// Geodata: the §4.3 real-data scenario, on a synthetic stand-in for the
// paper's NorthEast postal-address dataset. Three dense metropolitan areas
// sit on a wide rural background of small towns; a uniform sample is
// dominated by the background, while a dense-biased sample (a = 1)
// isolates the three metros.
package main

import (
	"fmt"
	"log"

	"repro"
)

// metros: NYC-like (heavy), Philadelphia-like, Boston-like.
var metros = []struct {
	center [2]float64
	sigma  float64
	n      int
}{
	{[2]float64{0.44, 0.40}, 0.022, 28000},
	{[2]float64{0.33, 0.30}, 0.018, 12000},
	{[2]float64{0.66, 0.62}, 0.018, 12000},
}

func main() {
	rng := repro.NewRNG(5)

	var pts []repro.Point
	for _, m := range metros {
		for i := 0; i < m.n; i++ {
			pts = append(pts, repro.Point{
				m.center[0] + m.sigma*gauss(rng),
				m.center[1] + m.sigma*gauss(rng),
			})
		}
	}
	// Rural background: 600 small towns plus uniform scatter (58k points).
	for t := 0; t < 600; t++ {
		cx, cy := rng.Float64(), rng.Float64()
		for i := 0; i < 80; i++ {
			pts = append(pts, repro.Point{cx + 0.004*gauss(rng), cy + 0.004*gauss(rng)})
		}
	}
	for i := 0; i < 10000; i++ {
		pts = append(pts, repro.Point{rng.Float64(), rng.Float64()})
	}
	ds, err := repro.FromPoints(pts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d 'addresses', 3 metro areas + rural background\n", len(pts))

	est, err := repro.BuildEstimator(ds, repro.EstimatorOptions{}, rng)
	if err != nil {
		log.Fatal(err)
	}
	const b = 1300 // 1% sample
	biased, err := repro.BiasedSample(ds, est, repro.SampleOptions{Alpha: 1, Size: b}, rng)
	if err != nil {
		log.Fatal(err)
	}
	uniform, err := repro.UniformSample(ds, b, rng)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("biased a=1 sample:  %d/3 metros found\n", metrosFound(biased.Points()))
	fmt.Printf("uniform sample:     %d/3 metros found\n", metrosFound(uniform))
}

// metrosFound clusters a sample into 3 clusters and counts metros whose
// 3-sigma disc contains a cluster mean.
func metrosFound(sample []repro.Point) int {
	clusters, err := repro.ClusterSample(sample, repro.ClusterOptions{K: 3, NoiseTrim: true})
	if err != nil {
		log.Fatal(err)
	}
	found := 0
	for _, m := range metros {
		for _, c := range clusters {
			dx := c.Mean[0] - m.center[0]
			dy := c.Mean[1] - m.center[1]
			if dx*dx+dy*dy <= 9*m.sigma*m.sigma {
				found++
				break
			}
		}
	}
	return found
}

// gauss returns a standard normal variate from the library RNG.
func gauss(rng *repro.RNG) float64 { return rng.NormFloat64() }
