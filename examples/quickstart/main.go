// Quickstart: build a density estimator in one pass, draw a density-biased
// sample, and cluster it — the minimal end-to-end flow of the library.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	rng := repro.NewRNG(42)

	// A toy dataset: two square clusters of very different density plus
	// background noise, 11 000 points total.
	var pts []repro.Point
	for i := 0; i < 6000; i++ { // dense cluster
		pts = append(pts, repro.Point{0.2 + 0.1*rng.Float64(), 0.2 + 0.1*rng.Float64()})
	}
	for i := 0; i < 4000; i++ { // sparse cluster
		pts = append(pts, repro.Point{0.6 + 0.25*rng.Float64(), 0.6 + 0.25*rng.Float64()})
	}
	for i := 0; i < 1000; i++ { // noise
		pts = append(pts, repro.Point{rng.Float64(), rng.Float64()})
	}

	ds, err := repro.FromPoints(pts)
	if err != nil {
		log.Fatal(err)
	}

	// One pass over the data: kernel centers + bandwidths.
	est, err := repro.BuildEstimator(ds, repro.EstimatorOptions{}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("density at dense center:  %.0f\n", est.Density(repro.Point{0.24, 0.24}))
	fmt.Printf("density at sparse center: %.0f\n", est.Density(repro.Point{0.72, 0.72}))

	// Oversample dense regions (a = 0.5): noise all but vanishes from the
	// sample while both clusters stay represented.
	s, err := repro.BiasedSample(ds, est, repro.SampleOptions{Alpha: 0.5, Size: 800}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("biased sample: %d points in %d data passes\n", s.Len(), s.DataPasses())

	clusters, err := repro.ClusterSample(s.Points(), repro.ClusterOptions{K: 2})
	if err != nil {
		log.Fatal(err)
	}
	for i, c := range clusters {
		fmt.Printf("cluster %d: %4d sample points, mean %v\n", i, c.Size(), c.Mean)
	}

	// Extend the sample clustering to every original point.
	labels := repro.AssignAll(pts, clusters)
	counts := map[int]int{}
	for _, lb := range labels {
		counts[lb]++
	}
	fmt.Printf("full-data assignment: %v\n", counts)
}
