// Small clusters: the Fig. 5 scenario. One huge dense cluster dominates
// several small sparse ones under light background noise; with uniform
// sampling the small clusters all but vanish from a 1% sample, while
// density-biased sampling with a negative exponent (a = -0.25 here)
// oversamples sparse regions — preserving relative densities (Lemma 1) —
// and keeps every cluster visible in the clustering.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	rng := repro.NewRNG(11)

	// One big dense cluster (60k points) and four small sparse ones
	// (800 points each, 10x sparser).
	big := [2]float64{0.30, 0.30}
	smalls := [][2]float64{{0.75, 0.15}, {0.80, 0.55}, {0.15, 0.80}, {0.55, 0.85}}
	var pts []repro.Point
	for i := 0; i < 60000; i++ {
		pts = append(pts, repro.Point{big[0] + 0.2*rng.Float64(), big[1] + 0.2*rng.Float64()})
	}
	for _, c := range smalls {
		for i := 0; i < 800; i++ {
			pts = append(pts, repro.Point{c[0] + 0.1*rng.Float64(), c[1] + 0.1*rng.Float64()})
		}
	}
	for i := 0; i < 6000; i++ { // 10% background noise
		pts = append(pts, repro.Point{rng.Float64(), rng.Float64()})
	}
	ds, err := repro.FromPoints(pts)
	if err != nil {
		log.Fatal(err)
	}

	est, err := repro.BuildEstimator(ds, repro.EstimatorOptions{}, rng)
	if err != nil {
		log.Fatal(err)
	}

	const b = 600
	biased, err := repro.BiasedSample(ds, est, repro.SampleOptions{Alpha: -0.25, Size: b}, rng)
	if err != nil {
		log.Fatal(err)
	}
	uniform, err := repro.UniformSample(ds, b, rng)
	if err != nil {
		log.Fatal(err)
	}

	count := func(sample []repro.Point) (bigN int, smallN [4]int) {
		for _, p := range sample {
			if p[0] >= big[0] && p[0] <= big[0]+0.2 && p[1] >= big[1] && p[1] <= big[1]+0.2 {
				bigN++
				continue
			}
			for si, c := range smalls {
				if p[0] >= c[0] && p[0] <= c[0]+0.1 && p[1] >= c[1] && p[1] <= c[1]+0.1 {
					smallN[si]++
					break
				}
			}
		}
		return
	}
	ub, us := count(uniform)
	bb, bs := count(biased.Points())
	fmt.Printf("uniform %d-sample:      big=%d small=%v\n", len(uniform), ub, us)
	fmt.Printf("biased a=-0.25 %d-sample: big=%d small=%v  (sparse clusters lifted)\n",
		biased.Len(), bb, bs)

	// Cluster both samples hierarchically and count recovered clusters.
	fmt.Printf("uniform sample recovers %d/5 clusters\n", recovered(uniform, big, smalls))
	fmt.Printf("biased sample recovers  %d/5 clusters\n", recovered(biased.Points(), big, smalls))
}

// recovered clusters the sample into 5 clusters and counts planted
// clusters containing some discovered cluster's mean.
func recovered(sample []repro.Point, big [2]float64, smalls [][2]float64) int {
	clusters, err := repro.ClusterSample(sample, repro.ClusterOptions{K: 5, NoiseTrim: true})
	if err != nil {
		log.Fatal(err)
	}
	inBox := func(m repro.Point, c [2]float64, side float64) bool {
		return m[0] >= c[0] && m[0] <= c[0]+side && m[1] >= c[1] && m[1] <= c[1]+side
	}
	found := 0
	for _, cl := range clusters {
		if inBox(cl.Mean, big, 0.2) {
			found++
			break
		}
	}
	for _, c := range smalls {
		for _, cl := range clusters {
			if inBox(cl.Mean, c, 0.1) {
				found++
				break
			}
		}
	}
	return found
}
