// Outliers: the §3.2 workflow. Plant isolated points among clusters, use
// the single-pass estimator to (1) cheaply estimate how many DB(p,k)
// outliers exist for several parameter settings, then (2) run the
// two-pass approximate detector and compare it with the exact kd-tree
// baseline.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	rng := repro.NewRNG(3)

	var pts []repro.Point
	for _, c := range [][2]float64{{0.2, 0.2}, {0.7, 0.3}, {0.4, 0.7}} {
		for i := 0; i < 15000; i++ {
			pts = append(pts, repro.Point{c[0] + 0.12*rng.Float64(), c[1] + 0.12*rng.Float64()})
		}
	}
	// Twelve isolated points, well away from every cluster.
	planted := []repro.Point{
		{0.02, 0.60}, {0.05, 0.95}, {0.35, 0.02}, {0.62, 0.97},
		{0.95, 0.05}, {0.97, 0.60}, {0.80, 0.85}, {0.02, 0.02},
		{0.97, 0.97}, {0.92, 0.22}, {0.05, 0.40}, {0.25, 0.97},
	}
	pts = append(pts, planted...)
	ds, err := repro.FromPoints(pts)
	if err != nil {
		log.Fatal(err)
	}

	est, err := repro.BuildEstimator(ds, repro.EstimatorOptions{}, rng)
	if err != nil {
		log.Fatal(err)
	}

	// One cheap pass per parameter setting: how many outliers would each
	// (k, p) yield? This is the parameter-exploration mode of §3.2.
	fmt.Println("single-pass outlier-count estimates:")
	for _, prm := range []repro.OutlierParams{
		{K: 0.02, P: 1}, {K: 0.03, P: 1}, {K: 0.03, P: 5}, {K: 0.05, P: 1},
	} {
		n, err := repro.EstimateOutlierCount(ds, est, prm)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%.2f p=%d -> ~%d outliers\n", prm.K, prm.P, n)
	}

	// Full detection at the chosen setting.
	prm := repro.OutlierParams{K: 0.03, P: 1}
	exact, err := repro.FindOutliers(pts, prm)
	if err != nil {
		log.Fatal(err)
	}
	approx, err := repro.FindOutliersApprox(ds, est, prm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact detector:  %d outliers\n", len(exact))
	fmt.Printf("approx detector: %d outliers from %d candidates in %d data passes\n",
		len(approx.Outliers), approx.NumCandidates, approx.DataPasses)
	for _, o := range approx.Outliers {
		fmt.Printf("  %v\n", o)
	}
}
