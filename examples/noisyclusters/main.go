// Noisy clusters: the Fig. 4 scenario of the paper. Ten compact clusters
// are buried under heavy uniform noise (fn = 1.2); a density-biased sample with a = 1
// suppresses the noise and a hierarchical clustering of the small sample
// recovers every cluster, while a same-size uniform sample fails.
package main

import (
	"fmt"
	"log"

	"repro"
)

const k = 10

// centers of the ten planted clusters (side 0.08 squares)
var centers = [][2]float64{
	{0.10, 0.10}, {0.45, 0.10}, {0.80, 0.10},
	{0.10, 0.45}, {0.45, 0.45}, {0.80, 0.45},
	{0.10, 0.80}, {0.45, 0.80}, {0.80, 0.80},
	{0.62, 0.27},
}

func main() {
	rng := repro.NewRNG(7)

	var pts []repro.Point
	for _, c := range centers {
		for i := 0; i < 8000; i++ {
			pts = append(pts, repro.Point{c[0] + 0.08*rng.Float64(), c[1] + 0.08*rng.Float64()})
		}
	}
	noise := int(1.2 * float64(len(pts)))
	for i := 0; i < noise; i++ {
		pts = append(pts, repro.Point{rng.Float64(), rng.Float64()})
	}
	ds, err := repro.FromPoints(pts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d points, %d of them noise\n", len(pts), noise)

	est, err := repro.BuildEstimator(ds, repro.EstimatorOptions{}, rng)
	if err != nil {
		log.Fatal(err)
	}

	biased, err := repro.BiasedSample(ds, est, repro.SampleOptions{Alpha: 1, Size: 2000}, rng)
	if err != nil {
		log.Fatal(err)
	}
	uniform, err := repro.UniformSample(ds, 2000, rng)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("biased sample (a=1): %d clusters recovered\n", recovered(biased.Points()))
	fmt.Printf("uniform sample:      %d clusters recovered\n", recovered(uniform))
}

// recovered clusters a sample and counts how many planted clusters have a
// discovered cluster whose mean lies inside them.
func recovered(sample []repro.Point) int {
	clusters, err := repro.ClusterSample(sample, repro.ClusterOptions{K: k, NoiseTrim: true})
	if err != nil {
		log.Fatal(err)
	}
	found := 0
	for _, c := range centers {
		for _, cl := range clusters {
			m := cl.Mean
			if m[0] >= c[0] && m[0] <= c[0]+0.08 && m[1] >= c[1] && m[1] <= c[1]+0.08 {
				found++
				break
			}
		}
	}
	return found
}
