package cure

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/stats"
)

// Attaching a Recorder must leave the clustering bit-identical, at the
// serial and a parallel worker count, with and without trim phases.
func TestRunDeterministicWithRecorder(t *testing.T) {
	rng := stats.NewRNG(5)
	pts, _ := blobs(6, 80, rng)
	for _, workers := range []int{1, 8} {
		for _, trim := range []bool{false, true} {
			opts := Options{K: 6, Parallelism: workers}
			if trim {
				opts.TrimAt = len(pts) / 3
				opts.TrimMinSize = 3
			}
			ref, err := Run(pts, opts)
			if err != nil {
				t.Fatal(err)
			}
			rec := obs.New()
			opts.Obs = rec
			got, err := Run(pts, opts)
			if err != nil {
				t.Fatal(err)
			}
			sameClusters(t, ref, got, "run")

			if v := rec.Counter(obs.CtrCureMerges).Value(); v <= 0 {
				t.Fatalf("cure_merges_total = %d, want > 0", v)
			}
			n := int64(len(pts))
			if v := rec.Counter(obs.CtrCureDistEvals).Value(); v < n*(n-1) {
				t.Fatalf("cure_dist_evals_total = %d, want at least the init table's %d", v, n*(n-1))
			}
		}
	}
}

// RunPartitioned with a Recorder must match its own unobserved output too.
func TestRunPartitionedDeterministicWithRecorder(t *testing.T) {
	rng := stats.NewRNG(9)
	pts, _ := blobs(6, 60, rng)
	opts := Options{K: 6, Parallelism: 4}
	ref, err := RunPartitioned(pts, opts, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	opts.Obs = obs.New()
	got, err := RunPartitioned(pts, opts, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	sameClusters(t, ref, got, "partitioned")
}
