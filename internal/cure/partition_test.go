package cure

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/stats"
)

func TestRunPartitionedValidation(t *testing.T) {
	pts := []geom.Point{{0, 0}, {1, 1}}
	if _, err := RunPartitioned(pts, Options{K: 1}, 0, 4); err == nil {
		t.Error("partitions=0 accepted")
	}
	if _, err := RunPartitioned(pts, Options{K: 1}, 2, 1); err == nil {
		t.Error("reduction=1 accepted")
	}
	if _, err := RunPartitioned(nil, Options{K: 1}, 2, 4); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := RunPartitioned(pts, Options{K: 0}, 2, 4); err == nil {
		t.Error("K=0 accepted")
	}
}

func TestOnePartitionEqualsRun(t *testing.T) {
	rng := stats.NewRNG(1)
	pts, _ := blobs(3, 100, rng)
	a, err := Run(pts, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPartitioned(pts, Options{K: 3}, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("cluster counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Size() != b[i].Size() {
			t.Fatalf("cluster %d sizes differ", i)
		}
	}
}

func TestPartitionedFindsSeparatedBlobs(t *testing.T) {
	rng := stats.NewRNG(2)
	pts, truth := blobs(4, 200, rng)
	for _, parts := range []int{2, 4} {
		clusters, err := RunPartitioned(pts, Options{K: 4}, parts, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(clusters) != 4 {
			t.Fatalf("parts=%d: got %d clusters", parts, len(clusters))
		}
		// Purity and completeness: every cluster one label, all points kept.
		total := 0
		seen := map[int]bool{}
		for ci, c := range clusters {
			total += c.Size()
			label := truth[c.Members[0]]
			for _, m := range c.Members {
				if truth[m] != label {
					t.Fatalf("parts=%d: cluster %d mixes labels", parts, ci)
				}
			}
			if seen[label] {
				t.Fatalf("parts=%d: label %d split", parts, label)
			}
			seen[label] = true
		}
		if total != len(pts) {
			t.Fatalf("parts=%d: clusters cover %d of %d points", parts, total, len(pts))
		}
	}
}

func TestPartitionedMemberIndicesGlobal(t *testing.T) {
	rng := stats.NewRNG(3)
	pts, _ := blobs(2, 150, rng)
	clusters, err := RunPartitioned(pts, Options{K: 2}, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, len(pts))
	for _, c := range clusters {
		for _, m := range c.Members {
			if m < 0 || m >= len(pts) {
				t.Fatalf("member index %d out of range", m)
			}
			if seen[m] {
				t.Fatalf("member %d assigned twice", m)
			}
			seen[m] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("point %d lost", i)
		}
	}
}

func TestPartitionedWithTrims(t *testing.T) {
	rng := stats.NewRNG(4)
	pts, _ := blobs(3, 150, rng)
	// isolated noise
	pts = append(pts, geom.Point{0.95, 0.95}, geom.Point{0.02, 0.95})
	clusters, err := RunPartitioned(pts, Options{
		K: 3, TrimAt: len(pts) / 3, TrimMinSize: 2,
		FinalTrimAt: 9, FinalTrimMinSize: 3,
	}, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 3 {
		t.Fatalf("got %d clusters", len(clusters))
	}
	for _, c := range clusters {
		for _, m := range c.Members {
			if m >= 450 {
				t.Errorf("noise point %d survived", m)
			}
		}
	}
}

func TestPartitionedElongated(t *testing.T) {
	// Partition boundaries cut the strips arbitrarily; the merge phase
	// must reassemble them.
	rng := stats.NewRNG(5)
	var pts []geom.Point
	var truth []int
	for i := 0; i < 400; i++ {
		pts = append(pts, geom.Point{rng.Float64(), 0.3 + 0.02*rng.Float64()})
		truth = append(truth, 0)
	}
	for i := 0; i < 400; i++ {
		pts = append(pts, geom.Point{rng.Float64(), 0.7 + 0.02*rng.Float64()})
		truth = append(truth, 1)
	}
	rng.Shuffle(len(pts), func(i, j int) {
		pts[i], pts[j] = pts[j], pts[i]
		truth[i], truth[j] = truth[j], truth[i]
	})
	clusters, err := RunPartitioned(pts, Options{K: 2}, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for ci, c := range clusters {
		label := truth[c.Members[0]]
		for _, m := range c.Members {
			if truth[m] != label {
				t.Fatalf("cluster %d mixes strips after partitioned run", ci)
			}
		}
	}
}
