package cure

import (
	"errors"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// RunPartitioned clusters pts with CURE's partitioning speedup (Guha et
// al. §4.3): the input is split into `partitions` equal slices, each is
// pre-clustered independently down to len(partition)/reduction clusters,
// and the union of the partial clusters is then merged to the final K by
// a representative-weighted pass. Because the first phase is quadratic in
// the partition size rather than the sample size, the overall cost drops
// by roughly a factor of `partitions` while the min-representative
// linkage keeps partial clusters compatible across partitions.
//
// The paper's experiments use one partition (§4.2, "we use one
// partition"), which makes Run and RunPartitioned(pts, opts, 1, …)
// equivalent; the partitioned mode exists for the larger samples of the
// runtime experiments.
func RunPartitioned(pts []geom.Point, opts Options, partitions, reduction int) ([]Cluster, error) {
	if partitions <= 0 {
		return nil, errors.New("cure: partitions must be positive")
	}
	if reduction <= 1 {
		return nil, errors.New("cure: reduction must exceed 1")
	}
	if partitions == 1 {
		return Run(pts, opts)
	}
	if len(pts) == 0 {
		return nil, errors.New("cure: no points")
	}
	if opts.K <= 0 {
		return nil, errors.New("cure: K must be positive")
	}

	// Phase 1: pre-cluster each partition down to size/reduction groups.
	// Trim options apply per partition, scaled to the partition size;
	// member indices are remapped from partition-local to global. The
	// partition boundaries depend only on (len(pts), partitions) and each
	// pre-clustering is deterministic, so the partitions run concurrently
	// and their results concatenate in partition order — the output is the
	// same for every worker count.
	per := (len(pts) + partitions - 1) / partitions
	numParts := (len(pts) + per - 1) / per
	partClusters := make([][]Cluster, numParts)
	// Each pre-clustering carries opts.Obs along (the copy below includes
	// it), so partition sub-runs contribute to the same "cure" span and
	// counters; the span handles concurrent re-entry.
	partSpan := opts.Obs.StartSpan("cure/partition")
	err := parallel.DoObs(numParts, opts.Parallelism, opts.Obs, func(pi int) error {
		start := pi * per
		end := start + per
		if end > len(pts) {
			end = len(pts)
		}
		part := pts[start:end]
		target := len(part) / reduction
		if target < opts.K {
			target = opts.K
		}
		popts := opts
		popts.K = target
		// Partition pre-clusterings nest inside the partition workers;
		// keep them serial to avoid oversubscribing.
		popts.Parallelism = 1
		if opts.TrimAt > 0 {
			popts.TrimAt = opts.TrimAt / partitions
			if popts.TrimAt <= target {
				popts.TrimAt = target + 1
			}
		}
		popts.FinalTrimAt = 0 // the final elimination runs in phase 2
		clusters, err := Run(part, popts)
		if err != nil {
			return err
		}
		for _, c := range clusters {
			for j := range c.Members {
				c.Members[j] += start
			}
		}
		partClusters[pi] = clusters
		return nil
	})
	partSpan.End()
	if err != nil {
		return nil, err
	}
	var partials []Cluster
	for _, cs := range partClusters {
		partials = append(partials, cs...)
	}

	// Phase 2: merge the partial clusters under the same linkage,
	// seeding the agglomeration with multi-point clusters.
	return mergePartials(pts, partials, opts)
}

// mergePartials runs the agglomerative merge loop over pre-built clusters
// (same linkage and representative maintenance as Run, seeded with
// multi-point clusters instead of singletons).
func mergePartials(pts []geom.Point, seeds []Cluster, opts Options) ([]Cluster, error) {
	numReps := opts.NumReps
	if numReps == 0 {
		numReps = 10
	}
	shrink := opts.Shrink
	if shrink == 0 {
		shrink = 0.3
	}
	ws := make([]work, len(seeds))
	for i, s := range seeds {
		members := make([]int32, len(s.Members))
		for j, m := range s.Members {
			members[j] = int32(m)
		}
		ws[i] = work{
			members: members,
			mean:    s.Mean.Clone(),
			reps:    s.Reps,
			alive:   true,
		}
	}
	rec := opts.Obs
	span := rec.StartSpan("cure/merge_partials")
	defer span.End()
	cMerges := rec.Counter(obs.CtrCureMerges)
	cDist := rec.Counter(obs.CtrCureDistEvals)
	cTrim := rec.Counter(obs.CtrCureTrimmed)
	alive := len(ws)
	parallel.DoObs(len(ws), opts.Parallelism, rec, func(i int) error {
		recomputeNN(ws, i, cDist)
		return nil
	})
	finalTrimmed := opts.FinalTrimAt <= 0
	finalMin := opts.FinalTrimMinSize
	if !finalTrimmed && finalMin == 0 {
		finalMin = 3
	}
	for alive > opts.K {
		if !finalTrimmed && alive <= opts.FinalTrimAt {
			removed := trim(ws, finalMin)
			alive -= removed
			finalTrimmed = true
			cTrim.Add(int64(removed))
			if removed > 0 {
				repairNN(ws, opts.Parallelism, rec, cDist)
			}
			if alive <= opts.K {
				break
			}
		}
		bi, bd := -1, -1.0
		for i := range ws {
			if ws[i].alive && (bi < 0 || ws[i].nnD < bd) {
				bi, bd = i, ws[i].nnD
			}
		}
		if bi < 0 || ws[bi].nn < 0 {
			break
		}
		merge(pts, ws, bi, ws[bi].nn, numReps, shrink, cDist)
		cMerges.Inc()
		alive--
	}
	var out []Cluster
	for i := range ws {
		if !ws[i].alive {
			continue
		}
		c := Cluster{
			Members: make([]int, len(ws[i].members)),
			Reps:    ws[i].reps,
			Mean:    ws[i].mean,
		}
		for k, m := range ws[i].members {
			c.Members[k] = int(m)
		}
		out = append(out, c)
	}
	return out, nil
}
