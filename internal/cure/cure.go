// Package cure implements the hierarchical agglomerative clustering
// algorithm of §3.1, modelled on CURE (Guha, Rastogi, Shim — SIGMOD 1998):
// every cluster is summarized by a set of well-scattered representative
// points shrunk toward the cluster mean by a shrink factor α, the distance
// between clusters is the minimum distance between their representatives,
// and the closest pair is merged until K clusters remain.
//
// As in the paper's experiments (§4.2), the defaults are α = 0.3 and 10
// representatives, with a single partition. The algorithm is quadratic in
// the number of input points — which is exactly why the paper runs it on a
// small (biased) sample rather than the full dataset, and what Fig. 2
// measures.
//
// A light-weight outlier-elimination phase (as in CURE §4.1) is available
// through TrimAt/TrimMinSize: when the number of live clusters first drops
// to TrimAt, clusters with fewer than TrimMinSize members are discarded as
// noise. Samples drawn with a ≥ 0 bias contain little noise and rarely
// need it; uniform samples of noisy datasets do.
package cure

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Options configure one clustering run.
type Options struct {
	// K is the number of clusters to produce. Required.
	K int

	// NumReps is the number of representative points per cluster
	// (default 10, the paper's setting).
	NumReps int

	// Shrink is the shrink factor α toward the cluster mean
	// (default 0.3, the paper's setting).
	Shrink float64

	// TrimAt, when positive, triggers one outlier-elimination pass when
	// the live cluster count first reaches it: clusters with fewer than
	// TrimMinSize members are dropped. CURE's first elimination phase
	// fires when the cluster count reaches about one third of the input
	// points, removing 1-2 point clusters — isolated noise — before they
	// can chain distinct clusters together.
	TrimAt int

	// TrimMinSize is the member-count threshold for the trim pass
	// (default 3 when TrimAt is set).
	TrimMinSize int

	// FinalTrimAt/FinalTrimMinSize optionally run a second, more
	// aggressive elimination near the end of the merge sequence,
	// mirroring CURE's second phase (small groups of residual noise).
	FinalTrimAt      int
	FinalTrimMinSize int

	// Parallelism bounds the workers used for the quadratic distance
	// phases (initial nearest-neighbour table, post-trim repairs, and
	// partition pre-clustering in RunPartitioned): 0 uses
	// runtime.GOMAXPROCS(0), 1 is the serial reference path. Each parallel
	// unit writes only its own slot, so the clustering is identical for
	// every setting. The merge sequence itself is inherently serial and
	// unaffected.
	Parallelism int

	// Obs, when non-nil, records spans ("cure", "cure/init_nn") and the
	// merge/distance/trim counters. Recording never influences the
	// clustering: outputs are bit-identical with Obs nil or set.
	Obs *obs.Recorder

	// Ctx, when non-nil, cancels the clustering: the merge loop checks it
	// once per merge (and the initial NN table once per row block) and a
	// done context aborts with parallel.ErrCanceled wrapping the context's
	// error. A run that completes is unaffected.
	Ctx context.Context
}

// NoiseTrimSizing returns the two-phase outlier-elimination thresholds for
// clustering an n-point sample that carries background noise into k
// clusters: the first trim fires when n/3 clusters remain and drops
// clusters under 3 members (CURE §4.1's "one third" heuristic), the final
// trim fires at 5k clusters and drops clusters under max(3, n/divisor)
// members. divisor controls the final trim's aggression — single-partition
// runs use 500, partitioned runs 300 (partitions leave more residue).
// Shared by the public API and the serving layer so both size NoiseTrim
// identically.
func NoiseTrimSizing(n, k, divisor int) (trimAt, trimMinSize, finalTrimAt, finalTrimMinSize int) {
	trimAt = n / 3
	trimMinSize = 3
	finalTrimAt = 5 * k
	finalTrimMinSize = n / divisor
	if finalTrimMinSize < 3 {
		finalTrimMinSize = 3
	}
	return trimAt, trimMinSize, finalTrimAt, finalTrimMinSize
}

// Cluster is one output cluster.
type Cluster struct {
	// Members holds indices into the input point slice.
	Members []int
	// Reps are the shrunk representative points summarizing the
	// cluster's shape.
	Reps []geom.Point
	// Mean is the centroid of the members.
	Mean geom.Point
}

// Size returns the number of members.
func (c *Cluster) Size() int { return len(c.Members) }

type work struct {
	members []int32
	mean    geom.Point
	reps    []geom.Point
	nn      int     // index of nearest live cluster
	nnD     float64 // squared min-rep distance to nn
	alive   bool
}

// Run clusters pts into opts.K clusters. It returns an error for invalid
// options or empty input. When K ≥ len(pts), each point forms its own
// cluster.
func Run(pts []geom.Point, opts Options) ([]Cluster, error) {
	if len(pts) == 0 {
		return nil, errors.New("cure: no points")
	}
	if opts.K <= 0 {
		return nil, errors.New("cure: K must be positive")
	}
	numReps := opts.NumReps
	if numReps == 0 {
		numReps = 10
	}
	if numReps < 1 {
		return nil, errors.New("cure: NumReps must be positive")
	}
	shrink := opts.Shrink
	if shrink == 0 {
		shrink = 0.3
	}
	if shrink < 0 || shrink > 1 {
		return nil, errors.New("cure: Shrink must be in [0,1]")
	}
	trimMin := opts.TrimMinSize
	if opts.TrimAt > 0 && trimMin == 0 {
		trimMin = 3
	}
	finalTrimMin := opts.FinalTrimMinSize
	if opts.FinalTrimAt > 0 && finalTrimMin == 0 {
		finalTrimMin = 3
	}

	rec := opts.Obs
	span := rec.StartSpan("cure")
	defer span.End()
	cMerges := rec.Counter(obs.CtrCureMerges)
	cDist := rec.Counter(obs.CtrCureDistEvals)
	cTrim := rec.Counter(obs.CtrCureTrimmed)

	n := len(pts)
	span.AddPoints(int64(n))
	ws := make([]work, n)
	for i, p := range pts {
		ws[i] = work{
			members: []int32{int32(i)},
			mean:    p.Clone(),
			reps:    []geom.Point{p},
			alive:   true,
		}
	}
	alive := n

	// Initial nearest neighbours: O(n²) singleton distances. Each row i
	// writes only ws[i] and reads the means (fixed before this point), so
	// the rows parallelize without changing the table. Every ordered pair
	// is evaluated exactly once, hence the arithmetic n·(n-1) tally.
	initSpan := rec.StartSpan("cure/init_nn")
	err := parallel.DoCtxObs(opts.Ctx, n, opts.Parallelism, rec, func(i int) error {
		ws[i].nn, ws[i].nnD = -1, math.Inf(1)
		for j := range ws {
			if i == j {
				continue
			}
			if d := geom.SquaredDistance(ws[i].mean, ws[j].mean); d < ws[i].nnD {
				ws[i].nn, ws[i].nnD = j, d
			}
		}
		return nil
	})
	cDist.Add(int64(n) * int64(n-1))
	initSpan.End()
	if err != nil {
		return nil, err
	}

	trimmed := opts.TrimAt <= 0 // no trim requested ⇒ treat as done
	finalTrimmed := opts.FinalTrimAt <= 0
	for alive > opts.K {
		if opts.Ctx != nil {
			if cerr := opts.Ctx.Err(); cerr != nil {
				return nil, fmt.Errorf("%w: %w", parallel.ErrCanceled, cerr)
			}
		}
		if !trimmed && alive <= opts.TrimAt {
			removed := trim(ws, trimMin)
			alive -= removed
			trimmed = true
			cTrim.Add(int64(removed))
			if removed > 0 {
				repairNN(ws, opts.Parallelism, rec, cDist)
			}
			if alive <= opts.K {
				break
			}
		}
		if trimmed && !finalTrimmed && alive <= opts.FinalTrimAt {
			removed := trim(ws, finalTrimMin)
			alive -= removed
			finalTrimmed = true
			cTrim.Add(int64(removed))
			if removed > 0 {
				repairNN(ws, opts.Parallelism, rec, cDist)
			}
			if alive <= opts.K {
				break
			}
		}

		// Closest live pair via cached nearest neighbours.
		bi := -1
		bd := math.Inf(1)
		for i := range ws {
			if ws[i].alive && ws[i].nnD < bd {
				bi, bd = i, ws[i].nnD
			}
		}
		if bi < 0 {
			break // only isolated clusters remain
		}
		bj := ws[bi].nn
		merge(pts, ws, bi, bj, numReps, shrink, cDist)
		cMerges.Inc()
		alive--
	}

	out := make([]Cluster, 0, alive)
	for i := range ws {
		if !ws[i].alive {
			continue
		}
		c := Cluster{
			Members: make([]int, len(ws[i].members)),
			Reps:    ws[i].reps,
			Mean:    ws[i].mean,
		}
		for k, m := range ws[i].members {
			c.Members[k] = int(m)
		}
		out = append(out, c)
	}
	return out, nil
}

// merge folds cluster j into cluster i, rebuilds i's summary, and restores
// the nearest-neighbour invariants. cDist (nil-safe) tallies the pairwise
// representative distance evaluations; the tally is accumulated locally
// and flushed once per merge.
func merge(pts []geom.Point, ws []work, i, j int, numReps int, shrink float64, cDist *obs.Counter) {
	a, b := &ws[i], &ws[j]
	na, nb := float64(len(a.members)), float64(len(b.members))
	mean := make(geom.Point, len(a.mean))
	for k := range mean {
		mean[k] = (a.mean[k]*na + b.mean[k]*nb) / (na + nb)
	}
	a.members = append(a.members, b.members...)
	a.mean = mean
	a.reps = selectReps(pts, a.members, mean, numReps, shrink)
	b.alive = false
	b.members = nil
	b.reps = nil

	// One scan restores all invariants: recompute i's NN, opportunistically
	// improve others' NN with their distance to the merged cluster, and
	// fully recompute any cluster whose NN pointed at i or j.
	a.nn, a.nnD = -1, math.Inf(1)
	var stale []int
	var evals int64
	for c := range ws {
		if c == i || !ws[c].alive {
			continue
		}
		evals += int64(len(a.reps) * len(ws[c].reps))
		d := clusterDist(a.reps, ws[c].reps)
		if d < a.nnD {
			a.nn, a.nnD = c, d
		}
		w := &ws[c]
		if w.nn == i || w.nn == j {
			if d <= w.nnD {
				// The merged cluster is at least as close as the old
				// target was: it remains the nearest neighbour.
				w.nn, w.nnD = i, d
			} else {
				stale = append(stale, c)
			}
		} else if d < w.nnD {
			w.nn, w.nnD = i, d
		}
	}
	cDist.Add(evals)
	for _, c := range stale {
		recomputeNN(ws, c, cDist)
	}
}

// recomputeNN rebuilds the cached nearest neighbour of cluster c exactly.
// cDist is the nil-safe distance-evaluation counter; the row's tally is
// flushed with one atomic add (safe under repairNN's concurrent rows).
func recomputeNN(ws []work, c int, cDist *obs.Counter) {
	w := &ws[c]
	w.nn, w.nnD = -1, math.Inf(1)
	var evals int64
	for o := range ws {
		if o == c || !ws[o].alive {
			continue
		}
		evals += int64(len(w.reps) * len(ws[o].reps))
		if d := clusterDist(w.reps, ws[o].reps); d < w.nnD {
			w.nn, w.nnD = o, d
		}
	}
	cDist.Add(evals)
}

// repairNN recomputes every cached neighbour after a trim pass removed
// clusters. Each recomputation writes only its own cluster's cache and
// reads state that is frozen during the repair, so the rows parallelize.
func repairNN(ws []work, parallelism int, rec *obs.Recorder, cDist *obs.Counter) {
	parallel.DoObs(len(ws), parallelism, rec, func(c int) error {
		if ws[c].alive {
			recomputeNN(ws, c, cDist)
		}
		return nil
	})
}

// trim kills live clusters with fewer than minSize members and returns how
// many were removed, never removing all clusters.
func trim(ws []work, minSize int) int {
	removed, kept := 0, 0
	for i := range ws {
		if ws[i].alive && len(ws[i].members) >= minSize {
			kept++
		}
	}
	if kept == 0 {
		return 0
	}
	for i := range ws {
		if ws[i].alive && len(ws[i].members) < minSize {
			ws[i].alive = false
			ws[i].members = nil
			ws[i].reps = nil
			removed++
		}
	}
	return removed
}

// clusterDist is the squared min distance over representative pairs.
func clusterDist(a, b []geom.Point) float64 {
	best := math.Inf(1)
	for _, p := range a {
		for _, q := range b {
			if d := geom.SquaredDistance(p, q); d < best {
				best = d
			}
		}
	}
	return best
}

// selectReps picks up to numReps well-scattered members (farthest-point
// traversal seeded from the point farthest from the mean) and shrinks them
// toward the mean by the shrink factor.
func selectReps(pts []geom.Point, members []int32, mean geom.Point, numReps int, shrink float64) []geom.Point {
	m := len(members)
	if m <= numReps {
		reps := make([]geom.Point, m)
		for k, idx := range members {
			reps[k] = pts[idx].Lerp(mean, shrink)
		}
		return reps
	}
	chosen := make([]int32, 0, numReps)
	minD := make([]float64, m) // min squared distance to any chosen rep
	// Seed: farthest member from the mean.
	far, farD := 0, -1.0
	for k, idx := range members {
		if d := geom.SquaredDistance(pts[idx], mean); d > farD {
			far, farD = k, d
		}
	}
	chosen = append(chosen, members[far])
	for k, idx := range members {
		minD[k] = geom.SquaredDistance(pts[idx], pts[chosen[0]])
	}
	for len(chosen) < numReps {
		far, farD = -1, -1.0
		for k := range members {
			if minD[k] > farD {
				far, farD = k, minD[k]
			}
		}
		next := members[far]
		chosen = append(chosen, next)
		for k, idx := range members {
			if d := geom.SquaredDistance(pts[idx], pts[next]); d < minD[k] {
				minD[k] = d
			}
		}
	}
	reps := make([]geom.Point, len(chosen))
	for k, idx := range chosen {
		reps[k] = pts[idx].Lerp(mean, shrink)
	}
	return reps
}

// Assign labels every point in pts with the index of the cluster owning
// the nearest representative — the final labelling phase of CURE, used to
// extend a sample clustering to the full dataset. Returns one label per
// point.
func Assign(pts []geom.Point, clusters []Cluster) []int {
	if len(clusters) == 0 || len(pts) == 0 {
		return nil
	}
	var reps []geom.Point
	var owner []int
	for ci := range clusters {
		for _, r := range clusters[ci].Reps {
			reps = append(reps, r)
			owner = append(owner, ci)
		}
	}
	tree := kdtree.Build(reps)
	labels := make([]int, len(pts))
	for i, p := range pts {
		ri, _ := tree.Nearest(p)
		labels[i] = owner[ri]
	}
	return labels
}
