package cure

import (
	"testing"

	"repro/internal/stats"
)

// sameClusters asserts two clusterings are identical: same cluster count,
// and per cluster the same members, means, and representatives.
func sameClusters(t *testing.T, a, b []Cluster, label string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d clusters vs %d", label, len(a), len(b))
	}
	for ci := range a {
		if len(a[ci].Members) != len(b[ci].Members) {
			t.Fatalf("%s: cluster %d has %d members vs %d", label, ci, len(a[ci].Members), len(b[ci].Members))
		}
		for k := range a[ci].Members {
			if a[ci].Members[k] != b[ci].Members[k] {
				t.Fatalf("%s: cluster %d member %d: %d vs %d", label, ci, k, a[ci].Members[k], b[ci].Members[k])
			}
		}
		if !a[ci].Mean.Equal(b[ci].Mean) {
			t.Fatalf("%s: cluster %d mean %v vs %v", label, ci, a[ci].Mean, b[ci].Mean)
		}
		if len(a[ci].Reps) != len(b[ci].Reps) {
			t.Fatalf("%s: cluster %d rep count %d vs %d", label, ci, len(a[ci].Reps), len(b[ci].Reps))
		}
		for k := range a[ci].Reps {
			if !a[ci].Reps[k].Equal(b[ci].Reps[k]) {
				t.Fatalf("%s: cluster %d rep %v vs %v", label, ci, a[ci].Reps[k], b[ci].Reps[k])
			}
		}
	}
}

// The parallel distance phases write disjoint slots, so the clustering must
// be identical for every worker count.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	rng := stats.NewRNG(11)
	pts, _ := blobs(5, 80, rng)
	base := Options{K: 5, TrimAt: 150, Parallelism: 1}
	ref, err := Run(pts, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 8} {
		opts := base
		opts.Parallelism = workers
		got, err := Run(pts, opts)
		if err != nil {
			t.Fatal(err)
		}
		sameClusters(t, ref, got, "run")
	}
}

// RunPartitioned concatenates partition results in partition order, so the
// same invariant holds with partitioning enabled.
func TestRunPartitionedDeterministicAcrossWorkers(t *testing.T) {
	rng := stats.NewRNG(12)
	pts, _ := blobs(6, 70, rng)
	base := Options{K: 6, Parallelism: 1}
	ref, err := RunPartitioned(pts, base, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		opts := base
		opts.Parallelism = workers
		got, err := RunPartitioned(pts, opts, 4, 3)
		if err != nil {
			t.Fatal(err)
		}
		sameClusters(t, ref, got, "partitioned")
	}
}
