package cure

import (
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/stats"
)

// Property: Run's output always partitions the input — every point in
// exactly one cluster (when no trimming is configured) — and the
// representatives of each cluster lie inside its members' bounding box
// (shrinking pulls strictly inward).
func TestPropRunPartitionsInput(t *testing.T) {
	f := func(seed uint16, kRaw, nRaw uint8) bool {
		n := 20 + int(nRaw)%180
		k := 1 + int(kRaw)%5
		rng := stats.NewRNG(uint64(seed) + 1000)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{rng.Float64(), rng.Float64()}
		}
		clusters, err := Run(pts, Options{K: k})
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		for _, c := range clusters {
			members := make([]geom.Point, 0, len(c.Members))
			for _, m := range c.Members {
				if m < 0 || m >= n || seen[m] {
					return false
				}
				seen[m] = true
				members = append(members, pts[m])
			}
			box := geom.BoundingRect(members)
			for _, r := range c.Reps {
				if !box.Contains(r) {
					return false
				}
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the number of returned clusters is min(K, n) for untrimmed
// runs on points in general position.
func TestPropClusterCount(t *testing.T) {
	f := func(seed uint16, kRaw uint8) bool {
		n := 30
		k := 1 + int(kRaw)%40
		rng := stats.NewRNG(uint64(seed) + 5000)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{rng.Float64(), rng.Float64()}
		}
		clusters, err := Run(pts, Options{K: k})
		if err != nil {
			return false
		}
		want := k
		if want > n {
			want = n
		}
		return len(clusters) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
