package cure

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/stats"
)

// blobs makes k well-separated square blobs of `each` points in 2-D and
// returns the points with ground-truth labels.
func blobs(k, each int, rng *stats.RNG) ([]geom.Point, []int) {
	pts := make([]geom.Point, 0, k*each)
	labels := make([]int, 0, k*each)
	for c := 0; c < k; c++ {
		// arrange on a grid with wide spacing
		cx := float64(c%3)*0.35 + 0.1
		cy := float64(c/3)*0.35 + 0.1
		for i := 0; i < each; i++ {
			pts = append(pts, geom.Point{cx + 0.08*rng.Float64(), cy + 0.08*rng.Float64()})
			labels = append(labels, c)
		}
	}
	return pts, labels
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, Options{K: 2}); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Run([]geom.Point{{1}}, Options{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Run([]geom.Point{{1}}, Options{K: 1, Shrink: 2}); err == nil {
		t.Error("Shrink=2 accepted")
	}
	if _, err := Run([]geom.Point{{1}}, Options{K: 1, NumReps: -1}); err == nil {
		t.Error("negative NumReps accepted")
	}
}

func TestRunFindsSeparatedBlobs(t *testing.T) {
	rng := stats.NewRNG(1)
	pts, truth := blobs(4, 100, rng)
	clusters, err := Run(pts, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 4 {
		t.Fatalf("got %d clusters", len(clusters))
	}
	// Every cluster must be pure: all members share one ground-truth label.
	seen := map[int]bool{}
	for ci, c := range clusters {
		label := truth[c.Members[0]]
		for _, m := range c.Members {
			if truth[m] != label {
				t.Fatalf("cluster %d mixes labels %d and %d", ci, label, truth[m])
			}
		}
		if seen[label] {
			t.Fatalf("label %d split across clusters", label)
		}
		seen[label] = true
		if c.Size() != 100 {
			t.Errorf("cluster %d size = %d", ci, c.Size())
		}
	}
}

func TestRunKGreaterThanN(t *testing.T) {
	pts := []geom.Point{{0, 0}, {1, 1}, {2, 2}}
	clusters, err := Run(pts, Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 3 {
		t.Fatalf("got %d clusters, want 3 singletons", len(clusters))
	}
}

func TestRepsAreShrunk(t *testing.T) {
	rng := stats.NewRNG(2)
	pts, _ := blobs(1, 200, rng)
	clusters, err := Run(pts, Options{K: 1, Shrink: 0.3, NumReps: 10})
	if err != nil {
		t.Fatal(err)
	}
	c := clusters[0]
	if len(c.Reps) != 10 {
		t.Fatalf("reps = %d", len(c.Reps))
	}
	// Each representative must be strictly closer to the mean than the
	// farthest member is (shrinking pulls inward).
	var maxMember float64
	for _, m := range c.Members {
		if d := geom.Distance(pts[m], c.Mean); d > maxMember {
			maxMember = d
		}
	}
	for _, r := range c.Reps {
		if geom.Distance(r, c.Mean) >= maxMember {
			t.Errorf("rep %v not shrunk inside the cluster extent", r)
		}
	}
}

func TestRepsWellScattered(t *testing.T) {
	// On a ring of points, representatives should spread around the ring,
	// not bunch together: the min pairwise rep distance must be a decent
	// fraction of the diameter.
	n := 100
	pts := make([]geom.Point, n)
	for i := range pts {
		a := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = geom.Point{0.5 + 0.4*math.Cos(a), 0.5 + 0.4*math.Sin(a)}
	}
	clusters, err := Run(pts, Options{K: 1, NumReps: 8, Shrink: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	reps := clusters[0].Reps
	minPair := math.Inf(1)
	for i := range reps {
		for j := i + 1; j < len(reps); j++ {
			if d := geom.Distance(reps[i], reps[j]); d < minPair {
				minPair = d
			}
		}
	}
	if minPair < 0.15 {
		t.Errorf("representatives bunch together: min pair dist %v", minPair)
	}
}

func TestMeanIsExact(t *testing.T) {
	rng := stats.NewRNG(3)
	pts, _ := blobs(2, 150, rng)
	clusters, err := Run(pts, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	for ci, c := range clusters {
		members := make([]geom.Point, len(c.Members))
		for k, m := range c.Members {
			members[k] = pts[m]
		}
		want := geom.Centroid(members)
		if geom.Distance(c.Mean, want) > 1e-9 {
			t.Errorf("cluster %d mean %v, want %v", ci, c.Mean, want)
		}
	}
}

func TestElongatedClustersNotSplit(t *testing.T) {
	// Two parallel elongated strips — the scenario where centroid-based
	// methods fail but representative-based linkage succeeds.
	rng := stats.NewRNG(4)
	var pts []geom.Point
	var truth []int
	for i := 0; i < 300; i++ {
		pts = append(pts, geom.Point{rng.Float64(), 0.30 + 0.02*rng.Float64()})
		truth = append(truth, 0)
	}
	for i := 0; i < 300; i++ {
		pts = append(pts, geom.Point{rng.Float64(), 0.70 + 0.02*rng.Float64()})
		truth = append(truth, 1)
	}
	clusters, err := Run(pts, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	for ci, c := range clusters {
		label := truth[c.Members[0]]
		for _, m := range c.Members {
			if truth[m] != label {
				t.Fatalf("cluster %d mixes strips", ci)
			}
		}
	}
}

func TestTrimRemovesNoiseSingletons(t *testing.T) {
	rng := stats.NewRNG(5)
	pts, _ := blobs(2, 200, rng)
	// far-away isolated noise points
	noise := []geom.Point{{0.95, 0.95}, {0.05, 0.95}, {0.95, 0.35}}
	pts = append(pts, noise...)
	clusters, err := Run(pts, Options{K: 2, TrimAt: 8, TrimMinSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 2 {
		t.Fatalf("got %d clusters", len(clusters))
	}
	total := 0
	for _, c := range clusters {
		total += c.Size()
		for _, m := range c.Members {
			if m >= 400 {
				t.Errorf("noise point %d survived the trim", m)
			}
		}
	}
	// The trim may also discard a few borderline real points that were
	// still in tiny clusters when it fired; noise must be gone and the
	// blobs essentially intact.
	if total < 395 {
		t.Errorf("trimmed result covers %d points, want ~400", total)
	}
}

func TestWithoutTrimNoiseBecomesClusters(t *testing.T) {
	// The same scenario without trimming: isolated noise survives as its
	// own clusters and displaces a true cluster — documenting why the trim
	// phase exists.
	rng := stats.NewRNG(5)
	pts, _ := blobs(2, 200, rng)
	noise := []geom.Point{{0.95, 0.95}, {0.05, 0.95}, {0.95, 0.35}}
	pts = append(pts, noise...)
	clusters, err := Run(pts, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int
	for _, c := range clusters {
		sizes = append(sizes, c.Size())
	}
	// One of the two returned clusters is a noise blob or a merger.
	if sizes[0] == 200 && sizes[1] == 200 {
		t.Skip("merge order spared the blobs this time")
	}
}

func TestAssignLabelsEveryPoint(t *testing.T) {
	rng := stats.NewRNG(6)
	pts, truth := blobs(3, 120, rng)
	clusters, err := Run(pts, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	labels := Assign(pts, clusters)
	if len(labels) != len(pts) {
		t.Fatalf("labels = %d", len(labels))
	}
	// Assignment must agree with membership clustering: points with the
	// same truth label get the same assigned label.
	byTruth := map[int]int{}
	for i, lb := range labels {
		want, ok := byTruth[truth[i]]
		if !ok {
			byTruth[truth[i]] = lb
			continue
		}
		if lb != want {
			t.Fatalf("truth cluster %d assigned to both %d and %d", truth[i], want, lb)
		}
	}
}

func TestAssignEmpty(t *testing.T) {
	if Assign(nil, nil) != nil {
		t.Error("empty assign should be nil")
	}
}

func TestDeterministic(t *testing.T) {
	rng := stats.NewRNG(7)
	pts, _ := blobs(3, 80, rng)
	a, err := Run(pts, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(pts, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("nondeterministic cluster count")
	}
	for i := range a {
		if a[i].Size() != b[i].Size() || !a[i].Mean.Equal(b[i].Mean) {
			t.Fatal("nondeterministic clustering")
		}
	}
}

func TestSinglePointCluster(t *testing.T) {
	clusters, err := Run([]geom.Point{{0.5, 0.5}}, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 || clusters[0].Size() != 1 {
		t.Fatalf("singleton result wrong: %+v", clusters)
	}
	if !clusters[0].Reps[0].Equal(geom.Point{0.5, 0.5}) {
		t.Error("singleton rep must be the point itself")
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := make([]geom.Point, 50)
	for i := range pts {
		pts[i] = geom.Point{0.5, 0.5}
	}
	for i := 0; i < 50; i++ {
		pts = append(pts, geom.Point{0.9, 0.9})
	}
	clusters, err := Run(pts, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 2 {
		t.Fatalf("got %d clusters from duplicate groups", len(clusters))
	}
	for _, c := range clusters {
		if c.Size() != 50 {
			t.Errorf("cluster size %d, want 50", c.Size())
		}
	}
}
