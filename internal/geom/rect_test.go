package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{2, 4})
	if r.Dims() != 2 {
		t.Errorf("Dims = %d", r.Dims())
	}
	if got := r.Volume(); got != 8 {
		t.Errorf("Volume = %v", got)
	}
	if got := r.Side(1); got != 4 {
		t.Errorf("Side(1) = %v", got)
	}
	if got := r.Center(); !got.Equal(Point{1, 2}) {
		t.Errorf("Center = %v", got)
	}
}

func TestNewRectInvertedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inverted rect")
		}
	}()
	NewRect(Point{1}, Point{0})
}

func TestUnitCube(t *testing.T) {
	c := UnitCube(3)
	if c.Volume() != 1 {
		t.Errorf("unit cube volume = %v", c.Volume())
	}
	if !c.Contains(Point{0.5, 0.5, 0.5}) || c.Contains(Point{1.5, 0, 0}) {
		t.Error("unit cube containment wrong")
	}
}

func TestRectContainsBoundary(t *testing.T) {
	r := NewRect(Point{0}, Point{1})
	if !r.Contains(Point{0}) || !r.Contains(Point{1}) {
		t.Error("closed rect must contain its boundary")
	}
}

func TestRectIntersects(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{1, 1})
	b := NewRect(Point{1, 1}, Point{2, 2})
	c := NewRect(Point{1.1, 0}, Point{2, 1})
	if !a.Intersects(b) {
		t.Error("touching rects should intersect")
	}
	if a.Intersects(c) {
		t.Error("disjoint rects should not intersect")
	}
}

func TestRectExtend(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{1, 1})
	r.Extend(Point{2, -1})
	if !r.Min.Equal(Point{0, -1}) || !r.Max.Equal(Point{2, 1}) {
		t.Errorf("Extend = %v", r)
	}
}

func TestRectMinMaxDist(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{1, 1})
	if got := r.MinDist(Point{0.5, 0.5}); got != 0 {
		t.Errorf("MinDist inside = %v", got)
	}
	if got := r.MinDist(Point{2, 1}); got != 1 {
		t.Errorf("MinDist outside = %v", got)
	}
	want := math.Sqrt(2)
	if got := r.MaxDist(Point{0, 0}); math.Abs(got-want) > 1e-12 {
		t.Errorf("MaxDist corner = %v, want %v", got, want)
	}
}

func TestBoundingRect(t *testing.T) {
	r := BoundingRect([]Point{{1, 5}, {-2, 3}, {0, 7}})
	if !r.Min.Equal(Point{-2, 3}) || !r.Max.Equal(Point{1, 7}) {
		t.Errorf("BoundingRect = %v", r)
	}
}

func TestScalerRoundTrip(t *testing.T) {
	s := NewScaler(NewRect(Point{-10, 5}, Point{10, 6}))
	p := Point{3, 5.25}
	u := s.ToUnit(p)
	if u[0] < 0 || u[0] > 1 || u[1] < 0 || u[1] > 1 {
		t.Errorf("ToUnit out of cube: %v", u)
	}
	back := s.FromUnit(u)
	for i := range p {
		if math.Abs(back[i]-p[i]) > 1e-12 {
			t.Errorf("round trip %v -> %v", p, back)
		}
	}
}

func TestScalerDegenerateDim(t *testing.T) {
	s := NewScaler(NewRect(Point{2, 0}, Point{2, 1}))
	u := s.ToUnit(Point{2, 0.5})
	if u[0] != 0 {
		t.Errorf("degenerate dim should map to 0, got %v", u[0])
	}
	if got := s.FromUnit(u); got[0] != 2 {
		t.Errorf("degenerate inverse = %v", got)
	}
}

// Property: MinDist ≤ distance-to-center ≤ MaxDist for points and boxes in
// general position.
func TestPropRectDistanceEnvelope(t *testing.T) {
	f := func(ax, ay, bx, by, px, py float64) bool {
		norm := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 100)
		}
		ax, ay, bx, by, px, py = norm(ax), norm(ay), norm(bx), norm(by), norm(px), norm(py)
		r := NewRect(
			Point{math.Min(ax, bx), math.Min(ay, by)},
			Point{math.Max(ax, bx), math.Max(ay, by)},
		)
		p := Point{px, py}
		dc := Distance(p, r.Center())
		const eps = 1e-9
		return r.MinDist(p) <= dc+eps && dc <= r.MaxDist(p)+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: scaling into the unit cube and back is the identity for points
// inside the box.
func TestPropScalerRoundTrip(t *testing.T) {
	f := func(lo, hi, frac float64) bool {
		norm := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0.5
			}
			return math.Mod(math.Abs(v), 50)
		}
		lo, hi = norm(lo), norm(hi)
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi-lo < 1e-9 {
			hi = lo + 1
		}
		fr := math.Mod(math.Abs(norm(frac)), 1.0)
		s := NewScaler(NewRect(Point{lo}, Point{hi}))
		p := Point{lo + fr*(hi-lo)}
		back := s.FromUnit(s.ToUnit(p))
		return math.Abs(back[0]-p[0]) <= 1e-9*(1+math.Abs(p[0]))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
