package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2, 3}
	q := Point{4, 5, 6}

	if got := p.Add(q); !got.Equal(Point{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := q.Sub(p); !got.Equal(Point{3, 3, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); !got.Equal(Point{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if p.Dims() != 3 {
		t.Errorf("Dims = %d", p.Dims())
	}
}

func TestPointCloneIndependent(t *testing.T) {
	p := Point{1, 2}
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Fatal("Clone aliases the original")
	}
}

func TestPointEqual(t *testing.T) {
	cases := []struct {
		p, q Point
		want bool
	}{
		{Point{1, 2}, Point{1, 2}, true},
		{Point{1, 2}, Point{1, 3}, false},
		{Point{1, 2}, Point{1, 2, 3}, false},
		{Point{}, Point{}, true},
	}
	for _, c := range cases {
		if got := c.p.Equal(c.q); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestPointLerp(t *testing.T) {
	p := Point{0, 0}
	q := Point{2, 4}
	if got := p.Lerp(q, 0.5); !got.Equal(Point{1, 2}) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
	if got := p.Lerp(q, 0); !got.Equal(p) {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := p.Lerp(q, 1); !got.Equal(q) {
		t.Errorf("Lerp(1) = %v", got)
	}
}

func TestPointAddInPlace(t *testing.T) {
	p := Point{1, 1}
	p.AddInPlace(Point{2, 3})
	if !p.Equal(Point{3, 4}) {
		t.Errorf("AddInPlace = %v", p)
	}
}

func TestPointNorm(t *testing.T) {
	if got := (Point{3, 4}).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := (Point{}).Norm(); got != 0 {
		t.Errorf("empty Norm = %v", got)
	}
}

func TestPointIsFinite(t *testing.T) {
	if !(Point{1, 2}).IsFinite() {
		t.Error("finite point reported non-finite")
	}
	if (Point{1, math.NaN()}).IsFinite() {
		t.Error("NaN point reported finite")
	}
	if (Point{math.Inf(1)}).IsFinite() {
		t.Error("Inf point reported finite")
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Point{1}.Add(Point{1, 2})
}

func TestCentroid(t *testing.T) {
	pts := []Point{{0, 0}, {2, 0}, {1, 3}}
	if got := Centroid(pts); !got.Equal(Point{1, 1}) {
		t.Errorf("Centroid = %v", got)
	}
}

func TestWeightedCentroid(t *testing.T) {
	pts := []Point{{0, 0}, {4, 0}}
	got := WeightedCentroid(pts, []float64{3, 1})
	if !got.Equal(Point{1, 0}) {
		t.Errorf("WeightedCentroid = %v", got)
	}
}

func TestWeightedCentroidZeroWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero total weight")
		}
	}()
	WeightedCentroid([]Point{{1}}, []float64{0})
}

// Property: Lerp(q, t) lies on the segment — each coordinate between p and q.
func TestPropLerpWithinSegment(t *testing.T) {
	f := func(a, b float64, tRaw uint8) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		// Bound magnitudes so q-p cannot overflow.
		a = math.Mod(a, 1e12)
		b = math.Mod(b, 1e12)
		tt := float64(tRaw) / 255
		p, q := Point{a}, Point{b}
		v := p.Lerp(q, tt)[0]
		lo, hi := math.Min(a, b), math.Max(a, b)
		const slack = 1e-9
		return v >= lo-slack*(1+math.Abs(lo)) && v <= hi+slack*(1+math.Abs(hi))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
