package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEuclidean(t *testing.T) {
	d := Euclidean{}.Distance(Point{0, 0}, Point{3, 4})
	if d != 5 {
		t.Errorf("euclidean = %v", d)
	}
}

func TestManhattan(t *testing.T) {
	d := Manhattan{}.Distance(Point{0, 0}, Point{3, -4})
	if d != 7 {
		t.Errorf("manhattan = %v", d)
	}
}

func TestChebyshev(t *testing.T) {
	d := Chebyshev{}.Distance(Point{0, 0}, Point{3, -4})
	if d != 4 {
		t.Errorf("chebyshev = %v", d)
	}
}

func TestMinkowskiMatchesSpecialCases(t *testing.T) {
	p := Point{1, 2, 3}
	q := Point{-2, 5, 0.5}
	if got, want := (Minkowski{P: 1}).Distance(p, q), (Manhattan{}).Distance(p, q); math.Abs(got-want) > 1e-12 {
		t.Errorf("L1 via Minkowski = %v, want %v", got, want)
	}
	if got, want := (Minkowski{P: 2}).Distance(p, q), (Euclidean{}).Distance(p, q); math.Abs(got-want) > 1e-12 {
		t.Errorf("L2 via Minkowski = %v, want %v", got, want)
	}
}

func TestMinkowskiInvalidOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for P < 1")
		}
	}()
	Minkowski{P: 0.5}.Distance(Point{0}, Point{1})
}

func TestMetricNames(t *testing.T) {
	names := map[string]Metric{
		"euclidean":    Euclidean{},
		"manhattan":    Manhattan{},
		"chebyshev":    Chebyshev{},
		"minkowski(3)": Minkowski{P: 3},
	}
	for want, m := range names {
		if got := m.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

func TestSquaredDistanceConsistent(t *testing.T) {
	p := Point{1, 2}
	q := Point{4, 6}
	if got := SquaredDistance(p, q); got != 25 {
		t.Errorf("SquaredDistance = %v", got)
	}
	if got := Distance(p, q); got != 5 {
		t.Errorf("Distance = %v", got)
	}
}

func TestUnitBallVolume(t *testing.T) {
	cases := []struct {
		d    int
		r    float64
		want float64
	}{
		{1, 1, 2},       // segment length 2
		{2, 1, math.Pi}, // disc area
		{3, 1, 4 * math.Pi / 3},
		{2, 2, 4 * math.Pi}, // scales with r^d
	}
	for _, c := range cases {
		got := UnitBallVolume(c.d, c.r)
		if math.Abs(got-c.want) > 1e-9*c.want {
			t.Errorf("V_%d(%g) = %v, want %v", c.d, c.r, got, c.want)
		}
	}
}

// Property: all provided metrics satisfy symmetry, identity, and the
// triangle inequality on random 3-D points.
func TestPropMetricAxioms(t *testing.T) {
	metrics := []Metric{Euclidean{}, Manhattan{}, Chebyshev{}, Minkowski{P: 3}}
	clean := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Mod(v, 1e6)
	}
	for _, m := range metrics {
		m := m
		f := func(a1, a2, a3, b1, b2, b3, c1, c2, c3 float64) bool {
			p := Point{clean(a1), clean(a2), clean(a3)}
			q := Point{clean(b1), clean(b2), clean(b3)}
			r := Point{clean(c1), clean(c2), clean(c3)}
			dpq, dqp := m.Distance(p, q), m.Distance(q, p)
			if math.Abs(dpq-dqp) > 1e-9*(1+dpq) {
				return false
			}
			if m.Distance(p, p) != 0 || dpq < 0 {
				return false
			}
			// triangle: d(p,r) <= d(p,q) + d(q,r) up to float slack
			return m.Distance(p, r) <= dpq+m.Distance(q, r)+1e-6*(1+dpq)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}
