package geom

import (
	"fmt"
	"math"
)

// Metric is a distance function between equal-dimensional points.
// Implementations must be symmetric, non-negative, and satisfy d(p,p)=0.
// The paper's algorithms default to Euclidean but explicitly allow any Lp
// metric ("different distance metrics … can be used equally well", §3.2).
type Metric interface {
	// Distance returns the distance between p and q.
	Distance(p, q Point) float64
	// Name returns a short identifier such as "euclidean".
	Name() string
}

// Euclidean is the L2 metric.
type Euclidean struct{}

// Distance returns the L2 distance between p and q.
func (Euclidean) Distance(p, q Point) float64 { return math.Sqrt(SquaredDistance(p, q)) }

// Name returns "euclidean".
func (Euclidean) Name() string { return "euclidean" }

// Manhattan is the L1 metric.
type Manhattan struct{}

// Distance returns the L1 distance between p and q.
func (Manhattan) Distance(p, q Point) float64 {
	mustSameDims(p, q)
	var s float64
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	return s
}

// Name returns "manhattan".
func (Manhattan) Name() string { return "manhattan" }

// Chebyshev is the L∞ metric.
type Chebyshev struct{}

// Distance returns the L∞ distance between p and q.
func (Chebyshev) Distance(p, q Point) float64 {
	mustSameDims(p, q)
	var m float64
	for i := range p {
		if d := math.Abs(p[i] - q[i]); d > m {
			m = d
		}
	}
	return m
}

// Name returns "chebyshev".
func (Chebyshev) Name() string { return "chebyshev" }

// Minkowski is the general Lp metric for p ≥ 1.
type Minkowski struct {
	// P is the order of the metric; must be ≥ 1.
	P float64
}

// Distance returns the Lp distance between a and b.
func (m Minkowski) Distance(a, b Point) float64 {
	mustSameDims(a, b)
	if m.P < 1 {
		panic("geom: Minkowski metric requires P >= 1")
	}
	var s float64
	for i := range a {
		s += math.Pow(math.Abs(a[i]-b[i]), m.P)
	}
	return math.Pow(s, 1/m.P)
}

// Name returns "minkowski(p)".
func (m Minkowski) Name() string { return fmt.Sprintf("minkowski(%g)", m.P) }

// SquaredDistance returns the squared Euclidean distance between p and q.
// It avoids the square root for hot paths (nearest-neighbour search,
// k-means assignment) where only the ordering matters.
func SquaredDistance(p, q Point) float64 {
	mustSameDims(p, q)
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return s
}

// Distance returns the Euclidean distance between p and q.
func Distance(p, q Point) float64 { return math.Sqrt(SquaredDistance(p, q)) }

// UnitBallVolume returns the volume of the d-dimensional Euclidean ball of
// radius r: V_d(r) = π^(d/2) / Γ(d/2+1) · r^d. The outlier detector uses it
// to reason about expected neighbour counts under a density estimate.
func UnitBallVolume(d int, r float64) float64 {
	if d < 0 {
		panic("geom: negative dimension")
	}
	lg, _ := math.Lgamma(float64(d)/2 + 1)
	return math.Exp(float64(d)/2*math.Log(math.Pi) - lg + float64(d)*math.Log(r))
}
