package geom

import (
	"fmt"
	"math"
)

// Rect is a closed axis-aligned hyper-rectangle [Min, Max].
// It is the region primitive used by the synthetic generators (clusters are
// hyper-rectangles, §4.1), the grid sampler, and the kd-tree bounds.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning [min, max]. It panics if the
// dimensions differ or any min coordinate exceeds the matching max.
func NewRect(min, max Point) Rect {
	mustSameDims(min, max)
	for i := range min {
		if min[i] > max[i] {
			panic(fmt.Sprintf("geom: inverted rect on dim %d: %g > %g", i, min[i], max[i]))
		}
	}
	return Rect{Min: min.Clone(), Max: max.Clone()}
}

// UnitCube returns [0,1]^d, the canonical domain of the paper.
func UnitCube(d int) Rect {
	min := make(Point, d)
	max := make(Point, d)
	for i := range max {
		max[i] = 1
	}
	return Rect{Min: min, Max: max}
}

// Dims returns the dimensionality of the rectangle.
func (r Rect) Dims() int { return len(r.Min) }

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect { return Rect{Min: r.Min.Clone(), Max: r.Max.Clone()} }

// Contains reports whether p lies inside the closed rectangle.
func (r Rect) Contains(p Point) bool {
	mustSameDims(r.Min, p)
	for i := range p {
		if p[i] < r.Min[i] || p[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Center returns the midpoint of the rectangle.
func (r Rect) Center() Point {
	c := make(Point, len(r.Min))
	for i := range c {
		c[i] = (r.Min[i] + r.Max[i]) / 2
	}
	return c
}

// Side returns the extent of the rectangle along dimension i.
func (r Rect) Side(i int) float64 { return r.Max[i] - r.Min[i] }

// Volume returns the product of the side lengths.
func (r Rect) Volume() float64 {
	v := 1.0
	for i := range r.Min {
		v *= r.Max[i] - r.Min[i]
	}
	return v
}

// Intersects reports whether r and s overlap (boundaries touching counts).
func (r Rect) Intersects(s Rect) bool {
	mustSameDims(r.Min, s.Min)
	for i := range r.Min {
		if r.Max[i] < s.Min[i] || s.Max[i] < r.Min[i] {
			return false
		}
	}
	return true
}

// Extend grows r in place to cover p.
func (r *Rect) Extend(p Point) {
	mustSameDims(r.Min, p)
	for i := range p {
		if p[i] < r.Min[i] {
			r.Min[i] = p[i]
		}
		if p[i] > r.Max[i] {
			r.Max[i] = p[i]
		}
	}
}

// MinDist returns the minimum Euclidean distance from p to any point of r
// (zero when p is inside). The kd-tree uses it for branch pruning and the
// KDE ball integral uses it to discard kernels with disjoint support.
func (r Rect) MinDist(p Point) float64 {
	mustSameDims(r.Min, p)
	var s float64
	for i := range p {
		switch {
		case p[i] < r.Min[i]:
			d := r.Min[i] - p[i]
			s += d * d
		case p[i] > r.Max[i]:
			d := p[i] - r.Max[i]
			s += d * d
		}
	}
	return math.Sqrt(s)
}

// MaxDist returns the maximum Euclidean distance from p to any point of r.
func (r Rect) MaxDist(p Point) float64 {
	mustSameDims(r.Min, p)
	var s float64
	for i := range p {
		d := math.Max(math.Abs(p[i]-r.Min[i]), math.Abs(p[i]-r.Max[i]))
		s += d * d
	}
	return math.Sqrt(s)
}

// BoundingRect returns the tightest rectangle covering all pts.
// It panics if pts is empty.
func BoundingRect(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: BoundingRect of empty point set")
	}
	r := Rect{Min: pts[0].Clone(), Max: pts[0].Clone()}
	for _, p := range pts[1:] {
		r.Extend(p)
	}
	return r
}

// Scaler affinely maps an arbitrary bounding box onto the unit hypercube.
// The paper assumes the data domain is [0,1]^d "otherwise we can scale the
// attributes" (§2); Scaler is that scaling, with an exact inverse.
type Scaler struct {
	box  Rect
	span Point // side lengths, with zero sides replaced by 1 to stay invertible
}

// NewScaler builds a Scaler for the given bounding box. Degenerate (zero
// width) dimensions map to coordinate 0 and invert back to the box minimum.
func NewScaler(box Rect) *Scaler {
	s := &Scaler{box: box.Clone(), span: make(Point, box.Dims())}
	for i := range s.span {
		s.span[i] = box.Side(i)
		if s.span[i] == 0 {
			s.span[i] = 1
		}
	}
	return s
}

// ToUnit maps p from the original domain into [0,1]^d (points outside the
// box map outside the cube proportionally).
func (s *Scaler) ToUnit(p Point) Point {
	mustSameDims(s.box.Min, p)
	q := make(Point, len(p))
	for i := range p {
		q[i] = (p[i] - s.box.Min[i]) / s.span[i]
	}
	return q
}

// FromUnit is the inverse of ToUnit.
func (s *Scaler) FromUnit(q Point) Point {
	mustSameDims(s.box.Min, q)
	p := make(Point, len(q))
	for i := range q {
		p[i] = s.box.Min[i] + q[i]*s.span[i]
	}
	return p
}
