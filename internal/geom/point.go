// Package geom provides the low-level geometric primitives shared by every
// other subsystem: d-dimensional points, axis-aligned rectangles, Minkowski
// distance metrics, and affine scaling of a dataset's domain onto the unit
// hypercube [0,1]^d assumed throughout the paper (§2).
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a d-dimensional point with float64 coordinates.
//
// Points are ordinary slices: they may be sub-sliced, compared with Equal,
// and mutated in place. Functions in this module never retain a caller's
// Point unless documented otherwise.
type Point []float64

// Dims returns the dimensionality of the point.
func (p Point) Dims() int { return len(p) }

// Clone returns a deep copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have identical dimensionality and coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Add returns p + q as a new point. It panics if dimensions differ.
func (p Point) Add(q Point) Point {
	mustSameDims(p, q)
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] + q[i]
	}
	return r
}

// Sub returns p - q as a new point. It panics if dimensions differ.
func (p Point) Sub(q Point) Point {
	mustSameDims(p, q)
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] - q[i]
	}
	return r
}

// Scale returns s*p as a new point.
func (p Point) Scale(s float64) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = s * p[i]
	}
	return r
}

// AddInPlace adds q into p without allocating.
func (p Point) AddInPlace(q Point) {
	mustSameDims(p, q)
	for i := range p {
		p[i] += q[i]
	}
}

// Lerp returns p + t*(q-p), the linear interpolation between p and q.
// t=0 yields p, t=1 yields q. CURE's representative shrinking uses this
// with t equal to the shrink factor toward the cluster mean.
func (p Point) Lerp(q Point, t float64) Point {
	mustSameDims(p, q)
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] + t*(q[i]-p[i])
	}
	return r
}

// Norm returns the Euclidean (L2) norm of p.
func (p Point) Norm() float64 {
	var s float64
	for _, v := range p {
		s += v * v
	}
	return math.Sqrt(s)
}

// IsFinite reports whether every coordinate is finite (no NaN or ±Inf).
func (p Point) IsFinite() bool {
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// String formats the point as "(x1, x2, ...)" with compact precision.
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.6g", v)
	}
	b.WriteByte(')')
	return b.String()
}

// Centroid returns the arithmetic mean of the given points.
// It panics if pts is empty or dimensions are inconsistent.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		panic("geom: Centroid of empty point set")
	}
	c := make(Point, len(pts[0]))
	for _, p := range pts {
		mustSameDims(c, p)
		for i := range c {
			c[i] += p[i]
		}
	}
	inv := 1.0 / float64(len(pts))
	for i := range c {
		c[i] *= inv
	}
	return c
}

// WeightedCentroid returns the weighted mean Σ w_i p_i / Σ w_i.
// It panics if the inputs are empty, lengths differ, or total weight is zero.
func WeightedCentroid(pts []Point, w []float64) Point {
	if len(pts) == 0 || len(pts) != len(w) {
		panic("geom: WeightedCentroid requires equal, non-zero lengths")
	}
	c := make(Point, len(pts[0]))
	var tot float64
	for j, p := range pts {
		mustSameDims(c, p)
		for i := range c {
			c[i] += w[j] * p[i]
		}
		tot += w[j]
	}
	if tot == 0 {
		panic("geom: WeightedCentroid with zero total weight")
	}
	for i := range c {
		c[i] /= tot
	}
	return c
}

func mustSameDims(p, q Point) {
	if len(p) != len(q) {
		panic(fmt.Sprintf("geom: dimension mismatch %d vs %d", len(p), len(q)))
	}
}
