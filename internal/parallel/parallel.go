// Package parallel provides the bounded worker pool and block scheduling
// shared by every parallelized stage of the pipeline: dataset block scans,
// density evaluation, sampling, and the distance loops in clustering and
// outlier detection.
//
// The design constraint throughout is determinism: a computation run with
// any worker count must produce bit-for-bit the result of the serial run.
// The package therefore never exposes unordered completion. Work is split
// into blocks by index arithmetic only (block boundaries depend on the
// input size and block size, never on the worker count), workers pull block
// indices from a shared counter, and callers reduce per-block results in
// block order. Commutative-and-associative reductions (integer counts) may
// be merged in any order; floating-point reductions must be merged in block
// order, which is what the helpers here make natural.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// ErrCanceled is returned (wrapped, with the context's own error as a
// second cause) when a context-aware run is abandoned because its context
// was canceled or its deadline expired. Checks are coarse — once per task
// or block, never per point — so cancellation latency is bounded by one
// block's work. Test with errors.Is(err, ErrCanceled); the wrapped error
// also matches context.Canceled / context.DeadlineExceeded as appropriate.
var ErrCanceled = errors.New("parallel: canceled")

// ctxErr converts a done context into the typed cancellation error, or
// returns nil for a live (or nil) context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return nil
}

// DefaultBlockSize is the number of points per scheduling block when the
// caller does not choose one. Large enough that per-block overhead
// (goroutine handoff, one RNG split, buffer setup) is negligible, small
// enough that a 100k-point dataset still splits into ~25 blocks and keeps
// 8 workers busy.
const DefaultBlockSize = 4096

// Degree resolves a Parallelism option to an effective worker count:
// 0 means runtime.GOMAXPROCS(0) (use the machine), negative values are
// clamped to 1 (serial).
func Degree(p int) int {
	if p == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		return 1
	}
	return p
}

// BlockSize resolves a block-size option: 0 means DefaultBlockSize,
// negative values are clamped to 1.
func BlockSize(bs int) int {
	if bs == 0 {
		return DefaultBlockSize
	}
	if bs < 1 {
		return 1
	}
	return bs
}

// NumBlocks returns how many blocks of the given size cover n items.
func NumBlocks(n, blockSize int) int {
	blockSize = BlockSize(blockSize)
	return (n + blockSize - 1) / blockSize
}

// BlockRange returns the half-open item range [start, end) of block b over
// n items. The range depends only on n, blockSize, and b — never on how
// many workers execute the blocks — which is the foundation of the
// determinism argument in DESIGN.md.
func BlockRange(b, n, blockSize int) (start, end int) {
	blockSize = BlockSize(blockSize)
	start = b * blockSize
	end = start + blockSize
	if end > n {
		end = n
	}
	return start, end
}

// Do runs fn(i) for every i in [0, n), distributing the calls over
// Degree(parallelism) goroutines. With an effective degree of 1 (or n ≤ 1)
// fn is called inline, in index order, with no goroutines — the serial
// reference path. Otherwise workers pull indices from a shared counter, so
// call order is unspecified; fn must only write to state owned by index i
// (or otherwise synchronized).
//
// The first error stops the distribution of further indices (in-flight
// calls complete) and is returned. Do never returns before every started
// fn has finished.
func Do(n, parallelism int, fn func(i int) error) error {
	return DoCtxObs(nil, n, parallelism, nil, fn)
}

// DoCtx is Do with coarse cancellation: the context is checked once before
// each task (never inside one), and a done context stops the distribution
// of further indices and returns ErrCanceled (wrapped). A nil ctx disables
// the checks.
func DoCtx(ctx context.Context, n, parallelism int, fn func(i int) error) error {
	return DoCtxObs(ctx, n, parallelism, nil, fn)
}

// DoObs is Do with worker-pool observability: when rec is non-nil, each
// invocation records one pool run (inline or pooled), the tasks scheduled,
// and the workers spawned. The accounting happens once per call, before
// any fn runs, so it costs nothing per task and cannot perturb results —
// scheduling is identical with rec nil or set.
func DoObs(n, parallelism int, rec *obs.Recorder, fn func(i int) error) error {
	return DoCtxObs(nil, n, parallelism, rec, fn)
}

// DoCtxObs is Do with both the cancellation of DoCtx and the accounting of
// DoObs. Cancellation never changes the result of a run that completes:
// tasks either all run, or the call returns ErrCanceled.
func DoCtxObs(ctx context.Context, n, parallelism int, rec *obs.Recorder, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := Degree(parallelism)
	if workers > n {
		workers = n
	}
	rec.PoolRun(n, workers)
	// One event per pool run (per scan pass, not per task), so a traced
	// request shows how its block work was scheduled. The context lookup
	// is the entire cost when tracing is off.
	trace.FromContext(ctx).Eventf("pool/run", "tasks=%d workers=%d", n, workers)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctxErr(ctx); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		failed  atomic.Bool
		errOnce sync.Once
		firstE  error
		wg      sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				if err := ctxErr(ctx); err != nil {
					errOnce.Do(func() { firstE = err })
					failed.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errOnce.Do(func() { firstE = err })
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstE
}

// Blocks runs fn(b, start, end) for every block of blockSize items over n,
// using Do for scheduling. It is the common shape of a chunked scan: the
// caller allocates per-block result slots up front (NumBlocks tells it how
// many) and reduces them in block order afterwards.
func Blocks(n, blockSize, parallelism int, fn func(b, start, end int) error) error {
	return BlocksObs(n, blockSize, parallelism, nil, fn)
}

// BlocksObs is Blocks with the pool accounting of DoObs.
func BlocksObs(n, blockSize, parallelism int, rec *obs.Recorder, fn func(b, start, end int) error) error {
	return BlocksCtxObs(nil, n, blockSize, parallelism, rec, fn)
}

// BlocksCtxObs is Blocks with per-block cancellation (the context is
// checked before each block is scheduled, see DoCtx) and pool accounting.
func BlocksCtxObs(ctx context.Context, n, blockSize, parallelism int, rec *obs.Recorder, fn func(b, start, end int) error) error {
	nb := NumBlocks(n, blockSize)
	return DoCtxObs(ctx, nb, parallelism, rec, func(b int) error {
		start, end := BlockRange(b, n, blockSize)
		return fn(b, start, end)
	})
}

// SleepCtx sleeps for d or until ctx is done, whichever comes first,
// returning the typed cancellation error in the latter case. It is the
// context-aware time.Sleep used by retry backoff and fault-injected
// delays: a canceled request never waits out a backoff. A nil ctx sleeps
// unconditionally.
func SleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctxErr(ctx)
	}
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctxErr(ctx)
	}
}
