package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestDegree(t *testing.T) {
	if got := Degree(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Degree(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Degree(-3); got != 1 {
		t.Errorf("Degree(-3) = %d, want 1", got)
	}
	if got := Degree(7); got != 7 {
		t.Errorf("Degree(7) = %d, want 7", got)
	}
}

func TestBlockArithmetic(t *testing.T) {
	cases := []struct {
		n, bs, blocks int
	}{
		{0, 10, 0},
		{1, 10, 1},
		{10, 10, 1},
		{11, 10, 2},
		{100, 10, 10},
		{5, 0, 1}, // default block size
	}
	for _, c := range cases {
		if got := NumBlocks(c.n, c.bs); got != c.blocks {
			t.Errorf("NumBlocks(%d, %d) = %d, want %d", c.n, c.bs, got, c.blocks)
		}
	}
	// Block ranges must tile [0, n) exactly.
	n, bs := 1037, 64
	covered := 0
	for b := 0; b < NumBlocks(n, bs); b++ {
		start, end := BlockRange(b, n, bs)
		if start != covered {
			t.Fatalf("block %d starts at %d, want %d", b, start, covered)
		}
		if end <= start || end > n {
			t.Fatalf("block %d has range [%d, %d)", b, start, end)
		}
		covered = end
	}
	if covered != n {
		t.Fatalf("blocks cover %d of %d items", covered, n)
	}
}

func TestDoVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		const n = 1000
		var hits [n]atomic.Int32
		err := Do(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestDoSerialOrder(t *testing.T) {
	var order []int
	err := Do(10, 1, func(i int) error {
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial Do out of order: %v", order)
		}
	}
}

func TestDoError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var calls atomic.Int32
		err := Do(1000, workers, func(i int) error {
			calls.Add(1)
			if i == 3 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		// The error must stop scheduling well before all indices run.
		if n := calls.Load(); workers > 1 && n == 1000 {
			t.Errorf("workers=%d: error did not stop scheduling (%d calls)", workers, n)
		}
	}
}

func TestBlocksTiling(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		const n = 10_000
		var covered [n]atomic.Int32
		err := Blocks(n, 128, workers, func(b, start, end int) error {
			for i := start; i < end; i++ {
				covered[i].Add(1)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range covered {
			if covered[i].Load() != 1 {
				t.Fatalf("workers=%d: item %d covered %d times", workers, i, covered[i].Load())
			}
		}
	}
}
