package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestDoCtxCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var calls atomic.Int32
		err := DoCtx(ctx, 1000, workers, func(i int) error {
			calls.Add(1)
			return nil
		})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("workers=%d: err = %v, want ErrCanceled", workers, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v does not match context.Canceled", workers, err)
		}
		if n := calls.Load(); n != 0 {
			t.Errorf("workers=%d: %d tasks ran on a pre-canceled context", workers, n)
		}
	}
}

func TestDoCtxCancelMidRun(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var calls atomic.Int32
		err := DoCtx(ctx, 10_000, workers, func(i int) error {
			if calls.Add(1) == 10 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("workers=%d: err = %v, want ErrCanceled", workers, err)
		}
		// The check is per task, so at most a handful of in-flight tasks
		// complete after the cancel.
		if n := calls.Load(); n == 10_000 {
			t.Errorf("workers=%d: cancellation did not stop scheduling (%d calls)", workers, n)
		}
	}
}

func TestDoCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	err := DoCtx(ctx, 100, 4, func(i int) error { return nil })
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
}

func TestDoCtxNilAndLiveContexts(t *testing.T) {
	for _, ctx := range []context.Context{nil, context.Background()} {
		var calls atomic.Int32
		err := DoCtx(ctx, 500, 4, func(i int) error {
			calls.Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("ctx=%v: err = %v", ctx, err)
		}
		if n := calls.Load(); n != 500 {
			t.Errorf("ctx=%v: %d calls, want 500", ctx, n)
		}
	}
}

func TestBlocksCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := BlocksCtxObs(ctx, 10_000, 128, 4, nil, func(b, start, end int) error { return nil })
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}
