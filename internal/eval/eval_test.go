package eval

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/synth"
)

func twoTruth() []synth.Cluster {
	return []synth.Cluster{
		{Shape: synth.Box{R: geom.NewRect(geom.Point{0.1, 0.1}, geom.Point{0.3, 0.3})}, Size: 100},
		{Shape: synth.Box{R: geom.NewRect(geom.Point{0.6, 0.6}, geom.Point{0.9, 0.9})}, Size: 100},
	}
}

func TestFoundByRepsAllInside(t *testing.T) {
	truth := twoTruth()
	found := [][]geom.Point{
		{{0.15, 0.15}, {0.2, 0.2}, {0.25, 0.25}}, // all in cluster 0
	}
	got := FoundByReps(found, truth, 0.9)
	if !got[0] || got[1] {
		t.Errorf("found = %v, want [true false]", got)
	}
}

func TestFoundByRepsBelowThreshold(t *testing.T) {
	truth := twoTruth()
	// 2 of 3 reps inside cluster 0 (66% < 90%): not found.
	found := [][]geom.Point{
		{{0.15, 0.15}, {0.2, 0.2}, {0.5, 0.5}},
	}
	got := FoundByReps(found, truth, 0.9)
	if got[0] || got[1] {
		t.Errorf("found = %v, want none", got)
	}
	// With a 60% rule it counts.
	got = FoundByReps(found, truth, 0.6)
	if !got[0] {
		t.Error("60% rule should accept 2/3")
	}
}

func TestFoundByRepsMergedClusterFindsNothing(t *testing.T) {
	truth := twoTruth()
	// A discovered cluster straddling both true clusters (merge failure)
	// has no 90% majority and finds neither.
	found := [][]geom.Point{
		{{0.2, 0.2}, {0.2, 0.25}, {0.7, 0.7}, {0.8, 0.8}},
	}
	got := FoundByReps(found, truth, 0.9)
	if got[0] || got[1] {
		t.Errorf("merged cluster should find nothing, got %v", got)
	}
}

func TestFoundByRepsDefaultFraction(t *testing.T) {
	truth := twoTruth()
	found := [][]geom.Point{{{0.2, 0.2}}}
	if got := FoundByReps(found, truth, 0); !got[0] {
		t.Error("minFrac=0 should apply the default 0.9 rule")
	}
}

func TestFoundByCenters(t *testing.T) {
	truth := twoTruth()
	centers := []geom.Point{{0.2, 0.2}, {0.5, 0.5}}
	got := FoundByCenters(centers, truth)
	if !got[0] || got[1] {
		t.Errorf("centers found = %v", got)
	}
}

func TestCountTrue(t *testing.T) {
	if CountTrue([]bool{true, false, true}) != 2 {
		t.Error("CountTrue broken")
	}
	if CountTrue(nil) != 0 {
		t.Error("CountTrue(nil) != 0")
	}
}

func TestARIPerfect(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	if got := AdjustedRandIndex(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("ARI(a,a) = %v", got)
	}
	// Renaming labels must not matter.
	b := []int{5, 5, 9, 9, -1, -1}
	if got := AdjustedRandIndex(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("ARI under renaming = %v", got)
	}
}

func TestARIOpposite(t *testing.T) {
	// A partition versus all-singletons has low ARI.
	a := []int{0, 0, 0, 1, 1, 1}
	b := []int{0, 1, 2, 3, 4, 5}
	if got := AdjustedRandIndex(a, b); got > 0.01 {
		t.Errorf("ARI vs singletons = %v, want ≈0", got)
	}
}

func TestARIRandomIsNearZero(t *testing.T) {
	a := []int{0, 1, 0, 1, 0, 1, 0, 1}
	b := []int{0, 0, 1, 1, 0, 0, 1, 1}
	got := AdjustedRandIndex(a, b)
	if math.Abs(got) > 0.5 {
		t.Errorf("independent partitions ARI = %v", got)
	}
}

func TestARIMismatchedLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AdjustedRandIndex([]int{1}, []int{1, 2})
}

func TestPurity(t *testing.T) {
	pred := []int{0, 0, 0, 1, 1, 1}
	truth := []int{0, 0, 1, 1, 1, 1}
	// cluster 0: majority label 0 (2 of 3); cluster 1: label 1 (3 of 3).
	if got := Purity(pred, truth); math.Abs(got-5.0/6) > 1e-12 {
		t.Errorf("purity = %v", got)
	}
	if Purity(nil, nil) != 1 {
		t.Error("empty purity should be 1")
	}
}

func TestSetMetrics(t *testing.T) {
	pred := []geom.Point{{1, 1}, {2, 2}, {9, 9}}
	truth := []geom.Point{{1, 1}, {2, 2}, {3, 3}}
	prec, rec := SetMetrics(pred, truth, 1e-9)
	if math.Abs(prec-2.0/3) > 1e-12 || math.Abs(rec-2.0/3) > 1e-12 {
		t.Errorf("prec/rec = %v/%v", prec, rec)
	}
}

func TestSetMetricsEmpty(t *testing.T) {
	prec, rec := SetMetrics(nil, nil, 0)
	if prec != 1 || rec != 1 {
		t.Errorf("empty/empty = %v/%v", prec, rec)
	}
	prec, rec = SetMetrics(nil, []geom.Point{{1}}, 0)
	if prec != 1 || rec != 0 {
		t.Errorf("nil/pred = %v/%v", prec, rec)
	}
}

func TestF1(t *testing.T) {
	if got := F1(1, 1); got != 1 {
		t.Errorf("F1(1,1) = %v", got)
	}
	if got := F1(0, 0); got != 0 {
		t.Errorf("F1(0,0) = %v", got)
	}
	if got := F1(0.5, 1); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("F1(0.5,1) = %v", got)
	}
}

func TestNoiseFraction(t *testing.T) {
	truth := twoTruth()
	reps := []geom.Point{{0.2, 0.2}, {0.5, 0.5}, {0.05, 0.9}, {0.7, 0.7}}
	if got := NoiseFraction(reps, truth); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("noise fraction = %v", got)
	}
	if NoiseFraction(nil, truth) != 0 {
		t.Error("empty reps noise fraction should be 0")
	}
}
