// Package eval scores clustering and outlier-detection output against the
// synthetic ground truth, implementing the paper's evaluation criteria
// (§4.3): a true cluster is "found" when at least 90 % of some discovered
// cluster's representative points lie in the interior of that true
// cluster; for BIRCH, which reports centers and radii, a true cluster is
// found when a reported center lies in its interior. The package also
// provides the Adjusted Rand Index and purity for label-level comparisons
// and precision/recall for outlier sets.
package eval

import (
	"repro/internal/geom"
	"repro/internal/synth"
)

// DefaultRepFraction is the paper's 90 % representative containment rule.
const DefaultRepFraction = 0.9

// FoundByReps reports, per true cluster, whether any discovered cluster
// "finds" it: at least minFrac of the discovered cluster's representatives
// lie inside that true cluster's shape (and in no other — the dominant
// shape wins). Each discovered cluster can find at most one true cluster.
func FoundByReps(found [][]geom.Point, truth []synth.Cluster, minFrac float64) []bool {
	if minFrac <= 0 {
		minFrac = DefaultRepFraction
	}
	result := make([]bool, len(truth))
	for _, reps := range found {
		if len(reps) == 0 {
			continue
		}
		counts := make([]int, len(truth))
		for _, r := range reps {
			for ti := range truth {
				if truth[ti].Shape.Contains(r) {
					counts[ti]++
					break // shapes are disjoint by construction
				}
			}
		}
		best, bestC := -1, 0
		for ti, c := range counts {
			if c > bestC {
				best, bestC = ti, c
			}
		}
		if best >= 0 && float64(bestC) >= minFrac*float64(len(reps)) {
			result[best] = true
		}
	}
	return result
}

// FoundByCenters reports, per true cluster, whether any reported center
// lies in its interior — the BIRCH criterion of §4.3.
func FoundByCenters(centers []geom.Point, truth []synth.Cluster) []bool {
	result := make([]bool, len(truth))
	for _, c := range centers {
		for ti := range truth {
			if truth[ti].Shape.Contains(c) {
				result[ti] = true
				break
			}
		}
	}
	return result
}

// CountTrue returns the number of true entries — the "number of found
// clusters" y-axis of Figs. 4-7.
func CountTrue(found []bool) int {
	n := 0
	for _, f := range found {
		if f {
			n++
		}
	}
	return n
}

// AdjustedRandIndex computes the ARI between two label assignments of the
// same points. Any integer labels work (noise labels like -1 form their
// own class). 1 means identical partitions; 0 is the chance level.
func AdjustedRandIndex(a, b []int) float64 {
	if len(a) != len(b) {
		panic("eval: label slices differ in length")
	}
	n := len(a)
	if n == 0 {
		return 1
	}
	cont := map[[2]int]int{}
	rows := map[int]int{}
	cols := map[int]int{}
	for i := range a {
		cont[[2]int{a[i], b[i]}]++
		rows[a[i]]++
		cols[b[i]]++
	}
	var sumComb, rowComb, colComb float64
	for _, v := range cont {
		sumComb += comb2(v)
	}
	for _, v := range rows {
		rowComb += comb2(v)
	}
	for _, v := range cols {
		colComb += comb2(v)
	}
	total := comb2(n)
	expected := rowComb * colComb / total
	maxIdx := (rowComb + colComb) / 2
	if maxIdx == expected {
		return 1 // both partitions trivial
	}
	return (sumComb - expected) / (maxIdx - expected)
}

func comb2(n int) float64 {
	return float64(n) * float64(n-1) / 2
}

// Purity is the fraction of points whose predicted cluster's majority
// truth label matches their own truth label.
func Purity(pred, truth []int) float64 {
	if len(pred) != len(truth) {
		panic("eval: label slices differ in length")
	}
	if len(pred) == 0 {
		return 1
	}
	counts := map[int]map[int]int{}
	for i := range pred {
		m := counts[pred[i]]
		if m == nil {
			m = map[int]int{}
			counts[pred[i]] = m
		}
		m[truth[i]]++
	}
	correct := 0
	for _, m := range counts {
		best := 0
		for _, c := range m {
			if c > best {
				best = c
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(pred))
}

// SetMetrics compares a predicted point set against a truth point set by
// coordinate equality (within tol) and returns precision and recall.
// Empty prediction against empty truth scores 1/1.
func SetMetrics(predicted, truth []geom.Point, tol float64) (precision, recall float64) {
	if len(predicted) == 0 && len(truth) == 0 {
		return 1, 1
	}
	match := func(p geom.Point, set []geom.Point) bool {
		for _, q := range set {
			if geom.Distance(p, q) <= tol {
				return true
			}
		}
		return false
	}
	tp := 0
	for _, p := range predicted {
		if match(p, truth) {
			tp++
		}
	}
	found := 0
	for _, q := range truth {
		if match(q, predicted) {
			found++
		}
	}
	if len(predicted) > 0 {
		precision = float64(tp) / float64(len(predicted))
	} else {
		precision = 1
	}
	if len(truth) > 0 {
		recall = float64(found) / float64(len(truth))
	} else {
		recall = 1
	}
	return precision, recall
}

// F1 combines precision and recall.
func F1(precision, recall float64) float64 {
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// NoiseFraction returns the fraction of reps lying in no true cluster —
// a diagnostic for how much noise a sample-based clustering absorbed.
func NoiseFraction(reps []geom.Point, truth []synth.Cluster) float64 {
	if len(reps) == 0 {
		return 0
	}
	out := 0
	for _, r := range reps {
		inside := false
		for ti := range truth {
			if truth[ti].Shape.Contains(r) {
				inside = true
				break
			}
		}
		if !inside {
			out++
		}
	}
	return float64(out) / float64(len(reps))
}
