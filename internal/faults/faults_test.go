package faults

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/parallel"
)

func testData(t *testing.T, n int) *dataset.InMemory {
	t.Helper()
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{float64(i), float64(2 * i)}
	}
	ds, err := dataset.NewInMemory(pts)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func drawKinds(seed uint64, site string, n int) []Kind {
	in := New(Config{Seed: seed, PError: 0.2, PDelay: 0.2, PPartial: 0.2, PCancel: 0.1})
	p := in.Point(site)
	out := make([]Kind, n)
	for i := range out {
		k, _, _ := p.next()
		out[i] = k
	}
	return out
}

func TestScheduleDeterministicPerSeed(t *testing.T) {
	a := drawKinds(42, "scan", 200)
	b := drawKinds(42, "scan", 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: %v vs %v — schedule not reproducible", i, a[i], b[i])
		}
	}
	c := drawKinds(43, "scan", 200)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 drew identical 200-op schedules")
	}
}

func TestSitesDrawIndependentSchedules(t *testing.T) {
	a := drawKinds(7, "scan", 200)
	b := drawKinds(7, "build", 200)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("sites scan and build drew identical 200-op schedules")
	}
}

func TestSkipExemptsEarlyOps(t *testing.T) {
	in := New(Config{Seed: 1, PError: 1, Skip: 5})
	p := in.Point("s")
	for i := 0; i < 5; i++ {
		if err := p.Check(context.Background()); err != nil {
			t.Fatalf("op %d within Skip failed: %v", i, err)
		}
	}
	if err := p.Check(context.Background()); !errors.Is(err, ErrInjected) {
		t.Fatalf("op past Skip: err = %v, want ErrInjected", err)
	}
	if got := in.Injected(); got != 1 {
		t.Errorf("injected = %d, want 1", got)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	p := in.Point("anything")
	if p != nil {
		t.Fatal("nil injector returned a non-nil point")
	}
	if err := p.Check(context.Background()); err != nil {
		t.Fatalf("nil point Check: %v", err)
	}
	ds := testData(t, 10)
	if got := Wrap(ds, nil); got != dataset.Dataset(ds) {
		t.Error("Wrap with nil point did not return the dataset unchanged")
	}
	if in.Injected() != 0 {
		t.Error("nil injector counted injections")
	}
}

func TestInjectedErrorClassification(t *testing.T) {
	perr := (&Point{site: "s"}).errAt(KindError, 3)
	if !errors.Is(perr, ErrInjected) {
		t.Error("KindError does not match ErrInjected")
	}
	var te interface{ Temporary() bool }
	if !errors.As(perr, &te) || !te.Temporary() {
		t.Error("KindError is not Temporary")
	}
	if errors.Is(perr, parallel.ErrCanceled) {
		t.Error("KindError matches ErrCanceled")
	}
	cerr := (&Point{site: "s"}).errAt(KindCancel, 4)
	if !errors.Is(cerr, parallel.ErrCanceled) || !errors.Is(cerr, ErrInjected) {
		t.Errorf("KindCancel err = %v, want to match both ErrCanceled and ErrInjected", cerr)
	}
}

func TestWrapKeepsRangeScannerAndPasses(t *testing.T) {
	ds := testData(t, 100)
	w := Wrap(ds, New(Config{Seed: 1}).Point("scan"))
	if _, ok := w.(dataset.RangeScanner); !ok {
		t.Fatal("wrapped InMemory lost the RangeScanner fast path")
	}
	if w.Len() != 100 || w.Dims() != 2 {
		t.Fatalf("len/dims = %d/%d, want 100/2", w.Len(), w.Dims())
	}
	// A fault-free block scan behaves exactly like the unwrapped one,
	// and the pass charge lands on the wrapped dataset.
	var n int
	err := dataset.ScanBlocks(w, 32, 1, func(block, start int, pts []geom.Point) error {
		n += len(pts)
		return nil
	})
	if err != nil || n != 100 {
		t.Fatalf("block scan: n = %d err = %v, want 100, nil", n, err)
	}
	if ds.Passes() != 1 {
		t.Errorf("underlying passes = %d, want 1", ds.Passes())
	}
}

// TestPartialScanNeverSilent drives scans under a partial-heavy schedule
// and checks the contract: a scan either delivers every point and
// returns nil, or returns an injected error — a short scan with a nil
// error would silently corrupt downstream results.
func TestPartialScanNeverSilent(t *testing.T) {
	const n = 64
	ds := testData(t, n)
	w := Wrap(ds, New(Config{Seed: 9, PPartial: 0.8}).Point("scan"))
	sawPartial := false
	for i := 0; i < 50; i++ {
		seen := 0
		err := w.Scan(func(geom.Point) error { seen++; return nil })
		switch {
		case err == nil:
			if seen != n {
				t.Fatalf("iter %d: nil error with %d/%d points — silent truncation", i, seen, n)
			}
		case errors.Is(err, ErrInjected):
			if seen >= n {
				t.Fatalf("iter %d: full scan but injected error", i)
			}
			sawPartial = true
		default:
			t.Fatalf("iter %d: unexpected error %v", i, err)
		}
	}
	if !sawPartial {
		t.Error("0.8 partial probability never fired in 50 scans")
	}
}

func TestScanRangeInjection(t *testing.T) {
	const n = 100
	w := Wrap(testData(t, n), New(Config{Seed: 3, PError: 0.5}).Point("scan")).(dataset.RangeScanner)
	failed := 0
	for i := 0; i < 40; i++ {
		seen := 0
		err := w.ScanRange(10, 60, func(geom.Point) error { seen++; return nil })
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("iter %d: unexpected error %v", i, err)
			}
			failed++
			continue
		}
		if seen != 50 {
			t.Fatalf("iter %d: clean range scan saw %d points, want 50", i, seen)
		}
	}
	if failed == 0 {
		t.Error("0.5 error probability never fired in 40 range scans")
	}
}

func TestCheckDelayHonorsContext(t *testing.T) {
	in := New(Config{Seed: 1, PDelay: 1, MaxDelay: 10 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := in.Point("slow").Check(ctx)
	if !errors.Is(err, parallel.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("canceled delay still took %v", elapsed)
	}
}

func TestCallbackErrorsPassThrough(t *testing.T) {
	w := Wrap(testData(t, 10), New(Config{Seed: 1, PPartial: 1}).Point("scan"))
	boom := errors.New("boom")
	err := w.Scan(func(geom.Point) error { return boom })
	// With cut 0 the injected error fires before the callback; with a
	// later cut the callback's own error must win. Either way the error
	// is never swallowed.
	if err == nil {
		t.Fatal("scan returned nil")
	}
	if !errors.Is(err, boom) && !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want boom or injected", err)
	}
}

// TestWrapOverAppendable: the wrapper is a pass-through view of a
// growing dataset. After the underlying dataset appends a generation,
// the wrapped handle reports the new length and a clean scan delivers
// every row — old and new — while faulted scans keep the
// never-silently-short contract. Windows cut over the wrapper (how the
// serving layer pins a generation) scan through the injection point too.
func TestWrapOverAppendable(t *testing.T) {
	ds := testData(t, 40)
	w := Wrap(ds, New(Config{Seed: 11, PPartial: 0.5}).Point("scan"))

	extra := make([]geom.Point, 20)
	for i := range extra {
		extra[i] = geom.Point{float64(100 + i), 0}
	}
	if err := ds.Append(extra...); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 60 {
		t.Fatalf("wrapped len = %d after append, want 60", w.Len())
	}

	sawClean, sawFault := false, false
	for i := 0; i < 50 && !(sawClean && sawFault); i++ {
		seen := 0
		err := w.Scan(func(geom.Point) error { seen++; return nil })
		switch {
		case err == nil:
			if seen != 60 {
				t.Fatalf("iter %d: nil error with %d/60 rows — silent truncation over appended data", i, seen)
			}
			sawClean = true
		case errors.Is(err, ErrInjected):
			sawFault = true
		default:
			t.Fatalf("iter %d: unexpected error %v", i, err)
		}
	}
	if !sawClean || !sawFault {
		t.Fatalf("schedule never produced both outcomes (clean=%v fault=%v)", sawClean, sawFault)
	}

	// A delta window over the wrapper: range scans hit the injection
	// point, and a clean pass sees exactly the appended rows.
	win, err := dataset.Window(w, 40, 60)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		var got []geom.Point
		err := win.Scan(func(p geom.Point) error { got = append(got, p); return nil })
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("iter %d: unexpected error %v", i, err)
			}
			continue
		}
		if len(got) != 20 || !got[0].Equal(extra[0]) || !got[19].Equal(extra[19]) {
			t.Fatalf("iter %d: clean delta scan got %d rows", i, len(got))
		}
	}
}

// TestWrapSegmentFileCloseSafety covers the mmap lifecycle under the
// wrapper: Wrap drops Sliceable (so block scans go through ScanRange, the
// decode-compatible path), scans through the wrapper match the raw file,
// and a scan after Close fails with a clean dataset.ErrClosed — never a
// read of unmapped memory.
func TestWrapSegmentFileCloseSafety(t *testing.T) {
	pts := make([]geom.Point, 200)
	for i := range pts {
		pts[i] = geom.Point{float64(i), float64(3 * i)}
	}
	mem, err := dataset.NewInMemory(pts)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/seg.dbs"
	sf, err := dataset.CreateSegmented(path, mem)
	if err != nil {
		t.Fatal(err)
	}

	in := New(Config{Seed: 1}) // zero probabilities: wrapper only, no faults
	wrapped := Wrap(sf, in.Point("scan"))
	if _, ok := wrapped.(dataset.Sliceable); ok {
		t.Fatal("wrapper must not forward Sliceable")
	}
	if _, ok := wrapped.(dataset.RangeScanner); !ok {
		t.Fatal("wrapper lost RangeScanner")
	}

	got := make([]geom.Point, len(pts))
	err = dataset.ScanBlocks(wrapped, 32, 1, func(block, start int, bp []geom.Point) error {
		for i, p := range bp {
			got[start+i] = p.Clone()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if got[i] == nil || !got[i].Equal(pts[i]) {
			t.Fatalf("point %d = %v, want %v", i, got[i], pts[i])
		}
	}

	if err := sf.Close(); err != nil {
		t.Fatal(err)
	}
	err = wrapped.Scan(func(geom.Point) error { return nil })
	if !errors.Is(err, dataset.ErrClosed) {
		t.Fatalf("scan after Close through wrapper: %v, want ErrClosed", err)
	}
	err = wrapped.(dataset.RangeScanner).ScanRange(0, 10, func(geom.Point) error { return nil })
	if !errors.Is(err, dataset.ErrClosed) {
		t.Fatalf("range scan after Close through wrapper: %v, want ErrClosed", err)
	}
}
