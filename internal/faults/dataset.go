package faults

import (
	"errors"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// errCut is the private stop used to end a partial scan; it is mapped to
// an *InjectedError before leaving the wrapper, so a truncated scan is
// always a loud failure, never a quietly short result.
var errCut = errors.New("faults: partial cut")

// Wrap returns ds with fault injection at every scan entry point. Each
// Scan or ScanRange call draws one decision from p. If ds implements
// dataset.RangeScanner the wrapper does too, so the parallel block-scan
// fast path stays exercised — with per-range injection. Pass bookkeeping
// is delegated to ds. A nil Point returns ds unchanged.
func Wrap(ds dataset.Dataset, p *Point) dataset.Dataset {
	if p == nil {
		return ds
	}
	fd := faultyDataset{ds: ds, p: p}
	if rs, ok := ds.(dataset.RangeScanner); ok {
		return &faultyRange{faultyDataset: fd, rs: rs}
	}
	return &fd
}

type faultyDataset struct {
	ds dataset.Dataset
	p  *Point
}

func (f *faultyDataset) Len() int    { return f.ds.Len() }
func (f *faultyDataset) Dims() int   { return f.ds.Dims() }
func (f *faultyDataset) Passes() int { return f.ds.Passes() }

// AddPass delegates the logical-pass charge to the wrapped dataset, so
// ScanBlocks accounting is unchanged by injection.
func (f *faultyDataset) AddPass() {
	if pc, ok := f.ds.(dataset.PassCounter); ok {
		pc.AddPass()
	}
}

func (f *faultyDataset) Scan(fn func(p geom.Point) error) error {
	return f.scanFault(f.ds.Len(), fn, func(inner func(geom.Point) error) error {
		return f.ds.Scan(inner)
	})
}

// scanFault draws one decision and applies it to a scan of n points.
// run executes the underlying scan with a (possibly cutting) callback.
func (f *faultyDataset) scanFault(n int, fn func(geom.Point) error, run func(func(geom.Point) error) error) error {
	kind, aux, op := f.p.next()
	switch kind {
	case KindError, KindCancel:
		return f.p.errAt(kind, op)
	case KindDelay:
		time.Sleep(f.p.delay(aux))
		return run(fn)
	case KindPartial:
		cut := int(frac(aux) * float64(n))
		seen := 0
		err := run(func(pt geom.Point) error {
			if seen >= cut {
				return errCut
			}
			seen++
			return fn(pt)
		})
		if errors.Is(err, errCut) {
			return f.p.errAt(KindPartial, op)
		}
		return err
	default:
		return run(fn)
	}
}

type faultyRange struct {
	faultyDataset
	rs dataset.RangeScanner
}

func (f *faultyRange) ScanRange(start, end int, fn func(p geom.Point) error) error {
	return f.scanFault(end-start, fn, func(inner func(geom.Point) error) error {
		return f.rs.ScanRange(start, end, inner)
	})
}
