package faults

import (
	"context"
	"errors"
	"testing"
)

// TestCheckPartial pins the RPC-side fault surface: errors and cancels
// come back as errors, partials come back as a truncation instruction
// (never degraded to an error — the caller must exercise its response
// validation on a genuinely short reply), and a nil point is inert.
func TestCheckPartial(t *testing.T) {
	var nilPt *Point
	if frac, trunc, err := nilPt.CheckPartial(context.Background()); frac != 0 || trunc || err != nil {
		t.Errorf("nil point: got (%v, %v, %v), want inert", frac, trunc, err)
	}

	in := New(Config{Seed: 11, PError: 0.25, PDelay: 0.25, PPartial: 0.25, PCancel: 0.1})
	pt := in.Point("rpc")
	// Replay the schedule from an identical point to know what each op drew.
	ref := New(Config{Seed: 11, PError: 0.25, PDelay: 0.25, PPartial: 0.25, PCancel: 0.1}).Point("rpc")

	var sawPartial, sawError, sawNone bool
	for op := 0; op < 300; op++ {
		kind, _, _ := ref.next()
		frac, trunc, err := pt.CheckPartial(context.Background())
		switch kind {
		case KindNone, KindDelay:
			// A clean delay resolves to no fault from the caller's view.
			if trunc || err != nil {
				t.Fatalf("op %d (%v): got (trunc=%v, err=%v)", op, kind, trunc, err)
			}
			if kind == KindNone {
				sawNone = true
			}
		case KindPartial:
			sawPartial = true
			if err != nil || !trunc {
				t.Fatalf("op %d: partial surfaced as (trunc=%v, err=%v)", op, trunc, err)
			}
			if frac < 0 || frac >= 1 {
				t.Fatalf("op %d: truncation fraction %v outside [0,1)", op, frac)
			}
		case KindError, KindCancel:
			sawError = true
			if err == nil {
				t.Fatalf("op %d (%v): no error", op, kind)
			}
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("op %d: error %v does not match ErrInjected", op, err)
			}
		}
	}
	if !sawPartial || !sawError || !sawNone {
		t.Fatalf("schedule did not cover all kinds: partial=%v error=%v none=%v",
			sawPartial, sawError, sawNone)
	}
}

// TestCheckPartialDelayHonorsContext: an injected delay under a dead
// context returns the context's error instead of sleeping.
func TestCheckPartialDelayHonorsContext(t *testing.T) {
	in := New(Config{Seed: 3, PDelay: 1})
	pt := in.Point("rpc")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := pt.CheckPartial(ctx); err == nil {
		t.Fatal("delay under canceled context returned nil")
	}
}
