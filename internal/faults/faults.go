// Package faults is a deterministic fault-injection layer for the
// serving pipeline. An Injector is seeded once; every injection site
// (a named Point) then draws an independent, reproducible decision
// stream: the k-th operation at site s fails, delays, truncates, or
// cancels purely as a function of (seed, hash(s), k). Re-running with
// the same seed replays the same schedule, which is what lets the chaos
// suite bisect a failing fault pattern from a single uint64.
//
// The layer is wiring, not policy: it wraps dataset.Dataset sources
// (Wrap) and guards build stages (Point.Check), and the serving layer's
// retry/stale-serve machinery is what turns injected faults into
// bounded, observable behavior.
package faults

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// KindNone: the operation proceeds untouched.
	KindNone Kind = iota
	// KindError: the operation fails with a transient *InjectedError.
	KindError
	// KindDelay: the operation is delayed by a deterministic duration
	// up to Config.MaxDelay, then proceeds normally.
	KindDelay
	// KindPartial: a scan delivers a deterministic prefix of its points
	// and then fails — never a silent truncation, since a quietly short
	// scan would corrupt results instead of surfacing a fault.
	KindPartial
	// KindCancel: the operation fails as if its context had been
	// canceled mid-flight (the error matches parallel.ErrCanceled).
	KindCancel
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindDelay:
		return "delay"
	case KindPartial:
		return "partial"
	case KindCancel:
		return "cancel"
	default:
		return "none"
	}
}

// ErrInjected is the sentinel all injected failures match via errors.Is,
// so tests can separate scheduled faults from genuine bugs.
var ErrInjected = errors.New("faults: injected")

// InjectedError reports one scheduled fault: which site, which operation
// index, which kind. It matches ErrInjected, reports itself Temporary()
// (the retry layer's transient classification), and for KindCancel also
// matches parallel.ErrCanceled, mimicking a scan that died to a context.
type InjectedError struct {
	Site string
	Op   uint64
	Kind Kind
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected %s at %s op %d", e.Kind, e.Site, e.Op)
}

// Is matches ErrInjected.
func (e *InjectedError) Is(target error) bool { return target == ErrInjected }

// Unwrap makes KindCancel faults match parallel.ErrCanceled, the same
// type a genuinely canceled scan returns.
func (e *InjectedError) Unwrap() error {
	if e.Kind == KindCancel {
		return parallel.ErrCanceled
	}
	return nil
}

// Temporary marks injected faults as transient for retry classification.
// KindCancel is excluded: cancellation is only retryable when the
// request itself is still live, which the retry layer checks against
// the request context, not the error.
func (e *InjectedError) Temporary() bool { return e.Kind != KindCancel }

// Config sets the per-operation fault probabilities of an Injector. The
// probabilities are cumulative slices of one uniform draw, so they must
// sum to at most 1. Zero value: no faults.
type Config struct {
	// Seed determines the entire fault schedule.
	Seed uint64
	// PError, PDelay, PPartial, PCancel are the per-operation
	// probabilities of each fault kind.
	PError   float64
	PDelay   float64
	PPartial float64
	PCancel  float64
	// MaxDelay bounds KindDelay injections (default 1ms).
	MaxDelay time.Duration
	// Skip exempts the first Skip operations at every site, e.g. to let
	// a reference artifact build cleanly before faults begin.
	Skip int
	// Rec, when set, receives obs.CtrFaultsInjected.
	Rec *obs.Recorder
}

// Injector hands out injection Points. A nil *Injector is valid and
// injects nothing, so production wiring can pass one through untouched.
type Injector struct {
	cfg Config

	mu     sync.Mutex
	points map[string]*Point

	injected atomic.Int64
}

// New builds an Injector from cfg.
func New(cfg Config) *Injector {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = time.Millisecond
	}
	return &Injector{cfg: cfg, points: make(map[string]*Point)}
}

// Point returns the injection point for site, creating it on first use.
// The same site name always returns the same Point, so its operation
// counter spans the process. Nil-safe: a nil Injector returns a nil
// Point, which injects nothing.
func (in *Injector) Point(site string) *Point {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	p := in.points[site]
	if p == nil {
		p = &Point{in: in, site: site, hash: SiteHash(site)}
		in.points[site] = p
	}
	return p
}

// Injected returns how many faults have fired across all sites.
func (in *Injector) Injected() int64 {
	if in == nil {
		return 0
	}
	return in.injected.Load()
}

func (in *Injector) note() {
	in.injected.Add(1)
	in.cfg.Rec.Counter(obs.CtrFaultsInjected).Inc()
}

// SiteHash is the stable 64-bit FNV-1a hash mixed into each site's
// decision stream, so distinct sites draw independent schedules from one
// seed.
func SiteHash(site string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	return h
}

const golden = 0x9e3779b97f4a7c15

// mix64 is the SplitMix64 finalizer (same construction as stats.RNG):
// a bijective avalanche over the combined (seed, site, op) word.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Point is one named injection site. Each operation (a Scan call, a
// build attempt) draws the next decision in the site's stream.
type Point struct {
	in   *Injector
	site string
	hash uint64
	ops  atomic.Uint64

	fired    atomic.Int64 // faults of any kind this point has injected
	firedErr atomic.Int64 // ... that surfaced as errors (all but clean delays)
}

// Fired returns how many faults this point has injected (0 on nil).
// The chaos suite reconciles it against the fault events recorded in
// request traces.
func (p *Point) Fired() int64 {
	if p == nil {
		return 0
	}
	return p.fired.Load()
}

// FiredErrors returns how many injected faults surfaced as errors —
// every kind except delay (0 on nil).
func (p *Point) FiredErrors() int64 {
	if p == nil {
		return 0
	}
	return p.firedErr.Load()
}

// Site returns the point's site name ("" on nil).
func (p *Point) Site() string {
	if p == nil {
		return ""
	}
	return p.site
}

// next draws the decision for this site's next operation: the fault kind
// plus auxiliary bits (delay length, truncation fraction) and the
// operation index. Pure function of (seed, site, op index).
func (p *Point) next() (Kind, uint64, uint64) {
	if p == nil {
		return KindNone, 0, 0
	}
	op := p.ops.Add(1) - 1
	cfg := &p.in.cfg
	if op < uint64(cfg.Skip) {
		return KindNone, 0, op
	}
	h := mix64(cfg.Seed ^ p.hash ^ mix64(op+golden))
	u := float64(h>>11) / (1 << 53)
	var kind Kind
	switch {
	case u < cfg.PError:
		kind = KindError
	case u < cfg.PError+cfg.PDelay:
		kind = KindDelay
	case u < cfg.PError+cfg.PDelay+cfg.PPartial:
		kind = KindPartial
	case u < cfg.PError+cfg.PDelay+cfg.PPartial+cfg.PCancel:
		kind = KindCancel
	default:
		return KindNone, 0, op
	}
	p.in.note()
	p.fired.Add(1)
	if kind != KindDelay {
		p.firedErr.Add(1)
	}
	return kind, mix64(h ^ golden), op
}

// frac maps auxiliary bits onto [0, 1).
func frac(aux uint64) float64 { return float64(aux>>11) / (1 << 53) }

// delay maps auxiliary bits onto (0, MaxDelay].
func (p *Point) delay(aux uint64) time.Duration {
	d := time.Duration(frac(aux) * float64(p.in.cfg.MaxDelay))
	if d <= 0 {
		d = time.Microsecond
	}
	return d
}

func (p *Point) errAt(kind Kind, op uint64) error {
	return &InjectedError{Site: p.site, Op: op, Kind: kind}
}

// CheckPartial draws the next decision for an RPC-shaped operation whose
// response payload can be truncated in flight. It behaves like Check for
// every kind except KindPartial, which it surfaces as truncate=true with
// the schedule's deterministic truncation fraction in [0, 1) and a nil
// error: the caller is expected to deliver that prefix of its response,
// exercising the receiver's response validation (which must reject the
// short payload loudly) rather than its plain error path.
func (p *Point) CheckPartial(ctx context.Context) (fraction float64, truncate bool, err error) {
	kind, aux, op := p.next()
	switch kind {
	case KindNone:
		return 0, false, nil
	case KindDelay:
		trace.FromContext(ctx).Eventf("fault", "site=%s kind=delay op=%d", p.site, op)
		return 0, false, parallel.SleepCtx(ctx, p.delay(aux))
	case KindPartial:
		// Like delay, a truncation returns no error from this call, so it
		// must be trace-attributed here; the validation failure it provokes
		// downstream is an ordinary error with its own attribution.
		trace.FromContext(ctx).Eventf("fault", "site=%s kind=partial op=%d", p.site, op)
		return frac(aux), true, nil
	default:
		return 0, false, p.errAt(kind, op)
	}
}

// Check draws the next decision for a non-scan operation (a build stage,
// a cache fill). KindDelay sleeps then proceeds; KindPartial degenerates
// to KindError (there is no stream to truncate); a delay cut short by
// ctx reports the cancellation.
func (p *Point) Check(ctx context.Context) error {
	kind, aux, op := p.next()
	switch kind {
	case KindNone:
		return nil
	case KindDelay:
		// A clean delay is the one fault kind that never surfaces as an
		// error, so it must be trace-attributed here or it would be
		// invisible; error kinds are recorded once by the retry layer
		// from the error they return (no double counting).
		trace.FromContext(ctx).Eventf("fault", "site=%s kind=delay op=%d", p.site, op)
		return parallel.SleepCtx(ctx, p.delay(aux))
	case KindPartial:
		return p.errAt(KindError, op)
	default:
		return p.errAt(kind, op)
	}
}
