package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/kde"
	"repro/internal/obs"
	"repro/internal/stats"
)

// coreExec is a real worker over an in-memory dataset: the same
// core.NormPartials / core.DrawBlocks calls the serving layer's executor
// makes, minus the registry plumbing.
type coreExec struct {
	ds  dataset.Dataset
	est core.DensityEstimator
}

func (e *coreExec) opts(p Params) core.Options {
	return core.Options{Alpha: p.Alpha, TargetSize: p.Size, BlockSize: p.BlockSize}
}

func (e *coreExec) Partials(ctx context.Context, req *PartialsRequest) (*PartialsResponse, error) {
	parts, err := core.NormPartials(e.ds, e.est, e.opts(req.Params), req.Blocks)
	if err != nil {
		return nil, err
	}
	resp := &PartialsResponse{Partials: make([]string, len(parts))}
	for i, v := range parts {
		resp.Partials[i] = EncodeF64(v)
	}
	return resp, nil
}

func (e *coreExec) Draw(ctx context.Context, req *DrawRequest) (*DrawResponse, error) {
	norm, err := DecodeF64(req.NormBits)
	if err != nil {
		return nil, err
	}
	blocks, err := core.DrawBlocks(e.ds, e.est, e.opts(req.Params), norm, req.Base, req.Blocks)
	if err != nil {
		return nil, err
	}
	resp := &DrawResponse{Blocks: make([]BlockDraw, len(blocks))}
	for i, bs := range blocks {
		bd := BlockDraw{
			Block:     bs.Block,
			Points:    make([][]float64, len(bs.Points)),
			Weights:   make([]float64, len(bs.Points)),
			Saturated: bs.Saturated,
		}
		for j, wp := range bs.Points {
			bd.Points[j] = wp.P
			bd.Weights[j] = wp.W
		}
		resp.Blocks[i] = bd
	}
	return resp, nil
}

// downShard fails every RPC; slowShard answers after a fixed delay.
type downShard struct{ Shard }

func (d downShard) Partials(context.Context, *PartialsRequest) (*PartialsResponse, error) {
	return nil, errors.New("shard down")
}
func (d downShard) Draw(context.Context, *DrawRequest) (*DrawResponse, error) {
	return nil, errors.New("shard down")
}

type slowShard struct {
	Shard
	d time.Duration
}

func (s slowShard) Partials(ctx context.Context, req *PartialsRequest) (*PartialsResponse, error) {
	select {
	case <-time.After(s.d):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.Shard.Partials(ctx, req)
}

func (s slowShard) Draw(ctx context.Context, req *DrawRequest) (*DrawResponse, error) {
	select {
	case <-time.After(s.d):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.Shard.Draw(ctx, req)
}

// fixture builds (dataset, estimator, single-node reference sample) plus a
// factory for worker shards over the same data.
type fixture struct {
	ds   *dataset.InMemory
	est  *kde.Estimator
	p    Params
	n    int
	want *core.Sample
	base uint64
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	rng := stats.NewRNG(61)
	pts := make([]geom.Point, 2500)
	for i := range pts {
		if i%3 == 0 {
			pts[i] = geom.Point{0.2 + 0.05*rng.Float64(), 0.2 + 0.05*rng.Float64()}
		} else {
			pts[i] = geom.Point{rng.Float64(), rng.Float64()}
		}
	}
	ds := dataset.MustInMemory(pts)
	est, err := kde.Build(ds, kde.Options{NumKernels: 80}, stats.NewRNG(62))
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Dataset: "gauss", Alpha: 0.5, Size: 300, Seed: 9, BlockSize: 128}
	opts := core.Options{Alpha: p.Alpha, TargetSize: p.Size, BlockSize: p.BlockSize}
	drng := stats.NewRNG(p.Seed)
	want, err := core.Draw(ds, est, opts, drng)
	if err != nil {
		t.Fatal(err)
	}
	brng := stats.NewRNG(p.Seed)
	return &fixture{ds: ds, est: est, p: p, n: ds.Len(), want: want, base: core.DrawStreamBase(brng)}
}

func (f *fixture) locals(n int) []Shard {
	out := make([]Shard, n)
	for i := range out {
		out[i] = NewLocal(fmt.Sprintf("w%d", i), &coreExec{ds: f.ds, est: f.est})
	}
	return out
}

// run executes the two-phase protocol and checks the result against the
// single-node reference byte for byte.
func (f *fixture) run(t *testing.T, c *Coordinator) {
	t.Helper()
	ctx := context.Background()
	norm, err := c.Norm(ctx, f.p, f.n)
	if err != nil {
		t.Fatalf("Norm: %v", err)
	}
	if math.Float64bits(norm) != math.Float64bits(f.want.Norm) {
		t.Fatalf("norm %x != single-node %x", math.Float64bits(norm), math.Float64bits(f.want.Norm))
	}
	got, err := c.Draw(ctx, f.p, f.n, f.ds.Dims(), norm, f.base)
	if err != nil {
		t.Fatalf("Draw: %v", err)
	}
	if len(got.Points) != len(f.want.Points) {
		t.Fatalf("%d points, want %d", len(got.Points), len(f.want.Points))
	}
	for i := range got.Points {
		if !got.Points[i].P.Equal(f.want.Points[i].P) ||
			math.Float64bits(got.Points[i].W) != math.Float64bits(f.want.Points[i].W) {
			t.Fatalf("point %d differs: %+v vs %+v", i, got.Points[i], f.want.Points[i])
		}
	}
	if got.Saturated != f.want.Saturated || got.DataPasses != 2 {
		t.Fatalf("saturated=%d passes=%d, want %d and 2", got.Saturated, got.DataPasses, f.want.Saturated)
	}
}

// TestCoordinatorParity: the scatter-gather result is bit-identical to
// single-node core.Draw at every shard count and replica count.
func TestCoordinatorParity(t *testing.T) {
	f := newFixture(t)
	for _, shards := range []int{1, 2, 4, 8} {
		for _, replicas := range []int{1, 2, 3} {
			c := NewCoordinator(Config{Shards: f.locals(shards), Replicas: replicas})
			f.run(t, c)
		}
	}
}

// TestCoordinatorFallback: with a dead shard and replicas=2, every group
// still resolves — on the surviving replica — and the bytes are exact.
func TestCoordinatorFallback(t *testing.T) {
	f := newFixture(t)
	shards := f.locals(3)
	shards[0] = downShard{shards[0]}
	rec := obs.New()
	c := NewCoordinator(Config{Shards: shards, Replicas: 2, Rec: rec})
	f.run(t, c)
	if rec.Counter(CtrFallbacks).Value() == 0 {
		t.Error("dead shard triggered no fallbacks")
	}
	if rec.Counter(CtrRPCErrors).Value() == 0 {
		t.Error("dead shard produced no RPC errors")
	}
}

// TestCoordinatorAllReplicasFail: when every candidate for a group is
// dead, the phase fails loudly instead of merging a partial result.
func TestCoordinatorAllReplicasFail(t *testing.T) {
	f := newFixture(t)
	shards := f.locals(2)
	shards[0] = downShard{shards[0]}
	shards[1] = downShard{shards[1]}
	c := NewCoordinator(Config{Shards: shards, Replicas: 2})
	if _, err := c.Norm(context.Background(), f.p, f.n); err == nil {
		t.Fatal("Norm succeeded with every shard down")
	} else if !strings.Contains(err.Error(), "replicas failed") {
		t.Fatalf("error %q does not name replica exhaustion", err)
	}
}

// TestCoordinatorHedge: slow shards plus a tiny hedge budget fire hedges;
// the result is still exact because every replica computes the same bytes.
func TestCoordinatorHedge(t *testing.T) {
	f := newFixture(t)
	shards := f.locals(2)
	shards[0] = slowShard{Shard: shards[0], d: 30 * time.Millisecond}
	shards[1] = slowShard{Shard: shards[1], d: 30 * time.Millisecond}
	rec := obs.New()
	c := NewCoordinator(Config{Shards: shards, Replicas: 2, Hedge: time.Millisecond, Rec: rec})
	f.run(t, c)
	if rec.Counter(CtrHedges).Value() == 0 {
		t.Error("slow shards under a 1ms budget fired no hedges")
	}
}

// TestCoordinatorTruncationNeverSilent: with partial-response faults on
// every attempt, no phase can succeed — a truncated reply must fail
// validation on every replica and surface as an error, never as a short
// merge.
func TestCoordinatorTruncationNeverSilent(t *testing.T) {
	f := newFixture(t)
	inj := faults.New(faults.Config{Seed: 5, PPartial: 1})
	c := NewCoordinator(Config{Shards: f.locals(2), Replicas: 2, Faults: inj})
	if _, err := c.Norm(context.Background(), f.p, f.n); err == nil {
		t.Fatal("Norm succeeded though every response was truncated")
	}
	norm := f.want.Norm
	if _, err := c.Draw(context.Background(), f.p, f.n, f.ds.Dims(), norm, f.base); err == nil {
		t.Fatal("Draw succeeded though every response was truncated")
	}
}

// TestCoordinatorTruncationFallsBack: when only some attempts truncate,
// the fallback replica serves the group and the bytes stay exact.
func TestCoordinatorTruncationFallsBack(t *testing.T) {
	f := newFixture(t)
	rec := obs.New()
	inj := faults.New(faults.Config{Seed: 8, PPartial: 0.5})
	c := NewCoordinator(Config{Shards: f.locals(4), Replicas: 3, Rec: rec, Faults: inj})
	// The schedule is deterministic; with p=0.5 and 3 candidates a group
	// can still exhaust its replicas. Accept either exact bytes or a loud
	// error — what must never happen is a silent short merge (run checks
	// bytes whenever the phases succeed).
	norm, err := c.Norm(context.Background(), f.p, f.n)
	if err != nil {
		t.Logf("Norm failed loudly (acceptable): %v", err)
		return
	}
	if math.Float64bits(norm) != math.Float64bits(f.want.Norm) {
		t.Fatalf("merged norm differs despite success: %x != %x",
			math.Float64bits(norm), math.Float64bits(f.want.Norm))
	}
	got, err := c.Draw(context.Background(), f.p, f.n, f.ds.Dims(), norm, f.base)
	if err != nil {
		t.Logf("Draw failed loudly (acceptable): %v", err)
		return
	}
	if len(got.Points) != len(f.want.Points) {
		t.Fatalf("%d points, want %d", len(got.Points), len(f.want.Points))
	}
	if rec.Counter(CtrFallbacks).Value() == 0 && rec.Counter(CtrRPCErrors).Value() == 0 {
		t.Error("p=0.5 truncation schedule injected nothing across both phases")
	}
}

// TestCoordinatorCancel: a dead caller context surfaces as a
// cancellation, not a replica-exhaustion error.
func TestCoordinatorCancel(t *testing.T) {
	f := newFixture(t)
	shards := f.locals(2)
	shards[0] = slowShard{Shard: shards[0], d: time.Second}
	shards[1] = slowShard{Shard: shards[1], d: time.Second}
	c := NewCoordinator(Config{Shards: shards, Replicas: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := c.Norm(ctx, f.p, f.n); err == nil {
		t.Fatal("Norm survived a canceled context")
	}
}

// TestCoordinatorRejectsBadWiring pins the construction-time panics.
func TestCoordinatorRejectsBadWiring(t *testing.T) {
	f := newFixture(t)
	for name, cfg := range map[string]Config{
		"empty": {},
		"dup":   {Shards: append(f.locals(1), f.locals(1)...)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			NewCoordinator(cfg)
		}()
	}
}
