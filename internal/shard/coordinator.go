package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// Coordinator counters, joining the /metrics catalogue.
const (
	CtrRPCs      = "shard_rpcs_total"
	CtrHedges    = "shard_hedges_total"
	CtrFallbacks = "shard_fallbacks_total"
	CtrRPCErrors = "shard_rpc_errors_total"
)

// Config assembles a Coordinator.
type Config struct {
	// Shards are the workers, in any order; the ring sorts by name.
	Shards []Shard
	// Replicas is how many shards may serve each block group: the
	// consistent-hash owner plus Replicas-1 ring successors as fallbacks
	// and hedge targets. Default 2, clamped to the shard count. Every
	// worker holds the full dataset, so replication costs no placement —
	// it only widens the candidate list.
	Replicas int
	// Hedge is the latency budget after which a pending RPC is hedged to
	// the next replica (first success wins, bytes unaffected — every
	// replica computes the identical answer). 0 disables hedging;
	// fallback on failure happens regardless.
	Hedge time.Duration
	// Faults injects scheduled faults into the RPC attempts at the
	// "shard/rpc/partials" and "shard/rpc/draw" sites: errors, delays,
	// and partial (truncated) responses. Nil injects nothing.
	Faults *faults.Injector
	// Rec receives the coordinator counters. Nil-safe.
	Rec *obs.Recorder
	// Vnodes overrides the ring's virtual-node count (tests; 0 = default).
	Vnodes int
}

// Coordinator scatters a sampling run's scan blocks across shard workers
// and gathers a result bit-identical to the single-node build: phase one
// collects per-block partial normalizers and merges them in global block
// order into the exact k_a; phase two ships (k_a, stream base) out and
// concatenates the per-block selections in global block order.
type Coordinator struct {
	shards   []Shard
	byName   map[string]Shard
	ring     *Ring
	replicas int
	hedge    time.Duration
	rec      *obs.Recorder

	pPartials *faults.Point
	pDraw     *faults.Point
}

// NewCoordinator builds a Coordinator from cfg. It panics on an empty
// shard set or duplicate shard names — construction-time wiring bugs,
// not runtime conditions.
func NewCoordinator(cfg Config) *Coordinator {
	if len(cfg.Shards) == 0 {
		panic("shard: coordinator needs at least one shard")
	}
	names := make([]string, len(cfg.Shards))
	byName := make(map[string]Shard, len(cfg.Shards))
	for i, sh := range cfg.Shards {
		names[i] = sh.Name()
		if _, dup := byName[sh.Name()]; dup {
			panic(fmt.Sprintf("shard: duplicate shard name %q", sh.Name()))
		}
		byName[sh.Name()] = sh
	}
	replicas := cfg.Replicas
	if replicas == 0 {
		replicas = 2
	}
	if replicas > len(cfg.Shards) {
		replicas = len(cfg.Shards)
	}
	if replicas < 1 {
		replicas = 1
	}
	return &Coordinator{
		shards:    cfg.Shards,
		byName:    byName,
		ring:      NewRing(names, cfg.Vnodes),
		replicas:  replicas,
		hedge:     cfg.Hedge,
		rec:       cfg.Rec,
		pPartials: cfg.Faults.Point("shard/rpc/partials"),
		pDraw:     cfg.Faults.Point("shard/rpc/draw"),
	}
}

// NumShards returns the worker count.
func (c *Coordinator) NumShards() int { return len(c.shards) }

// group is one scatter unit: the blocks owned by one shard, plus the
// ordered candidate list (owner first, ring successors after) that
// fallback and hedging walk.
type group struct {
	blocks []int
	cands  []Shard
}

// groups partitions the dataset's global blocks by consistent-hash owner.
// Placement is a pure function of (shard names, dataset name, block
// index): every coordinator over the same shard set scatters identically.
func (c *Coordinator) groups(ds string, numBlocks int) []group {
	perOwner := make([][]int, c.ring.Size())
	for b := 0; b < numBlocks; b++ {
		owner := c.ring.Owner(BlockKey(ds, b))
		perOwner[owner] = append(perOwner[owner], b)
	}
	var out []group
	for owner, blocks := range perOwner {
		if len(blocks) == 0 {
			continue
		}
		// Candidates: the owner, then its ring successors. Keyed off the
		// owner's name so every block in the group shares one fallback
		// order.
		succ := c.ring.Successors(ringMix(hashString(c.ring.Names()[owner])), c.replicas)
		cands := make([]Shard, 0, c.replicas)
		seen := map[int]bool{owner: true}
		cands = append(cands, c.byName[c.ring.Names()[owner]])
		for _, s := range succ {
			if !seen[s] && len(cands) < c.replicas {
				seen[s] = true
				cands = append(cands, c.byName[c.ring.Names()[s]])
			}
		}
		out = append(out, group{blocks: blocks, cands: cands})
	}
	return out
}

// canceledErr wraps a coordinator-side cancellation so the serving layer
// maps it to 504 (it matches parallel.ErrCanceled, like a canceled scan).
func canceledErr(cause error) error {
	return fmt.Errorf("shard: scatter-gather canceled (%v): %w", cause, parallel.ErrCanceled)
}

// hedged runs one group's RPC against its candidate list: the primary
// immediately, the next candidate when the hedge budget expires with no
// answer (a hedge) or when an attempt fails (a fallback), first success
// wins. Losing attempts are canceled through the shared context. The
// result is candidate-order independent by construction — every
// candidate computes the identical bytes — so hedging changes latency,
// never content.
func hedged[T any](ctx context.Context, cands []Shard, budget time.Duration, onLaunch func(i int, hedge bool), do func(ctx context.Context, sh Shard) (T, error)) (T, error) {
	var zero T
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type attempt struct {
		v   T
		err error
	}
	results := make(chan attempt, len(cands))
	launched := 0
	launch := func(hedge bool) {
		onLaunch(launched, hedge)
		sh := cands[launched]
		launched++
		go func() {
			v, err := do(ctx, sh)
			results <- attempt{v, err}
		}()
	}
	launch(false)
	var timerC <-chan time.Time
	if budget > 0 && len(cands) > 1 {
		timer := time.NewTimer(budget)
		defer timer.Stop()
		timerC = timer.C
	}
	var errs []error
	for done := 0; ; {
		select {
		case <-ctx.Done():
			return zero, canceledErr(ctx.Err())
		case <-timerC:
			timerC = nil
			if launched < len(cands) {
				launch(true)
			}
		case r := <-results:
			if r.err == nil {
				return r.v, nil
			}
			done++
			errs = append(errs, r.err)
			if launched < len(cands) {
				launch(false)
			} else if done == launched {
				if ctx.Err() != nil {
					return zero, canceledErr(ctx.Err())
				}
				return zero, fmt.Errorf("shard: all %d replicas failed: %w", launched, errors.Join(errs...))
			}
		}
	}
}

// scatter fans one phase out across the groups concurrently and waits for
// all of them; the per-group work runs under hedged replica selection.
// The first error wins (others are drained), and a nil error means every
// group delivered a validated response.
func scatter(ctx context.Context, groups []group, fn func(g group) error) error {
	errc := make(chan error, len(groups))
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g group) {
			defer wg.Done()
			errc <- fn(g)
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			return err
		}
	}
	return nil
}

// rpc wraps one attempt: fault injection (error/delay/truncation), the
// transport call, response validation, counters, and the per-attempt
// trace span that makes the scatter-gather tree visible in /debug/traces.
// validate must reject any structurally short or inconsistent response —
// a truncated reply becomes a failed attempt (then a fallback), never a
// short merge.
func rpc[T any](c *Coordinator, op string, pt *faults.Point, blocks []int, truncAt func(resp T, frac float64) T, validate func(resp T) error) func(ctx context.Context, sh Shard, do func(context.Context) (T, error)) (T, error) {
	return func(ctx context.Context, sh Shard, do func(context.Context) (T, error)) (T, error) {
		var zero T
		tr := trace.FromContext(ctx)
		t0 := tr.Now()
		c.rec.Counter(CtrRPCs).Inc()
		finish := func(err error) {
			note := "ok"
			if err != nil {
				c.rec.Counter(CtrRPCErrors).Inc()
				note = "error: " + err.Error()
			}
			if tr != nil {
				tr.Add("shard/rpc/"+op+"/"+sh.Name(), t0, tr.Now(), int64(len(blocks)), note)
			}
		}
		frac, truncate, ferr := pt.CheckPartial(ctx)
		if ferr != nil {
			finish(ferr)
			return zero, ferr
		}
		resp, err := do(ctx)
		if err != nil {
			err = &RPCError{Shard: sh.Name(), Op: op, Err: err}
			finish(err)
			return zero, err
		}
		if truncate {
			resp = truncAt(resp, frac)
		}
		if verr := validate(resp); verr != nil {
			err = &RPCError{Shard: sh.Name(), Op: op, Err: verr}
			finish(err)
			return zero, err
		}
		finish(nil)
		return resp, nil
	}
}

// onLaunch returns the hedged-launch observer for one group: count every
// attempt beyond the first as a hedge (budget expired) or a fallback
// (previous attempt failed).
func (c *Coordinator) onLaunch() func(i int, hedge bool) {
	return func(i int, hedge bool) {
		if i == 0 {
			return
		}
		if hedge {
			c.rec.Counter(CtrHedges).Inc()
		} else {
			c.rec.Counter(CtrFallbacks).Inc()
		}
	}
}

// Norm runs phase one: scatter the block groups, gather per-block partial
// normalizers, and merge them in global block order into the exact k_a.
// n is the dataset length at p's generation; the block layout is the one
// core.Draw derives from (n, p.BlockSize).
func (c *Coordinator) Norm(ctx context.Context, p Params, n int) (float64, error) {
	numBlocks := parallel.NumBlocks(n, parallel.BlockSize(p.BlockSize))
	groups := c.groups(p.Dataset, numBlocks)
	tr := trace.FromContext(ctx)
	tr.Begin("shard/partials")
	defer tr.End("shard/partials", int64(n))
	partials := make([]float64, numBlocks)
	err := scatter(ctx, groups, func(g group) error {
		attempt := rpc(c, "partials", c.pPartials, g.blocks,
			func(resp *PartialsResponse, frac float64) *PartialsResponse {
				return &PartialsResponse{Partials: truncated(resp.Partials, frac)}
			},
			func(resp *PartialsResponse) error {
				if len(resp.Partials) != len(g.blocks) {
					return fmt.Errorf("got %d partials for %d blocks", len(resp.Partials), len(g.blocks))
				}
				return nil
			})
		resp, err := hedged(ctx, g.cands, c.hedge, c.onLaunch(), func(ctx context.Context, sh Shard) (*PartialsResponse, error) {
			return attempt(ctx, sh, func(ctx context.Context) (*PartialsResponse, error) {
				return sh.Partials(ctx, &PartialsRequest{Shard: sh.Name(), Params: p, Blocks: g.blocks})
			})
		})
		if err != nil {
			return err
		}
		for i, b := range g.blocks {
			v, derr := DecodeF64(resp.Partials[i])
			if derr != nil {
				return &RPCError{Op: "partials", Err: derr}
			}
			partials[b] = v
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	norm := MergeNorm(partials)
	if norm <= 0 || math.IsInf(norm, 0) || math.IsNaN(norm) {
		return 0, fmt.Errorf("shard: degenerate merged normalizer k_a = %v", norm)
	}
	return norm, nil
}

// Draw runs phase two: scatter (norm, stream base) with each group's
// blocks, gather the per-block selections, and concatenate them in global
// block order. The returned sample matches the single-node core.Draw for
// the same (dataset, estimator parameters, seed) byte for byte: Norm is
// the exact merged k_a, DataPasses is the exact algorithm's 2, and
// Saturated sums the per-block clip counts.
func (c *Coordinator) Draw(ctx context.Context, p Params, n, dims int, norm float64, base uint64) (*core.Sample, error) {
	numBlocks := parallel.NumBlocks(n, parallel.BlockSize(p.BlockSize))
	groups := c.groups(p.Dataset, numBlocks)
	tr := trace.FromContext(ctx)
	tr.Begin("shard/draw")
	defer tr.End("shard/draw", int64(n))
	perBlock := make([]BlockDraw, numBlocks)
	err := scatter(ctx, groups, func(g group) error {
		attempt := rpc(c, "draw", c.pDraw, g.blocks,
			func(resp *DrawResponse, frac float64) *DrawResponse {
				return &DrawResponse{Blocks: truncated(resp.Blocks, frac)}
			},
			func(resp *DrawResponse) error { return validateDraw(resp, g.blocks, dims) })
		resp, err := hedged(ctx, g.cands, c.hedge, c.onLaunch(), func(ctx context.Context, sh Shard) (*DrawResponse, error) {
			return attempt(ctx, sh, func(ctx context.Context) (*DrawResponse, error) {
				return sh.Draw(ctx, &DrawRequest{
					Shard: sh.Name(), Params: p, Blocks: g.blocks,
					NormBits: EncodeF64(norm), Base: base,
				})
			})
		})
		if err != nil {
			return err
		}
		for i, b := range g.blocks {
			perBlock[b] = resp.Blocks[i]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &core.Sample{Norm: norm, DataPasses: 2}
	total := 0
	for i := range perBlock {
		total += len(perBlock[i].Points)
	}
	out.Points = make([]dataset.WeightedPoint, 0, total)
	for i := range perBlock {
		bd := &perBlock[i]
		for j, row := range bd.Points {
			out.Points = append(out.Points, dataset.WeightedPoint{P: geom.Point(row), W: bd.Weights[j]})
		}
		out.Saturated += bd.Saturated
	}
	return out, nil
}

// validateDraw structurally checks one draw response against the blocks
// that were requested: exact block list, parallel weights, full-width
// points. Anything short or inconsistent fails the attempt.
func validateDraw(resp *DrawResponse, blocks []int, dims int) error {
	if len(resp.Blocks) != len(blocks) {
		return fmt.Errorf("got %d block draws for %d blocks", len(resp.Blocks), len(blocks))
	}
	for i, bd := range resp.Blocks {
		if bd.Block != blocks[i] {
			return fmt.Errorf("block draw %d is for block %d, want %d", i, bd.Block, blocks[i])
		}
		if len(bd.Weights) != len(bd.Points) {
			return fmt.Errorf("block %d: %d weights for %d points", bd.Block, len(bd.Weights), len(bd.Points))
		}
		for _, row := range bd.Points {
			if len(row) != dims {
				return fmt.Errorf("block %d: point with %d dims, want %d", bd.Block, len(row), dims)
			}
		}
	}
	return nil
}

// truncated drops a deterministic suffix of s — the injected
// partial-response fault. The result is always strictly shorter than a
// non-empty input, so a truncation can never masquerade as a complete
// response.
func truncated[E any](s []E, frac float64) []E {
	if len(s) == 0 {
		return s
	}
	keep := int(frac * float64(len(s)))
	if keep >= len(s) {
		keep = len(s) - 1
	}
	if keep < 0 {
		keep = 0
	}
	return s[:keep]
}
