package shard

import (
	"context"
	"fmt"
)

// Executor is the worker-side compute surface behind a Shard: resolve the
// request's (dataset, generation, fingerprint) to a local view and
// estimator, then run the per-block primitives from internal/core. The
// serving layer implements it over its registry and artifact cache.
type Executor interface {
	Partials(ctx context.Context, req *PartialsRequest) (*PartialsResponse, error)
	Draw(ctx context.Context, req *DrawRequest) (*DrawResponse, error)
}

// Shard is one worker as the coordinator sees it: a name (its ring
// identity) plus the two RPCs. Implementations must be safe for
// concurrent calls.
type Shard interface {
	Name() string
	Executor
}

// Local is an in-process Shard: a named handle on an Executor, the
// goroutine-backed worker mode. Several Locals may share one Executor —
// the coordinator still scatters per shard, so the single process
// exercises exactly the distributed protocol.
type Local struct {
	name string
	ex   Executor
}

// NewLocal names an Executor as an in-process shard.
func NewLocal(name string, ex Executor) *Local { return &Local{name: name, ex: ex} }

// Name implements Shard.
func (l *Local) Name() string { return l.name }

// Partials implements Shard.
func (l *Local) Partials(ctx context.Context, req *PartialsRequest) (*PartialsResponse, error) {
	return l.ex.Partials(ctx, req)
}

// Draw implements Shard.
func (l *Local) Draw(ctx context.Context, req *DrawRequest) (*DrawResponse, error) {
	return l.ex.Draw(ctx, req)
}

// RPCError is one failed shard RPC attempt: which shard, which operation,
// what went wrong. It reports itself Temporary so the serving layer's
// transient classification applies (503 + Retry-After when every replica
// fails) — unless the wrapped error is a cancellation, which the error
// chain still exposes via Unwrap and which maps to 504 upstream.
type RPCError struct {
	Shard string
	Op    string
	Err   error
}

func (e *RPCError) Error() string {
	return fmt.Sprintf("shard %s: %s: %v", e.Shard, e.Op, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *RPCError) Unwrap() error { return e.Err }

// Temporary marks shard RPC failures as transient: any replica can serve
// any block, so a failed attempt is retryable by construction.
func (e *RPCError) Temporary() bool { return true }
