package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/trace"
)

// HTTP routes the worker side of the shard RPC mounts; the serving layer
// registers handlers for them and Client posts to them.
const (
	PathPartials = "/internal/shard/partials"
	PathDraw     = "/internal/shard/draw"
)

// TraceHeader carries the coordinator's trace ID on shard RPCs, so a
// worker's trace ring can be joined against the coordinator's
// scatter-gather tree (the serving layer sets the same header on every
// response it makes).
const TraceHeader = "X-DBS-Trace"

// Client is an HTTP Shard: the same two RPCs a Local serves in-process,
// posted as JSON to another dbsserve instance running with -shard-of.
type Client struct {
	name string
	base string
	hc   *http.Client
}

// NewClient builds an HTTP shard named name at baseURL (scheme://host
// [:port]; any trailing slash is dropped). hc defaults to a plain
// http.Client — timeouts come from the request context, which carries
// the coordinator's deadline.
func NewClient(name, baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{name: name, base: strings.TrimRight(baseURL, "/"), hc: hc}
}

// Name implements Shard.
func (c *Client) Name() string { return c.name }

// Partials implements Shard over HTTP.
func (c *Client) Partials(ctx context.Context, req *PartialsRequest) (*PartialsResponse, error) {
	resp := new(PartialsResponse)
	if err := c.post(ctx, PathPartials, req, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Draw implements Shard over HTTP.
func (c *Client) Draw(ctx context.Context, req *DrawRequest) (*DrawResponse, error) {
	resp := new(DrawResponse)
	if err := c.post(ctx, PathDraw, req, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// post sends one JSON RPC. Any transport error, non-200 status, or
// undecodable body is returned as a plain error for the coordinator's
// rpc wrapper to classify; the coordinator's trace ID is propagated in
// TraceHeader so the worker can stitch its span tree under it.
func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("encoding %s request: %v", path, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if id := trace.FromContext(ctx).ID(); id != "" {
		hreq.Header.Set(TraceHeader, id)
	}
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 4096))
		var envelope struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(msg, &envelope) == nil && envelope.Error != "" {
			return fmt.Errorf("%s: status %d: %s", path, hresp.StatusCode, envelope.Error)
		}
		return fmt.Errorf("%s: status %d", path, hresp.StatusCode)
	}
	dec := json.NewDecoder(hresp.Body)
	if err := dec.Decode(out); err != nil {
		return fmt.Errorf("decoding %s response: %v", path, err)
	}
	return nil
}
