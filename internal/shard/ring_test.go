package shard

import (
	"fmt"
	"testing"
)

func ringNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("w%d", i)
	}
	return out
}

// TestRingDeterministic: placement is a pure function of the name set —
// construction order and duplicates do not matter.
func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"w0", "w1", "w2"}, 0)
	b := NewRing([]string{"w2", "w0", "w1", "w1"}, 0)
	if a.Size() != 3 || b.Size() != 3 {
		t.Fatalf("sizes %d, %d; want 3", a.Size(), b.Size())
	}
	for blk := 0; blk < 500; blk++ {
		key := BlockKey("gauss", blk)
		if an, bn := a.Names()[a.Owner(key)], b.Names()[b.Owner(key)]; an != bn {
			t.Fatalf("block %d: %q vs %q", blk, an, bn)
		}
	}
}

// TestRingCoverage: with default vnodes every shard owns a reasonable
// share of blocks — no shard starves or hoards.
func TestRingCoverage(t *testing.T) {
	const blocks = 4000
	for _, n := range []int{2, 3, 8} {
		r := NewRing(ringNames(n), 0)
		counts := make([]int, n)
		for b := 0; b < blocks; b++ {
			counts[r.Owner(BlockKey("ds", b))]++
		}
		fair := blocks / n
		for i, c := range counts {
			if c < fair/3 || c > fair*3 {
				t.Errorf("n=%d shard %d owns %d of %d blocks (fair %d)", n, i, c, blocks, fair)
			}
		}
	}
}

// TestRingStability: removing one shard only moves blocks that the removed
// shard owned — consistent hashing's defining property.
func TestRingStability(t *testing.T) {
	full := NewRing(ringNames(8), 0)
	reduced := NewRing(ringNames(7), 0) // drops w7
	moved := 0
	for b := 0; b < 2000; b++ {
		key := BlockKey("ds", b)
		was := full.Names()[full.Owner(key)]
		now := reduced.Names()[reduced.Owner(key)]
		if was != "w7" && was != now {
			t.Fatalf("block %d moved %q -> %q though %q survived", b, was, now, was)
		}
		if was == "w7" {
			moved++
		}
	}
	if moved == 0 {
		t.Error("w7 owned nothing out of 2000 blocks")
	}
}

// TestRingSuccessorsDistinct: the successor walk yields distinct shards,
// owner first, and never more than exist.
func TestRingSuccessorsDistinct(t *testing.T) {
	r := NewRing(ringNames(5), 0)
	for b := 0; b < 200; b++ {
		key := BlockKey("ds", b)
		succ := r.Successors(key, 3)
		if len(succ) != 3 {
			t.Fatalf("block %d: %d successors, want 3", b, len(succ))
		}
		if succ[0] != r.Owner(key) {
			t.Fatalf("block %d: first successor %d != owner %d", b, succ[0], r.Owner(key))
		}
		seen := map[int]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("block %d: duplicate successor %d", b, s)
			}
			seen[s] = true
		}
	}
	if got := r.Successors(BlockKey("ds", 0), 99); len(got) != 5 {
		t.Errorf("asking for 99 of 5 shards returned %d", len(got))
	}
}

// TestBlockKeyAppendStable: a block's key depends on (dataset, index)
// only, so appending generations (more blocks) never re-keys old ones,
// and distinct datasets spread differently.
func TestBlockKeyAppendStable(t *testing.T) {
	if BlockKey("a", 7) != BlockKey("a", 7) {
		t.Fatal("BlockKey not deterministic")
	}
	if BlockKey("a", 7) == BlockKey("b", 7) {
		t.Error("datasets a and b share a block key")
	}
	if BlockKey("a", 7) == BlockKey("a", 8) {
		t.Error("blocks 7 and 8 share a key")
	}
}
