// Package shard turns the single-node density-biased sampler into a
// scatter-gather system that is bit-identical to it.
//
// The math cooperates: the normalizer k_a = Σ f(x_i)^a is a plain sum
// whose per-block partials merge exactly when re-added in block order, and
// the coin-flip pass already derives every block's RNG stream from
// (base, block index) alone. A Coordinator therefore partitions a
// dataset's scan blocks across shard workers by consistent-hash placement,
// gathers per-shard partial normalizers into the exact global k_a, ships
// (k_a, stream base) back out for the coin pass, and concatenates the
// selections in global block order — the same floats added in the same
// order and the same coins flipped from the same streams as one machine
// would, at every shard count, replica count, and worker count.
//
// Workers sit behind the Shard interface: Local runs an Executor in
// process, Client speaks the same two requests over HTTP to another
// dbsserve. Replica fan-out, hedged requests after a latency budget, and
// cross-replica fallback on failure live in the Coordinator and never
// change bytes, because every replica computes the identical answer.
package shard

import "sort"

// defaultVnodes is the virtual-node count per shard name. 64 keeps the
// largest/smallest ownership ratio tight enough for block placement while
// the ring stays a few KiB.
const defaultVnodes = 64

// ringGolden is the splitmix increment (same constant as stats/faults);
// ringMix is the SplitMix64 finalizer used to hash vnodes and block keys.
const ringGolden = 0x9e3779b97f4a7c15

func ringMix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// hashString is 64-bit FNV-1a, the repository's stable string hash.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// BlockKey places global block b of the named dataset on the ring. The key
// depends on the dataset name, not its content fingerprint, so placement
// survives appends: a new generation adds blocks without moving old ones.
func BlockKey(dataset string, b int) uint64 {
	return ringMix(hashString(dataset) ^ ringMix(uint64(b)+ringGolden))
}

type vnode struct {
	hash uint64
	node int // index into names
}

// Ring is a consistent-hash ring with virtual nodes over shard names. It
// is immutable after construction and a pure function of the (sorted)
// name set, so every coordinator that knows the same shards derives the
// same placement.
type Ring struct {
	names  []string
	vnodes []vnode // sorted by (hash, node)
}

// NewRing builds a ring over the given shard names (deduped, sorted;
// order of the argument does not matter). vnodes ≤ 0 uses the default.
func NewRing(names []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	uniq := sorted[:0]
	for i, n := range sorted {
		if i == 0 || n != sorted[i-1] {
			uniq = append(uniq, n)
		}
	}
	r := &Ring{names: uniq, vnodes: make([]vnode, 0, len(uniq)*vnodes)}
	for i, n := range r.names {
		base := hashString(n)
		for v := 0; v < vnodes; v++ {
			r.vnodes = append(r.vnodes, vnode{hash: ringMix(base ^ ringMix(uint64(v)*ringGolden+ringGolden)), node: i})
		}
	}
	sort.Slice(r.vnodes, func(a, b int) bool {
		if r.vnodes[a].hash != r.vnodes[b].hash {
			return r.vnodes[a].hash < r.vnodes[b].hash
		}
		return r.vnodes[a].node < r.vnodes[b].node
	})
	return r
}

// Names returns the ring's shard names, sorted. Callers must not mutate.
func (r *Ring) Names() []string { return r.names }

// Size returns the number of distinct shards on the ring.
func (r *Ring) Size() int { return len(r.names) }

// at finds the first vnode clockwise of key (wrapping).
func (r *Ring) at(key uint64) int {
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= key })
	if i == len(r.vnodes) {
		i = 0
	}
	return i
}

// Owner returns the index (into Names) of the shard owning key.
func (r *Ring) Owner(key uint64) int {
	if len(r.vnodes) == 0 {
		return -1
	}
	return r.vnodes[r.at(key)].node
}

// Successors returns up to n distinct shard indices starting at the owner
// of key and walking clockwise — the owner first, then the fallback
// replicas in ring order.
func (r *Ring) Successors(key uint64, n int) []int {
	if len(r.vnodes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.names) {
		n = len(r.names)
	}
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for i, steps := r.at(key), 0; steps < len(r.vnodes) && len(out) < n; steps++ {
		v := r.vnodes[(i+steps)%len(r.vnodes)]
		if !seen[v.node] {
			seen[v.node] = true
			out = append(out, v.node)
		}
	}
	return out
}
