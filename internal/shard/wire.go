package shard

import (
	"fmt"
	"math"
	"strconv"
)

// Params pins the identity of one sampling run for a shard worker: which
// dataset content (name + generation + content fingerprint), which run
// parameters, which seed. A worker whose copy of the dataset does not
// match Fingerprint at Generation must refuse the request — the guard
// that turns replica divergence into a loud error instead of a silently
// wrong merge.
type Params struct {
	Dataset     string  `json:"dataset"`
	Generation  uint64  `json:"generation"`
	Fingerprint string  `json:"fingerprint"` // %016x content fingerprint at Generation
	Alpha       float64 `json:"alpha"`
	Size        int     `json:"size"`
	Kernels     int     `json:"kernels"`
	Kernel      string  `json:"kernel"`
	Seed        uint64  `json:"seed"`
	BlockSize   int     `json:"block_size,omitempty"`
}

// PartialsRequest asks a worker for the partial normalizer sums of the
// given global scan blocks. Shard names the worker the coordinator thinks
// it is talking to; a worker running with an explicit identity rejects a
// mismatch.
type PartialsRequest struct {
	Shard  string `json:"shard"`
	Params Params `json:"params"`
	Blocks []int  `json:"blocks"`
}

// PartialsResponse carries the per-block partial k_a sums, parallel to
// the request's Blocks. Each value is the hex-encoded IEEE-754 bit
// pattern of the float64 partial (EncodeF64): the merge must reproduce
// core.ExactNorm to the last bit, so the wire format is exact by
// construction rather than by trusting decimal round-trips.
type PartialsResponse struct {
	Partials []string `json:"partials"`
}

// DrawRequest asks a worker to flip the inclusion coins of the given
// global blocks against the exact global normalizer (NormBits, an
// EncodeF64 bit pattern) using the per-block streams derived from Base
// (core.DrawStreamBase).
type DrawRequest struct {
	Shard    string `json:"shard"`
	Params   Params `json:"params"`
	Blocks   []int  `json:"blocks"`
	NormBits string `json:"norm_bits"`
	Base     uint64 `json:"base"`
}

// BlockDraw is one block's selections: the sampled points (row-major
// coordinates) and their inverse-probability weights, in block index
// order. Coordinates and weights travel as JSON numbers — Go encodes
// float64 values in shortest round-trip form, so decode(encode(v)) == v
// bit-for-bit and the coordinator re-emits exactly the bytes a
// single-node response would contain.
type BlockDraw struct {
	Block     int         `json:"block"`
	Points    [][]float64 `json:"points"`
	Weights   []float64   `json:"weights"`
	Saturated int         `json:"saturated"`
}

// DrawResponse carries one BlockDraw per requested block, parallel to the
// request's Blocks.
type DrawResponse struct {
	Blocks []BlockDraw `json:"blocks"`
}

// EncodeF64 renders a float64 as the hex of its IEEE-754 bit pattern —
// the exact-by-construction wire encoding for normalizer values.
func EncodeF64(v float64) string {
	return strconv.FormatUint(math.Float64bits(v), 16)
}

// DecodeF64 inverts EncodeF64.
func DecodeF64(s string) (float64, error) {
	bits, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("shard: bad float bits %q: %v", s, err)
	}
	return math.Float64frombits(bits), nil
}

// MergeNorm sums per-block partial normalizers laid out in global block
// order, left to right — the same addition order as core.ExactNorm's
// final reduction, so for partials produced by core.NormPartials the
// result equals the single-node k_a bit-for-bit (0 ULP).
func MergeNorm(partials []float64) float64 {
	var k float64
	for _, p := range partials {
		k += p
	}
	return k
}
