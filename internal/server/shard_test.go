package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/shard"
)

// shardWorker starts one dbsserve instance as an HTTP shard worker named
// name, holding the standard "pts" dataset (same content on every worker
// — fingerprints must match the coordinator's).
func shardWorker(t *testing.T, name string, n int) *httptest.Server {
	t.Helper()
	srv := New(Config{Parallelism: 2, ShardOf: name})
	if err := srv.Registry().RegisterDataset("pts", dataset.MustInMemory(testPoints(n, 2, 11))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestShardParityAcrossModes is the PR's acceptance gate: /v1/sample
// responses are byte-identical across single-node, in-process shard
// counts {1,2,4,8}, HTTP worker mode, worker parallelism {1,8}, hedging
// on/off, and a dead-peer fallback — the full mode matrix.
func TestShardParityAcrossModes(t *testing.T) {
	const n = 3000
	body := map[string]any{
		"dataset": "pts", "alpha": 0.5, "size": 250, "kernels": 48, "seed": 7,
	}

	// Single-node reference.
	_, ref, _ := newTestServer(t, Config{Parallelism: 2}, n)
	resp, want := postJSON(t, ref.URL+"/v1/sample", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference: %d: %s", resp.StatusCode, want)
	}

	check := func(name string, cfg Config) {
		t.Helper()
		_, ts, _ := newTestServer(t, cfg, n)
		resp, got := postJSON(t, ts.URL+"/v1/sample", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d: %s", name, resp.StatusCode, got)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: response differs from single-node (%d vs %d bytes)", name, len(got), len(want))
		}
	}

	// In-process workers across shard counts and per-request parallelism.
	for _, workers := range []int{1, 2, 4, 8} {
		for _, par := range []int{1, 8} {
			check("in-process", Config{Parallelism: par, ShardWorkers: workers})
		}
	}
	// Hedging enabled (tiny budget, so it actually fires on occasion) and
	// replicas beyond the default: latency knobs must not touch bytes.
	check("hedged", Config{Parallelism: 2, ShardWorkers: 4, ShardHedge: time.Microsecond, ShardReplicas: 3})

	// HTTP mode: two worker dbsserve instances behind shard.Client.
	wa, wb := shardWorker(t, "a", n), shardWorker(t, "b", n)
	check("http", Config{
		Parallelism: 2,
		ShardPeers:  map[string]string{"a": wa.URL, "b": wb.URL},
	})

	// Dead peer with replicas=2: every group falls back to the live
	// replica and the bytes still match.
	check("dead-peer-fallback", Config{
		Parallelism: 2,
		ShardPeers:  map[string]string{"a": wa.URL, "dead": "http://127.0.0.1:1"},
	})
}

// TestShardHealthz: a sharded request populates the shard_latency
// section of /healthz with both phases, distinguishing downstream
// fan-out wait from coordinator-local route latency.
func TestShardHealthz(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Parallelism: 2, ShardWorkers: 2}, 2000)
	resp, body := postJSON(t, ts.URL+"/v1/sample", sampleBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sample: %d: %s", resp.StatusCode, body)
	}
	var h struct {
		Latency      map[string]LatencySummary `json:"latency"`
		ShardLatency map[string]LatencySummary `json:"shard_latency"`
	}
	getJSON(t, ts.URL+"/healthz", &h)
	for _, stage := range []string{"partials", "draw"} {
		sum, ok := h.ShardLatency[stage]
		if !ok {
			t.Fatalf("shard_latency missing stage %q: %+v", stage, h.ShardLatency)
		}
		if sum.Count < 1 {
			t.Errorf("stage %q count = %d, want >= 1", stage, sum.Count)
		}
	}
	if _, ok := h.Latency["/v1/sample"]; !ok {
		t.Error("route latency lost its /v1/sample entry on a sharded server")
	}
}

// TestShardWorkerIdentity: a worker pinned with -shard-of rejects RPCs
// addressed to another shard.
func TestShardWorkerIdentity(t *testing.T) {
	ts := shardWorker(t, "a", 500)
	req := shard.PartialsRequest{
		Shard:  "b",
		Params: shard.Params{Dataset: "pts", Kernels: 16, Seed: 1, Size: 10, Alpha: 1},
		Blocks: []int{0},
	}
	raw, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+shard.PathPartials, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("worker 'a' served an RPC addressed to 'b'")
	}
}

// TestShardFingerprintMismatch: a worker whose dataset content diverges
// from the coordinator's refuses loudly — never a silently wrong merge.
func TestShardFingerprintMismatch(t *testing.T) {
	// Worker holds different bytes under the same dataset name.
	srv := New(Config{Parallelism: 2, ShardOf: "a"})
	if err := srv.Registry().RegisterDataset("pts", dataset.MustInMemory(testPoints(3000, 2, 99))); err != nil {
		t.Fatal(err)
	}
	wa := httptest.NewServer(srv.Handler())
	t.Cleanup(wa.Close)

	_, coord, _ := newTestServer(t, Config{
		Parallelism: 2,
		ShardPeers:  map[string]string{"a": wa.URL},
	}, 3000)
	resp, body := postJSON(t, coord.URL+"/v1/sample", sampleBody)
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("sample succeeded against a diverged worker: %s", body)
	}
}

// TestShardOnePassStaysLocal: OnePass requests bypass the coordinator
// (the one-pass approximation has no exact merge) and still serve from a
// sharded server.
func TestShardOnePassStaysLocal(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{Parallelism: 2, ShardWorkers: 2}, 2000)
	body := map[string]any{
		"dataset": "pts", "alpha": 1.0, "size": 100, "kernels": 32, "seed": 3, "one_pass": true,
	}
	resp, data := postJSON(t, ts.URL+"/v1/sample", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("one-pass on sharded server: %d: %s", resp.StatusCode, data)
	}
	if got := srv.rec.Counter(shard.CtrRPCs).Value(); got != 0 {
		t.Errorf("one-pass request issued %d shard RPCs, want 0", got)
	}
}

// TestShardAppendParity: appends on a sharded (in-process) server keep
// generation-pinned sampling byte-identical to single-node over the same
// appended data.
func TestShardAppendParity(t *testing.T) {
	extra := testPoints(700, 2, 55)

	_, ref, refMem := newTestServer(t, Config{Parallelism: 2}, 2000)
	if err := refMem.Append(extra...); err != nil {
		t.Fatal(err)
	}
	resp, want := postJSON(t, ref.URL+"/v1/sample", sampleBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference after append: %d: %s", resp.StatusCode, want)
	}

	_, shd, shdMem := newTestServer(t, Config{Parallelism: 2, ShardWorkers: 4}, 2000)
	if err := shdMem.Append(extra...); err != nil {
		t.Fatal(err)
	}
	resp, got := postJSON(t, shd.URL+"/v1/sample", sampleBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sharded after append: %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Error("sharded response after append differs from single-node")
	}
}

type traceSpan struct {
	Path     string      `json:"path"`
	Children []traceSpan `json:"children"`
}

// TestShardTraceTree: with tracing on, a sharded request's trace contains
// the scatter-gather spans (shard/partials, shard/draw, and per-RPC
// children).
func TestShardTraceTree(t *testing.T) {
	srv := New(Config{Parallelism: 2, ShardWorkers: 2, TraceSample: 1, TraceSeed: 1})
	if err := srv.Registry().RegisterDataset("pts", dataset.MustInMemory(testPoints(2000, 2, 11))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	resp, body := postJSON(t, ts.URL+"/v1/sample", sampleBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sample: %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Recent []struct {
			Spans []traceSpan `json:"spans"`
		} `json:"recent"`
	}
	getJSON(t, ts.URL+"/debug/traces", &out)
	paths := map[string]bool{}
	var walk func([]traceSpan)
	walk = func(spans []traceSpan) {
		for _, sp := range spans {
			paths[sp.Path] = true
			walk(sp.Children)
		}
	}
	for _, tr := range out.Recent {
		walk(tr.Spans)
	}
	for _, want := range []string{"shard/partials", "shard/draw"} {
		if !paths[want] {
			t.Errorf("trace missing span %q; saw %v", want, paths)
		}
	}
	sawRPC := false
	for p := range paths {
		if len(p) > len("shard/rpc/") && p[:len("shard/rpc/")] == "shard/rpc/" {
			sawRPC = true
		}
	}
	if !sawRPC {
		t.Errorf("trace has no shard/rpc/* attempt spans; saw %v", paths)
	}
}
