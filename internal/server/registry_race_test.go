package server

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/dataset"
)

// TestRegistryRaceRemoveWhileAcquire hammers Acquire/Release against
// Remove/re-register for the same names. Run under -race it proves the
// registry's refcount handover has no data races, and the invariant
// that an acquired handle stays usable after its entry is removed.
func TestRegistryRaceRemoveWhileAcquire(t *testing.T) {
	r := NewRegistry(1)
	const names = 8
	mk := func(i int) string { return fmt.Sprintf("ds%d", i) }
	for i := 0; i < names; i++ {
		if err := r.RegisterDataset(mk(i), dataset.MustInMemory(testPoints(50, 2, uint64(i+1)))); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				name := mk((g + i) % names)
				h, err := r.Acquire(name)
				if err != nil {
					if !errors.Is(err, ErrNotFound) {
						t.Errorf("acquire %s: %v", name, err)
						return
					}
					continue
				}
				// The dataset and fingerprint must stay usable even if
				// the entry is concurrently removed.
				if h.Dataset().Len() != 50 {
					t.Errorf("%s: len = %d", name, h.Dataset().Len())
				}
				if _, err := h.Fingerprint(); err != nil {
					t.Errorf("%s: fingerprint: %v", name, err)
				}
				h.Release()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			name := mk(i % names)
			if err := r.Remove(name); err != nil && !errors.Is(err, ErrNotFound) {
				t.Errorf("remove %s: %v", name, err)
				return
			}
			// Re-register so acquirers keep finding entries; ErrExists
			// can race with another iteration's register — tolerated.
			if err := r.RegisterDataset(name, dataset.MustInMemory(testPoints(50, 2, uint64(i)))); err != nil && !errors.Is(err, ErrExists) {
				t.Errorf("re-register %s: %v", name, err)
				return
			}
		}
	}()
	wg.Wait()
}

// TestRegistryConcurrentLazyOpen races many first Acquires of one
// path-backed entry: the file must be opened once (every handle sees
// the same Dataset) and the memoized fingerprint must be identical
// across handles.
func TestRegistryConcurrentLazyOpen(t *testing.T) {
	r := NewRegistry(1)
	if err := r.RegisterPath("pts", testFile(t, 200, 3)); err != nil {
		t.Fatal(err)
	}
	const n = 16
	var (
		wg  sync.WaitGroup
		dss [n]dataset.Dataset
		fps [n]uint64
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := r.Acquire("pts")
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			defer h.Release()
			dss[i] = h.Dataset()
			fp, err := h.Fingerprint()
			if err != nil {
				t.Errorf("fingerprint: %v", err)
				return
			}
			fps[i] = fp
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if dss[i] != dss[0] {
			t.Fatalf("handle %d opened a second dataset instance", i)
		}
		if fps[i] != fps[0] {
			t.Fatalf("handle %d fingerprint %016x != %016x", i, fps[i], fps[0])
		}
	}
}
