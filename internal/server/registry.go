// Package server is the HTTP serving layer over the sampling pipeline: a
// dataset registry of named handles, an LRU artifact cache that lets repeat
// queries skip estimator construction and sampling passes, and an admission
// controller that bounds concurrent work and sheds load. Everything is
// stdlib-only, like the rest of the repository.
//
// The layer adds no randomness and no floating-point work of its own, so
// the serving guarantee mirrors the library's: a response is a function of
// (dataset fingerprint, canonicalized parameters, seed) alone — bit
// identical whether it was computed or served from cache, at any worker
// count (see DESIGN.md, "Serving layer").
package server

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"repro/internal/dataset"
)

// ErrNotFound is returned when a request names an unregistered dataset.
var ErrNotFound = errors.New("server: dataset not found")

// ErrExists is returned when a registration reuses a live name.
var ErrExists = errors.New("server: dataset name already registered")

// Registry is the server's table of named datasets. Registration is cheap:
// a path-backed entry stores only the path and is opened (header validated)
// on first Acquire; an uploaded entry wraps the already-materialized
// points. Handles are ref-counted so removal is safe while requests are in
// flight: Remove unregisters the name immediately but the backing dataset
// stays usable until the last holder releases it.
type Registry struct {
	parallelism int

	mu      sync.Mutex
	entries map[string]*regEntry
}

type regEntry struct {
	name string
	path string          // lazy file-backed source; "" when mem is set
	mem  dataset.Dataset // uploaded data, ready to scan

	refs    int  // live Acquires, guarded by Registry.mu
	removed bool // unregistered; dropped when refs reaches 0

	// openMu guards lazy open and the cached fingerprint; it is separate
	// from Registry.mu so a slow first open or fingerprint pass never
	// blocks registry operations on other datasets.
	openMu sync.Mutex
	ds     dataset.Dataset
	fp     uint64
	fpDone bool
}

// NewRegistry returns an empty registry. parallelism bounds the workers
// used for fingerprint passes (0 = all CPUs).
func NewRegistry(parallelism int) *Registry {
	return &Registry{parallelism: parallelism, entries: make(map[string]*regEntry)}
}

// RegisterPath registers name over a binary dataset file. The file must
// exist, but its header is only read on first Acquire (lazy open).
func (r *Registry) RegisterPath(name, path string) error {
	if err := validName(name); err != nil {
		return err
	}
	if _, err := os.Stat(path); err != nil {
		return fmt.Errorf("server: dataset %q: %w", name, err)
	}
	return r.add(&regEntry{name: name, path: path})
}

// RegisterDataset registers name over an already-materialized dataset
// (an upload).
func (r *Registry) RegisterDataset(name string, ds dataset.Dataset) error {
	if err := validName(name); err != nil {
		return err
	}
	if ds == nil || ds.Len() == 0 {
		return fmt.Errorf("server: dataset %q: empty", name)
	}
	return r.add(&regEntry{name: name, mem: ds, ds: ds})
}

func validName(name string) error {
	if name == "" {
		return errors.New("server: empty dataset name")
	}
	return nil
}

func (r *Registry) add(e *regEntry) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[e.name]; ok {
		return fmt.Errorf("%w: %q", ErrExists, e.name)
	}
	r.entries[e.name] = e
	return nil
}

// Handle is a ref-counted lease on a registered dataset. Release it when
// the request is done; the dataset and its cached fingerprint stay valid
// for the handle's lifetime even if the name is removed concurrently.
//
// For appendable datasets the handle pins the generation current at
// Acquire: Dataset returns a frozen view of exactly that generation's
// points and Fingerprint the matching content fingerprint, so a request
// admitted before an append computes over — and cache-keys by — a
// consistent snapshot even while the dataset grows underneath it.
type Handle struct {
	r *Registry
	e *regEntry

	ds  dataset.Dataset    // generation-pinned view (or the raw dataset)
	gen uint64             // pinned generation; 0 for non-appendable
	app dataset.Appendable // nil when the dataset cannot grow
	win *handleWindow      // sliding-window restriction, nil when unwindowed
}

// handleWindow restricts a handle's pinned generation to the index range
// [start, end): the view the compute paths scan and the fingerprint they
// cache-key by both cover exactly the window's rows. The fingerprint is
// content-addressed (dataset.Fingerprint over the window view), so a
// windowed sample shares cache keys — and response bytes — with the same
// points registered as a fresh dataset.
type handleWindow struct {
	start, end int
	fp         func() (uint64, error) // lazy, memoized by the owner
}

// Acquire resolves name, lazily opening path-backed entries, and returns a
// leased handle pinned to the dataset's current generation.
func (r *Registry) Acquire(name string) (*Handle, error) {
	r.mu.Lock()
	e, ok := r.entries[name]
	if !ok || e.removed {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	e.refs++
	r.mu.Unlock()

	e.openMu.Lock()
	if e.ds == nil {
		// Open sniffs the magic, so a path registration may point at
		// either the immutable DBS1 format or the appendable DBS2 one.
		ds, err := dataset.Open(e.path)
		if err != nil {
			e.openMu.Unlock()
			r.release(e)
			return nil, err
		}
		e.ds = ds
	}
	e.openMu.Unlock()

	h := &Handle{r: r, e: e, ds: e.ds}
	if app, ok := e.ds.(dataset.Appendable); ok {
		gen := app.Generation()
		view, err := dataset.GenView(app, gen)
		if err == nil {
			h.ds, h.gen, h.app = view, gen, app
		}
	}
	return h, nil
}

// Dataset returns the leased dataset: for appendable datasets a frozen
// view of the generation pinned at Acquire.
func (h *Handle) Dataset() dataset.Dataset { return h.ds }

// Name returns the registered name.
func (h *Handle) Name() string { return h.e.name }

// Appendable returns the underlying growable dataset, or nil when the
// leased dataset cannot grow.
func (h *Handle) Appendable() dataset.Appendable { return h.app }

// Generation returns the generation pinned at Acquire (0 for
// non-appendable datasets).
func (h *Handle) Generation() uint64 { return h.gen }

// GenLen returns the dataset length at generation g ≤ the pinned one.
func (h *Handle) GenLen(g uint64) int {
	if h.app == nil {
		return h.ds.Len()
	}
	return h.app.GenLen(g)
}

// ApplyWindow restricts the handle's pinned generation to [start, end).
// fp lazily supplies the window's content fingerprint (the caller
// memoizes it). Only the serving layer's window logic calls this, once,
// right after Acquire.
func (h *Handle) ApplyWindow(start, end int, fp func() (uint64, error)) error {
	if h.app == nil {
		return fmt.Errorf("server: dataset %q is not appendable; cannot window", h.e.name)
	}
	if start < 0 || end <= start || end > h.GenLen(h.gen) {
		return fmt.Errorf("server: window [%d, %d) out of generation %d's [0, %d)",
			start, end, h.gen, h.GenLen(h.gen))
	}
	view, err := dataset.Window(h.app, start, end)
	if err != nil {
		return err
	}
	h.ds = view // Dataset() sees the window too
	h.win = &handleWindow{start: start, end: end, fp: fp}
	return nil
}

// Windowed reports whether the handle is restricted to a sliding window.
func (h *Handle) Windowed() bool { return h.win != nil }

// WindowRange returns the window's [start, end) over the pinned
// generation; (0, GenLen) when unwindowed.
func (h *Handle) WindowRange() (start, end int) {
	if h.win == nil {
		return 0, h.GenLen(h.gen)
	}
	return h.win.start, h.win.end
}

// ViewAt returns a frozen view of generation g ≤ the pinned one. A
// windowed handle's pinned generation resolves to the window's rows only.
func (h *Handle) ViewAt(g uint64) (dataset.Dataset, error) {
	if h.app == nil {
		if g != 0 {
			return nil, fmt.Errorf("server: dataset %q has no generation %d", h.e.name, g)
		}
		return h.ds, nil
	}
	if h.win != nil && g == h.gen {
		return h.ds, nil
	}
	return dataset.GenView(h.app, g)
}

// DeltaAt returns the points generation g ≥ 1 added.
func (h *Handle) DeltaAt(g uint64) (dataset.Dataset, error) {
	if h.app == nil {
		return nil, fmt.Errorf("server: dataset %q is not appendable", h.e.name)
	}
	return dataset.DeltaView(h.app, g)
}

// Fingerprint returns the content fingerprint of the pinned generation.
func (h *Handle) Fingerprint() (uint64, error) { return h.FingerprintAt(h.gen) }

// FingerprintAt returns the content fingerprint of generation g. For
// appendable datasets the per-generation digest memo makes each new
// generation cost one pass over its delta only; the value is keyed by
// generation, so — unlike the entry-lifetime memo non-appendable datasets
// use — it can never serve a fingerprint staled by an append. For
// non-appendable datasets the fingerprint is computed once (one dataset
// pass) and cached for the entry's lifetime, which is sound because the
// contents can never change.
func (h *Handle) FingerprintAt(g uint64) (uint64, error) {
	if h.win != nil && g == h.gen {
		return h.win.fp()
	}
	if h.app != nil {
		return h.app.GenFingerprint(g, h.r.parallelism)
	}
	e := h.e
	e.openMu.Lock()
	defer e.openMu.Unlock()
	if !e.fpDone {
		fp, err := dataset.Fingerprint(e.ds, h.r.parallelism)
		if err != nil {
			return 0, err
		}
		e.fp, e.fpDone = fp, true
	}
	return e.fp, nil
}

// Release returns the lease. The handle must not be used afterwards.
func (h *Handle) Release() { h.r.release(h.e) }

func (r *Registry) release(e *regEntry) {
	r.mu.Lock()
	e.refs--
	dropped := false
	if e.removed && e.refs == 0 {
		// The map may already hold a new entry under this name; only
		// delete if it is still ours.
		if cur, ok := r.entries[e.name]; ok && cur == e {
			delete(r.entries, e.name)
		}
		dropped = true
	}
	r.mu.Unlock()
	if dropped {
		closeEntry(e)
	}
}

// closeEntry releases a dropped entry's backing dataset. Path-backed
// datasets that hold OS resources implement io.Closer (a SegmentFile's
// memory mappings); it only runs once no handle is outstanding — exactly
// the condition under which entries are dropped — so no reader can still
// be touching mapped memory.
func closeEntry(e *regEntry) {
	e.openMu.Lock()
	ds := e.ds
	e.ds = nil
	e.openMu.Unlock()
	if c, ok := ds.(io.Closer); ok {
		c.Close()
	}
}

// Remove unregisters name. In-flight holders keep their handles; the entry
// is dropped when the last one releases.
func (r *Registry) Remove(name string) error {
	r.mu.Lock()
	e, ok := r.entries[name]
	if !ok || e.removed {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	e.removed = true
	dropped := e.refs == 0
	if dropped {
		delete(r.entries, name)
	}
	r.mu.Unlock()
	if dropped {
		closeEntry(e)
	}
	return nil
}

// DatasetInfo describes one registered dataset for listings.
type DatasetInfo struct {
	Name   string `json:"name"`
	Source string `json:"source"` // "file" or "upload"
	Open   bool   `json:"open"`
	// Dims and Points are known once the dataset has been opened.
	Dims   int `json:"dims,omitempty"`
	Points int `json:"points,omitempty"`
	// Appendable and Generation describe growable datasets: whether
	// /v1/datasets/{name}/append will accept points, and how many appends
	// the dataset has absorbed so far.
	Appendable bool   `json:"appendable,omitempty"`
	Generation uint64 `json:"generation,omitempty"`
	// Fingerprint is the hex content fingerprint, once computed.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// List returns the live registrations sorted by name. It reports state and
// never triggers opens or fingerprint passes.
func (r *Registry) List() []DatasetInfo {
	r.mu.Lock()
	entries := make([]*regEntry, 0, len(r.entries))
	for _, e := range r.entries {
		if !e.removed {
			entries = append(entries, e)
		}
	}
	r.mu.Unlock()

	infos := make([]DatasetInfo, 0, len(entries))
	for _, e := range entries {
		info := DatasetInfo{Name: e.name, Source: "file"}
		if e.mem != nil {
			info.Source = "upload"
		}
		e.openMu.Lock()
		if e.ds != nil {
			info.Open = true
			info.Dims = e.ds.Dims()
			info.Points = e.ds.Len()
			if app, ok := e.ds.(dataset.Appendable); ok {
				info.Appendable = true
				info.Generation = app.Generation()
			}
		}
		if e.fpDone {
			info.Fingerprint = fmt.Sprintf("%016x", e.fp)
		}
		e.openMu.Unlock()
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// Len returns the number of live registrations.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.entries {
		if !e.removed {
			n++
		}
	}
	return n
}
