package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/obs"
)

// appendBody builds the JSON payload for /v1/datasets/{name}/append.
func appendBody(pts []geom.Point) map[string]any {
	rows := make([][]float64, len(pts))
	for i, p := range pts {
		rows[i] = []float64(p)
	}
	return map[string]any{"points": rows}
}

func decodeSample(t *testing.T, body []byte) sampleResponse {
	t.Helper()
	var sr sampleResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("decoding sample response: %v: %s", err, body)
	}
	return sr
}

// TestAppendStaleFingerprintRegression is the regression test for the
// stale-fingerprint bug: the registry memoized a dataset's fingerprint
// for the lifetime of the entry, so growing a registered dataset in
// place left /v1/sample serving the pre-append cached artifact under the
// pre-append fingerprint — stale points presented as fresh. With
// generation-keyed fingerprints, an append must change both the reported
// fingerprint and the sample itself.
func TestAppendStaleFingerprintRegression(t *testing.T) {
	_, ts, mem := newTestServer(t, Config{Parallelism: 2}, 3000)

	resp1, body1 := postJSON(t, ts.URL+"/v1/sample", sampleBody)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("pre-append sample: %d: %s", resp1.StatusCode, body1)
	}
	sr1 := decodeSample(t, body1)

	// Grow the registered dataset directly — the server is not told.
	if err := mem.Append(testPoints(500, 2, 77)...); err != nil {
		t.Fatal(err)
	}

	resp2, body2 := postJSON(t, ts.URL+"/v1/sample", sampleBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-append sample: %d: %s", resp2.StatusCode, body2)
	}
	sr2 := decodeSample(t, body2)

	if sr1.Fingerprint == sr2.Fingerprint {
		t.Error("fingerprint unchanged after append — the registry served a stale memoized fingerprint")
	}
	if bytes.Equal(body1, body2) {
		t.Error("sample unchanged after append — stale cached artifact served for grown dataset")
	}
	if got := resp2.Header.Get("X-DBS-Cache"); got != "miss" {
		t.Errorf("post-append X-DBS-Cache = %q, want miss (new generation, new key)", got)
	}
}

func TestAppendEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Parallelism: 2}, 1000)
	delta := testPoints(50, 2, 33)

	resp, body := postJSON(t, ts.URL+"/v1/datasets/pts/append", appendBody(delta))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append: %d: %s", resp.StatusCode, body)
	}
	var ar appendResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Generation != 1 || ar.Points != 1050 || ar.Added != 50 || len(ar.Fingerprint) != 16 {
		t.Errorf("append response = %+v, want gen 1, 1050 points, 50 added, 16-hex fingerprint", ar)
	}

	// The fingerprint in the append response is the one subsequent
	// samples are served under.
	sresp, sbody := postJSON(t, ts.URL+"/v1/sample", sampleBody)
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("sample: %d: %s", sresp.StatusCode, sbody)
	}
	if sr := decodeSample(t, sbody); sr.Fingerprint != ar.Fingerprint {
		t.Errorf("sample fingerprint %s != append fingerprint %s", sr.Fingerprint, ar.Fingerprint)
	}

	// CSV body.
	var csv bytes.Buffer
	for _, p := range testPoints(10, 2, 34) {
		fmt.Fprintf(&csv, "%v,%v\n", p[0], p[1])
	}
	req, err := http.Post(ts.URL+"/v1/datasets/pts/append", "text/csv", &csv)
	if err != nil {
		t.Fatal(err)
	}
	req.Body.Close()
	if req.StatusCode != http.StatusOK {
		t.Fatalf("csv append: %d", req.StatusCode)
	}

	// Binary (DBS1) body.
	var bin bytes.Buffer
	if err := dataset.WriteBinary(&bin, dataset.MustInMemory(testPoints(10, 2, 35))); err != nil {
		t.Fatal(err)
	}
	breq, err := http.Post(ts.URL+"/v1/datasets/pts/append", "application/octet-stream", &bin)
	if err != nil {
		t.Fatal(err)
	}
	breq.Body.Close()
	if breq.StatusCode != http.StatusOK {
		t.Fatalf("binary append: %d", breq.StatusCode)
	}

	// Each upload advanced one generation.
	var listing struct {
		Datasets []DatasetInfo `json:"datasets"`
	}
	getJSON(t, ts.URL+"/v1/datasets", &listing)
	infos := listing.Datasets
	if len(infos) != 1 || !infos[0].Appendable || infos[0].Generation != 3 || infos[0].Points != 1070 {
		t.Errorf("dataset listing = %+v, want appendable gen 3 with 1070 points", infos)
	}

	// Error paths: empty body, dims mismatch, unknown dataset.
	if resp, _ := postJSON(t, ts.URL+"/v1/datasets/pts/append", map[string]any{"points": [][]float64{}}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty append: %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/datasets/pts/append", map[string]any{"points": [][]float64{{1, 2, 3}}}); resp.StatusCode >= 200 && resp.StatusCode < 300 {
		t.Errorf("dims-mismatched append: %d, want error", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/datasets/nope/append", appendBody(delta)); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown dataset append: %d, want 404", resp.StatusCode)
	}
}

// TestAppendImmutableDatasetConflict: a DBS1 file registration cannot
// grow; the endpoint must say so with 409, not corrupt the file.
func TestAppendImmutableDatasetConflict(t *testing.T) {
	srv := New(Config{Parallelism: 1})
	if err := srv.Registry().RegisterPath("f", testFile(t, 200, 2)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, body := postJSON(t, ts.URL+"/v1/datasets/f/append", appendBody(testPoints(5, 2, 1)))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("append to immutable file: %d: %s, want 409", resp.StatusCode, body)
	}
}

// TestAppendThenSampleDeltaPasses pins the O(|delta|) promise: with a
// warm cache and a drift budget, the sample after an append reads the
// appended rows exactly twice (incremental normalize + delta coin pass)
// and never re-reads the prefix.
func TestAppendThenSampleDeltaPasses(t *testing.T) {
	const n, m = 4000, 200
	srv, ts, _ := newTestServer(t, Config{Parallelism: 2, DriftTol: 0.2}, n)

	// Cold sample: build + normalize + sample, each one full pass.
	resp, body := postJSON(t, ts.URL+"/v1/sample", sampleBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold sample: %d: %s", resp.StatusCode, body)
	}
	if got := srv.rec.Counter(obs.CtrPointsScanned).Value(); got != 3*n {
		t.Fatalf("cold sample scanned %d points, want %d (3 full passes)", got, 3*n)
	}

	aresp, abody := postJSON(t, ts.URL+"/v1/datasets/pts/append", appendBody(testPoints(m, 2, 55)))
	if aresp.StatusCode != http.StatusOK {
		t.Fatalf("append: %d: %s", aresp.StatusCode, abody)
	}

	before := srv.rec.Counter(obs.CtrPointsScanned).Value()
	wresp, wbody := postJSON(t, ts.URL+"/v1/sample", sampleBody)
	if wresp.StatusCode != http.StatusOK {
		t.Fatalf("warm sample: %d: %s", wresp.StatusCode, wbody)
	}
	if got := srv.rec.Counter(obs.CtrPointsScanned).Value() - before; got != 2*m {
		t.Errorf("post-append sample scanned %d points, want %d (two delta passes, zero prefix reads)", got, 2*m)
	}
	if got := srv.rec.Counter(obs.CtrKDEExtends).Value(); got != 1 {
		t.Errorf("kde extends = %d, want 1", got)
	}
	if got := srv.rec.Counter(obs.CtrIncDraws).Value(); got != 1 {
		t.Errorf("incremental draws = %d, want 1", got)
	}
	sr := decodeSample(t, wbody)
	if sr.DataPasses != 2 {
		t.Errorf("incremental sample reports %d data passes, want 2", sr.DataPasses)
	}
	// The incremental sample keeps E[|S|] = b; ε documented in DESIGN.md §5e.
	b := int(sampleBody["size"].(int))
	if sr.Count < b-b/4 || sr.Count > b+b/4 {
		t.Errorf("incremental sample size %d strays more than 25%% from b = %d", sr.Count, b)
	}
}

// TestAppendTau0BitForBitParity: with DriftTol 0 (the default) every
// generation is rebuilt exactly, so a server that reached state S by
// appends and a server that registered S whole return byte-identical
// sample responses — fingerprint field included — at any worker count.
func TestAppendTau0BitForBitParity(t *testing.T) {
	const n, m = 2000, 150
	full := testPoints(n+m, 2, 11)

	bodies := map[int][]byte{}
	for _, par := range []int{1, 8} {
		// Server A: n points registered, delta appended over HTTP.
		srvA := New(Config{Parallelism: par})
		memA := dataset.MustInMemory(clonePts(full[:n]))
		if err := srvA.Registry().RegisterDataset("pts", memA); err != nil {
			t.Fatal(err)
		}
		tsA := httptest.NewServer(srvA.Handler())
		// Warm the generation-0 artifacts first, so the test also proves
		// the old generation's cache entries don't leak into the new key.
		if resp, body := postJSON(t, tsA.URL+"/v1/sample", sampleBody); resp.StatusCode != http.StatusOK {
			t.Fatalf("par %d warmup: %d: %s", par, resp.StatusCode, body)
		}
		if resp, body := postJSON(t, tsA.URL+"/v1/datasets/pts/append", appendBody(clonePts(full[n:]))); resp.StatusCode != http.StatusOK {
			t.Fatalf("par %d append: %d: %s", par, resp.StatusCode, body)
		}
		respA, bodyA := postJSON(t, tsA.URL+"/v1/sample", sampleBody)
		if respA.StatusCode != http.StatusOK {
			t.Fatalf("par %d sample A: %d: %s", par, respA.StatusCode, bodyA)
		}
		tsA.Close()

		// Server B: the same n+m points registered in one shot.
		srvB := New(Config{Parallelism: par})
		if err := srvB.Registry().RegisterDataset("pts", dataset.MustInMemory(clonePts(full))); err != nil {
			t.Fatal(err)
		}
		tsB := httptest.NewServer(srvB.Handler())
		respB, bodyB := postJSON(t, tsB.URL+"/v1/sample", sampleBody)
		if respB.StatusCode != http.StatusOK {
			t.Fatalf("par %d sample B: %d: %s", par, respB.StatusCode, bodyB)
		}
		tsB.Close()

		if !bytes.Equal(bodyA, bodyB) {
			t.Errorf("par %d: append-grown server and whole-registered server disagree at drift tolerance 0", par)
		}
		bodies[par] = bodyA
	}
	if !bytes.Equal(bodies[1], bodies[8]) {
		t.Error("worker counts 1 and 8 returned different bytes")
	}
}

// TestAppendIncrementalWorkerParity: the incremental path (DriftTol > 0)
// is also worker-count invariant — byte-identical responses at
// parallelism 1 and 8 for the same append/sample sequence.
func TestAppendIncrementalWorkerParity(t *testing.T) {
	const n, m = 2000, 150
	full := testPoints(n+m, 2, 11)
	bodies := map[int][]byte{}
	for _, par := range []int{1, 8} {
		srv := New(Config{Parallelism: par, DriftTol: 0.3})
		if err := srv.Registry().RegisterDataset("pts", dataset.MustInMemory(clonePts(full[:n]))); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		if resp, body := postJSON(t, ts.URL+"/v1/sample", sampleBody); resp.StatusCode != http.StatusOK {
			t.Fatalf("par %d warmup: %d: %s", par, resp.StatusCode, body)
		}
		if resp, body := postJSON(t, ts.URL+"/v1/datasets/pts/append", appendBody(clonePts(full[n:]))); resp.StatusCode != http.StatusOK {
			t.Fatalf("par %d append: %d: %s", par, resp.StatusCode, body)
		}
		resp, body := postJSON(t, ts.URL+"/v1/sample", sampleBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("par %d sample: %d: %s", par, resp.StatusCode, body)
		}
		if sr := decodeSample(t, body); sr.DataPasses != 2 {
			t.Errorf("par %d: data passes = %d, want 2 (incremental path not taken)", par, sr.DataPasses)
		}
		bodies[par] = body
		ts.Close()
	}
	if !bytes.Equal(bodies[1], bodies[8]) {
		t.Error("incremental samples differ between worker counts 1 and 8")
	}
}

// TestAppendChaos replays an append-then-sample sequence under seeded
// fault schedules hitting the append stage and both delta build stages.
// Whatever the schedule does, a successful response must be identical to
// the fault-free run, failures must surface as 429/503/504, and a failed
// append must not leave a half-applied generation behind.
func TestAppendChaos(t *testing.T) {
	const n, m = 800, 60
	full := testPoints(n+m, 2, 11)
	warm := map[string]any{"dataset": "pts", "alpha": 1.0, "size": 60, "kernels": 32, "seed": 101}

	// Fault-free reference.
	var refAppend, refSample []byte
	{
		srv := New(Config{Parallelism: 2, DriftTol: 0.3})
		if err := srv.Registry().RegisterDataset("pts", dataset.MustInMemory(clonePts(full[:n]))); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		if status, _, body := postRaw(t, ts.URL+"/v1/sample", warm); status != http.StatusOK {
			t.Fatalf("reference warmup: %d: %s", status, body)
		}
		var status int
		status, _, refAppend = postRaw(t, ts.URL+"/v1/datasets/pts/append", appendBody(clonePts(full[n:])))
		if status != http.StatusOK {
			t.Fatalf("reference append: %d: %s", status, refAppend)
		}
		status, _, refSample = postRaw(t, ts.URL+"/v1/sample", warm)
		if status != http.StatusOK {
			t.Fatalf("reference sample: %d: %s", status, refSample)
		}
		ts.Close()
	}

	seeds := 25
	if testing.Short() {
		seeds = 8
	}
	okAppends, okSamples, failures := 0, 0, 0
	for seed := 1; seed <= seeds; seed++ {
		inj := faults.New(faults.Config{
			Seed:     uint64(seed),
			PError:   0.25,
			PDelay:   0.10,
			PCancel:  0.05,
			MaxDelay: 200 * time.Microsecond,
		})
		srv := New(Config{
			Parallelism: 2, DriftTol: 0.3,
			Retry: 2, RetryBackoff: 200 * time.Microsecond,
			StageTimeout: 2 * time.Second, Deadline: 5 * time.Second,
			Faults: inj,
		})
		mem := dataset.MustInMemory(clonePts(full[:n]))
		if err := srv.Registry().RegisterDataset("pts", mem); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())

		// Warm generation 0 (est/sample fault points may fire here too).
		postRaw(t, ts.URL+"/v1/sample", warm)

		status, _, body := postRaw(t, ts.URL+"/v1/datasets/pts/append", appendBody(clonePts(full[n:])))
		switch status {
		case http.StatusOK:
			okAppends++
			if mem.Generation() != 1 || mem.Len() != n+m {
				t.Errorf("seed %d: 200 append but gen/len = %d/%d", seed, mem.Generation(), mem.Len())
			}
			if !bytes.Equal(body, refAppend) {
				t.Errorf("seed %d: append body differs from fault-free run", seed)
			}
		case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			failures++
			// A failed append must be all-or-nothing. Either outcome is
			// legal (the fault can fire before or after the write lands,
			// e.g. a stage timeout), but never a torn generation.
			if got := mem.Len(); got != n && got != n+m {
				t.Errorf("seed %d: failed append left torn length %d", seed, got)
			}
		default:
			t.Errorf("seed %d: append status %d: %s", seed, status, body)
		}

		if mem.Generation() == 1 {
			status, _, body := postRaw(t, ts.URL+"/v1/sample", warm)
			switch status {
			case http.StatusOK:
				okSamples++
				if !bytes.Equal(body, refSample) {
					t.Errorf("seed %d: post-append sample differs from fault-free run", seed)
				}
			case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
				failures++
			default:
				t.Errorf("seed %d: sample status %d: %s", seed, status, body)
			}
		}
		ts.Close()
	}
	if okAppends == 0 || okSamples == 0 {
		t.Errorf("no successful appends (%d) or samples (%d) across %d seeds — retries not doing their job", okAppends, okSamples, seeds)
	}
	if inj := failures; seeds > 10 && inj == 0 {
		t.Logf("note: no request-level failures across %d seeds (retries absorbed every fault)", seeds)
	}
}

// clonePts deep-copies points so appends never alias the shared fixture.
func clonePts(pts []geom.Point) []geom.Point {
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = p.Clone()
	}
	return out
}
