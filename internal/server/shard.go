package server

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/kde"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/trace"
)

// This file is the serving layer's two halves of the sharded protocol:
// the worker side (shardExecutor + the /internal/shard RPC handlers,
// mounted on every server so any dbsserve can serve as a shard worker)
// and the coordinator side (buildSampleSharded, the sharded replacement
// for buildSample when ShardWorkers/ShardPeers are configured).
//
// The parity contract: a sharded /v1/sample response is byte-identical
// to the single-node response for the same request, at every shard
// count, worker count, replica count, and with hedging on or off. It
// rests on four locally-checkable facts: (1) workers build the estimator
// from (fingerprint-verified view, params, seed) exactly as buildEstimator
// does, so every worker holds the identical estimator and derives the
// identical density floor; (2) per-block partial k_a sums are re-added
// in global block order (shard.MergeNorm), reproducing ExactNorm's
// addition order; (3) the coin pass reconstructs each block's RNG stream
// from (base, block index) and runs Draw's own selection loop
// (core.DrawBlocks); (4) selections are concatenated in global block
// order. Sharded builds are always exact (two passes) — DriftTol's
// incremental extends never run here, because an extended artifact
// depends on append lineage a stateless worker does not share.

// shardExecutor implements shard.Executor over the server's registry and
// artifact cache — the compute surface behind both the in-process worker
// mode and the /internal/shard HTTP endpoints.
type shardExecutor struct {
	s *Server
}

// resolve maps request params onto this server's local state: a
// generation-pinned view whose content fingerprint matches the request
// (the guard that turns dataset divergence between replicas into a loud
// error instead of a silently wrong merge), the exactly-built estimator
// for the params, and the draw options mirroring the local build's.
func (e *shardExecutor) resolve(ctx context.Context, rec *obs.Recorder, p shard.Params) (dataset.Dataset, *kde.Estimator, core.Options, func(), error) {
	s := e.s
	fail := func(err error) (dataset.Dataset, *kde.Estimator, core.Options, func(), error) {
		return nil, nil, core.Options{}, nil, err
	}
	h, err := s.reg.Acquire(p.Dataset)
	if err != nil {
		return fail(err)
	}
	fp, err := h.FingerprintAt(p.Generation)
	if err != nil {
		h.Release()
		return fail(fmt.Errorf("shard worker: generation %d of %q: %w", p.Generation, p.Dataset, err))
	}
	if have := fmt.Sprintf("%016x", fp); have != p.Fingerprint {
		h.Release()
		return fail(fmt.Errorf("shard worker: fingerprint mismatch for %q gen %d: have %s, coordinator wants %s",
			p.Dataset, p.Generation, have, p.Fingerprint))
	}
	ep := estParams{Kernels: p.Kernels, Kernel: p.Kernel, Seed: p.Seed}
	if err := ep.normalize(); err != nil {
		h.Release()
		return fail(err)
	}
	view, err := h.ViewAt(p.Generation)
	if err != nil {
		h.Release()
		return fail(err)
	}
	est, err := s.shardEstimatorAt(ctx, rec, h, ep, p.Generation)
	if err != nil {
		h.Release()
		return fail(err)
	}
	opts := core.Options{
		Alpha:       p.Alpha,
		TargetSize:  p.Size,
		Parallelism: s.cfg.Parallelism,
		BlockSize:   p.BlockSize,
		Precision:   s.cfg.Precision,
		Obs:         rec,
		Ctx:         ctx,
	}
	return view, est, opts, h.Release, nil
}

// Partials implements shard.Executor: the per-block partial k_a sums of
// phase one, hex-encoded bit patterns on the wire.
func (e *shardExecutor) Partials(ctx context.Context, req *shard.PartialsRequest) (*shard.PartialsResponse, error) {
	if err := e.checkIdentity(req.Shard); err != nil {
		return nil, err
	}
	rec := obs.New()
	rec.SetTrace(trace.FromContext(ctx))
	defer e.s.rec.Merge(rec)
	view, est, opts, release, err := e.resolve(ctx, rec, req.Params)
	if err != nil {
		return nil, err
	}
	defer release()
	parts, err := core.NormPartials(view, est, opts, req.Blocks)
	if err != nil {
		return nil, err
	}
	resp := &shard.PartialsResponse{Partials: make([]string, len(parts))}
	for i, v := range parts {
		resp.Partials[i] = shard.EncodeF64(v)
	}
	return resp, nil
}

// Draw implements shard.Executor: phase two's per-block coin flips
// against the coordinator's exact merged normalizer and stream base.
func (e *shardExecutor) Draw(ctx context.Context, req *shard.DrawRequest) (*shard.DrawResponse, error) {
	if err := e.checkIdentity(req.Shard); err != nil {
		return nil, err
	}
	norm, err := shard.DecodeF64(req.NormBits)
	if err != nil {
		return nil, err
	}
	rec := obs.New()
	rec.SetTrace(trace.FromContext(ctx))
	defer e.s.rec.Merge(rec)
	view, est, opts, release, rerr := e.resolve(ctx, rec, req.Params)
	if rerr != nil {
		return nil, rerr
	}
	defer release()
	blocks, err := core.DrawBlocks(view, est, opts, norm, req.Base, req.Blocks)
	if err != nil {
		return nil, err
	}
	resp := &shard.DrawResponse{Blocks: make([]shard.BlockDraw, len(blocks))}
	for i, bs := range blocks {
		bd := shard.BlockDraw{
			Block:     bs.Block,
			Points:    make([][]float64, len(bs.Points)),
			Weights:   make([]float64, len(bs.Points)),
			Saturated: bs.Saturated,
		}
		for j, wp := range bs.Points {
			bd.Points[j] = wp.P
			bd.Weights[j] = wp.W
		}
		resp.Blocks[i] = bd
	}
	return resp, nil
}

// checkIdentity rejects RPCs addressed to a different worker when this
// server runs with an explicit -shard-of identity — a misrouted request
// means the coordinator's view of the fleet is wrong, which must surface,
// not be served.
func (e *shardExecutor) checkIdentity(want string) error {
	if of := e.s.cfg.ShardOf; of != "" && want != of {
		return fmt.Errorf("shard worker: request addressed to %q, serving as %q", want, of)
	}
	return nil
}

// shardEstimatorAt returns the exactly-built estimator for generation g
// — never a drift-extended one, whatever DriftTol says, because an
// extended artifact depends on the coordinator's append lineage and a
// worker must derive the identical estimator from the generation's
// content alone. When the drift schedule would have built exactly anyway
// the ordinary cache entry is shared; otherwise the exact artifact gets
// its own "|exact" key so the two never collide.
func (s *Server) shardEstimatorAt(ctx context.Context, rec *obs.Recorder, h *Handle, p estParams, g uint64) (*kde.Estimator, error) {
	if s.exactAt(h, g) {
		est, _, err := s.estimatorAt(ctx, rec, h, p, g)
		return est, err
	}
	fp, err := h.FingerprintAt(g)
	if err != nil {
		return nil, err
	}
	v, _, err := s.cache.GetOrBuild(p.key(fp)+"|exact", func() (any, int64, error) {
		return s.buildEstimator(ctx, rec, h, p, g)
	})
	s.syncCacheCounters()
	if err != nil {
		return nil, err
	}
	return v.(*kde.Estimator), nil
}

// shardRPC wraps a worker-side shard endpoint: request counting, its own
// deadline, trace stitching (a fresh trace whose parent is the
// coordinator's X-DBS-Trace ID), route histogram, and ring/access-log
// filing — compute() minus admission control. Shard RPCs run inside a
// user request the coordinator already admitted; admitting them again
// would let the internal fan-out of admitted work deadlock behind new
// external work.
func (s *Server) shardRPC(route string, fn func(ctx context.Context, r *http.Request) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.rec.Counter(CtrRequests).Inc()
		id := s.ids.Next()
		w.Header().Set(TraceHeader, id)
		sw := &statusWriter{ResponseWriter: w}
		var tr *trace.Trace
		if s.traceOn {
			tr = trace.New(id)
			if parent := r.Header.Get(TraceHeader); parent != "" {
				tr.Eventf("rpc", "parent=%s", parent)
			}
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Deadline)
		defer cancel()
		ctx = trace.NewContext(ctx, tr)
		defer func() {
			s.observe(route, start)
			s.finishRequest(tr, route, r.Header.Get(TenantHeader), sw, start)
		}()
		resp, err := fn(ctx, r)
		if err != nil {
			s.pipelineFail(sw, err)
			return
		}
		writeJSON(sw, http.StatusOK, resp)
	}
}

func (s *Server) handleShardPartials(ctx context.Context, r *http.Request) (any, error) {
	var req shard.PartialsRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, fmt.Errorf("decoding shard partials request: %v", err)
	}
	return s.shardEx.Partials(ctx, &req)
}

func (s *Server) handleShardDraw(ctx context.Context, r *http.Request) (any, error) {
	var req shard.DrawRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, fmt.Errorf("decoding shard draw request: %v", err)
	}
	return s.shardEx.Draw(ctx, &req)
}

// buildSampleSharded is buildSample's scatter-gather twin: phase one
// merges per-shard partial normalizers into the exact global k_a, phase
// two fans the coin flips out against it and concatenates selections in
// global block order. The RNG derivation matches buildSample exactly
// (same seed streams, same one draw for the stream base), so the
// artifact — and therefore the response bytes — is identical to the
// single-node build. Fan-out wait is observed into HistShardSeconds per
// phase, not into the build-stage histogram: /healthz separates time
// spent waiting on workers from coordinator-local work. Replica
// fallback and hedging live in the coordinator; a fan-out that exhausts
// every replica surfaces as a transient error (503 upstream), and a
// degenerate or short response can never merge silently.
func (s *Server) buildSampleSharded(ctx context.Context, rec *obs.Recorder, h *Handle, q sampleRequest, p estParams, g uint64) (any, int64, error) {
	if s.cfg.Precision == core.Float32 {
		return nil, 0, fmt.Errorf("sharded serving requires float64 precision")
	}
	view, err := h.ViewAt(g)
	if err != nil {
		return nil, 0, err
	}
	fp, err := h.FingerprintAt(g)
	if err != nil {
		return nil, 0, err
	}
	prm := shard.Params{
		Dataset:     q.Dataset,
		Generation:  g,
		Fingerprint: fmt.Sprintf("%016x", fp),
		Alpha:       q.Alpha,
		Size:        q.Size,
		Kernels:     p.Kernels,
		Kernel:      p.Kernel,
		Seed:        p.Seed,
	}
	n := view.Len()
	span := rec.StartSpan("server/build/sample_sharded")
	defer span.End()

	t0 := time.Now()
	norm, err := s.coord.Norm(ctx, prm, n)
	s.rec.Histogram(HistShardSeconds, obs.Label{Key: "stage", Value: "partials"}).
		Observe(time.Since(t0).Seconds())
	if err != nil {
		return nil, 0, err
	}

	// One draw of the request's draw stream, exactly where core.Draw
	// would consume it — the base every worker reconstructs its block
	// streams from.
	_, drawRNG := seedStreams(p.Seed)
	base := core.DrawStreamBase(drawRNG)

	t1 := time.Now()
	sm, err := s.coord.Draw(ctx, prm, n, view.Dims(), norm, base)
	s.rec.Histogram(HistShardSeconds, obs.Label{Key: "stage", Value: "draw"}).
		Observe(time.Since(t1).Seconds())
	if err != nil {
		return nil, 0, err
	}
	span.AddPoints(int64(n))
	ns := core.NormState{K: sm.Norm, N: n, Kernels: p.Kernels}
	return &sampleArtifact{s: sm, ns: ns}, sampleBytes(sm), nil
}
