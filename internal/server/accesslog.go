package server

import (
	"encoding/json"
	"io"
	"sync"
)

// accessRecord is one structured access-log line. Field order fixes
// the JSON key order; durations are milliseconds throughout, matching
// the /healthz digest.
type accessRecord struct {
	Time    string             `json:"time"`
	TraceID string             `json:"trace_id"`
	Route   string             `json:"route"`
	Status  int                `json:"status"`
	DurMs   float64            `json:"dur_ms"`
	QueueMs float64            `json:"queue_ms"`
	Cache   string             `json:"cache,omitempty"`
	Bytes   int64              `json:"bytes"`
	Slow    bool               `json:"slow,omitempty"`
	Stages  map[string]float64 `json:"stages_ms,omitempty"`
}

// accessLogger serializes one JSON line per completed request to its
// writer. The mutex makes whole lines atomic under concurrent request
// completion — interleaved halves of two lines would corrupt a log
// processor — and a write error drops the line rather than failing the
// request that produced it.
type accessLogger struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *accessLogger) log(rec accessRecord) {
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	b = append(b, '\n')
	l.mu.Lock()
	l.w.Write(b)
	l.mu.Unlock()
}
