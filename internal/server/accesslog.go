package server

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// accessRecord is one structured access-log line. Field order fixes
// the JSON key order; durations are milliseconds throughout, matching
// the /healthz digest.
type accessRecord struct {
	Time     string             `json:"time"`
	TraceID  string             `json:"trace_id"`
	Route    string             `json:"route"`
	Tenant   string             `json:"tenant,omitempty"`
	Status   int                `json:"status"`
	DurMs    float64            `json:"dur_ms"`
	QueueMs  float64            `json:"queue_ms"`
	Cache    string             `json:"cache,omitempty"`
	Degraded bool               `json:"degraded,omitempty"`
	Bytes    int64              `json:"bytes"`
	Slow     bool               `json:"slow,omitempty"`
	Stages   map[string]float64 `json:"stages_ms,omitempty"`
}

// accessLogger serializes one JSON line per completed request to its
// writer. The mutex makes whole lines atomic under concurrent request
// completion — interleaved halves of two lines would corrupt a log
// processor (TestAccessLogLineAtomicity interleaves requests under
// -race and asserts every line parses) — and a write error drops the
// line (counted) rather than failing the request that produced it.
type accessLogger struct {
	mu      sync.Mutex
	w       io.Writer
	dropped atomic.Int64
}

func (l *accessLogger) log(rec accessRecord) {
	b, err := json.Marshal(rec)
	if err != nil {
		l.dropped.Add(1)
		return
	}
	b = append(b, '\n')
	l.mu.Lock()
	_, werr := l.w.Write(b)
	l.mu.Unlock()
	if werr != nil {
		l.dropped.Add(1)
	}
}
