package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// streamServer starts an httptest server with no datasets registered —
// streams are created through POST /v1/streams/{name}/append.
func streamServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func streamAppend(t *testing.T, url, name string, pts []geom.Point) streamAppendResponse {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/streams/"+name+"/append", appendBody(pts))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream append: %d: %s", resp.StatusCode, body)
	}
	var ar streamAppendResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatalf("decoding stream append response: %v: %s", err, body)
	}
	return ar
}

func TestStreamAppendAutoCreateAndWindow(t *testing.T) {
	_, ts := streamServer(t, Config{Parallelism: 2, WindowPoints: 500})

	ar := streamAppend(t, ts.URL, "s", testPoints(300, 2, 1))
	if ar.Generation != 0 || ar.Points != 300 || ar.Added != 300 {
		t.Fatalf("first append = %+v, want gen 0, 300 points, 300 added", ar)
	}
	if ar.WindowStart != 0 || ar.WindowLen != 300 {
		t.Errorf("first window = [%d, +%d), want [0, +300) (shorter than the window)", ar.WindowStart, ar.WindowLen)
	}

	ar = streamAppend(t, ts.URL, "s", testPoints(300, 2, 2))
	if ar.Generation != 1 || ar.Points != 600 || ar.Added != 300 {
		t.Fatalf("second append = %+v, want gen 1, 600 points, 300 added", ar)
	}
	if ar.WindowStart != 100 || ar.WindowLen != 500 {
		t.Errorf("second window = [%d, +%d), want [100, +500)", ar.WindowStart, ar.WindowLen)
	}

	// Empty bodies are rejected before any registration.
	resp, body := postJSON(t, ts.URL+"/v1/streams/empty/append", appendBody(nil))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty append: %d: %s, want 400", resp.StatusCode, body)
	}
}

// TestWindowSampleByteIdentityVsFreshRegistration pins the window-evict
// determinism contract: sampling a windowed stream must be byte-identical
// to registering the window's rows as a fresh dataset — at every worker
// count. The window must be invisible in the bytes: same fingerprint,
// same points, same norm.
func TestWindowSampleByteIdentityVsFreshRegistration(t *testing.T) {
	const w = 800
	all := testPoints(1250, 3, 99)
	batches := [][]geom.Point{all[:400], all[400:750], all[750:]}
	body := map[string]any{"dataset": "s", "alpha": 1.0, "size": 150, "kernels": 48, "seed": 7}

	var want []byte
	for _, par := range []int{1, 8} {
		_, tsA := streamServer(t, Config{Parallelism: par, WindowPoints: w})
		for _, b := range batches {
			streamAppend(t, tsA.URL, "s", b)
		}
		respA, bodyA := postJSON(t, tsA.URL+"/v1/sample", body)
		if respA.StatusCode != http.StatusOK {
			t.Fatalf("par %d windowed sample: %d: %s", par, respA.StatusCode, bodyA)
		}

		srvB, tsB := streamServer(t, Config{Parallelism: par})
		tail := make([]geom.Point, w)
		copy(tail, all[len(all)-w:])
		if err := srvB.Registry().RegisterDataset("s", dataset.MustInMemory(tail)); err != nil {
			t.Fatal(err)
		}
		respB, bodyB := postJSON(t, tsB.URL+"/v1/sample", body)
		if respB.StatusCode != http.StatusOK {
			t.Fatalf("par %d fresh sample: %d: %s", par, respB.StatusCode, bodyB)
		}

		if !bytes.Equal(bodyA, bodyB) {
			t.Errorf("par %d: windowed sample differs from fresh registration of the window's rows\nwindowed: %.200s\nfresh:    %.200s", par, bodyA, bodyB)
		}
		if want == nil {
			want = bodyA
		} else if !bytes.Equal(want, bodyA) {
			t.Errorf("par %d: windowed sample differs from par 1", par)
		}
	}
}

// TestWindowCacheKeysAcrossAppends pins cache correctness over a live
// stream: repeats of the same window hit the cache, and an append that
// slides the window must miss — the window fingerprint is part of the
// key, so a stale artifact can never be served as fresh.
func TestWindowCacheKeysAcrossAppends(t *testing.T) {
	_, ts := streamServer(t, Config{Parallelism: 2, WindowPoints: 600})
	streamAppend(t, ts.URL, "s", testPoints(500, 2, 5))
	streamAppend(t, ts.URL, "s", testPoints(400, 2, 6))
	body := map[string]any{"dataset": "s", "alpha": 1.0, "size": 100, "kernels": 32, "seed": 3}

	resp1, body1 := postJSON(t, ts.URL+"/v1/sample", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first sample: %d: %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-DBS-Cache"); got != "miss" {
		t.Errorf("first X-DBS-Cache = %q, want miss", got)
	}
	resp2, body2 := postJSON(t, ts.URL+"/v1/sample", body)
	if got := resp2.Header.Get("X-DBS-Cache"); got != "hit" {
		t.Errorf("repeat X-DBS-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("cache hit changed the bytes")
	}

	streamAppend(t, ts.URL, "s", testPoints(300, 2, 7))
	resp3, body3 := postJSON(t, ts.URL+"/v1/sample", body)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("post-append sample: %d: %s", resp3.StatusCode, body3)
	}
	if got := resp3.Header.Get("X-DBS-Cache"); got != "miss" {
		t.Errorf("post-append X-DBS-Cache = %q, want miss (window slid, new fingerprint)", got)
	}
	if decodeSample(t, body1).Fingerprint == decodeSample(t, body3).Fingerprint {
		t.Error("fingerprint unchanged after the window slid")
	}
	if resp4, _ := postJSON(t, ts.URL+"/v1/sample", body); resp4.Header.Get("X-DBS-Cache") != "hit" {
		t.Errorf("post-append repeat X-DBS-Cache = %q, want hit", resp4.Header.Get("X-DBS-Cache"))
	}
}

// TestDurationWindow drives a duration-windowed stream with a fake clock:
// generations age out generation-granularly, and when everything is stale
// the newest generation is still served.
func TestDurationWindow(t *testing.T) {
	srv, ts := streamServer(t, Config{Parallelism: 2, WindowDur: time.Minute})
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	now := base
	srv.nowFn = func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advanceTo := func(d time.Duration) {
		mu.Lock()
		now = base.Add(d)
		mu.Unlock()
	}

	all := testPoints(600, 2, 44)
	streamAppend(t, ts.URL, "s", all[:200])
	advanceTo(30 * time.Second)
	streamAppend(t, ts.URL, "s", all[200:400])
	advanceTo(90 * time.Second)
	ar := streamAppend(t, ts.URL, "s", all[400:])
	// Cutoff is t+30s: generation 0 (t+0) is stale, generation 1 (t+30s)
	// is exactly on the boundary and kept.
	if ar.WindowStart != 200 || ar.WindowLen != 400 {
		t.Errorf("window after third append = [%d, +%d), want [200, +400)", ar.WindowStart, ar.WindowLen)
	}

	body := map[string]any{"dataset": "s", "alpha": 1.0, "size": 80, "kernels": 32, "seed": 9}
	resp1, body1 := postJSON(t, ts.URL+"/v1/sample", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("sample: %d: %s", resp1.StatusCode, body1)
	}

	// Far in the future everything is stale; the newest generation is
	// still served rather than an empty window.
	advanceTo(10 * time.Minute)
	resp2, body2 := postJSON(t, ts.URL+"/v1/sample", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("stale sample: %d: %s", resp2.StatusCode, body2)
	}
	if bytes.Equal(body1, body2) {
		t.Error("sample unchanged after the window aged from 2 generations to 1")
	}

	srvB, tsB := streamServer(t, Config{Parallelism: 2})
	tail := make([]geom.Point, 200)
	copy(tail, all[400:])
	if err := srvB.Registry().RegisterDataset("s", dataset.MustInMemory(tail)); err != nil {
		t.Fatal(err)
	}
	respB, bodyB := postJSON(t, tsB.URL+"/v1/sample", body)
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("fresh sample: %d: %s", respB.StatusCode, bodyB)
	}
	if !bytes.Equal(body2, bodyB) {
		t.Error("all-stale window differs from fresh registration of the newest generation")
	}
}
