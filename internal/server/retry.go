package server

import (
	"context"
	"errors"
	"io"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/trace"
)

// isTransient classifies an error as worth retrying: injected faults,
// truncated reads, and anything self-reporting Temporary or Timeout.
// Cancellation and context errors are excluded — whether a canceled
// stage is retryable depends on whether the *request* is still live,
// which runStage checks against the request context, not the error.
func isTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, parallel.ErrCanceled) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, faults.ErrInjected) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var te interface{ Temporary() bool }
	if errors.As(err, &te) && te.Temporary() {
		return true
	}
	var to interface{ Timeout() bool }
	if errors.As(err, &to) && to.Timeout() {
		return true
	}
	return false
}

// runStage runs one pipeline stage under the configured per-stage
// timeout and bounded retry policy. Each attempt gets a fresh stage
// context; transient failures (and cancellations while the request
// itself is still live — a stage timeout or an injected cancel) back
// off exponentially with deterministic jitter derived from (seed,
// stage), so a replayed request replays its backoff schedule too. The
// stage callback must be restartable: it re-derives its RNG streams per
// attempt, which is what keeps a response built on attempt three
// bit-identical to one built on attempt one.
func (s *Server) runStage(ctx context.Context, rec *obs.Recorder, stage string, seed uint64, f func(ctx context.Context) error) error {
	attempts := s.cfg.Retry + 1
	if attempts < 1 {
		attempts = 1
	}
	tr := trace.FromContext(ctx)
	hist := s.rec.Histogram(HistStageSeconds, obs.Label{Key: "stage", Value: stage})
	var rng *stats.RNG
	var err error
	for i := 0; i < attempts; i++ {
		sctx := ctx
		cancel := context.CancelFunc(nil)
		if s.cfg.StageTimeout > 0 {
			sctx, cancel = context.WithTimeout(ctx, s.cfg.StageTimeout)
		}
		// Each attempt is one span occurrence at the stage path (the
		// recorder forwards it to the request trace, so a retried stage
		// shows sibling attempt spans) and one stage-histogram
		// observation on the server recorder.
		t0 := time.Now()
		span := rec.StartSpan(stage)
		err = f(sctx)
		span.End()
		hist.Observe(time.Since(t0).Seconds())
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return nil
		}
		// An injected fault is attributed to the request's trace here,
		// from the error it produced — exactly once, whatever the stage
		// outcome (faults.Point.Check records only clean delays itself,
		// which never surface as errors).
		if tr != nil {
			var ie *faults.InjectedError
			if errors.As(err, &ie) {
				tr.Eventf("fault", "site=%s kind=%s op=%d", ie.Site, ie.Kind, ie.Op)
			}
		}
		if ctx.Err() != nil {
			// The request itself is dead; retrying would burn a slot on
			// work nobody can receive.
			return err
		}
		if !isTransient(err) && !errors.Is(err, parallel.ErrCanceled) {
			return err
		}
		if i == attempts-1 {
			return err
		}
		rec.Counter(obs.CtrRetries).Inc()
		if rng == nil {
			rng = stats.NewRNG(seed ^ faults.SiteHash(stage))
		}
		back := float64(s.cfg.RetryBackoff << uint(i))
		d := time.Duration((0.5 + 0.5*rng.Float64()) * back)
		tr.Eventf("retry", "stage=%s attempt=%d backoff=%s", stage, i+1, d)
		if d > 0 {
			if parallel.SleepCtx(ctx, d) != nil {
				return err
			}
		}
	}
	return err
}
