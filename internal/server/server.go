package server

import (
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// Server-level counter and gauge names, joining the catalogue in
// internal/obs. Exposed at /metrics in Prometheus text format.
const (
	CtrRequests    = "server_requests_total"
	CtrErrors      = "server_request_errors_total"
	CtrShed        = "server_requests_shed_total"
	CtrShedFull    = "server_requests_shed_queue_full_total"
	CtrShedExpired = "server_requests_shed_expired_total"
	CtrCacheHit    = "server_cache_hits_total"
	CtrCacheMiss   = "server_cache_misses_total"
	CtrCacheEvict  = "server_cache_evictions_total"
	CtrCacheStale  = "server_cache_stale_served_total"
	CtrKDEBuilds   = "server_kde_builds_total"

	GaugeInFlight   = "server_in_flight"
	GaugeCacheBytes = "server_cache_bytes"
)

// Config sizes the serving layer. The zero value is usable: all-CPU
// parallelism, a 256 MiB artifact cache, in-flight admission matched to
// the core count, and a 30-second request deadline.
type Config struct {
	// Parallelism bounds the scan workers each admitted request may use
	// (0 = all CPUs). Results never depend on it.
	Parallelism int
	// Precision selects the density-evaluation arithmetic for every draw
	// the server runs (core.Float64 or core.Float32). It is server-wide
	// rather than per-request so cache keys are unaffected: the whole
	// in-process cache is built at one precision and the serving
	// guarantee (bit-identical responses for identical requests) holds
	// within it.
	Precision core.Precision
	// CacheBytes is the artifact cache budget (default 256 MiB; negative
	// disables caching).
	CacheBytes int64
	// MaxInFlight bounds concurrently executing pipeline requests
	// (default: the effective parallelism degree, so one request's scan
	// workers fill the machine before a second is admitted).
	MaxInFlight int
	// MaxQueue bounds requests waiting for an in-flight slot
	// (default 2 × MaxInFlight; negative means no queue — reject the
	// moment the in-flight limit is hit). Beyond it requests are shed
	// with 429.
	MaxQueue int
	// Deadline is the per-request time budget (default 30s). It bounds
	// both queue wait and pipeline execution via the request context.
	Deadline time.Duration
	// Retry is how many times a transiently failed build stage is
	// re-attempted (0 = fail on first error). Retries back off
	// exponentially from RetryBackoff with deterministic jitter and
	// never outlive the request deadline.
	Retry int
	// RetryBackoff is the base backoff before the first retry, doubling
	// per attempt (default 20ms when Retry > 0).
	RetryBackoff time.Duration
	// StageTimeout bounds each build-stage attempt; a stage that blows
	// it is retried under the Retry budget while the request deadline
	// holds (0 = stages bounded only by the request deadline).
	StageTimeout time.Duration
	// StaleOK keeps evicted cache artifacts in a stale side-ring (same
	// byte budget as the cache) and serves one — flagged via
	// X-DBS-Cache: stale — when its rebuild fails.
	StaleOK bool
	// DriftTol is the relative drift budget for incremental builds after
	// appends. 0 (the default) means every generation is sampled exactly
	// — append-then-sample rebuilds from scratch and responses are
	// bit-for-bit those of a server that never saw the appends. A
	// positive tolerance lets a generation's sample be extended from the
	// prior generation's cached artifact with passes over the delta only,
	// until the accumulated drift Σ m_g/n_g exceeds the tolerance and an
	// exact rebuild resets the budget (core.RebuildSchedule).
	DriftTol float64
	// Faults injects scheduled faults into the build stages (chaos
	// tests and experiments; nil injects nothing).
	Faults *faults.Injector
	// Rec receives the server's counters and gauges, plus every
	// request's rolled-up pipeline counters. A fresh Recorder is created
	// when nil.
	Rec *obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.CacheBytes < 0 {
		c.CacheBytes = 0
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = parallel.Degree(c.Parallelism)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 2 * c.MaxInFlight
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.Deadline == 0 {
		c.Deadline = 30 * time.Second
	}
	if c.Retry < 0 {
		c.Retry = 0
	}
	if c.RetryBackoff == 0 && c.Retry > 0 {
		c.RetryBackoff = 20 * time.Millisecond
	}
	if c.Rec == nil {
		c.Rec = obs.New()
	}
	return c
}

// Server ties the registry, cache, and admission controller to the HTTP
// API. Create with New, expose with Handler.
type Server struct {
	cfg   Config
	reg   *Registry
	cache *Cache
	adm   *Admission
	rec   *obs.Recorder
	mux   *http.ServeMux

	// Fault-injection points guarding the build stages and the append
	// path; nil (the usual case) injects nothing.
	pEst         *faults.Point
	pSample      *faults.Point
	pEstDelta    *faults.Point
	pSampleDelta *faults.Point
	pAppend      *faults.Point

	latMu sync.Mutex
	lat   map[string]*latRing
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	staleBytes := int64(0)
	if cfg.StaleOK {
		staleBytes = cfg.CacheBytes
	}
	s := &Server{
		cfg:          cfg,
		reg:          NewRegistry(cfg.Parallelism),
		cache:        NewCache(cfg.CacheBytes, staleBytes),
		adm:          NewAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		rec:          cfg.Rec,
		mux:          http.NewServeMux(),
		lat:          make(map[string]*latRing),
		pEst:         cfg.Faults.Point("server/build/est"),
		pSample:      cfg.Faults.Point("server/build/sample"),
		pEstDelta:    cfg.Faults.Point("server/build/est_delta"),
		pSampleDelta: cfg.Faults.Point("server/build/sample_delta"),
		pAppend:      cfg.Faults.Point("server/append"),
	}
	s.routes()
	return s
}

// Handler returns the full API: the /v1 endpoints, /healthz, and the
// observability surface (/metrics, /debug/pprof) on one mux.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the dataset registry, e.g. for pre-registering
// datasets from the command line before serving.
func (s *Server) Registry() *Registry { return s.reg }

// Recorder returns the server-level recorder (for tests and embedding).
func (s *Server) Recorder() *obs.Recorder { return s.rec }

// StartDraining begins a graceful drain: /healthz flips to "draining" and
// new compute requests are rejected with 503 while admitted ones finish.
// Pair it with http.Server.Shutdown, which waits for in-flight handlers.
func (s *Server) StartDraining() { s.adm.StartDraining() }

// latRing keeps the last ringSize request latencies per route; /healthz
// reports p50/p99 over the window via stats.Quantile.
const ringSize = 512

type latRing struct {
	mu   sync.Mutex
	buf  [ringSize]float64
	n    int // total observations (saturates accounting at ringSize)
	next int
}

func (r *latRing) add(ms float64) {
	r.mu.Lock()
	r.buf[r.next] = ms
	r.next = (r.next + 1) % ringSize
	if r.n < ringSize {
		r.n++
	}
	r.mu.Unlock()
}

func (r *latRing) snapshot() []float64 {
	r.mu.Lock()
	out := append([]float64(nil), r.buf[:r.n]...)
	r.mu.Unlock()
	return out
}

func (s *Server) latFor(route string) *latRing {
	s.latMu.Lock()
	defer s.latMu.Unlock()
	lr := s.lat[route]
	if lr == nil {
		lr = &latRing{}
		s.lat[route] = lr
	}
	return lr
}

// LatencySummary is the /healthz per-route latency digest.
type LatencySummary struct {
	Count int     `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P99ms float64 `json:"p99_ms"`
}

func (s *Server) latencySummaries() map[string]LatencySummary {
	s.latMu.Lock()
	routes := make([]string, 0, len(s.lat))
	for route := range s.lat {
		routes = append(routes, route)
	}
	s.latMu.Unlock()
	sort.Strings(routes)

	out := make(map[string]LatencySummary, len(routes))
	for _, route := range routes {
		xs := s.latFor(route).snapshot()
		if len(xs) == 0 {
			continue
		}
		out[route] = LatencySummary{
			Count: len(xs),
			P50ms: stats.Quantile(xs, 0.50),
			P99ms: stats.Quantile(xs, 0.99),
		}
	}
	return out
}

// observe records a finished request into the route's latency ring and
// the server counters/gauges.
func (s *Server) observe(route string, start time.Time) {
	s.latFor(route).add(float64(time.Since(start)) / float64(time.Millisecond))
	s.syncGauges()
}

func (s *Server) syncGauges() {
	s.rec.Gauge(GaugeInFlight).Set(float64(s.adm.InFlight()))
	s.rec.Gauge(GaugeCacheBytes).Set(float64(s.cache.Stats().Bytes))
}

// syncCacheCounters mirrors the cache's internal tallies into the
// recorder so /metrics carries them; called after each cache interaction.
func (s *Server) syncCacheCounters() {
	st := s.cache.Stats()
	setCounter(s.rec.Counter(CtrCacheHit), st.Hits)
	setCounter(s.rec.Counter(CtrCacheMiss), st.Misses)
	setCounter(s.rec.Counter(CtrCacheEvict), st.Evictions)
	setCounter(s.rec.Counter(CtrCacheStale), st.StaleServed)
	s.rec.Gauge(GaugeCacheBytes).Set(float64(st.Bytes))
}

// syncShedCounters mirrors the admission controller's shed tallies,
// total plus the queue-full / deadline-expired split.
func (s *Server) syncShedCounters() {
	setCounter(s.rec.Counter(CtrShed), s.adm.Shed())
	setCounter(s.rec.Counter(CtrShedFull), s.adm.ShedQueueFull())
	setCounter(s.rec.Counter(CtrShedExpired), s.adm.ShedExpired())
}

// retryAfterHint suggests a client back-off for 503 responses: half the
// request deadline, clamped to [1s, 30s], in whole seconds.
func (s *Server) retryAfterHint() string {
	secs := int64(s.cfg.Deadline / (2 * time.Second))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return strconv.FormatInt(secs, 10)
}

// setCounter raises c to total (counters are monotonic; the cache is the
// source of truth, the recorder the exposition).
func setCounter(c *obs.Counter, total int64) {
	if d := total - c.Value(); d > 0 {
		c.Add(d)
	}
}
