package server

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/shard"
	"repro/internal/trace"
)

// Server-level counter and gauge names, joining the catalogue in
// internal/obs. Exposed at /metrics in Prometheus text format.
const (
	CtrRequests      = "server_requests_total"
	CtrErrors        = "server_request_errors_total"
	CtrShed          = "server_requests_shed_total"
	CtrShedFull      = "server_requests_shed_queue_full_total"
	CtrShedExpired   = "server_requests_shed_expired_total"
	CtrShedPreempted = "server_requests_shed_preempted_total"
	CtrDegraded      = "server_requests_degraded_total"
	CtrCacheHit      = "server_cache_hits_total"
	CtrCacheMiss     = "server_cache_misses_total"
	CtrCacheEvict    = "server_cache_evictions_total"
	CtrCacheStale    = "server_cache_stale_served_total"
	CtrCacheDisk     = "server_cache_disk_hits_total"
	CtrKDEBuilds     = "server_kde_builds_total"

	GaugeInFlight   = "server_in_flight"
	GaugeCacheBytes = "server_cache_bytes"
)

// Histogram names: request latency per route and build-stage latency
// per stage, both log2-bucketed (see internal/obs). They replace the
// fixed-size latency ring: cumulative process-life distributions that
// Prometheus can rate(), instead of a 512-sample window that a burst
// could rotate out of.
//
// HistShardSeconds is the coordinator's downstream fan-out wait, per
// phase ("partials", "draw"). It is deliberately separate from
// HistStageSeconds: a sharded build spends its time waiting on workers,
// and folding that wait into the "build" stages would make coordinator-
// local latency indistinguishable from downstream shard latency.
const (
	HistRequestSeconds = "server_request_seconds" // label: route
	HistStageSeconds   = "server_stage_seconds"   // label: stage
	HistShardSeconds   = "server_shard_seconds"   // label: stage (partials|draw)

	// HistQueueSeconds is the admission queue wait, observed only for
	// requests that actually queued (a fast-path admit contributes
	// nothing). The unlabeled aggregate drives the derived Retry-After
	// hints; the tenant-labeled family is the per-tenant SLO view.
	HistQueueSeconds       = "server_queue_seconds"
	HistTenantQueueSeconds = "server_tenant_queue_seconds" // label: tenant
)

// TraceHeader is the response header carrying the request's trace ID.
// It is set on every compute response — success, pipeline failure, and
// shed (429/503/504) alike — so a client error report can always be
// joined against the access log and /debug/traces.
const TraceHeader = "X-DBS-Trace"

// TenantHeader names the request's tenant for admission accounting
// (API-key style). Absent or empty means DefaultTenant, so untagged
// clients share one default bucket and a single-tenant deployment is
// unchanged.
const TenantHeader = "X-DBS-Tenant"

// DegradedHeader marks a response served by the degrade ladder instead
// of the full pipeline: under overload, a shed /v1/sample request may
// be answered from the cached a=0 artifact (uniform sampling — the
// DBSCAN++ special case of the paper's scheme) rather than a 429. The
// value names the rung ("a0").
const DegradedHeader = "X-DBS-Degraded"

// Config sizes the serving layer. The zero value is usable: all-CPU
// parallelism, a 256 MiB artifact cache, in-flight admission matched to
// the core count, and a 30-second request deadline.
type Config struct {
	// Parallelism bounds the scan workers each admitted request may use
	// (0 = all CPUs). Results never depend on it.
	Parallelism int
	// Precision selects the density-evaluation arithmetic for every draw
	// the server runs (core.Float64 or core.Float32). It is server-wide
	// rather than per-request so cache keys are unaffected: the whole
	// in-process cache is built at one precision and the serving
	// guarantee (bit-identical responses for identical requests) holds
	// within it.
	Precision core.Precision
	// CacheBytes is the artifact cache budget (default 256 MiB; negative
	// disables caching).
	CacheBytes int64
	// MaxInFlight bounds concurrently executing pipeline requests
	// (default: the effective parallelism degree, so one request's scan
	// workers fill the machine before a second is admitted).
	MaxInFlight int
	// MaxQueue bounds requests waiting for an in-flight slot
	// (default 2 × MaxInFlight; negative means no queue — reject the
	// moment the in-flight limit is hit). Beyond it requests are shed
	// with 429.
	MaxQueue int
	// Deadline is the per-request time budget (default 30s). It bounds
	// both queue wait and pipeline execution via the request context.
	Deadline time.Duration
	// Retry is how many times a transiently failed build stage is
	// re-attempted (0 = fail on first error). Retries back off
	// exponentially from RetryBackoff with deterministic jitter and
	// never outlive the request deadline.
	Retry int
	// RetryBackoff is the base backoff before the first retry, doubling
	// per attempt (default 20ms when Retry > 0).
	RetryBackoff time.Duration
	// StageTimeout bounds each build-stage attempt; a stage that blows
	// it is retried under the Retry budget while the request deadline
	// holds (0 = stages bounded only by the request deadline).
	StageTimeout time.Duration
	// StaleOK keeps evicted cache artifacts in a stale side-ring (same
	// byte budget as the cache) and serves one — flagged via
	// X-DBS-Cache: stale — when its rebuild fails.
	StaleOK bool
	// DriftTol is the relative drift budget for incremental builds after
	// appends. 0 (the default) means every generation is sampled exactly
	// — append-then-sample rebuilds from scratch and responses are
	// bit-for-bit those of a server that never saw the appends. A
	// positive tolerance lets a generation's sample be extended from the
	// prior generation's cached artifact with passes over the delta only,
	// until the accumulated drift Σ m_g/n_g exceeds the tolerance and an
	// exact rebuild resets the budget (core.RebuildSchedule).
	DriftTol float64
	// Faults injects scheduled faults into the build stages (chaos
	// tests and experiments; nil injects nothing).
	Faults *faults.Injector
	// Rec receives the server's counters and gauges, plus every
	// request's rolled-up pipeline counters. A fresh Recorder is created
	// when nil.
	Rec *obs.Recorder
	// TraceSample is the fraction of requests whose completed traces
	// are retained in the /debug/traces recent ring. The decision is a
	// pure function of the trace ID (trace.SampleID) — no RNG state is
	// consumed, so sampling can never perturb responses. 0 disables the
	// recent ring; ≥ 1 retains every request.
	TraceSample float64
	// SlowThreshold is the slow-trace keeper: a request lasting at
	// least this long is always retained in the slow ring, whatever the
	// sample rate. 0 disables the keeper.
	SlowThreshold time.Duration
	// TraceRing is the capacity of each trace ring (default 64). Memory
	// is bounded by 2 × TraceRing × trace.MaxEvents however many
	// requests pass through.
	TraceRing int
	// TraceSeed seeds the trace-ID stream deterministically (tests and
	// chaos runs name a trace by request order); 0 seeds randomly.
	TraceSeed uint64
	// AccessLog, when non-nil, receives one JSON line per completed
	// compute request: trace ID, route, status, cache outcome, queue
	// wait, and the per-stage latency breakdown.
	AccessLog io.Writer

	// Tenants maps tenant names (the TenantHeader value) to admission
	// policies: WFQ weight, per-tenant in-flight/queue quotas, and shed
	// priority. The "*" entry covers tenants not named explicitly. Nil
	// means every tenant gets the default weight-1 normal-priority
	// policy — pure fair sharing bounded by the global limits.
	Tenants map[string]TenantPolicy
	// DegradeOK turns the shed-degrade ladder on: a /v1/sample request
	// rejected by admission (saturated or preempted) is answered from
	// the cached a=0 artifact for the same (dataset, size, seed) when
	// one exists — response 200 with DegradedHeader — instead of a 429.
	DegradeOK bool
	// DiskDir, when set, enables the disk artifact tier: estimator and
	// sample artifacts are persisted there (content-keyed DBSA1 files)
	// and reloaded on cache miss, so the cache survives restarts and a
	// shared directory prewarms replicas.
	DiskDir string
	// DiskBytes bounds the disk tier (default 4 GiB; ≤ 0 with DiskDir
	// set means unbounded).
	DiskBytes int64

	// ShardWorkers > 0 turns sharded sample builds on with that many
	// in-process shard workers (goroutine-backed, all sharing this
	// server's registry and cache). Sharded builds run the exact
	// algorithm only and are bit-identical to the single-node build at
	// every worker count; they require Float64 precision. Mutually
	// exclusive with ShardPeers.
	ShardWorkers int
	// ShardPeers turns HTTP shard mode on: shard name → base URL of a
	// dbsserve worker started with -shard-of <name>, holding the same
	// dataset content (the per-generation fingerprint is verified on
	// every RPC; divergence is a loud 503, never a wrong merge).
	ShardPeers map[string]string
	// ShardReplicas is how many workers may serve each block group: the
	// consistent-hash owner plus ShardReplicas-1 ring successors as
	// hedge/fallback targets (default 2, clamped to the worker count).
	ShardReplicas int
	// ShardHedge is the latency budget after which a pending shard RPC
	// is hedged to the next replica (0 = no hedging). Hedging changes
	// latency, never bytes: every replica computes the identical answer.
	ShardHedge time.Duration
	// ShardOf, when set, is this server's worker identity: shard RPCs
	// naming any other shard are rejected. Workers without it accept any
	// shard name (the in-process mode and single-purpose test workers).
	ShardOf string

	// WindowPoints restricts compute over stream datasets (those fed
	// through /v1/streams/{name}/append) to their most recent N points:
	// each request resolves a concrete [start, end) window over its
	// pinned generation and both scans and cache keys cover exactly
	// those rows. The window fingerprint is content-addressed, so a
	// windowed response is bit-identical to the same rows registered as
	// a fresh dataset. 0 leaves streams unwindowed by count.
	WindowPoints int
	// WindowDur restricts stream datasets to the generations appended
	// within the duration — generation-granular: a generation is either
	// fully in or fully out, and the newest generation is always kept.
	// Combined with WindowPoints, the tighter bound wins. 0 leaves
	// streams unwindowed by age.
	WindowDur time.Duration
}

// tracingEnabled reports whether requests collect traces: any consumer
// of per-request events (sampling ring, slow keeper, access log) turns
// collection on; with none, requests carry a nil trace and the whole
// layer costs a header write and a few nil checks.
func (c *Config) tracingEnabled() bool {
	return c.TraceSample > 0 || c.SlowThreshold > 0 || c.AccessLog != nil
}

func (c Config) withDefaults() Config {
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.CacheBytes < 0 {
		c.CacheBytes = 0
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = parallel.Degree(c.Parallelism)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 2 * c.MaxInFlight
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.Deadline == 0 {
		c.Deadline = 30 * time.Second
	}
	if c.Retry < 0 {
		c.Retry = 0
	}
	if c.RetryBackoff == 0 && c.Retry > 0 {
		c.RetryBackoff = 20 * time.Millisecond
	}
	if c.Rec == nil {
		c.Rec = obs.New()
	}
	if c.TraceRing == 0 {
		c.TraceRing = 64
	}
	if c.ShardReplicas == 0 {
		c.ShardReplicas = 2
	}
	if c.DiskDir != "" && c.DiskBytes == 0 {
		c.DiskBytes = 4 << 30
	}
	return c
}

// Server ties the registry, cache, and admission controller to the HTTP
// API. Create with New, expose with Handler.
type Server struct {
	cfg   Config
	reg   *Registry
	cache *Cache
	adm   *Admission
	disk  *DiskTier // nil unless Config.DiskDir is set
	rec   *obs.Recorder
	mux   *http.ServeMux

	// Fault-injection points guarding the build stages and the append
	// path; nil (the usual case) injects nothing.
	pEst         *faults.Point
	pSample      *faults.Point
	pEstDelta    *faults.Point
	pSampleDelta *faults.Point
	pAppend      *faults.Point

	// Request tracing: the ID stream (every compute response gets an
	// ID), the sampled recent ring and the always-kept slow ring served
	// by /debug/traces, and the structured access log.
	ids       *trace.IDSource
	traces    *trace.Ring
	slowTrace *trace.Ring
	accessLog *accessLogger
	traceOn   bool

	// Sharded serving: the scatter-gather coordinator (nil unless
	// ShardWorkers/ShardPeers configured this server as a coordinator)
	// and the worker-side executor behind /internal/shard (always
	// mounted, so any server can serve as a worker).
	coord   *shard.Coordinator
	shardEx *shardExecutor

	// Stream bookkeeping for sliding windows: per-stream generation
	// append times (duration windows) and memoized window fingerprints.
	// nowFn is the clock duration windows read; tests pin it.
	streamMu sync.Mutex
	streams  map[string]*streamState
	nowFn    func() time.Time
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	staleBytes := int64(0)
	if cfg.StaleOK {
		staleBytes = cfg.CacheBytes
	}
	s := &Server{
		cfg:          cfg,
		reg:          NewRegistry(cfg.Parallelism),
		cache:        NewCache(cfg.CacheBytes, staleBytes),
		adm:          NewTenantAdmission(cfg.MaxInFlight, cfg.MaxQueue, cfg.Tenants),
		rec:          cfg.Rec,
		mux:          http.NewServeMux(),
		pEst:         cfg.Faults.Point("server/build/est"),
		pSample:      cfg.Faults.Point("server/build/sample"),
		pEstDelta:    cfg.Faults.Point("server/build/est_delta"),
		pSampleDelta: cfg.Faults.Point("server/build/sample_delta"),
		pAppend:      cfg.Faults.Point("server/append"),
		ids:          trace.NewIDSource(cfg.TraceSeed),
		traces:       trace.NewRing(cfg.TraceRing),
		slowTrace:    trace.NewRing(cfg.TraceRing),
		traceOn:      cfg.tracingEnabled(),
		streams:      make(map[string]*streamState),
		nowFn:        time.Now,
	}
	if cfg.AccessLog != nil {
		s.accessLog = &accessLogger{w: cfg.AccessLog}
	}
	if cfg.DiskDir != "" {
		// Best-effort: an unusable directory leaves the tier off rather
		// than failing the server (dbsserve validates the flag up front).
		if d, err := NewDiskTier(cfg.DiskDir, cfg.DiskBytes); err == nil {
			s.disk = d
		}
	}
	s.shardEx = &shardExecutor{s: s}
	if shards := s.buildShards(); len(shards) > 0 {
		s.coord = shard.NewCoordinator(shard.Config{
			Shards:   shards,
			Replicas: cfg.ShardReplicas,
			Hedge:    cfg.ShardHedge,
			Faults:   cfg.Faults,
			Rec:      s.rec,
		})
	}
	s.routes()
	return s
}

// buildShards assembles the coordinator's worker set: named HTTP clients
// for ShardPeers (sorted by name, so every coordinator over the same
// peer set derives the same ring), or ShardWorkers in-process workers
// sharing this server's executor. Empty when sharding is off.
func (s *Server) buildShards() []shard.Shard {
	if len(s.cfg.ShardPeers) > 0 {
		names := make([]string, 0, len(s.cfg.ShardPeers))
		for name := range s.cfg.ShardPeers {
			names = append(names, name)
		}
		sort.Strings(names)
		shards := make([]shard.Shard, len(names))
		for i, name := range names {
			shards[i] = shard.NewClient(name, s.cfg.ShardPeers[name], nil)
		}
		return shards
	}
	if s.cfg.ShardWorkers > 0 {
		shards := make([]shard.Shard, s.cfg.ShardWorkers)
		for i := range shards {
			shards[i] = shard.NewLocal(fmt.Sprintf("w%d", i), s.shardEx)
		}
		return shards
	}
	return nil
}

// Handler returns the full API: the /v1 endpoints, /healthz, and the
// observability surface (/metrics, /debug/pprof) on one mux.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the dataset registry, e.g. for pre-registering
// datasets from the command line before serving.
func (s *Server) Registry() *Registry { return s.reg }

// Recorder returns the server-level recorder (for tests and embedding).
func (s *Server) Recorder() *obs.Recorder { return s.rec }

// StartDraining begins a graceful drain: /healthz flips to "draining" and
// new compute requests are rejected with 503 while admitted ones finish.
// Pair it with http.Server.Shutdown, which waits for in-flight handlers.
func (s *Server) StartDraining() { s.adm.StartDraining() }

// LatencySummary is the /healthz per-route latency digest. The JSON
// keys predate the histogram backend (they were a ring digest) and are
// frozen: count, p50_ms, p99_ms. Quantiles are now log2-histogram
// interpolations — monotone in q, so p99 ≥ p50 — and the count is the
// exact process-life request count for the route, not a window.
type LatencySummary struct {
	Count int     `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P99ms float64 `json:"p99_ms"`
}

func (s *Server) latencySummaries() map[string]LatencySummary {
	return s.histSummaries(HistRequestSeconds, "route")
}

// shardLatencySummaries digests the coordinator's downstream fan-out
// wait per phase — the /healthz view that separates time spent waiting
// on shard workers from coordinator-local build time.
func (s *Server) shardLatencySummaries() map[string]LatencySummary {
	return s.histSummaries(HistShardSeconds, "stage")
}

// histSummaries digests every labeled series of one histogram family
// into the frozen count/p50/p99 shape, keyed by the label's value.
func (s *Server) histSummaries(name, labelKey string) map[string]LatencySummary {
	var out map[string]LatencySummary
	for _, h := range s.rec.Histograms() {
		if h.Name() != name || h.Count() == 0 {
			continue
		}
		key := ""
		for _, l := range h.Labels() {
			if l.Key == labelKey {
				key = l.Value
			}
		}
		if key == "" {
			continue
		}
		if out == nil {
			out = make(map[string]LatencySummary)
		}
		out[key] = LatencySummary{
			Count: int(h.Count()),
			P50ms: h.Quantile(0.50) * 1e3,
			P99ms: h.Quantile(0.99) * 1e3,
		}
	}
	return out
}

// observe records a finished request into the route's latency
// histogram and the server gauges. It runs for every outcome — success,
// pipeline failure, and shed — so 429/503/504 responses appear in the
// route's digest instead of vanishing from it.
func (s *Server) observe(route string, start time.Time) {
	s.rec.Histogram(HistRequestSeconds, obs.Label{Key: "route", Value: route}).
		Observe(time.Since(start).Seconds())
	s.syncGauges()
}

func (s *Server) syncGauges() {
	s.rec.Gauge(GaugeInFlight).Set(float64(s.adm.InFlight()))
	s.rec.Gauge(GaugeCacheBytes).Set(float64(s.cache.Stats().Bytes))
}

// syncCacheCounters mirrors the cache's internal tallies into the
// recorder so /metrics carries them; called after each cache interaction.
func (s *Server) syncCacheCounters() {
	st := s.cache.Stats()
	setCounter(s.rec.Counter(CtrCacheHit), st.Hits)
	setCounter(s.rec.Counter(CtrCacheMiss), st.Misses)
	setCounter(s.rec.Counter(CtrCacheEvict), st.Evictions)
	setCounter(s.rec.Counter(CtrCacheStale), st.StaleServed)
	if s.disk != nil {
		setCounter(s.rec.Counter(CtrCacheDisk), s.disk.hits.Load())
	}
	s.rec.Gauge(GaugeCacheBytes).Set(float64(st.Bytes))
}

// syncShedCounters mirrors the admission controller's shed tallies:
// total plus the queue-full / deadline-expired / preempted split.
func (s *Server) syncShedCounters() {
	setCounter(s.rec.Counter(CtrShed), s.adm.Shed())
	setCounter(s.rec.Counter(CtrShedFull), s.adm.ShedQueueFull())
	setCounter(s.rec.Counter(CtrShedExpired), s.adm.ShedExpired())
	setCounter(s.rec.Counter(CtrShedPreempted), s.adm.ShedPreempted())
}

// retryAfterHint derives a client back-off from the observed queue-wait
// distribution: the q-quantile of HistQueueSeconds, rounded up to whole
// seconds and clamped to [1s, 30s]. Until the histogram has samples the
// fallback applies (same clamp). 429s use the median — the queue is
// moving and a typical wait from now should find a slot; 503s use p99 —
// this client's deadline already lost to the tail, so it should stand
// back accordingly.
func (s *Server) retryAfterHint(q float64, fallbackSecs int64) string {
	secs := fallbackSecs
	if h := s.rec.Histogram(HistQueueSeconds); h.Count() > 0 {
		// Guard the quantile before trusting it: a cold or degenerate
		// histogram must fall back, never emit Retry-After: 0 or NaN
		// (clients parse the header as an integer; a malformed value
		// disables their back-off entirely).
		if v := h.Quantile(q); !math.IsNaN(v) && !math.IsInf(v, 0) {
			secs = int64(math.Ceil(v))
		}
	}
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return strconv.FormatInt(secs, 10)
}

// observeQueueWait records a queued request's slot wait into the
// aggregate (hint-driving) and per-tenant histogram families.
func (s *Server) observeQueueWait(tenant string, wait time.Duration) {
	secs := wait.Seconds()
	s.rec.Histogram(HistQueueSeconds).Observe(secs)
	s.rec.Histogram(HistTenantQueueSeconds, obs.Label{Key: "tenant", Value: tenant}).Observe(secs)
}

// setCounter raises c to total (counters are monotonic; the cache is the
// source of truth, the recorder the exposition).
func setCounter(c *obs.Counter, total int64) {
	if d := total - c.Value(); d > 0 {
		c.Add(d)
	}
}
