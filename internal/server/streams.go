package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/trace"
)

// streamState is the serving layer's per-stream bookkeeping: when each
// generation was appended (duration windows resolve against these
// watermarks) and the memoized window fingerprints. Fingerprints are
// content-addressed over the window's rows, so a (generation, start) pair
// computes its digest once — one O(window) pass — and every later request
// over the same window reuses it.
type streamState struct {
	mu       sync.Mutex
	genTimes map[uint64]time.Time
	fps      map[winKey]uint64
}

type winKey struct {
	gen   uint64
	start int
}

// stream returns name's stream state, creating it when create is set.
// A dataset has stream state iff it has been fed through the stream
// append endpoint; only such datasets get windows applied.
func (s *Server) stream(name string, create bool) *streamState {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	st := s.streams[name]
	if st == nil && create {
		st = &streamState{genTimes: make(map[uint64]time.Time), fps: make(map[winKey]uint64)}
		s.streams[name] = st
	}
	return st
}

// markAppend watermarks generation g of name with the current time. The
// plain dataset append endpoint calls it too (with create false), so a
// stream kept fresh through either endpoint ages correctly.
func (s *Server) markAppend(name string, g uint64, create bool) {
	st := s.stream(name, create)
	if st == nil {
		return
	}
	now := s.nowFn()
	st.mu.Lock()
	st.genTimes[g] = now
	st.mu.Unlock()
}

// applyWindow restricts h to the configured sliding window when h leases
// a stream dataset. The resolved window is a concrete [start, end) over
// the pinned generation; downstream code sees it through ViewAt and
// FingerprintAt, so scans, cache keys, and responses all cover exactly
// the window's rows. A window starting at 0 is the whole generation —
// the handle is left unwindowed and the (cheaper, prefix-memoized)
// generation fingerprint path applies.
func (s *Server) applyWindow(h *Handle) error {
	if h.Appendable() == nil {
		return nil
	}
	if s.cfg.WindowPoints <= 0 && s.cfg.WindowDur <= 0 {
		return nil
	}
	st := s.stream(h.Name(), false)
	if st == nil {
		return nil
	}
	g := h.Generation()
	end := h.GenLen(g)
	if end == 0 {
		return nil
	}
	start := 0
	if n := s.cfg.WindowPoints; n > 0 && end-n > start {
		start = end - n
	}
	if s.cfg.WindowDur > 0 {
		if ds := st.durStart(h, g, s.nowFn().Add(-s.cfg.WindowDur)); ds > start {
			start = ds
		}
	}
	if start <= 0 {
		return nil
	}
	fp := func() (uint64, error) { return st.fingerprint(h, g, start, end, s.reg.parallelism) }
	return h.ApplyWindow(start, end, fp)
}

// durStart resolves the duration window's start over generations 0..g:
// the first row of the oldest generation appended at or after the cutoff
// — generation-granular, and the newest generation is always kept even
// when stale. Generations with no watermark (appended before this server
// started, or generation 0 of a plain registration) count as stale.
func (st *streamState) durStart(h *Handle, g uint64, cutoff time.Time) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	for j := uint64(0); j <= g; j++ {
		if t, ok := st.genTimes[j]; ok && !t.Before(cutoff) {
			if j == 0 {
				return 0
			}
			return h.GenLen(j - 1)
		}
	}
	// Everything is stale: keep the newest generation only.
	if g == 0 {
		return 0
	}
	return h.GenLen(g - 1)
}

// fingerprint returns the content fingerprint of rows [start, end) of
// generation g, computing and memoizing it on first use. end is implied
// by (gen, start) — it is the generation's length — so the memo key
// omits it.
func (st *streamState) fingerprint(h *Handle, g uint64, start, end, parallelism int) (uint64, error) {
	key := winKey{gen: g, start: start}
	st.mu.Lock()
	if fp, ok := st.fps[key]; ok {
		st.mu.Unlock()
		return fp, nil
	}
	st.mu.Unlock()
	view, err := dataset.Window(h.Appendable(), start, end)
	if err != nil {
		return 0, err
	}
	fp, err := dataset.Fingerprint(view, parallelism)
	if err != nil {
		return 0, err
	}
	st.mu.Lock()
	st.fps[key] = fp
	st.mu.Unlock()
	return fp, nil
}

// streamAppendResponse extends the append response with the resolved
// window, so producers can observe eviction advancing.
type streamAppendResponse struct {
	Name        string `json:"name"`
	Generation  uint64 `json:"generation"`
	Points      int    `json:"points"`
	Added       int    `json:"added"`
	WindowStart int    `json:"window_start"`
	WindowLen   int    `json:"window_len"`
}

// handleStreamAppend is POST /v1/streams/{name}/append: append a batch to
// a stream, creating the stream on first use. Bodies use the same formats
// as dataset appends (JSON, CSV, DBS1). Each batch is one generation;
// the response reports the window the server will compute over next.
func (s *Server) handleStreamAppend(ctx context.Context, rec *obs.Recorder, w http.ResponseWriter, r *http.Request) {
	span := rec.StartSpan("server/stream_append")
	defer span.End()
	name := r.PathValue("name")
	pts, err := decodeAppendBody(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "parsing append body: %v", err)
		return
	}
	if len(pts) == 0 {
		s.fail(w, http.StatusBadRequest, "empty append")
		return
	}

	h, err := s.acquireTraced(ctx, name)
	if errors.Is(err, ErrNotFound) {
		// First batch: register it as generation 0 of a fresh stream.
		ds, derr := dataset.NewInMemory(pts)
		if derr != nil {
			s.fail(w, http.StatusBadRequest, "invalid points: %v", derr)
			return
		}
		if rerr := s.reg.RegisterDataset(name, ds); rerr != nil && !errors.Is(rerr, ErrExists) {
			s.registerFail(w, rerr)
			return
		} else if rerr == nil {
			s.markAppend(name, 0, true)
			rec.Counter(obs.CtrAppends).Inc()
			rec.Counter(obs.CtrAppendPoints).Add(int64(len(pts)))
			span.AddPoints(int64(len(pts)))
			s.writeStreamAppendResponse(w, name, 0, len(pts), len(pts))
			return
		}
		// Lost a concurrent create race: fall through to a plain append.
		h, err = s.acquireTraced(ctx, name)
	}
	if err != nil {
		s.acquireFail(w, err)
		return
	}
	defer h.Release()
	app := h.Appendable()
	if app == nil {
		s.fail(w, http.StatusConflict, "dataset %q is not appendable", name)
		return
	}
	aerr := s.runStage(ctx, rec, "server/append", faults.SiteHash(name), func(sctx context.Context) error {
		if ferr := s.pAppend.Check(sctx); ferr != nil {
			return ferr
		}
		return app.Append(pts...)
	})
	if aerr != nil {
		s.pipelineFail(w, aerr)
		return
	}
	gen := app.Generation()
	s.markAppend(name, gen, true)
	rec.Counter(obs.CtrAppends).Inc()
	rec.Counter(obs.CtrAppendPoints).Add(int64(len(pts)))
	span.AddPoints(int64(len(pts)))
	s.writeStreamAppendResponse(w, name, gen, app.GenLen(gen), len(pts))
}

// writeStreamAppendResponse resolves the window a fresh request would see
// and writes the stream append response.
func (s *Server) writeStreamAppendResponse(w http.ResponseWriter, name string, gen uint64, total, added int) {
	resp := streamAppendResponse{
		Name: name, Generation: gen, Points: total, Added: added,
		WindowStart: 0, WindowLen: total,
	}
	if h, err := s.reg.Acquire(name); err == nil {
		if werr := s.applyWindow(h); werr == nil {
			start, end := h.WindowRange()
			resp.WindowStart, resp.WindowLen = start, end-start
		}
		h.Release()
	}
	writeJSON(w, http.StatusOK, resp)
}

// traceWindow annotates the request trace with the resolved window.
func traceWindow(ctx context.Context, h *Handle) {
	if tr := trace.FromContext(ctx); tr != nil && h.Windowed() {
		start, end := h.WindowRange()
		t := tr.Now()
		tr.Add("window/apply", t, t, 0, fmt.Sprintf("window=[%d,%d)", start, end))
	}
}
