package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/obs"
)

// newTestServer starts an httptest server with dataset "pts" registered
// (n in-memory points, 2-d). The returned InMemory exposes Passes() so
// tests can assert exactly how many dataset scans a request sequence ran.
func newTestServer(t *testing.T, cfg Config, n int) (*Server, *httptest.Server, *dataset.InMemory) {
	t.Helper()
	srv := New(cfg)
	mem := dataset.MustInMemory(testPoints(n, 2, 11))
	if err := srv.Registry().RegisterDataset("pts", mem); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, mem
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

var sampleBody = map[string]any{
	"dataset": "pts", "alpha": 1.0, "size": 200, "kernels": 64, "seed": 42,
}

func TestSampleCacheHitSkipsAllPasses(t *testing.T) {
	srv, ts, mem := newTestServer(t, Config{Parallelism: 2}, 4000)

	resp1, body1 := postJSON(t, ts.URL+"/v1/sample", sampleBody)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first: %d: %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-DBS-Cache"); got != "miss" {
		t.Errorf("first X-DBS-Cache = %q, want miss", got)
	}
	passes := mem.Passes()
	builds := srv.rec.Counter(CtrKDEBuilds).Value()
	dataPasses := srv.rec.Counter(obs.CtrDataPasses).Value()
	if builds != 1 {
		t.Errorf("kde builds after first request = %d, want 1", builds)
	}

	for i := 0; i < 3; i++ {
		resp2, body2 := postJSON(t, ts.URL+"/v1/sample", sampleBody)
		if resp2.StatusCode != http.StatusOK {
			t.Fatalf("repeat %d: %d: %s", i, resp2.StatusCode, body2)
		}
		if got := resp2.Header.Get("X-DBS-Cache"); got != "hit" {
			t.Errorf("repeat %d X-DBS-Cache = %q, want hit", i, got)
		}
		if !bytes.Equal(body1, body2) {
			t.Errorf("repeat %d body differs from first (cache must be invisible in the bytes)", i)
		}
	}
	// The whole point of the artifact cache: repeats run zero dataset
	// passes and zero estimator builds — every counter stays flat.
	if got := mem.Passes(); got != passes {
		t.Errorf("dataset passes grew %d -> %d across cache hits", passes, got)
	}
	if got := srv.rec.Counter(CtrKDEBuilds).Value(); got != builds {
		t.Errorf("kde builds grew %d -> %d across cache hits", builds, got)
	}
	if got := srv.rec.Counter(obs.CtrDataPasses).Value(); got != dataPasses {
		t.Errorf("recorded data passes grew %d -> %d across cache hits", dataPasses, got)
	}
	if st := srv.cache.Stats(); st.Hits < 3 {
		t.Errorf("cache hits = %d, want >= 3", st.Hits)
	}
}

func TestSampleBitIdenticalAcrossWorkerCountsAndCacheState(t *testing.T) {
	path := testFile(t, 3000, 3)
	bodies := map[int][]byte{}
	for _, par := range []int{1, 4} {
		srv := New(Config{Parallelism: par})
		if err := srv.Registry().RegisterPath("pts", path); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		resp, body := postJSON(t, ts.URL+"/v1/sample", sampleBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("p=%d: %d: %s", par, resp.StatusCode, body)
		}
		// The cache-hit response must be the same bytes as the cold one.
		_, repeat := postJSON(t, ts.URL+"/v1/sample", sampleBody)
		if !bytes.Equal(body, repeat) {
			t.Errorf("p=%d: hit and miss bodies differ", par)
		}
		bodies[par] = body
		ts.Close()
	}
	if !bytes.Equal(bodies[1], bodies[4]) {
		t.Error("serial and parallel servers returned different bytes for identical (dataset, params, seed)")
	}
}

func TestSaturatedReturns429WithinDeadline(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: -1, Deadline: 5 * time.Second}, 100)
	// Occupy the only slot so the next request finds server saturated.
	release, err := srv.adm.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/sample", sampleBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429: %s", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("shed took %v; a saturated server must answer promptly", elapsed)
	}
	if srv.adm.Shed() == 0 {
		t.Error("shed counter not incremented")
	}
	if srv.adm.ShedQueueFull() != 1 || srv.adm.ShedExpired() != 0 {
		t.Errorf("shed split = (full %d, expired %d), want (1, 0)",
			srv.adm.ShedQueueFull(), srv.adm.ShedExpired())
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Error("429 carries no Retry-After header")
	}
	if !strings.Contains(string(body), "saturated") {
		t.Errorf("body %q does not mention saturation", body)
	}
}

// TestQueuedRequestTimesOutAt503 pins the shed-vs-deadline split at the
// HTTP layer: a deadline that expires while queued is an overload signal
// (503 + Retry-After), not a 429, and lands in the expired shed counter.
func TestQueuedRequestTimesOutAt503(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 4, Deadline: 50 * time.Millisecond}, 100)
	release, err := srv.adm.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/sample", sampleBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Error("queued-expiry 503 carries no Retry-After header")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("queued shed took %v, want about the 50ms deadline", elapsed)
	}
	if srv.adm.ShedExpired() != 1 || srv.adm.ShedQueueFull() != 0 {
		t.Errorf("shed split = (full %d, expired %d), want (0, 1)",
			srv.adm.ShedQueueFull(), srv.adm.ShedExpired())
	}
}

func TestDeadlineExpiryReturns504(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Deadline: time.Nanosecond}, 20000)
	resp, body := postJSON(t, ts.URL+"/v1/sample", sampleBody)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", resp.StatusCode, body)
	}
}

func TestHealthzAndDraining(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{}, 500)
	// Warm one route so the health report carries a latency digest.
	if resp, body := postJSON(t, ts.URL+"/v1/sample", sampleBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("sample: %d: %s", resp.StatusCode, body)
	}
	var health healthResponse
	if resp := getJSON(t, ts.URL+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	if health.Status != "ok" || health.Datasets != 1 {
		t.Errorf("health = %+v", health)
	}
	lat, ok := health.Latency["/v1/sample"]
	if !ok || lat.Count != 1 || lat.P99ms < lat.P50ms {
		t.Errorf("latency digest = %+v", health.Latency)
	}

	srv.StartDraining()
	if resp := getJSON(t, ts.URL+"/healthz", &health); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz status = %d, want 503", resp.StatusCode)
	}
	if health.Status != "draining" {
		t.Errorf("health.Status = %q, want draining", health.Status)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/sample", sampleBody); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining sample status = %d, want 503", resp.StatusCode)
	}
}

func TestDatasetRegistrationLifecycle(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, 100)

	// Upload a CSV dataset.
	csv := "1,2\n3,4\n5,6\n7,8\n"
	resp, err := http.Post(ts.URL+"/v1/datasets?name=csvset", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("csv upload: %d", resp.StatusCode)
	}

	// Upload the binary codec stream.
	var buf bytes.Buffer
	if err := dataset.WriteBinary(&buf, dataset.MustInMemory(testPoints(50, 2, 5))); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/datasets?name=binset", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("binary upload: %d", resp.StatusCode)
	}

	// Register by path.
	resp, body := postJSON(t, ts.URL+"/v1/datasets", registerRequest{Name: "fileset", Path: testFile(t, 60, 2)})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("path registration: %d: %s", resp.StatusCode, body)
	}
	// Duplicate name conflicts.
	if resp, _ := postJSON(t, ts.URL+"/v1/datasets", registerRequest{Name: "fileset", Path: testFile(t, 60, 2)}); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate registration status = %d, want 409", resp.StatusCode)
	}

	var list struct {
		Datasets []DatasetInfo `json:"datasets"`
	}
	getJSON(t, ts.URL+"/v1/datasets", &list)
	if len(list.Datasets) != 4 {
		t.Fatalf("listed %d datasets, want 4: %+v", len(list.Datasets), list.Datasets)
	}

	// A registered upload serves samples.
	body4 := map[string]any{"dataset": "binset", "alpha": 0.5, "size": 10, "kernels": 16, "seed": 1}
	if resp, data := postJSON(t, ts.URL+"/v1/sample", body4); resp.StatusCode != http.StatusOK {
		t.Fatalf("sample from upload: %d: %s", resp.StatusCode, data)
	}

	// Delete and confirm 404 afterwards.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/csvset", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Errorf("delete: %d, want 204", dresp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/sample", map[string]any{"dataset": "csvset", "alpha": 1.0, "size": 5}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("sample from deleted dataset: %d, want 404", resp.StatusCode)
	}
}

func TestClusterSharesSampleArtifact(t *testing.T) {
	_, ts, mem := newTestServer(t, Config{Parallelism: 2}, 2000)
	if resp, body := postJSON(t, ts.URL+"/v1/sample", sampleBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("sample: %d: %s", resp.StatusCode, body)
	}
	passes := mem.Passes()

	cluster := map[string]any{
		"dataset": "pts", "alpha": 1.0, "size": 200, "kernels": 64, "seed": 42, "k": 4,
	}
	resp, body1 := postJSON(t, ts.URL+"/v1/cluster", cluster)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster: %d: %s", resp.StatusCode, body1)
	}
	// Same (dataset, sampling params, seed): the cluster request reuses
	// the cached sample and runs zero additional dataset passes.
	if got := resp.Header.Get("X-DBS-Cache"); got != "hit" {
		t.Errorf("cluster X-DBS-Cache = %q, want hit (sample artifact shared)", got)
	}
	if got := mem.Passes(); got != passes {
		t.Errorf("cluster over cached sample grew passes %d -> %d", passes, got)
	}
	var cr clusterResponse
	if err := json.Unmarshal(body1, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.K != 4 || len(cr.Clusters) != 4 || cr.SampleSize == 0 {
		t.Errorf("cluster response: k=%d clusters=%d sample=%d", cr.K, len(cr.Clusters), cr.SampleSize)
	}
	// Deterministic repeat.
	if _, body2 := postJSON(t, ts.URL+"/v1/cluster", cluster); !bytes.Equal(body1, body2) {
		t.Error("repeated cluster request returned different bytes")
	}
}

func TestOutlierEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Parallelism: 2}, 1500)
	req := map[string]any{
		"dataset": "pts", "radius": 0.05, "p": 2, "kernels": 64, "seed": 42, "method": "estimate",
	}
	resp, body1 := postJSON(t, ts.URL+"/v1/outliers", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: %d: %s", resp.StatusCode, body1)
	}
	// The estimator was built by this request (miss), and is reused by
	// the next one (hit) — approx shares it with estimate.
	if got := resp.Header.Get("X-DBS-Cache"); got != "miss" {
		t.Errorf("first outliers X-DBS-Cache = %q, want miss", got)
	}
	req["method"] = "approx"
	resp, body2 := postJSON(t, ts.URL+"/v1/outliers", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("approx: %d: %s", resp.StatusCode, body2)
	}
	if got := resp.Header.Get("X-DBS-Cache"); got != "hit" {
		t.Errorf("approx X-DBS-Cache = %q, want hit (estimator shared)", got)
	}
	var or outlierResponse
	if err := json.Unmarshal(body2, &or); err != nil {
		t.Fatal(err)
	}
	if or.Method != "approx" || or.DataPasses == 0 {
		t.Errorf("outlier response: %+v", or)
	}
	// Deterministic repeat.
	if _, body3 := postJSON(t, ts.URL+"/v1/outliers", req); !bytes.Equal(body2, body3) {
		t.Error("repeated outlier request returned different bytes")
	}
}

func TestBadRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, 100)
	cases := []struct {
		name string
		url  string
		body map[string]any
		want int
	}{
		{"unknown dataset", "/v1/sample", map[string]any{"dataset": "nope", "alpha": 1.0, "size": 5}, http.StatusNotFound},
		{"missing dataset", "/v1/sample", map[string]any{"alpha": 1.0, "size": 5}, http.StatusBadRequest},
		{"bad size", "/v1/sample", map[string]any{"dataset": "pts", "alpha": 1.0, "size": 0}, http.StatusBadRequest},
		{"bad kernel", "/v1/sample", map[string]any{"dataset": "pts", "alpha": 1.0, "size": 5, "kernel": "nope"}, http.StatusBadRequest},
		{"unknown field", "/v1/sample", map[string]any{"dataset": "pts", "alpha": 1.0, "size": 5, "bogus": 1}, http.StatusBadRequest},
		{"bad k", "/v1/cluster", map[string]any{"dataset": "pts", "alpha": 1.0, "size": 5, "k": 0}, http.StatusBadRequest},
		{"bad method", "/v1/outliers", map[string]any{"dataset": "pts", "radius": 0.1, "p": 1, "method": "nope"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if resp, body := postJSON(t, ts.URL+tc.url, tc.body); resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d: %s", tc.name, resp.StatusCode, tc.want, body)
		}
	}
}

func TestMetricsExposesServerCounters(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, 300)
	if resp, body := postJSON(t, ts.URL+"/v1/sample", sampleBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("sample: %d: %s", resp.StatusCode, body)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{CtrRequests, CtrCacheMiss, CtrKDEBuilds, obs.CtrDataPasses, GaugeInFlight} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestConcurrentIdenticalRequests exercises the singleflight, the shared
// estimator, the atomic pass counters, and the recorder rollup under the
// race detector: all responses must be the same bytes.
func TestConcurrentIdenticalRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Parallelism: 2, MaxInFlight: 8, MaxQueue: 32}, 3000)
	const n = 12
	bodies := make([][]byte, n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			raw, _ := json.Marshal(sampleBody)
			resp, err := http.Post(ts.URL+"/v1/sample", "application/json", bytes.NewReader(raw))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			bodies[i], err = io.ReadAll(resp.Body)
			errs <- err
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
}
