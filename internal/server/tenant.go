package server

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// DefaultTenant is the accounting bucket for requests that carry no
// tenant identity (no X-DBS-Tenant header). A single-tenant deployment
// therefore behaves exactly like the pre-tenant server: one queue, one
// set of quotas.
const DefaultTenant = "default"

// Tenant priorities. Under overload the controller sheds strictly by
// priority: a queued low-priority request is preempted (429) to make
// room for an arriving normal- or high-priority one, never the other
// way around. Within a priority class, weighted-fair queueing decides.
const (
	PriorityLow    = -1
	PriorityNormal = 0
	PriorityHigh   = 1
)

// TenantPolicy is one tenant's admission contract: its weighted-fair
// share of the slot pool, optional hard quotas, and its shed priority.
// The zero value is a weight-1, normal-priority tenant bounded only by
// the global limits.
type TenantPolicy struct {
	// Weight is the tenant's WFQ share (default 1). A weight-4 tenant
	// is granted four slots for every one a weight-1 tenant gets while
	// both have work queued; an idle tenant accrues no credit.
	Weight float64
	// MaxInFlight caps the tenant's concurrently executing requests
	// (0 = bounded only by the global in-flight limit). A tenant at its
	// cap queues even while global slots are free — the quota isolation
	// the fairness tests pin.
	MaxInFlight int
	// MaxQueue caps the tenant's waiting requests (0 = bounded only by
	// the global queue limit). Beyond it the tenant's own arrivals are
	// shed with 429 without touching anyone else's queue space.
	MaxQueue int
	// Priority orders overload shedding: PriorityLow tenants are
	// preempted first when the global queue fills. Default
	// PriorityNormal.
	Priority int
}

func (p TenantPolicy) withDefaults() TenantPolicy {
	if p.Weight <= 0 {
		p.Weight = 1
	}
	if p.MaxInFlight < 0 {
		p.MaxInFlight = 0
	}
	if p.MaxQueue < 0 {
		p.MaxQueue = 0
	}
	return p
}

func priorityName(p int) string {
	switch {
	case p < 0:
		return "low"
	case p > 0:
		return "high"
	default:
		return "normal"
	}
}

// ParseTenantPolicies reads the -tenants flag grammar: a semicolon-
// separated list of name:key=value,... entries, where name "*" sets the
// policy for tenants not named explicitly. Keys: weight (float),
// inflight (int), queue (int), priority (low|normal|high). A bare
// name:weight shorthand ("gold:4") is accepted.
//
//	gold:weight=4,priority=high;bronze:weight=1,priority=low;*:weight=1
func ParseTenantPolicies(spec string) (map[string]TenantPolicy, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	out := make(map[string]TenantPolicy)
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rest, ok := strings.Cut(entry, ":")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("server: -tenants entry %q is not name:settings", entry)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("server: -tenants: duplicate tenant %q", name)
		}
		var pol TenantPolicy
		for _, kv := range strings.Split(rest, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, hasEq := strings.Cut(kv, "=")
			if !hasEq {
				// Bare-value shorthand: "gold:4" means weight=4.
				w, err := strconv.ParseFloat(kv, 64)
				if err != nil || w <= 0 {
					return nil, fmt.Errorf("server: -tenants %s: %q is neither key=value nor a positive weight", name, kv)
				}
				pol.Weight = w
				continue
			}
			switch key {
			case "weight":
				w, err := strconv.ParseFloat(val, 64)
				if err != nil || w <= 0 {
					return nil, fmt.Errorf("server: -tenants %s: weight %q must be a positive number", name, val)
				}
				pol.Weight = w
			case "inflight":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("server: -tenants %s: inflight %q must be a non-negative integer", name, val)
				}
				pol.MaxInFlight = n
			case "queue":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("server: -tenants %s: queue %q must be a non-negative integer", name, val)
				}
				pol.MaxQueue = n
			case "priority":
				switch val {
				case "low":
					pol.Priority = PriorityLow
				case "normal":
					pol.Priority = PriorityNormal
				case "high":
					pol.Priority = PriorityHigh
				default:
					return nil, fmt.Errorf("server: -tenants %s: priority %q (want low|normal|high)", name, val)
				}
			default:
				return nil, fmt.Errorf("server: -tenants %s: unknown key %q", name, key)
			}
		}
		out[name] = pol
	}
	return out, nil
}

// TenantStats is one tenant's admission accounting snapshot, reported
// in /healthz and consumed by the dbsload SLO report.
type TenantStats struct {
	Tenant        string  `json:"tenant"`
	Weight        float64 `json:"weight"`
	Priority      string  `json:"priority"`
	InFlight      int     `json:"in_flight"`
	Queued        int     `json:"queued"`
	Admitted      int64   `json:"admitted"`
	ShedQueueFull int64   `json:"shed_queue_full,omitempty"`
	ShedExpired   int64   `json:"shed_expired,omitempty"`
	ShedPreempted int64   `json:"shed_preempted,omitempty"`
}

func sortTenantStats(ts []TenantStats) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Tenant < ts[j].Tenant })
}
