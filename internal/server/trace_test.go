package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/trace"
)

// TestSampleBytesIdenticalAcrossTracingModes pins the determinism
// contract against the tracing subsystem: the /v1/sample body is a pure
// function of (dataset, params, seed), so turning tracing off, sampling
// half of it, or retaining every trace must not move a single byte, at
// serial and parallel worker counts alike.
func TestSampleBytesIdenticalAcrossTracingModes(t *testing.T) {
	configs := []struct {
		name string
		cfg  Config
	}{
		{"disabled", Config{}},
		{"sampled", Config{TraceSample: 0.5, TraceSeed: 1}},
		{"full", Config{TraceSample: 1, TraceSeed: 1, SlowThreshold: time.Nanosecond}},
	}
	var want []byte
	for _, par := range []int{1, 8} {
		for _, c := range configs {
			cfg := c.cfg
			cfg.Parallelism = par
			_, ts, _ := newTestServer(t, cfg, 1500)
			resp, body := postJSON(t, ts.URL+"/v1/sample", sampleBody)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("p=%d %s: %d: %s", par, c.name, resp.StatusCode, body)
			}
			if resp.Header.Get(TraceHeader) == "" {
				t.Errorf("p=%d %s: response missing %s header", par, c.name, TraceHeader)
			}
			if want == nil {
				want = body
			} else if !bytes.Equal(want, body) {
				t.Errorf("p=%d %s: body differs from baseline", par, c.name)
			}
		}
	}
}

// getTraces fetches /debug/traces and decodes it.
func getTraces(t *testing.T, url string) tracesResponse {
	t.Helper()
	var tr tracesResponse
	if resp := getJSON(t, url+"/debug/traces", &tr); resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces: %d", resp.StatusCode)
	}
	return tr
}

// eventPaths collects path -> occurrence count from a snapshot.
func eventPaths(snap trace.Snapshot) map[string]int {
	m := make(map[string]int)
	for _, e := range snap.Events {
		m[e.Path]++
	}
	return m
}

// TestDebugTracesCompleteSpanTree drives one cold /v1/sample with full
// retention and asserts its trace covers the whole serving path:
// admission wait, registry acquire, cache probes, both build stages,
// the draw, and the dataset scans — and that the span tree nests the
// build stages under a server/build container with zero orphans.
func TestDebugTracesCompleteSpanTree(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{TraceSample: 1, TraceSeed: 42}, 1500)
	if resp, body := postJSON(t, ts.URL+"/v1/sample", sampleBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("sample: %d: %s", resp.StatusCode, body)
	}
	tr := getTraces(t, ts.URL)
	if !tr.Enabled || tr.Sample != 1 {
		t.Fatalf("traces response header = %+v", tr)
	}
	if len(tr.Recent) != 1 {
		t.Fatalf("recent traces = %d, want 1", len(tr.Recent))
	}
	snap := tr.Recent[0]
	if snap.Route != "/v1/sample" || snap.Status != http.StatusOK || snap.Cache != "miss" {
		t.Fatalf("snapshot header = route=%q status=%d cache=%q", snap.Route, snap.Status, snap.Cache)
	}
	if snap.Orphans != 0 {
		t.Fatalf("completed trace has %d orphan spans", snap.Orphans)
	}
	paths := eventPaths(snap)
	for _, want := range []string{
		"admission/wait", "registry/acquire", "cache/est", "cache/sample",
		"server/build/est", "server/build/sample", "draw", "kde/build",
	} {
		if paths[want] == 0 {
			t.Errorf("trace missing %q event; got %v", want, paths)
		}
	}
	if paths["scan"] == 0 {
		t.Errorf("cold request recorded no dataset scan events; got %v", paths)
	}
	// The rendered tree must place the build stages under server/build.
	var build []trace.SpanJSON
	var find func(spans []trace.SpanJSON)
	find = func(spans []trace.SpanJSON) {
		for _, sp := range spans {
			if sp.Path == "server/build" {
				build = sp.Children
			}
			find(sp.Children)
		}
	}
	find(snap.Spans)
	got := map[string]bool{}
	for _, sp := range build {
		got[sp.Path] = true
	}
	if !got["server/build/est"] || !got["server/build/sample"] {
		t.Errorf("server/build children = %v, want est and sample stages", got)
	}
}

// TestCacheHitTraceHasNoScans repeats a request and asserts the hit's
// trace shows the cache outcome and zero dataset scans or build stages.
func TestCacheHitTraceHasNoScans(t *testing.T) {
	_, ts, mem := newTestServer(t, Config{TraceSample: 1, TraceSeed: 7}, 1500)
	for i := 0; i < 2; i++ {
		if resp, body := postJSON(t, ts.URL+"/v1/sample", sampleBody); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d: %s", i, resp.StatusCode, body)
		}
	}
	passes := mem.Passes()
	tr := getTraces(t, ts.URL)
	if len(tr.Recent) != 2 {
		t.Fatalf("recent traces = %d, want 2", len(tr.Recent))
	}
	hit := tr.Recent[0] // newest first
	if hit.Cache != "hit" {
		t.Fatalf("second request cache = %q, want hit", hit.Cache)
	}
	paths := eventPaths(hit)
	if paths["scan"] != 0 || paths["server/build/est"] != 0 || paths["server/build/sample"] != 0 {
		t.Errorf("cache hit ran pipeline work: %v", paths)
	}
	if paths["cache/sample"] == 0 {
		t.Errorf("cache hit trace missing cache/sample event: %v", paths)
	}
	// And the hit really did not touch the dataset.
	if resp, body := postJSON(t, ts.URL+"/v1/sample", sampleBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("third request: %d: %s", resp.StatusCode, body)
	}
	if mem.Passes() != passes {
		t.Errorf("cache hit scanned the dataset (%d -> %d passes)", passes, mem.Passes())
	}
}

// TestErrorResponsesCarryTraceAndLandInHistogram pins the satellite
// regression: shed (429), queue-expired (503), and deadline (504)
// responses all carry X-DBS-Trace and are observed into the per-route
// latency histogram that /healthz summarizes.
func TestErrorResponsesCarryTraceAndLandInHistogram(t *testing.T) {
	t.Run("shed429", func(t *testing.T) {
		srv, ts, _ := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: -1, Deadline: 5 * time.Second, TraceSample: 1, TraceSeed: 3}, 100)
		release, err := srv.adm.Enter(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		defer release()
		resp, _ := postJSON(t, ts.URL+"/v1/sample", sampleBody)
		assertErrorObserved(t, srv, ts.URL, resp, http.StatusTooManyRequests)
	})
	t.Run("queued503", func(t *testing.T) {
		srv, ts, _ := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 4, Deadline: 50 * time.Millisecond, TraceSample: 1, TraceSeed: 3}, 100)
		release, err := srv.adm.Enter(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		defer release()
		resp, _ := postJSON(t, ts.URL+"/v1/sample", sampleBody)
		assertErrorObserved(t, srv, ts.URL, resp, http.StatusServiceUnavailable)
	})
	t.Run("deadline504", func(t *testing.T) {
		srv, ts, _ := newTestServer(t, Config{Deadline: time.Nanosecond, TraceSample: 1, TraceSeed: 3}, 20000)
		resp, _ := postJSON(t, ts.URL+"/v1/sample", sampleBody)
		assertErrorObserved(t, srv, ts.URL, resp, http.StatusGatewayTimeout)
	})
}

func assertErrorObserved(t *testing.T, srv *Server, url string, resp *http.Response, wantStatus int) {
	t.Helper()
	if resp.StatusCode != wantStatus {
		t.Fatalf("status = %d, want %d", resp.StatusCode, wantStatus)
	}
	id := resp.Header.Get(TraceHeader)
	if id == "" {
		t.Errorf("%d response missing %s header", wantStatus, TraceHeader)
	}
	lat := srv.latencySummaries()
	if lat["/v1/sample"].Count != 1 {
		t.Errorf("route histogram after %d = %+v, want count 1", wantStatus, lat["/v1/sample"])
	}
	// The error's trace is retained (sample rate 1) with its status.
	tr := getTraces(t, url)
	found := false
	for _, snap := range tr.Recent {
		if snap.ID == id {
			found = true
			if snap.Status != wantStatus {
				t.Errorf("trace status = %d, want %d", snap.Status, wantStatus)
			}
		}
	}
	if !found {
		t.Errorf("trace %q for the %d response not retained", id, wantStatus)
	}
}

// TestTraceSeedDeterministicIDs pins -trace-seed: two servers seeded
// alike hand out identical ID streams; an unseeded server does not
// collide with them on its first ID.
func TestTraceSeedDeterministicIDs(t *testing.T) {
	ids := make([]string, 2)
	for i := range ids {
		_, ts, _ := newTestServer(t, Config{TraceSeed: 99}, 100)
		resp, body := postJSON(t, ts.URL+"/v1/sample", sampleBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sample: %d: %s", resp.StatusCode, body)
		}
		ids[i] = resp.Header.Get(TraceHeader)
	}
	if ids[0] == "" || ids[0] != ids[1] {
		t.Fatalf("seeded ID streams diverged: %q vs %q", ids[0], ids[1])
	}
}

// TestAccessLogLine checks the structured access log: one JSON line per
// request carrying the trace ID, route, status, cache outcome, queue
// wait, and a per-stage breakdown. The logger finishes the line before
// the response returns, so reading the buffer after postJSON is ordered.
func TestAccessLogLine(t *testing.T) {
	var buf bytes.Buffer
	srv := New(Config{TraceSample: 1, TraceSeed: 5, AccessLog: &buf})
	if err := srv.Registry().RegisterDataset("pts", dataset.MustInMemory(testPoints(1500, 2, 11))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/sample", sampleBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sample: %d: %s", resp.StatusCode, body)
	}
	line := bytes.TrimSpace(buf.Bytes())
	if n := bytes.Count(line, []byte("\n")); n != 0 {
		t.Fatalf("access log has %d lines, want exactly 1: %s", n+1, line)
	}
	var rec struct {
		Time    string             `json:"time"`
		TraceID string             `json:"trace_id"`
		Route   string             `json:"route"`
		Status  int                `json:"status"`
		DurMs   float64            `json:"dur_ms"`
		QueueMs float64            `json:"queue_ms"`
		Cache   string             `json:"cache"`
		Bytes   int64              `json:"bytes"`
		Stages  map[string]float64 `json:"stages_ms"`
	}
	if err := json.Unmarshal(line, &rec); err != nil {
		t.Fatalf("access log line %q: %v", line, err)
	}
	if rec.TraceID != resp.Header.Get(TraceHeader) {
		t.Errorf("logged trace_id %q != header %q", rec.TraceID, resp.Header.Get(TraceHeader))
	}
	if rec.Route != "/v1/sample" || rec.Status != http.StatusOK || rec.Cache != "miss" {
		t.Errorf("logged line = %+v", rec)
	}
	if rec.DurMs <= 0 || rec.QueueMs < 0 {
		t.Errorf("durations = dur %v queue %v", rec.DurMs, rec.QueueMs)
	}
	if rec.Bytes != int64(len(body)) {
		t.Errorf("logged bytes = %d, want %d", rec.Bytes, len(body))
	}
	if rec.Stages["server/build/sample"] <= 0 {
		t.Errorf("stage breakdown missing build stage: %v", rec.Stages)
	}
	if _, err := time.Parse(time.RFC3339Nano, rec.Time); err != nil {
		t.Errorf("timestamp %q: %v", rec.Time, err)
	}
}

// TestLatencySummaryJSONBackCompat freezes the /healthz digest schema:
// the same three keys PR 2 shipped, whatever backs them now.
func TestLatencySummaryJSONBackCompat(t *testing.T) {
	b, err := json.Marshal(LatencySummary{Count: 3, P50ms: 1.5, P99ms: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"count", "p50_ms", "p99_ms"} {
		if _, ok := m[k]; !ok {
			t.Errorf("LatencySummary JSON missing key %q: %s", k, b)
		}
	}
	if len(m) != 3 {
		t.Errorf("LatencySummary JSON gained keys: %s", b)
	}
}
