package server

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrSaturated is returned when the in-flight limit and the wait queue are
// both full. Handlers map it to 429 Too Many Requests — the load-shedding
// contract: a saturated server answers immediately rather than queueing
// unboundedly.
var ErrSaturated = errors.New("server: saturated")

// ErrQueueExpired is returned when a queued request's deadline expires
// before a slot frees. It is distinct from ErrSaturated so clients can
// tell "the queue was full, retry soon" (429) from "the server is too
// slow for your deadline, back off" (503 + Retry-After). The error wraps
// the context cause.
var ErrQueueExpired = errors.New("server: queued request expired")

// ErrPreempted is returned to a queued low-priority request whose queue
// space was reclaimed for an arriving higher-priority one. Handlers map
// it to 429: the request was shed by policy, not by a deadline, and may
// be retried (or served degraded).
var ErrPreempted = errors.New("server: preempted by a higher-priority tenant")

// ErrDraining is returned once shutdown has begun; handlers map it to 503
// so load balancers stop routing here while in-flight requests finish.
var ErrDraining = errors.New("server: draining")

// Admission bounds the compute endpoints with per-tenant weighted-fair
// queueing: at most maxInFlight requests execute the pipeline
// concurrently, at most maxQueue more wait for a slot (bounded by their
// own deadlines), and everything beyond that is shed. The in-flight
// bound is what keeps Parallelism-wide scans from oversubscribing the
// machine: total workers ≈ maxInFlight × per-request parallelism.
//
// Every request is tagged with a start-time-fair virtual finish time
// (self-clocked fair queueing): tag = max(vtime, tenant's last tag) +
// 1/weight. A freed slot goes to the eligible queued request with the
// smallest tag, so backlogged tenants share slots in proportion to
// their weights while an idle tenant accrues no credit. Tags are fixed
// at arrival and strictly increase per tenant, so a queued request can
// only ever be overtaken by a bounded number of later arrivals (at most
// its lead in virtual time × the other tenant's weight) — the
// starvation-freedom property the regression tests pin. With a single
// tenant the schedule degenerates to exact FIFO handoff: a freed slot
// goes to the head of the wait queue, and a new arrival is never
// admitted while anyone eligible is queued.
//
// Per-tenant quotas layer on top: a tenant at its MaxInFlight cap
// queues even while global slots are free (its surplus never crowds
// others), and a tenant over its MaxQueue cap sheds its own arrivals
// without consuming shared queue space. When the shared queue is full,
// an arriving request may preempt a queued one of strictly lower
// priority (the least-entitled such waiter is shed with ErrPreempted) —
// low-priority tenants shed first under overload.
type Admission struct {
	maxInFlight int
	maxQueue    int
	policies    map[string]TenantPolicy

	mu          sync.Mutex
	inUse       int     // slots held or reserved for a granted waiter
	vtime       float64 // virtual time: largest tag ever granted
	seq         uint64  // arrival counter; breaks equal-tag ties FIFO
	queuedTotal int
	tenants     map[string]*tenantState

	draining    atomic.Bool
	inFlight    atomic.Int64
	queued      atomic.Int64
	shedFull    atomic.Int64
	shedExpired atomic.Int64
	shedPreempt atomic.Int64
}

// tenantState is one tenant's live accounting. States are created on
// first arrival and kept for the controller's life (the cardinality is
// the deployment's tenant-key space).
type tenantState struct {
	name string
	pol  TenantPolicy

	// Guarded by Admission.mu.
	lastFinish float64
	inUse      int
	queue      list.List // of *waiter, FIFO == ascending finish tags
	admitted   int64

	// Incremented outside the lock on the waiter's own goroutine.
	shedFull    atomic.Int64
	shedExpired atomic.Int64
	shedPreempt atomic.Int64
}

type grantKind uint8

const (
	grantNone grantKind = iota
	grantSlot
	grantPreempted
)

// waiter is one queued request: its tenant, its fixed virtual finish
// tag, and the buffered grant channel the dispatcher signals.
type waiter struct {
	ts     *tenantState
	finish float64
	seq    uint64         // arrival order; equal tags are served FIFO
	grant  chan grantKind // buffered 1; at most one send ever happens
}

// NewAdmission returns a single-policy controller admitting maxInFlight
// concurrent requests with a wait queue of maxQueue (clamped to ≥ 1 and
// ≥ 0). Every tenant gets weight 1 and normal priority — pure fair
// sharing with FIFO inside each tenant.
func NewAdmission(maxInFlight, maxQueue int) *Admission {
	return NewTenantAdmission(maxInFlight, maxQueue, nil)
}

// NewTenantAdmission returns a controller with per-tenant policies. The
// "*" entry, when present, is the policy for tenants not named
// explicitly; absent tenants otherwise get the zero policy (weight 1,
// normal priority, global bounds only).
func NewTenantAdmission(maxInFlight, maxQueue int, policies map[string]TenantPolicy) *Admission {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	pol := make(map[string]TenantPolicy, len(policies))
	for name, p := range policies {
		pol[name] = p.withDefaults()
	}
	return &Admission{
		maxInFlight: maxInFlight,
		maxQueue:    maxQueue,
		policies:    pol,
		tenants:     make(map[string]*tenantState),
	}
}

// stateLocked returns (creating on first use) tenant's state.
func (a *Admission) stateLocked(tenant string) *tenantState {
	if tenant == "" {
		tenant = DefaultTenant
	}
	ts := a.tenants[tenant]
	if ts == nil {
		pol, ok := a.policies[tenant]
		if !ok {
			pol, ok = a.policies["*"]
			if !ok {
				pol = TenantPolicy{}
			}
		}
		ts = &tenantState{name: tenant, pol: pol.withDefaults()}
		a.tenants[tenant] = ts
	}
	return ts
}

// Enter admits the request under the default tenant. On success the
// returned release must be called exactly once when the request
// finishes. Rejections: ErrDraining after StartDraining, ErrSaturated
// when slot and queue are full, ErrQueueExpired when ctx expires while
// queued.
func (a *Admission) Enter(ctx context.Context) (release func(), err error) {
	release, _, err = a.EnterTenant(ctx, DefaultTenant)
	return release, err
}

// EnterTenant admits the request under tenant's policy. queued reports
// whether the request had to wait for a slot (true even when the wait
// ended in rejection) — the signal behind the queue-wait histogram that
// drives Retry-After hints.
func (a *Admission) EnterTenant(ctx context.Context, tenant string) (release func(), queued bool, err error) {
	if a.draining.Load() {
		return nil, false, ErrDraining
	}
	a.mu.Lock()
	ts := a.stateLocked(tenant)
	prevFinish := ts.lastFinish
	start := ts.lastFinish
	if a.vtime > start {
		start = a.vtime
	}
	a.seq++
	w := &waiter{ts: ts, finish: start + 1/ts.pol.Weight, seq: a.seq, grant: make(chan grantKind, 1)}
	ts.lastFinish = w.finish
	el := ts.queue.PushBack(w)
	a.queuedTotal++
	a.dispatchLocked()
	select {
	case <-w.grant:
		// Granted without waiting: the dispatcher consumed the queue
		// entry inside the same critical section.
		a.mu.Unlock()
		a.inFlight.Add(1)
		return func() { a.release(ts) }, false, nil
	default:
	}
	// The request must wait; enforce the queue budgets. A shed rolls the
	// tenant's virtual clock back — a rejected request consumed no
	// service, so it must not push the tenant's future tags later.
	if pq := ts.pol.MaxQueue; pq > 0 && ts.queue.Len() > pq {
		a.dropWaiterLocked(el)
		ts.lastFinish = prevFinish
		a.mu.Unlock()
		a.shedFull.Add(1)
		ts.shedFull.Add(1)
		return nil, false, fmt.Errorf("%w: tenant %q queue full", ErrSaturated, ts.name)
	}
	if a.queuedTotal > a.maxQueue {
		if !a.preemptForLocked(w) {
			a.dropWaiterLocked(el)
			ts.lastFinish = prevFinish
			a.mu.Unlock()
			a.shedFull.Add(1)
			ts.shedFull.Add(1)
			return nil, false, ErrSaturated
		}
	}
	a.queued.Add(1)
	a.mu.Unlock()

	select {
	case g := <-w.grant:
		a.queued.Add(-1)
		if g == grantPreempted {
			a.shedPreempt.Add(1)
			ts.shedPreempt.Add(1)
			return nil, true, fmt.Errorf("%w: tenant %q", ErrPreempted, ts.name)
		}
		a.inFlight.Add(1)
		return func() { a.release(ts) }, true, nil
	case <-ctx.Done():
		a.mu.Lock()
		g := grantNone
		select {
		case g = <-w.grant:
			if g == grantSlot {
				// Granted concurrently with expiry: the slot is ours but
				// unwanted — pass it down the queue instead of leaking it.
				a.inUse--
				ts.inUse--
				a.dispatchLocked()
			}
		default:
			a.dropWaiterLocked(el)
		}
		a.mu.Unlock()
		a.queued.Add(-1)
		if g == grantPreempted {
			a.shedPreempt.Add(1)
			ts.shedPreempt.Add(1)
			return nil, true, fmt.Errorf("%w: tenant %q", ErrPreempted, ts.name)
		}
		a.shedExpired.Add(1)
		ts.shedExpired.Add(1)
		return nil, true, fmt.Errorf("%w: %w", ErrQueueExpired, ctx.Err())
	}
}

// dropWaiterLocked removes a still-queued waiter from its tenant queue.
func (a *Admission) dropWaiterLocked(el *list.Element) {
	w := el.Value.(*waiter)
	w.ts.queue.Remove(el)
	a.queuedTotal--
}

// dispatchLocked grants free slots to eligible waiters in virtual-time
// order: among the tenants with queued work and in-flight headroom, the
// head waiter with the smallest finish tag wins (equal tags are served
// in arrival order, so the schedule is deterministic and degenerates to
// exact FIFO for equal-rate tenants). Grant channels are buffered,
// so the send never blocks even if the waiter has already abandoned the
// queue path (that case is drained in EnterTenant's expiry arm).
func (a *Admission) dispatchLocked() {
	for a.inUse < a.maxInFlight {
		var best *waiter
		var bestEl *list.Element
		for _, ts := range a.tenants {
			if ts.queue.Len() == 0 {
				continue
			}
			if m := ts.pol.MaxInFlight; m > 0 && ts.inUse >= m {
				continue
			}
			el := ts.queue.Front()
			w := el.Value.(*waiter)
			if best == nil || w.finish < best.finish ||
				(w.finish == best.finish && w.seq < best.seq) {
				best, bestEl = w, el
			}
		}
		if best == nil {
			return
		}
		best.ts.queue.Remove(bestEl)
		a.queuedTotal--
		a.inUse++
		best.ts.inUse++
		best.ts.admitted++
		if best.finish > a.vtime {
			a.vtime = best.finish
		}
		best.grant <- grantSlot
	}
}

// preemptForLocked reclaims queue space for arriving by shedding a
// queued waiter of strictly lower priority: the lowest-priority class
// sheds first, and within it the waiter with the largest finish tag
// (the least entitled to run next). Returns false when no lower-
// priority waiter is queued.
func (a *Admission) preemptForLocked(arriving *waiter) bool {
	p := arriving.ts.pol.Priority
	var victim *waiter
	var vel *list.Element
	for _, ts := range a.tenants {
		if ts.pol.Priority >= p || ts.queue.Len() == 0 {
			continue
		}
		el := ts.queue.Back() // largest tag in this tenant's queue
		w := el.Value.(*waiter)
		if victim == nil ||
			w.ts.pol.Priority < victim.ts.pol.Priority ||
			(w.ts.pol.Priority == victim.ts.pol.Priority &&
				(w.finish > victim.finish ||
					(w.finish == victim.finish && w.seq > victim.seq))) {
			victim, vel = w, el
		}
	}
	if victim == nil {
		return false
	}
	victim.ts.queue.Remove(vel)
	a.queuedTotal--
	// The victim was its tenant's newest waiter, so rolling the tenant
	// clock back to its start tag is exact.
	victim.ts.lastFinish = victim.finish - 1/victim.ts.pol.Weight
	victim.grant <- grantPreempted
	return true
}

// release returns the caller's slot to the scheduler, which hands it to
// the smallest-tag eligible waiter or back to the free pool.
func (a *Admission) release(ts *tenantState) {
	a.inFlight.Add(-1)
	a.mu.Lock()
	a.inUse--
	ts.inUse--
	a.dispatchLocked()
	a.mu.Unlock()
}

// StartDraining flips the controller into drain mode: every subsequent
// Enter fails with ErrDraining while requests already admitted run to
// completion. It is idempotent.
func (a *Admission) StartDraining() { a.draining.Store(true) }

// Draining reports whether drain mode has begun.
func (a *Admission) Draining() bool { return a.draining.Load() }

// InFlight returns the number of admitted, unfinished requests.
func (a *Admission) InFlight() int64 { return a.inFlight.Load() }

// Queued returns the number of requests waiting for a slot.
func (a *Admission) Queued() int64 { return a.queued.Load() }

// Shed returns the total number of rejected requests: queue-full,
// queued-deadline-expired, and priority-preempted combined.
func (a *Admission) Shed() int64 {
	return a.shedFull.Load() + a.shedExpired.Load() + a.shedPreempt.Load()
}

// ShedQueueFull returns the number of requests rejected with ErrSaturated
// because slots and queue were full on arrival.
func (a *Admission) ShedQueueFull() int64 { return a.shedFull.Load() }

// ShedExpired returns the number of requests rejected with
// ErrQueueExpired because their deadline passed while queued.
func (a *Admission) ShedExpired() int64 { return a.shedExpired.Load() }

// ShedPreempted returns the number of queued requests shed with
// ErrPreempted to make room for higher-priority arrivals.
func (a *Admission) ShedPreempted() int64 { return a.shedPreempt.Load() }

// TenantStats snapshots every tenant's admission accounting, sorted by
// tenant name.
func (a *Admission) TenantStats() []TenantStats {
	a.mu.Lock()
	out := make([]TenantStats, 0, len(a.tenants))
	for _, ts := range a.tenants {
		out = append(out, TenantStats{
			Tenant:        ts.name,
			Weight:        ts.pol.Weight,
			Priority:      priorityName(ts.pol.Priority),
			InFlight:      ts.inUse,
			Queued:        ts.queue.Len(),
			Admitted:      ts.admitted,
			ShedQueueFull: ts.shedFull.Load(),
			ShedExpired:   ts.shedExpired.Load(),
			ShedPreempted: ts.shedPreempt.Load(),
		})
	}
	a.mu.Unlock()
	sortTenantStats(out)
	return out
}
