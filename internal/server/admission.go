package server

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrSaturated is returned when the in-flight limit and the wait queue are
// both full, or a queued request's deadline expires before a slot frees.
// Handlers map it to 429 Too Many Requests — the load-shedding contract:
// a saturated server answers immediately rather than queueing unboundedly.
var ErrSaturated = errors.New("server: saturated")

// ErrDraining is returned once shutdown has begun; handlers map it to 503
// so load balancers stop routing here while in-flight requests finish.
var ErrDraining = errors.New("server: draining")

// Admission bounds the compute endpoints: at most maxInFlight requests
// execute the pipeline concurrently, at most maxQueue more wait for a slot
// (bounded by their own deadlines), and everything beyond that is shed
// with ErrSaturated. The in-flight bound is what keeps Parallelism-wide
// scans from oversubscribing the machine: total workers ≈ maxInFlight ×
// per-request parallelism.
type Admission struct {
	slots chan struct{}
	queue chan struct{}

	draining atomic.Bool
	inFlight atomic.Int64
	queued   atomic.Int64
	shed     atomic.Int64
}

// NewAdmission returns a controller admitting maxInFlight concurrent
// requests with a wait queue of maxQueue (clamped to ≥ 1 and ≥ 0).
func NewAdmission(maxInFlight, maxQueue int) *Admission {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admission{
		slots: make(chan struct{}, maxInFlight),
		queue: make(chan struct{}, maxQueue),
	}
}

// Enter admits the request or rejects it. On success the returned release
// must be called exactly once when the request finishes. Rejections:
// ErrDraining after StartDraining, ErrSaturated when slot and queue are
// full or ctx expires while queued.
func (a *Admission) Enter(ctx context.Context) (release func(), err error) {
	if a.draining.Load() {
		return nil, ErrDraining
	}
	select {
	case a.slots <- struct{}{}:
	default:
		// No free slot: wait in the bounded queue, up to the deadline.
		select {
		case a.queue <- struct{}{}:
		default:
			a.shed.Add(1)
			return nil, ErrSaturated
		}
		a.queued.Add(1)
		select {
		case a.slots <- struct{}{}:
			a.queued.Add(-1)
			<-a.queue
		case <-ctx.Done():
			a.queued.Add(-1)
			<-a.queue
			a.shed.Add(1)
			return nil, fmt.Errorf("%w: %w", ErrSaturated, ctx.Err())
		}
	}
	a.inFlight.Add(1)
	return func() {
		a.inFlight.Add(-1)
		<-a.slots
	}, nil
}

// StartDraining flips the controller into drain mode: every subsequent
// Enter fails with ErrDraining while requests already admitted run to
// completion. It is idempotent.
func (a *Admission) StartDraining() { a.draining.Store(true) }

// Draining reports whether drain mode has begun.
func (a *Admission) Draining() bool { return a.draining.Load() }

// InFlight returns the number of admitted, unfinished requests.
func (a *Admission) InFlight() int64 { return a.inFlight.Load() }

// Queued returns the number of requests waiting for a slot.
func (a *Admission) Queued() int64 { return a.queued.Load() }

// Shed returns the number of requests rejected with ErrSaturated.
func (a *Admission) Shed() int64 { return a.shed.Load() }
