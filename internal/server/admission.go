package server

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrSaturated is returned when the in-flight limit and the wait queue are
// both full. Handlers map it to 429 Too Many Requests — the load-shedding
// contract: a saturated server answers immediately rather than queueing
// unboundedly.
var ErrSaturated = errors.New("server: saturated")

// ErrQueueExpired is returned when a queued request's deadline expires
// before a slot frees. It is distinct from ErrSaturated so clients can
// tell "the queue was full, retry soon" (429) from "the server is too
// slow for your deadline, back off" (503 + Retry-After). The error wraps
// the context cause.
var ErrQueueExpired = errors.New("server: queued request expired")

// ErrDraining is returned once shutdown has begun; handlers map it to 503
// so load balancers stop routing here while in-flight requests finish.
var ErrDraining = errors.New("server: draining")

// Admission bounds the compute endpoints: at most maxInFlight requests
// execute the pipeline concurrently, at most maxQueue more wait for a slot
// (bounded by their own deadlines), and everything beyond that is shed
// with ErrSaturated. The in-flight bound is what keeps Parallelism-wide
// scans from oversubscribing the machine: total workers ≈ maxInFlight ×
// per-request parallelism.
//
// Handoff is FIFO: a freed slot goes to the head of the wait queue, and a
// new arrival is never admitted while anyone is queued, so queued
// requests cannot be starved by a stream of later arrivals.
type Admission struct {
	maxInFlight int
	maxQueue    int

	mu      sync.Mutex
	inUse   int       // slots held or reserved for a granted waiter
	waiters list.List // of chan struct{} (buffered 1), FIFO

	draining    atomic.Bool
	inFlight    atomic.Int64
	queued      atomic.Int64
	shedFull    atomic.Int64
	shedExpired atomic.Int64
}

// NewAdmission returns a controller admitting maxInFlight concurrent
// requests with a wait queue of maxQueue (clamped to ≥ 1 and ≥ 0).
func NewAdmission(maxInFlight, maxQueue int) *Admission {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admission{maxInFlight: maxInFlight, maxQueue: maxQueue}
}

// Enter admits the request or rejects it. On success the returned release
// must be called exactly once when the request finishes. Rejections:
// ErrDraining after StartDraining, ErrSaturated when slot and queue are
// full, ErrQueueExpired when ctx expires while queued.
func (a *Admission) Enter(ctx context.Context) (release func(), err error) {
	if a.draining.Load() {
		return nil, ErrDraining
	}
	a.mu.Lock()
	if a.inUse < a.maxInFlight && a.waiters.Len() == 0 {
		a.inUse++
		a.mu.Unlock()
		a.inFlight.Add(1)
		return a.release, nil
	}
	if a.waiters.Len() >= a.maxQueue {
		a.mu.Unlock()
		a.shedFull.Add(1)
		return nil, ErrSaturated
	}
	grant := make(chan struct{}, 1)
	el := a.waiters.PushBack(grant)
	a.queued.Add(1)
	a.mu.Unlock()

	select {
	case <-grant:
		a.queued.Add(-1)
		a.inFlight.Add(1)
		return a.release, nil
	case <-ctx.Done():
		a.mu.Lock()
		select {
		case <-grant:
			// Granted concurrently with expiry: the slot is ours but
			// unwanted — pass it down the queue instead of leaking it.
			a.handoffLocked()
		default:
			a.waiters.Remove(el)
		}
		a.mu.Unlock()
		a.queued.Add(-1)
		a.shedExpired.Add(1)
		return nil, fmt.Errorf("%w: %w", ErrQueueExpired, ctx.Err())
	}
}

// release returns the caller's slot: to the queue head if anyone is
// waiting, otherwise back to the free pool.
func (a *Admission) release() {
	a.inFlight.Add(-1)
	a.mu.Lock()
	a.handoffLocked()
	a.mu.Unlock()
}

// handoffLocked transfers a held slot to the first waiter, or frees it
// when the queue is empty. Callers must hold a.mu. The grant channel is
// buffered, so the send never blocks even if the waiter has already
// abandoned the queue path (that case is drained in Enter's expiry arm).
func (a *Admission) handoffLocked() {
	if el := a.waiters.Front(); el != nil {
		a.waiters.Remove(el)
		el.Value.(chan struct{}) <- struct{}{}
		return
	}
	a.inUse--
}

// StartDraining flips the controller into drain mode: every subsequent
// Enter fails with ErrDraining while requests already admitted run to
// completion. It is idempotent.
func (a *Admission) StartDraining() { a.draining.Store(true) }

// Draining reports whether drain mode has begun.
func (a *Admission) Draining() bool { return a.draining.Load() }

// InFlight returns the number of admitted, unfinished requests.
func (a *Admission) InFlight() int64 { return a.inFlight.Load() }

// Queued returns the number of requests waiting for a slot.
func (a *Admission) Queued() int64 { return a.queued.Load() }

// Shed returns the total number of rejected requests, queue-full and
// queued-deadline-expired combined.
func (a *Admission) Shed() int64 { return a.shedFull.Load() + a.shedExpired.Load() }

// ShedQueueFull returns the number of requests rejected with ErrSaturated
// because slots and queue were full on arrival.
func (a *Admission) ShedQueueFull() int64 { return a.shedFull.Load() }

// ShedExpired returns the number of requests rejected with
// ErrQueueExpired because their deadline passed while queued.
func (a *Admission) ShedExpired() int64 { return a.shedExpired.Load() }
