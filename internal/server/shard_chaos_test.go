package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/shard"
)

// shardChaosReqs is the request mix each shard-chaos schedule replays:
// two sample identities plus a repeat, so the artifact cache and the
// scatter-gather path are both exercised.
var shardChaosReqs = []struct {
	name string
	body map[string]any
}{
	{"sampleA", map[string]any{"dataset": "pts", "alpha": 1.0, "size": 60, "kernels": 32, "seed": 101}},
	{"sampleB", map[string]any{"dataset": "pts", "alpha": 0.5, "size": 60, "kernels": 32, "seed": 202}},
	{"sampleA2", map[string]any{"dataset": "pts", "alpha": 1.0, "size": 60, "kernels": 32, "seed": 101}},
}

func shardChaosConfig(inj *faults.Injector) Config {
	return Config{
		Parallelism:   2,
		ShardWorkers:  3,
		ShardReplicas: 2,
		ShardHedge:    500 * time.Microsecond,
		Deadline:      5 * time.Second,
		MaxInFlight:   3,
		MaxQueue:      2,
		Faults:        inj,
	}
}

// TestShardChaosPartialFailure injects errors, delays, and partial
// (truncated) responses into the shard RPC fabric across many seeded
// schedules and asserts the sharded serving guarantees:
//
//   - a 200 response is byte-identical to the fault-free run — replica
//     fallback repairs the fan-out or the request fails, it never merges
//     a wrong or short result silently;
//   - failures only surface as 429, 503, or 504;
//   - admission drains fully and no goroutine leaks;
//   - across the seeds, faults actually fired and fallbacks actually ran
//     (otherwise the schedule tested nothing).
func TestShardChaosPartialFailure(t *testing.T) {
	checkLeaks := leakCheck(t)
	mem := dataset.MustInMemory(testPoints(600, 2, 11))

	// Fault-free reference bytes, from an identically sharded server.
	ref := make([][]byte, len(shardChaosReqs))
	func() {
		srv := New(shardChaosConfig(nil))
		if err := srv.Registry().RegisterDataset("pts", mem); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		for i, rq := range shardChaosReqs {
			status, _, body := postRaw(t, ts.URL+"/v1/sample", rq.body)
			if status != http.StatusOK {
				t.Fatalf("reference %s: %d: %s", rq.name, status, body)
			}
			ref[i] = body
		}
	}()

	seeds := 40
	if testing.Short() {
		seeds = 10
	}
	var injectedTotal, okTotal, failTotal, fallbackTotal, hedgeTotal int64
	for seed := 1; seed <= seeds; seed++ {
		inj := faults.New(faults.Config{
			Seed:     uint64(seed),
			PError:   0.20,
			PDelay:   0.10,
			PPartial: 0.15,
			MaxDelay: 500 * time.Microsecond,
		})
		srv := New(shardChaosConfig(inj))
		if err := srv.Registry().RegisterDataset("pts", mem); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())

		var wg sync.WaitGroup
		for i, rq := range shardChaosReqs {
			wg.Add(1)
			go func(i int, name string, body map[string]any) {
				defer wg.Done()
				status, _, data := postRaw(t, ts.URL+"/v1/sample", body)
				switch status {
				case http.StatusOK:
					atomic.AddInt64(&okTotal, 1)
					if !bytes.Equal(data, ref[i]) {
						t.Errorf("seed %d %s: 200 body differs from fault-free run", seed, name)
					}
				case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
					atomic.AddInt64(&failTotal, 1)
				default:
					t.Errorf("seed %d %s: unexpected status %d: %s", seed, name, status, data)
				}
			}(i, rq.name, rq.body)
		}
		wg.Wait()
		ts.Close()

		if n := srv.adm.InFlight(); n != 0 {
			t.Errorf("seed %d: %d requests still in flight after drain", seed, n)
		}
		if n := srv.adm.Queued(); n != 0 {
			t.Errorf("seed %d: %d requests still queued after drain", seed, n)
		}
		injectedTotal += inj.Injected()
		fallbackTotal += srv.rec.Counter(shard.CtrFallbacks).Value()
		hedgeTotal += srv.rec.Counter(shard.CtrHedges).Value()
	}
	if injectedTotal == 0 {
		t.Error("no faults fired across any seed — the chaos run tested nothing")
	}
	if okTotal == 0 {
		t.Error("no request ever succeeded under shard faults — replica fallback is dead")
	}
	if fallbackTotal == 0 {
		t.Error("no fallback ever ran across the schedules — fault points are not wired to the RPC path")
	}
	t.Logf("shard chaos: %d seeds, %d faults injected, %d ok, %d failed, %d fallbacks, %d hedges",
		seeds, injectedTotal, okTotal, failTotal, fallbackTotal, hedgeTotal)
	checkLeaks()
}

// TestShardChaosSingleReplicaLoud: with Replicas=1 there is no fallback;
// an injected RPC error must surface as a transient 503/504, never as a
// quietly degraded response.
func TestShardChaosSingleReplicaLoud(t *testing.T) {
	inj := faults.New(faults.Config{Seed: 3, PError: 1})
	cfg := shardChaosConfig(inj)
	cfg.ShardReplicas = 1
	cfg.ShardHedge = 0
	srv := New(cfg)
	if err := srv.Registry().RegisterDataset("pts", dataset.MustInMemory(testPoints(400, 2, 11))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	status, _, body := postRaw(t, ts.URL+"/v1/sample", shardChaosReqs[0].body)
	if status != http.StatusServiceUnavailable && status != http.StatusGatewayTimeout {
		t.Fatalf("every-RPC-fails run returned %d (%s), want 503/504", status, body)
	}
}
