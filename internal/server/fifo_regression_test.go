package server

import (
	"context"
	"testing"
	"time"
)

// gateCtx is a context whose Done() blocks until the gate is released,
// signalling entry first. A waiter using it freezes at the exact point
// where it is counted as queued but has not yet begun waiting for a slot
// — the widest possible version of the instant every queued request
// passes through. While the waiter is held there, the test frees a slot
// and lets a new arrival race for it.
type gateCtx struct {
	entered chan struct{} // receives once Done() has been called
	gate    chan struct{} // close to let Done() return
	done    chan struct{} // never closed
}

func newGateCtx() *gateCtx {
	return &gateCtx{
		entered: make(chan struct{}, 1),
		gate:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

func (c *gateCtx) Done() <-chan struct{} {
	select {
	case c.entered <- struct{}{}:
	default:
	}
	<-c.gate
	return c.done
}

func (c *gateCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *gateCtx) Err() error                  { return nil }
func (c *gateCtx) Value(any) any               { return nil }

// TestAdmissionQueuedWaiterBeatsNewArrival is the regression test for the
// admission starvation bug: when a slot frees, it must go to the queued
// request, never to a later arrival. The waiter is held at the moment it
// has joined the queue but not yet claimed a slot; a FIFO controller has
// already reserved the freed slot for it by then, while the original
// implementation leaves the slot up for grabs and a new arrival steals it.
func TestAdmissionQueuedWaiterBeatsNewArrival(t *testing.T) {
	a := NewAdmission(1, 2)
	hold, err := a.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	wctx := newGateCtx()
	wDone := make(chan error, 1)
	go func() {
		rel, werr := a.Enter(wctx)
		wDone <- werr
		if werr == nil {
			rel()
		}
	}()
	<-wctx.entered // the waiter is now queued
	if got := a.Queued(); got != 1 {
		t.Fatalf("queued = %d, want 1", got)
	}

	hold() // free the slot while the waiter is queued

	// A new arrival must not jump the queue: the freed slot belongs to
	// the waiter. The arrival should queue up behind it and time out.
	actx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if rel2, err2 := a.Enter(actx); err2 == nil {
		rel2()
		t.Error("new arrival was admitted while an earlier request was queued")
	}

	close(wctx.gate)
	if werr := <-wDone; werr != nil {
		t.Errorf("queued waiter rejected: %v", werr)
	}
}
