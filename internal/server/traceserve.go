package server

import (
	"net/http"
	"strings"
	"time"

	"repro/internal/trace"
)

// statusWriter records the status code and body bytes a handler wrote,
// so the compute wrapper can observe every outcome — including the
// error paths that write through fail() — into the route histogram,
// the access log, and the trace snapshot.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// status returns the response code (200 if the handler never set one).
func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// finishRequest seals a completed compute request: the trace snapshot
// is filed into the slow ring (always, past the threshold) and the
// recent ring (by the deterministic ID-sampling decision), and the
// access-log line is emitted. tr may be nil (tracing disabled) — the
// access logger then logs without a stage breakdown, though the usual
// wiring enables collection whenever an access log is configured.
func (s *Server) finishRequest(tr *trace.Trace, route, tenant string, sw *statusWriter, start time.Time) {
	dur := time.Since(start)
	cache := sw.Header().Get("X-DBS-Cache")
	var snap trace.Snapshot
	if tr != nil {
		snap = tr.Finish(route, sw.status(), cache)
		snap.Slow = s.cfg.SlowThreshold > 0 && dur >= s.cfg.SlowThreshold
		if snap.Slow {
			s.slowTrace.Add(snap)
		}
		if s.cfg.TraceSample > 0 && trace.SampleID(snap.ID, s.cfg.TraceSample) {
			s.traces.Add(snap)
		}
	}
	if s.accessLog != nil {
		queueMs, stages := stageBreakdown(snap)
		if tenant == DefaultTenant {
			tenant = "" // omitted from the line; the default bucket is implied
		}
		s.accessLog.log(accessRecord{
			Time:     time.Now().UTC().Format(time.RFC3339Nano),
			TraceID:  sw.Header().Get(TraceHeader),
			Route:    route,
			Tenant:   tenant,
			Status:   sw.status(),
			DurMs:    float64(dur) / float64(time.Millisecond),
			QueueMs:  queueMs,
			Cache:    cache,
			Degraded: sw.Header().Get(DegradedHeader) != "",
			Bytes:    sw.bytes,
			Slow:     snap.Slow,
			Stages:   stages,
		})
	}
}

// stageBreakdown aggregates a snapshot's events into the access-log
// stage map: admission wait is split out as the queue time; serving-
// layer events ("server/build/est", "cache/sample", "registry/
// acquire") keep their full path; other pipeline spans report at their
// top level only ("draw", "scan", "kde") so a parent and its children
// are never both counted. Totals overlap hierarchically — a scan runs
// inside a draw which runs inside a build stage — the map is a
// breakdown for reading, not a partition.
func stageBreakdown(snap trace.Snapshot) (queueMs float64, stages map[string]float64) {
	for _, e := range snap.Events {
		d := e.EndMs - e.StartMs
		if e.Path == "admission/wait" {
			queueMs += d
			continue
		}
		if d <= 0 {
			continue // point events (faults, retries, pool runs)
		}
		if i := strings.IndexByte(e.Path, '/'); i >= 0 &&
			!strings.HasPrefix(e.Path, "server/") &&
			!strings.HasPrefix(e.Path, "cache/") &&
			!strings.HasPrefix(e.Path, "registry/") {
			continue
		}
		if stages == nil {
			stages = make(map[string]float64)
		}
		stages[e.Path] += d
	}
	return queueMs, stages
}

// tracesResponse is the /debug/traces body.
type tracesResponse struct {
	Enabled bool             `json:"enabled"`
	Sample  float64          `json:"sample"`
	SlowMs  float64          `json:"slow_ms"`
	Total   int64            `json:"total"`
	Recent  []trace.Snapshot `json:"recent"`
	Slow    []trace.Snapshot `json:"slow"`
}

// handleTraces serves the retained trace rings, newest first. Recent
// is the ID-sampled ring, Slow the keeper ring; Total counts every
// snapshot ever admitted to the recent ring (so a scraper can tell
// "quiet server" from "everything sampled away").
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	s.rec.Counter(CtrRequests).Inc()
	w.Header().Set(TraceHeader, s.ids.Next())
	writeJSON(w, http.StatusOK, tracesResponse{
		Enabled: s.traceOn,
		Sample:  s.cfg.TraceSample,
		SlowMs:  float64(s.cfg.SlowThreshold) / float64(time.Millisecond),
		Total:   s.traces.Total(),
		Recent:  s.traces.Snapshots(),
		Slow:    s.slowTrace.Snapshots(),
	})
}
