package server

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Cache is the pipeline artifact cache: an LRU over expensive intermediate
// results (built KDE estimators, drawn samples) with byte-size accounting.
// Keys canonicalize (dataset fingerprint, parameters, seed) — see
// cacheKey in handlers.go — so a repeat query finds the artifact a previous
// request built and skips its dataset passes entirely.
//
// Concurrent requests for the same missing key are single-flighted: the
// first runs the build, the rest block on its completion and share the
// result (counted as hits — they ran no passes). Failed builds are not
// cached; every waiter receives the error and the next request retries.
type Cache struct {
	maxBytes int64

	mu    sync.Mutex
	used  int64
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type centry struct {
	key   string
	val   any
	size  int64
	done  bool // build finished (guarded by Cache.mu)
	err   error
	ready chan struct{} // closed when done
}

// NewCache returns a cache bounded to maxBytes of accounted artifact size.
// maxBytes ≤ 0 disables storage: every lookup builds (still single-flighted
// for concurrent identical requests).
func NewCache(maxBytes int64) *Cache {
	return &Cache{maxBytes: maxBytes, ll: list.New(), items: make(map[string]*list.Element)}
}

// GetOrBuild returns the artifact cached under key, or runs build to
// create it. build returns the artifact and its accounted byte size.
// hit reports whether the caller avoided the build (including joining an
// in-flight one).
func (c *Cache) GetOrBuild(key string, build func() (any, int64, error)) (val any, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*centry)
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, false, e.err
		}
		c.hits.Add(1)
		return e.val, true, nil
	}
	e := &centry{key: key, ready: make(chan struct{})}
	el := c.ll.PushFront(e)
	c.items[key] = el
	c.mu.Unlock()
	c.misses.Add(1)

	v, size, err := build()
	c.mu.Lock()
	e.done = true
	if err != nil {
		e.err = err
		if cur, ok := c.items[key]; ok && cur == el {
			delete(c.items, key)
			c.ll.Remove(el)
		}
	} else {
		e.val, e.size = v, size
		c.used += size
		c.evictLocked()
	}
	c.mu.Unlock()
	close(e.ready)
	if err != nil {
		return nil, false, err
	}
	return v, false, nil
}

// evictLocked drops least-recently-used completed entries until the byte
// budget holds. In-flight builds are never evicted (their size is unknown
// and waiters hold their entry); with a zero budget every completed entry
// goes immediately.
func (c *Cache) evictLocked() {
	el := c.ll.Back()
	for c.used > c.maxBytes && el != nil {
		prev := el.Prev()
		e := el.Value.(*centry)
		if e.done {
			delete(c.items, e.key)
			c.ll.Remove(el)
			c.used -= e.size
			c.evictions.Add(1)
		}
		el = prev
	}
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Bytes     int64 `json:"bytes"`
	Items     int   `json:"items"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Stats returns the current counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	bytes, items := c.used, len(c.items)
	c.mu.Unlock()
	return CacheStats{
		Bytes:     bytes,
		Items:     items,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}
