package server

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// Outcome classifies how a GetOrBuild lookup was served. Exactly one
// outcome is counted per lookup, so at quiescence
// lookups == hits + misses + stale-served — the conservation law the
// counter tests assert.
type Outcome int

const (
	// OutcomeMiss: the artifact was built (or the build failed with no
	// stale copy to fall back on).
	OutcomeMiss Outcome = iota
	// OutcomeHit: served from the cache, including joining an in-flight
	// build that succeeded — no dataset passes either way.
	OutcomeHit
	// OutcomeStale: the build failed but a previously evicted copy was
	// served instead (graceful degradation).
	OutcomeStale
	// OutcomeDisk: the build closure loaded the artifact from the disk
	// tier instead of recomputing it. The Cache itself counts these as
	// misses (the memory tier did miss); the server's handlers remap the
	// outcome after checking the disk-load flag, so the conservation law
	// lookups == hits + misses + stale is unchanged.
	OutcomeDisk
)

func (o Outcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeStale:
		return "stale"
	case OutcomeDisk:
		return "disk"
	default:
		return "miss"
	}
}

// Cache is the pipeline artifact cache: an LRU over expensive intermediate
// results (built KDE estimators, drawn samples) with byte-size accounting.
// Keys canonicalize (dataset fingerprint, parameters, seed) — see
// cacheKey in handlers.go — so a repeat query finds the artifact a previous
// request built and skips its dataset passes entirely.
//
// Concurrent requests for the same missing key are single-flighted: the
// first runs the build, the rest block on its completion and share the
// result. Failed builds are not cached; every waiter receives the error
// (or the stale fallback) and the next request retries the build.
//
// Evicted artifacts optionally move to a stale side-ring (its own LRU,
// bounded by staleBytes). When a rebuild fails, the stale copy is served
// instead of the error — deterministically the same bytes the fresh
// artifact had, just older — and the key stays rebuildable.
type Cache struct {
	maxBytes   int64
	staleBytes int64

	mu    sync.Mutex
	used  int64
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	staleUsed int64
	sll       *list.List // stale ring, front = most recently used
	stale     map[string]*list.Element

	lookups     atomic.Int64
	hits        atomic.Int64
	misses      atomic.Int64
	staleServed atomic.Int64
	evictions   atomic.Int64
	peeks       atomic.Int64
	peekHits    atomic.Int64
}

type centry struct {
	key   string
	val   any
	size  int64
	done  bool // build finished (guarded by Cache.mu)
	stale bool // val came from the stale ring after a failed build
	err   error
	ready chan struct{} // closed when done; fields are immutable after
}

type sentry struct {
	key  string
	val  any
	size int64
}

// NewCache returns a cache bounded to maxBytes of accounted artifact
// size, keeping up to staleBytes of evicted artifacts around as rebuild
// fallbacks. maxBytes ≤ 0 disables storage: every lookup builds (still
// single-flighted for concurrent identical requests). staleBytes ≤ 0
// disables stale fallback.
func NewCache(maxBytes, staleBytes int64) *Cache {
	return &Cache{
		maxBytes:   maxBytes,
		staleBytes: staleBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
		sll:        list.New(),
		stale:      make(map[string]*list.Element),
	}
}

// GetOrBuild returns the artifact cached under key, or runs build to
// create it. build returns the artifact and its accounted byte size. The
// Outcome reports how the lookup was served; on OutcomeStale the value is
// a previously evicted copy and err is nil.
func (c *Cache) GetOrBuild(key string, build func() (any, int64, error)) (any, Outcome, error) {
	c.lookups.Add(1)
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*centry)
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		<-e.ready
		switch {
		case e.err != nil:
			c.misses.Add(1)
			return nil, OutcomeMiss, e.err
		case e.stale:
			c.staleServed.Add(1)
			return e.val, OutcomeStale, nil
		default:
			c.hits.Add(1)
			return e.val, OutcomeHit, nil
		}
	}
	e := &centry{key: key, ready: make(chan struct{})}
	el := c.ll.PushFront(e)
	c.items[key] = el
	c.mu.Unlock()

	v, size, err := build()

	c.mu.Lock()
	e.done = true
	if err != nil {
		if sl, ok := c.stale[key]; ok {
			// Failed rebuild with a stale copy on hand: serve it, and
			// leave the key out of the primary map so the next lookup
			// retries the build.
			sv := sl.Value.(*sentry)
			c.sll.MoveToFront(sl)
			e.val, e.size, e.stale = sv.val, sv.size, true
			v, err = sv.val, nil
		} else {
			e.err = err
		}
		c.removeLocked(el, e)
	} else {
		e.val, e.size = v, size
		// A fresh artifact supersedes its stale copy.
		c.dropStaleLocked(key)
		if c.maxBytes <= 0 || size > c.maxBytes {
			// Larger than the whole budget (or storage disabled): the
			// artifact could never be reused, so it is not admitted —
			// and not counted as an eviction, since it was never in.
			c.removeLocked(el, e)
		} else {
			c.used += size
			c.evictLocked()
		}
	}
	c.mu.Unlock()
	close(e.ready)

	switch {
	case err != nil:
		c.misses.Add(1)
		return nil, OutcomeMiss, err
	case e.stale:
		c.staleServed.Add(1)
		return v, OutcomeStale, nil
	default:
		c.misses.Add(1)
		return v, OutcomeMiss, nil
	}
}

// Peek returns the artifact cached under key without building, waiting
// on an in-flight build, or counting toward the lookup conservation law
// (peeks have their own counters). The degrade path uses it to check
// for a servable fallback artifact while the server is shedding — a
// peek must never trigger the expensive work admission just refused.
func (c *Cache) Peek(key string) (any, bool) {
	c.peeks.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*centry)
		if e.done && e.err == nil {
			c.ll.MoveToFront(el)
			c.peekHits.Add(1)
			return e.val, true
		}
		return nil, false
	}
	if sl, ok := c.stale[key]; ok {
		c.sll.MoveToFront(sl)
		c.peekHits.Add(1)
		return sl.Value.(*sentry).val, true
	}
	return nil, false
}

// removeLocked takes el out of the primary index without touching byte
// accounting (its size was never added). Waiters still hold e and read
// its fields after ready closes.
func (c *Cache) removeLocked(el *list.Element, e *centry) {
	if cur, ok := c.items[e.key]; ok && cur == el {
		delete(c.items, e.key)
		c.ll.Remove(el)
	}
}

// evictLocked drops least-recently-used completed entries until the byte
// budget holds, moving each into the stale ring. In-flight builds are
// never evicted (their size is unknown and waiters hold their entry).
func (c *Cache) evictLocked() {
	el := c.ll.Back()
	for c.used > c.maxBytes && el != nil {
		prev := el.Prev()
		e := el.Value.(*centry)
		if e.done {
			delete(c.items, e.key)
			c.ll.Remove(el)
			c.used -= e.size
			c.evictions.Add(1)
			c.keepStaleLocked(e.key, e.val, e.size)
		}
		el = prev
	}
}

// keepStaleLocked files an evicted artifact into the stale ring,
// evicting stale-LRU entries to hold the staleBytes budget. Artifacts
// larger than the whole stale budget are dropped.
func (c *Cache) keepStaleLocked(key string, val any, size int64) {
	if size > c.staleBytes {
		return
	}
	c.dropStaleLocked(key)
	c.stale[key] = c.sll.PushFront(&sentry{key: key, val: val, size: size})
	c.staleUsed += size
	for c.staleUsed > c.staleBytes {
		back := c.sll.Back()
		sv := back.Value.(*sentry)
		c.sll.Remove(back)
		delete(c.stale, sv.key)
		c.staleUsed -= sv.size
	}
}

// dropStaleLocked removes key's stale copy, if any.
func (c *Cache) dropStaleLocked(key string) {
	if sl, ok := c.stale[key]; ok {
		c.staleUsed -= sl.Value.(*sentry).size
		c.sll.Remove(sl)
		delete(c.stale, key)
	}
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Bytes       int64 `json:"bytes"`
	Items       int   `json:"items"`
	StaleBytes  int64 `json:"stale_bytes"`
	StaleItems  int   `json:"stale_items"`
	Lookups     int64 `json:"lookups"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	StaleServed int64 `json:"stale_served"`
	Evictions   int64 `json:"evictions"`
	Peeks       int64 `json:"peeks,omitempty"`
	PeekHits    int64 `json:"peek_hits,omitempty"`
}

// Stats returns the current counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	bytes, items := c.used, len(c.items)
	sbytes, sitems := c.staleUsed, len(c.stale)
	c.mu.Unlock()
	return CacheStats{
		Bytes:       bytes,
		Items:       items,
		StaleBytes:  sbytes,
		StaleItems:  sitems,
		Lookups:     c.lookups.Load(),
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		StaleServed: c.staleServed.Load(),
		Evictions:   c.evictions.Load(),
		Peeks:       c.peeks.Load(),
		PeekHits:    c.peekHits.Load(),
	}
}

// invariants checks the cache's internal accounting; the chaos suite
// calls it after every fault schedule. Valid at quiescence (no lookups
// in flight).
func (c *Cache) invariants() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sum int64
	for el := c.ll.Front(); el != nil; el = el.Next() {
		if e := el.Value.(*centry); e.done {
			sum += e.size
		}
	}
	if c.ll.Len() != len(c.items) {
		return fmt.Errorf("cache: list has %d entries, index %d", c.ll.Len(), len(c.items))
	}
	if sum != c.used {
		return fmt.Errorf("cache: accounted %d bytes, entries sum to %d", c.used, sum)
	}
	if c.maxBytes > 0 && c.used > c.maxBytes {
		return fmt.Errorf("cache: %d bytes used over budget %d", c.used, c.maxBytes)
	}
	var ssum int64
	for el := c.sll.Front(); el != nil; el = el.Next() {
		ssum += el.Value.(*sentry).size
	}
	if c.sll.Len() != len(c.stale) {
		return fmt.Errorf("cache: stale ring has %d entries, index %d", c.sll.Len(), len(c.stale))
	}
	if ssum != c.staleUsed {
		return fmt.Errorf("cache: stale accounted %d bytes, entries sum to %d", c.staleUsed, ssum)
	}
	if c.staleUsed > c.staleBytes {
		return fmt.Errorf("cache: stale %d bytes over budget %d", c.staleUsed, c.staleBytes)
	}
	lk, h, m, st := c.lookups.Load(), c.hits.Load(), c.misses.Load(), c.staleServed.Load()
	if lk != h+m+st {
		return fmt.Errorf("cache: %d lookups != %d hits + %d misses + %d stale", lk, h, m, st)
	}
	return nil
}
