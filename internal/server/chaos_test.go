package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/geom"
)

// chaosReqs is the fixed request mix every chaos run replays: two
// distinct sample identities (with repeats, so cache interplay and
// stale serving are exercised), a cluster request sharing sample A's
// artifact, and an estimator-only outlier request.
var chaosReqs = []struct {
	name string
	path string
	body map[string]any
}{
	{"sampleA", "/v1/sample", map[string]any{"dataset": "pts", "alpha": 1.0, "size": 60, "kernels": 32, "seed": 101}},
	{"sampleB", "/v1/sample", map[string]any{"dataset": "pts", "alpha": 1.0, "size": 60, "kernels": 32, "seed": 202}},
	{"sampleA2", "/v1/sample", map[string]any{"dataset": "pts", "alpha": 1.0, "size": 60, "kernels": 32, "seed": 101}},
	{"cluster", "/v1/cluster", map[string]any{"dataset": "pts", "alpha": 1.0, "size": 60, "kernels": 32, "seed": 101, "k": 3}},
	{"outliers", "/v1/outliers", map[string]any{"dataset": "pts", "radius": 0.1, "p": 2, "kernels": 32, "seed": 101, "method": "estimate"}},
	{"sampleB2", "/v1/sample", map[string]any{"dataset": "pts", "alpha": 1.0, "size": 60, "kernels": 32, "seed": 202}},
}

func chaosConfig(inj *faults.Injector) Config {
	return Config{
		Parallelism: 2,
		// Small enough that the two sample identities evict each other,
		// so the stale ring and re-build paths stay hot.
		CacheBytes:   10 << 10,
		StaleOK:      true,
		Retry:        2,
		RetryBackoff: 200 * time.Microsecond,
		StageTimeout: 2 * time.Second,
		Deadline:     5 * time.Second,
		MaxInFlight:  3,
		MaxQueue:     2,
		Faults:       inj,
	}
}

func postRaw(t *testing.T, url string, body map[string]any) (int, http.Header, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// TestChaosServingInvariants replays the request mix against many seeded
// fault schedules (error, delay, partial read, cancellation injected into
// dataset scans and both build stages) and asserts the serving
// guarantees hold under every one of them:
//
//   - whenever a request succeeds, its bytes are identical to the
//     fault-free run — faults may fail requests, never corrupt them;
//   - failures only ever surface as 429, 503, or 504;
//   - admission slots are all released and the queue drains to zero;
//   - the cache's byte accounting and counter conservation hold exactly;
//   - no goroutine is leaked.
func TestChaosServingInvariants(t *testing.T) {
	checkLeaks := leakCheck(t)
	mem := dataset.MustInMemory(testPoints(600, 2, 11))

	// Reference run: same requests, no faults.
	ref := make([][]byte, len(chaosReqs))
	func() {
		srv := New(chaosConfig(nil))
		if err := srv.Registry().RegisterDataset("pts", mem); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		for i, rq := range chaosReqs {
			status, _, body := postRaw(t, ts.URL+rq.path, rq.body)
			if status != http.StatusOK {
				t.Fatalf("reference %s: %d: %s", rq.name, status, body)
			}
			ref[i] = body
		}
	}()

	seeds := 60
	if testing.Short() {
		seeds = 12
	}
	var injectedTotal, okTotal, failTotal int64
	for seed := 1; seed <= seeds; seed++ {
		inj := faults.New(faults.Config{
			Seed:     uint64(seed),
			PError:   0.15,
			PDelay:   0.10,
			PPartial: 0.10,
			PCancel:  0.05,
			MaxDelay: 500 * time.Microsecond,
		})
		srv := New(chaosConfig(inj))
		if err := srv.Registry().RegisterDataset("pts", faults.Wrap(mem, inj.Point("dataset"))); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())

		var wg sync.WaitGroup
		for i, rq := range chaosReqs {
			wg.Add(1)
			go func(i int, name, path string, body map[string]any) {
				defer wg.Done()
				status, _, data := postRaw(t, ts.URL+path, body)
				switch status {
				case http.StatusOK:
					atomic.AddInt64(&okTotal, 1)
					if !bytes.Equal(data, ref[i]) {
						t.Errorf("seed %d %s: 200 body differs from fault-free run", seed, name)
					}
				case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
					atomic.AddInt64(&failTotal, 1)
				default:
					t.Errorf("seed %d %s: unexpected status %d: %s", seed, name, status, data)
				}
			}(i, rq.name, rq.path, rq.body)
		}
		wg.Wait()
		ts.Close()

		if n := srv.adm.InFlight(); n != 0 {
			t.Errorf("seed %d: %d requests still in flight after drain", seed, n)
		}
		if n := srv.adm.Queued(); n != 0 {
			t.Errorf("seed %d: %d requests still queued after drain", seed, n)
		}
		if err := srv.cache.invariants(); err != nil {
			t.Errorf("seed %d: cache invariants: %v", seed, err)
		}
		injectedTotal += inj.Injected()
	}
	if injectedTotal == 0 {
		t.Error("no faults fired across any seed — the chaos run tested nothing")
	}
	if okTotal == 0 {
		t.Error("no request ever succeeded under faults — retry/stale machinery is dead")
	}
	t.Logf("chaos: %d seeds, %d faults injected, %d ok, %d shed/failed",
		seeds, injectedTotal, okTotal, failTotal)
	checkLeaks()
}

// flakyDataset wraps an in-memory dataset and fails every scan — on both
// the sequential and the block-range path, so the parallel fast path
// cannot sneak around it — while armed. The error reports Temporary(),
// so the retry layer classifies it transient.
type flakyDataset struct {
	*dataset.InMemory
	armed atomic.Bool
}

type flakyErr struct{}

func (flakyErr) Error() string   { return "flaky: transient io failure" }
func (flakyErr) Temporary() bool { return true }

func (f *flakyDataset) Scan(fn func(p geom.Point) error) error {
	if f.armed.Load() {
		return flakyErr{}
	}
	return f.InMemory.Scan(fn)
}

func (f *flakyDataset) ScanRange(start, end int, fn func(p geom.Point) error) error {
	if f.armed.Load() {
		return flakyErr{}
	}
	return f.InMemory.ScanRange(start, end, fn)
}

// Points shadows the promoted Sliceable method with a different signature
// so block scans take the ScanRange path (the fault site) instead of the
// zero-copy slice fast path.
func (f *flakyDataset) Points(struct{}) {}

// TestChaosStaleServe pins graceful degradation end to end: an artifact
// evicted from the primary cache is served from the stale ring — flagged
// in X-DBS-Cache, byte-identical to the original — when its rebuild
// fails, and a later successful rebuild takes over seamlessly.
func TestChaosStaleServe(t *testing.T) {
	checkLeaks := leakCheck(t)
	flaky := &flakyDataset{InMemory: dataset.MustInMemory(testPoints(600, 2, 11))}
	srv := New(Config{
		Parallelism: 2,
		// Fits one request's artifacts (estimator + sample ~7 KiB), so
		// the second identity evicts the first into the stale ring.
		CacheBytes:   8 << 10,
		StaleOK:      true,
		Retry:        1,
		RetryBackoff: 100 * time.Microsecond,
		Deadline:     5 * time.Second,
	})
	if err := srv.Registry().RegisterDataset("pts", flaky); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	reqA := map[string]any{"dataset": "pts", "alpha": 1.0, "size": 60, "kernels": 32, "seed": 101}
	reqB := map[string]any{"dataset": "pts", "alpha": 1.0, "size": 60, "kernels": 32, "seed": 202}

	status, hdr, bodyA := postRaw(t, ts.URL+"/v1/sample", reqA)
	if status != http.StatusOK || hdr.Get("X-DBS-Cache") != "miss" {
		t.Fatalf("A: %d cache=%q: %s", status, hdr.Get("X-DBS-Cache"), bodyA)
	}
	if status, _, body := postRaw(t, ts.URL+"/v1/sample", reqB); status != http.StatusOK {
		t.Fatalf("B: %d: %s", status, body)
	}
	if st := srv.cache.Stats(); st.StaleItems == 0 {
		t.Fatalf("B did not evict A into the stale ring: %+v", st)
	}

	// Every scan now fails: the rebuild of A exhausts its retries and the
	// stale copy is served — same bytes the fresh artifact had.
	flaky.armed.Store(true)
	status, hdr, body := postRaw(t, ts.URL+"/v1/sample", reqA)
	if status != http.StatusOK {
		t.Fatalf("stale serve: %d: %s", status, body)
	}
	if got := hdr.Get("X-DBS-Cache"); got != "stale" {
		t.Errorf("X-DBS-Cache = %q, want stale", got)
	}
	if !bytes.Equal(body, bodyA) {
		t.Error("stale response differs from the original artifact's bytes")
	}
	if st := srv.cache.Stats(); st.StaleServed == 0 {
		t.Errorf("stale served not counted: %+v", st)
	}

	// Recovery: scans work again, the key rebuilds fresh and the result
	// is still the same bytes.
	flaky.armed.Store(false)
	status, hdr, body = postRaw(t, ts.URL+"/v1/sample", reqA)
	if status != http.StatusOK || hdr.Get("X-DBS-Cache") != "miss" {
		t.Fatalf("rebuild: %d cache=%q: %s", status, hdr.Get("X-DBS-Cache"), body)
	}
	if !bytes.Equal(body, bodyA) {
		t.Error("rebuilt response differs from the original bytes")
	}
	if err := srv.cache.invariants(); err != nil {
		t.Error(err)
	}
	checkLeaks()
}
