package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/trace"
)

// chaosReqs is the fixed request mix every chaos run replays: two
// distinct sample identities (with repeats, so cache interplay and
// stale serving are exercised), a cluster request sharing sample A's
// artifact, and an estimator-only outlier request.
var chaosReqs = []struct {
	name string
	path string
	body map[string]any
}{
	{"sampleA", "/v1/sample", map[string]any{"dataset": "pts", "alpha": 1.0, "size": 60, "kernels": 32, "seed": 101}},
	{"sampleB", "/v1/sample", map[string]any{"dataset": "pts", "alpha": 1.0, "size": 60, "kernels": 32, "seed": 202}},
	{"sampleA2", "/v1/sample", map[string]any{"dataset": "pts", "alpha": 1.0, "size": 60, "kernels": 32, "seed": 101}},
	{"cluster", "/v1/cluster", map[string]any{"dataset": "pts", "alpha": 1.0, "size": 60, "kernels": 32, "seed": 101, "k": 3}},
	{"outliers", "/v1/outliers", map[string]any{"dataset": "pts", "radius": 0.1, "p": 2, "kernels": 32, "seed": 101, "method": "estimate"}},
	{"sampleB2", "/v1/sample", map[string]any{"dataset": "pts", "alpha": 1.0, "size": 60, "kernels": 32, "seed": 202}},
}

func chaosConfig(inj *faults.Injector) Config {
	return Config{
		Parallelism: 2,
		// Small enough that the two sample identities evict each other,
		// so the stale ring and re-build paths stay hot.
		CacheBytes:   10 << 10,
		StaleOK:      true,
		Retry:        2,
		RetryBackoff: 200 * time.Microsecond,
		StageTimeout: 2 * time.Second,
		Deadline:     5 * time.Second,
		MaxInFlight:  3,
		MaxQueue:     2,
		Faults:       inj,
	}
}

func postRaw(t *testing.T, url string, body map[string]any) (int, http.Header, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// TestChaosServingInvariants replays the request mix against many seeded
// fault schedules (error, delay, partial read, cancellation injected into
// dataset scans and both build stages) and asserts the serving
// guarantees hold under every one of them:
//
//   - whenever a request succeeds, its bytes are identical to the
//     fault-free run — faults may fail requests, never corrupt them;
//   - failures only ever surface as 429, 503, or 504;
//   - admission slots are all released and the queue drains to zero;
//   - the cache's byte accounting and counter conservation hold exactly;
//   - no goroutine is leaked.
func TestChaosServingInvariants(t *testing.T) {
	checkLeaks := leakCheck(t)
	mem := dataset.MustInMemory(testPoints(600, 2, 11))

	// Reference run: same requests, no faults.
	ref := make([][]byte, len(chaosReqs))
	func() {
		srv := New(chaosConfig(nil))
		if err := srv.Registry().RegisterDataset("pts", mem); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		for i, rq := range chaosReqs {
			status, _, body := postRaw(t, ts.URL+rq.path, rq.body)
			if status != http.StatusOK {
				t.Fatalf("reference %s: %d: %s", rq.name, status, body)
			}
			ref[i] = body
		}
	}()

	seeds := 60
	if testing.Short() {
		seeds = 12
	}
	var injectedTotal, okTotal, failTotal int64
	for seed := 1; seed <= seeds; seed++ {
		inj := faults.New(faults.Config{
			Seed:     uint64(seed),
			PError:   0.15,
			PDelay:   0.10,
			PPartial: 0.10,
			PCancel:  0.05,
			MaxDelay: 500 * time.Microsecond,
		})
		srv := New(chaosConfig(inj))
		if err := srv.Registry().RegisterDataset("pts", faults.Wrap(mem, inj.Point("dataset"))); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())

		var wg sync.WaitGroup
		for i, rq := range chaosReqs {
			wg.Add(1)
			go func(i int, name, path string, body map[string]any) {
				defer wg.Done()
				status, _, data := postRaw(t, ts.URL+path, body)
				switch status {
				case http.StatusOK:
					atomic.AddInt64(&okTotal, 1)
					if !bytes.Equal(data, ref[i]) {
						t.Errorf("seed %d %s: 200 body differs from fault-free run", seed, name)
					}
				case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
					atomic.AddInt64(&failTotal, 1)
				default:
					t.Errorf("seed %d %s: unexpected status %d: %s", seed, name, status, data)
				}
			}(i, rq.name, rq.path, rq.body)
		}
		wg.Wait()
		ts.Close()

		if n := srv.adm.InFlight(); n != 0 {
			t.Errorf("seed %d: %d requests still in flight after drain", seed, n)
		}
		if n := srv.adm.Queued(); n != 0 {
			t.Errorf("seed %d: %d requests still queued after drain", seed, n)
		}
		if err := srv.cache.invariants(); err != nil {
			t.Errorf("seed %d: cache invariants: %v", seed, err)
		}
		injectedTotal += inj.Injected()
	}
	if injectedTotal == 0 {
		t.Error("no faults fired across any seed — the chaos run tested nothing")
	}
	if okTotal == 0 {
		t.Error("no request ever succeeded under faults — retry/stale machinery is dead")
	}
	t.Logf("chaos: %d seeds, %d faults injected, %d ok, %d shed/failed",
		seeds, injectedTotal, okTotal, failTotal)
	checkLeaks()
}

// faultEventsBySite counts "fault" span events per injection site across
// a set of retained trace snapshots.
func faultEventsBySite(snaps []trace.Snapshot) map[string]int64 {
	out := make(map[string]int64)
	for _, snap := range snaps {
		for _, e := range snap.Events {
			if e.Path != "fault" {
				continue
			}
			for _, f := range strings.Fields(e.Note) {
				if site, ok := strings.CutPrefix(f, "site="); ok {
					out[site]++
				}
			}
		}
	}
	return out
}

// TestChaosTraceAttribution replays the chaos mix with full trace
// retention and reconciles the injector's books against the traces:
// every fault fired at a build-stage check site appears as exactly one
// "fault" event in the request trace that suffered it (delays are
// recorded at the injection point, error kinds once by the retry
// layer), dataset-wrapper faults never exceed their fired-error count
// (the wrapper has no request context, so only errors that surface are
// attributable), every completed trace closes all its spans, and the
// trace ring stays within its bound on every schedule.
func TestChaosTraceAttribution(t *testing.T) {
	checkLeaks := leakCheck(t)
	mem := dataset.MustInMemory(testPoints(600, 2, 11))

	seeds := 60
	if testing.Short() {
		seeds = 12
	}
	var injectedTotal, attributedTotal int64
	for seed := 1; seed <= seeds; seed++ {
		inj := faults.New(faults.Config{
			Seed:     uint64(seed),
			PError:   0.15,
			PDelay:   0.10,
			PPartial: 0.10,
			PCancel:  0.05,
			MaxDelay: 500 * time.Microsecond,
		})
		cfg := chaosConfig(inj)
		cfg.TraceSample = 1
		cfg.TraceSeed = uint64(seed)
		cfg.TraceRing = 2 * len(chaosReqs)
		srv := New(cfg)
		dsPoint := inj.Point("dataset")
		if err := srv.Registry().RegisterDataset("pts", faults.Wrap(mem, dsPoint)); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		// Sequential replay: each request's faults land in its own trace,
		// so the per-site reconciliation below is exact.
		for _, rq := range chaosReqs {
			status, hdr, data := postRaw(t, ts.URL+rq.path, rq.body)
			switch status {
			case http.StatusOK, http.StatusTooManyRequests,
				http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			default:
				t.Errorf("seed %d %s: unexpected status %d: %s", seed, rq.name, status, data)
			}
			if hdr.Get(TraceHeader) == "" {
				t.Errorf("seed %d %s: missing %s header", seed, rq.name, TraceHeader)
			}
		}
		ts.Close()

		if srv.traces.Len() > srv.traces.Cap() {
			t.Fatalf("seed %d: trace ring len %d exceeds cap %d", seed, srv.traces.Len(), srv.traces.Cap())
		}
		snaps := srv.traces.Snapshots()
		if len(snaps) != len(chaosReqs) {
			t.Errorf("seed %d: retained %d traces, want %d (sample rate 1)", seed, len(snaps), len(chaosReqs))
		}
		for _, snap := range snaps {
			if snap.Orphans != 0 {
				t.Errorf("seed %d: trace %s has %d orphan spans", seed, snap.ID, snap.Orphans)
			}
			if snap.Dropped != 0 {
				t.Errorf("seed %d: trace %s dropped %d events", seed, snap.ID, snap.Dropped)
			}
		}
		events := faultEventsBySite(snaps)
		for _, p := range []*faults.Point{srv.pEst, srv.pSample} {
			if got, want := events[p.Site()], p.Fired(); got != want {
				t.Errorf("seed %d: site %s fired %d faults but traces record %d events",
					seed, p.Site(), want, got)
			}
		}
		if got := events[dsPoint.Site()]; got > dsPoint.FiredErrors() {
			t.Errorf("seed %d: dataset site recorded %d events for %d surfaced errors",
				seed, got, dsPoint.FiredErrors())
		}
		injectedTotal += inj.Injected()
		for _, n := range events {
			attributedTotal += n
		}
	}
	if injectedTotal == 0 {
		t.Error("no faults fired across any seed — the attribution run tested nothing")
	}
	if attributedTotal == 0 {
		t.Error("no fault was ever attributed to a trace — attribution machinery is dead")
	}
	t.Logf("chaos traces: %d seeds, %d faults injected, %d attributed in traces",
		seeds, injectedTotal, attributedTotal)
	checkLeaks()
}

// TestChaosTraceRingBounded replays the request mix many times against
// one fully-traced server and checks retention stays bounded: the
// rings never outgrow their caps while the admission total keeps
// counting, so long-lived servers cannot leak trace memory.
func TestChaosTraceRingBounded(t *testing.T) {
	checkLeaks := leakCheck(t)
	cfg := chaosConfig(nil)
	cfg.TraceSample = 1
	cfg.TraceSeed = 1
	cfg.TraceRing = 8
	cfg.SlowThreshold = time.Nanosecond // every request also lands in the slow ring
	srv := New(cfg)
	if err := srv.Registry().RegisterDataset("pts", dataset.MustInMemory(testPoints(600, 2, 11))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	schedules := 60
	if testing.Short() {
		schedules = 12
	}
	for i := 0; i < schedules; i++ {
		for _, rq := range chaosReqs {
			if status, _, data := postRaw(t, ts.URL+rq.path, rq.body); status != http.StatusOK {
				t.Fatalf("schedule %d %s: %d: %s", i, rq.name, status, data)
			}
		}
	}
	want := int64(schedules * len(chaosReqs))
	if got := srv.traces.Total(); got != want {
		t.Errorf("recent ring admitted %d traces, want %d", got, want)
	}
	for name, ring := range map[string]*trace.Ring{"recent": srv.traces, "slow": srv.slowTrace} {
		if ring.Len() > ring.Cap() || ring.Cap() != cfg.TraceRing {
			t.Errorf("%s ring len %d cap %d, want len <= cap == %d", name, ring.Len(), ring.Cap(), cfg.TraceRing)
		}
	}
	checkLeaks()
}

// flakyDataset wraps an in-memory dataset and fails every scan — on both
// the sequential and the block-range path, so the parallel fast path
// cannot sneak around it — while armed. The error reports Temporary(),
// so the retry layer classifies it transient.
type flakyDataset struct {
	*dataset.InMemory
	armed atomic.Bool
}

type flakyErr struct{}

func (flakyErr) Error() string   { return "flaky: transient io failure" }
func (flakyErr) Temporary() bool { return true }

func (f *flakyDataset) Scan(fn func(p geom.Point) error) error {
	if f.armed.Load() {
		return flakyErr{}
	}
	return f.InMemory.Scan(fn)
}

func (f *flakyDataset) ScanRange(start, end int, fn func(p geom.Point) error) error {
	if f.armed.Load() {
		return flakyErr{}
	}
	return f.InMemory.ScanRange(start, end, fn)
}

// Points shadows the promoted Sliceable method with a different signature
// so block scans take the ScanRange path (the fault site) instead of the
// zero-copy slice fast path.
func (f *flakyDataset) Points(struct{}) {}

// TestChaosStaleServe pins graceful degradation end to end: an artifact
// evicted from the primary cache is served from the stale ring — flagged
// in X-DBS-Cache, byte-identical to the original — when its rebuild
// fails, and a later successful rebuild takes over seamlessly.
func TestChaosStaleServe(t *testing.T) {
	checkLeaks := leakCheck(t)
	flaky := &flakyDataset{InMemory: dataset.MustInMemory(testPoints(600, 2, 11))}
	srv := New(Config{
		Parallelism: 2,
		// Fits one request's artifacts (estimator + sample ~7 KiB), so
		// the second identity evicts the first into the stale ring.
		CacheBytes:   8 << 10,
		StaleOK:      true,
		Retry:        1,
		RetryBackoff: 100 * time.Microsecond,
		Deadline:     5 * time.Second,
	})
	if err := srv.Registry().RegisterDataset("pts", flaky); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	reqA := map[string]any{"dataset": "pts", "alpha": 1.0, "size": 60, "kernels": 32, "seed": 101}
	reqB := map[string]any{"dataset": "pts", "alpha": 1.0, "size": 60, "kernels": 32, "seed": 202}

	status, hdr, bodyA := postRaw(t, ts.URL+"/v1/sample", reqA)
	if status != http.StatusOK || hdr.Get("X-DBS-Cache") != "miss" {
		t.Fatalf("A: %d cache=%q: %s", status, hdr.Get("X-DBS-Cache"), bodyA)
	}
	if status, _, body := postRaw(t, ts.URL+"/v1/sample", reqB); status != http.StatusOK {
		t.Fatalf("B: %d: %s", status, body)
	}
	if st := srv.cache.Stats(); st.StaleItems == 0 {
		t.Fatalf("B did not evict A into the stale ring: %+v", st)
	}

	// Every scan now fails: the rebuild of A exhausts its retries and the
	// stale copy is served — same bytes the fresh artifact had.
	flaky.armed.Store(true)
	status, hdr, body := postRaw(t, ts.URL+"/v1/sample", reqA)
	if status != http.StatusOK {
		t.Fatalf("stale serve: %d: %s", status, body)
	}
	if got := hdr.Get("X-DBS-Cache"); got != "stale" {
		t.Errorf("X-DBS-Cache = %q, want stale", got)
	}
	if !bytes.Equal(body, bodyA) {
		t.Error("stale response differs from the original artifact's bytes")
	}
	if st := srv.cache.Stats(); st.StaleServed == 0 {
		t.Errorf("stale served not counted: %+v", st)
	}

	// Recovery: scans work again, the key rebuilds fresh and the result
	// is still the same bytes.
	flaky.armed.Store(false)
	status, hdr, body = postRaw(t, ts.URL+"/v1/sample", reqA)
	if status != http.StatusOK || hdr.Get("X-DBS-Cache") != "miss" {
		t.Fatalf("rebuild: %d cache=%q: %s", status, hdr.Get("X-DBS-Cache"), body)
	}
	if !bytes.Equal(body, bodyA) {
		t.Error("rebuilt response differs from the original bytes")
	}
	if err := srv.cache.invariants(); err != nil {
		t.Error(err)
	}
	checkLeaks()
}
