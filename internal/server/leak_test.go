package server

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// leakCheck snapshots the goroutines running repro code and returns a
// function that fails the test if any new ones are still alive at the
// end (with a grace period for handlers winding down). Used by the
// chaos suite to prove no fault schedule strands a worker, a queued
// waiter, or a cache-build goroutine.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := reproStacks()
	return func() {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		var leaked []string
		for {
			leaked = leaked[:0]
			for s := range reproStacks() {
				if !before[s] {
					leaked = append(leaked, s)
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("%d goroutines leaked:\n%s", len(leaked), strings.Join(leaked, "\n\n"))
	}
}

// reproStacks returns the stacks of all live goroutines that run code
// from this module, keyed by their full trace (the set view filters
// pre-existing ones without tracking goroutine ids).
func reproStacks() map[string]bool {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	out := make(map[string]bool)
	for _, s := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(s, "repro/") && !strings.Contains(s, "reproStacks") {
			out[s] = true
		}
	}
	return out
}
