package server

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/kde"
)

// DiskTier is the persistent artifact tier under the in-memory LRU:
// estimator and sample artifacts (the DBSK1/DBSS1 codecs) are written
// to content-addressed files keyed on the same fingerprint|params|seed
// cache key the memory tier uses. A restarted server — or a fresh
// replica pointed at a shared directory — finds the artifact on disk
// and skips the dataset passes entirely (`X-DBS-Cache: disk`).
//
// Each artifact is one file named sha256(key) + ".dbsa":
//
//	offset 0: magic "DBSA1" (5 bytes)
//	then:     uint32 key length, the key bytes (collision guard: a hash
//	          match with a different key is treated as a miss)
//	then:     the codec payload, verbatim
//
// Writes go through a temp file + rename, so readers never observe a
// partial artifact and a crash mid-write leaves only a stray .tmp that
// the next prune sweeps. The tier is best-effort by design: every
// failure path (unreadable file, corrupt header, full disk) degrades to
// a cache miss, never to a request error.
type DiskTier struct {
	dir      string
	maxBytes int64

	pruneMu sync.Mutex

	hits   atomic.Int64
	misses atomic.Int64
	stores atomic.Int64
	errs   atomic.Int64
}

const diskMagic = "DBSA1"

// NewDiskTier opens (creating if needed) the artifact directory,
// bounded to maxBytes of stored artifacts (≤ 0 means unbounded).
func NewDiskTier(dir string, maxBytes int64) (*DiskTier, error) {
	if dir == "" {
		return nil, fmt.Errorf("server: disk tier needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: disk tier: %w", err)
	}
	return &DiskTier{dir: dir, maxBytes: maxBytes}, nil
}

// Dir returns the artifact directory.
func (d *DiskTier) Dir() string { return d.dir }

func (d *DiskTier) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:])+".dbsa")
}

// Load returns the payload stored under key, or ok=false on any miss
// or failure. A corrupt or mismatched file is deleted so the slot heals
// on the next Store.
func (d *DiskTier) Load(key string) (payload []byte, ok bool) {
	if d == nil {
		return nil, false
	}
	path := d.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			d.errs.Add(1)
		}
		d.misses.Add(1)
		return nil, false
	}
	hdr := len(diskMagic) + 4
	if len(data) < hdr || string(data[:len(diskMagic)]) != diskMagic {
		d.dropCorrupt(path)
		return nil, false
	}
	keyLen := int(binary.LittleEndian.Uint32(data[len(diskMagic):hdr]))
	if keyLen < 0 || len(data)-hdr < keyLen {
		d.dropCorrupt(path)
		return nil, false
	}
	if string(data[hdr:hdr+keyLen]) != key {
		// sha256 collision or a foreign file: not ours.
		d.misses.Add(1)
		return nil, false
	}
	d.hits.Add(1)
	return data[hdr+keyLen:], true
}

func (d *DiskTier) dropCorrupt(path string) {
	d.errs.Add(1)
	d.misses.Add(1)
	os.Remove(path)
}

// Store writes the payload under key (atomically, via temp + rename)
// and prunes the directory back under budget. Errors are counted and
// swallowed by the caller: a failed store only costs a future rebuild.
func (d *DiskTier) Store(key string, payload []byte) error {
	if d == nil {
		return nil
	}
	buf := make([]byte, 0, len(diskMagic)+4+len(key)+len(payload))
	buf = append(buf, diskMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = append(buf, payload...)

	tmp, err := os.CreateTemp(d.dir, "artifact-*.tmp")
	if err != nil {
		d.errs.Add(1)
		return err
	}
	_, werr := tmp.Write(buf)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		d.errs.Add(1)
		return werr
	}
	if err := os.Rename(tmp.Name(), d.path(key)); err != nil {
		os.Remove(tmp.Name())
		d.errs.Add(1)
		return err
	}
	d.stores.Add(1)
	d.prune()
	return nil
}

// prune deletes oldest-first (by modification time) until the directory
// fits the byte budget, and sweeps abandoned temp files as it goes.
func (d *DiskTier) prune() {
	if d.maxBytes <= 0 {
		return
	}
	d.pruneMu.Lock()
	defer d.pruneMu.Unlock()
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		d.errs.Add(1)
		return
	}
	type fileInfo struct {
		path  string
		size  int64
		mtime int64
	}
	var files []fileInfo
	var total int64
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		name := ent.Name()
		full := filepath.Join(d.dir, name)
		if filepath.Ext(name) == ".tmp" {
			os.Remove(full)
			continue
		}
		if filepath.Ext(name) != ".dbsa" {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		files = append(files, fileInfo{full, info.Size(), info.ModTime().UnixNano()})
		total += info.Size()
	}
	if total <= d.maxBytes {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime < files[j].mtime })
	for _, f := range files {
		if total <= d.maxBytes {
			break
		}
		if os.Remove(f.path) == nil {
			total -= f.size
		}
	}
}

// ---- server glue: typed load/store on the shared cache keys ----

// diskEstimator loads and reconstructs the estimator stored under the
// memory-cache key, re-attaching the server recorder. Any failure is a
// miss.
func (s *Server) diskEstimator(key string) (any, bool) {
	if s.disk == nil {
		return nil, false
	}
	payload, ok := s.disk.Load(key)
	if !ok {
		return nil, false
	}
	est, err := kde.UnmarshalEstimator(payload)
	if err != nil {
		s.disk.errs.Add(1)
		return nil, false
	}
	est.SetRecorder(s.rec)
	return est, true
}

// diskSample loads the sample artifact stored under the memory-cache
// key. Any failure is a miss.
func (s *Server) diskSample(key string) (any, bool) {
	if s.disk == nil {
		return nil, false
	}
	payload, ok := s.disk.Load(key)
	if !ok {
		return nil, false
	}
	sm, ns, err := core.UnmarshalSample(payload)
	if err != nil {
		s.disk.errs.Add(1)
		return nil, false
	}
	return &sampleArtifact{s: sm, ns: ns}, true
}

// diskStore persists a freshly built artifact under its cache key,
// best-effort: serialization or I/O failures cost a future rebuild,
// never the request.
func (s *Server) diskStore(key string, v any) {
	if s.disk == nil {
		return
	}
	var payload []byte
	var err error
	switch art := v.(type) {
	case *kde.Estimator:
		payload, err = art.MarshalBinary()
	case *sampleArtifact:
		payload, err = core.MarshalSample(art.s, art.ns)
	default:
		return
	}
	if err != nil {
		s.disk.errs.Add(1)
		return
	}
	s.disk.Store(key, payload)
}

// DiskTierStats is the /healthz snapshot of the disk tier.
type DiskTierStats struct {
	Dir    string `json:"dir"`
	Files  int    `json:"files"`
	Bytes  int64  `json:"bytes"`
	Hits   int64  `json:"hits"`
	Misses int64  `json:"misses"`
	Stores int64  `json:"stores"`
	Errors int64  `json:"errors,omitempty"`
}

// Stats scans the directory for current occupancy and reports the
// lifetime counters.
func (d *DiskTier) Stats() DiskTierStats {
	st := DiskTierStats{
		Dir:    d.dir,
		Hits:   d.hits.Load(),
		Misses: d.misses.Load(),
		Stores: d.stores.Load(),
		Errors: d.errs.Load(),
	}
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return st
	}
	for _, ent := range entries {
		if ent.IsDir() || filepath.Ext(ent.Name()) != ".dbsa" {
			continue
		}
		if info, err := ent.Info(); err == nil {
			st.Files++
			st.Bytes += info.Size()
		}
	}
	return st
}
