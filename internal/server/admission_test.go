package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestAdmissionBounds(t *testing.T) {
	a := NewAdmission(2, 0)
	ctx := context.Background()
	rel1, err := a.Enter(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := a.Enter(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.InFlight(); got != 2 {
		t.Errorf("in flight = %d, want 2", got)
	}
	// Slots and queue full: immediate shed.
	if _, err := a.Enter(ctx); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	if a.Shed() != 1 {
		t.Errorf("shed = %d, want 1", a.Shed())
	}
	rel1()
	rel2()
	if got := a.InFlight(); got != 0 {
		t.Errorf("in flight after release = %d, want 0", got)
	}
	rel3, err := a.Enter(ctx)
	if err != nil {
		t.Fatalf("enter after release: %v", err)
	}
	rel3()
}

func TestAdmissionQueueAdmitsWhenSlotFrees(t *testing.T) {
	a := NewAdmission(1, 1)
	rel, err := a.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		rel2, err := a.Enter(context.Background())
		if err == nil {
			rel2()
		}
		got <- err
	}()
	// Give the goroutine time to enter the queue, then free the slot.
	for a.Queued() == 0 {
		time.Sleep(time.Millisecond)
	}
	rel()
	if err := <-got; err != nil {
		t.Fatalf("queued request rejected: %v", err)
	}
}

func TestAdmissionDeadlineWhileQueued(t *testing.T) {
	a := NewAdmission(1, 1)
	rel, err := a.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err = a.Enter(ctx)
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v does not carry the deadline cause", err)
	}
	if a.Queued() != 0 {
		t.Errorf("queued = %d after timeout, want 0", a.Queued())
	}
}

func TestAdmissionDraining(t *testing.T) {
	a := NewAdmission(4, 4)
	rel, err := a.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	a.StartDraining()
	if !a.Draining() {
		t.Error("Draining() = false after StartDraining")
	}
	if _, err := a.Enter(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining", err)
	}
	// Admitted work finishes normally during the drain.
	rel()
	if a.InFlight() != 0 {
		t.Errorf("in flight = %d, want 0", a.InFlight())
	}
}
