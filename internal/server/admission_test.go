package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestAdmissionBounds(t *testing.T) {
	a := NewAdmission(2, 0)
	ctx := context.Background()
	rel1, err := a.Enter(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := a.Enter(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.InFlight(); got != 2 {
		t.Errorf("in flight = %d, want 2", got)
	}
	// Slots and queue full: immediate shed.
	if _, err := a.Enter(ctx); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	if a.Shed() != 1 {
		t.Errorf("shed = %d, want 1", a.Shed())
	}
	rel1()
	rel2()
	if got := a.InFlight(); got != 0 {
		t.Errorf("in flight after release = %d, want 0", got)
	}
	rel3, err := a.Enter(ctx)
	if err != nil {
		t.Fatalf("enter after release: %v", err)
	}
	rel3()
}

func TestAdmissionQueueAdmitsWhenSlotFrees(t *testing.T) {
	a := NewAdmission(1, 1)
	rel, err := a.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		rel2, err := a.Enter(context.Background())
		if err == nil {
			rel2()
		}
		got <- err
	}()
	// Give the goroutine time to enter the queue, then free the slot.
	for a.Queued() == 0 {
		time.Sleep(time.Millisecond)
	}
	rel()
	if err := <-got; err != nil {
		t.Fatalf("queued request rejected: %v", err)
	}
}

func TestAdmissionDeadlineWhileQueued(t *testing.T) {
	a := NewAdmission(1, 1)
	rel, err := a.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err = a.Enter(ctx)
	if !errors.Is(err, ErrQueueExpired) {
		t.Fatalf("err = %v, want ErrQueueExpired", err)
	}
	if errors.Is(err, ErrSaturated) {
		t.Errorf("err = %v conflates queue expiry with saturation", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v does not carry the deadline cause", err)
	}
	if a.Queued() != 0 {
		t.Errorf("queued = %d after timeout, want 0", a.Queued())
	}
	if full, exp := a.ShedQueueFull(), a.ShedExpired(); full != 0 || exp != 1 {
		t.Errorf("shed split = (full %d, expired %d), want (0, 1)", full, exp)
	}
	if a.Shed() != 1 {
		t.Errorf("shed total = %d, want 1", a.Shed())
	}
}

// TestAdmissionShedCountersSplit pins the two rejection modes to their
// own counters: queue-full arrivals land in ShedQueueFull, queued
// requests whose deadline passes land in ShedExpired.
func TestAdmissionShedCountersSplit(t *testing.T) {
	a := NewAdmission(1, 1)
	rel, err := a.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	// Fill the queue, then overflow it.
	qctx, qcancel := context.WithCancel(context.Background())
	qDone := make(chan error, 1)
	go func() {
		_, werr := a.Enter(qctx)
		qDone <- werr
	}()
	for a.Queued() == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, err := a.Enter(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("overflow err = %v, want ErrSaturated", err)
	}
	// Expire the queued request.
	qcancel()
	if werr := <-qDone; !errors.Is(werr, ErrQueueExpired) {
		t.Fatalf("queued err = %v, want ErrQueueExpired", werr)
	}
	if full, exp := a.ShedQueueFull(), a.ShedExpired(); full != 1 || exp != 1 {
		t.Errorf("shed split = (full %d, expired %d), want (1, 1)", full, exp)
	}
	if a.Shed() != 2 {
		t.Errorf("shed total = %d, want 2", a.Shed())
	}
}

// TestAdmissionFIFOOrder queues several waiters and checks that freed
// slots are granted in arrival order.
func TestAdmissionFIFOOrder(t *testing.T) {
	a := NewAdmission(1, 4)
	hold, err := a.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	order := make(chan int, n)
	for i := 0; i < n; i++ {
		i := i
		gc := newGateCtx()
		go func() {
			rel, werr := a.Enter(gc)
			if werr != nil {
				order <- -1
				return
			}
			order <- i
			rel()
		}()
		// The gate context pins each waiter's enqueue before the next
		// goroutine starts, making arrival order deterministic.
		<-gc.entered
		close(gc.gate)
	}
	hold()
	for want := 0; want < n; want++ {
		if got := <-order; got != want {
			t.Fatalf("admission order: got %d, want %d", got, want)
		}
	}
	if a.InFlight() != 0 || a.Queued() != 0 {
		t.Errorf("in flight %d queued %d after drain, want 0, 0", a.InFlight(), a.Queued())
	}
}

func TestAdmissionDraining(t *testing.T) {
	a := NewAdmission(4, 4)
	rel, err := a.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	a.StartDraining()
	if !a.Draining() {
		t.Error("Draining() = false after StartDraining")
	}
	if _, err := a.Enter(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining", err)
	}
	// Admitted work finishes normally during the drain.
	rel()
	if a.InFlight() != 0 {
		t.Errorf("in flight = %d, want 0", a.InFlight())
	}
}
