package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
)

// lockedBuffer is a concurrency-safe log sink: the access logger holds
// its own mutex around writes, but the test reads the buffer from the
// main goroutine, so the sink needs its own lock for the race detector
// to vouch for the read side too.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Lines() [][]byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	raw := bytes.TrimSuffix(b.buf.Bytes(), []byte("\n"))
	if len(raw) == 0 {
		return nil
	}
	return bytes.Split(append([]byte(nil), raw...), []byte("\n"))
}

// TestAccessLogLineAtomicity interleaves concurrent requests — mixed
// tenants, successes and 400s — and asserts every emitted line is whole:
// each parses as a standalone JSON access record with its route and
// status intact. Run under -race this also vouches for the logger's
// locking discipline.
func TestAccessLogLineAtomicity(t *testing.T) {
	sink := &lockedBuffer{}
	srv, ts, _ := newTestServer(t, Config{
		Parallelism: 2, MaxInFlight: 4, MaxQueue: 64, AccessLog: sink,
		Tenants: map[string]TenantPolicy{"gold": {Weight: 4}, "bronze": {Weight: 1}},
	}, 800)

	const n = 48
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := []string{"", "gold", "bronze"}[i%3]
			body := map[string]any{
				"dataset": "pts", "alpha": 1.0, "size": 50, "kernels": 32,
				"seed": 1 + i%4,
			}
			if i%8 == 7 {
				body["size"] = 0 // 400: error paths log too
			}
			postTenant(t, ts.URL+"/v1/sample", tenant, body)
		}(i)
	}
	wg.Wait()

	// finishRequest runs in a defer that can trail the client's read of
	// the response; wait for all lines to land.
	waitFor(t, func() bool { return len(sink.Lines()) >= n })

	lines := sink.Lines()
	if len(lines) != n {
		t.Fatalf("access log has %d lines, want %d", len(lines), n)
	}
	tenants := map[string]int{}
	for i, line := range lines {
		var rec accessRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("line %d is not valid JSON (%v): %q", i, err, line)
		}
		if rec.Route != "/v1/sample" {
			t.Errorf("line %d route = %q", i, rec.Route)
		}
		if rec.Status != http.StatusOK && rec.Status != http.StatusBadRequest {
			t.Errorf("line %d status = %d, want 200 or 400", i, rec.Status)
		}
		if rec.Time == "" || rec.TraceID == "" {
			t.Errorf("line %d missing time or trace id: %+v", i, rec)
		}
		tenants[rec.Tenant]++
	}
	// The default tenant is omitted from lines; tagged tenants appear.
	if tenants["gold"] != n/3 || tenants["bronze"] != n/3 || tenants[""] != n/3 {
		t.Errorf("tenant split = %v, want %d each for gold/bronze/untagged", tenants, n/3)
	}
	if d := srv.accessLog.dropped.Load(); d != 0 {
		t.Errorf("access logger dropped %d lines", d)
	}
}
