package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheHitMissAccounting(t *testing.T) {
	c := NewCache(1 << 20)
	builds := 0
	build := func() (any, int64, error) { builds++; return "artifact", 100, nil }

	v, hit, err := c.GetOrBuild("k", build)
	if err != nil || hit || v != "artifact" {
		t.Fatalf("first: v=%v hit=%v err=%v", v, hit, err)
	}
	v, hit, err = c.GetOrBuild("k", build)
	if err != nil || !hit || v != "artifact" {
		t.Fatalf("second: v=%v hit=%v err=%v", v, hit, err)
	}
	if builds != 1 {
		t.Errorf("builds = %d, want 1", builds)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Bytes != 100 || st.Items != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(250)
	mk := func(key string) {
		t.Helper()
		if _, _, err := c.GetOrBuild(key, func() (any, int64, error) { return key, 100, nil }); err != nil {
			t.Fatal(err)
		}
	}
	mk("a")
	mk("b")
	// Touch "a" so "b" is the LRU victim when "c" overflows the budget.
	if _, hit, _ := c.GetOrBuild("a", nil); !hit {
		t.Fatal("a should be cached")
	}
	mk("c")
	st := c.Stats()
	if st.Evictions != 1 || st.Bytes != 200 || st.Items != 2 {
		t.Fatalf("stats after eviction = %+v", st)
	}
	if _, hit, _ := c.GetOrBuild("a", nil); !hit {
		t.Error("recently used entry a was evicted")
	}
	if _, hit, _ := c.GetOrBuild("b", func() (any, int64, error) { return "b", 100, nil }); hit {
		t.Error("LRU entry b survived eviction")
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache(1 << 20)
	var builds atomic.Int32
	gate := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	hits := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, hit, err := c.GetOrBuild("k", func() (any, int64, error) {
				builds.Add(1)
				<-gate
				return 42, 8, nil
			})
			if err != nil || v != 42 {
				t.Errorf("goroutine %d: v=%v err=%v", i, v, err)
			}
			hits[i] = hit
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Errorf("%d builds for one key, want 1 (singleflight)", n)
	}
	nhits := 0
	for _, h := range hits {
		if h {
			nhits++
		}
	}
	if nhits != waiters-1 {
		t.Errorf("%d hits, want %d (all but the builder)", nhits, waiters-1)
	}
}

func TestCacheBuildErrorNotCached(t *testing.T) {
	c := NewCache(1 << 20)
	boom := errors.New("boom")
	if _, _, err := c.GetOrBuild("k", func() (any, int64, error) { return nil, 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failed build must not poison the key: the next call retries.
	v, hit, err := c.GetOrBuild("k", func() (any, int64, error) { return "ok", 8, nil })
	if err != nil || hit || v != "ok" {
		t.Fatalf("retry: v=%v hit=%v err=%v", v, hit, err)
	}
	if st := c.Stats(); st.Items != 1 || st.Bytes != 8 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheZeroBudgetStoresNothing(t *testing.T) {
	c := NewCache(0)
	builds := 0
	for i := 0; i < 3; i++ {
		v, hit, err := c.GetOrBuild("k", func() (any, int64, error) { builds++; return "v", 100, nil })
		if err != nil || hit || v != "v" {
			t.Fatalf("iter %d: v=%v hit=%v err=%v", i, v, hit, err)
		}
	}
	if builds != 3 {
		t.Errorf("builds = %d, want 3 (storage disabled)", builds)
	}
	if st := c.Stats(); st.Bytes != 0 || st.Items != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheConcurrentDistinctKeys(t *testing.T) {
	c := NewCache(1 << 10)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i%8)
			if _, _, err := c.GetOrBuild(key, func() (any, int64, error) { return i, 64, nil }); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes > 1<<10 {
		t.Errorf("budget exceeded: %+v", st)
	}
}
