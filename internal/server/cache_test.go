package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheHitMissAccounting(t *testing.T) {
	c := NewCache(1<<20, 0)
	builds := 0
	build := func() (any, int64, error) { builds++; return "artifact", 100, nil }

	v, out, err := c.GetOrBuild("k", build)
	if err != nil || out != OutcomeMiss || v != "artifact" {
		t.Fatalf("first: v=%v out=%v err=%v", v, out, err)
	}
	v, out, err = c.GetOrBuild("k", build)
	if err != nil || out != OutcomeHit || v != "artifact" {
		t.Fatalf("second: v=%v out=%v err=%v", v, out, err)
	}
	if builds != 1 {
		t.Errorf("builds = %d, want 1", builds)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Bytes != 100 || st.Items != 1 {
		t.Errorf("stats = %+v", st)
	}
	if err := c.invariants(); err != nil {
		t.Error(err)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(250, 0)
	mk := func(key string) {
		t.Helper()
		if _, _, err := c.GetOrBuild(key, func() (any, int64, error) { return key, 100, nil }); err != nil {
			t.Fatal(err)
		}
	}
	mk("a")
	mk("b")
	// Touch "a" so "b" is the LRU victim when "c" overflows the budget.
	if _, out, _ := c.GetOrBuild("a", nil); out != OutcomeHit {
		t.Fatal("a should be cached")
	}
	mk("c")
	st := c.Stats()
	if st.Evictions != 1 || st.Bytes != 200 || st.Items != 2 {
		t.Fatalf("stats after eviction = %+v", st)
	}
	if _, out, _ := c.GetOrBuild("a", nil); out != OutcomeHit {
		t.Error("recently used entry a was evicted")
	}
	if _, out, _ := c.GetOrBuild("b", func() (any, int64, error) { return "b", 100, nil }); out == OutcomeHit {
		t.Error("LRU entry b survived eviction")
	}
	if err := c.invariants(); err != nil {
		t.Error(err)
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache(1<<20, 0)
	var builds atomic.Int32
	gate := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	outs := make([]Outcome, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, out, err := c.GetOrBuild("k", func() (any, int64, error) {
				builds.Add(1)
				<-gate
				return 42, 8, nil
			})
			if err != nil || v != 42 {
				t.Errorf("goroutine %d: v=%v err=%v", i, v, err)
			}
			outs[i] = out
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Errorf("%d builds for one key, want 1 (singleflight)", n)
	}
	nhits := 0
	for _, o := range outs {
		if o == OutcomeHit {
			nhits++
		}
	}
	if nhits != waiters-1 {
		t.Errorf("%d hits, want %d (all but the builder)", nhits, waiters-1)
	}
	if err := c.invariants(); err != nil {
		t.Error(err)
	}
}

func TestCacheBuildErrorNotCached(t *testing.T) {
	c := NewCache(1<<20, 0)
	boom := errors.New("boom")
	if _, _, err := c.GetOrBuild("k", func() (any, int64, error) { return nil, 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failed build must not poison the key: the next call retries.
	v, out, err := c.GetOrBuild("k", func() (any, int64, error) { return "ok", 8, nil })
	if err != nil || out != OutcomeMiss || v != "ok" {
		t.Fatalf("retry: v=%v out=%v err=%v", v, out, err)
	}
	if st := c.Stats(); st.Items != 1 || st.Bytes != 8 {
		t.Errorf("stats = %+v", st)
	}
	if err := c.invariants(); err != nil {
		t.Error(err)
	}
}

// TestCacheCounterConservation is the regression test for the counter
// drift bug: every lookup must land in exactly one of hits, misses, or
// stale-served — including waiters that join an in-flight build whose
// build fails, which the original implementation counted as nothing.
func TestCacheCounterConservation(t *testing.T) {
	c := NewCache(1<<20, 0)
	boom := errors.New("boom")
	gate := make(chan struct{})
	entered := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _ = c.GetOrBuild("k", func() (any, int64, error) {
			close(entered)
			<-gate
			return nil, 0, boom
		})
	}()
	<-entered
	// Join the in-flight build from several waiters; all of them will
	// see the failure. A waiter's build function must be callable: the
	// lookups poll below races with the map lookup (Lookups increments
	// first), so a waiter that arrives after the failed build's cleanup
	// removed the key legally takes the build path itself — it must then
	// produce the same miss/boom outcome, not dereference nil.
	const waiters = 4
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lateBuild := func() (any, int64, error) { return nil, 0, boom }
			if _, out, err := c.GetOrBuild("k", lateBuild); !errors.Is(err, boom) || out != OutcomeMiss {
				t.Errorf("waiter: out=%v err=%v, want miss/boom", out, err)
			}
		}()
	}
	// Let the waiters pile onto the entry, then fail the build. The
	// sleep-free way would need cache internals; polling Lookups is
	// enough since joining increments it before blocking.
	for c.Stats().Lookups < waiters+1 {
	}
	close(gate)
	wg.Wait()

	st := c.Stats()
	if st.Lookups != waiters+1 {
		t.Fatalf("lookups = %d, want %d", st.Lookups, waiters+1)
	}
	if got := st.Hits + st.Misses + st.StaleServed; got != st.Lookups {
		t.Errorf("hits(%d) + misses(%d) + stale(%d) = %d, want %d lookups",
			st.Hits, st.Misses, st.StaleServed, got, st.Lookups)
	}
	if err := c.invariants(); err != nil {
		t.Error(err)
	}
}

// TestCacheOversizeBuildNotAdmitted is the regression test for the
// oversize admit-then-evict bug: an artifact larger than the whole
// budget was admitted, drained every other entry via the eviction loop,
// and counted a bogus eviction for itself.
func TestCacheOversizeBuildNotAdmitted(t *testing.T) {
	c := NewCache(250, 0)
	if _, _, err := c.GetOrBuild("small", func() (any, int64, error) { return "s", 100, nil }); err != nil {
		t.Fatal(err)
	}
	v, out, err := c.GetOrBuild("huge", func() (any, int64, error) { return "h", 1000, nil })
	if err != nil || out != OutcomeMiss || v != "h" {
		t.Fatalf("huge: v=%v out=%v err=%v", v, out, err)
	}
	st := c.Stats()
	if st.Evictions != 0 {
		t.Errorf("evictions = %d, want 0 — the oversize artifact was never reusable", st.Evictions)
	}
	if st.Bytes != 100 || st.Items != 1 {
		t.Errorf("stats = %+v, want the small entry untouched", st)
	}
	if _, out, _ := c.GetOrBuild("small", nil); out != OutcomeHit {
		t.Error("oversize build evicted an unrelated cached entry")
	}
	if err := c.invariants(); err != nil {
		t.Error(err)
	}
}

// TestCacheStaleServeAfterEviction covers graceful degradation: an
// evicted artifact moves to the stale ring and is served — flagged
// stale, byte-identical — when its rebuild fails; a successful rebuild
// replaces it and drops the stale copy.
func TestCacheStaleServeAfterEviction(t *testing.T) {
	c := NewCache(150, 150)
	boom := errors.New("boom")
	if _, _, err := c.GetOrBuild("a", func() (any, int64, error) { return "a1", 100, nil }); err != nil {
		t.Fatal(err)
	}
	// Evict "a" by inserting "b".
	if _, _, err := c.GetOrBuild("b", func() (any, int64, error) { return "b1", 100, nil }); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Evictions != 1 || st.StaleItems != 1 || st.StaleBytes != 100 {
		t.Fatalf("stats after eviction = %+v", st)
	}
	// Rebuild of "a" fails: the stale copy is served, err suppressed.
	v, out, err := c.GetOrBuild("a", func() (any, int64, error) { return nil, 0, boom })
	if err != nil || out != OutcomeStale || v != "a1" {
		t.Fatalf("stale serve: v=%v out=%v err=%v", v, out, err)
	}
	// The key stays rebuildable: a later successful build wins and
	// drops the stale copy.
	v, out, err = c.GetOrBuild("a", func() (any, int64, error) { return "a2", 100, nil })
	if err != nil || out != OutcomeMiss || v != "a2" {
		t.Fatalf("rebuild: v=%v out=%v err=%v", v, out, err)
	}
	st := c.Stats()
	if st.StaleServed != 1 {
		t.Errorf("stale served = %d, want 1", st.StaleServed)
	}
	// "a2" displaced "b"; b's copy now sits in the stale ring, a's is gone.
	if _, out, _ := c.GetOrBuild("a", nil); out != OutcomeHit {
		t.Error("fresh rebuild of a not cached")
	}
	if got := st.Hits + st.Misses + st.StaleServed; got != st.Lookups {
		t.Errorf("conservation: %d + %d + %d != %d", st.Hits, st.Misses, st.StaleServed, st.Lookups)
	}
	if err := c.invariants(); err != nil {
		t.Error(err)
	}
}

func TestCacheStaleDisabledFailsThrough(t *testing.T) {
	c := NewCache(150, 0)
	boom := errors.New("boom")
	if _, _, err := c.GetOrBuild("a", func() (any, int64, error) { return "a1", 100, nil }); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.GetOrBuild("b", func() (any, int64, error) { return "b1", 100, nil }); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.GetOrBuild("a", func() (any, int64, error) { return nil, 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom (stale fallback disabled)", err)
	}
	if st := c.Stats(); st.StaleServed != 0 || st.StaleItems != 0 {
		t.Errorf("stats = %+v, want no stale activity", st)
	}
	if err := c.invariants(); err != nil {
		t.Error(err)
	}
}

func TestCacheZeroBudgetStoresNothing(t *testing.T) {
	c := NewCache(0, 0)
	builds := 0
	for i := 0; i < 3; i++ {
		v, out, err := c.GetOrBuild("k", func() (any, int64, error) { builds++; return "v", 100, nil })
		if err != nil || out != OutcomeMiss || v != "v" {
			t.Fatalf("iter %d: v=%v out=%v err=%v", i, v, out, err)
		}
	}
	if builds != 3 {
		t.Errorf("builds = %d, want 3 (storage disabled)", builds)
	}
	if st := c.Stats(); st.Bytes != 0 || st.Items != 0 {
		t.Errorf("stats = %+v", st)
	}
	if err := c.invariants(); err != nil {
		t.Error(err)
	}
}

func TestCacheConcurrentDistinctKeys(t *testing.T) {
	c := NewCache(1<<10, 0)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i%8)
			if _, _, err := c.GetOrBuild(key, func() (any, int64, error) { return i, 64, nil }); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes > 1<<10 {
		t.Errorf("budget exceeded: %+v", st)
	}
	if err := c.invariants(); err != nil {
		t.Error(err)
	}
}
