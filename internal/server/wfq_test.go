package server

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// enqueueTenant starts a waiter for tenant held at the queued-but-not-
// yet-waiting instant (see gateCtx), then releases it into the normal
// wait. The returned channel yields the waiter's outcome; release is
// called automatically on success after done is signalled.
func enqueueTenant(t *testing.T, a *Admission, tenant string, done chan string) {
	t.Helper()
	gc := newGateCtx()
	go func() {
		rel, _, werr := a.EnterTenant(gc, tenant)
		if werr != nil {
			done <- "err:" + tenant
			return
		}
		done <- tenant
		rel()
	}()
	<-gc.entered // the waiter is now in its tenant queue
	close(gc.gate)
}

// TestWFQHeavyTenantCannotStarveLightWaiter is the per-tenant version of
// the PR 4 starvation regression: a light tenant's queued waiter must be
// granted the next slot even while a heavy tenant keeps arriving. Under
// SCFQ the heavy tenant's tags strictly increase past the light waiter's
// fixed tag, so the arrival stream can never push it back.
func TestWFQHeavyTenantCannotStarveLightWaiter(t *testing.T) {
	a := NewTenantAdmission(1, 16, nil)
	hold, _, err := a.EnterTenant(context.Background(), "heavy")
	if err != nil {
		t.Fatal(err)
	}

	order := make(chan string, 16)
	enqueueTenant(t, a, "light", order)

	// A burst of heavy arrivals lands behind the light waiter.
	for i := 0; i < 6; i++ {
		enqueueTenant(t, a, "heavy", order)
	}
	if got := a.Queued(); got != 7 {
		t.Fatalf("queued = %d, want 7", got)
	}

	hold()
	if first := <-order; first != "light" {
		t.Fatalf("first grant went to %q, want the queued light waiter", first)
	}
	for i := 0; i < 6; i++ {
		if got := <-order; got != "heavy" {
			t.Fatalf("grant %d = %q, want heavy", i+2, got)
		}
	}
	if a.InFlight() != 0 || a.Queued() != 0 {
		t.Errorf("in flight %d queued %d after drain, want 0, 0", a.InFlight(), a.Queued())
	}
}

// TestWFQWeightedShare pins the proportional-share schedule: with tenant
// gold at weight 3 and bronze at weight 1 both backlogged on one slot,
// every prefix of the grant order gives gold ≈ 3/4 of the slots.
func TestWFQWeightedShare(t *testing.T) {
	pol := map[string]TenantPolicy{
		"gold":   {Weight: 3},
		"bronze": {Weight: 1},
	}
	a := NewTenantAdmission(1, 64, pol)
	hold, _, err := a.EnterTenant(context.Background(), "gold")
	if err != nil {
		t.Fatal(err)
	}

	const nGold, nBronze = 12, 4
	order := make(chan string, nGold+nBronze)
	for i := 0; i < nBronze; i++ {
		enqueueTenant(t, a, "gold", order)
		enqueueTenant(t, a, "gold", order)
		enqueueTenant(t, a, "gold", order)
		enqueueTenant(t, a, "bronze", order)
	}

	hold()
	gold, bronze := 0, 0
	for k := 1; k <= nGold+nBronze; k++ {
		switch got := <-order; got {
		case "gold":
			gold++
		case "bronze":
			bronze++
		default:
			t.Fatalf("grant %d: unexpected outcome %q", k, got)
		}
		// Weighted fairness as a prefix property: gold's share of the
		// first k grants stays within one virtual-time round of 3/4·k.
		want := 3.0 * float64(k) / 4.0
		if diff := float64(gold) - want; diff > 3 || diff < -3 {
			t.Fatalf("after %d grants gold has %d slots, want %.1f±3", k, gold, want)
		}
	}
	if gold != nGold || bronze != nBronze {
		t.Fatalf("grants = (gold %d, bronze %d), want (%d, %d)", gold, bronze, nGold, nBronze)
	}
}

// TestWFQIdleTenantAccruesNoCredit: a tenant that was idle while others
// ran does not get a burst of back-to-back slots when it wakes — its
// first tag starts at current virtual time, not at its stale last tag.
func TestWFQIdleTenantAccruesNoCredit(t *testing.T) {
	a := NewTenantAdmission(1, 16, nil)

	// Tenant b runs several requests while a is idle, advancing vtime.
	for i := 0; i < 5; i++ {
		rel, _, err := a.EnterTenant(context.Background(), "b")
		if err != nil {
			t.Fatal(err)
		}
		rel()
	}

	// Now both tenants backlog on a held slot; they must alternate.
	hold, _, err := a.EnterTenant(context.Background(), "b")
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan string, 8)
	for i := 0; i < 4; i++ {
		enqueueTenant(t, a, "a", order)
	}
	for i := 0; i < 4; i++ {
		enqueueTenant(t, a, "b", order)
	}
	hold()
	prefixA := 0
	for k := 1; k <= 8; k++ {
		if got := <-order; got == "a" {
			prefixA++
		}
		if k == 4 && prefixA == 4 {
			t.Fatalf("tenant a drained its whole backlog before b got a slot: idle credit leaked")
		}
	}
}

// TestWFQPerTenantInFlightCap: a tenant at its in-flight quota queues
// even while global slots are free, and other tenants keep running.
func TestWFQPerTenantInFlightCap(t *testing.T) {
	pol := map[string]TenantPolicy{"capped": {MaxInFlight: 1}}
	a := NewTenantAdmission(4, 8, pol)

	rel1, _, err := a.EnterTenant(context.Background(), "capped")
	if err != nil {
		t.Fatal(err)
	}
	// Second capped request must queue despite 3 free global slots.
	got := make(chan error, 1)
	go func() {
		rel, queued, werr := a.EnterTenant(context.Background(), "capped")
		if werr == nil {
			if !queued {
				werr = errors.New("admitted without queueing past the tenant cap")
			}
			rel()
		}
		got <- werr
	}()
	for a.Queued() == 0 {
		time.Sleep(time.Millisecond)
	}

	// An uncapped tenant is unaffected by capped's backlog.
	rel2, queued, err := a.EnterTenant(context.Background(), "other")
	if err != nil || queued {
		t.Fatalf("other tenant: err=%v queued=%v, want immediate admit", err, queued)
	}
	rel2()

	rel1() // frees capped's quota; the queued request is granted
	if err := <-got; err != nil {
		t.Fatalf("queued capped request: %v", err)
	}
	if a.InFlight() != 0 || a.Queued() != 0 {
		t.Errorf("in flight %d queued %d after drain, want 0, 0", a.InFlight(), a.Queued())
	}
}

// TestWFQPerTenantQueueCap: a tenant over its own queue quota sheds its
// arrivals without consuming shared queue space.
func TestWFQPerTenantQueueCap(t *testing.T) {
	pol := map[string]TenantPolicy{"capped": {MaxQueue: 1}}
	a := NewTenantAdmission(1, 8, pol)
	hold, _, err := a.EnterTenant(context.Background(), "other")
	if err != nil {
		t.Fatal(err)
	}

	order := make(chan string, 4)
	enqueueTenant(t, a, "capped", order)
	_, _, err = a.EnterTenant(context.Background(), "capped")
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("over-quota arrival err = %v, want ErrSaturated", err)
	}
	if !strings.Contains(err.Error(), `"capped"`) {
		t.Errorf("err %q does not name the quota'd tenant", err)
	}
	// The shared queue still has room for everyone else.
	enqueueTenant(t, a, "other", order)
	if got := a.Queued(); got != 2 {
		t.Fatalf("queued = %d, want 2 (capped's quota shed must not consume shared space)", got)
	}
	hold()
	for i := 0; i < 2; i++ {
		if got := <-order; strings.HasPrefix(got, "err:") {
			t.Fatalf("queued waiter rejected: %s", got)
		}
	}
	for _, s := range a.TenantStats() {
		if s.Tenant == "capped" && s.ShedQueueFull != 1 {
			t.Errorf("capped ShedQueueFull = %d, want 1", s.ShedQueueFull)
		}
	}
}

// TestWFQPriorityPreemption: with the shared queue full, an arriving
// high-priority request preempts the queued low-priority waiter, which
// is shed with ErrPreempted; the reverse direction sheds the arrival.
func TestWFQPriorityPreemption(t *testing.T) {
	pol := map[string]TenantPolicy{
		"gold":   {Priority: PriorityHigh},
		"bronze": {Priority: PriorityLow},
	}
	a := NewTenantAdmission(1, 1, pol)
	hold, _, err := a.EnterTenant(context.Background(), "gold")
	if err != nil {
		t.Fatal(err)
	}

	bronzeErr := make(chan error, 1)
	gc := newGateCtx()
	go func() {
		rel, _, werr := a.EnterTenant(gc, "bronze")
		if werr == nil {
			rel()
		}
		bronzeErr <- werr
	}()
	<-gc.entered
	close(gc.gate)
	for a.Queued() == 0 {
		time.Sleep(time.Millisecond)
	}

	// Queue is full (1/1). An equal-priority arrival cannot preempt —
	// it sheds itself and bronze keeps its place.
	if _, _, err := a.EnterTenant(context.Background(), "bronze"); !errors.Is(err, ErrSaturated) {
		t.Fatalf("bronze overflow err = %v, want ErrSaturated", err)
	}

	// A high-priority arrival reclaims bronze's queue slot.
	goldDone := make(chan error, 1)
	go func() {
		rel, _, werr := a.EnterTenant(context.Background(), "gold")
		if werr == nil {
			rel()
		}
		goldDone <- werr
	}()
	werr := <-bronzeErr
	if !errors.Is(werr, ErrPreempted) {
		t.Fatalf("preempted waiter err = %v, want ErrPreempted", werr)
	}
	if errors.Is(werr, ErrQueueExpired) {
		t.Errorf("err = %v conflates preemption with queue expiry", werr)
	}

	hold()
	if err := <-goldDone; err != nil {
		t.Fatalf("high-priority arrival rejected after preempting: %v", err)
	}
	if got := a.ShedPreempted(); got != 1 {
		t.Errorf("ShedPreempted = %d, want 1", got)
	}
	if a.Shed() != 2 {
		t.Errorf("Shed = %d, want 2 (1 saturated + 1 preempted)", a.Shed())
	}
	for _, s := range a.TenantStats() {
		if s.Tenant == "bronze" && s.ShedPreempted != 1 {
			t.Errorf("bronze ShedPreempted = %d, want 1", s.ShedPreempted)
		}
	}
}

// TestWFQSingleTenantIsFIFO: with one tenant the WFQ schedule must be
// indistinguishable from the old FIFO controller (the PR 4 contract).
func TestWFQSingleTenantIsFIFO(t *testing.T) {
	a := NewTenantAdmission(1, 8, nil)
	hold, err := a.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan string, 8)
	for _, id := range []string{"default", "default", "default"} {
		enqueueTenant(t, a, id, order)
	}
	hold()
	for i := 0; i < 3; i++ {
		if got := <-order; got != "default" {
			t.Fatalf("grant %d = %q, want default", i, got)
		}
	}
}

func TestParseTenantPolicies(t *testing.T) {
	got, err := ParseTenantPolicies("gold:weight=4,priority=high,inflight=8;bronze:1,priority=low,queue=2;*:weight=2")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]TenantPolicy{
		"gold":   {Weight: 4, Priority: PriorityHigh, MaxInFlight: 8},
		"bronze": {Weight: 1, Priority: PriorityLow, MaxQueue: 2},
		"*":      {Weight: 2},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d tenants, want %d", len(got), len(want))
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("tenant %s = %+v, want %+v", name, got[name], w)
		}
	}

	if p, err := ParseTenantPolicies(""); err != nil || p != nil {
		t.Errorf("empty spec = (%v, %v), want (nil, nil)", p, err)
	}
	for _, bad := range []string{
		"noseparator",
		"a:weight=0",
		"a:weight=x",
		"a:priority=urgent",
		"a:bogus=1",
		"a:1;a:2",
		"a:inflight=-1",
	} {
		if _, err := ParseTenantPolicies(bad); err == nil {
			t.Errorf("ParseTenantPolicies(%q) accepted invalid spec", bad)
		}
	}
}

// TestWFQWildcardPolicy: unnamed tenants inherit the "*" policy.
func TestWFQWildcardPolicy(t *testing.T) {
	pol := map[string]TenantPolicy{"*": {MaxInFlight: 1}}
	a := NewTenantAdmission(4, 4, pol)
	rel, _, err := a.EnterTenant(context.Background(), "anyone")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	// Second request from the same unnamed tenant hits the wildcard cap.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, _, err := a.EnterTenant(ctx, "anyone"); !errors.Is(err, ErrQueueExpired) {
		t.Fatalf("err = %v, want ErrQueueExpired (queued on wildcard quota)", err)
	}
	// A different unnamed tenant has its own wildcard-derived quota.
	rel2, _, err := a.EnterTenant(context.Background(), "someone-else")
	if err != nil {
		t.Fatalf("distinct tenant blocked by another's wildcard quota: %v", err)
	}
	rel2()
}
