package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"mime"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/cure"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/kde"
	"repro/internal/obs"
	"repro/internal/outlier"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/trace"
)

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	s.mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	s.mux.HandleFunc("POST /v1/datasets", s.handleRegisterDataset)
	s.mux.HandleFunc("POST /v1/datasets/{name}/append", s.compute("/v1/datasets/append", s.handleAppend))
	s.mux.HandleFunc("POST /v1/streams/{name}/append", s.compute("/v1/streams/append", s.handleStreamAppend))
	s.mux.HandleFunc("DELETE /v1/datasets/{name}", s.handleRemoveDataset)
	s.mux.HandleFunc("POST /v1/sample", s.compute("/v1/sample", s.handleSample))
	s.mux.HandleFunc("POST /v1/cluster", s.compute("/v1/cluster", s.handleCluster))
	s.mux.HandleFunc("POST /v1/outliers", s.compute("/v1/outliers", s.handleOutliers))
	s.mux.HandleFunc("POST "+shard.PathPartials, s.shardRPC(shard.PathPartials, s.handleShardPartials))
	s.mux.HandleFunc("POST "+shard.PathDraw, s.shardRPC(shard.PathDraw, s.handleShardDraw))
	obs.Mount(s.mux, s.rec)
}

// computeHandler is a pipeline endpoint: it runs under the admission
// controller with a per-request deadline context and a per-request
// Recorder whose counters are rolled into the server's afterwards.
type computeHandler func(ctx context.Context, rec *obs.Recorder, w http.ResponseWriter, r *http.Request)

// compute wraps a pipeline endpoint with admission control, the request
// deadline, request tracing, latency recording, and observability
// rollup. Cache state, timing, and the trace ID travel in headers only —
// response bodies stay a pure function of (dataset, params, seed), and
// tracing never consumes RNG state, so responses are bit-identical with
// tracing disabled, sampled, or always-on.
//
// Every outcome flows through observe and finishRequest: a shed request
// (429/503/504) gets a trace ID, lands in the route histogram, and is
// access-logged just like a success.
func (s *Server) compute(route string, fn computeHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.rec.Counter(CtrRequests).Inc()
		id := s.ids.Next()
		w.Header().Set(TraceHeader, id)
		sw := &statusWriter{ResponseWriter: w}
		var tr *trace.Trace
		if s.traceOn {
			tr = trace.New(id)
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Deadline)
		defer cancel()
		ctx = trace.NewContext(ctx, tr)
		tenant := r.Header.Get(TenantHeader)
		if tenant == "" {
			tenant = DefaultTenant
		}
		defer func() {
			s.observe(route, start)
			s.finishRequest(tr, route, tenant, sw, start)
		}()

		tr.Begin("admission/wait")
		admStart := time.Now()
		release, queuedWait, err := s.adm.EnterTenant(ctx, tenant)
		if queuedWait {
			// Only real queue waits feed the histograms: a fast-path
			// admit says nothing about how long a shed client should
			// stand back.
			s.observeQueueWait(tenant, time.Since(admStart))
		}
		tr.End("admission/wait", 0)
		if err != nil {
			s.syncShedCounters()
			switch {
			case errors.Is(err, ErrDraining):
				sw.Header().Set("Retry-After", s.retryAfterHint(0.99, 5))
				s.fail(sw, http.StatusServiceUnavailable, "draining")
			case errors.Is(err, ErrQueueExpired):
				// The deadline passed while queued: the server is too
				// slow for this client right now, not just momentarily
				// full — tell it (and load balancers) to back off by
				// the observed tail wait.
				sw.Header().Set("Retry-After", s.retryAfterHint(0.99, int64(s.cfg.Deadline/(2*time.Second))))
				s.fail(sw, http.StatusServiceUnavailable, "overloaded: deadline expired while queued")
			case errors.Is(err, ErrSaturated), errors.Is(err, ErrPreempted):
				// Shed by policy (queue full or preempted by a higher-
				// priority tenant): try the degrade ladder before
				// answering 429 with the observed median wait.
				if s.cfg.DegradeOK && route == "/v1/sample" && s.tryDegradeSample(ctx, sw, r) {
					return
				}
				sw.Header().Set("Retry-After", s.retryAfterHint(0.50, 1))
				s.fail(sw, http.StatusTooManyRequests, "%v", err)
			default:
				s.fail(sw, http.StatusInternalServerError, "%v", err)
			}
			return
		}
		defer release()
		s.syncGauges()

		rec := obs.New()
		rec.SetTrace(tr)
		defer s.rec.Merge(rec)
		fn(ctx, rec, sw, r)
	}
}

// fail writes the JSON error envelope and counts it.
func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.rec.Counter(CtrErrors).Inc()
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// pipelineFail maps a pipeline error onto a status: cancellation from
// the request deadline becomes 504, a transient failure that survived
// the retry budget becomes 503 + Retry-After (the server is healthy,
// the attempt was unlucky), everything else 422 (the request was
// well-formed but the pipeline rejected or could not finish it).
func (s *Server) pipelineFail(w http.ResponseWriter, err error) {
	if errors.Is(err, dataset.ErrCanceled) {
		s.fail(w, http.StatusGatewayTimeout, "deadline exceeded: %v", err)
		return
	}
	if isTransient(err) {
		w.Header().Set("Retry-After", s.retryAfterHint(0.50, 1))
		s.fail(w, http.StatusServiceUnavailable, "transient failure: %v", err)
		return
	}
	s.fail(w, http.StatusUnprocessableEntity, "%v", err)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(body, '\n'))
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<30))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// markCache reports hit/miss/stale in a header, never in the body:
// response bytes stay a pure function of (dataset, params, seed), and a
// stale artifact has exactly the bytes the fresh one had.
func markCache(w http.ResponseWriter, out Outcome) {
	w.Header().Set("X-DBS-Cache", out.String())
}

// hexFloat canonicalizes a float for cache keys: the exact bit pattern,
// so keys never depend on decimal formatting (0.1+0.2 and 0.3 differ).
func hexFloat(v float64) string {
	return strconv.FormatUint(math.Float64bits(v), 16)
}

// ---- health & registry endpoints ----

type healthResponse struct {
	Status        string                    `json:"status"`
	Datasets      int                       `json:"datasets"`
	InFlight      int64                     `json:"in_flight"`
	Queued        int64                     `json:"queued"`
	Shed          int64                     `json:"shed"`
	ShedQueueFull int64                     `json:"shed_queue_full"`
	ShedExpired   int64                     `json:"shed_expired"`
	ShedPreempted int64                     `json:"shed_preempted,omitempty"`
	Degraded      int64                     `json:"degraded,omitempty"`
	Cache         CacheStats                `json:"cache"`
	Disk          *DiskTierStats            `json:"disk,omitempty"`
	Tenants       []TenantStats             `json:"tenants,omitempty"`
	QueueWait     *LatencySummary           `json:"queue_wait,omitempty"`
	Latency       map[string]LatencySummary `json:"latency,omitempty"`
	// ShardLatency is the coordinator's downstream fan-out wait per
	// phase (partials, draw) — separate from Latency, whose route
	// digests fold everything a request did into one number, and from
	// the build-stage histogram, which sharded builds deliberately skip.
	ShardLatency map[string]LatencySummary `json:"shard_latency,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.rec.Counter(CtrRequests).Inc()
	resp := healthResponse{
		Status:        "ok",
		Datasets:      s.reg.Len(),
		InFlight:      s.adm.InFlight(),
		Queued:        s.adm.Queued(),
		Shed:          s.adm.Shed(),
		ShedQueueFull: s.adm.ShedQueueFull(),
		ShedExpired:   s.adm.ShedExpired(),
		ShedPreempted: s.adm.ShedPreempted(),
		Degraded:      s.rec.Counter(CtrDegraded).Value(),
		Cache:         s.cache.Stats(),
		Tenants:       s.adm.TenantStats(),
		Latency:       s.latencySummaries(),
		ShardLatency:  s.shardLatencySummaries(),
	}
	if s.disk != nil {
		st := s.disk.Stats()
		resp.Disk = &st
	}
	if h := s.rec.Histogram(HistQueueSeconds); h.Count() > 0 {
		resp.QueueWait = &LatencySummary{
			Count: int(h.Count()),
			P50ms: h.Quantile(0.50) * 1e3,
			P99ms: h.Quantile(0.99) * 1e3,
		}
	}
	code := http.StatusOK
	if s.adm.Draining() {
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	s.rec.Counter(CtrRequests).Inc()
	writeJSON(w, http.StatusOK, map[string]any{"datasets": s.reg.List()})
}

type registerRequest struct {
	Name string `json:"name"`
	Path string `json:"path"`
}

func (s *Server) handleRegisterDataset(w http.ResponseWriter, r *http.Request) {
	s.rec.Counter(CtrRequests).Inc()
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	switch ct {
	case "", "application/json":
		var req registerRequest
		if err := decodeJSON(r, &req); err != nil {
			s.fail(w, http.StatusBadRequest, "decoding request: %v", err)
			return
		}
		if req.Path == "" {
			s.fail(w, http.StatusBadRequest, "missing path (or upload with Content-Type application/octet-stream or text/csv)")
			return
		}
		if err := s.reg.RegisterPath(req.Name, req.Path); err != nil {
			s.registerFail(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]any{"name": req.Name, "source": "file"})
	case "application/octet-stream", "text/csv":
		name := r.URL.Query().Get("name")
		if name == "" {
			s.fail(w, http.StatusBadRequest, "uploads need a ?name= query parameter")
			return
		}
		body := http.MaxBytesReader(w, r.Body, 1<<30)
		var (
			ds  *dataset.InMemory
			err error
		)
		if ct == "text/csv" {
			ds, err = dataset.ReadCSV(body)
		} else {
			ds, err = dataset.ReadBinary(body)
		}
		if err != nil {
			s.fail(w, http.StatusBadRequest, "parsing upload: %v", err)
			return
		}
		if err := s.reg.RegisterDataset(name, ds); err != nil {
			s.registerFail(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]any{
			"name": name, "source": "upload", "dims": ds.Dims(), "points": ds.Len(),
		})
	default:
		s.fail(w, http.StatusUnsupportedMediaType, "unsupported Content-Type %q", ct)
	}
}

func (s *Server) registerFail(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	if errors.Is(err, ErrExists) {
		code = http.StatusConflict
	}
	s.fail(w, code, "%v", err)
}

// appendRequest is the JSON body of /v1/datasets/{name}/append. The
// endpoint also accepts text/csv and application/octet-stream (DBS1)
// bodies, mirroring dataset registration.
type appendRequest struct {
	Points [][]float64 `json:"points"`
}

type appendResponse struct {
	Name        string `json:"name"`
	Generation  uint64 `json:"generation"`
	Points      int    `json:"points"`
	Added       int    `json:"added"`
	Fingerprint string `json:"fingerprint"`
}

// decodeAppendBody parses an append payload in any of the upload formats.
func decodeAppendBody(r *http.Request) ([]geom.Point, error) {
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	switch ct {
	case "", "application/json":
		var req appendRequest
		if err := decodeJSON(r, &req); err != nil {
			return nil, err
		}
		if len(req.Points) == 0 {
			return nil, errors.New("empty points")
		}
		pts := make([]geom.Point, len(req.Points))
		for i, row := range req.Points {
			pts[i] = geom.Point(row)
		}
		return pts, nil
	case "application/octet-stream", "text/csv":
		body := http.MaxBytesReader(nil, r.Body, 1<<30)
		var (
			ds  *dataset.InMemory
			err error
		)
		if ct == "text/csv" {
			ds, err = dataset.ReadCSV(body)
		} else {
			ds, err = dataset.ReadBinary(body)
		}
		if err != nil {
			return nil, err
		}
		return ds.Points(), nil
	default:
		return nil, fmt.Errorf("unsupported Content-Type %q", ct)
	}
}

// handleAppend grows a registered appendable dataset by one generation.
// The append is atomic with respect to concurrent requests: in-flight
// ones keep the generation they pinned at admission, later ones see (and
// cache-key by) the new generation. Responds 409 when the dataset cannot
// grow (an immutable DBS1 file registration).
func (s *Server) handleAppend(ctx context.Context, rec *obs.Recorder, w http.ResponseWriter, r *http.Request) {
	span := rec.StartSpan("server/append")
	defer span.End()
	name := r.PathValue("name")
	h, err := s.acquireTraced(ctx, name)
	if err != nil {
		s.acquireFail(w, err)
		return
	}
	defer h.Release()
	app := h.Appendable()
	if app == nil {
		s.fail(w, http.StatusConflict, "dataset %q is not appendable", name)
		return
	}
	pts, err := decodeAppendBody(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "parsing append body: %v", err)
		return
	}
	aerr := s.runStage(ctx, rec, "server/append", faults.SiteHash(name), func(sctx context.Context) error {
		if ferr := s.pAppend.Check(sctx); ferr != nil {
			return ferr
		}
		// Append either fully applies or fully rolls back (both backing
		// types guarantee it), so a retry after an injected fault never
		// double-appends: the fault fires before the append runs.
		return app.Append(pts...)
	})
	if aerr != nil {
		s.pipelineFail(w, aerr)
		return
	}
	gen := app.Generation()
	// Keep stream watermarks fresh when a stream is appended through the
	// plain endpoint (no-op for non-stream datasets).
	s.markAppend(name, gen, false)
	// One pass over the delta: the fingerprint memo extends its digest
	// state instead of rehashing the prefix.
	fp, ferr := h.FingerprintAt(gen)
	if ferr != nil {
		s.pipelineFail(w, ferr)
		return
	}
	span.AddPoints(int64(len(pts)))
	rec.Counter(obs.CtrAppends).Inc()
	rec.Counter(obs.CtrAppendPoints).Add(int64(len(pts)))
	writeJSON(w, http.StatusOK, appendResponse{
		Name:        name,
		Generation:  gen,
		Points:      app.GenLen(gen),
		Added:       len(pts),
		Fingerprint: fmt.Sprintf("%016x", fp),
	})
}

func (s *Server) handleRemoveDataset(w http.ResponseWriter, r *http.Request) {
	s.rec.Counter(CtrRequests).Inc()
	if err := s.reg.Remove(r.PathValue("name")); err != nil {
		s.fail(w, http.StatusNotFound, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ---- pipeline endpoints ----

// estParams is the canonical estimator identity inside cache keys.
type estParams struct {
	Kernels int    `json:"kernels"`
	Kernel  string `json:"kernel"`
	Seed    uint64 `json:"seed"`
}

func (p *estParams) normalize() error {
	if p.Kernels == 0 {
		p.Kernels = kde.DefaultNumKernels
	}
	if p.Kernels < 1 {
		return errors.New("kernels must be positive")
	}
	if p.Kernel == "" {
		p.Kernel = "epanechnikov"
	}
	if kde.KernelByName(p.Kernel) == nil {
		return fmt.Errorf("unknown kernel %q", p.Kernel)
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return nil
}

func (p estParams) key(fp uint64) string {
	return fmt.Sprintf("est|fp=%016x|ks=%d|kern=%s|seed=%d", fp, p.Kernels, p.Kernel, p.Seed)
}

// seedStreams derives the per-stage RNGs from the request seed. Each stage
// owns an independent stream, so a cache hit at the estimator layer leaves
// the draw's randomness — and therefore the response bytes — unchanged.
func seedStreams(seed uint64) (estRNG, drawRNG *stats.RNG) {
	st := stats.NewRNG(seed).Splits(2)
	return st[0], st[1]
}

// exactAt reports whether generation g of h must be built exactly (a full
// build over the generation's view) rather than extended from generation
// g-1. The decision is core.RebuildSchedule over the generation lengths —
// a pure function of (lengths, DriftTol), so every replica, and a replica
// restarted mid-lineage, schedules the same way. With DriftTol ≤ 0 (the
// default) everything is exact and incremental builds never run.
func (s *Server) exactAt(h *Handle, g uint64) bool {
	if h.Windowed() {
		// A windowed generation's rows are not a superset of the prior
		// generation's (eviction dropped the front), so the extend path
		// does not apply; windows always build exactly — which is what
		// makes a windowed response byte-identical to the same rows
		// registered fresh.
		return true
	}
	if g == 0 || h.Appendable() == nil || s.cfg.DriftTol <= 0 {
		return true
	}
	counts := make([]int, g+1)
	for j := range counts {
		counts[j] = h.GenLen(uint64(j))
	}
	return core.RebuildSchedule(counts, s.cfg.DriftTol)[g]
}

// genSeed decorrelates an incremental stage's randomness from the base
// builds and from other generations; stages re-derive it per retry
// attempt, so a retried stage reproduces its result exactly.
func genSeed(seed, g uint64, stage string) uint64 {
	return seed ^ faults.SiteHash(fmt.Sprintf("gen/%d/%s", g, stage))
}

// estimator returns the cached KDE estimator for the handle's pinned
// generation, building (or delta-extending) it on miss.
func (s *Server) estimator(ctx context.Context, rec *obs.Recorder, h *Handle, p estParams) (*kde.Estimator, Outcome, error) {
	return s.estimatorAt(ctx, rec, h, p, h.Generation())
}

// estimatorAt returns the cached KDE estimator for (generation g of the
// dataset, params, seed), building it on miss. The cache key is the
// generation's content fingerprint, so artifacts of superseded
// generations age out of the LRU naturally while requests that pinned
// them still hit. On an incremental miss (exactAt false) the estimator is
// built from the prior generation's — recursively, so a cold chain
// rebuilds from the last exact generation — with work proportional to the
// delta, not the dataset. Cached estimators hold the server-level
// recorder (attached once at build — a shared artifact must not point at
// any single request's recorder), so their kernel-evaluation counters
// aggregate across requests.
func (s *Server) estimatorAt(ctx context.Context, rec *obs.Recorder, h *Handle, p estParams, g uint64) (*kde.Estimator, Outcome, error) {
	fp, err := h.FingerprintAt(g)
	if err != nil {
		return nil, OutcomeMiss, err
	}
	tr := trace.FromContext(ctx)
	t0 := tr.Now()
	key := p.key(fp)
	// fromDisk is written only by the singleflight winner's closure,
	// which runs on this goroutine; joiners report a plain memory hit.
	fromDisk := false
	v, out, err := s.cache.GetOrBuild(key, func() (any, int64, error) {
		if est, ok := s.diskEstimator(key); ok {
			fromDisk = true
			return est, estimatorBytes(est.(*kde.Estimator)), nil
		}
		var built any
		var size int64
		var berr error
		if s.exactAt(h, g) {
			built, size, berr = s.buildEstimator(ctx, rec, h, p, g)
		} else {
			built, size, berr = s.extendEstimator(ctx, rec, h, p, g)
		}
		if berr == nil {
			s.diskStore(key, built)
		}
		return built, size, berr
	})
	if out == OutcomeMiss && fromDisk && err == nil {
		out = OutcomeDisk
	}
	s.syncCacheCounters()
	// The cache event spans the whole lookup (including a singleflight
	// wait or the build itself) and notes the outcome: a hit's trace
	// shows this event and no scan spans at all.
	if tr != nil {
		tr.Add("cache/est", t0, tr.Now(), 0, fmt.Sprintf("%s gen=%d", out, g))
	}
	if err != nil {
		return nil, out, err
	}
	return v.(*kde.Estimator), out, nil
}

// buildEstimator runs the full estimator build over generation g's view.
// The RNG derivation matches a non-generational build exactly, so the
// artifact (and its cache key) is bit-identical to what a server that saw
// the same points registered whole would build.
func (s *Server) buildEstimator(ctx context.Context, rec *obs.Recorder, h *Handle, p estParams, g uint64) (any, int64, error) {
	view, err := h.ViewAt(g)
	if err != nil {
		return nil, 0, err
	}
	var est *kde.Estimator
	berr := s.runStage(ctx, rec, "server/build/est", p.Seed, func(sctx context.Context) error {
		if ferr := s.pEst.Check(sctx); ferr != nil {
			return ferr
		}
		s.rec.Counter(CtrKDEBuilds).Inc()
		// The RNG stream is re-derived per attempt, so a retried
		// build produces the identical estimator.
		estRNG, _ := seedStreams(p.Seed)
		e, berr := kde.Build(view, kde.Options{
			NumKernels:  p.Kernels,
			Kernel:      kde.KernelByName(p.Kernel),
			Parallelism: s.cfg.Parallelism,
			Ctx:         sctx,
			Obs:         rec,
		}, estRNG)
		if berr != nil {
			return berr
		}
		est = e
		return nil
	})
	if berr != nil {
		return nil, 0, berr
	}
	est.SetRecorder(s.rec)
	return est, estimatorBytes(est), nil
}

// extendEstimator builds generation g's estimator from generation g-1's:
// reservoir-pick centers from the delta (keeping the prior
// centers-per-point rate) and extend the prior estimator with them. One
// pass over the delta; no pass over the prior prefix.
func (s *Server) extendEstimator(ctx context.Context, rec *obs.Recorder, h *Handle, p estParams, g uint64) (any, int64, error) {
	prior, _, err := s.estimatorAt(ctx, rec, h, p, g-1)
	if err != nil {
		return nil, 0, err
	}
	delta, err := h.DeltaAt(g)
	if err != nil {
		return nil, 0, err
	}
	var est *kde.Estimator
	berr := s.runStage(ctx, rec, "server/build/est_delta", p.Seed, func(sctx context.Context) error {
		if ferr := s.pEstDelta.Check(sctx); ferr != nil {
			return ferr
		}
		s.rec.Counter(CtrKDEBuilds).Inc()
		dk := int(math.Round(float64(prior.NumKernels()) * float64(delta.Len()) / float64(h.GenLen(g-1))))
		if dk < 1 {
			dk = 1
		}
		if dk > prior.NumKernels() {
			dk = prior.NumKernels()
		}
		if dk > delta.Len() {
			dk = delta.Len()
		}
		rng := stats.NewRNG(genSeed(p.Seed, g, "est"))
		centers, rerr := dataset.Reservoir(delta, dk, rng)
		if rerr != nil {
			return rerr
		}
		e, xerr := prior.Extend(centers, h.GenLen(g))
		if xerr != nil {
			return xerr
		}
		rec.Counter(obs.CtrKDEExtends).Inc()
		est = e
		return nil
	})
	if berr != nil {
		return nil, 0, berr
	}
	est.SetRecorder(s.rec)
	return est, estimatorBytes(est), nil
}

// estimatorBytes approximates an estimator's resident size for the cache
// accounting: centers, bandwidth vectors, kd-tree nodes, and scales.
func estimatorBytes(est *kde.Estimator) int64 {
	ks, d := int64(est.NumKernels()), int64(est.Dims())
	return ks*d*8 + ks*48 + d*16 + 512
}

func sampleBytes(sm *core.Sample) int64 {
	if len(sm.Points) == 0 {
		return 256
	}
	d := int64(len(sm.Points[0].P))
	return int64(len(sm.Points))*(d*8+56) + 256
}

type sampleRequest struct {
	Dataset string  `json:"dataset"`
	Alpha   float64 `json:"alpha"`
	Size    int     `json:"size"`
	OnePass bool    `json:"one_pass,omitempty"`
	Kernels int     `json:"kernels,omitempty"`
	Kernel  string  `json:"kernel,omitempty"`
	Seed    uint64  `json:"seed,omitempty"`
}

func (q *sampleRequest) normalize() (estParams, error) {
	if q.Dataset == "" {
		return estParams{}, errors.New("missing dataset")
	}
	if q.Size <= 0 {
		return estParams{}, errors.New("size must be positive")
	}
	p := estParams{Kernels: q.Kernels, Kernel: q.Kernel, Seed: q.Seed}
	if err := p.normalize(); err != nil {
		return estParams{}, err
	}
	q.Kernels, q.Kernel, q.Seed = p.Kernels, p.Kernel, p.Seed
	return p, nil
}

func (q sampleRequest) key(fp uint64, p estParams) string {
	return fmt.Sprintf("smp|%s|alpha=%s|b=%d|onepass=%t",
		p.key(fp), hexFloat(q.Alpha), q.Size, q.OnePass)
}

// sampleArtifact is what the sample cache stores: the sample plus the
// normalizer bookkeeping (core.NormState) a later generation needs to
// extend it incrementally.
type sampleArtifact struct {
	s  *core.Sample
	ns core.NormState
}

// drawSample returns the cached sample for the handle's pinned
// generation, running the pipeline (estimator + pass 1/2) on miss. On a
// hit no dataset pass runs at all.
func (s *Server) drawSample(ctx context.Context, rec *obs.Recorder, h *Handle, q sampleRequest, p estParams) (*core.Sample, Outcome, error) {
	art, out, err := s.sampleAt(ctx, rec, h, q, p, h.Generation())
	if err != nil {
		return nil, out, err
	}
	return art.s, out, nil
}

// sampleAt returns the cached sample artifact for generation g, keyed by
// the generation's content fingerprint. An incremental miss (exactAt
// false) extends the prior generation's artifact with passes over the
// delta only, so an append-then-sample on a warm cache costs O(|delta|)
// regardless of the dataset size. OnePass requests are always built
// exactly — they already integrate everything into a single pass and the
// incremental math needs the exact normalizer lineage.
func (s *Server) sampleAt(ctx context.Context, rec *obs.Recorder, h *Handle, q sampleRequest, p estParams, g uint64) (*sampleArtifact, Outcome, error) {
	fp, err := h.FingerprintAt(g)
	if err != nil {
		return nil, OutcomeMiss, err
	}
	tr := trace.FromContext(ctx)
	t0 := tr.Now()
	key := q.key(fp, p)
	fromDisk := false
	v, out, err := s.cache.GetOrBuild(key, func() (any, int64, error) {
		if art, ok := s.diskSample(key); ok {
			fromDisk = true
			return art, sampleBytes(art.(*sampleArtifact).s), nil
		}
		// Sharded builds reuse the single-node cache key: the scatter-
		// gather result is bit-identical to the local build, so hit/miss
		// and shard mode compose freely. OnePass stays local (its single
		// pass has no exact normalizer to merge against).
		var built any
		var size int64
		var berr error
		switch {
		// Windowed handles stay local: the shard executor resolves views
		// by generation and would scan the unwindowed rows.
		case s.coord != nil && !q.OnePass && !h.Windowed():
			built, size, berr = s.buildSampleSharded(ctx, rec, h, q, p, g)
		case q.OnePass || s.exactAt(h, g):
			built, size, berr = s.buildSample(ctx, rec, h, q, p, g)
		default:
			built, size, berr = s.extendSample(ctx, rec, h, q, p, g)
		}
		if berr == nil {
			s.diskStore(key, built)
		}
		return built, size, berr
	})
	if out == OutcomeMiss && fromDisk && err == nil {
		out = OutcomeDisk
	}
	s.syncCacheCounters()
	if tr != nil {
		tr.Add("cache/sample", t0, tr.Now(), 0, fmt.Sprintf("%s gen=%d", out, g))
	}
	if err != nil {
		return nil, out, err
	}
	return v.(*sampleArtifact), out, nil
}

// buildSample runs the full two-pass draw over generation g's view, with
// the same RNG derivation as a non-generational build — the response is
// bit-identical to a server that saw the same points registered whole.
func (s *Server) buildSample(ctx context.Context, rec *obs.Recorder, h *Handle, q sampleRequest, p estParams, g uint64) (any, int64, error) {
	view, err := h.ViewAt(g)
	if err != nil {
		return nil, 0, err
	}
	// The estimator stage retries internally, so only the draw runs
	// under this stage's retry budget — no multiplicative retries.
	est, _, eerr := s.estimatorAt(ctx, rec, h, p, g)
	if eerr != nil {
		return nil, 0, eerr
	}
	var sm *core.Sample
	derr := s.runStage(ctx, rec, "server/build/sample", p.Seed, func(sctx context.Context) error {
		if ferr := s.pSample.Check(sctx); ferr != nil {
			return ferr
		}
		_, drawRNG := seedStreams(p.Seed)
		m, derr := core.Draw(view, est, core.Options{
			Alpha:       q.Alpha,
			TargetSize:  q.Size,
			OnePass:     q.OnePass,
			Parallelism: s.cfg.Parallelism,
			Precision:   s.cfg.Precision,
			Ctx:         sctx,
			Obs:         rec,
		}, drawRNG)
		if derr != nil {
			return derr
		}
		sm = m
		return nil
	})
	if derr != nil {
		return nil, 0, derr
	}
	ns := core.NormState{K: sm.Norm, N: view.Len(), Kernels: est.NumKernels()}
	return &sampleArtifact{s: sm, ns: ns}, sampleBytes(sm), nil
}

// extendSample extends generation g-1's cached sample to generation g:
// the (recursively obtained) prior artifact is thinned and the delta
// coin-flipped against the updated normalizer — two passes over the
// delta, none over the prior prefix (core.ExtendDraw).
func (s *Server) extendSample(ctx context.Context, rec *obs.Recorder, h *Handle, q sampleRequest, p estParams, g uint64) (any, int64, error) {
	prior, _, err := s.sampleAt(ctx, rec, h, q, p, g-1)
	if err != nil {
		return nil, 0, err
	}
	est, _, eerr := s.estimatorAt(ctx, rec, h, p, g)
	if eerr != nil {
		return nil, 0, eerr
	}
	view, verr := h.ViewAt(g)
	if verr != nil {
		return nil, 0, verr
	}
	var sm *core.Sample
	var ns core.NormState
	derr := s.runStage(ctx, rec, "server/build/sample_delta", p.Seed, func(sctx context.Context) error {
		if ferr := s.pSampleDelta.Check(sctx); ferr != nil {
			return ferr
		}
		drawRNG := stats.NewRNG(genSeed(p.Seed, g, "draw"))
		m, nss, derr := core.ExtendDraw(view, est, core.ExtendOptions{
			Options: core.Options{
				Alpha:       q.Alpha,
				TargetSize:  q.Size,
				Parallelism: s.cfg.Parallelism,
				Precision:   s.cfg.Precision,
				Ctx:         sctx,
				Obs:         rec,
			},
			DeltaStart: h.GenLen(g - 1),
			Prior:      prior.s,
			PriorNorm:  prior.ns,
		}, drawRNG)
		if derr != nil {
			return derr
		}
		sm, ns = m, nss
		return nil
	})
	if derr != nil {
		return nil, 0, derr
	}
	return &sampleArtifact{s: sm, ns: ns}, sampleBytes(sm), nil
}

type samplePoint struct {
	P geom.Point `json:"p"`
	W float64    `json:"w"`
}

type sampleResponse struct {
	Dataset     string        `json:"dataset"`
	Fingerprint string        `json:"fingerprint"`
	Alpha       float64       `json:"alpha"`
	Norm        float64       `json:"norm"`
	DataPasses  int           `json:"data_passes"`
	Saturated   int           `json:"saturated"`
	Count       int           `json:"count"`
	Points      []samplePoint `json:"points"`
}

func (s *Server) handleSample(ctx context.Context, rec *obs.Recorder, w http.ResponseWriter, r *http.Request) {
	var req sampleRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	p, err := req.normalize()
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	h, err := s.acquireTraced(ctx, req.Dataset)
	if err != nil {
		s.acquireFail(w, err)
		return
	}
	defer h.Release()

	sm, out, err := s.drawSample(ctx, rec, h, req, p)
	if err != nil {
		// Second rung of the degrade ladder: a transient pipeline
		// failure (injected fault, flaky scan) on a request whose a=0
		// artifact is resident answers degraded instead of 503 — the
		// cached rung needs no dataset pass, so serving it cannot
		// retrigger the fault that broke the build.
		if s.cfg.DegradeOK && isTransient(err) && s.degradeSample(w, req, p, h) {
			return
		}
		s.pipelineFail(w, err)
		return
	}
	fp, _ := h.Fingerprint()
	markCache(w, out)
	writeSampleResponse(w, req.Dataset, req.Alpha, fp, sm)
}

// writeSampleResponse writes the /v1/sample success body: a pure
// function of (dataset name, alpha, fingerprint, sample), shared by the
// full pipeline and the degrade ladder so a degraded response is
// byte-identical to an ordinary a=0 response.
func writeSampleResponse(w http.ResponseWriter, name string, alpha float64, fp uint64, sm *core.Sample) {
	pts := make([]samplePoint, len(sm.Points))
	for i, wp := range sm.Points {
		pts[i] = samplePoint{P: wp.P, W: wp.W}
	}
	writeJSON(w, http.StatusOK, sampleResponse{
		Dataset:     name,
		Fingerprint: fmt.Sprintf("%016x", fp),
		Alpha:       alpha,
		Norm:        sm.Norm,
		DataPasses:  sm.DataPasses,
		Saturated:   sm.Saturated,
		Count:       len(pts),
		Points:      pts,
	})
}

// tryDegradeSample is the overload degrade ladder: a /v1/sample shed by
// admission is answered from the cached a=0 artifact for the same
// (dataset, size, kernels, kernel, seed, one_pass) when one is resident
// in memory or on disk. Jang & Jiang's DBSCAN++ subsampling is exactly
// the a=0 special case of the paper's scheme, so the degraded answer is
// a coarser-but-sound sample, not a different kind of result. The
// response carries DegradedHeader (when the request wanted a ≠ 0) and
// is byte-identical to what an ordinary a=0 request returns — the
// degrade ladder changes availability, never bytes.
//
// It reports whether a degraded response was served; on false the
// caller falls through to the 429. Only cached artifacts qualify: the
// peek path runs no build, no dataset pass, and needs no admission
// slot, so serving it cannot deepen the overload being shed.
func (s *Server) tryDegradeSample(ctx context.Context, w http.ResponseWriter, r *http.Request) bool {
	var req sampleRequest
	if err := decodeJSON(r, &req); err != nil {
		return false
	}
	p, err := req.normalize()
	if err != nil {
		return false
	}
	h, err := s.acquireTraced(ctx, req.Dataset)
	if err != nil {
		return false
	}
	defer h.Release()
	return s.degradeSample(w, req, p, h)
}

// degradeSample serves the cached a=0 rung for req's identity through an
// already-held dataset handle; it reports false (nothing written) when
// no rung is resident in memory or on disk.
func (s *Server) degradeSample(w http.ResponseWriter, req sampleRequest, p estParams, h *Handle) bool {
	fp, err := h.FingerprintAt(h.Generation())
	if err != nil {
		return false
	}
	a0 := req
	a0.Alpha = 0
	key := a0.key(fp, p)
	out := OutcomeHit
	v, ok := s.cache.Peek(key)
	if !ok {
		if v, ok = s.diskSample(key); !ok {
			return false
		}
		out = OutcomeDisk
	}
	art := v.(*sampleArtifact)
	s.rec.Counter(CtrDegraded).Inc()
	if req.Alpha != 0 {
		w.Header().Set(DegradedHeader, "a0")
	}
	markCache(w, out)
	writeSampleResponse(w, req.Dataset, 0, fp, art.s)
	return true
}

// acquireTraced is reg.Acquire with the lookup recorded as a trace
// event (the registry acquire leg of the request's span tree).
func (s *Server) acquireTraced(ctx context.Context, name string) (*Handle, error) {
	tr := trace.FromContext(ctx)
	t0 := tr.Now()
	h, err := s.reg.Acquire(name)
	if tr != nil {
		note := "dataset=" + name
		if err != nil {
			note += " error"
		}
		tr.Add("registry/acquire", t0, tr.Now(), 0, note)
	}
	if err == nil {
		// Stream datasets compute over their sliding window: the handle
		// resolves it once here and every downstream view, fingerprint,
		// and cache key covers exactly the window's rows. Append paths
		// are unaffected — the window binds to the pinned generation
		// only, and appends create a later one.
		if werr := s.applyWindow(h); werr != nil {
			h.Release()
			return nil, werr
		}
		traceWindow(ctx, h)
	}
	return h, err
}

func (s *Server) acquireFail(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrNotFound) {
		s.fail(w, http.StatusNotFound, "%v", err)
		return
	}
	s.fail(w, http.StatusUnprocessableEntity, "%v", err)
}

type clusterRequest struct {
	Dataset   string  `json:"dataset"`
	K         int     `json:"k"`
	Alpha     float64 `json:"alpha"`
	Size      int     `json:"size"`
	OnePass   bool    `json:"one_pass,omitempty"`
	Kernels   int     `json:"kernels,omitempty"`
	Kernel    string  `json:"kernel,omitempty"`
	Seed      uint64  `json:"seed,omitempty"`
	NumReps   int     `json:"num_reps,omitempty"`
	Shrink    float64 `json:"shrink,omitempty"`
	NoiseTrim bool    `json:"noise_trim,omitempty"`
}

type clusterInfo struct {
	Size int          `json:"size"`
	Mean geom.Point   `json:"mean"`
	Reps []geom.Point `json:"reps"`
}

type clusterResponse struct {
	Dataset     string        `json:"dataset"`
	Fingerprint string        `json:"fingerprint"`
	K           int           `json:"k"`
	SampleSize  int           `json:"sample_size"`
	Clusters    []clusterInfo `json:"clusters"`
}

func (s *Server) handleCluster(ctx context.Context, rec *obs.Recorder, w http.ResponseWriter, r *http.Request) {
	var req clusterRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.K <= 0 {
		s.fail(w, http.StatusBadRequest, "k must be positive")
		return
	}
	sq := sampleRequest{Dataset: req.Dataset, Alpha: req.Alpha, Size: req.Size,
		OnePass: req.OnePass, Kernels: req.Kernels, Kernel: req.Kernel, Seed: req.Seed}
	p, err := sq.normalize()
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	h, err := s.acquireTraced(ctx, req.Dataset)
	if err != nil {
		s.acquireFail(w, err)
		return
	}
	defer h.Release()

	// The sample artifact is shared with /v1/sample: a prior sample
	// request (same params, seed) warms this endpoint and vice versa.
	sm, out, err := s.drawSample(ctx, rec, h, sq, p)
	if err != nil {
		s.pipelineFail(w, err)
		return
	}
	pts := sm.PlainPoints()
	opts := cure.Options{
		K: req.K, NumReps: req.NumReps, Shrink: req.Shrink,
		Parallelism: s.cfg.Parallelism, Ctx: ctx, Obs: rec,
	}
	if req.NoiseTrim {
		opts.TrimAt, opts.TrimMinSize, opts.FinalTrimAt, opts.FinalTrimMinSize =
			cure.NoiseTrimSizing(len(pts), req.K, 500)
	}
	clusters, err := cure.Run(pts, opts)
	if err != nil {
		s.pipelineFail(w, err)
		return
	}
	fp, _ := h.Fingerprint()
	infos := make([]clusterInfo, len(clusters))
	for i, c := range clusters {
		infos[i] = clusterInfo{Size: c.Size(), Mean: c.Mean, Reps: c.Reps}
	}
	markCache(w, out)
	writeJSON(w, http.StatusOK, clusterResponse{
		Dataset:     req.Dataset,
		Fingerprint: fmt.Sprintf("%016x", fp),
		K:           req.K,
		SampleSize:  len(pts),
		Clusters:    infos,
	})
}

type outlierRequest struct {
	Dataset string  `json:"dataset"`
	Radius  float64 `json:"radius"`
	P       int     `json:"p"`
	Frac    float64 `json:"frac,omitempty"`
	Method  string  `json:"method,omitempty"` // approx (default) | estimate
	Factor  float64 `json:"factor,omitempty"`
	Kernels int     `json:"kernels,omitempty"`
	Kernel  string  `json:"kernel,omitempty"`
	Seed    uint64  `json:"seed,omitempty"`
}

type outlierResponse struct {
	Dataset     string       `json:"dataset"`
	Fingerprint string       `json:"fingerprint"`
	Method      string       `json:"method"`
	Radius      float64      `json:"radius"`
	P           int          `json:"p"`
	Count       int          `json:"count"`
	Candidates  int          `json:"candidates,omitempty"`
	DataPasses  int          `json:"data_passes,omitempty"`
	Outliers    []geom.Point `json:"outliers,omitempty"`
}

func (s *Server) handleOutliers(ctx context.Context, rec *obs.Recorder, w http.ResponseWriter, r *http.Request) {
	var req outlierRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Method == "" {
		req.Method = "approx"
	}
	if req.Method != "approx" && req.Method != "estimate" {
		s.fail(w, http.StatusBadRequest, "unknown method %q (approx|estimate)", req.Method)
		return
	}
	if req.Dataset == "" {
		s.fail(w, http.StatusBadRequest, "missing dataset")
		return
	}
	p := estParams{Kernels: req.Kernels, Kernel: req.Kernel, Seed: req.Seed}
	if err := p.normalize(); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	h, err := s.acquireTraced(ctx, req.Dataset)
	if err != nil {
		s.acquireFail(w, err)
		return
	}
	defer h.Release()

	prm := outlier.Params{K: req.Radius, P: req.P}
	if req.Frac > 0 {
		prm = outlier.FromFraction(req.Radius, req.Frac, h.Dataset().Len())
	}
	prm.Parallelism = s.cfg.Parallelism
	prm.Ctx = ctx
	prm.Obs = rec

	est, out, err := s.estimator(ctx, rec, h, p)
	if err != nil {
		s.pipelineFail(w, err)
		return
	}
	fp, _ := h.Fingerprint()
	resp := outlierResponse{
		Dataset:     req.Dataset,
		Fingerprint: fmt.Sprintf("%016x", fp),
		Method:      req.Method,
		Radius:      prm.K,
		P:           prm.P,
	}
	switch req.Method {
	case "approx":
		res, aerr := outlier.Approximate(h.Dataset(), est, prm, outlier.ApproxOptions{CandidateFactor: req.Factor})
		if aerr != nil {
			s.pipelineFail(w, aerr)
			return
		}
		resp.Count = len(res.Outliers)
		resp.Candidates = res.NumCandidates
		resp.DataPasses = res.DataPasses
		resp.Outliers = res.Outliers
	case "estimate":
		n, eerr := outlier.EstimateCount(h.Dataset(), est, prm)
		if eerr != nil {
			s.pipelineFail(w, eerr)
			return
		}
		resp.Count = n
	}
	markCache(w, out)
	writeJSON(w, http.StatusOK, resp)
}
