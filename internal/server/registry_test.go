package server

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/stats"
)

func testPoints(n, dims int, seed uint64) []geom.Point {
	rng := stats.NewRNG(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dims)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func testFile(t *testing.T, n, dims int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pts.dbs")
	if err := dataset.SaveBinary(path, dataset.MustInMemory(testPoints(n, dims, 7))); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRegistryLazyOpenAndList(t *testing.T) {
	r := NewRegistry(1)
	if err := r.RegisterPath("pts", testFile(t, 100, 3)); err != nil {
		t.Fatal(err)
	}
	infos := r.List()
	if len(infos) != 1 || infos[0].Open {
		t.Fatalf("before acquire: %+v", infos)
	}
	h, err := r.Acquire("pts")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if h.Dataset().Len() != 100 || h.Dataset().Dims() != 3 {
		t.Errorf("shape %d/%d", h.Dataset().Len(), h.Dataset().Dims())
	}
	infos = r.List()
	if !infos[0].Open || infos[0].Points != 100 {
		t.Errorf("after acquire: %+v", infos)
	}
}

func TestRegistryMissingAndDuplicate(t *testing.T) {
	r := NewRegistry(1)
	if _, err := r.Acquire("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
	if err := r.RegisterPath("pts", filepath.Join(t.TempDir(), "missing.dbs")); err == nil {
		t.Error("registration of a missing file accepted")
	}
	path := testFile(t, 10, 2)
	if err := r.RegisterPath("pts", path); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterPath("pts", path); !errors.Is(err, ErrExists) {
		t.Errorf("err = %v, want ErrExists", err)
	}
	if err := r.RegisterDataset("mem", nil); err == nil {
		t.Error("nil dataset accepted")
	}
}

func TestRegistryFingerprintCached(t *testing.T) {
	r := NewRegistry(1)
	mem := dataset.MustInMemory(testPoints(500, 2, 3))
	if err := r.RegisterDataset("pts", mem); err != nil {
		t.Fatal(err)
	}
	h, err := r.Acquire("pts")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	fp1, err := h.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := h.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Errorf("fingerprint changed: %x vs %x", fp1, fp2)
	}
	if mem.Passes() != 1 {
		t.Errorf("fingerprint consumed %d passes, want 1 (cached)", mem.Passes())
	}
	want, err := dataset.Fingerprint(mem, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != want {
		t.Errorf("fingerprint %x, want %x", fp1, want)
	}
}

func TestRegistryRemoveWhileHeld(t *testing.T) {
	r := NewRegistry(1)
	if err := r.RegisterDataset("pts", dataset.MustInMemory(testPoints(10, 2, 1))); err != nil {
		t.Fatal(err)
	}
	h, err := r.Acquire("pts")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("pts"); err != nil {
		t.Fatal(err)
	}
	// Removed name is gone for new acquires and listings...
	if _, err := r.Acquire("pts"); !errors.Is(err, ErrNotFound) {
		t.Errorf("acquire after remove: err = %v, want ErrNotFound", err)
	}
	if r.Len() != 0 {
		t.Errorf("len = %d after remove, want 0", r.Len())
	}
	// ...but the held handle still works.
	if h.Dataset().Len() != 10 {
		t.Error("held handle broken by Remove")
	}
	h.Release()
	// The name can be reused once fully released.
	if err := r.RegisterDataset("pts", dataset.MustInMemory(testPoints(5, 2, 2))); err != nil {
		t.Fatalf("re-register after release: %v", err)
	}
	if err := r.Remove("pts"); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("pts"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double remove: err = %v, want ErrNotFound", err)
	}
}
