package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/obs"
)

// httptestNewServer serves a hand-built Server with test cleanup.
func httptestNewServer(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// postTenant is postJSON with an X-DBS-Tenant header.
func postTenant(t *testing.T, url, tenant string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestDiskTierRestartSurvival pins the point of the disk tier: a server
// restarted over the same artifact directory serves the first request
// from disk — zero estimator builds, zero pipeline dataset passes — and
// the bytes match the original build exactly.
func TestDiskTierRestartSurvival(t *testing.T) {
	dir := t.TempDir()

	srv1, ts1, _ := newTestServer(t, Config{Parallelism: 2, DiskDir: dir}, 3000)
	resp1, body1 := postJSON(t, ts1.URL+"/v1/sample", sampleBody)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("warm: %d: %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-DBS-Cache"); got != "miss" {
		t.Fatalf("warm X-DBS-Cache = %q, want miss", got)
	}
	if st := srv1.disk.Stats(); st.Stores == 0 || st.Files == 0 {
		t.Fatalf("disk tier after warm build: %+v, want stored artifacts", st)
	}
	ts1.Close()

	// "Restart": a brand-new server (empty memory cache, fresh recorder)
	// over the same directory and an equivalent dataset.
	srv2 := New(Config{Parallelism: 2, DiskDir: dir})
	mem2 := dataset.MustInMemory(testPoints(3000, 2, 11))
	if err := srv2.Registry().RegisterDataset("pts", mem2); err != nil {
		t.Fatal(err)
	}
	ts2 := httptestNewServer(t, srv2)

	resp2, body2 := postJSON(t, ts2.URL+"/v1/sample", sampleBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("restart: %d: %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("X-DBS-Cache"); got != "disk" {
		t.Errorf("restart X-DBS-Cache = %q, want disk", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("disk-tier response differs from the original build (must be byte-identical)")
	}
	// The disk hit skips the whole pipeline: no estimator build, no
	// pipeline dataset pass. The registry's fingerprint scan is the one
	// pass the restarted process still runs.
	if got := srv2.rec.Counter(CtrKDEBuilds).Value(); got != 0 {
		t.Errorf("restart kde builds = %d, want 0", got)
	}
	if got := srv2.rec.Counter(obs.CtrDataPasses).Value(); got != 0 {
		t.Errorf("restart recorded data passes = %d, want 0", got)
	}
	if got := mem2.Passes(); got != 1 {
		t.Errorf("restart dataset passes = %d, want 1 (fingerprint only)", got)
	}

	// Second request promotes to the memory tier.
	resp3, body3 := postJSON(t, ts2.URL+"/v1/sample", sampleBody)
	if got := resp3.Header.Get("X-DBS-Cache"); got != "hit" {
		t.Errorf("post-restart repeat X-DBS-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body3) {
		t.Error("memory-promoted response differs from the original build")
	}

	var health healthResponse
	getJSON(t, ts2.URL+"/healthz", &health)
	if health.Disk == nil || health.Disk.Hits == 0 {
		t.Errorf("healthz disk stats = %+v, want recorded hits", health.Disk)
	}
}

// TestDiskTierEstimatorSurvivesRestart does the same for the estimator
// artifact via /v1/outliers, which caches the estimator rather than a
// sample.
func TestDiskTierEstimatorSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	outlierBody := map[string]any{
		"dataset": "pts", "radius": 0.05, "p": 2, "kernels": 64, "seed": 42, "method": "estimate",
	}

	_, ts1, _ := newTestServer(t, Config{Parallelism: 2, DiskDir: dir}, 1500)
	resp1, body1 := postJSON(t, ts1.URL+"/v1/outliers", outlierBody)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("warm: %d: %s", resp1.StatusCode, body1)
	}
	ts1.Close()

	srv2 := New(Config{Parallelism: 2, DiskDir: dir})
	mem2 := dataset.MustInMemory(testPoints(1500, 2, 11))
	if err := srv2.Registry().RegisterDataset("pts", mem2); err != nil {
		t.Fatal(err)
	}
	ts2 := httptestNewServer(t, srv2)

	resp2, body2 := postJSON(t, ts2.URL+"/v1/outliers", outlierBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("restart: %d: %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("X-DBS-Cache"); got != "disk" {
		t.Errorf("restart X-DBS-Cache = %q, want disk", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("disk-loaded estimator produced different outlier bytes")
	}
	if got := srv2.rec.Counter(CtrKDEBuilds).Value(); got != 0 {
		t.Errorf("restart kde builds = %d, want 0", got)
	}
}

// TestDegradedSampleServesCachedA0 pins the degrade ladder: with
// DegradeOK set, a /v1/sample shed by admission is answered from the
// cached a=0 artifact — byte-identical to an ordinary a=0 response,
// marked with X-DBS-Degraded — and a request whose a=0 artifact is not
// resident still sheds with 429.
func TestDegradedSampleServesCachedA0(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{
		Parallelism: 2, MaxInFlight: 1, MaxQueue: -1, DegradeOK: true,
	}, 2000)

	a0Body := map[string]any{
		"dataset": "pts", "alpha": 0.0, "size": 200, "kernels": 64, "seed": 42,
	}
	respA0, bodyA0 := postJSON(t, ts.URL+"/v1/sample", a0Body)
	if respA0.StatusCode != http.StatusOK {
		t.Fatalf("a0 warm: %d: %s", respA0.StatusCode, bodyA0)
	}

	release, err := srv.adm.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// Same (dataset, size, kernels, seed) at alpha=1: shed, degraded.
	resp, body := postJSON(t, ts.URL+"/v1/sample", sampleBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded: %d, want 200: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(DegradedHeader); got != "a0" {
		t.Errorf("X-DBS-Degraded = %q, want a0", got)
	}
	if got := resp.Header.Get("X-DBS-Cache"); got != "hit" {
		t.Errorf("degraded X-DBS-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body, bodyA0) {
		t.Error("degraded body differs from the ordinary a=0 response (must be byte-identical)")
	}
	if got := srv.rec.Counter(CtrDegraded).Value(); got != 1 {
		t.Errorf("degraded counter = %d, want 1", got)
	}

	// Different seed: no a=0 artifact cached, so the shed stays a 429
	// with a Retry-After hint.
	cold := map[string]any{
		"dataset": "pts", "alpha": 1.0, "size": 200, "kernels": 64, "seed": 7,
	}
	respCold, _ := postJSON(t, ts.URL+"/v1/sample", cold)
	if respCold.StatusCode != http.StatusTooManyRequests {
		t.Errorf("cold degrade status = %d, want 429", respCold.StatusCode)
	}
	if respCold.Header.Get("Retry-After") == "" {
		t.Error("cold-degrade 429 carries no Retry-After")
	}

	var health healthResponse
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Degraded != 1 {
		t.Errorf("healthz degraded = %d, want 1", health.Degraded)
	}
}

// TestRetryAfterHintTracksQueueWait is the regression test for the
// hardcoded Retry-After constants: the hint must follow the observed
// queue-wait distribution — fallback before any observation, the
// (clamped, rounded) histogram quantile after.
func TestRetryAfterHintTracksQueueWait(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: -1, Deadline: 5 * time.Second}, 100)
	release, err := srv.adm.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// No queue waits observed yet: the 429 falls back to 1s.
	resp, _ := postJSON(t, ts.URL+"/v1/sample", sampleBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("empty-histogram 429 Retry-After = %q, want fallback 1", got)
	}

	// Seed the histogram with ~7s queue waits; the median-derived hint
	// must move off the fallback and match the derived value exactly.
	for i := 0; i < 16; i++ {
		srv.observeQueueWait(DefaultTenant, 7400*time.Millisecond)
	}
	want := srv.retryAfterHint(0.50, 1)
	if n, err := strconv.Atoi(want); err != nil || n < 2 || n > 30 {
		t.Fatalf("derived hint %q not in (1, 30]", want)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/sample", sampleBody)
	if got := resp.Header.Get("Retry-After"); got != want {
		t.Errorf("seeded 429 Retry-After = %q, want %q (median of observed waits)", got, want)
	}

	// Queue waits beyond the cap clamp to 30s.
	for i := 0; i < 64; i++ {
		srv.observeQueueWait(DefaultTenant, 5*time.Minute)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/sample", sampleBody)
	if got := resp.Header.Get("Retry-After"); got != "30" {
		t.Errorf("clamped 429 Retry-After = %q, want 30", got)
	}
}

// TestRetryAfter503UsesTailQuantile pins the 503 side: a queued request
// whose deadline expires gets a p99-derived hint, with the deadline-
// derived fallback before any observation.
func TestRetryAfter503UsesTailQuantile(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 4, Deadline: 60 * time.Millisecond}, 100)
	release, err := srv.adm.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	resp, _ := postJSON(t, ts.URL+"/v1/sample", sampleBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	first := resp.Header.Get("Retry-After")
	if first == "" {
		t.Fatal("503 carries no Retry-After")
	}
	// That expiry itself was not a granted queue wait, so the histogram
	// only fills via observeQueueWait; seed a heavy tail and re-check.
	for i := 0; i < 32; i++ {
		srv.observeQueueWait(DefaultTenant, 11*time.Second)
	}
	want := srv.retryAfterHint(0.99, 1)
	resp, _ = postJSON(t, ts.URL+"/v1/sample", sampleBody)
	if got := resp.Header.Get("Retry-After"); got != want {
		t.Errorf("tail-seeded 503 Retry-After = %q, want %q", got, want)
	}
}

// TestTenantHeaderRoutesAdmission exercises the tenant plumbing at the
// HTTP layer: per-tenant queue caps shed with a tenant-named error while
// other tenants sail through, and /healthz reports the per-tenant split.
func TestTenantHeaderRoutesAdmission(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{
		MaxInFlight: 4, MaxQueue: 16, Deadline: 5 * time.Second,
		Tenants: map[string]TenantPolicy{
			"capped": {Weight: 1, MaxInFlight: 1, MaxQueue: 1},
		},
	}, 100)

	// Occupy capped's only slot directly at the admission layer.
	release, _, err := srv.adm.EnterTenant(context.Background(), "capped")
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// One capped request queues (fills the per-tenant queue)…
	queuedDone := make(chan int, 1)
	go func() {
		resp, _ := postTenant(t, ts.URL+"/v1/sample", "capped", sampleBody)
		queuedDone <- resp.StatusCode
	}()
	waitFor(t, func() bool { return srv.adm.Queued() == 1 })

	// …so the next capped request sheds with the tenant named, while an
	// untagged request admits immediately.
	resp, body := postTenant(t, ts.URL+"/v1/sample", "capped", sampleBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d, want 429: %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte(`capped`)) {
		t.Errorf("shed body %q does not name the tenant", body)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/sample", sampleBody); resp.StatusCode != http.StatusOK {
		t.Errorf("untagged request during capped saturation: %d: %s", resp.StatusCode, body)
	}

	release()
	if code := <-queuedDone; code != http.StatusOK {
		t.Errorf("queued capped request finished %d, want 200", code)
	}

	var health healthResponse
	getJSON(t, ts.URL+"/healthz", &health)
	var capped *TenantStats
	for i := range health.Tenants {
		if health.Tenants[i].Tenant == "capped" {
			capped = &health.Tenants[i]
		}
	}
	if capped == nil {
		t.Fatalf("healthz tenants = %+v, want a capped entry", health.Tenants)
	}
	if capped.ShedQueueFull != 1 || capped.Admitted == 0 {
		t.Errorf("capped stats = %+v, want shed_queue_full=1 and admissions", capped)
	}
	if health.QueueWait == nil || health.QueueWait.Count == 0 {
		t.Errorf("healthz queue_wait = %+v, want observed waits", health.QueueWait)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRetryAfterColdStart is the cold-start audit for the hint: with a
// completely empty server_queue_seconds histogram (no request has ever
// completed, let alone queued), both the 429 and the 503 paths must fall
// back to their fixed hints — a parseable integer ≥ 1, never "0", "NaN",
// or an empty header.
func TestRetryAfterColdStart(t *testing.T) {
	// 429 side: queue disabled, the single slot occupied out-of-band.
	srv, ts, _ := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: -1, Deadline: 5 * time.Second}, 100)
	if h := srv.rec.Histogram(HistQueueSeconds); h.Count() != 0 {
		t.Fatalf("queue histogram pre-seeded with %d observations", h.Count())
	}
	release, err := srv.adm.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := postJSON(t, ts.URL+"/v1/sample", sampleBody)
	release()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	checkColdHint(t, "429", resp.Header.Get("Retry-After"))

	// 503 side: a queued request whose deadline expires before any
	// completion has been observed.
	srv2, ts2, _ := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 4, Deadline: 60 * time.Millisecond}, 100)
	release2, err := srv2.adm.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	resp2, _ := postJSON(t, ts2.URL+"/v1/sample", sampleBody)
	release2()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp2.StatusCode)
	}
	checkColdHint(t, "503", resp2.Header.Get("Retry-After"))

	// The hint derivation itself, straight against an empty histogram at
	// both quantiles, including a pathological fallback of 0: the clamp
	// floor must hold.
	for _, q := range []float64{0.50, 0.99} {
		for _, fb := range []int64{0, 1, 5} {
			got := srv.retryAfterHint(q, fb)
			n, err := strconv.ParseInt(got, 10, 64)
			if err != nil || n < 1 || n > 30 {
				t.Errorf("retryAfterHint(%v, %d) over empty histogram = %q, want integer in [1,30]", q, fb, got)
			}
		}
	}
}

func checkColdHint(t *testing.T, status, got string) {
	t.Helper()
	if got == "" {
		t.Fatalf("cold-start %s carries no Retry-After", status)
	}
	n, err := strconv.ParseInt(got, 10, 64)
	if err != nil {
		t.Fatalf("cold-start %s Retry-After = %q, not an integer", status, got)
	}
	if n < 1 {
		t.Errorf("cold-start %s Retry-After = %d, want ≥ 1", status, n)
	}
}
