package birch

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/stats"
)

func TestCFBasics(t *testing.T) {
	cf := NewCF(geom.Point{1, 2})
	cf.Add(geom.Point{3, 4})
	if cf.N != 2 {
		t.Fatalf("N = %d", cf.N)
	}
	if !cf.LS.Equal(geom.Point{4, 6}) {
		t.Errorf("LS = %v", cf.LS)
	}
	if cf.SS != 1+4+9+16 {
		t.Errorf("SS = %v", cf.SS)
	}
	if !cf.Centroid().Equal(geom.Point{2, 3}) {
		t.Errorf("centroid = %v", cf.Centroid())
	}
}

func TestCFMerge(t *testing.T) {
	a := NewCF(geom.Point{0, 0})
	b := NewCF(geom.Point{2, 0})
	a.Merge(b)
	if a.N != 2 || !a.Centroid().Equal(geom.Point{1, 0}) {
		t.Errorf("merged = %+v", a)
	}
	// radius of {(0,0),(2,0)} is 1
	if math.Abs(a.Radius()-1) > 1e-12 {
		t.Errorf("radius = %v", a.Radius())
	}
}

func TestCFMergeEmpty(t *testing.T) {
	var a CF
	b := NewCF(geom.Point{1, 1})
	a.Merge(b)
	if a.N != 1 || !a.Centroid().Equal(geom.Point{1, 1}) {
		t.Errorf("merge into empty = %+v", a)
	}
	c := NewCF(geom.Point{2, 2})
	c.Merge(CF{})
	if c.N != 1 {
		t.Error("merging empty changed CF")
	}
}

func TestCFRadiusMatchesDefinition(t *testing.T) {
	rng := stats.NewRNG(1)
	pts := make([]geom.Point, 100)
	var cf CF
	for i := range pts {
		pts[i] = geom.Point{rng.Float64(), rng.Float64()}
		cf.Add(pts[i])
	}
	c := cf.Centroid()
	var sum float64
	for _, p := range pts {
		sum += geom.SquaredDistance(p, c)
	}
	want := math.Sqrt(sum / 100)
	if math.Abs(cf.Radius()-want) > 1e-9 {
		t.Errorf("radius = %v, want %v", cf.Radius(), want)
	}
}

func TestMergedRadiusDoesNotMutate(t *testing.T) {
	a := NewCF(geom.Point{0, 0})
	b := NewCF(geom.Point{1, 0})
	_ = a.MergedRadius(b)
	if a.N != 1 {
		t.Error("MergedRadius mutated its receiver")
	}
}

func blobDataset(k, each int, rng *stats.RNG) (*dataset.InMemory, []geom.Point) {
	centers := make([]geom.Point, k)
	pts := make([]geom.Point, 0, k*each)
	for c := 0; c < k; c++ {
		cx := float64(c%3)*0.35 + 0.12
		cy := float64(c/3)*0.35 + 0.12
		centers[c] = geom.Point{cx, cy}
		for i := 0; i < each; i++ {
			pts = append(pts, geom.Point{cx + rng.Normal(0, 0.02), cy + rng.Normal(0, 0.02)})
		}
	}
	rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
	return dataset.MustInMemory(pts), centers
}

func TestClusterValidation(t *testing.T) {
	rng := stats.NewRNG(2)
	ds, _ := blobDataset(2, 50, rng)
	if _, err := Cluster(ds, Options{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Cluster(ds, Options{K: 2, PageSize: -1}); err == nil {
		t.Error("negative page size accepted")
	}
}

func TestClusterFindsBlobCenters(t *testing.T) {
	rng := stats.NewRNG(3)
	ds, centers := blobDataset(4, 2000, rng)
	res, err := Cluster(ds, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 4 {
		t.Fatalf("got %d clusters", len(res.Clusters))
	}
	// Every true center must be close to some reported centroid.
	for _, c := range centers {
		best := math.Inf(1)
		for _, s := range res.Clusters {
			if d := geom.Distance(c, s.Centroid); d < best {
				best = d
			}
		}
		if best > 0.05 {
			t.Errorf("center %v missed by %v", c, best)
		}
	}
	// Sizes should account for all points.
	total := 0
	for _, s := range res.Clusters {
		total += s.N
	}
	if total != ds.Len() {
		t.Errorf("clusters cover %d of %d points", total, ds.Len())
	}
}

func TestClusterSinglePass(t *testing.T) {
	rng := stats.NewRNG(4)
	ds, _ := blobDataset(2, 500, rng)
	if _, err := Cluster(ds, Options{K: 2}); err != nil {
		t.Fatal(err)
	}
	if ds.Passes() != 1 {
		t.Errorf("BIRCH used %d passes, want 1", ds.Passes())
	}
}

func TestMemoryBudgetForcesRebuilds(t *testing.T) {
	rng := stats.NewRNG(5)
	ds, _ := blobDataset(4, 3000, rng)
	tight, err := Cluster(ds, Options{K: 4, MemoryBudget: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Rebuilds == 0 {
		t.Error("tight budget should force at least one rebuild")
	}
	if tight.Threshold == 0 {
		t.Error("rebuilds must raise the threshold")
	}
	loose, err := Cluster(ds, Options{K: 4, MemoryBudget: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Rebuilds != 0 {
		t.Errorf("loose budget rebuilt %d times", loose.Rebuilds)
	}
	if tight.LeafEntries >= loose.LeafEntries {
		t.Errorf("tight budget leaf entries %d >= loose %d", tight.LeafEntries, loose.LeafEntries)
	}
	// Quality must survive the compression: centers still found.
	if len(tight.Clusters) != 4 {
		t.Errorf("tight run produced %d clusters", len(tight.Clusters))
	}
}

func TestClusterPreservesCount(t *testing.T) {
	rng := stats.NewRNG(6)
	ds, _ := blobDataset(3, 1000, rng)
	res, err := Cluster(ds, Options{K: 3, MemoryBudget: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range res.Clusters {
		total += s.N
	}
	if total != ds.Len() {
		t.Errorf("CF count drift: %d of %d", total, ds.Len())
	}
}

func TestGlobalClusterFewerEntriesThanK(t *testing.T) {
	leaves := []CF{NewCF(geom.Point{0, 0}), NewCF(geom.Point{1, 1})}
	sums := globalCluster(leaves, 5)
	if len(sums) != 2 {
		t.Errorf("got %d summaries, want 2", len(sums))
	}
}

func TestGlobalClusterWeighted(t *testing.T) {
	// A heavy CF and two nearby light ones: merging must favour the
	// closest pair, and the merged centroid must be weight-correct.
	heavy := CF{N: 100, LS: geom.Point{100 * 0.5, 100 * 0.5}, SS: 100 * 0.5}
	l1 := NewCF(geom.Point{0.9, 0.9})
	l2 := NewCF(geom.Point{0.92, 0.9})
	sums := globalCluster([]CF{heavy, l1, l2}, 2)
	if len(sums) != 2 {
		t.Fatalf("got %d", len(sums))
	}
	// one summary is the heavy CF, the other the merged lights
	var small *Summary
	for i := range sums {
		if sums[i].N == 2 {
			small = &sums[i]
		}
	}
	if small == nil {
		t.Fatal("light CFs not merged together")
	}
	if math.Abs(small.Centroid[0]-0.91) > 1e-9 {
		t.Errorf("merged light centroid = %v", small.Centroid)
	}
}

func TestHighDimensional(t *testing.T) {
	rng := stats.NewRNG(7)
	const d = 8
	pts := make([]geom.Point, 0, 2000)
	for c := 0; c < 2; c++ {
		center := make(geom.Point, d)
		for j := range center {
			center[j] = 0.25 + 0.5*float64(c)
		}
		for i := 0; i < 1000; i++ {
			p := make(geom.Point, d)
			for j := range p {
				p[j] = center[j] + rng.Normal(0, 0.03)
			}
			pts = append(pts, p)
		}
	}
	ds := dataset.MustInMemory(pts)
	res, err := Cluster(ds, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("got %d clusters", len(res.Clusters))
	}
	for _, s := range res.Clusters {
		if s.N < 900 || s.N > 1100 {
			t.Errorf("unbalanced cluster N = %d", s.N)
		}
	}
}
