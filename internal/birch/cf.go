// Package birch implements the BIRCH clustering algorithm (Zhang,
// Ramakrishnan, Livny — SIGMOD 1996), the comparison system of §4: a
// CF-tree summarizing the dataset in one pass under a memory budget,
// followed by a global clustering phase over the leaf entries.
//
// Matching the paper's setup (§4.2): page size 1024 bytes, initial
// threshold 0, and the CF-tree constrained to "as much space as the size
// of the sample" while BIRCH itself scans the entire dataset.
package birch

import (
	"math"

	"repro/internal/geom"
)

// CF is a clustering feature: the sufficient statistics (N, LS, SS) of a
// set of points, supporting constant-time merge and the centroid/radius
// queries BIRCH needs.
type CF struct {
	// N is the number of points summarized.
	N int
	// LS is the per-dimension linear sum Σ x_i.
	LS geom.Point
	// SS is the scalar square sum Σ ||x_i||².
	SS float64
}

// NewCF returns the clustering feature of a single point.
func NewCF(p geom.Point) CF {
	var ss float64
	for _, v := range p {
		ss += v * v
	}
	return CF{N: 1, LS: p.Clone(), SS: ss}
}

// Add folds a point into the feature.
func (c *CF) Add(p geom.Point) {
	if c.N == 0 {
		*c = NewCF(p)
		return
	}
	c.N++
	for i, v := range p {
		c.LS[i] += v
		c.SS += v * v
	}
}

// Merge folds another feature into c.
func (c *CF) Merge(o CF) {
	if o.N == 0 {
		return
	}
	if c.N == 0 {
		c.N = o.N
		c.LS = o.LS.Clone()
		c.SS = o.SS
		return
	}
	c.N += o.N
	c.LS.AddInPlace(o.LS)
	c.SS += o.SS
}

// Centroid returns LS/N. It panics on an empty feature.
func (c *CF) Centroid() geom.Point {
	if c.N == 0 {
		panic("birch: centroid of empty CF")
	}
	return c.LS.Scale(1 / float64(c.N))
}

// Radius returns the root-mean-square distance of the summarized points
// from their centroid: sqrt(SS/N - ||LS/N||²).
func (c *CF) Radius() float64 {
	if c.N == 0 {
		return 0
	}
	n := float64(c.N)
	var cc float64
	for _, v := range c.LS {
		cc += (v / n) * (v / n)
	}
	r2 := c.SS/n - cc
	if r2 < 0 {
		return 0 // float rounding on tight clusters
	}
	return math.Sqrt(r2)
}

// MergedRadius returns the radius the union of c and o would have, without
// materializing the merge — the absorb test of the insertion algorithm.
func (c *CF) MergedRadius(o CF) float64 {
	m := CF{N: c.N, LS: c.LS.Clone(), SS: c.SS}
	m.Merge(o)
	return m.Radius()
}

// CentroidDistance returns the Euclidean distance between the centroids of
// c and o (the D0 metric of the BIRCH paper).
func (c *CF) CentroidDistance(o CF) float64 {
	return geom.Distance(c.Centroid(), o.Centroid())
}
