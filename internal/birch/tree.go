package birch

import (
	"errors"
	"math"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// Options configure a BIRCH run.
type Options struct {
	// K is the number of clusters the global phase produces. Required.
	K int

	// PageSize is the node size in bytes (default 1024, the paper's
	// setting). It determines the branching factor from the entry size.
	PageSize int

	// MemoryBudget caps the CF-tree size in bytes. When tree growth
	// exceeds it, the tree is rebuilt with a larger threshold. §4.2 sets
	// this to the byte size of the competing sample. Default 256 KiB.
	MemoryBudget int

	// InitialThreshold is the starting absorption threshold T
	// (default 0, the paper's setting).
	InitialThreshold float64

	// OutlierFraction enables BIRCH's leaf-outlier handling: leaf
	// entries holding fewer than OutlierFraction times the average
	// entry population are discarded before the global phase (they are
	// "far fewer points than average" — noise). 0 disables it.
	OutlierFraction float64
}

// Summary describes one output cluster: BIRCH reports centers and radii
// (§4.3: "BIRCH reports cluster centers and radiuses").
type Summary struct {
	N        int
	Centroid geom.Point
	Radius   float64
}

// Result is the output of a BIRCH run.
type Result struct {
	Clusters []Summary
	// Rebuilds counts threshold-raising tree rebuilds forced by the
	// memory budget.
	Rebuilds int
	// LeafEntries is the number of CF entries feeding the global phase.
	LeafEntries int
	// Threshold is the final absorption threshold.
	Threshold float64
}

type entry struct {
	cf    CF
	child *node // nil in leaves
}

type node struct {
	leaf    bool
	entries []entry
}

type tree struct {
	root      *node
	branch    int // max entries per node
	threshold float64
	nodes     int
	dims      int
}

func newTree(dims, branch int, threshold float64) *tree {
	return &tree{
		root:      &node{leaf: true},
		branch:    branch,
		threshold: threshold,
		nodes:     1,
		dims:      dims,
	}
}

// insert adds a CF (a point's feature or a rebuilt leaf entry) to the tree.
func (t *tree) insert(cf CF) {
	split := t.insertAt(t.root, cf)
	if split != nil {
		// Root split: grow a new root referencing both halves.
		old := t.root
		t.root = &node{
			leaf: false,
			entries: []entry{
				{cf: sumNode(old), child: old},
				{cf: sumNode(split), child: split},
			},
		}
		t.nodes++
	}
}

// insertAt descends into n; a non-nil return is the sibling produced by a
// split that the caller must attach.
func (t *tree) insertAt(n *node, cf CF) *node {
	if n.leaf {
		if len(n.entries) > 0 {
			best := t.closest(n, cf)
			if n.entries[best].cf.MergedRadius(cf) <= t.threshold {
				n.entries[best].cf.Merge(cf)
				return nil
			}
		}
		n.entries = append(n.entries, entry{cf: cf})
		if len(n.entries) > t.branch {
			return t.split(n)
		}
		return nil
	}

	best := t.closest(n, cf)
	child := n.entries[best].child
	sibling := t.insertAt(child, cf)
	n.entries[best].cf.Merge(cf)
	if sibling != nil {
		n.entries[best].cf = sumNode(child)
		n.entries = append(n.entries, entry{cf: sumNode(sibling), child: sibling})
		if len(n.entries) > t.branch {
			return t.split(n)
		}
	}
	return nil
}

// closest returns the index of the entry whose centroid is nearest cf's.
func (t *tree) closest(n *node, cf CF) int {
	best, bestD := 0, math.Inf(1)
	c := cf.Centroid()
	for i := range n.entries {
		if d := sqDistToCentroid(c, &n.entries[i].cf); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// sqDistToCentroid computes ||p - LS/N||² without materializing the
// centroid — insertion spends most of its time here.
func sqDistToCentroid(p geom.Point, cf *CF) float64 {
	inv := 1 / float64(cf.N)
	var s float64
	for i, v := range p {
		d := v - cf.LS[i]*inv
		s += d * d
	}
	return s
}

// split divides n's entries between n and a new sibling, seeding with the
// farthest entry pair (by centroid distance) and assigning the rest to the
// nearer seed.
func (t *tree) split(n *node) *node {
	entries := n.entries
	s1, s2 := farthestPair(entries)
	a := make([]entry, 0, len(entries)/2+1)
	b := make([]entry, 0, len(entries)/2+1)
	c1 := entries[s1].cf.Centroid()
	c2 := entries[s2].cf.Centroid()
	for i, e := range entries {
		switch {
		case i == s1:
			a = append(a, e)
		case i == s2:
			b = append(b, e)
		default:
			c := e.cf.Centroid()
			if geom.SquaredDistance(c, c1) <= geom.SquaredDistance(c, c2) {
				a = append(a, e)
			} else {
				b = append(b, e)
			}
		}
	}
	n.entries = a
	sib := &node{leaf: n.leaf, entries: b}
	t.nodes++
	return sib
}

func farthestPair(entries []entry) (int, int) {
	bi, bj, bd := 0, 1, -1.0
	for i := range entries {
		ci := entries[i].cf.Centroid()
		for j := i + 1; j < len(entries); j++ {
			if d := sqDistToCentroid(ci, &entries[j].cf); d > bd {
				bi, bj, bd = i, j, d
			}
		}
	}
	return bi, bj
}

// sumNode returns the CF covering all entries of n.
func sumNode(n *node) CF {
	var cf CF
	for i := range n.entries {
		cf.Merge(n.entries[i].cf)
	}
	return cf
}

// leafCFs collects every leaf entry in the tree.
func (t *tree) leafCFs() []CF {
	var out []CF
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			for i := range n.entries {
				out = append(out, n.entries[i].cf)
			}
			return
		}
		for i := range n.entries {
			walk(n.entries[i].child)
		}
	}
	walk(t.root)
	return out
}

// sizeBytes estimates the tree's memory footprint as nodes × pageSize.
func (t *tree) sizeBytes(pageSize int) int { return t.nodes * pageSize }

// entryBytes returns the byte size of one CF entry in d dimensions:
// 8 bytes per LS coordinate, 8 for SS, 8 for N, 8 for the child pointer.
func entryBytes(d int) int { return 8*d + 24 }

// Cluster runs BIRCH over ds: one dataset pass builds the CF-tree under
// the memory budget (raising the threshold and rebuilding as needed), then
// the global phase agglomerates the leaf entries into K weighted clusters.
func Cluster(ds dataset.Dataset, opts Options) (*Result, error) {
	if opts.K <= 0 {
		return nil, errors.New("birch: K must be positive")
	}
	if ds.Len() == 0 {
		return nil, errors.New("birch: empty dataset")
	}
	pageSize := opts.PageSize
	if pageSize == 0 {
		pageSize = 1024
	}
	memory := opts.MemoryBudget
	if memory == 0 {
		memory = 256 << 10
	}
	if pageSize <= 0 || memory <= 0 {
		return nil, errors.New("birch: PageSize and MemoryBudget must be positive")
	}
	d := ds.Dims()
	branch := pageSize / entryBytes(d)
	if branch < 4 {
		branch = 4
	}

	tr := newTree(d, branch, opts.InitialThreshold)
	rebuilds := 0
	err := ds.Scan(func(p geom.Point) error {
		tr.insert(NewCF(p))
		if tr.sizeBytes(pageSize) > memory {
			tr = rebuild(tr, d, branch)
			rebuilds++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	leaves := tr.leafCFs()
	if opts.OutlierFraction > 0 && len(leaves) > 0 {
		total := 0
		for _, cf := range leaves {
			total += cf.N
		}
		min := opts.OutlierFraction * float64(total) / float64(len(leaves))
		kept := leaves[:0]
		for _, cf := range leaves {
			if float64(cf.N) >= min {
				kept = append(kept, cf)
			}
		}
		if len(kept) >= opts.K {
			leaves = kept
		}
	}
	sums := globalCluster(leaves, opts.K)
	return &Result{
		Clusters:    sums,
		Rebuilds:    rebuilds,
		LeafEntries: len(leaves),
		Threshold:   tr.threshold,
	}, nil
}

// rebuild raises the threshold and reinserts all leaf entries into a fresh
// tree, shrinking it. The new threshold is the larger of 1.5× the old one
// and the smallest distance between two leaf-entry centroids (so at least
// one pair becomes mergeable), with a floor for the initial T=0 case.
func rebuild(t *tree, dims, branch int) *tree {
	leaves := t.leafCFs()
	// Estimate the smallest inter-entry distance from a bounded prefix of
	// entries: a full O(m²) pair scan per rebuild would dominate runtime.
	probe := leaves
	if len(probe) > 512 {
		probe = probe[:512]
	}
	minD := math.Inf(1)
	for i := range probe {
		ci := probe[i].Centroid()
		for j := i + 1; j < len(probe); j++ {
			if d := sqDistToCentroid(ci, &probe[j]); d > 0 && d < minD {
				minD = d
			}
		}
	}
	minD = math.Sqrt(minD)
	newT := 1.5 * t.threshold
	if math.IsInf(minD, 1) {
		minD = 0
	}
	if minD > newT {
		newT = minD
	}
	if newT == 0 {
		newT = 1e-6
	}
	nt := newTree(dims, branch, newT)
	for _, cf := range leaves {
		nt.insert(cf)
	}
	return nt
}
