package birch

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func cleanCoord(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e3)
}

// Property: merging CFs is commutative — (A ∪ B) and (B ∪ A) summarize the
// same set.
func TestPropCFMergeCommutative(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a1 := NewCF(geom.Point{cleanCoord(ax), cleanCoord(ay)})
		b1 := NewCF(geom.Point{cleanCoord(bx), cleanCoord(by)})
		a2 := NewCF(geom.Point{cleanCoord(ax), cleanCoord(ay)})
		b2 := NewCF(geom.Point{cleanCoord(bx), cleanCoord(by)})
		a1.Merge(b1)
		b2.Merge(a2)
		return a1.N == b2.N &&
			math.Abs(a1.SS-b2.SS) < 1e-9*(1+math.Abs(a1.SS)) &&
			a1.LS.Equal(b2.LS)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: building a CF point-by-point equals merging per-point CFs in
// any split order (associativity over a concrete partition).
func TestPropCFMergeAssociative(t *testing.T) {
	f := func(coords []float64, splitRaw uint8) bool {
		// Build a clean 2-D point list from the fuzz input.
		var pts []geom.Point
		for i := 0; i+1 < len(coords); i += 2 {
			pts = append(pts, geom.Point{cleanCoord(coords[i]), cleanCoord(coords[i+1])})
		}
		if len(pts) < 2 {
			return true
		}
		split := int(splitRaw) % len(pts)
		if split == 0 {
			split = 1
		}
		var whole CF
		for _, p := range pts {
			whole.Add(p)
		}
		var left, right CF
		for _, p := range pts[:split] {
			left.Add(p)
		}
		for _, p := range pts[split:] {
			right.Add(p)
		}
		left.Merge(right)
		return whole.N == left.N &&
			math.Abs(whole.SS-left.SS) < 1e-6*(1+math.Abs(whole.SS)) &&
			geom.Distance(whole.LS, left.LS) < 1e-6*(1+whole.LS.Norm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the radius of a merged CF is at least the distance structure
// allows — merging two separated singletons yields radius = half their
// distance, and radius is always non-negative and finite.
func TestPropCFRadiusSane(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		pa := geom.Point{cleanCoord(ax), cleanCoord(ay)}
		pb := geom.Point{cleanCoord(bx), cleanCoord(by)}
		a := NewCF(pa)
		a.Merge(NewCF(pb))
		r := a.Radius()
		if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
			return false
		}
		want := geom.Distance(pa, pb) / 2
		return math.Abs(r-want) < 1e-6*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
