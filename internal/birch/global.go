package birch

import "math"

// globalCluster agglomerates the leaf CF entries into k clusters using
// weighted centroid linkage — BIRCH's phase-3 global clustering adapted to
// clustering features: merging two entries merges their CFs, and the
// distance between entries is the distance between centroids.
func globalCluster(leaves []CF, k int) []Summary {
	type wc struct {
		cf    CF
		nn    int
		nnD   float64
		alive bool
	}
	ws := make([]wc, len(leaves))
	for i, cf := range leaves {
		ws[i] = wc{cf: cf, alive: true}
	}
	alive := len(ws)

	recompute := func(i int) {
		ws[i].nn, ws[i].nnD = -1, math.Inf(1)
		ci := ws[i].cf.Centroid()
		for j := range ws {
			if j == i || !ws[j].alive {
				continue
			}
			d := sqDistToCentroid(ci, &ws[j].cf)
			if d < ws[i].nnD {
				ws[i].nn, ws[i].nnD = j, d
			}
		}
	}
	for i := range ws {
		recompute(i)
	}

	for alive > k {
		bi, bd := -1, math.Inf(1)
		for i := range ws {
			if ws[i].alive && ws[i].nnD < bd {
				bi, bd = i, ws[i].nnD
			}
		}
		if bi < 0 {
			break
		}
		bj := ws[bi].nn
		ws[bi].cf.Merge(ws[bj].cf)
		ws[bj].alive = false
		alive--

		// Restore invariants in one scan, mirroring internal/cure.
		ws[bi].nn, ws[bi].nnD = -1, math.Inf(1)
		ci := ws[bi].cf.Centroid()
		var stale []int
		for c := range ws {
			if c == bi || !ws[c].alive {
				continue
			}
			d := sqDistToCentroid(ci, &ws[c].cf)
			if d < ws[bi].nnD {
				ws[bi].nn, ws[bi].nnD = c, d
			}
			w := &ws[c]
			if w.nn == bi || w.nn == bj {
				if d <= w.nnD {
					w.nn, w.nnD = bi, d
				} else {
					stale = append(stale, c)
				}
			} else if d < w.nnD {
				w.nn, w.nnD = bi, d
			}
		}
		for _, c := range stale {
			recompute(c)
		}
	}

	var out []Summary
	for i := range ws {
		if !ws[i].alive {
			continue
		}
		out = append(out, Summary{
			N:        ws[i].cf.N,
			Centroid: ws[i].cf.Centroid(),
			Radius:   ws[i].cf.Radius(),
		})
	}
	return out
}
