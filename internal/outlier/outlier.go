// Package outlier implements distance-based DB(p,k) outlier detection
// (§3.2): exact baselines following Knorr & Ng (nested loop with early
// termination, and a kd-tree index variant), and the paper's approximate
// algorithm driven by a density estimate — compute the expected number of
// neighbours N'_D(O,k) = ∫_Ball(O,k) f for every point, keep the points
// whose expectation falls below a candidate threshold, and verify only
// those candidates exactly in one more pass.
//
// A point O is a DB(p,k) outlier when at most p other points of the
// dataset lie at distance at most k from O. Following Knorr & Ng, p may
// also be given as a fraction fr of the dataset size (p = fr·|D|).
package outlier

import (
	"context"
	"errors"
	"sync"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Params are the DB(p,k) parameters. K is the neighbourhood radius
// (distance threshold), P the maximum neighbour count an outlier may have.
// Metric optionally selects the distance function for NestedLoop (§3.2:
// "different distance metrics (for example the L1 or Manhattan metric)
// can be used equally well"); nil means Euclidean. The indexed detectors
// (Exact, CellBased, Approximate) are Euclidean-only — their pruning
// structures assume the L2 geometry.
type Params struct {
	K      float64
	P      int
	Metric geom.Metric

	// Parallelism bounds the workers used by the detectors: 0 uses
	// runtime.GOMAXPROCS(0), 1 is the serial reference path. It is an
	// execution option only — each detector partitions its work so that
	// the reported outliers are identical for every setting.
	Parallelism int

	// Obs, when non-nil, records spans ("outlier/score",
	// "outlier/verify") and the candidate/pruned/found counters.
	// Recording never influences detection.
	Obs *obs.Recorder

	// Progress, when non-nil, is called from the dataset-scanning
	// detectors with (points scanned so far, total) — at most once per
	// block, from scan workers, so it must be safe for concurrent use.
	// The count restarts at each pass.
	Progress func(done, total int)

	// Ctx, when non-nil, cancels detection: every detector checks it at
	// block (or row-batch) granularity and a done context aborts with
	// parallel.ErrCanceled wrapping the context's error.
	Ctx context.Context
}

// FromFraction converts a fractional neighbour bound into Params
// (p = fr·n), per Definition 1's remark.
func FromFraction(k float64, fr float64, n int) Params {
	return Params{K: k, P: int(fr * float64(n))}
}

func (prm Params) validate() error {
	if prm.K <= 0 {
		return errors.New("outlier: K must be positive")
	}
	if prm.P < 0 {
		return errors.New("outlier: P must be non-negative")
	}
	return nil
}

// NestedLoop finds all DB(p,k) outliers by the quadratic nested-loop
// algorithm with early termination: a point is disqualified as soon as
// p+1 neighbours are seen. The self-distance does not count. Returns the
// indices of the outliers in input order.
func NestedLoop(pts []geom.Point, prm Params) ([]int, error) {
	if err := prm.validate(); err != nil {
		return nil, err
	}
	metric := prm.Metric
	if metric == nil {
		metric = geom.Euclidean{}
	}
	// Each point's verdict is independent, so the rows parallelize into a
	// flag slice; collecting set flags in index order preserves the serial
	// output exactly.
	flags := make([]bool, len(pts))
	err := parallel.DoCtxObs(prm.Ctx, len(pts), prm.Parallelism, prm.Obs, func(i int) error {
		p := pts[i]
		count := 0
		flags[i] = true
		for j, q := range pts {
			if i == j {
				continue
			}
			if metric.Distance(p, q) <= prm.K {
				count++
				if count > prm.P {
					flags[i] = false
					break
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return collect(flags), nil
}

// collect returns the indices of the set flags in ascending order.
func collect(flags []bool) []int {
	var out []int
	for i, f := range flags {
		if f {
			out = append(out, i)
		}
	}
	return out
}

// Exact finds all DB(p,k) outliers with a kd-tree index: each point's
// neighbour count within K is evaluated with an early-exit range count.
// Returns outlier indices in input order.
func Exact(pts []geom.Point, prm Params) ([]int, error) {
	if err := prm.validate(); err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, nil
	}
	tree := kdtree.Build(pts)
	flags := make([]bool, len(pts))
	err := parallel.DoCtxObs(prm.Ctx, len(pts), prm.Parallelism, prm.Obs, func(i int) error {
		// CountWithin includes the query point itself (distance 0), so an
		// outlier has at most P+1 in-range points; the limit lets the
		// search abort as soon as P+2 are seen.
		flags[i] = tree.CountWithin(pts[i], prm.K, prm.P+1) <= prm.P+1
		return nil
	})
	if err != nil {
		return nil, err
	}
	return collect(flags), nil
}

// BallIntegrator supplies the expected in-ball point count under a density
// estimate — N'_D(O,k) of §3.2. *kde.Estimator satisfies it.
type BallIntegrator interface {
	IntegrateBall(o geom.Point, r float64) float64
}

// ApproxOptions tune the approximate detector.
type ApproxOptions struct {
	// CandidateFactor widens the candidate net: points with expected
	// neighbour count N' ≤ CandidateFactor·(P+1) become candidates for
	// exact verification. Larger values trade verification work for
	// recall; the density estimate would have to overestimate an
	// outlier's neighbourhood by more than this factor for the algorithm
	// to miss it. Default 3.
	CandidateFactor float64
}

// Result reports an approximate detection run.
type Result struct {
	// Outliers are the verified outlier points.
	Outliers []geom.Point
	// NumCandidates is the size of the candidate set the density
	// estimate produced (the verification workload).
	NumCandidates int
	// DataPasses consumed by detection: 1 to score all points + 1 to
	// verify candidates (0 when no candidates survive scoring). The
	// estimator-construction pass is not included.
	DataPasses int
}

// Approximate runs the §3.2 algorithm over ds using the density estimate:
// score every point by its expected neighbour count, keep the low-density
// candidates, and verify them exactly against the full dataset in one more
// pass. With a representative estimator the result equals the exact
// outlier set, found in "at most two dataset passes plus the dataset pass
// … to compute the density estimator" (§4.5).
func Approximate(ds dataset.Dataset, est BallIntegrator, prm Params, opts ApproxOptions) (*Result, error) {
	if err := prm.validate(); err != nil {
		return nil, err
	}
	if est == nil {
		return nil, errors.New("outlier: nil estimator")
	}
	cf := opts.CandidateFactor
	if cf == 0 {
		cf = 3
	}
	if cf < 1 {
		return nil, errors.New("outlier: CandidateFactor must be ≥ 1")
	}
	threshold := cf * float64(prm.P+1)
	rec := prm.Obs
	scanCfg := dataset.ScanConfig{
		Parallelism: prm.Parallelism,
		Ctx:         prm.Ctx,
		Rec:         rec,
		Progress:    prm.Progress,
	}

	// Pass 1: expected neighbour count per point; collect candidates.
	// Each block gathers its own candidate slice and the slices are
	// concatenated in block order, so the candidate set (and therefore
	// everything downstream) is independent of the worker count.
	n := ds.Len()
	scoreSpan := rec.StartSpan("outlier/score")
	numBlocks := parallel.NumBlocks(n, parallel.BlockSize(0))
	blockCands := make([][]geom.Point, numBlocks)
	err := dataset.ScanBlocksCfg(ds, scanCfg, func(block, start int, pts []geom.Point) error {
		var cands []geom.Point
		for _, p := range pts {
			if est.IntegrateBall(p, prm.K) <= threshold {
				cands = append(cands, p.Clone())
			}
		}
		blockCands[block] = cands
		return nil
	})
	scoreSpan.AddPoints(int64(n))
	scoreSpan.End()
	if err != nil {
		return nil, err
	}
	var candidates []geom.Point
	for _, cands := range blockCands {
		candidates = append(candidates, cands...)
	}
	rec.Counter(obs.CtrOutlierCands).Add(int64(len(candidates)))
	rec.Counter(obs.CtrOutlierPruned).Add(int64(n - len(candidates)))
	res := &Result{NumCandidates: len(candidates), DataPasses: 1}
	if len(candidates) == 0 {
		return res, nil
	}

	// Pass 2: exact verification. A kd-tree over the candidates lets one
	// scan attribute every dataset point to the candidates it neighbours.
	// Blocks count into local arrays merged by integer addition, which is
	// order-independent; each local count is capped at P+2 — enough to
	// preserve the `> P+1` disqualification test on the merged sum while
	// letting hot candidates stop accumulating early.
	verifySpan := rec.StartSpan("outlier/verify")
	tree := kdtree.Build(candidates)
	counts := make([]int, len(candidates))
	var mu sync.Mutex
	err = dataset.ScanBlocksCfg(ds, scanCfg, func(block, start int, pts []geom.Point) error {
		local := make([]int, len(candidates))
		for _, p := range pts {
			for _, ci := range tree.Within(p, prm.K) {
				if local[ci] <= prm.P+1 {
					local[ci]++
				}
			}
		}
		mu.Lock()
		for ci, c := range local {
			if c > 0 {
				counts[ci] += c
			}
		}
		mu.Unlock()
		return nil
	})
	verifySpan.AddPoints(int64(n))
	verifySpan.End()
	if err != nil {
		return nil, err
	}
	res.DataPasses = 2
	for i, c := range candidates {
		// Each candidate sees itself once during the scan, so the true
		// neighbour bound P allows P+1 in-range hits.
		if counts[i] <= prm.P+1 {
			res.Outliers = append(res.Outliers, c)
		}
	}
	rec.Counter(obs.CtrOutlierFound).Add(int64(len(res.Outliers)))
	return res, nil
}

// EstimateCount estimates the number of DB(p,k) outliers in a single pass
// by counting points whose expected neighbour count is at most P+1 —
// the cheap parameter-exploration mode §3.2 advertises ("it can estimate
// the number of DB(p,k)-outliers in a dataset D very efficiently, in one
// dataset pass").
func EstimateCount(ds dataset.Dataset, est BallIntegrator, prm Params) (int, error) {
	if err := prm.validate(); err != nil {
		return 0, err
	}
	if est == nil {
		return 0, errors.New("outlier: nil estimator")
	}
	// Per-block tallies merged by addition: an order-independent integer
	// reduction, so the estimate matches the serial scan exactly.
	blockCounts := make([]int, parallel.NumBlocks(ds.Len(), parallel.BlockSize(0)))
	cfg := dataset.ScanConfig{Parallelism: prm.Parallelism, Ctx: prm.Ctx, Rec: prm.Obs, Progress: prm.Progress}
	err := dataset.ScanBlocksCfg(ds, cfg, func(block, start int, pts []geom.Point) error {
		c := 0
		for _, p := range pts {
			if est.IntegrateBall(p, prm.K) <= float64(prm.P+1) {
				c++
			}
		}
		blockCounts[block] = c
		return nil
	})
	if err != nil {
		return 0, err
	}
	count := 0
	for _, c := range blockCounts {
		count += c
	}
	return count, nil
}
