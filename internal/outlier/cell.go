package outlier

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// CellBased finds all DB(p,k) outliers with the cell-based algorithm of
// Knorr & Ng (VLDB 1998), the batch-oriented exact method their paper
// recommends for low dimensionality. The space is partitioned into cells
// of side k/(2√d); with that side:
//
//   - any two points in the same cell or in cells at Chebyshev cell
//     distance 1 (the L1 neighbourhood) are within distance k, so a cell
//     whose L1 neighbourhood holds more than p+1 points contains no
//     outliers and is pruned wholesale;
//   - points in cells at Chebyshev cell distance greater than ⌈2√d⌉ are
//     farther than k apart, so a cell whose whole reachable neighbourhood
//     (L1 plus the L2 shell) holds at most p+1 points contains only
//     outliers;
//   - only points in the remaining "white" cells are compared against the
//     L2-shell points individually.
//
// Cells are kept sparsely in a map, so memory is proportional to the
// number of occupied cells. Returns outlier indices in input order.
func CellBased(pts []geom.Point, prm Params) ([]int, error) {
	if err := prm.validate(); err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, nil
	}
	d := pts[0].Dims()
	side := prm.K / (2 * math.Sqrt(float64(d)))
	// The L2 shell extends to the last cell ring that can still contain
	// points within distance k: rings m with (m-1)·side < k.
	maxRing := int(math.Ceil(2*math.Sqrt(float64(d)))) + 1

	// In high dimensionality the (2·maxRing+1)^d neighbourhood explodes —
	// the known limitation of the cell algorithm. Guard and let callers
	// fall back to Exact.
	if neigh := math.Pow(float64(2*maxRing+1), float64(d)); neigh > 1e6 {
		return Exact(pts, prm)
	}

	origin := pts[0].Clone()
	for _, p := range pts {
		for j, v := range p {
			if v < origin[j] {
				origin[j] = v
			}
		}
	}

	type cellKey string
	coord := make([]int, d)
	keyOf := func(p geom.Point) cellKey {
		buf := make([]byte, 0, d*5)
		for j, v := range p {
			c := int((v - origin[j]) / side)
			coord[j] = c
			for s := 0; s < 4; s++ {
				buf = append(buf, byte(c>>(8*s)))
			}
		}
		return cellKey(buf)
	}

	type cell struct {
		coords  []int
		members []int
	}
	cells := map[cellKey]*cell{}
	for i, p := range pts {
		k := keyOf(p)
		c := cells[k]
		if c == nil {
			c = &cell{coords: append([]int(nil), coord...)}
			cells[k] = c
		}
		c.members = append(c.members, i)
	}

	keyOfCoords := func(cs []int) cellKey {
		buf := make([]byte, 0, d*5)
		for _, c := range cs {
			for s := 0; s < 4; s++ {
				buf = append(buf, byte(c>>(8*s)))
			}
		}
		return cellKey(buf)
	}

	// neighbours visits every occupied cell at Chebyshev distance in
	// [1, ring] of c.
	neighbours := func(c *cell, ring int, visit func(*cell)) {
		offs := make([]int, d)
		var walk func(j int)
		walk = func(j int) {
			if j == d {
				all0 := true
				cs := make([]int, d)
				for i := range offs {
					if offs[i] != 0 {
						all0 = false
					}
					cs[i] = c.coords[i] + offs[i]
				}
				if all0 {
					return
				}
				if o := cells[keyOfCoords(cs)]; o != nil {
					visit(o)
				}
				return
			}
			for v := -ring; v <= ring; v++ {
				offs[j] = v
				walk(j + 1)
			}
		}
		walk(0)
	}

	var out []int
	k2 := prm.K * prm.K
	for _, c := range cells {
		// Count the L1 neighbourhood (everything surely within k).
		l1 := len(c.members)
		neighbours(c, 1, func(o *cell) { l1 += len(o.members) })
		if l1 > prm.P+1 {
			continue // red: no outliers here
		}
		// Count the full reachable neighbourhood.
		reach := len(c.members)
		var l2cells []*cell
		neighbours(c, maxRing, func(o *cell) {
			reach += len(o.members)
			if cheby(c.coords, o.coords) >= 2 {
				l2cells = append(l2cells, o)
			}
		})
		if reach <= prm.P+1 {
			// All points in this cell are outliers (even counting every
			// reachable point as a neighbour they stay under the bound).
			out = append(out, c.members...)
			continue
		}
		// White cell: verify members individually against the L2 shell.
		for _, i := range c.members {
			count := l1 - 1 // same cell + L1 all within k; minus self
			isOutlier := true
			for _, o := range l2cells {
				for _, j := range o.members {
					if geom.SquaredDistance(pts[i], pts[j]) <= k2 {
						count++
						if count > prm.P {
							isOutlier = false
							break
						}
					}
				}
				if !isOutlier {
					break
				}
			}
			if isOutlier && count <= prm.P {
				out = append(out, i)
			}
		}
	}
	// Map iteration order is random; restore input order.
	sort.Ints(out)
	return out, nil
}

func cheby(a, b []int) int {
	m := 0
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
