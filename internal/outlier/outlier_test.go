package outlier

import (
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/kde"
	"repro/internal/stats"
)

// clusterWithOutliers builds one dense blob plus m isolated points far
// from it; returns the points and the indices of the isolated ones.
func clusterWithOutliers(n, m int, rng *stats.RNG) ([]geom.Point, map[int]bool) {
	pts := make([]geom.Point, 0, n+m)
	for i := 0; i < n; i++ {
		pts = append(pts, geom.Point{0.3 + 0.1*rng.Float64(), 0.3 + 0.1*rng.Float64()})
	}
	outliers := map[int]bool{}
	for i := 0; i < m; i++ {
		pts = append(pts, geom.Point{0.8 + 0.02*float64(i), 0.85})
		outliers[n+i] = true
	}
	return pts, outliers
}

func TestParamsValidation(t *testing.T) {
	if _, err := NestedLoop(nil, Params{K: 0, P: 1}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Exact(nil, Params{K: 1, P: -1}); err == nil {
		t.Error("P<0 accepted")
	}
}

func TestFromFraction(t *testing.T) {
	prm := FromFraction(0.1, 0.02, 5000)
	if prm.P != 100 || prm.K != 0.1 {
		t.Errorf("FromFraction = %+v", prm)
	}
}

func TestNestedLoopFindsPlanted(t *testing.T) {
	rng := stats.NewRNG(1)
	pts, truth := clusterWithOutliers(500, 3, rng)
	got, err := NestedLoop(pts, Params{K: 0.05, P: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("found %d outliers, want 3: %v", len(got), got)
	}
	for _, i := range got {
		if !truth[i] {
			t.Errorf("false positive index %d", i)
		}
	}
}

func TestExactMatchesNestedLoop(t *testing.T) {
	rng := stats.NewRNG(2)
	pts, _ := clusterWithOutliers(800, 5, rng)
	// Add moderate background so counts vary.
	for i := 0; i < 100; i++ {
		pts = append(pts, geom.Point{rng.Float64(), rng.Float64()})
	}
	for _, prm := range []Params{{K: 0.03, P: 0}, {K: 0.05, P: 2}, {K: 0.1, P: 10}} {
		nl, err := NestedLoop(pts, prm)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := Exact(pts, prm)
		if err != nil {
			t.Fatal(err)
		}
		sort.Ints(nl)
		sort.Ints(ex)
		if len(nl) != len(ex) {
			t.Fatalf("prm %+v: nested %d vs exact %d outliers", prm, len(nl), len(ex))
		}
		for i := range nl {
			if nl[i] != ex[i] {
				t.Fatalf("prm %+v: outlier sets differ", prm)
			}
		}
	}
}

func TestExactEmpty(t *testing.T) {
	got, err := Exact(nil, Params{K: 1, P: 0})
	if err != nil || got != nil {
		t.Errorf("empty input: %v, %v", got, err)
	}
}

func TestSelfDoesNotCount(t *testing.T) {
	// A single isolated point with P=0 must be an outlier (it has zero
	// neighbours besides itself).
	pts := []geom.Point{{0, 0}, {10, 10}, {10.001, 10}}
	got, err := Exact(pts, Params{K: 0.1, P: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("outliers = %v, want [0]", got)
	}
}

func TestApproximateFindsAllWithTwoPasses(t *testing.T) {
	rng := stats.NewRNG(3)
	pts, truth := clusterWithOutliers(5000, 4, rng)
	ds := dataset.MustInMemory(pts)
	est, err := kde.Build(ds, kde.Options{NumKernels: 500}, rng)
	if err != nil {
		t.Fatal(err)
	}
	prm := Params{K: 0.05, P: 2}
	base := ds.Passes()
	res, err := Approximate(ds, est, prm, ApproxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DataPasses != 2 || ds.Passes()-base != 2 {
		t.Errorf("passes = %d (reported %d), want 2", ds.Passes()-base, res.DataPasses)
	}
	// Recall must be total: every planted outlier recovered.
	exact, err := Exact(pts, prm)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outliers) != len(exact) {
		t.Fatalf("approximate found %d, exact %d", len(res.Outliers), len(exact))
	}
	for _, o := range res.Outliers {
		idx := -1
		for i, p := range pts {
			if p.Equal(o) {
				idx = i
				break
			}
		}
		if idx < 0 || !truth[idx] {
			t.Errorf("unexpected outlier %v", o)
		}
	}
	// The candidate set must be much smaller than the dataset — that is
	// the point of the density filter.
	if res.NumCandidates > ds.Len()/10 {
		t.Errorf("candidates = %d of %d", res.NumCandidates, ds.Len())
	}
}

func TestApproximateNoCandidatesOnePass(t *testing.T) {
	// A uniform blob with a huge P: nothing can be an outlier, so the
	// expected-count filter keeps nobody and the verify pass is skipped.
	rng := stats.NewRNG(4)
	pts, _ := clusterWithOutliers(3000, 0, rng)
	ds := dataset.MustInMemory(pts)
	est, err := kde.Build(ds, kde.Options{NumKernels: 300}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Approximate(ds, est, Params{K: 0.2, P: 50}, ApproxOptions{CandidateFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outliers) != 0 {
		t.Errorf("found %d outliers in outlier-free data", len(res.Outliers))
	}
	if res.NumCandidates == 0 && res.DataPasses != 1 {
		t.Errorf("no candidates should cost one pass, got %d", res.DataPasses)
	}
}

func TestApproximateValidation(t *testing.T) {
	rng := stats.NewRNG(5)
	pts, _ := clusterWithOutliers(100, 1, rng)
	ds := dataset.MustInMemory(pts)
	est, err := kde.Build(ds, kde.Options{NumKernels: 50}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Approximate(ds, nil, Params{K: 1, P: 0}, ApproxOptions{}); err == nil {
		t.Error("nil estimator accepted")
	}
	if _, err := Approximate(ds, est, Params{K: 1, P: 0}, ApproxOptions{CandidateFactor: 0.5}); err == nil {
		t.Error("CandidateFactor < 1 accepted")
	}
}

func TestEstimateCountTracksExact(t *testing.T) {
	rng := stats.NewRNG(6)
	pts, _ := clusterWithOutliers(5000, 6, rng)
	ds := dataset.MustInMemory(pts)
	est, err := kde.Build(ds, kde.Options{NumKernels: 500}, rng)
	if err != nil {
		t.Fatal(err)
	}
	prm := Params{K: 0.05, P: 2}
	base := ds.Passes()
	got, err := EstimateCount(ds, est, prm)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Passes()-base != 1 {
		t.Errorf("EstimateCount took %d passes", ds.Passes()-base)
	}
	exact, err := Exact(pts, prm)
	if err != nil {
		t.Fatal(err)
	}
	// The one-pass estimate must be the right order of magnitude.
	if got < len(exact)/2 || got > len(exact)*10+20 {
		t.Errorf("estimated %d outliers, exact %d", got, len(exact))
	}
}

func TestDuplicateOutlierPair(t *testing.T) {
	// Two coincident isolated points: each has exactly one neighbour, so
	// both are outliers for P=1 but not for P=0.
	pts := []geom.Point{{0, 0}, {0, 0}}
	for i := 0; i < 50; i++ {
		pts = append(pts, geom.Point{5 + 0.001*float64(i), 5})
	}
	p1, err := Exact(pts, Params{K: 0.5, P: 1})
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, i := range p1 {
		if i < 2 {
			found++
		}
	}
	if found != 2 {
		t.Errorf("P=1 should keep both twins, got %v", p1)
	}
	p0, err := Exact(pts, Params{K: 0.5, P: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range p0 {
		if i < 2 {
			t.Errorf("P=0 should reject the twins, got %v", p0)
		}
	}
}

func TestNestedLoopManhattanMetric(t *testing.T) {
	// Points at L1 distance 1.0 but L2 distance ~0.71: the metric choice
	// flips their neighbour relation at K=0.8.
	pts := []geom.Point{{0, 0}, {0.5, 0.5}}
	for i := 0; i < 20; i++ {
		pts = append(pts, geom.Point{5 + 0.01*float64(i), 5})
	}
	l2, err := NestedLoop(pts, Params{K: 0.8, P: 0})
	if err != nil {
		t.Fatal(err)
	}
	l1, err := NestedLoop(pts, Params{K: 0.8, P: 0, Metric: geom.Manhattan{}})
	if err != nil {
		t.Fatal(err)
	}
	// Under L2 the two points are neighbours (dist 0.707 ≤ 0.8): not outliers.
	for _, i := range l2 {
		if i < 2 {
			t.Errorf("L2: point %d should have a neighbour", i)
		}
	}
	// Under L1 they are not (dist 1.0 > 0.8): both are outliers.
	found := 0
	for _, i := range l1 {
		if i < 2 {
			found++
		}
	}
	if found != 2 {
		t.Errorf("L1: expected both isolated points as outliers, got %v", l1)
	}
}
