package outlier

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/kde"
	"repro/internal/stats"
)

func sameIndices(t *testing.T, a, b []int, label string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d outliers vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: index %d: %d vs %d", label, i, a[i], b[i])
		}
	}
}

// NestedLoop and Exact must return identical outlier lists for every
// worker count — each point's verdict is independent and the collection
// runs in index order.
func TestDetectorsDeterministicAcrossWorkers(t *testing.T) {
	rng := stats.NewRNG(21)
	pts, _ := clusterWithOutliers(800, 5, rng)
	base := Params{K: 0.05, P: 2, Parallelism: 1}
	refNL, err := NestedLoop(pts, base)
	if err != nil {
		t.Fatal(err)
	}
	refEx, err := Exact(pts, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 8} {
		prm := base
		prm.Parallelism = workers
		gotNL, err := NestedLoop(pts, prm)
		if err != nil {
			t.Fatal(err)
		}
		sameIndices(t, refNL, gotNL, "nested-loop")
		gotEx, err := Exact(pts, prm)
		if err != nil {
			t.Fatal(err)
		}
		sameIndices(t, refEx, gotEx, "exact")
	}
}

// Approximate's block-ordered candidate collection and order-independent
// count merge must yield the identical result for every worker count, and
// EstimateCount's integer reduction likewise.
func TestApproximateDeterministicAcrossWorkers(t *testing.T) {
	rng := stats.NewRNG(22)
	pts, _ := clusterWithOutliers(2500, 6, rng)
	ds := dataset.MustInMemory(pts)
	est, err := kde.Build(ds, kde.Options{NumKernels: 200}, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	base := Params{K: 0.05, P: 2, Parallelism: 1}
	ref, err := Approximate(ds, est, base, ApproxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	refCount, err := EstimateCount(ds, est, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		prm := base
		prm.Parallelism = workers
		got, err := Approximate(ds, est, prm, ApproxOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got.NumCandidates != ref.NumCandidates {
			t.Fatalf("workers=%d: %d candidates vs %d", workers, got.NumCandidates, ref.NumCandidates)
		}
		if got.DataPasses != ref.DataPasses {
			t.Fatalf("workers=%d: %d passes vs %d", workers, got.DataPasses, ref.DataPasses)
		}
		if len(got.Outliers) != len(ref.Outliers) {
			t.Fatalf("workers=%d: %d outliers vs %d", workers, len(got.Outliers), len(ref.Outliers))
		}
		for i := range got.Outliers {
			if !got.Outliers[i].Equal(ref.Outliers[i]) {
				t.Fatalf("workers=%d: outlier %d: %v vs %v", workers, i, got.Outliers[i], ref.Outliers[i])
			}
		}
		gotCount, err := EstimateCount(ds, est, prm)
		if err != nil {
			t.Fatal(err)
		}
		if gotCount != refCount {
			t.Fatalf("workers=%d: EstimateCount %d vs %d", workers, gotCount, refCount)
		}
	}
}

// The geom.Metric option must survive the parallel rewrite of NestedLoop:
// the L1 detector finds only planted points, identically per worker count.
func TestNestedLoopMetricParallel(t *testing.T) {
	rng := stats.NewRNG(23)
	pts, truth := clusterWithOutliers(400, 4, rng)
	base := Params{K: 0.05, P: 2, Metric: geom.Manhattan{}, Parallelism: 1}
	ref, err := NestedLoop(pts, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("no outliers found")
	}
	for _, i := range ref {
		if !truth[i] {
			t.Fatalf("false positive index %d", i)
		}
	}
	for _, workers := range []int{2, 4} {
		prm := base
		prm.Parallelism = workers
		got, err := NestedLoop(pts, prm)
		if err != nil {
			t.Fatal(err)
		}
		sameIndices(t, ref, got, "manhattan")
	}
}
