package outlier

import (
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/stats"
)

func TestCellBasedMatchesExact(t *testing.T) {
	rng := stats.NewRNG(1)
	pts, _ := clusterWithOutliers(1500, 6, rng)
	for i := 0; i < 200; i++ {
		pts = append(pts, geom.Point{rng.Float64(), rng.Float64()})
	}
	for _, prm := range []Params{{K: 0.03, P: 0}, {K: 0.05, P: 2}, {K: 0.08, P: 5}} {
		cell, err := CellBased(pts, prm)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := Exact(pts, prm)
		if err != nil {
			t.Fatal(err)
		}
		sort.Ints(exact)
		if len(cell) != len(exact) {
			t.Fatalf("prm %+v: cell %d vs exact %d outliers", prm, len(cell), len(exact))
		}
		for i := range cell {
			if cell[i] != exact[i] {
				t.Fatalf("prm %+v: sets differ at %d: %d vs %d", prm, i, cell[i], exact[i])
			}
		}
	}
}

func TestCellBased3D(t *testing.T) {
	rng := stats.NewRNG(2)
	var pts []geom.Point
	for i := 0; i < 2000; i++ {
		pts = append(pts, geom.Point{0.3 + 0.1*rng.Float64(), 0.3 + 0.1*rng.Float64(), 0.3 + 0.1*rng.Float64()})
	}
	pts = append(pts, geom.Point{0.9, 0.9, 0.9}, geom.Point{0.05, 0.9, 0.1})
	prm := Params{K: 0.06, P: 1}
	cell, err := CellBased(pts, prm)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Exact(pts, prm)
	if err != nil {
		t.Fatal(err)
	}
	if len(cell) != len(exact) {
		t.Fatalf("3-d: cell %d vs exact %d", len(cell), len(exact))
	}
}

func TestCellBasedHighDimFallsBack(t *testing.T) {
	// 10-d: the cell neighbourhood would explode; the function must fall
	// back to the index-based exact algorithm and still be correct.
	rng := stats.NewRNG(3)
	var pts []geom.Point
	for i := 0; i < 500; i++ {
		p := make(geom.Point, 10)
		for j := range p {
			p[j] = 0.4 + 0.2*rng.Float64()
		}
		pts = append(pts, p)
	}
	iso := make(geom.Point, 10)
	for j := range iso {
		iso[j] = 0.95
	}
	pts = append(pts, iso)
	got, err := CellBased(pts, Params{K: 0.3, P: 0})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Exact(pts, Params{K: 0.3, P: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(exact) {
		t.Fatalf("fallback: %d vs %d", len(got), len(exact))
	}
}

func TestCellBasedEmptyAndValidation(t *testing.T) {
	if got, err := CellBased(nil, Params{K: 1, P: 0}); err != nil || got != nil {
		t.Errorf("empty: %v %v", got, err)
	}
	if _, err := CellBased([]geom.Point{{1}}, Params{K: 0, P: 0}); err == nil {
		t.Error("K=0 accepted")
	}
}

func TestCellBasedAllOutliers(t *testing.T) {
	// Widely spaced points: everyone is an outlier at P=0.
	pts := []geom.Point{{0, 0}, {5, 5}, {10, 0}, {0, 10}}
	got, err := CellBased(pts, Params{K: 1, P: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Errorf("got %d outliers, want 4", len(got))
	}
}
