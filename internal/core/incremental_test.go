package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/kde"
	"repro/internal/stats"
)

// incrementalFixture builds a two-generation dataset, the prior artifacts
// (estimator + sample + norm state) over the prefix, and the extended
// estimator over the full view — the exact inputs a serving cache holds
// when ExtendDraw runs.
type incrementalFixture struct {
	full    dataset.Dataset // view at generation 1
	n, m    int             // prefix length, delta length
	prior   *Sample
	priorNS NormState
	ext     *kde.Estimator
}

func newIncrementalFixture(t *testing.T, n, m, ks, b int, alpha float64, seed uint64) *incrementalFixture {
	t.Helper()
	setup := stats.NewRNG(seed)
	pts := make([]geom.Point, 0, n+m)
	for i := 0; i < n; i++ {
		pts = append(pts, geom.Point{0.2 + 0.1*setup.Float64(), 0.2 + 0.1*setup.Float64()})
	}
	// The delta lands in a new region, so extending genuinely shifts the
	// density field rather than thickening the existing blob.
	for i := 0; i < m; i++ {
		pts = append(pts, geom.Point{0.7 + 0.1*setup.Float64(), 0.7 + 0.1*setup.Float64()})
	}
	mem := dataset.MustInMemory(pts[:n])
	if err := mem.Append(pts[n:]...); err != nil {
		t.Fatal(err)
	}
	full, err := dataset.GenView(mem, 1)
	if err != nil {
		t.Fatal(err)
	}
	prefix, err := dataset.GenView(mem, 0)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := dataset.DeltaView(mem, 1)
	if err != nil {
		t.Fatal(err)
	}

	streams := stats.NewRNG(seed ^ 0x5eed).Splits(3)
	priorEst, err := kde.Build(prefix, kde.Options{NumKernels: ks}, streams[0])
	if err != nil {
		t.Fatal(err)
	}
	prior, err := Draw(prefix, priorEst, Options{Alpha: alpha, TargetSize: b}, streams[1])
	if err != nil {
		t.Fatal(err)
	}
	dk := ks * m / n
	if dk < 1 {
		dk = 1
	}
	centers, err := dataset.Reservoir(delta, dk, streams[2])
	if err != nil {
		t.Fatal(err)
	}
	ext, err := priorEst.Extend(centers, n+m)
	if err != nil {
		t.Fatal(err)
	}
	return &incrementalFixture{
		full:    full,
		n:       n,
		m:       m,
		prior:   prior,
		priorNS: NormState{K: prior.Norm, N: n, Kernels: priorEst.NumKernels()},
		ext:     ext,
	}
}

func (fx *incrementalFixture) extend(t *testing.T, alpha float64, b, par int, seed uint64) (*Sample, NormState) {
	t.Helper()
	s, ns, err := ExtendDraw(fx.full, fx.ext, ExtendOptions{
		Options:    Options{Alpha: alpha, TargetSize: b, Parallelism: par},
		DeltaStart: fx.n,
		Prior:      fx.prior,
		PriorNorm:  fx.priorNS,
	}, stats.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return s, ns
}

// TestExtendDrawDeterministicAcrossWorkers pins worker-count invariance:
// the incremental draw at parallelism 1 and 8 must agree bit-for-bit —
// same points, same weights, same normalizer — since replicas with
// different CPU counts must serve identical samples.
func TestExtendDrawDeterministicAcrossWorkers(t *testing.T) {
	fx := newIncrementalFixture(t, 4000, 400, 100, 300, 1.0, 31)
	s1, ns1 := fx.extend(t, 1.0, 300, 1, 77)
	s8, ns8 := fx.extend(t, 1.0, 300, 8, 77)
	if ns1 != ns8 {
		t.Fatalf("norm state diverged: %+v vs %+v", ns1, ns8)
	}
	if len(s1.Points) != len(s8.Points) {
		t.Fatalf("sample sizes diverged: %d vs %d", len(s1.Points), len(s8.Points))
	}
	for i := range s1.Points {
		if !s1.Points[i].P.Equal(s8.Points[i].P) || s1.Points[i].W != s8.Points[i].W {
			t.Fatalf("point %d diverged: %+v vs %+v", i, s1.Points[i], s8.Points[i])
		}
	}
}

// TestExtendDrawNormMatchesExactWhenNoNewCenters: when the estimator is
// extended with no new kernels (mass rescale only), every density scales
// uniformly and the incremental normalizer update is exact — it must
// match the normalizer a from-scratch Draw over the full view computes,
// for α = 1 and α = 2.
func TestExtendDrawNormMatchesExactWhenNoNewCenters(t *testing.T) {
	for _, alpha := range []float64{1.0, 2.0} {
		fx := newIncrementalFixture(t, 3000, 300, 100, 200, alpha, 37)
		// Replace the fixture's extended estimator with a pure rescale.
		var err error
		fx.ext, err = fx.extEstimatorNoDelta()
		if err != nil {
			t.Fatal(err)
		}
		_, ns := fx.extend(t, alpha, 200, 1, 13)
		want, err := Draw(fx.full, fx.ext, Options{Alpha: alpha, TargetSize: 200, Parallelism: 1}, stats.NewRNG(99))
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(ns.K-want.Norm) / want.Norm; rel > 1e-9 {
			t.Errorf("alpha=%g: incremental k_a = %v, exact = %v (rel %v)", alpha, ns.K, want.Norm, rel)
		}
	}
}

// extEstimatorNoDelta rebuilds the prior estimator extended by zero
// centers: same kernels, new total mass n+m.
func (fx *incrementalFixture) extEstimatorNoDelta() (*kde.Estimator, error) {
	priorEst, err := kde.FromCenters(fx.ext.Kernel(), fx.ext.Centers()[:fx.priorNS.Kernels], fx.ext.Bandwidths(), fx.priorNS.N)
	if err != nil {
		return nil, err
	}
	return priorEst.Extend(nil, fx.n+fx.m)
}

// TestExtendDrawExpectedSize: Property 2 survives the incremental path —
// thinning the prior at k_base/k_new and coin-flipping the delta against
// k_new keeps E[|S|] = b.
func TestExtendDrawExpectedSize(t *testing.T) {
	const b = 300
	fx := newIncrementalFixture(t, 4000, 800, 100, b, 1.0, 41)
	var total int
	const trials = 20
	for i := 0; i < trials; i++ {
		s, _ := fx.extend(t, 1.0, b, 0, uint64(1000+i))
		total += len(s.Points)
	}
	mean := float64(total) / trials
	// One draw has sd ≤ sqrt(b) ≈ 17; the mean of 20 has sd ≤ 4. Allow
	// 6 sigma plus slack for saturation.
	if math.Abs(mean-b) > 30 {
		t.Errorf("mean incremental sample size %v, want ~%v", mean, float64(b))
	}
}

// TestExtendDrawPassBudget: the incremental draw reads the delta twice
// (normalize + sample) and the prior sample zero times — its data-pass
// cost is O(|delta|), independent of the prefix length.
func TestExtendDrawPassBudget(t *testing.T) {
	fx := newIncrementalFixture(t, 4000, 400, 100, 300, 1.0, 43)
	before := fx.full.Passes()
	s, _ := fx.extend(t, 1.0, 300, 0, 7)
	if got := fx.full.Passes() - before; got != 2 {
		t.Errorf("incremental draw cost %d dataset passes, want 2", got)
	}
	if s.DataPasses != 2 {
		t.Errorf("reported DataPasses = %d, want 2", s.DataPasses)
	}
}

func TestExtendDrawValidation(t *testing.T) {
	fx := newIncrementalFixture(t, 1000, 100, 50, 100, 1.0, 47)
	rng := stats.NewRNG(1)
	base := ExtendOptions{
		Options:    Options{Alpha: 1, TargetSize: 100},
		DeltaStart: fx.n,
		Prior:      fx.prior,
		PriorNorm:  fx.priorNS,
	}

	bad := base
	bad.Prior = nil
	if _, _, err := ExtendDraw(fx.full, fx.ext, bad, rng); err == nil {
		t.Error("nil prior accepted")
	}
	bad = base
	bad.DeltaStart = fx.n - 1
	if _, _, err := ExtendDraw(fx.full, fx.ext, bad, rng); err == nil {
		t.Error("DeltaStart != prior.N accepted")
	}
	bad = base
	bad.OnePass = true
	if _, _, err := ExtendDraw(fx.full, fx.ext, bad, rng); err == nil {
		t.Error("OnePass accepted on the incremental path")
	}
	bad = base
	bad.TargetSize = 0
	if _, _, err := ExtendDraw(fx.full, fx.ext, bad, rng); err == nil {
		t.Error("zero target size accepted")
	}
	bad = base
	bad.PriorNorm.K = 0
	if _, _, err := ExtendDraw(fx.full, fx.ext, bad, rng); err == nil {
		t.Error("zero prior normalizer accepted")
	}
	if _, _, err := ExtendDraw(fx.full, nil, base, rng); err == nil {
		t.Error("nil estimator accepted")
	}
	// m = 0: the view has no delta rows past DeltaStart.
	prefixOnly, err := dataset.Window(fx.full, 0, fx.n)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ExtendDraw(prefixOnly, fx.ext, base, rng); err == nil {
		t.Error("empty delta accepted")
	}
}

func TestRebuildSchedule(t *testing.T) {
	cases := []struct {
		name   string
		counts []int
		tol    float64
		want   []bool
	}{
		{"tol zero is always exact", []int{100, 101, 102}, 0, []bool{true, true, true}},
		{"negative tol is always exact", []int{100, 200}, -1, []bool{true, true}},
		{"single generation", []int{50}, 0.5, []bool{true}},
		// 1% steps against a 5% budget: drift accumulates ~0.0099 per
		// generation and crosses tol on the 6th append.
		{
			"small steps accumulate",
			[]int{1000, 1010, 1020, 1030, 1040, 1050, 1060},
			0.05,
			[]bool{true, false, false, false, false, false, true},
		},
		// A large append blows the budget immediately and resets drift.
		{
			"big step forces rebuild",
			[]int{1000, 2000, 2010},
			0.05,
			[]bool{true, true, false},
		},
		// Shrinks (window eviction) charge the budget like growths of the
		// same magnitude: |delta|/counts[g]. The regression: a signed step
		// would go negative on each shrink, cancel the growth steps, and
		// postpone the exact rebuild indefinitely.
		{
			"shrinks charge the budget",
			[]int{1000, 1020, 990, 1010, 980, 1000, 1020},
			0.05,
			[]bool{true, false, false, true, false, true, false},
		},
		// A large eviction alone must force a rebuild even though the
		// dataset got smaller.
		{
			"big shrink forces rebuild",
			[]int{1000, 400, 404},
			0.05,
			[]bool{true, true, false},
		},
	}
	for _, c := range cases {
		got := RebuildSchedule(c.counts, c.tol)
		if len(got) != len(c.want) {
			t.Errorf("%s: len = %d, want %d", c.name, len(got), len(c.want))
			continue
		}
		for g := range got {
			if got[g] != c.want[g] {
				t.Errorf("%s: gen %d exact=%v, want %v (full %v)", c.name, g, got[g], c.want[g], got)
			}
		}
	}
}
