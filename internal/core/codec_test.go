package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

func TestSampleCodecRoundTrip(t *testing.T) {
	s := &Sample{
		Points: []dataset.WeightedPoint{
			{P: geom.Point{1.5, -2.25, 0.125}, W: 3.5},
			{P: geom.Point{0, 1e-300, math.Pi}, W: 1},
			{P: geom.Point{-4, 4, 0.1}, W: 123.456},
		},
		Norm:       987.25,
		DataPasses: 2,
		Saturated:  7,
	}
	ns := NormState{K: 987.25, N: 100000, Kernels: 64, Drift: 0.015625}

	blob, err := MarshalSample(s, ns)
	if err != nil {
		t.Fatal(err)
	}
	gs, gns, err := UnmarshalSample(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gs, s) {
		t.Errorf("sample round-trip:\n got %+v\nwant %+v", gs, s)
	}
	if gns != ns {
		t.Errorf("norm state round-trip: got %+v, want %+v", gns, ns)
	}
	// Byte-stable: serializing the decoded pair reproduces the blob.
	blob2, err := MarshalSample(gs, gns)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Error("re-serialized sample artifact differs")
	}
}

func TestSampleCodecErrors(t *testing.T) {
	if _, err := MarshalSample(nil, NormState{}); err == nil {
		t.Error("nil sample accepted")
	}
	if _, err := MarshalSample(&Sample{}, NormState{}); err == nil {
		t.Error("empty sample accepted")
	}
	mixed := &Sample{Points: []dataset.WeightedPoint{
		{P: geom.Point{1, 2}, W: 1},
		{P: geom.Point{1}, W: 1},
	}}
	if _, err := MarshalSample(mixed, NormState{}); err == nil {
		t.Error("mixed-dimension sample accepted")
	}

	good := &Sample{Points: []dataset.WeightedPoint{{P: geom.Point{1, 2}, W: 1}}}
	blob, err := MarshalSample(good, NormState{K: 1, N: 1, Kernels: 1})
	if err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("YYYYY"), blob[5:]...),
		"truncated": blob[:len(blob)-1],
		"trailing":  append(append([]byte{}, blob...), 0xFF),
	} {
		if _, _, err := UnmarshalSample(data); err == nil {
			t.Errorf("%s: corrupt artifact accepted", name)
		}
	}
}
