// Package core implements density-biased sampling, the central contribution
// of the paper (§2.2, Figure 1).
//
// Given a density estimator f for a dataset D of n points, a target sample
// size b, and a bias exponent a, the sampler includes each point x in the
// sample with probability
//
//	P(x ∈ S) = min(1, (b / k_a) · f(x)^a)    where  k_a = Σ_{x_i ∈ D} f(x_i)^a
//
// This realizes the two properties of §2: the inclusion probability is a
// function of the local density around x (Property 1), and the expected
// sample size is b (Property 2, exact when no probability saturates at 1).
//
// The exponent a tunes the bias (§2.2):
//
//	a = 0    uniform random sampling;
//	a > 0    dense regions oversampled (robust cluster detection under
//	         noise — the paper recommends a = 1);
//	-1 < a < 0  sparse regions oversampled while relative densities are
//	         preserved with high probability (Lemma 1; finds small or
//	         sparse clusters dominated by large dense ones — the paper
//	         recommends a = -0.5);
//	a = -1   equal expected sample mass in equal volumes;
//	a < -1   very sparse regions dominate (outlier hunting).
//
// The sampler is decoupled from the density estimator: anything providing
// Density(p) works (a kernel estimator, a grid histogram, or an exact
// oracle). This decoupling is an explicit design claim of the paper versus
// Palmer-Faloutsos ("our approach … decouples density estimation and biased
// sampling", §1.1).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// DensityEstimator supplies the local density of the dataset around a
// point. Implementations must return non-negative finite values, and must
// be safe for concurrent Density calls when sampling runs with a
// Parallelism other than 1 (a pure function of the point, as every
// estimator in this repository is, qualifies).
type DensityEstimator interface {
	Density(p geom.Point) float64
}

// DensityBatcher is optionally implemented by estimators that can evaluate
// a whole block of points at once (kde.Estimator does), amortizing
// traversal state across the block. The chunked scans prefer it over
// per-point Density calls.
type DensityBatcher interface {
	DensityBatch(pts []geom.Point, out []float64)
}

// ColumnarDensityBatcher is optionally implemented by estimators that can
// consume a block's column view directly (kde.Estimator does). At float64
// the results must be bit-identical to DensityBatch over the same points —
// the parity contract Options.Layout relies on.
type ColumnarDensityBatcher interface {
	DensityBatchCols(cols [][]float64, out []float64)
}

// ColumnarDensityBatcher32 is the float32 evaluation path behind
// Options.Precision: column input, single-precision kernel arithmetic,
// widened results. Implementations may fall back to float64 when they have
// no single-precision engine for their kernel.
type ColumnarDensityBatcher32 interface {
	DensityBatchCols32(cols [][]float64, out []float64)
}

// evalDensities fills out[:len(pts)] with est's density at each point,
// through the batch interface when available.
func evalDensities(est DensityEstimator, pts []geom.Point, out []float64) {
	if b, ok := est.(DensityBatcher); ok {
		b.DensityBatch(pts, out)
		return
	}
	for i, p := range pts {
		out[i] = est.Density(p)
	}
}

// evalDensitiesLayout routes one block's density evaluation: the column
// view (when the scan produced one and the estimator consumes it) with the
// requested precision, the row batch otherwise. Estimators without any
// batch interface fall back to per-point Density in index order.
func evalDensitiesLayout(est DensityEstimator, pts []geom.Point, cols [][]float64, prec Precision, out []float64) {
	if cols != nil {
		if prec == Float32 {
			if b, ok := est.(ColumnarDensityBatcher32); ok {
				b.DensityBatchCols32(cols, out)
				return
			}
		}
		if b, ok := est.(ColumnarDensityBatcher); ok {
			b.DensityBatchCols(cols, out)
			return
		}
	}
	evalDensities(est, pts, out)
}

// scanBlocksLayout runs one pass over ds delivering blocks in the
// requested layout: the columnar scan hands fn the transposed column slab
// next to the row view, the row scan hands cols == nil. Block boundaries,
// ordering, and pass accounting are identical either way.
func scanBlocksLayout(ds dataset.Dataset, cfg dataset.ScanConfig, layout Layout, fn func(block, start int, pts []geom.Point, cols [][]float64) error) error {
	if layout == LayoutRow {
		return dataset.ScanBlocksCfg(ds, cfg, func(block, start int, pts []geom.Point) error {
			return fn(block, start, pts, nil)
		})
	}
	return dataset.ScanBlocksCols(ds, cfg, func(b dataset.Block) error {
		return fn(b.Index, b.Start, b.Points, b.Cols)
	})
}

// coinScratch is the pooled per-block working set of the fused
// density→power→coin pass: a density/weight buffer and the (index, prob)
// pairs of the block's selected points, recorded before any allocation so
// the selection loop touches nothing but scratch.
type coinScratch struct {
	dens  []float64
	idx   []int32
	probs []float64
}

var coinScratchPool = sync.Pool{New: func() interface{} { return new(coinScratch) }}

func getCoinScratch(n int) *coinScratch {
	sc := coinScratchPool.Get().(*coinScratch)
	if cap(sc.dens) < n {
		sc.dens = make([]float64, n)
		sc.idx = make([]int32, n)
		sc.probs = make([]float64, n)
	}
	sc.dens = sc.dens[:n]
	sc.idx = sc.idx[:n]
	sc.probs = sc.probs[:n]
	return sc
}

// sampleArena hands out exactly-sized WeightedPoint segments and
// coordinate slabs carved from shared chunks, replacing the per-point
// Clone of selected points. Chunks are append-only: growing the arena
// allocates a fresh chunk and previously carved segments stay valid (the
// GC keeps old chunks alive through them). One mutex-guarded bump per
// block, two allocations per chunk — amortized, zero allocations per
// block in steady state.
type sampleArena struct {
	mu     sync.Mutex
	dims   int
	wps    []dataset.WeightedPoint
	coords []float64
	idxs   []int64
}

const arenaChunk = 1024

func (a *sampleArena) alloc(k int) ([]dataset.WeightedPoint, []float64, []int64) {
	if k == 0 {
		return nil, nil, nil
	}
	a.mu.Lock()
	if k > cap(a.wps)-len(a.wps) {
		size := arenaChunk
		if k > size {
			size = k
		}
		a.wps = make([]dataset.WeightedPoint, 0, size)
	}
	wps := a.wps[len(a.wps) : len(a.wps)+k : len(a.wps)+k]
	a.wps = a.wps[:len(a.wps)+k]
	cs := k * a.dims
	if cs > cap(a.coords)-len(a.coords) {
		size := arenaChunk * a.dims
		if cs > size {
			size = cs
		}
		a.coords = make([]float64, 0, size)
	}
	coords := a.coords[len(a.coords) : len(a.coords)+cs : len(a.coords)+cs]
	a.coords = a.coords[:len(a.coords)+cs]
	if k > cap(a.idxs)-len(a.idxs) {
		size := arenaChunk
		if k > size {
			size = k
		}
		a.idxs = make([]int64, 0, size)
	}
	idxs := a.idxs[len(a.idxs) : len(a.idxs)+k : len(a.idxs)+k]
	a.idxs = a.idxs[:len(a.idxs)+k]
	a.mu.Unlock()
	return wps, coords, idxs
}

// fillBlockSample copies the selected points of one block out of the scan
// buffer into arena-carved storage and builds their weighted entries plus
// their dataset indices (start is the block's global offset).
func fillBlockSample(arena *sampleArena, pts []geom.Point, sc *coinScratch, count, start int) ([]dataset.WeightedPoint, []int64) {
	wps, coords, idxs := arena.alloc(count)
	d := arena.dims
	for k := 0; k < count; k++ {
		dst := coords[k*d : (k+1)*d : (k+1)*d]
		copy(dst, pts[sc.idx[k]])
		wps[k] = dataset.WeightedPoint{P: geom.Point(dst), W: 1 / sc.probs[k]}
		idxs[k] = int64(start) + int64(sc.idx[k])
	}
	return wps, idxs
}

// centersEstimator is optionally implemented by estimators that expose
// their own construction sample (kernel centers) and represented size; the
// one-pass variant uses it to approximate the normalizer k_a without an
// extra dataset pass.
type centersEstimator interface {
	Centers() []geom.Point
	N() int
}

// NormRescaler is optionally implemented by estimators that know how a
// point's density changes when the estimator is extended (or shrunk) from
// a prior state: NormRescale returns s such that f'(x) ≈ s·f(x) on the
// surviving prefix, given the prior state's represented size and kernel
// count. ExtendDraw and ShrinkDraw consult it in place of the KDE default
// s = (n'/N)·(ks/ks'). Estimators whose densities are absolute counts
// independent of the represented size — the streaming sketch estimator —
// return 1: evicting or appending points leaves a surviving point's
// estimate (approximately) unchanged, so the prior normalizer carries
// over at face value.
type NormRescaler interface {
	NormRescale(priorN, priorKernels int) float64
}

// Layout selects which view of each scan block the density evaluation
// consumes.
type Layout int

const (
	// LayoutColumnar (the default) evaluates densities over the block's
	// column view: D contiguous coordinate slices per block, the layout
	// the fused kernel in internal/kde is built around. At Float64 the
	// results are bit-identical to LayoutRow — proven by parity tests —
	// so the choice is a performance knob, not part of a run's identity.
	LayoutColumnar Layout = iota
	// LayoutRow evaluates densities over the row view, the reference path.
	LayoutRow
)

// Precision selects the floating-point width of the density kernel.
type Precision int

const (
	// Float64 (the default) evaluates densities in double precision; the
	// deterministic bit-for-bit contracts hold at this setting.
	Float64 Precision = iota
	// Float32 evaluates the density kernel in single precision over the
	// columnar layout, trading a bounded relative density error (see
	// DESIGN.md, "Memory layout & zero-copy scans") for halved memory
	// bandwidth. Results remain deterministic — identical at every
	// Parallelism and across repeated runs — but are not bit-equal to
	// Float64 runs. Requires LayoutColumnar.
	Float32
)

// Options configure one biased-sampling run.
type Options struct {
	// Alpha is the bias exponent a.
	Alpha float64

	// TargetSize is the expected sample size b. Must be positive.
	TargetSize int

	// FloorDensity replaces estimated densities below it before
	// exponentiation. It matters for a < 0: without a floor, a few points
	// in regions the estimator reports as (near-)empty would receive
	// enormous f(x)^a weights, dominate the normalizer k_a, saturate
	// their own inclusion probability at 1, and starve the rest of the
	// sample. When zero, the floor defaults to one tenth of the 5th
	// percentile of the density at the estimator's own centers (which are
	// dataset points, hence density-representative); if the estimator
	// does not expose centers, a tiny absolute floor is used.
	FloorDensity float64

	// OnePass, when true, skips the exact normalization pass and instead
	// approximates k_a from the estimator's own centers, integrating
	// density estimation and sampling into a single data pass, as §2.2
	// describes ("It is possible to integrate both steps in one … In this
	// case however we only compute an approximation of the sampling
	// probability"). It requires an estimator exposing Centers and N.
	OnePass bool

	// Parallelism bounds the workers the chunked scans run on:
	// 0 uses runtime.GOMAXPROCS(0), 1 is the serial reference path.
	// For a fixed seed and BlockSize the sample is bit-for-bit identical
	// at every setting — block boundaries depend only on the dataset size,
	// each block consumes its own split RNG stream keyed by block index,
	// and per-block results are reduced in block order (see DESIGN.md,
	// "Parallel execution model").
	Parallelism int

	// BlockSize is the number of points per scan block
	// (0 = parallel.DefaultBlockSize). It is part of the sampling run's
	// identity: changing it reassigns points to RNG streams and therefore
	// changes which points are drawn, while changing Parallelism never
	// does.
	BlockSize int

	// Layout selects the row or columnar density-evaluation path. Like
	// Parallelism — and unlike BlockSize — it is NOT part of the run's
	// identity: at Float64 both layouts draw byte-identical samples.
	Layout Layout

	// Precision selects the kernel's floating-point width. Float32 needs
	// the columnar layout and changes density values within the documented
	// error bound (and therefore which points are drawn); Float64 keeps
	// every bit-for-bit guarantee.
	Precision Precision

	// Obs, when non-nil, records the run: span timings for the
	// normalization and coin-flip passes, the counter catalogue (points
	// scanned, data passes, coin flips, saturated probabilities, sampled
	// points, kernel-evaluation stats via the estimator), and the
	// sample_norm / sample_data_passes gauges. Recording is per-block and
	// per-stage, never per-point, and consults no randomness: the drawn
	// sample is bit-identical with Obs nil or set, at every Parallelism.
	Obs *obs.Recorder

	// Progress, when non-nil, is called after each completed scan block
	// with (points delivered so far this pass, dataset size). The exact
	// algorithm makes two passes, so the callback sees `done` restart
	// once. Must be safe for concurrent use when Parallelism is not 1.
	Progress func(done, total int)

	// Ctx, when non-nil, cancels the draw: both scan passes check it at
	// block granularity and a done context aborts with
	// dataset.ErrCanceled (wrapping the context's own error). A draw that
	// completes is unaffected by how close its deadline came.
	Ctx context.Context

	// VerifyNorm, with OnePass and a non-nil Obs, spends one extra
	// dataset pass computing the exact normalizer k_a next to the
	// one-pass approximation and records their relative disagreement in
	// the sample_norm_rel_error gauge — the §2.2 approximation quality,
	// otherwise invisible. The extra pass is diagnostic only: the sample
	// is still drawn from the approximate normalizer and
	// Sample.DataPasses still reports the algorithm's own passes.
	VerifyNorm bool
}

// Sample is the result of a biased-sampling run.
type Sample struct {
	// Points holds the sampled points, each with weight 1/P(included) —
	// the inverse-probability weights §3.1 prescribes for objective
	// functions that weight original points equally (k-means, k-medoids).
	Points []dataset.WeightedPoint

	// Norm is the normalizer k_a used (exact or approximated).
	Norm float64

	// DataPasses is the number of dataset passes the sampling itself
	// consumed (excluding the estimator-construction pass): 2 for the
	// exact algorithm, 1 for the one-pass variant.
	DataPasses int

	// Saturated counts points whose inclusion probability was clipped at
	// 1. When zero, E[len(Points)] equals the target size exactly.
	Saturated int

	// Indices, when non-nil, holds the dataset index of each sampled
	// point, parallel to Points (both are in dataset index order). Draw
	// and ExtendDraw fill it; ShrinkDraw consumes it to identify evicted
	// sample points without a dataset pass. It is nil on samples whose
	// provenance does not carry indices — a sharded merge assembled from
	// wire blocks, or a sample decoded from a serialized artifact — and
	// the codec deliberately does not persist it. Nil propagates: an
	// ExtendDraw over a prior without indices returns a sample without
	// them.
	Indices []int64
}

// PlainPoints returns just the sampled points, for algorithms that do not
// use weights (the CURE-style hierarchical clusterer of §3.1).
func (s *Sample) PlainPoints() []geom.Point {
	pts := make([]geom.Point, len(s.Points))
	for i, wp := range s.Points {
		pts[i] = wp.P
	}
	return pts
}

// Draw runs the biased-sampling algorithm of Figure 1 over ds.
//
// The exact variant makes two passes: one to compute k_a = Σ f'(x_i) and
// one to flip the inclusion coin per point. With OnePass set it makes a
// single pass, approximating k_a from the estimator's centers.
//
// Both passes are chunked scans (dataset.ScanBlocks): the coin-flip pass
// derives one RNG stream per block from a single draw of rng
// (stats.RNG.Splits), flips each block's coins from its own stream, and
// concatenates the per-block selections in block order. The sample is
// therefore a function of (dataset, estimator, opts, seed) only — running
// with 1 worker or 8 returns byte-identical points, weights, Norm, and
// Saturated. rng advances by a fixed small amount, not once per point.
func Draw(ds dataset.Dataset, est DensityEstimator, opts Options, rng *stats.RNG) (*Sample, error) {
	if est == nil {
		return nil, errors.New("core: nil density estimator")
	}
	if opts.TargetSize <= 0 {
		return nil, errors.New("core: TargetSize must be positive")
	}
	n := ds.Len()
	if n == 0 {
		return nil, errors.New("core: empty dataset")
	}
	floor := opts.FloorDensity
	if floor < 0 {
		return nil, errors.New("core: negative FloorDensity")
	}
	if opts.Precision == Float32 && opts.Layout == LayoutRow {
		return nil, errors.New("core: Float32 requires the columnar layout")
	}
	if floor == 0 {
		floor = defaultFloor(est)
	}

	rec := opts.Obs
	span := rec.StartSpan("draw")
	defer span.End()

	var norm float64
	var weightCache []float64
	passes := 0
	if opts.OnePass {
		ce, ok := est.(centersEstimator)
		if !ok {
			return nil, errors.New("core: OnePass requires an estimator exposing Centers and N")
		}
		var err error
		norm, err = approxNorm(ce, opts.Alpha, floor)
		if err != nil {
			return nil, err
		}
		if opts.VerifyNorm && rec != nil {
			vspan := rec.StartSpan("draw/verify_norm")
			exact, verr := exactNorm(opts.Ctx, ds, est, opts, floor, nil, rec, nil)
			vspan.AddPoints(int64(n))
			vspan.End()
			if verr != nil {
				return nil, verr
			}
			if exact > 0 {
				rec.Gauge(obs.GaugeNormRelError).Set(math.Abs(norm-exact) / exact)
			}
		}
	} else {
		// For memory-resident datasets (anything Sliceable whose snapshot
		// covers the scan, including generation-pinned views and mapped
		// segment files) the biased weights f'(x)^a computed by the
		// normalization pass are cached (8 bytes per point — negligible
		// next to the resident points) and reused by the coin-flip pass,
		// halving the dominant cost of the exact algorithm and hoisting the
		// power out of the coin loop. The weight is a pure function of the
		// point, so cached and recomputed values are bit-identical and the
		// sample is unchanged; streaming datasets keep the constant-memory
		// recomputation.
		if sl, ok := ds.(dataset.Sliceable); ok && len(sl.Points()) >= n {
			weightCache = make([]float64, n)
		}
		nspan := rec.StartSpan("draw/normalize")
		var err error
		norm, err = exactNorm(opts.Ctx, ds, est, opts, floor, weightCache, rec, opts.Progress)
		nspan.AddPoints(int64(n))
		nspan.End()
		if err != nil {
			return nil, err
		}
		passes++
	}
	if norm <= 0 || math.IsInf(norm, 0) || math.IsNaN(norm) {
		return nil, fmt.Errorf("core: degenerate normalizer k_a = %v", norm)
	}

	blockSize := parallel.BlockSize(opts.BlockSize)
	numBlocks := parallel.NumBlocks(n, blockSize)
	streams := rng.SplitsValues(numBlocks, nil)

	type blockSample struct {
		points    []dataset.WeightedPoint
		indices   []int64
		saturated int
	}
	perBlock := make([]blockSample, numBlocks)
	arena := &sampleArena{dims: ds.Dims()}
	b := float64(opts.TargetSize)
	sspan := rec.StartSpan("draw/sample")
	cCoins := rec.Counter(obs.CtrCoinFlips)
	cSat := rec.Counter(obs.CtrSaturated)
	err := scanBlocksLayout(ds, dataset.ScanConfig{
		BlockSize:   blockSize,
		Parallelism: opts.Parallelism,
		Ctx:         opts.Ctx,
		Rec:         rec,
		Progress:    opts.Progress,
	}, opts.Layout, func(block, start int, pts []geom.Point, cols [][]float64) error {
		// The fused pass: evaluate (or fetch) the biased weights, flip the
		// block's coins recording (index, prob) pairs in pooled scratch,
		// then carve exactly-sized storage for the selections from the
		// shared arena — no per-point Clone, no per-block allocation.
		sc := getCoinScratch(len(pts))
		defer coinScratchPool.Put(sc)
		var weights []float64
		if weightCache != nil {
			weights = weightCache[start : start+len(pts)]
		} else {
			weights = sc.dens
			evalDensitiesLayout(est, pts, cols, opts.Precision, weights)
			for i, f := range weights {
				weights[i] = biasedWeight(f, opts.Alpha, floor)
			}
		}
		count, sat := flipCoins(weights, b, norm, &streams[block], sc)
		wps, idxs := fillBlockSample(arena, pts, sc, count, start)
		perBlock[block] = blockSample{points: wps, indices: idxs, saturated: sat}
		cCoins.Add(int64(len(pts)))
		cSat.Add(int64(sat))
		return nil
	})
	sspan.AddPoints(int64(n))
	sspan.End()
	if err != nil {
		return nil, err
	}
	passes++

	out := &Sample{Norm: norm, DataPasses: passes}
	total := 0
	for i := range perBlock {
		total += len(perBlock[i].points)
	}
	out.Points = make([]dataset.WeightedPoint, 0, total)
	out.Indices = make([]int64, 0, total)
	for i := range perBlock {
		out.Points = append(out.Points, perBlock[i].points...)
		out.Indices = append(out.Indices, perBlock[i].indices...)
		out.Saturated += perBlock[i].saturated
	}
	span.AddPoints(int64(n))
	rec.Counter(obs.CtrSampled).Add(int64(len(out.Points)))
	rec.Gauge(obs.GaugeSampleNorm).Set(norm)
	rec.Gauge(obs.GaugeSampleDataPasses).Set(float64(passes))
	return out, nil
}

// flipCoins flips the inclusion coin for each biased weight against the
// normalizer, recording the (index, prob) pairs of the selections into sc.
// It is the single coin loop shared by the local draw and the sharded
// per-block draw (DrawBlocks): both paths must consume brng identically —
// including Bernoulli's property of consuming no state at p ≤ 0 or p ≥ 1 —
// or the cross-mode bit-for-bit guarantee breaks.
func flipCoins(weights []float64, b, norm float64, brng *stats.RNG, sc *coinScratch) (count, sat int) {
	for i := range weights {
		prob := b * weights[i] / norm
		if prob >= 1 {
			prob = 1
			sat++
		}
		if brng.Bernoulli(prob) {
			sc.idx[count] = int32(i)
			sc.probs[count] = prob
			count++
		}
	}
	return count, sat
}

// ExactNorm computes k_a = Σ_{x ∈ ds} max(f(x), floor)^a in one pass,
// serially. It equals ExactNormParallel at any parallelism exactly: the
// sum is blocked the same way in both, so the float additions happen in
// the same order.
func ExactNorm(ds dataset.Dataset, est DensityEstimator, alpha, floor float64) (float64, error) {
	return ExactNormParallel(ds, est, alpha, floor, 1, 0)
}

// ExactNormParallel computes k_a with a chunked scan on the given worker
// budget. Each block accumulates its partial sum over its points in index
// order, and the partials are reduced in block order — an ordered
// reduction, not atomic adds — so the result is bit-for-bit identical for
// every parallelism (floating-point addition is not associative; a
// completion-order or atomic reduction would make k_a depend on goroutine
// scheduling).
func ExactNormParallel(ds dataset.Dataset, est DensityEstimator, alpha, floor float64, parallelism, blockSize int) (float64, error) {
	return exactNorm(nil, ds, est, Options{Alpha: alpha, Parallelism: parallelism, BlockSize: blockSize}, floor, nil, nil, nil)
}

// exactNorm is ExactNormParallel with an optional weight cache: when cache
// is non-nil (length ds.Len()), each block stores its biased weights
// f'(x)^a at the block's global offset so the coin pass can reuse them
// without re-evaluating densities or powers. Blocks write disjoint ranges,
// so the cache needs no synchronization. Evaluation routes through the
// layout and precision in opts; rec and progress, when non-nil, observe
// the scan (see Options.Obs/Progress) and never influence the sum. ctx,
// when non-nil, cancels per block.
func exactNorm(ctx context.Context, ds dataset.Dataset, est DensityEstimator, opts Options, floor float64, cache []float64, rec *obs.Recorder, progress func(done, total int)) (float64, error) {
	if est == nil {
		return 0, errors.New("core: nil density estimator")
	}
	n := ds.Len()
	blockSize := parallel.BlockSize(opts.BlockSize)
	partials := make([]float64, parallel.NumBlocks(n, blockSize))
	err := scanBlocksLayout(ds, dataset.ScanConfig{
		BlockSize:   blockSize,
		Parallelism: opts.Parallelism,
		Ctx:         ctx,
		Rec:         rec,
		Progress:    progress,
	}, opts.Layout, func(block, start int, pts []geom.Point, cols [][]float64) error {
		var dens []float64
		var sc *coinScratch
		if cache != nil {
			dens = cache[start : start+len(pts)]
		} else {
			sc = getCoinScratch(len(pts))
			defer coinScratchPool.Put(sc)
			dens = sc.dens
		}
		evalDensitiesLayout(est, pts, cols, opts.Precision, dens)
		var k float64
		for i, f := range dens {
			w := biasedWeight(f, opts.Alpha, floor)
			dens[i] = w
			k += w
		}
		partials[block] = k
		return nil
	})
	if err != nil {
		return 0, err
	}
	var k float64
	for _, p := range partials {
		k += p
	}
	return k, nil
}

// approxNorm estimates k_a from the estimator's own centers. The centers
// are (approximately) a uniform sample of the dataset, so
// k_a ≈ (n/ks) Σ_{c ∈ centers} f(c)^a.
func approxNorm(ce centersEstimator, alpha, floor float64) (float64, error) {
	est, ok := ce.(DensityEstimator)
	if !ok {
		return 0, errors.New("core: estimator does not provide Density")
	}
	centers := ce.Centers()
	if len(centers) == 0 {
		return 0, errors.New("core: estimator has no centers")
	}
	var sum float64
	for _, c := range centers {
		sum += biasedWeight(est.Density(c), alpha, floor)
	}
	return sum * float64(ce.N()) / float64(len(centers)), nil
}

// InclusionProb returns the probability with which a point of density f
// would be included, given the run parameters. Exposed for analysis and
// for building inverse-probability weights outside Draw.
func InclusionProb(f, alpha, floor, norm float64, targetSize int) float64 {
	p := float64(targetSize) * biasedWeight(f, alpha, floor) / norm
	if p > 1 {
		return 1
	}
	return p
}

// biasedWeight computes f'(x) = max(f, floor)^a.
func biasedWeight(f, alpha, floor float64) float64 {
	if f < floor {
		f = floor
	}
	if alpha == 0 {
		return 1
	}
	if alpha == 1 {
		return f
	}
	return math.Pow(f, alpha)
}

func defaultFloor(est DensityEstimator) float64 {
	ce, ok := est.(centersEstimator)
	if !ok {
		return 1e-9
	}
	centers := ce.Centers()
	if len(centers) == 0 {
		return 1e-9 * float64(ce.N())
	}
	dens := make([]float64, 0, len(centers))
	for _, c := range centers {
		if f := est.Density(c); f > 0 {
			dens = append(dens, f)
		}
	}
	if len(dens) == 0 {
		return 1e-9 * float64(ce.N())
	}
	return 0.1 * stats.Quantile(dens, 0.05)
}
