package core

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: for a > 0 the inclusion probability is monotone non-decreasing
// in the density; for a < 0 it is monotone non-increasing; for a = 0 it is
// constant. This is Property 1 of the paper made precise.
func TestPropInclusionMonotone(t *testing.T) {
	const (
		floor = 1e-6
		norm  = 1000.0
		b     = 100
	)
	clean := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 1
		}
		return math.Abs(math.Mod(v, 1e6))
	}
	f := func(f1, f2 float64, aRaw int8) bool {
		f1, f2 = clean(f1), clean(f2)
		if f1 > f2 {
			f1, f2 = f2, f1
		}
		alpha := float64(aRaw) / 32 // range ~[-4, 4)
		p1 := InclusionProb(f1, alpha, floor, norm, b)
		p2 := InclusionProb(f2, alpha, floor, norm, b)
		switch {
		case alpha > 0:
			return p1 <= p2+1e-12
		case alpha < 0:
			return p1 >= p2-1e-12
		default:
			return math.Abs(p1-p2) < 1e-12
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: inclusion probabilities always lie in [0, 1].
func TestPropInclusionInUnitInterval(t *testing.T) {
	f := func(fv, norm float64, b uint16, aRaw int8) bool {
		if math.IsNaN(fv) || math.IsNaN(norm) {
			return true
		}
		fv = math.Abs(math.Mod(fv, 1e9))
		norm = math.Abs(math.Mod(norm, 1e9)) + 1e-3
		alpha := float64(aRaw) / 32
		p := InclusionProb(fv, alpha, 1e-9, norm, int(b%10000)+1)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: biasedWeight treats the floor as a hard lower bound — any two
// densities at or below the floor get identical weights.
func TestPropFloorClamps(t *testing.T) {
	f := func(f1, f2, floorRaw float64) bool {
		if math.IsNaN(f1) || math.IsNaN(f2) || math.IsNaN(floorRaw) {
			return true
		}
		floor := math.Abs(math.Mod(floorRaw, 100)) + 0.1
		f1 = math.Mod(math.Abs(f1), floor)
		f2 = math.Mod(math.Abs(f2), floor)
		for _, a := range []float64{-1.5, -0.5, 0.5, 1.5} {
			if biasedWeight(f1, a, floor) != biasedWeight(f2, a, floor) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
