package core

import (
	"testing"

	"repro/internal/stats"
)

// TestDrawLayoutParity pins the tentpole determinism contract: at float64
// the columnar path must reproduce the row path bit-for-bit — same points,
// same weights, same normalizer — at every worker count, for the exact and
// one-pass variants alike.
func TestDrawLayoutParity(t *testing.T) {
	setup := stats.NewRNG(404)
	ds, _ := twoBlobs(3000, 3000, setup)
	est := buildKDE(t, ds, 200, setup)

	for _, alpha := range []float64{1, -0.5} {
		for _, onePass := range []bool{false, true} {
			base := Options{Alpha: alpha, TargetSize: 500, OnePass: onePass, BlockSize: 512, Layout: LayoutRow, Parallelism: 1}
			ref, err := Draw(ds, est, base, stats.NewRNG(9))
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4, 8} {
				for _, layout := range []Layout{LayoutRow, LayoutColumnar} {
					opts := base
					opts.Parallelism = workers
					opts.Layout = layout
					got, err := Draw(ds, est, opts, stats.NewRNG(9))
					if err != nil {
						t.Fatal(err)
					}
					sameSample(t, ref, got, "layout parity")
				}
			}
		}
	}
}

// TestExtendDrawLayoutParity is the same contract for the incremental
// draw: row and columnar must agree bit-for-bit at workers 1, 4, and 8.
func TestExtendDrawLayoutParity(t *testing.T) {
	fx := newIncrementalFixture(t, 3000, 300, 100, 250, 1.0, 55)
	run := func(layout Layout, par int) (*Sample, NormState) {
		s, ns, err := ExtendDraw(fx.full, fx.ext, ExtendOptions{
			Options:    Options{Alpha: 1.0, TargetSize: 250, Parallelism: par, Layout: layout},
			DeltaStart: fx.n,
			Prior:      fx.prior,
			PriorNorm:  fx.priorNS,
		}, stats.NewRNG(66))
		if err != nil {
			t.Fatal(err)
		}
		return s, ns
	}
	ref, refNS := run(LayoutRow, 1)
	for _, workers := range []int{1, 4, 8} {
		for _, layout := range []Layout{LayoutRow, LayoutColumnar} {
			got, ns := run(layout, workers)
			if ns != refNS {
				t.Fatalf("norm state diverged: %+v vs %+v", ns, refNS)
			}
			sameSample(t, ref, got, "extend layout parity")
		}
	}
}

// TestFloat32RequiresColumnar: the float32 path exists only column-major;
// requesting it on the row layout must be rejected, not silently ignored.
func TestFloat32RequiresColumnar(t *testing.T) {
	setup := stats.NewRNG(11)
	ds, _ := twoBlobs(200, 200, setup)
	est := buildKDE(t, ds, 50, setup)
	_, err := Draw(ds, est, Options{Alpha: 1, TargetSize: 50, Layout: LayoutRow, Precision: Float32}, stats.NewRNG(1))
	if err == nil {
		t.Fatal("row + float32 accepted")
	}
	_, _, err = ExtendDraw(ds, est, ExtendOptions{
		Options:    Options{Alpha: 1, TargetSize: 50, Layout: LayoutRow, Precision: Float32},
		DeltaStart: 200,
		Prior:      &Sample{},
		PriorNorm:  NormState{K: 1, N: 200, Kernels: 50},
	}, stats.NewRNG(1))
	if err == nil {
		t.Fatal("ExtendDraw row + float32 accepted")
	}
}

// TestFloat32Deterministic: the float32 path may drift from float64 (its
// documented error model) but must itself be deterministic across worker
// counts, and must deliver a plausible sample.
func TestFloat32Deterministic(t *testing.T) {
	setup := stats.NewRNG(21)
	ds, _ := twoBlobs(3000, 3000, setup)
	est := buildKDE(t, ds, 200, setup)

	opts := Options{Alpha: 1, TargetSize: 500, Precision: Float32, Parallelism: 1}
	ref, err := Draw(ds, est, opts, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Points) < 350 || len(ref.Points) > 650 {
		t.Fatalf("float32 sample size %d implausible for b=500", len(ref.Points))
	}
	for _, workers := range []int{2, 8} {
		o := opts
		o.Parallelism = workers
		got, err := Draw(ds, est, o, stats.NewRNG(5))
		if err != nil {
			t.Fatal(err)
		}
		sameSample(t, ref, got, "float32 workers")
	}
}

// TestDrawSteadyStateAllocs is the allocation-regression gate verify.sh
// runs: once pools are warm, a serial columnar Draw must perform zero
// per-block heap allocations. With 512 blocks in flight, any per-block
// allocation would blow the fixed per-draw budget immediately.
func TestDrawSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation defeats the scratch pools this gate measures")
	}
	setup := stats.NewRNG(77)
	ds, _ := twoBlobs(4096, 4096, setup)
	est := buildKDE(t, ds, 150, setup)
	opts := Options{Alpha: 1, TargetSize: 400, BlockSize: 16, Parallelism: 1}

	draw := func() {
		if _, err := Draw(ds, est, opts, stats.NewRNG(3)); err != nil {
			t.Fatal(err)
		}
	}
	draw() // warm the scratch pools
	const numBlocks = 512.0
	allocs := testing.AllocsPerRun(5, draw)
	// The fixed per-draw cost (weight cache, RNG streams, arena chunks,
	// result slices) is well under 100 allocations; per-block costs would
	// add ≥512 at this block size.
	if allocs >= 100 {
		t.Fatalf("Draw allocates %.0f objects per run over %v blocks — per-block allocation regression", allocs, numBlocks)
	}
}
