package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/kde"
	"repro/internal/stats"
)

// exactDensity is a density oracle over a fixed point set: the count of
// points within radius r, divided by the ball volume. It lets tests check
// the sampler against known densities without KDE noise.
type exactDensity struct {
	pts []geom.Point
	r   float64
}

func (e exactDensity) Density(p geom.Point) float64 {
	count := 0
	for _, q := range e.pts {
		if geom.Distance(p, q) <= e.r {
			count++
		}
	}
	return float64(count) / geom.UnitBallVolume(p.Dims(), e.r)
}

// twoBlobs builds a dataset with a dense blob (nDense points in a tight
// square) and a sparse blob (nSparse in a loose square), well separated.
func twoBlobs(nDense, nSparse int, rng *stats.RNG) (*dataset.InMemory, []geom.Point) {
	pts := make([]geom.Point, 0, nDense+nSparse)
	for i := 0; i < nDense; i++ {
		pts = append(pts, geom.Point{0.2 + 0.05*rng.Float64(), 0.2 + 0.05*rng.Float64()})
	}
	for i := 0; i < nSparse; i++ {
		pts = append(pts, geom.Point{0.6 + 0.3*rng.Float64(), 0.6 + 0.3*rng.Float64()})
	}
	return dataset.MustInMemory(pts), pts
}

func buildKDE(t *testing.T, ds *dataset.InMemory, kernels int, rng *stats.RNG) *kde.Estimator {
	t.Helper()
	est, err := kde.Build(ds, kde.Options{NumKernels: kernels}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func TestDrawValidation(t *testing.T) {
	rng := stats.NewRNG(1)
	ds, _ := twoBlobs(100, 100, rng)
	est := buildKDE(t, ds, 50, rng)

	if _, err := Draw(ds, nil, Options{TargetSize: 10}, rng); err == nil {
		t.Error("nil estimator accepted")
	}
	if _, err := Draw(ds, est, Options{TargetSize: 0}, rng); err == nil {
		t.Error("zero target size accepted")
	}
	if _, err := Draw(ds, est, Options{TargetSize: 10, FloorDensity: -1}, rng); err == nil {
		t.Error("negative floor accepted")
	}
}

// Property 2 of the paper: the expected sample size is b.
func TestExpectedSampleSize(t *testing.T) {
	rng := stats.NewRNG(2)
	ds, _ := twoBlobs(5000, 5000, rng)
	est := buildKDE(t, ds, 300, rng)

	for _, alpha := range []float64{0, 0.5, 1, -0.5} {
		var total int
		const trials = 20
		const b = 500
		for i := 0; i < trials; i++ {
			s, err := Draw(ds, est, Options{Alpha: alpha, TargetSize: b}, rng)
			if err != nil {
				t.Fatal(err)
			}
			total += len(s.Points)
		}
		mean := float64(total) / trials
		// sd of one draw ≤ sqrt(b); mean of 20 draws has sd ≤ sqrt(500/20)=5;
		// allow generous 6-sigma plus saturation slack.
		if math.Abs(mean-b) > 40 {
			t.Errorf("alpha=%v: mean sample size %v, want ~%v", alpha, mean, float64(b))
		}
	}
}

// a = 0 must reduce to uniform sampling: inclusion probability b/n for all.
func TestAlphaZeroIsUniform(t *testing.T) {
	rng := stats.NewRNG(3)
	ds, _ := twoBlobs(2000, 2000, rng)
	est := buildKDE(t, ds, 200, rng)

	s, err := Draw(ds, est, Options{Alpha: 0, TargetSize: 400}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// norm = n when alpha = 0 (each f^0 = 1)
	if math.Abs(s.Norm-4000) > 1e-9 {
		t.Errorf("k_0 = %v, want n = 4000", s.Norm)
	}
	// every weight must equal n/b = 10
	for _, wp := range s.Points {
		if math.Abs(wp.W-10) > 1e-9 {
			t.Fatalf("uniform weight = %v, want 10", wp.W)
		}
	}
}

// a > 0 oversamples the dense region relative to the sparse one.
func TestPositiveAlphaOversamplesDense(t *testing.T) {
	rng := stats.NewRNG(4)
	ds, _ := twoBlobs(5000, 5000, rng)
	est := buildKDE(t, ds, 400, rng)

	countRegions := func(s *Sample) (dense, sparse int) {
		for _, wp := range s.Points {
			if wp.P[0] < 0.4 {
				dense++
			} else {
				sparse++
			}
		}
		return
	}

	sPos, err := Draw(ds, est, Options{Alpha: 1, TargetSize: 1000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	dPos, spPos := countRegions(sPos)

	sUni, err := Draw(ds, est, Options{Alpha: 0, TargetSize: 1000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	dUni, spUni := countRegions(sUni)

	// Uniform: both halves equally represented. a=1: dense half dominates.
	if dPos <= dUni || spPos >= spUni {
		t.Errorf("a=1 dense/sparse = %d/%d, uniform = %d/%d", dPos, spPos, dUni, spUni)
	}
	ratioPos := float64(dPos) / float64(spPos+1)
	if ratioPos < 3 {
		t.Errorf("a=1 dense:sparse ratio = %v, want strongly dense-biased", ratioPos)
	}
}

// -1 < a < 0 oversamples the sparse region.
func TestNegativeAlphaOversamplesSparse(t *testing.T) {
	rng := stats.NewRNG(5)
	// dense blob has 10x the points of the sparse blob
	ds, _ := twoBlobs(9000, 900, rng)
	est := buildKDE(t, ds, 400, rng)

	s, err := Draw(ds, est, Options{Alpha: -0.5, TargetSize: 1000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var dense, sparse int
	for _, wp := range s.Points {
		if wp.P[0] < 0.4 {
			dense++
		} else {
			sparse++
		}
	}
	// Under uniform sampling sparse would get ~1/11 of the sample (≈91).
	// With a=-0.5 the sparse region must be overrepresented relative to that.
	if sparse < 150 {
		t.Errorf("a=-0.5 sparse count = %d, want oversampled (>150 of ~%d)", sparse, dense+sparse)
	}
	if dense == 0 {
		t.Error("dense region must still be sampled (relative density preservation)")
	}
}

// Lemma 1: for a > -1, if region A is denser than B in the data, it remains
// denser in the sample with high probability.
func TestRelativeDensityPreserved(t *testing.T) {
	rng := stats.NewRNG(6)
	ds, _ := twoBlobs(9000, 900, rng) // dense region ~40x denser per volume
	est := buildKDE(t, ds, 400, rng)

	for _, alpha := range []float64{-0.5, -0.25, 0.5, 1} {
		s, err := Draw(ds, est, Options{Alpha: alpha, TargetSize: 1500}, rng)
		if err != nil {
			t.Fatal(err)
		}
		var dense, sparse int
		for _, wp := range s.Points {
			if wp.P[0] < 0.4 {
				dense++
			} else {
				sparse++
			}
		}
		// Dense blob area: 0.05². Sparse blob area: 0.3² (36x). Sample
		// density(dense) > sample density(sparse) ⇔ dense/0.0025 > sparse/0.09
		// ⇔ dense > sparse/36.
		if float64(dense) <= float64(sparse)/36 {
			t.Errorf("alpha=%v: relative density inverted (dense=%d sparse=%d)", alpha, dense, sparse)
		}
	}
}

// The exact algorithm takes 2 data passes; one-pass takes 1.
func TestPassBudget(t *testing.T) {
	rng := stats.NewRNG(7)
	ds, _ := twoBlobs(1000, 1000, rng)
	est := buildKDE(t, ds, 100, rng) // consumes 1 pass
	base := ds.Passes()

	s, err := Draw(ds, est, Options{Alpha: 1, TargetSize: 100}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.DataPasses != 2 || ds.Passes()-base != 2 {
		t.Errorf("exact variant: %d reported / %d actual passes, want 2", s.DataPasses, ds.Passes()-base)
	}

	base = ds.Passes()
	s1, err := Draw(ds, est, Options{Alpha: 1, TargetSize: 100, OnePass: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s1.DataPasses != 1 || ds.Passes()-base != 1 {
		t.Errorf("one-pass variant: %d reported / %d actual passes, want 1", s1.DataPasses, ds.Passes()-base)
	}
}

// The one-pass approximate normalizer must be close to the exact one.
func TestOnePassNormApproximation(t *testing.T) {
	rng := stats.NewRNG(8)
	ds, _ := twoBlobs(10000, 10000, rng)
	est := buildKDE(t, ds, 1000, rng)

	const floor = 1.0 // well below any blob density in this dataset
	for _, alpha := range []float64{0.5, 1, -0.5} {
		exact, err := ExactNorm(ds, est, alpha, floor)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Draw(ds, est, Options{Alpha: alpha, TargetSize: 100, OnePass: true, FloorDensity: floor}, rng)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(s.Norm-exact) / exact
		if rel > 0.25 {
			t.Errorf("alpha=%v: one-pass norm %v vs exact %v (rel err %v)", alpha, s.Norm, exact, rel)
		}
	}
}

// Weights must be exact inverses of the inclusion probabilities.
func TestWeightsAreInverseProbabilities(t *testing.T) {
	rng := stats.NewRNG(9)
	ds, pts := twoBlobs(2000, 2000, rng)
	oracle := exactDensity{pts: pts, r: 0.05}

	s, err := Draw(ds, oracle, Options{Alpha: 1, TargetSize: 500}, rng)
	if err != nil {
		t.Fatal(err)
	}
	floor := 1e-9
	for _, wp := range s.Points {
		p := InclusionProb(oracle.Density(wp.P), 1, floor, s.Norm, 500)
		if math.Abs(wp.W-1/p) > 1e-9*(1+wp.W) {
			t.Fatalf("weight %v != 1/prob %v", wp.W, 1/p)
		}
	}
	// Horvitz-Thompson check: Σ weights estimates n.
	var tot float64
	for _, wp := range s.Points {
		tot += wp.W
	}
	if math.Abs(tot-4000) > 800 {
		t.Errorf("Σ weights = %v, want ~4000", tot)
	}
}

// Zero-density regions with a<0 must not blow up the normalizer.
func TestFloorKeepsNegativeAlphaFinite(t *testing.T) {
	rng := stats.NewRNG(10)
	// isolated far-away point the KDE will see as ~zero density
	pts := make([]geom.Point, 0, 1001)
	for i := 0; i < 1000; i++ {
		pts = append(pts, geom.Point{0.5 + 0.01*rng.Float64(), 0.5 + 0.01*rng.Float64()})
	}
	pts = append(pts, geom.Point{5, 5})
	ds := dataset.MustInMemory(pts)
	est := buildKDE(t, ds, 100, rng)

	s, err := Draw(ds, est, Options{Alpha: -1.5, TargetSize: 50}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(s.Norm, 0) || math.IsNaN(s.Norm) {
		t.Fatalf("norm = %v", s.Norm)
	}
	// The isolated point must be (near-)certainly included at strongly
	// negative alpha.
	found := false
	for _, wp := range s.Points {
		if wp.P[0] > 4 {
			found = true
		}
	}
	if !found {
		t.Error("far outlier not sampled at alpha=-1.5")
	}
}

func TestPlainPoints(t *testing.T) {
	s := &Sample{Points: []dataset.WeightedPoint{
		{P: geom.Point{1, 2}, W: 3},
		{P: geom.Point{4, 5}, W: 6},
	}}
	pts := s.PlainPoints()
	if len(pts) != 2 || !pts[1].Equal(geom.Point{4, 5}) {
		t.Errorf("PlainPoints = %v", pts)
	}
}

func TestInclusionProbClamped(t *testing.T) {
	if p := InclusionProb(1e12, 1, 1e-9, 1, 10); p != 1 {
		t.Errorf("clamped prob = %v", p)
	}
	if p := InclusionProb(0, 0, 1e-9, 100, 10); math.Abs(p-0.1) > 1e-12 {
		t.Errorf("uniform prob = %v, want 0.1", p)
	}
}
