//go:build race

package core

// raceEnabled reports whether the race detector instruments this build;
// the allocation gate skips itself then, since instrumentation defeats
// the scratch pools the gate measures.
const raceEnabled = true
