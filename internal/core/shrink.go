// Sliding-window eviction for incremental samples — the inverse of
// ExtendDraw's delta math.
//
// ExtendDraw grows a sample's coverage by adding the delta's normalizer
// contribution: k_a' = k_base + D. ShrinkDraw removes an evicted prefix by
// subtracting it:
//
//	k_a' = k_base − D_evict,  k_base = K·s^a,  D_evict = Σ_{x ∈ evicted} f'(x)^a
//
// where K is the prior normalizer, f' is the post-eviction estimator, and
// s rescales prior densities to it (the estimator's NormRescale when
// implemented, the KDE default otherwise). The evicted sample points are
// identified by index — Sample.Indices, maintained by Draw and ExtendDraw —
// so eviction costs one pass over the evicted rows and no pass over the
// survivors.
//
// Survivors keep their weights unchanged and flip no new coins: each was
// included with its realized probability p, so its inverse-probability
// weight 1/p remains unbiased for every window statistic. What shrinks is
// the expected sample size — survivors of the window carry
// E[|S|] ≈ b·(k_a' /k_base) ≤ b — a deficit tracked as drift exactly like
// ExtendDraw's rescaling error, and repaired by the next exact rebuild
// (RebuildSchedule, which charges |delta| for shrinks too). Consuming no
// randomness keeps replicas trivially in lockstep: a shrink is a pure
// function of (prior sample, evicted rows, estimator).
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/obs"
)

// ShrinkOptions configure one eviction step. The embedded Options are
// interpreted as for Draw (Alpha, FloorDensity, Parallelism, BlockSize,
// Layout, Obs, Progress, Ctx apply to the single pass over the evicted
// rows); TargetSize and OnePass are ignored — a shrink draws nothing.
type ShrinkOptions struct {
	Options

	// EvictCount m is how many points leave the front of the prior
	// sample's coverage: the prior covers dataset indices [0, PriorNorm.N)
	// and the surviving window is [m, PriorNorm.N). The evicted dataset
	// passed to ShrinkDraw must hold exactly those m rows.
	EvictCount int

	// Prior is the sample being shrunk. It must carry Indices (Draw and
	// ExtendDraw fill them; deserialized or shard-merged samples do not
	// and cannot be shrunk without an exact rebuild). It is not mutated.
	Prior *Sample

	// PriorNorm is the NormState returned alongside Prior.
	PriorNorm NormState
}

// ShrinkDraw shrinks a prior sample of [0, PriorNorm.N) to a sample of the
// surviving window [EvictCount, PriorNorm.N), spending one pass over the
// evicted rows only. est must be the post-eviction estimator (the
// estimator after the evicted generation's mass is removed) and must
// expose Centers and N.
//
// The returned sample's Indices are window-relative: each survivor's index
// shifts down by EvictCount, so the result composes with a later
// ExtendDraw or ShrinkDraw over the window view. DataPasses reports the
// one eviction pass; Saturated carries the prior's count unchanged (no
// coin is re-examined).
func ShrinkDraw(evicted dataset.Dataset, est DensityEstimator, opts ShrinkOptions) (*Sample, NormState, error) {
	var zero NormState
	if est == nil {
		return nil, zero, errors.New("core: nil density estimator")
	}
	if opts.Prior == nil {
		return nil, zero, errors.New("core: ShrinkDraw requires a prior sample")
	}
	if opts.Prior.Indices == nil {
		return nil, zero, errors.New("core: ShrinkDraw requires a prior sample with Indices (drawn locally, not decoded or shard-merged)")
	}
	if len(opts.Prior.Indices) != len(opts.Prior.Points) {
		return nil, zero, fmt.Errorf("core: prior has %d indices for %d points", len(opts.Prior.Indices), len(opts.Prior.Points))
	}
	prior := opts.PriorNorm
	if prior.N <= 0 || prior.Kernels <= 0 || prior.K <= 0 {
		return nil, zero, fmt.Errorf("core: degenerate prior norm state %+v", prior)
	}
	m := opts.EvictCount
	if m <= 0 {
		return nil, zero, fmt.Errorf("core: EvictCount %d, want positive", m)
	}
	n := prior.N - m
	if n <= 0 {
		return nil, zero, fmt.Errorf("core: evicting %d of %d points leaves no window", m, prior.N)
	}
	if evicted.Len() != m {
		return nil, zero, fmt.Errorf("core: evicted view holds %d rows, EvictCount is %d", evicted.Len(), m)
	}
	ce, ok := est.(centersEstimator)
	if !ok {
		return nil, zero, errors.New("core: ShrinkDraw requires an estimator exposing Centers and N")
	}
	floor := opts.FloorDensity
	if floor < 0 {
		return nil, zero, errors.New("core: negative FloorDensity")
	}
	if opts.Precision == Float32 && opts.Layout == LayoutRow {
		return nil, zero, errors.New("core: Float32 requires the columnar layout")
	}
	if floor == 0 {
		floor = defaultFloor(est)
	}

	rec := opts.Obs
	span := rec.StartSpan("shrink_draw")
	defer span.End()

	// The one pass: D_evict = Σ_{evicted} f'(x)^a under the post-eviction
	// estimator.
	nspan := rec.StartSpan("shrink_draw/normalize")
	d, err := exactNorm(opts.Ctx, evicted, est, opts.Options, floor, nil, rec, opts.Progress)
	nspan.AddPoints(int64(m))
	nspan.End()
	if err != nil {
		return nil, zero, err
	}

	ks := len(ce.Centers())
	if ks == 0 {
		return nil, zero, errors.New("core: estimator has no centers")
	}
	s := (float64(n) / float64(prior.N)) * (float64(prior.Kernels) / float64(ks))
	if nr, ok := est.(NormRescaler); ok {
		s = nr.NormRescale(prior.N, prior.Kernels)
	}
	kbase := prior.K * biasedScale(s, opts.Alpha)
	kNew := kbase - d
	if kNew <= 0 || math.IsInf(kNew, 0) || math.IsNaN(kNew) {
		return nil, zero, fmt.Errorf("core: degenerate shrunk normalizer k_a = %v (k_base %v − D_evict %v)", kNew, kbase, d)
	}

	// Keep exactly the survivors: sample points whose index falls inside
	// the window, re-addressed to window-relative coordinates. Points are
	// in index order, and the eviction is a prefix, so the survivors are a
	// suffix of the prior sample.
	cut := 0
	for cut < len(opts.Prior.Indices) && opts.Prior.Indices[cut] < int64(m) {
		cut++
	}
	survivors := opts.Prior.Points[cut:]
	out := &Sample{
		Norm:       kNew,
		DataPasses: 1,
		Saturated:  opts.Prior.Saturated,
		Points:     make([]dataset.WeightedPoint, len(survivors)),
		Indices:    make([]int64, len(survivors)),
	}
	copy(out.Points, survivors)
	for i, idx := range opts.Prior.Indices[cut:] {
		if idx >= int64(prior.N) {
			return nil, zero, fmt.Errorf("core: prior sample index %d beyond its coverage %d", idx, prior.N)
		}
		out.Indices[i] = idx - int64(m)
	}

	span.AddPoints(int64(m))
	rec.Counter(obs.CtrIncDraws).Inc()
	rec.Gauge(obs.GaugeSampleNorm).Set(kNew)
	rec.Gauge(obs.GaugeSampleDataPasses).Set(float64(out.DataPasses))

	next := NormState{
		K:       kNew,
		N:       n,
		Kernels: ks,
		Drift:   prior.Drift + float64(m)/float64(n),
	}
	return out, next, nil
}
