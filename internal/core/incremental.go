// Incremental density-biased sampling for appendable datasets.
//
// The exact algorithm (Draw) spends two passes over all n points. When a
// dataset grows by a delta of m points and a sample of the prior prefix is
// already in hand, re-running Draw repeats work proportional to n even
// though only m points are new. ExtendDraw instead updates the prior sample
// with passes over the delta alone:
//
//	k_a' = k_base + D,  k_base = K·s^a,  D = Σ_{x ∈ delta} f'(x)^a
//
// where K is the prior normalizer, f' is the extended estimator, and s is
// the density rescaling the extension applies to old points (see kbase
// below). The prior sample is thinned with keep-probability r = k_base/k_a'
// (each kept weight divided by r), and the delta points flip the usual
// inclusion coin against k_a'. Under the rescaling approximation
// f'(x) ≈ s·f(x) on the prior prefix, a thinned point's total inclusion
// probability is exactly min(1, b·f(x)^a/K)·r ≈ min(1, b·f'(x)^a/k_a'),
// the probability Draw would have used — so Property 2 is preserved:
//
//	E[|S|] = b·(k_base/k_a') + b·(D/k_a') = b      (modulo saturation)
//
// The approximation error on the prior prefix is what the drift budget
// tracks: each incremental step adds m/n' of relative drift, and the
// serving layer falls back to an exact rebuild once the accumulated drift
// exceeds its tolerance (RebuildSchedule). At tolerance 0 every generation
// rebuilds exactly and incremental sampling is never entered, so results
// are bit-for-bit identical to a from-scratch server.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// NormState is the bookkeeping that makes a Sample extendable: the
// normalizer it was drawn against, the prefix length and kernel count it
// covers, and the relative drift accumulated since the last exact rebuild.
// A full Draw starts a lineage with Drift 0; each ExtendDraw returns the
// successor state.
type NormState struct {
	// K is the normalizer k_a the sample was drawn with.
	K float64
	// N is the dataset length the sample covers.
	N int
	// Kernels is the kernel count of the estimator the sample was drawn
	// with.
	Kernels int
	// Drift is the accumulated relative drift (Σ m_g/n_g over the
	// incremental steps since the last exact rebuild).
	Drift float64
}

// ExtendOptions configure one incremental draw. The embedded Options are
// interpreted as for Draw, except OnePass (unsupported: the incremental
// path already has the prior normalizer and never needs the one-pass
// approximation) and Progress/VerifyNorm, which apply to the delta passes.
type ExtendOptions struct {
	Options

	// DeltaStart is the index where the delta begins; the prior sample
	// must cover exactly [0, DeltaStart) and ds must extend past it.
	DeltaStart int

	// Prior is the sample of ds[:DeltaStart] being extended. It is not
	// mutated; kept points are shared with the new sample (samples are
	// immutable once drawn).
	Prior *Sample

	// PriorNorm is the NormState returned alongside Prior (or synthesized
	// from a full Draw via NormState{K: s.Norm, N: n, Kernels: ks}).
	PriorNorm NormState
}

// ExtendDraw extends a prior sample of ds[:DeltaStart] to a sample of all
// of ds, spending two passes over the delta only: one to accumulate the
// delta's normalizer contribution D, one to flip the delta's inclusion
// coins. est must be the extended estimator (the prior estimator after
// Extend over delta centers) and must expose Centers and N.
//
// Determinism matches Draw: one draw of rng fans out into a thinning
// stream plus one stream per delta block, the delta blocks are laid out by
// (delta length, BlockSize) alone, and per-block selections concatenate in
// block order — so for a fixed seed the result is bit-for-bit identical at
// every Parallelism.
//
// The returned Sample reports the delta passes in DataPasses and the
// delta's saturation count in Saturated (the prior sample's saturated
// coins are not re-examined — re-deciding them would need a full pass).
func ExtendDraw(ds dataset.Dataset, est DensityEstimator, opts ExtendOptions, rng *stats.RNG) (*Sample, NormState, error) {
	var zero NormState
	if est == nil {
		return nil, zero, errors.New("core: nil density estimator")
	}
	if opts.TargetSize <= 0 {
		return nil, zero, errors.New("core: TargetSize must be positive")
	}
	if opts.OnePass {
		return nil, zero, errors.New("core: ExtendDraw does not support OnePass")
	}
	if opts.Prior == nil {
		return nil, zero, errors.New("core: ExtendDraw requires a prior sample")
	}
	prior := opts.PriorNorm
	if prior.N <= 0 || prior.Kernels <= 0 || prior.K <= 0 {
		return nil, zero, fmt.Errorf("core: degenerate prior norm state %+v", prior)
	}
	if opts.DeltaStart != prior.N {
		return nil, zero, fmt.Errorf("core: delta starts at %d but prior covers %d points", opts.DeltaStart, prior.N)
	}
	n := ds.Len()
	m := n - opts.DeltaStart
	if m <= 0 {
		return nil, zero, fmt.Errorf("core: dataset has %d points, none beyond the prior's %d", n, opts.DeltaStart)
	}
	ce, ok := est.(centersEstimator)
	if !ok {
		return nil, zero, errors.New("core: ExtendDraw requires an estimator exposing Centers and N")
	}
	floor := opts.FloorDensity
	if floor < 0 {
		return nil, zero, errors.New("core: negative FloorDensity")
	}
	if opts.Precision == Float32 && opts.Layout == LayoutRow {
		return nil, zero, errors.New("core: Float32 requires the columnar layout")
	}
	if floor == 0 {
		floor = defaultFloor(est)
	}

	rec := opts.Obs
	span := rec.StartSpan("extend_draw")
	defer span.End()

	w, err := dataset.Window(ds, opts.DeltaStart, n)
	if err != nil {
		return nil, zero, err
	}

	// Pass 1 over the delta: D = Σ_{delta} f'(x)^a, with the biased
	// weights cached for the coin pass when the delta is memory-resident.
	var weightCache []float64
	if sl, ok := w.(dataset.Sliceable); ok && len(sl.Points()) >= m {
		weightCache = make([]float64, m)
	}
	nspan := rec.StartSpan("extend_draw/normalize")
	d, err := exactNorm(opts.Ctx, w, est, opts.Options, floor, weightCache, rec, opts.Progress)
	nspan.AddPoints(int64(m))
	nspan.End()
	if err != nil {
		return nil, zero, err
	}

	// kbase rescales the prior normalizer to the extended estimator. The
	// extension changes an old point's density by s = (n'/N)·(ks/ks'): the
	// per-kernel mass scales with the represented size and inversely with
	// the kernel count, while the kernel sum at an old point is dominated
	// by the old centers. So Σ_{prefix} f'(x)^a ≈ s^a · Σ_{prefix} f(x)^a
	// = K·s^a. The error of this approximation is the drift this step
	// contributes.
	ks := len(ce.Centers())
	if ks == 0 {
		return nil, zero, errors.New("core: estimator has no centers")
	}
	s := (float64(n) / float64(prior.N)) * (float64(prior.Kernels) / float64(ks))
	if nr, ok := est.(NormRescaler); ok {
		s = nr.NormRescale(prior.N, prior.Kernels)
	}
	kbase := prior.K * biasedScale(s, opts.Alpha)
	kNew := kbase + d
	if kNew <= 0 || math.IsInf(kNew, 0) || math.IsNaN(kNew) {
		return nil, zero, fmt.Errorf("core: degenerate extended normalizer k_a = %v", kNew)
	}
	r := kbase / kNew

	blockSize := parallel.BlockSize(opts.BlockSize)
	numBlocks := parallel.NumBlocks(m, blockSize)
	streams := rng.SplitsValues(1+numBlocks, nil)

	// Thin the prior sample sequentially from its own stream: each kept
	// point's inclusion probability shrinks by r, so its inverse-
	// probability weight grows by 1/r.
	cCoins := rec.Counter(obs.CtrCoinFlips)
	tspan := rec.StartSpan("extend_draw/thin")
	thin := &streams[0]
	kept := make([]dataset.WeightedPoint, 0, len(opts.Prior.Points))
	var keptIdx []int64
	if opts.Prior.Indices != nil {
		keptIdx = make([]int64, 0, len(opts.Prior.Indices))
	}
	for i, wp := range opts.Prior.Points {
		if thin.Bernoulli(r) {
			kept = append(kept, dataset.WeightedPoint{P: wp.P, W: wp.W / r})
			if keptIdx != nil {
				keptIdx = append(keptIdx, opts.Prior.Indices[i])
			}
		}
	}
	cCoins.Add(int64(len(opts.Prior.Points)))
	tspan.End()

	// Pass 2 over the delta: the usual inclusion coin against k_a'.
	type blockSample struct {
		points    []dataset.WeightedPoint
		indices   []int64
		saturated int
	}
	perBlock := make([]blockSample, numBlocks)
	arena := &sampleArena{dims: ds.Dims()}
	b := float64(opts.TargetSize)
	cSat := rec.Counter(obs.CtrSaturated)
	sspan := rec.StartSpan("extend_draw/sample")
	err = scanBlocksLayout(w, dataset.ScanConfig{
		BlockSize:   blockSize,
		Parallelism: opts.Parallelism,
		Ctx:         opts.Ctx,
		Rec:         rec,
		Progress:    opts.Progress,
	}, opts.Layout, func(block, start int, pts []geom.Point, cols [][]float64) error {
		// Same fused pass as Draw: cached (or freshly fused) biased
		// weights, coin flips into pooled scratch, arena-carved storage.
		sc := getCoinScratch(len(pts))
		defer coinScratchPool.Put(sc)
		var weights []float64
		if weightCache != nil {
			weights = weightCache[start : start+len(pts)]
		} else {
			weights = sc.dens
			evalDensitiesLayout(est, pts, cols, opts.Precision, weights)
			for i, f := range weights {
				weights[i] = biasedWeight(f, opts.Alpha, floor)
			}
		}
		brng := &streams[1+block]
		count, sat := 0, 0
		for i := range pts {
			prob := b * weights[i] / kNew
			if prob >= 1 {
				prob = 1
				sat++
			}
			if brng.Bernoulli(prob) {
				sc.idx[count] = int32(i)
				sc.probs[count] = prob
				count++
			}
		}
		// Block starts are window-relative; the global dataset index of a
		// delta selection is DeltaStart + start + in-block offset.
		wps, idxs := fillBlockSample(arena, pts, sc, count, opts.DeltaStart+start)
		perBlock[block] = blockSample{points: wps, indices: idxs, saturated: sat}
		cCoins.Add(int64(len(pts)))
		cSat.Add(int64(sat))
		return nil
	})
	sspan.AddPoints(int64(m))
	sspan.End()
	if err != nil {
		return nil, zero, err
	}

	out := &Sample{Norm: kNew, DataPasses: 2}
	total := len(kept)
	for i := range perBlock {
		total += len(perBlock[i].points)
	}
	out.Points = make([]dataset.WeightedPoint, 0, total)
	out.Points = append(out.Points, kept...)
	if keptIdx != nil {
		out.Indices = make([]int64, 0, total)
		out.Indices = append(out.Indices, keptIdx...)
	}
	for i := range perBlock {
		out.Points = append(out.Points, perBlock[i].points...)
		if out.Indices != nil {
			out.Indices = append(out.Indices, perBlock[i].indices...)
		}
		out.Saturated += perBlock[i].saturated
	}
	span.AddPoints(int64(m))
	rec.Counter(obs.CtrIncDraws).Inc()
	rec.Counter(obs.CtrSampled).Add(int64(len(out.Points) - len(kept)))
	rec.Gauge(obs.GaugeSampleNorm).Set(kNew)
	rec.Gauge(obs.GaugeSampleDataPasses).Set(float64(out.DataPasses))

	next := NormState{
		K:       kNew,
		N:       n,
		Kernels: ks,
		Drift:   prior.Drift + float64(m)/float64(n),
	}
	return out, next, nil
}

// biasedScale is s^a with the same fast paths biasedWeight uses, so the
// rescaled normalizer composes with per-point weights consistently.
func biasedScale(s, alpha float64) float64 {
	if alpha == 0 {
		return 1
	}
	if alpha == 1 {
		return s
	}
	return math.Pow(s, alpha)
}

// RebuildSchedule decides, for each generation of an appendable dataset,
// whether its sample must be rebuilt exactly or may be extended from the
// prior generation. counts[g] is the cumulative dataset length at
// generation g. Generation 0 is always exact; generation g ≥ 1 is exact
// when extending would push the accumulated drift Σ m_j/n_j past tol (an
// exact rebuild resets the budget). The schedule is a pure function of
// (counts, tol) — every server replica, and a replica restarted mid-
// lineage, derives the same exact/incremental decisions.
//
// With tol ≤ 0 every generation is exact: incremental sampling is opt-in.
func RebuildSchedule(counts []int, tol float64) []bool {
	exact := make([]bool, len(counts))
	if len(counts) == 0 {
		return exact
	}
	exact[0] = true
	drift := 0.0
	for g := 1; g < len(counts); g++ {
		// |delta|, not delta: under window eviction a generation can
		// shrink, and a signed step would go negative — *reducing*
		// accumulated drift and postponing the exact rebuild indefinitely.
		// A shrink perturbs the approximation just like a growth of the
		// same magnitude, so both charge the budget.
		step := math.Abs(float64(counts[g]-counts[g-1])) / float64(counts[g])
		if tol <= 0 || drift+step > tol {
			exact[g] = true
			drift = 0
		} else {
			drift += step
		}
	}
	return exact
}
