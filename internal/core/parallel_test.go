package core

import (
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// sampleKey captures everything that must be byte-identical across worker
// counts: points, weights, normalizer, pass count, and saturation.
func sameSample(t *testing.T, a, b *Sample, label string) {
	t.Helper()
	if a.Norm != b.Norm {
		t.Fatalf("%s: Norm %v vs %v", label, a.Norm, b.Norm)
	}
	if a.Saturated != b.Saturated {
		t.Fatalf("%s: Saturated %d vs %d", label, a.Saturated, b.Saturated)
	}
	if a.DataPasses != b.DataPasses {
		t.Fatalf("%s: DataPasses %d vs %d", label, a.DataPasses, b.DataPasses)
	}
	if len(a.Points) != len(b.Points) {
		t.Fatalf("%s: %d points vs %d", label, len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i].W != b.Points[i].W {
			t.Fatalf("%s: weight %d: %v vs %v", label, i, a.Points[i].W, b.Points[i].W)
		}
		if !a.Points[i].P.Equal(b.Points[i].P) {
			t.Fatalf("%s: point %d: %v vs %v", label, i, a.Points[i].P, b.Points[i].P)
		}
	}
}

// Parallel Draw must return the identical sample as the serial path
// (Parallelism: 1) for every worker count, seed, and variant.
func TestDrawDeterministicAcrossWorkers(t *testing.T) {
	setup := stats.NewRNG(100)
	ds, _ := twoBlobs(4000, 4000, setup)
	est := buildKDE(t, ds, 300, setup)

	for _, seed := range []uint64{1, 7, 12345} {
		for _, alpha := range []float64{0, 1, -0.5} {
			base := Options{Alpha: alpha, TargetSize: 800, BlockSize: 512, Parallelism: 1}
			ref, err := Draw(ds, est, base, stats.NewRNG(seed))
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				opts := base
				opts.Parallelism = workers
				got, err := Draw(ds, est, opts, stats.NewRNG(seed))
				if err != nil {
					t.Fatal(err)
				}
				sameSample(t, ref, got, "exact")
			}
			// One-pass variant: same invariant.
			one := base
			one.OnePass = true
			refOne, err := Draw(ds, est, one, stats.NewRNG(seed))
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				opts := one
				opts.Parallelism = workers
				got, err := Draw(ds, est, opts, stats.NewRNG(seed))
				if err != nil {
					t.Fatal(err)
				}
				sameSample(t, refOne, got, "onepass")
			}
		}
	}
}

// The invariant must hold for file-backed datasets too, where parallel
// blocks read through independent file handles.
func TestDrawDeterministicFileBacked(t *testing.T) {
	setup := stats.NewRNG(101)
	mem, _ := twoBlobs(3000, 3000, setup)
	path := filepath.Join(t.TempDir(), "blobs.dbs")
	if err := dataset.SaveBinary(path, mem); err != nil {
		t.Fatal(err)
	}
	fb, err := dataset.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	est := buildKDE(t, mem, 200, setup)

	opts := Options{Alpha: 1, TargetSize: 500, BlockSize: 256, Parallelism: 1}
	ref, err := Draw(fb, est, opts, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		opts.Parallelism = workers
		got, err := Draw(fb, est, opts, stats.NewRNG(9))
		if err != nil {
			t.Fatal(err)
		}
		sameSample(t, ref, got, "file-backed")
	}
	// File-backed and in-memory scans of the same data must agree as well.
	opts.Parallelism = 4
	gotMem, err := Draw(mem, est, opts, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	sameSample(t, ref, gotMem, "in-memory vs file")
}

// Parallel ExactNorm must equal serial ExactNorm exactly — the ordered
// reduction, not an atomic-add race, is what makes this an equality
// rather than a tolerance check.
func TestExactNormDeterministicAcrossWorkers(t *testing.T) {
	setup := stats.NewRNG(102)
	ds, _ := twoBlobs(5000, 5000, setup)
	est := buildKDE(t, ds, 300, setup)

	for _, alpha := range []float64{0, 0.5, 1, -0.5} {
		ref, err := ExactNorm(ds, est, alpha, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			got, err := ExactNormParallel(ds, est, alpha, 1e-6, workers, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got != ref {
				t.Fatalf("alpha=%v workers=%d: ExactNorm %v != serial %v", alpha, workers, got, ref)
			}
		}
	}
}
