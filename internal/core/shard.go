// Sharded draw primitives.
//
// The exact sampler's two dataset passes decompose by scan block: the
// normalizer k_a = Σ f'(x_i) is a plain sum whose per-block partials merge
// exactly when added back in block order, and the coin-flip pass already
// gives every block an independent RNG stream derived from (base, block
// index) alone. NormPartials and DrawBlocks expose exactly those per-block
// computations so a coordinator (internal/shard) can scatter blocks across
// workers and gather a sample that is bit-for-bit identical to Draw's —
// the single-node determinism guarantee, extended one level up.
//
// Both entry points deliberately share code with Draw (evalDensities,
// biasedWeight, flipCoins, fillBlockSample) rather than reimplementing the
// loops: parity is enforced structurally, not by keeping two copies in
// sync.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// BlockSample is one block's contribution to a sharded draw: the selected
// weighted points of global block Block in index order, plus the block's
// count of probabilities clipped at 1. Concatenating the BlockSamples of
// blocks 0..NumBlocks-1 in block order reproduces Draw's Points, and
// summing Saturated reproduces Draw's Saturated.
type BlockSample struct {
	Block     int
	Points    []dataset.WeightedPoint
	Saturated int
}

// DrawStreamBase consumes one draw of rng — exactly the draw
// stats.RNG.SplitsValues makes inside Draw — and returns it as the base
// every per-block coin stream derives from: block i's stream is
// stats.StreamAt(base, i). A coordinator calls this where it would have
// called Draw, ships the base to its workers, and rng is left in the same
// state either way.
func DrawStreamBase(rng *stats.RNG) uint64 { return rng.Uint64() }

// validateShardOpts checks the option combinations the sharded path
// supports. OnePass is meaningless here (its single pass is not blocked
// against an exact normalizer), and Float32 breaks the row/column parity
// the cross-mode bit-identity contract rests on.
func validateShardOpts(opts Options) error {
	if opts.OnePass {
		return errors.New("core: sharded draw does not support OnePass")
	}
	if opts.Precision == Float32 {
		return errors.New("core: sharded draw requires Float64 precision")
	}
	if opts.FloorDensity < 0 {
		return errors.New("core: negative FloorDensity")
	}
	return nil
}

// blockPoints returns the row view of points [start, end). Sliceable
// datasets (every memory-resident or mapped dataset in this repository,
// including generation-pinned views) hand back a subslice of their stable
// snapshot; RangeScanner datasets decode the range into fresh storage.
func blockPoints(ds dataset.Dataset, start, end int) ([]geom.Point, error) {
	if sl, ok := ds.(dataset.Sliceable); ok {
		if pts := sl.Points(); len(pts) >= end {
			return pts[start:end], nil
		}
	}
	rs, ok := ds.(dataset.RangeScanner)
	if !ok {
		return nil, fmt.Errorf("core: sharded draw requires a Sliceable or RangeScanner dataset, got %T", ds)
	}
	buf := make([]geom.Point, 0, end-start)
	if err := rs.ScanRange(start, end, func(p geom.Point) error {
		buf = append(buf, p.Clone())
		return nil
	}); err != nil {
		return nil, err
	}
	if len(buf) != end-start {
		return nil, fmt.Errorf("core: range scan of [%d,%d) delivered %d points", start, end, len(buf))
	}
	return buf, nil
}

// checkBlocks validates the assigned global block indices against the
// dataset's block count.
func checkBlocks(blocks []int, numBlocks int) error {
	for _, b := range blocks {
		if b < 0 || b >= numBlocks {
			return fmt.Errorf("core: block index %d out of range [0,%d)", b, numBlocks)
		}
	}
	return nil
}

// NormPartials computes the per-block partial normalizer sums
// k_a(block) = Σ_{x ∈ block} max(f(x), floor)^a for the given global block
// indices, returning them parallel to blocks. Each partial accumulates its
// block's points in index order, so a caller that places the partials of
// all blocks into global block order and sums sequentially reproduces
// ExactNorm bit-for-bit (the float additions happen in the same order).
// Block boundaries come from (ds.Len(), opts.BlockSize) exactly as in Draw;
// when opts.FloorDensity is zero the floor defaults from the estimator, so
// identical estimators yield identical floors on every shard.
func NormPartials(ds dataset.Dataset, est DensityEstimator, opts Options, blocks []int) ([]float64, error) {
	if est == nil {
		return nil, errors.New("core: nil density estimator")
	}
	if err := validateShardOpts(opts); err != nil {
		return nil, err
	}
	n := ds.Len()
	if n == 0 {
		return nil, errors.New("core: empty dataset")
	}
	blockSize := parallel.BlockSize(opts.BlockSize)
	numBlocks := parallel.NumBlocks(n, blockSize)
	if err := checkBlocks(blocks, numBlocks); err != nil {
		return nil, err
	}
	floor := opts.FloorDensity
	if floor == 0 {
		floor = defaultFloor(est)
	}
	rec := opts.Obs
	span := rec.StartSpan("shard/partials")
	defer span.End()
	out := make([]float64, len(blocks))
	err := parallel.DoCtxObs(opts.Ctx, len(blocks), opts.Parallelism, rec, func(j int) error {
		start, end := parallel.BlockRange(blocks[j], n, blockSize)
		pts, err := blockPoints(ds, start, end)
		if err != nil {
			return err
		}
		sc := getCoinScratch(len(pts))
		defer coinScratchPool.Put(sc)
		evalDensities(est, pts, sc.dens)
		var k float64
		for _, f := range sc.dens {
			k += biasedWeight(f, opts.Alpha, floor)
		}
		out[j] = k
		span.AddPoints(int64(len(pts)))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DrawBlocks runs Draw's coin-flip pass over the given global blocks
// against an externally supplied global normalizer and stream base. Block
// i's coins come from stats.StreamAt(base, i) — the stream Draw would have
// assigned it — and the selection loop is Draw's own (flipCoins), so for
// the norm and base a single-node Draw would use, the returned selections
// are bit-identical to the corresponding slice of that Draw's sample.
// Results are ordered like blocks; weights are 1/P(included) as in Draw.
func DrawBlocks(ds dataset.Dataset, est DensityEstimator, opts Options, norm float64, base uint64, blocks []int) ([]BlockSample, error) {
	if est == nil {
		return nil, errors.New("core: nil density estimator")
	}
	if opts.TargetSize <= 0 {
		return nil, errors.New("core: TargetSize must be positive")
	}
	if err := validateShardOpts(opts); err != nil {
		return nil, err
	}
	if norm <= 0 || math.IsInf(norm, 0) || math.IsNaN(norm) {
		return nil, fmt.Errorf("core: degenerate normalizer k_a = %v", norm)
	}
	n := ds.Len()
	if n == 0 {
		return nil, errors.New("core: empty dataset")
	}
	blockSize := parallel.BlockSize(opts.BlockSize)
	numBlocks := parallel.NumBlocks(n, blockSize)
	if err := checkBlocks(blocks, numBlocks); err != nil {
		return nil, err
	}
	floor := opts.FloorDensity
	if floor == 0 {
		floor = defaultFloor(est)
	}
	rec := opts.Obs
	span := rec.StartSpan("shard/draw")
	defer span.End()
	cCoins := rec.Counter(obs.CtrCoinFlips)
	cSat := rec.Counter(obs.CtrSaturated)
	arena := &sampleArena{dims: ds.Dims()}
	b := float64(opts.TargetSize)
	out := make([]BlockSample, len(blocks))
	err := parallel.DoCtxObs(opts.Ctx, len(blocks), opts.Parallelism, rec, func(j int) error {
		start, end := parallel.BlockRange(blocks[j], n, blockSize)
		pts, err := blockPoints(ds, start, end)
		if err != nil {
			return err
		}
		sc := getCoinScratch(len(pts))
		defer coinScratchPool.Put(sc)
		evalDensities(est, pts, sc.dens)
		for i, f := range sc.dens {
			sc.dens[i] = biasedWeight(f, opts.Alpha, floor)
		}
		brng := stats.StreamAt(base, blocks[j])
		count, sat := flipCoins(sc.dens, b, norm, &brng, sc)
		// Indices are dropped here: they never cross the shard wire, and
		// the coordinator's merged sample carries Indices == nil.
		wps, _ := fillBlockSample(arena, pts, sc, count, start)
		out[j] = BlockSample{
			Block:     blocks[j],
			Points:    wps,
			Saturated: sat,
		}
		cCoins.Add(int64(len(pts)))
		cSat.Add(int64(sat))
		span.AddPoints(int64(len(pts)))
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for i := range out {
		total += len(out[i].Points)
	}
	rec.Counter(obs.CtrSampled).Add(int64(total))
	return out, nil
}
