package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/stats"
)

// rampEstimator is a fixed density field f(p) = 1 + p[0], independent of
// any estimator state. Its NormRescale returns 1 — evicting points does
// not change a surviving point's density — which makes the shrink identity
// k_a' = K − D_evict exact rather than an approximation, so tests can pin
// it to floating-point tolerance.
type rampEstimator struct {
	n       int
	centers []geom.Point
}

func (r *rampEstimator) Density(p geom.Point) float64                 { return 1 + p[0] }
func (r *rampEstimator) Centers() []geom.Point                        { return r.centers }
func (r *rampEstimator) N() int                                       { return r.n }
func (r *rampEstimator) NormRescale(priorN, priorKernels int) float64 { return 1 }

func rampFixture(t *testing.T, n int, seed uint64) (*dataset.InMemory, *rampEstimator) {
	t.Helper()
	rng := stats.NewRNG(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64(), rng.Float64()}
	}
	ds := dataset.MustInMemory(pts)
	return ds, &rampEstimator{n: n, centers: pts[:8]}
}

// TestDrawFillsIndices pins the new Sample.Indices contract: parallel to
// Points, strictly increasing (samples are in dataset index order), each
// index naming exactly the dataset row the sampled point was copied from —
// at both serial and parallel settings, identically.
func TestDrawFillsIndices(t *testing.T) {
	ds, est := rampFixture(t, 5000, 3)
	pts := ds.Points()
	for _, par := range []int{1, 8} {
		s, err := Draw(ds, est, Options{Alpha: 1, TargetSize: 400, Parallelism: par}, stats.NewRNG(7))
		if err != nil {
			t.Fatal(err)
		}
		if s.Indices == nil || len(s.Indices) != len(s.Points) {
			t.Fatalf("par=%d: indices len %d, points len %d", par, len(s.Indices), len(s.Points))
		}
		prev := int64(-1)
		for i, idx := range s.Indices {
			if idx <= prev {
				t.Fatalf("par=%d: indices not strictly increasing at %d: %d after %d", par, i, idx, prev)
			}
			prev = idx
			if !s.Points[i].P.Equal(pts[idx]) {
				t.Fatalf("par=%d: sample point %d does not match dataset row %d", par, i, idx)
			}
		}
	}
}

// TestExtendDrawFillsIndices: the incremental path carries indices too —
// kept prior points keep theirs, delta selections get DeltaStart-offset
// ones, and the concatenation stays strictly increasing. A prior without
// indices propagates nil.
func TestExtendDrawFillsIndices(t *testing.T) {
	fx := newIncrementalFixture(t, 3000, 300, 100, 200, 1.0, 53)
	if fx.prior.Indices == nil {
		t.Fatal("fixture prior has no indices")
	}
	s, _ := fx.extend(t, 1.0, 200, 1, 17)
	if s.Indices == nil || len(s.Indices) != len(s.Points) {
		t.Fatalf("indices len %d, points len %d", len(s.Indices), len(s.Points))
	}
	full, err := dataset.Collect(fx.full)
	if err != nil {
		t.Fatal(err)
	}
	pts := full.Points()
	prev := int64(-1)
	for i, idx := range s.Indices {
		if idx <= prev {
			t.Fatalf("indices not strictly increasing at %d: %d after %d", i, idx, prev)
		}
		prev = idx
		if !s.Points[i].P.Equal(pts[idx]) {
			t.Fatalf("sample point %d does not match dataset row %d", i, idx)
		}
	}

	// Nil propagation: strip the prior's indices and re-extend.
	stripped := *fx.prior
	stripped.Indices = nil
	s2, _, err := ExtendDraw(fx.full, fx.ext, ExtendOptions{
		Options:    Options{Alpha: 1, TargetSize: 200},
		DeltaStart: fx.n,
		Prior:      &stripped,
		PriorNorm:  fx.priorNS,
	}, stats.NewRNG(17))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Indices != nil {
		t.Error("extend over an index-less prior produced indices (provenance unknown)")
	}
}

// TestShrinkDrawExactInverse pins the eviction math against an estimator
// whose NormRescale is exactly 1: k_a' must equal K − D_evict, and that in
// turn must equal the exact normalizer computed from scratch over the
// surviving window (float tolerance only — summation order differs).
func TestShrinkDrawExactInverse(t *testing.T) {
	const n, m, b = 4000, 1200, 300
	ds, est := rampFixture(t, n, 5)
	prior, err := Draw(ds, est, Options{Alpha: 1, TargetSize: b}, stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	priorNS := NormState{K: prior.Norm, N: n, Kernels: len(est.Centers())}

	evicted, err := dataset.Window(ds, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	shrunk, ns, err := ShrinkDraw(evicted, est, ShrinkOptions{
		Options:    Options{Alpha: 1},
		EvictCount: m,
		Prior:      prior,
		PriorNorm:  priorNS,
	})
	if err != nil {
		t.Fatal(err)
	}

	window, err := dataset.Window(ds, m, n)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExactNorm(window, est, 1, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(ns.K-want) / want; rel > 1e-12 {
		t.Errorf("shrunk k_a = %v, exact window norm = %v (rel %v)", ns.K, want, rel)
	}
	if ns.N != n-m {
		t.Errorf("shrunk N = %d, want %d", ns.N, n-m)
	}
	if wantDrift := float64(m) / float64(n-m); math.Abs(ns.Drift-wantDrift) > 1e-15 {
		t.Errorf("shrink drift = %v, want %v", ns.Drift, wantDrift)
	}

	// Survivors: exactly the prior points with index ≥ m, weights
	// unchanged, indices shifted to window coordinates.
	wantSurv := 0
	for _, idx := range prior.Indices {
		if idx >= int64(m) {
			wantSurv++
		}
	}
	if len(shrunk.Points) != wantSurv {
		t.Fatalf("shrunk sample has %d points, want %d survivors", len(shrunk.Points), wantSurv)
	}
	pts := ds.Points()
	j := 0
	for i, idx := range prior.Indices {
		if idx < int64(m) {
			continue
		}
		if !shrunk.Points[j].P.Equal(prior.Points[i].P) || shrunk.Points[j].W != prior.Points[i].W {
			t.Fatalf("survivor %d diverged from prior point %d", j, i)
		}
		if got := shrunk.Indices[j]; got != idx-int64(m) {
			t.Fatalf("survivor %d index = %d, want %d (window-relative)", j, got, idx-int64(m))
		}
		if !shrunk.Points[j].P.Equal(pts[m+int(shrunk.Indices[j])]) {
			t.Fatalf("survivor %d index does not resolve to its dataset row", j)
		}
		j++
	}
	if shrunk.DataPasses != 1 {
		t.Errorf("shrink DataPasses = %d, want 1 (the eviction pass)", shrunk.DataPasses)
	}
}

// TestShrinkDrawDeterministicNoRNG: a shrink consumes no randomness, so
// two shrinks of the same inputs are identical by construction — and a
// shrink between two draws must not perturb any RNG stream (the signature
// takes none; this pins the property stays true end to end).
func TestShrinkDrawDeterministicNoRNG(t *testing.T) {
	const n, m = 2000, 500
	ds, est := rampFixture(t, n, 9)
	prior, err := Draw(ds, est, Options{Alpha: 1, TargetSize: 200}, stats.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	priorNS := NormState{K: prior.Norm, N: n, Kernels: len(est.Centers())}
	evicted, err := dataset.Window(ds, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	opts := ShrinkOptions{Options: Options{Alpha: 1}, EvictCount: m, Prior: prior, PriorNorm: priorNS}
	a, nsA, err := ShrinkDraw(evicted, est, opts)
	if err != nil {
		t.Fatal(err)
	}
	bSmp, nsB, err := ShrinkDraw(evicted, est, opts)
	if err != nil {
		t.Fatal(err)
	}
	if nsA != nsB || len(a.Points) != len(bSmp.Points) {
		t.Fatalf("repeated shrinks diverged: %+v vs %+v", nsA, nsB)
	}
	for i := range a.Points {
		if !a.Points[i].P.Equal(bSmp.Points[i].P) || a.Points[i].W != bSmp.Points[i].W || a.Indices[i] != bSmp.Indices[i] {
			t.Fatalf("point %d diverged between identical shrinks", i)
		}
	}
}

func TestShrinkDrawValidation(t *testing.T) {
	const n, m = 1000, 200
	ds, est := rampFixture(t, n, 13)
	prior, err := Draw(ds, est, Options{Alpha: 1, TargetSize: 100}, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	priorNS := NormState{K: prior.Norm, N: n, Kernels: len(est.Centers())}
	evicted, err := dataset.Window(ds, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	base := ShrinkOptions{Options: Options{Alpha: 1}, EvictCount: m, Prior: prior, PriorNorm: priorNS}

	if _, _, err := ShrinkDraw(evicted, nil, base); err == nil {
		t.Error("nil estimator accepted")
	}
	bad := base
	bad.Prior = nil
	if _, _, err := ShrinkDraw(evicted, est, bad); err == nil {
		t.Error("nil prior accepted")
	}
	bad = base
	stripped := *prior
	stripped.Indices = nil
	bad.Prior = &stripped
	if _, _, err := ShrinkDraw(evicted, est, bad); err == nil {
		t.Error("index-less prior accepted (decoded/shard-merged samples cannot shrink)")
	}
	bad = base
	bad.EvictCount = 0
	if _, _, err := ShrinkDraw(evicted, est, bad); err == nil {
		t.Error("zero EvictCount accepted")
	}
	bad = base
	bad.EvictCount = n
	if _, _, err := ShrinkDraw(evicted, est, bad); err == nil {
		t.Error("full eviction accepted (no window left)")
	}
	bad = base
	bad.EvictCount = m + 1
	if _, _, err := ShrinkDraw(evicted, est, bad); err == nil {
		t.Error("evicted view length mismatch accepted")
	}
	bad = base
	bad.PriorNorm.K = 0
	if _, _, err := ShrinkDraw(evicted, est, bad); err == nil {
		t.Error("degenerate prior norm accepted")
	}
}
