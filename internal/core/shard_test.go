package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// shardCase is one dataset under shard-parity test: a plain in-memory set
// and a frozen generation view taken before an append, which is the shape
// sharded serving actually scans (generation-pinned windows).
type shardCase struct {
	name string
	ds   dataset.Dataset
	est  DensityEstimator
}

func shardCases(t *testing.T) []shardCase {
	t.Helper()
	rng := stats.NewRNG(41)
	base, _ := twoBlobs(1800, 1200, rng)
	baseEst := buildKDE(t, base, 90, rng)

	// Appended-generation view: freeze a window over the first generation,
	// then grow the parent. The view must shard exactly like a plain
	// dataset — old blocks are untouched by the append.
	grown, _ := twoBlobs(1500, 900, stats.NewRNG(42))
	gen1 := grown.Len()
	view, err := dataset.Window(grown, 0, gen1)
	if err != nil {
		t.Fatal(err)
	}
	extra := make([]geom.Point, 700)
	erng := stats.NewRNG(43)
	for i := range extra {
		extra[i] = geom.Point{erng.Float64(), erng.Float64()}
	}
	if err := grown.Append(extra...); err != nil {
		t.Fatal(err)
	}
	viewEst := buildKDE(t, dataset.MustInMemory(grown.Points()[:gen1]), 90, stats.NewRNG(44))

	return []shardCase{
		{"inmemory", base, baseEst},
		{"appended_gen_view", view, viewEst},
	}
}

// partition deals global blocks 0..numBlocks-1 round-robin into shards
// groups. The real coordinator places by consistent hash; parity must hold
// for any partition, so the test uses the simplest adversarial one.
func partition(numBlocks, shards int) [][]int {
	out := make([][]int, shards)
	for b := 0; b < numBlocks; b++ {
		out[b%shards] = append(out[b%shards], b)
	}
	return out
}

// TestNormPartialsMergeExact is the exact-merge property: per-shard
// partial k_a sums, reassembled into global block order and summed
// sequentially, equal ExactNorm to the last bit (0 ULP) at every shard
// count and worker count, including over appended-generation views.
func TestNormPartialsMergeExact(t *testing.T) {
	const blockSize = 256
	for _, tc := range shardCases(t) {
		for _, alpha := range []float64{0, 0.5, 1, -0.5} {
			floor := defaultFloor(tc.est)
			want, err := ExactNormParallel(tc.ds, tc.est, alpha, floor, 0, blockSize)
			if err != nil {
				t.Fatalf("%s alpha=%v: exact norm: %v", tc.name, alpha, err)
			}
			n := tc.ds.Len()
			numBlocks := parallel.NumBlocks(n, blockSize)
			for _, shards := range []int{1, 2, 3, 8} {
				for _, workers := range []int{1, 8} {
					opts := Options{Alpha: alpha, BlockSize: blockSize, Parallelism: workers}
					global := make([]float64, numBlocks)
					for _, blocks := range partition(numBlocks, shards) {
						parts, err := NormPartials(tc.ds, tc.est, opts, blocks)
						if err != nil {
							t.Fatalf("%s: NormPartials: %v", tc.name, err)
						}
						if len(parts) != len(blocks) {
							t.Fatalf("%s: %d partials for %d blocks", tc.name, len(parts), len(blocks))
						}
						for i, b := range blocks {
							global[b] = parts[i]
						}
					}
					var got float64
					for _, p := range global {
						got += p
					}
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Errorf("%s alpha=%v shards=%d workers=%d: merged %x != exact %x",
							tc.name, alpha, shards, workers,
							math.Float64bits(got), math.Float64bits(want))
					}
				}
			}
		}
	}
}

// TestDrawBlocksMatchesDraw is the full sharded-draw parity: DrawBlocks
// run over any partition of the blocks, concatenated in global block
// order, reproduces Draw's points, weights, and saturation count exactly,
// and consumes the same single draw of the parent RNG.
func TestDrawBlocksMatchesDraw(t *testing.T) {
	const (
		blockSize = 256
		seed      = 7001
	)
	for _, tc := range shardCases(t) {
		opts := Options{Alpha: 0.5, TargetSize: 400, BlockSize: blockSize}
		rng := stats.NewRNG(seed)
		want, err := Draw(tc.ds, tc.est, opts, rng)
		if err != nil {
			t.Fatalf("%s: Draw: %v", tc.name, err)
		}

		rng2 := stats.NewRNG(seed)
		floor := defaultFloor(tc.est)
		norm, err := ExactNormParallel(tc.ds, tc.est, opts.Alpha, floor, 0, blockSize)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(norm) != math.Float64bits(want.Norm) {
			t.Fatalf("%s: norm %x != Draw's %x", tc.name, math.Float64bits(norm), math.Float64bits(want.Norm))
		}
		base := DrawStreamBase(rng2)
		if g, w := rng2.Uint64(), rng.Uint64(); g != w {
			t.Fatalf("%s: RNG state diverged after base draw: %x != %x", tc.name, g, w)
		}

		n := tc.ds.Len()
		numBlocks := parallel.NumBlocks(n, blockSize)
		for _, shards := range []int{1, 2, 3, 8} {
			for _, workers := range []int{1, 8} {
				sopts := opts
				sopts.Parallelism = workers
				perBlock := make([]BlockSample, numBlocks)
				totalSat := 0
				for _, blocks := range partition(numBlocks, shards) {
					bs, err := DrawBlocks(tc.ds, tc.est, sopts, norm, base, blocks)
					if err != nil {
						t.Fatalf("%s: DrawBlocks: %v", tc.name, err)
					}
					for i, b := range blocks {
						if bs[i].Block != b {
							t.Fatalf("%s: result %d is for block %d, want %d", tc.name, i, bs[i].Block, b)
						}
						perBlock[b] = bs[i]
						totalSat += bs[i].Saturated
					}
				}
				var got []dataset.WeightedPoint
				for _, bs := range perBlock {
					got = append(got, bs.Points...)
				}
				if len(got) != len(want.Points) {
					t.Fatalf("%s shards=%d workers=%d: %d points, want %d",
						tc.name, shards, workers, len(got), len(want.Points))
				}
				for i := range got {
					if !got[i].P.Equal(want.Points[i].P) {
						t.Fatalf("%s shards=%d workers=%d: point %d = %v, want %v",
							tc.name, shards, workers, i, got[i].P, want.Points[i].P)
					}
					if math.Float64bits(got[i].W) != math.Float64bits(want.Points[i].W) {
						t.Fatalf("%s shards=%d workers=%d: weight %d bits differ", tc.name, shards, workers, i)
					}
				}
				if totalSat != want.Saturated {
					t.Errorf("%s shards=%d workers=%d: saturated %d, want %d",
						tc.name, shards, workers, totalSat, want.Saturated)
				}
			}
		}
	}
}

// TestShardDrawValidation pins the option combinations the sharded path
// refuses: OnePass, Float32, bad norms, out-of-range blocks.
func TestShardDrawValidation(t *testing.T) {
	rng := stats.NewRNG(5)
	ds, _ := twoBlobs(200, 200, rng)
	est := buildKDE(t, ds, 40, rng)
	good := Options{Alpha: 0.5, TargetSize: 50, BlockSize: 128}

	if _, err := NormPartials(ds, est, Options{OnePass: true}, []int{0}); err == nil {
		t.Error("OnePass accepted by NormPartials")
	}
	if _, err := NormPartials(ds, est, Options{Precision: Float32}, []int{0}); err == nil {
		t.Error("Float32 accepted by NormPartials")
	}
	if _, err := NormPartials(ds, est, good, []int{99}); err == nil {
		t.Error("out-of-range block accepted")
	}
	if _, err := DrawBlocks(ds, est, good, 0, 1, []int{0}); err == nil {
		t.Error("zero norm accepted")
	}
	if _, err := DrawBlocks(ds, est, good, math.NaN(), 1, []int{0}); err == nil {
		t.Error("NaN norm accepted")
	}
	if _, err := DrawBlocks(ds, est, Options{Alpha: 0.5, BlockSize: 128}, 1, 1, []int{0}); err == nil {
		t.Error("zero TargetSize accepted")
	}
}
