package core

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/stats"
)

// Attaching a Recorder must not perturb the draw: for a fixed seed the
// sample is byte-identical with observability off (nil Recorder) and on,
// at the serial and the parallel worker counts — the acceptance criterion
// of the observability layer. The estimator recorder is attached too, so
// the kde counting twins are in the loop for the enabled runs.
func TestDrawDeterministicWithRecorder(t *testing.T) {
	setup := stats.NewRNG(100)
	ds, _ := twoBlobs(4000, 4000, setup)
	est := buildKDE(t, ds, 300, setup)

	for _, onePass := range []bool{false, true} {
		for _, workers := range []int{1, 8} {
			opts := Options{Alpha: 1, TargetSize: 800, BlockSize: 512, Parallelism: workers, OnePass: onePass}
			est.SetRecorder(nil)
			ref, err := Draw(ds, est, opts, stats.NewRNG(7))
			if err != nil {
				t.Fatal(err)
			}

			rec := obs.New()
			est.SetRecorder(rec)
			opts.Obs = rec
			opts.VerifyNorm = true // the diagnostic pass must not change the sample either
			got, err := Draw(ds, est, opts, stats.NewRNG(7))
			est.SetRecorder(nil)
			if err != nil {
				t.Fatal(err)
			}
			label := "exact"
			if onePass {
				label = "onepass"
			}
			sameSample(t, ref, got, label)

			// The recorder must actually have seen the run.
			if v := rec.Counter(obs.CtrCoinFlips).Value(); v != int64(ds.Len()) {
				t.Fatalf("%s p=%d: coin_flips_total = %d, want %d", label, workers, v, ds.Len())
			}
			if v := rec.Counter(obs.CtrSampled).Value(); v != int64(len(got.Points)) {
				t.Fatalf("%s p=%d: sample_points_total = %d, want %d", label, workers, v, len(got.Points))
			}
			if rec.Gauge(obs.GaugeSampleNorm).Value() != got.Norm {
				t.Fatalf("%s p=%d: sample_norm gauge %v, want %v", label, workers, rec.Gauge(obs.GaugeSampleNorm).Value(), got.Norm)
			}
		}
	}
}

// VerifyNorm's rel-error gauge must be small on a well-resolved one-pass
// draw and must not add visible data passes to the sample's accounting.
func TestVerifyNormGauge(t *testing.T) {
	setup := stats.NewRNG(42)
	ds, _ := twoBlobs(3000, 3000, setup)
	est := buildKDE(t, ds, 300, setup)

	rec := obs.New()
	opts := Options{Alpha: 1, TargetSize: 500, OnePass: true, VerifyNorm: true, Obs: rec, Parallelism: 1}
	s, err := Draw(ds, est, opts, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if s.DataPasses != 1 {
		t.Fatalf("DataPasses = %d, want 1 (verify pass is diagnostic only)", s.DataPasses)
	}
	relErr := rec.Gauge(obs.GaugeNormRelError).Value()
	if relErr < 0 || relErr > 0.5 {
		t.Fatalf("sample_norm_rel_error = %v, want a small non-negative value", relErr)
	}
}
