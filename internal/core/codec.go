package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// Binary sample artifact format ("DBSS1"), the disk tier's payload for
// cached draws. Unlike the estimator artifact, a sample has no derived
// structure to rebuild: the weighted points, normalizer, pass counters,
// and the incremental-extension NormState are stored verbatim so a
// loaded artifact is byte-for-byte the sample that was drawn (including
// everything ExtendDraw needs to continue from it).
//
// Layout (little-endian):
//
//	offset 0: magic "DBSS1" (5 bytes)
//	then:     uint32 dims, uint32 numPoints,
//	          uint32 dataPasses, uint32 saturated, float64 norm
//	then:     NormState: float64 K, uint64 N, uint32 kernels, float64 drift
//	then:     numPoints × (dims float64 coords, float64 weight)
const sampleMagic = "DBSS1"

const maxSampleElems = 1 << 31

// MarshalSample serializes a draw together with the NormState that
// future incremental extensions need.
func MarshalSample(s *Sample, ns NormState) ([]byte, error) {
	if s == nil || len(s.Points) == 0 {
		return nil, errors.New("core: empty sample")
	}
	dims := s.Points[0].P.Dims()
	size := len(sampleMagic) + 4 + 4 + 4 + 4 + 8 + 8 + 8 + 4 + 8 +
		len(s.Points)*(8*dims+8)
	buf := make([]byte, 0, size)
	buf = append(buf, sampleMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(dims))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Points)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.DataPasses))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Saturated))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.Norm))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(ns.K))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ns.N))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ns.Kernels))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(ns.Drift))
	for i, wp := range s.Points {
		if wp.P.Dims() != dims {
			return nil, fmt.Errorf("core: sample point %d has %d dims, want %d", i, wp.P.Dims(), dims)
		}
		for _, v := range wp.P {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(wp.W))
	}
	return buf, nil
}

// UnmarshalSample reconstructs a (Sample, NormState) pair serialized
// with MarshalSample.
func UnmarshalSample(data []byte) (*Sample, NormState, error) {
	var ns NormState
	r := data
	take := func(n int) ([]byte, error) {
		if len(r) < n {
			return nil, errors.New("core: truncated sample artifact")
		}
		b := r[:n]
		r = r[n:]
		return b, nil
	}
	b, err := take(len(sampleMagic))
	if err != nil {
		return nil, ns, err
	}
	if string(b) != sampleMagic {
		return nil, ns, fmt.Errorf("core: bad artifact magic %q", b)
	}
	if b, err = take(4 + 4 + 4 + 4 + 8 + 8 + 8 + 4 + 8); err != nil {
		return nil, ns, err
	}
	dims := int(binary.LittleEndian.Uint32(b[0:4]))
	numPoints := int(binary.LittleEndian.Uint32(b[4:8]))
	s := &Sample{
		DataPasses: int(binary.LittleEndian.Uint32(b[8:12])),
		Saturated:  int(binary.LittleEndian.Uint32(b[12:16])),
		Norm:       math.Float64frombits(binary.LittleEndian.Uint64(b[16:24])),
	}
	ns.K = math.Float64frombits(binary.LittleEndian.Uint64(b[24:32]))
	nsN := binary.LittleEndian.Uint64(b[32:40])
	ns.Kernels = int(binary.LittleEndian.Uint32(b[40:44]))
	ns.Drift = math.Float64frombits(binary.LittleEndian.Uint64(b[44:52]))
	if dims < 1 || numPoints < 1 || nsN > maxSampleElems ||
		numPoints > maxSampleElems || dims > maxSampleElems/numPoints {
		return nil, ns, fmt.Errorf("core: implausible artifact header (dims %d, points %d)", dims, numPoints)
	}
	ns.N = int(nsN)
	if b, err = take(numPoints * (8*dims + 8)); err != nil {
		return nil, ns, err
	}
	stride := 8 * (dims + 1)
	coords := make([]float64, numPoints*dims)
	s.Points = make([]dataset.WeightedPoint, numPoints)
	for i := range s.Points {
		row := b[i*stride:]
		p := coords[i*dims : (i+1)*dims : (i+1)*dims]
		for j := range p {
			p[j] = math.Float64frombits(binary.LittleEndian.Uint64(row[8*j:]))
		}
		s.Points[i] = dataset.WeightedPoint{
			P: geom.Point(p),
			W: math.Float64frombits(binary.LittleEndian.Uint64(row[8*dims:])),
		}
	}
	if len(r) != 0 {
		return nil, ns, fmt.Errorf("core: %d trailing bytes after sample artifact", len(r))
	}
	return s, ns, nil
}
