// Package kdtree implements a static k-d tree over d-dimensional points
// with nearest-neighbour, k-nearest-neighbour, and ball (range) queries.
//
// The tree is the spatial index behind three subsystems: the exact
// distance-based outlier baseline (counting neighbours within radius k,
// §3.2), the CURE assignment phase (labelling every dataset point with its
// nearest representative), and the evaluation metrics. It is built once
// over a static point set; the mining algorithms never mutate it.
package kdtree

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/geom"
)

// Tree is an immutable k-d tree. The zero value is not usable; construct
// with Build.
type Tree struct {
	pts   []geom.Point
	idx   []int32 // permutation of point indices, partitioned by the nodes
	nodes []node
	dims  int
	// lo/hi hold the per-node bounding boxes (node ni's box spans
	// lo[ni*dims+j] .. hi[ni*dims+j]). They are captured from the same
	// coordinate sweep build uses to pick split dimensions, and let the
	// box queries prune on the points a subtree actually contains rather
	// than on the half-space its split plane carves out.
	lo, hi []float64
}

type node struct {
	// Leaf nodes store start/end into idx; internal nodes additionally
	// store the split dimension/value and children.
	start, end  int32
	split       int32 // -1 for leaf
	splitVal    float64
	left, right int32
}

const leafSize = 16

// Build constructs a tree over pts. The slice is retained (not copied);
// callers must not mutate the points afterwards. Build panics on an empty
// input or inconsistent dimensions.
func Build(pts []geom.Point) *Tree {
	if len(pts) == 0 {
		panic("kdtree: Build on empty point set")
	}
	d := pts[0].Dims()
	idx := make([]int32, len(pts))
	for i := range idx {
		idx[i] = int32(i)
		if pts[i].Dims() != d {
			panic("kdtree: inconsistent dimensions")
		}
	}
	t := &Tree{pts: pts, idx: idx, dims: d}
	t.build(0, int32(len(pts)))
	return t
}

// build recursively partitions idx[start:end) and returns the node index.
func (t *Tree) build(start, end int32) int32 {
	ni := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{start: start, end: end, split: -1})
	// One sweep computes the node's bounding box (kept for every node,
	// leaves included) and the dimension with the largest spread.
	bestDim, bestSpread := 0, -1.0
	for dim := 0; dim < t.dims; dim++ {
		lo, hi := t.pts[t.idx[start]][dim], t.pts[t.idx[start]][dim]
		for _, i := range t.idx[start:end] {
			v := t.pts[i][dim]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		t.lo = append(t.lo, lo)
		t.hi = append(t.hi, hi)
		if s := hi - lo; s > bestSpread {
			bestSpread, bestDim = s, dim
		}
	}
	if end-start <= leafSize {
		return ni
	}
	if bestSpread == 0 {
		// All points identical: keep as a (possibly large) leaf.
		return ni
	}
	// Median split on the chosen dimension.
	sub := t.idx[start:end]
	mid := len(sub) / 2
	sort.Slice(sub, func(a, b int) bool {
		return t.pts[sub[a]][bestDim] < t.pts[sub[b]][bestDim]
	})
	// Move mid forward past duplicates of the median value so the right
	// child strictly exceeds splitVal, guaranteeing both sides non-empty.
	splitVal := t.pts[sub[mid]][bestDim]
	for mid < len(sub)-1 && t.pts[sub[mid]][bestDim] == splitVal {
		mid++
	}
	// Capture the boundary value now: child builds re-sort their subranges
	// by their own split dimensions, invalidating sub's order.
	boundary := t.pts[sub[mid-1]][bestDim]
	left := t.build(start, start+int32(mid))
	right := t.build(start+int32(mid), end)
	n := &t.nodes[ni]
	n.split = int32(bestDim)
	n.splitVal = boundary
	n.left, n.right = left, right
	return ni
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.pts) }

// Dims returns the dimensionality.
func (t *Tree) Dims() int { return t.dims }

// Point returns the indexed point with the given original index.
func (t *Tree) Point(i int) geom.Point { return t.pts[i] }

// Nearest returns the index of the point closest to q (Euclidean) and the
// distance to it. When q coincides with an indexed point, that point wins.
func (t *Tree) Nearest(q geom.Point) (int, float64) {
	best, bestD2 := -1, math.Inf(1)
	t.nearest(0, q, &best, &bestD2)
	return best, sqrt(bestD2)
}

func (t *Tree) nearest(ni int32, q geom.Point, best *int, bestD2 *float64) {
	n := &t.nodes[ni]
	if n.split < 0 {
		for _, i := range t.idx[n.start:n.end] {
			if d2 := geom.SquaredDistance(q, t.pts[i]); d2 < *bestD2 {
				*bestD2, *best = d2, int(i)
			}
		}
		return
	}
	diff := q[n.split] - n.splitVal
	first, second := n.left, n.right
	if diff > 0 {
		first, second = n.right, n.left
	}
	t.nearest(first, q, best, bestD2)
	if diff*diff < *bestD2 {
		t.nearest(second, q, best, bestD2)
	}
}

// Neighbor is one result of a KNN query.
type Neighbor struct {
	Index int
	Dist  float64
}

// maxHeap over squared distances.
type knnHeap []Neighbor

func (h knnHeap) Len() int            { return len(h) }
func (h knnHeap) Less(i, j int) bool  { return h[i].Dist > h[j].Dist }
func (h knnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *knnHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *knnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// KNN returns the k nearest points to q ordered by increasing distance.
// Fewer than k results are returned when the tree is smaller than k.
func (t *Tree) KNN(q geom.Point, k int) []Neighbor {
	if k <= 0 {
		return nil
	}
	h := make(knnHeap, 0, k+1)
	t.knn(0, q, k, &h)
	// Heap holds squared distances, largest first; convert and reverse.
	out := make([]Neighbor, len(h))
	for i := len(out) - 1; i >= 0; i-- {
		nb := heap.Pop(&h).(Neighbor)
		out[i] = Neighbor{Index: nb.Index, Dist: sqrt(nb.Dist)}
	}
	return out
}

func (t *Tree) knn(ni int32, q geom.Point, k int, h *knnHeap) {
	n := &t.nodes[ni]
	if n.split < 0 {
		for _, i := range t.idx[n.start:n.end] {
			d2 := geom.SquaredDistance(q, t.pts[i])
			if len(*h) < k {
				heap.Push(h, Neighbor{Index: int(i), Dist: d2})
			} else if d2 < (*h)[0].Dist {
				(*h)[0] = Neighbor{Index: int(i), Dist: d2}
				heap.Fix(h, 0)
			}
		}
		return
	}
	diff := q[n.split] - n.splitVal
	first, second := n.left, n.right
	if diff > 0 {
		first, second = n.right, n.left
	}
	t.knn(first, q, k, h)
	if len(*h) < k || diff*diff < (*h)[0].Dist {
		t.knn(second, q, k, h)
	}
}

// CountWithin returns |{p : dist(p, q) ≤ r}| over the indexed points.
// With limit > 0 the search aborts once the count exceeds limit and returns
// limit+1; the outlier detector uses this to stop counting neighbours as
// soon as a point is disqualified (more than p neighbours, §3.2).
func (t *Tree) CountWithin(q geom.Point, r float64, limit int) int {
	r2 := r * r
	count := 0
	t.countWithin(0, q, r, r2, limit, &count)
	return count
}

func (t *Tree) countWithin(ni int32, q geom.Point, r, r2 float64, limit int, count *int) {
	if limit > 0 && *count > limit {
		return
	}
	n := &t.nodes[ni]
	if n.split < 0 {
		for _, i := range t.idx[n.start:n.end] {
			if geom.SquaredDistance(q, t.pts[i]) <= r2 {
				*count++
				if limit > 0 && *count > limit {
					return
				}
			}
		}
		return
	}
	diff := q[n.split] - n.splitVal
	first, second := n.left, n.right
	if diff > 0 {
		first, second = n.right, n.left
	}
	t.countWithin(first, q, r, r2, limit, count)
	if diff*diff <= r2 {
		t.countWithin(second, q, r, r2, limit, count)
	}
}

// Within returns the indices of all points at distance ≤ r from q.
func (t *Tree) Within(q geom.Point, r float64) []int {
	var out []int
	r2 := r * r
	t.within(0, q, r2, &out)
	return out
}

// WithinFunc invokes fn for every point at distance ≤ r from q, without
// allocating a result slice — the hot path for density evaluation, which
// runs once per dataset point per pass.
func (t *Tree) WithinFunc(q geom.Point, r float64, fn func(i int)) {
	t.withinFunc(0, q, r*r, fn)
}

func (t *Tree) withinFunc(ni int32, q geom.Point, r2 float64, fn func(i int)) {
	n := &t.nodes[ni]
	if n.split < 0 {
		for _, i := range t.idx[n.start:n.end] {
			if geom.SquaredDistance(q, t.pts[i]) <= r2 {
				fn(int(i))
			}
		}
		return
	}
	diff := q[n.split] - n.splitVal
	first, second := n.left, n.right
	if diff > 0 {
		first, second = n.right, n.left
	}
	t.withinFunc(first, q, r2, fn)
	if diff*diff <= r2 {
		t.withinFunc(second, q, r2, fn)
	}
}

// WithinAppend appends the indices of all points at distance ≤ r from q
// onto buf and returns it, together with the (possibly grown) node stack it
// traversed with. Unlike Within/WithinFunc it is iterative and reuses both
// slices across calls, so a batch of queries performs no per-query
// allocations and no per-result closure calls — the shape DensityBatch
// needs when it evaluates a whole block of points against the kernel
// centers. Visit order differs from Within's recursion; callers reducing
// floating-point contributions must not rely on a particular order being
// shared between the two APIs.
func (t *Tree) WithinAppend(q geom.Point, r float64, buf []int32, stack []int32) ([]int32, []int32) {
	r2 := r * r
	stack = append(stack[:0], 0)
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &t.nodes[ni]
		if n.split < 0 {
			for _, i := range t.idx[n.start:n.end] {
				if geom.SquaredDistance(q, t.pts[i]) <= r2 {
					buf = append(buf, i)
				}
			}
			continue
		}
		diff := q[n.split] - n.splitVal
		near, far := n.left, n.right
		if diff > 0 {
			near, far = n.right, n.left
		}
		if diff*diff <= r2 {
			stack = append(stack, far)
		}
		stack = append(stack, near)
	}
	return buf, stack
}

// AppendBoxLeaves appends the [start, end) index ranges (two int32 per
// leaf) of every leaf whose bounding box intersects the axis-aligned box
// q ± radii. Points inside a reported leaf are NOT filtered — callers
// that need exact membership must test each point — which is exactly
// right for product kernels with compact support: the kernel itself
// vanishes outside the box, so evaluating a whole leaf is both correct
// and branch-free. Pruning tests each subtree's own bounding box (the
// points it actually holds), which is strictly tighter than both the
// circumscribed-ball pruning of WithinAppend and a split-plane test: a
// subtree far from the box along any dimension is skipped whole, and
// every leaf it would have reported contributes an exact zero to a
// compact-kernel sum — so tightening the prune never changes the sum.
// Both slices are reused across calls; pass the previous returns.
// Resolve a reported range to center indices with Indices.
func (t *Tree) AppendBoxLeaves(q geom.Point, radii []float64, leaves, stack []int32) ([]int32, []int32) {
	stack = append(stack[:0], 0)
	d := t.dims
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		bb := int(ni) * d
		outside := false
		for j := 0; j < d; j++ {
			c, r := q[j], radii[j]
			if t.lo[bb+j] > c+r || t.hi[bb+j] < c-r {
				outside = true
				break
			}
		}
		if outside {
			continue
		}
		n := &t.nodes[ni]
		if n.split < 0 {
			leaves = append(leaves, n.start, n.end)
			continue
		}
		near, far := n.left, n.right
		if q[n.split]-n.splitVal > 0 {
			near, far = n.right, n.left
		}
		stack = append(stack, far, near)
	}
	return leaves, stack
}

// BoxLeaves is AppendBoxLeaves with the query box given by its corners
// (qlo[j] = q[j]-radii[j], qhi[j] = q[j]+radii[j]), precomputed once by
// the caller instead of re-derived per node — the shape the batch density
// evaluator wants, where one query box is tested against many node boxes.
// Leaf order is deterministic (depth-first, left child first); it differs
// from AppendBoxLeaves' near-first order, so the two enumerate the same
// leaves but not necessarily in the same sequence.
func (t *Tree) BoxLeaves(qlo, qhi []float64, leaves, stack []int32) ([]int32, []int32) {
	d := t.dims
	if d == 4 {
		// Keep the query corners in registers: the overlap test dominates
		// traversal cost and the specialization drops the inner loop and
		// its per-element bounds checks. Same test, same visit order.
		lo, hi := t.lo, t.hi
		l0, l1, l2, l3 := qlo[0], qlo[1], qlo[2], qlo[3]
		h0, h1, h2, h3 := qhi[0], qhi[1], qhi[2], qhi[3]
		stack = append(stack[:0], 0)
		for len(stack) > 0 {
			ni := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			bb := int(ni) * 4
			b := lo[bb : bb+4 : bb+4]
			c := hi[bb : bb+4 : bb+4]
			if b[0] > h0 || c[0] < l0 || b[1] > h1 || c[1] < l1 ||
				b[2] > h2 || c[2] < l2 || b[3] > h3 || c[3] < l3 {
				continue
			}
			n := &t.nodes[ni]
			if n.split < 0 {
				leaves = append(leaves, n.start, n.end)
				continue
			}
			stack = append(stack, n.right, n.left)
		}
		return leaves, stack
	}
	stack = append(stack[:0], 0)
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		bb := int(ni) * d
		outside := false
		for j := 0; j < d; j++ {
			if t.lo[bb+j] > qhi[j] || t.hi[bb+j] < qlo[j] {
				outside = true
				break
			}
		}
		if outside {
			continue
		}
		n := &t.nodes[ni]
		if n.split < 0 {
			leaves = append(leaves, n.start, n.end)
			continue
		}
		stack = append(stack, n.right, n.left)
	}
	return leaves, stack
}

// BoxLeavesStats is BoxLeaves with traversal accounting into st. Results
// are identical to BoxLeaves.
func (t *Tree) BoxLeavesStats(qlo, qhi []float64, leaves, stack []int32, st *Stats) ([]int32, []int32) {
	d := t.dims
	if d == 4 {
		// Mirror of BoxLeaves' d==4 specialization, with counting: the
		// instrumented path must not lose the register-resident overlap
		// test or the relative overhead of observability balloons.
		lo, hi := t.lo, t.hi
		l0, l1, l2, l3 := qlo[0], qlo[1], qlo[2], qlo[3]
		h0, h1, h2, h3 := qhi[0], qhi[1], qhi[2], qhi[3]
		stack = append(stack[:0], 0)
		for len(stack) > 0 {
			ni := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			st.Visited++
			bb := int(ni) * 4
			b := lo[bb : bb+4 : bb+4]
			c := hi[bb : bb+4 : bb+4]
			if b[0] > h0 || c[0] < l0 || b[1] > h1 || c[1] < l1 ||
				b[2] > h2 || c[2] < l2 || b[3] > h3 || c[3] < l3 {
				st.Pruned++
				continue
			}
			n := &t.nodes[ni]
			if n.split < 0 {
				leaves = append(leaves, n.start, n.end)
				continue
			}
			stack = append(stack, n.right, n.left)
		}
		return leaves, stack
	}
	stack = append(stack[:0], 0)
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st.Visited++
		bb := int(ni) * d
		outside := false
		for j := 0; j < d; j++ {
			if t.lo[bb+j] > qhi[j] || t.hi[bb+j] < qlo[j] {
				outside = true
				break
			}
		}
		if outside {
			st.Pruned++
			continue
		}
		n := &t.nodes[ni]
		if n.split < 0 {
			leaves = append(leaves, n.start, n.end)
			continue
		}
		stack = append(stack, n.right, n.left)
	}
	return leaves, stack
}

// Indices returns the point indices of a leaf range reported by
// AppendBoxLeaves. The slice aliases internal storage; callers must not
// mutate it.
func (t *Tree) Indices(start, end int32) []int32 { return t.idx[start:end] }

// Stats accumulates traversal work counts for the observability layer:
// Visited is the number of tree nodes examined, Pruned the number of far
// subtrees the prune test skipped entirely. The counting variants below
// duplicate their plain counterparts instead of branching inside them, so
// the un-instrumented hot paths stay byte-identical to before.
type Stats struct {
	Visited int64
	Pruned  int64
}

// AppendBoxLeavesStats is AppendBoxLeaves with traversal accounting into
// st. Results are identical to AppendBoxLeaves.
func (t *Tree) AppendBoxLeavesStats(q geom.Point, radii []float64, leaves, stack []int32, st *Stats) ([]int32, []int32) {
	stack = append(stack[:0], 0)
	d := t.dims
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st.Visited++
		bb := int(ni) * d
		outside := false
		for j := 0; j < d; j++ {
			c, r := q[j], radii[j]
			if t.lo[bb+j] > c+r || t.hi[bb+j] < c-r {
				outside = true
				break
			}
		}
		if outside {
			st.Pruned++
			continue
		}
		n := &t.nodes[ni]
		if n.split < 0 {
			leaves = append(leaves, n.start, n.end)
			continue
		}
		near, far := n.left, n.right
		if q[n.split]-n.splitVal > 0 {
			near, far = n.right, n.left
		}
		stack = append(stack, far, near)
	}
	return leaves, stack
}

// WithinAppendStats is WithinAppend with traversal accounting into st.
// Results are identical to WithinAppend.
func (t *Tree) WithinAppendStats(q geom.Point, r float64, buf []int32, stack []int32, st *Stats) ([]int32, []int32) {
	r2 := r * r
	stack = append(stack[:0], 0)
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st.Visited++
		n := &t.nodes[ni]
		if n.split < 0 {
			for _, i := range t.idx[n.start:n.end] {
				if geom.SquaredDistance(q, t.pts[i]) <= r2 {
					buf = append(buf, i)
				}
			}
			continue
		}
		diff := q[n.split] - n.splitVal
		near, far := n.left, n.right
		if diff > 0 {
			near, far = n.right, n.left
		}
		if diff*diff <= r2 {
			stack = append(stack, far)
		} else {
			st.Pruned++
		}
		stack = append(stack, near)
	}
	return buf, stack
}

func (t *Tree) within(ni int32, q geom.Point, r2 float64, out *[]int) {
	n := &t.nodes[ni]
	if n.split < 0 {
		for _, i := range t.idx[n.start:n.end] {
			if geom.SquaredDistance(q, t.pts[i]) <= r2 {
				*out = append(*out, int(i))
			}
		}
		return
	}
	diff := q[n.split] - n.splitVal
	first, second := n.left, n.right
	if diff > 0 {
		first, second = n.right, n.left
	}
	t.within(first, q, r2, out)
	if diff*diff <= r2 {
		t.within(second, q, r2, out)
	}
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
