package kdtree

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/stats"
)

func randomPoints(n, d int, seed uint64) []geom.Point {
	rng := stats.NewRNG(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

// brute-force helpers used as oracles
func bruteNearest(pts []geom.Point, q geom.Point) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for i, p := range pts {
		if d := geom.Distance(q, p); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

func bruteWithin(pts []geom.Point, q geom.Point, r float64) []int {
	var out []int
	for i, p := range pts {
		if geom.Distance(q, p) <= r {
			out = append(out, i)
		}
	}
	return out
}

func TestBuildPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(nil)
}

func TestNearestMatchesBrute(t *testing.T) {
	pts := randomPoints(500, 3, 1)
	tr := Build(pts)
	rng := stats.NewRNG(2)
	for trial := 0; trial < 200; trial++ {
		q := geom.Point{rng.Float64(), rng.Float64(), rng.Float64()}
		gi, gd := tr.Nearest(q)
		_, wd := bruteNearest(pts, q)
		if math.Abs(gd-wd) > 1e-12 {
			t.Fatalf("trial %d: dist %v, brute %v (idx %d)", trial, gd, wd, gi)
		}
	}
}

func TestNearestExactHit(t *testing.T) {
	pts := randomPoints(100, 2, 3)
	tr := Build(pts)
	for i, p := range pts {
		gi, gd := tr.Nearest(p)
		if gd != 0 {
			t.Fatalf("point %d: self distance %v", i, gd)
		}
		if !pts[gi].Equal(p) {
			t.Fatalf("point %d: wrong hit", i)
		}
	}
}

func TestKNNMatchesBrute(t *testing.T) {
	pts := randomPoints(300, 2, 5)
	tr := Build(pts)
	rng := stats.NewRNG(6)
	for trial := 0; trial < 100; trial++ {
		q := geom.Point{rng.Float64(), rng.Float64()}
		k := 1 + rng.Intn(20)
		got := tr.KNN(q, k)
		if len(got) != k {
			t.Fatalf("KNN returned %d, want %d", len(got), k)
		}
		// distances must be sorted ascending
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Fatal("KNN distances not sorted")
			}
		}
		// compare against brute-force k-th distance
		all := make([]float64, len(pts))
		for i, p := range pts {
			all[i] = geom.Distance(q, p)
		}
		sort.Float64s(all)
		if math.Abs(got[k-1].Dist-all[k-1]) > 1e-12 {
			t.Fatalf("k-th distance %v, brute %v", got[k-1].Dist, all[k-1])
		}
	}
}

func TestKNNMoreThanTree(t *testing.T) {
	pts := randomPoints(5, 2, 7)
	tr := Build(pts)
	got := tr.KNN(geom.Point{0.5, 0.5}, 10)
	if len(got) != 5 {
		t.Errorf("KNN = %d results, want all 5", len(got))
	}
	if tr.KNN(geom.Point{0, 0}, 0) != nil {
		t.Error("KNN(k=0) should be nil")
	}
}

func TestWithinMatchesBrute(t *testing.T) {
	pts := randomPoints(400, 3, 8)
	tr := Build(pts)
	rng := stats.NewRNG(9)
	for trial := 0; trial < 100; trial++ {
		q := geom.Point{rng.Float64(), rng.Float64(), rng.Float64()}
		r := rng.Float64() * 0.5
		got := tr.Within(q, r)
		want := bruteWithin(pts, q, r)
		sort.Ints(got)
		if len(got) != len(want) {
			t.Fatalf("Within: %d vs brute %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Within sets differ")
			}
		}
	}
}

func TestWithinAppendMatchesBrute(t *testing.T) {
	pts := randomPoints(400, 3, 8)
	tr := Build(pts)
	rng := stats.NewRNG(9)
	var buf, stack []int32
	for trial := 0; trial < 100; trial++ {
		q := geom.Point{rng.Float64(), rng.Float64(), rng.Float64()}
		r := rng.Float64() * 0.5
		buf, stack = tr.WithinAppend(q, r, buf[:0], stack)
		want := bruteWithin(pts, q, r)
		got := make([]int, len(buf))
		for i, v := range buf {
			got[i] = int(v)
		}
		sort.Ints(got)
		if len(got) != len(want) {
			t.Fatalf("WithinAppend: %d vs brute %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("WithinAppend sets differ")
			}
		}
	}
}

func TestCountWithin(t *testing.T) {
	pts := randomPoints(400, 2, 10)
	tr := Build(pts)
	rng := stats.NewRNG(11)
	for trial := 0; trial < 100; trial++ {
		q := geom.Point{rng.Float64(), rng.Float64()}
		r := rng.Float64() * 0.3
		got := tr.CountWithin(q, r, 0)
		want := len(bruteWithin(pts, q, r))
		if got != want {
			t.Fatalf("CountWithin = %d, brute %d", got, want)
		}
	}
}

func TestCountWithinLimit(t *testing.T) {
	// 100 identical points: any positive radius finds them all, but with
	// limit=5 the count must stop at 6.
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = geom.Point{0.5, 0.5}
	}
	tr := Build(pts)
	if got := tr.CountWithin(geom.Point{0.5, 0.5}, 0.1, 5); got != 6 {
		t.Errorf("limited count = %d, want 6", got)
	}
}

func TestDuplicatePoints(t *testing.T) {
	// Tree must handle many duplicates (zero-spread leaves).
	pts := make([]geom.Point, 0, 60)
	for i := 0; i < 50; i++ {
		pts = append(pts, geom.Point{1, 1})
	}
	for i := 0; i < 10; i++ {
		pts = append(pts, geom.Point{float64(i), 2})
	}
	tr := Build(pts)
	if got := tr.CountWithin(geom.Point{1, 1}, 0.5, 0); got != 50 {
		t.Errorf("duplicates counted %d, want 50", got)
	}
	_, d := tr.Nearest(geom.Point{1, 1.4})
	if math.Abs(d-0.4) > 1e-12 {
		t.Errorf("nearest dist %v", d)
	}
}

func TestTreeAccessors(t *testing.T) {
	pts := randomPoints(50, 4, 12)
	tr := Build(pts)
	if tr.Len() != 50 || tr.Dims() != 4 {
		t.Errorf("Len/Dims = %d/%d", tr.Len(), tr.Dims())
	}
	if !tr.Point(7).Equal(pts[7]) {
		t.Error("Point accessor broken")
	}
}

func TestHighDimensional(t *testing.T) {
	pts := randomPoints(200, 10, 13)
	tr := Build(pts)
	q := pts[42]
	gi, gd := tr.Nearest(q)
	if gd != 0 || !pts[gi].Equal(q) {
		t.Error("10-d nearest self query failed")
	}
}

// Property: for random point sets and queries, tree NN distance equals
// brute-force NN distance.
func TestPropNearestIsExact(t *testing.T) {
	rng := stats.NewRNG(14)
	f := func(seed uint16, qx, qy float64) bool {
		n := 20 + int(seed%200)
		pts := randomPoints(n, 2, uint64(seed)+100)
		tr := Build(pts)
		q := geom.Point{math.Mod(math.Abs(qx), 2), math.Mod(math.Abs(qy), 2)}
		if math.IsNaN(q[0]) || math.IsNaN(q[1]) {
			return true
		}
		_, gd := tr.Nearest(q)
		_, wd := bruteNearest(pts, q)
		return math.Abs(gd-wd) <= 1e-12
	}
	cfg := &quick.Config{MaxCount: 50, Rand: nil}
	_ = rng
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
