// Package histogram implements a multi-dimensional equi-width histogram
// density estimator — one of the alternative density summaries §2.1 lists
// ("computing multi-dimensional histograms [23][6][16][2]"). It satisfies
// the same estimator contract as the kernel estimator, so it can be
// plugged into internal/core's sampler directly; the ablation-estimator
// experiment compares the two (kernels win on accuracy, as the paper's
// §2.1 argument predicts, but the histogram remains a valid choice because
// the sampler is decoupled from the estimator).
package histogram

import (
	"errors"
	"math"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// Options configure histogram construction.
type Options struct {
	// BinsPerDim is the number of equal-width bins along each dimension
	// (default 32).
	BinsPerDim int
}

// Histogram is a dense equi-width multi-dimensional histogram over a known
// domain, scaled so the integral of Density over the domain is the dataset
// size.
type Histogram struct {
	domain geom.Rect
	bins   int
	d      int
	counts []int32
	volume float64 // volume of one cell
	n      int
}

// Build scans ds once and returns the histogram over the given domain.
// Points outside the domain clamp into the boundary bins. Total storage is
// BinsPerDim^d counters, so the dense layout suits low dimensionality
// (d ≤ 6 or so); higher dimensions should use kernels or the hash grid.
func Build(ds dataset.Dataset, domain geom.Rect, opts Options) (*Histogram, error) {
	if ds.Len() == 0 {
		return nil, errors.New("histogram: empty dataset")
	}
	bins := opts.BinsPerDim
	if bins == 0 {
		bins = 32
	}
	if bins < 1 {
		return nil, errors.New("histogram: BinsPerDim must be positive")
	}
	d := ds.Dims()
	if domain.Dims() != d {
		return nil, errors.New("histogram: domain dimensionality mismatch")
	}
	cells := 1
	for j := 0; j < d; j++ {
		if cells > 1<<28/bins {
			return nil, errors.New("histogram: bins^dims too large; use fewer bins or the kde/gridsample estimators")
		}
		cells *= bins
	}
	h := &Histogram{
		domain: domain.Clone(),
		bins:   bins,
		d:      d,
		counts: make([]int32, cells),
	}
	h.volume = domain.Volume() / float64(cells)
	if h.volume <= 0 {
		return nil, errors.New("histogram: degenerate domain")
	}
	err := ds.Scan(func(p geom.Point) error {
		h.counts[h.index(p)]++
		h.n++
		return nil
	})
	if err != nil {
		return nil, err
	}
	return h, nil
}

// index maps a point to its flat bin index, clamping out-of-domain
// coordinates.
func (h *Histogram) index(p geom.Point) int {
	idx := 0
	for j := 0; j < h.d; j++ {
		side := h.domain.Side(j)
		var c int
		if side > 0 {
			c = int(float64(h.bins) * (p[j] - h.domain.Min[j]) / side)
		}
		if c < 0 {
			c = 0
		}
		if c >= h.bins {
			c = h.bins - 1
		}
		idx = idx*h.bins + c
	}
	return idx
}

// Density returns the histogram density at p: bin count divided by bin
// volume. The integral over the domain equals the number of points seen.
func (h *Histogram) Density(p geom.Point) float64 {
	if p.Dims() != h.d {
		panic("histogram: query dimension mismatch")
	}
	return float64(h.counts[h.index(p)]) / h.volume
}

// Count returns the raw occupancy of p's bin.
func (h *Histogram) Count(p geom.Point) int {
	return int(h.counts[h.index(p)])
}

// N returns the number of points the histogram summarizes.
func (h *Histogram) N() int { return h.n }

// Bins returns the per-dimension bin count.
func (h *Histogram) Bins() int { return h.bins }

// MaxDensity returns the largest bin density — useful for diagnostics and
// for sizing density floors.
func (h *Histogram) MaxDensity() float64 {
	var max int32
	for _, c := range h.counts {
		if c > max {
			max = c
		}
	}
	return float64(max) / h.volume
}

// MeanAbsError estimates the average absolute difference between this
// histogram's density and another estimator's over a regular probe grid —
// the accuracy comparison tool behind the estimator ablation.
func (h *Histogram) MeanAbsError(other interface {
	Density(geom.Point) float64
}, probesPerDim int) float64 {
	if probesPerDim < 1 {
		probesPerDim = 8
	}
	p := make(geom.Point, h.d)
	var sum float64
	var count int
	var walk func(j int)
	walk = func(j int) {
		if j == h.d {
			sum += math.Abs(h.Density(p) - other.Density(p))
			count++
			return
		}
		for i := 0; i < probesPerDim; i++ {
			p[j] = h.domain.Min[j] + (float64(i)+0.5)/float64(probesPerDim)*h.domain.Side(j)
			walk(j + 1)
		}
	}
	walk(0)
	return sum / float64(count)
}
