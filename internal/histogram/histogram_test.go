package histogram

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/stats"
)

func uniformPoints(n, d int, rng *stats.RNG) *dataset.InMemory {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return dataset.MustInMemory(pts)
}

func TestBuildValidation(t *testing.T) {
	rng := stats.NewRNG(1)
	ds := uniformPoints(100, 2, rng)
	if _, err := Build(ds, geom.UnitCube(3), Options{}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := Build(ds, geom.UnitCube(2), Options{BinsPerDim: -1}); err == nil {
		t.Error("negative bins accepted")
	}
	// bins^d explosion must be rejected, not allocated
	ds10 := uniformPoints(100, 10, rng)
	if _, err := Build(ds10, geom.UnitCube(10), Options{BinsPerDim: 64}); err == nil {
		t.Error("64^10 cells accepted")
	}
}

func TestOnePass(t *testing.T) {
	rng := stats.NewRNG(2)
	ds := uniformPoints(5000, 2, rng)
	if _, err := Build(ds, geom.UnitCube(2), Options{}); err != nil {
		t.Fatal(err)
	}
	if ds.Passes() != 1 {
		t.Errorf("passes = %d", ds.Passes())
	}
}

func TestUniformDensity(t *testing.T) {
	rng := stats.NewRNG(3)
	const n = 50000
	ds := uniformPoints(n, 2, rng)
	h, err := Build(ds, geom.UnitCube(2), Options{BinsPerDim: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Uniform data on the unit square: density ≈ n everywhere.
	for _, q := range []geom.Point{{0.1, 0.1}, {0.5, 0.5}, {0.9, 0.2}} {
		got := h.Density(q)
		if math.Abs(got-n) > 0.15*n {
			t.Errorf("density at %v = %v, want ~%v", q, got, float64(n))
		}
	}
	if h.N() != n {
		t.Errorf("N = %d", h.N())
	}
}

func TestDensityIntegratesToN(t *testing.T) {
	rng := stats.NewRNG(4)
	const n = 20000
	// Clustered data.
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{0.3 + 0.1*rng.Float64(), 0.6 + 0.2*rng.Float64()}
	}
	ds := dataset.MustInMemory(pts)
	h, err := Build(ds, geom.UnitCube(2), Options{BinsPerDim: 20})
	if err != nil {
		t.Fatal(err)
	}
	// Sum of count/volume × volume over all cells = n exactly.
	var integral float64
	for _, c := range h.counts {
		integral += float64(c)
	}
	if int(integral) != n {
		t.Errorf("total mass = %v", integral)
	}
	// Density contrast: inside the blob ≫ outside.
	if h.Density(geom.Point{0.35, 0.7}) <= h.Density(geom.Point{0.9, 0.1})+1 {
		t.Error("no density contrast")
	}
}

func TestClamping(t *testing.T) {
	rng := stats.NewRNG(5)
	ds := uniformPoints(100, 2, rng)
	h, err := Build(ds, geom.UnitCube(2), Options{BinsPerDim: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-domain queries clamp, not panic.
	_ = h.Density(geom.Point{-1, 2})
	_ = h.Count(geom.Point{5, 5})
}

func TestMaxDensity(t *testing.T) {
	pts := []geom.Point{{0.1, 0.1}, {0.1, 0.1}, {0.9, 0.9}}
	ds := dataset.MustInMemory(pts)
	h, err := Build(ds, geom.UnitCube(2), Options{BinsPerDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 / 0.25 // two points in one quarter-cell
	if got := h.MaxDensity(); math.Abs(got-want) > 1e-12 {
		t.Errorf("MaxDensity = %v, want %v", got, want)
	}
}

func TestMeanAbsErrorSelfIsZero(t *testing.T) {
	rng := stats.NewRNG(6)
	ds := uniformPoints(1000, 2, rng)
	h, err := Build(ds, geom.UnitCube(2), Options{BinsPerDim: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := h.MeanAbsError(h, 8); got != 0 {
		t.Errorf("self error = %v", got)
	}
}

func TestAsCoreEstimator(t *testing.T) {
	// Histogram must be usable as a density source: sanity-check the
	// ordering a biased sampler depends on.
	rng := stats.NewRNG(7)
	var pts []geom.Point
	for i := 0; i < 9000; i++ {
		pts = append(pts, geom.Point{0.2 + 0.1*rng.Float64(), 0.2 + 0.1*rng.Float64()})
	}
	for i := 0; i < 1000; i++ {
		pts = append(pts, geom.Point{rng.Float64(), rng.Float64()})
	}
	ds := dataset.MustInMemory(pts)
	h, err := Build(ds, geom.UnitCube(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	dense := h.Density(geom.Point{0.25, 0.25})
	sparse := h.Density(geom.Point{0.8, 0.8})
	if dense < 10*sparse {
		t.Errorf("contrast too weak: %v vs %v", dense, sparse)
	}
}
