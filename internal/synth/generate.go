package synth

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/stats"
)

// Cluster couples a ground-truth shape with its point count.
type Cluster struct {
	Shape Shape
	Size  int
}

// Labeled is a generated dataset with ground truth attached. Labels[i] is
// the index of the cluster that generated point i, -1 for noise, and -2
// for planted outliers (see PlantOutliers).
type Labeled struct {
	Points   []geom.Point
	Labels   []int
	Clusters []Cluster
	Domain   geom.Rect
}

// Noise label values.
const (
	LabelNoise   = -1
	LabelOutlier = -2
)

// Dataset wraps the points as an in-memory dataset.
func (l *Labeled) Dataset() *dataset.InMemory {
	return dataset.MustInMemory(l.Points)
}

// NumNoise returns how many noise points the dataset contains.
func (l *Labeled) NumNoise() int {
	n := 0
	for _, lb := range l.Labels {
		if lb == LabelNoise {
			n++
		}
	}
	return n
}

// OutlierIndices returns the indices of planted outliers.
func (l *Labeled) OutlierIndices() []int {
	var out []int
	for i, lb := range l.Labels {
		if lb == LabelOutlier {
			out = append(out, i)
		}
	}
	return out
}

// Generate materializes the clusters plus noiseFrac·(Σ sizes) uniform noise
// points over the domain, in randomized global order. This matches §4.1:
// "we add l·|D| uniformly distributed points in D as noise and we say that
// D contains fn = l noise".
func Generate(clusters []Cluster, domain geom.Rect, noiseFrac float64, rng *stats.RNG) *Labeled {
	if noiseFrac < 0 {
		panic("synth: negative noise fraction")
	}
	total := 0
	for _, c := range clusters {
		total += c.Size
	}
	noise := int(noiseFrac * float64(total))
	pts := make([]geom.Point, 0, total+noise)
	labels := make([]int, 0, total+noise)
	for ci, c := range clusters {
		for i := 0; i < c.Size; i++ {
			pts = append(pts, c.Shape.Sample(rng))
			labels = append(labels, ci)
		}
	}
	noiseShape := Box{R: domain}
	for i := 0; i < noise; i++ {
		pts = append(pts, noiseShape.Sample(rng))
		labels = append(labels, LabelNoise)
	}
	// Shuffle so sequential scans and samplers see no generation order.
	rng.Shuffle(len(pts), func(i, j int) {
		pts[i], pts[j] = pts[j], pts[i]
		labels[i], labels[j] = labels[j], labels[i]
	})
	return &Labeled{Points: pts, Labels: labels, Clusters: clusters, Domain: domain.Clone()}
}

// PlaceBoxes places k non-overlapping boxes with the given side lengths
// uniformly in the domain (with a margin), by rejection. It panics when a
// placement cannot be found, which indicates an over-packed request.
func PlaceBoxes(k int, sides []float64, domain geom.Rect, rng *stats.RNG) []geom.Rect {
	if len(sides) != k {
		panic("synth: sides length must equal k")
	}
	d := domain.Dims()
	placed := make([]geom.Rect, 0, k)
	for ci := 0; ci < k; ci++ {
		side := sides[ci]
		ok := false
		for attempt := 0; attempt < 10000; attempt++ {
			min := make(geom.Point, d)
			max := make(geom.Point, d)
			valid := true
			for j := 0; j < d; j++ {
				span := domain.Side(j) - side
				if span <= 0 {
					valid = false
					break
				}
				min[j] = domain.Min[j] + rng.Float64()*span
				max[j] = min[j] + side
			}
			if !valid {
				break
			}
			cand := geom.Rect{Min: min, Max: max}
			clash := false
			for _, r := range placed {
				if cand.Intersects(r) {
					clash = true
					break
				}
			}
			if !clash {
				placed = append(placed, cand)
				ok = true
				break
			}
		}
		if !ok {
			panic(fmt.Sprintf("synth: cannot place box %d (side %g) without overlap", ci, side))
		}
	}
	return placed
}

// EqualClusters builds k same-size, same-density box clusters in the unit
// cube of dimension d, totalling approximately total points, plus the given
// noise fraction. Used by Fig. 4's "10 clusters of different densities"
// baseline shape and the kernel-count sweeps.
func EqualClusters(k, d, total int, noiseFrac float64, rng *stats.RNG) *Labeled {
	size := total / k
	sides := make([]float64, k)
	for i := range sides {
		sides[i] = 0.12
	}
	domain := geom.UnitCube(d)
	boxes := PlaceBoxes(k, sides, domain, rng)
	clusters := make([]Cluster, k)
	for i, b := range boxes {
		clusters[i] = Cluster{Shape: Box{R: b}, Size: size}
	}
	return Generate(clusters, domain, noiseFrac, rng)
}

// VariedClusters builds k box clusters whose densities span the given
// ratio (densest / sparsest ≈ ratio) with sizes spanning sizeRatio, in the
// unit cube of dimension d, totalling approximately total points. This is
// the Fig. 4 workload ("10 clusters of different densities") when ratio is
// moderate, and the Fig. 5 workload ("the density of the clusters varies
// by a factor of 10", with some clusters both small and sparse) when
// ratio = 10.
func VariedClusters(k, d, total int, ratio, sizeRatio, noiseFrac float64, rng *stats.RNG) *Labeled {
	return VariedClustersSide(k, d, total, ratio, sizeRatio, noiseFrac, 0.2, rng)
}

// VariedClustersSide is VariedClusters with an explicit side length for
// the largest (densest) cluster's box. Smaller sides give denser clusters
// relative to any added noise — the §4.1 noise experiments use compact
// clusters whose interior density dwarfs the uniform background.
func VariedClustersSide(k, d, total int, ratio, sizeRatio, noiseFrac, baseSide float64, rng *stats.RNG) *Labeled {
	if k < 2 {
		panic("synth: VariedClusters needs k >= 2")
	}
	// Geometric interpolation of sizes between s_max and s_max/sizeRatio.
	rawSizes := make([]float64, k)
	var sum float64
	for i := range rawSizes {
		frac := float64(i) / float64(k-1)
		rawSizes[i] = math.Pow(sizeRatio, -frac)
		sum += rawSizes[i]
	}
	sizes := make([]int, k)
	for i := range sizes {
		sizes[i] = int(float64(total) * rawSizes[i] / sum)
		if sizes[i] < 10 {
			sizes[i] = 10
		}
	}
	// Densities geometrically spanning `ratio`, densest first: large
	// clusters are dense, small clusters sparse — the Fig. 5 regime where
	// a < 0 rescues the small sparse clusters. Sizes must shrink faster
	// than densities (sizeRatio > ratio) or all boxes would share one
	// side length and could not be packed without overlap.
	sides := make([]float64, k)
	baseDensity := float64(sizes[0]) / math.Pow(baseSide, float64(d))
	for i := range sides {
		frac := float64(i) / float64(k-1)
		density := baseDensity * math.Pow(ratio, -frac)
		sides[i] = sideForDensity(sizes[i], density, d)
	}
	domain := geom.UnitCube(d)
	boxes := PlaceBoxes(k, sides, domain, rng)
	clusters := make([]Cluster, k)
	for i, b := range boxes {
		clusters[i] = Cluster{Shape: Box{R: b}, Size: sizes[i]}
	}
	return Generate(clusters, domain, noiseFrac, rng)
}
