package synth

import (
	"repro/internal/geom"
	"repro/internal/stats"
)

// DS1 is a lookalike of "dataset1" from the CURE paper used in Fig. 3: five
// 2-D clusters of contrasting shape, size and density — one large disc, two
// elongated parallel ellipses, and two small dense discs — plus noiseFrac
// uniform background noise, totalling about total·(1+noiseFrac) points.
// The large cluster has the most points but moderate density; the small
// discs are dense; the ellipses are elongated. With substantial noise,
// ~1000-point uniform samples fail to separate all five clusters while
// dense-biased samples of the same size succeed (Fig. 3's contrast).
func DS1(total int, noiseFrac float64, rng *stats.RNG) *Labeled {
	clusters := []Cluster{
		{Shape: Ball{Center: geom.Point{0.30, 0.35}, Radius: 0.22}, Size: total * 52 / 100},
		{Shape: Ellipsoid{Center: geom.Point{0.62, 0.81}, Radii: geom.Point{0.23, 0.04}}, Size: total * 19 / 100},
		{Shape: Ellipsoid{Center: geom.Point{0.62, 0.58}, Radii: geom.Point{0.23, 0.04}}, Size: total * 19 / 100},
		{Shape: Ball{Center: geom.Point{0.82, 0.28}, Radius: 0.030}, Size: total * 4 / 100},
		{Shape: Ball{Center: geom.Point{0.93, 0.15}, Radius: 0.04}, Size: total * 6 / 100},
	}
	return Generate(clusters, geom.UnitCube(2), noiseFrac, rng)
}

// DS2 is the Fig. 7 second workload: ten 2-D clusters with very different
// sizes (20:1 spread) and densities, plus 20 % noise.
func DS2(total int, rng *stats.RNG) *Labeled {
	l := VariedClusters(10, 2, total, 10, 20, 0.20, rng)
	return l
}

// NorthEast is the substitute for the paper's NorthEast postal-address
// dataset (130 000 2-D points): three dense Gaussian metropolitan areas
// with population weights resembling New York, Philadelphia and Boston,
// over a widely distributed rural background of small towns plus uniform
// scatter. The paper's finding — biased sampling (a=1) isolates the three
// metro clusters while uniform sampling drowns them in rural "noise" —
// depends only on this density structure. See DESIGN.md §3.
func NorthEast(rng *stats.RNG) *Labeled {
	const total = 130000
	metros := []Cluster{
		// New York — largest
		{Shape: GaussianShape{Center: geom.Point{0.44, 0.40}, Sigma: 0.022}, Size: total * 22 / 100},
		// Philadelphia
		{Shape: GaussianShape{Center: geom.Point{0.33, 0.30}, Sigma: 0.018}, Size: total * 9 / 100},
		// Boston
		{Shape: GaussianShape{Center: geom.Point{0.66, 0.62}, Sigma: 0.018}, Size: total * 9 / 100},
	}
	clusters := metros
	// Rural background: many small towns (tiny gaussians) spread over the
	// region. They are ground-truth "noise" for the metro-detection task,
	// so they are generated as unlabeled points below via a composite pass.
	townPts := make([]geom.Point, 0, total*45/100)
	nTowns := 600
	townSize := (total * 45 / 100) / nTowns
	for t := 0; t < nTowns; t++ {
		c := geom.Point{rng.Float64(), rng.Float64()}
		g := GaussianShape{Center: c, Sigma: 0.004}
		for i := 0; i < townSize; i++ {
			townPts = append(townPts, g.Sample(rng))
		}
	}
	l := Generate(clusters, geom.UnitCube(2), 0, rng)
	// Append towns and uniform scatter as noise-labelled points.
	uniformScatter := total - len(l.Points) - len(townPts)
	box := Box{R: geom.UnitCube(2)}
	for _, p := range townPts {
		l.Points = append(l.Points, p)
		l.Labels = append(l.Labels, LabelNoise)
	}
	for i := 0; i < uniformScatter; i++ {
		l.Points = append(l.Points, box.Sample(rng))
		l.Labels = append(l.Labels, LabelNoise)
	}
	rng.Shuffle(len(l.Points), func(i, j int) {
		l.Points[i], l.Points[j] = l.Points[j], l.Points[i]
		l.Labels[i], l.Labels[j] = l.Labels[j], l.Labels[i]
	})
	return l
}

// California is the substitute for the paper's California postal-address
// dataset (62 553 2-D points): an elongated coastal ribbon of metro
// clusters (LA, SF bay, SD) plus a central-valley ribbon and sparse desert
// scatter.
func California(rng *stats.RNG) *Labeled {
	const total = 62553
	clusters := []Cluster{
		// Los Angeles basin — elongated, largest
		{Shape: Ellipsoid{Center: geom.Point{0.62, 0.25}, Radii: geom.Point{0.10, 0.045}}, Size: total * 26 / 100},
		// SF bay area — two lobes approximated as one ellipse
		{Shape: Ellipsoid{Center: geom.Point{0.26, 0.60}, Radii: geom.Point{0.05, 0.08}}, Size: total * 16 / 100},
		// San Diego
		{Shape: GaussianShape{Center: geom.Point{0.72, 0.12}, Sigma: 0.02}, Size: total * 8 / 100},
		// Central valley ribbon — long, moderate density
		{Shape: Ellipsoid{Center: geom.Point{0.45, 0.48}, Radii: geom.Point{0.06, 0.26}}, Size: total * 18 / 100},
	}
	l := Generate(clusters, geom.UnitCube(2), 0, rng)
	// Desert/rural scatter.
	scatter := total - len(l.Points)
	box := Box{R: geom.UnitCube(2)}
	for i := 0; i < scatter; i++ {
		l.Points = append(l.Points, box.Sample(rng))
		l.Labels = append(l.Labels, LabelNoise)
	}
	rng.Shuffle(len(l.Points), func(i, j int) {
		l.Points[i], l.Points[j] = l.Points[j], l.Points[i]
		l.Labels[i], l.Labels[j] = l.Labels[j], l.Labels[i]
	})
	return l
}

// ForestCover is the substitute for the UCI Forest Cover dataset (59 000
// points, moderate dimension): seven overlapping Gaussian cover-type
// clusters in 10 dimensions with unbalanced sizes, scaled into the unit
// cube. It exercises the same code path — clustering real-valued,
// moderate-dimensional data with skewed class sizes.
func ForestCover(rng *stats.RNG) *Labeled {
	const total, d = 59000, 10
	weights := []int{36, 29, 12, 9, 6, 5, 3} // percent, skewed like cover types
	clusters := make([]Cluster, len(weights))
	for i, w := range weights {
		c := make(geom.Point, d)
		for j := range c {
			c[j] = 0.15 + 0.7*rng.Float64()
		}
		clusters[i] = Cluster{
			Shape: GaussianShape{Center: c, Sigma: 0.03 + 0.02*rng.Float64()},
			Size:  total * w / 100,
		}
	}
	return Generate(clusters, geom.UnitCube(d), 0.02, rng)
}

// PlantOutliers appends m isolated points to l, each at least minGap away
// from every cluster's bounds and from each other, labelled LabelOutlier.
// These are unambiguous DB(p,k) outliers for the §3.2 experiments.
func PlantOutliers(l *Labeled, m int, minGap float64, rng *stats.RNG) {
	d := l.Domain.Dims()
	planted := make([]geom.Point, 0, m)
	for len(planted) < m {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = l.Domain.Min[j] + rng.Float64()*l.Domain.Side(j)
		}
		ok := true
		for _, c := range l.Clusters {
			if c.Shape.Bounds().MinDist(p) < minGap {
				ok = false
				break
			}
		}
		if ok {
			for _, q := range planted {
				if geom.Distance(p, q) < minGap {
					ok = false
					break
				}
			}
		}
		if ok {
			planted = append(planted, p)
		}
	}
	for _, p := range planted {
		l.Points = append(l.Points, p)
		l.Labels = append(l.Labels, LabelOutlier)
	}
}

// ScaleToUnit rescales all points (in place) so the dataset's bounding box
// maps onto the unit cube, as the paper assumes (§2). Cluster shapes are
// not rescaled; call it only before shape-based evaluation is needed, or
// retain the returned scaler to map shapes as well.
func ScaleToUnit(l *Labeled) *geom.Scaler {
	box := geom.BoundingRect(l.Points)
	sc := geom.NewScaler(box)
	for i, p := range l.Points {
		l.Points[i] = sc.ToUnit(p)
	}
	l.Domain = geom.UnitCube(box.Dims())
	return sc
}
