package synth

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/stats"
)

func TestShapesSampleInsideContains(t *testing.T) {
	rng := stats.NewRNG(1)
	shapes := []Shape{
		Box{R: geom.NewRect(geom.Point{0.1, 0.2}, geom.Point{0.4, 0.5})},
		Ball{Center: geom.Point{0.5, 0.5}, Radius: 0.2},
		Ellipsoid{Center: geom.Point{0.5, 0.5}, Radii: geom.Point{0.3, 0.1}},
	}
	for _, s := range shapes {
		for i := 0; i < 2000; i++ {
			p := s.Sample(rng)
			if !s.Contains(p) {
				t.Fatalf("%T sample %v outside its own shape", s, p)
			}
			if !s.Bounds().Contains(p) {
				t.Fatalf("%T sample %v outside bounds", s, p)
			}
		}
	}
}

func TestGaussianShapeMostlyWithin3Sigma(t *testing.T) {
	rng := stats.NewRNG(2)
	g := GaussianShape{Center: geom.Point{0.5, 0.5}, Sigma: 0.05}
	in := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if g.Contains(g.Sample(rng)) {
			in++
		}
	}
	// 2-D gaussian: P(r ≤ 3σ) = 1 - exp(-4.5) ≈ 0.989
	if frac := float64(in) / n; frac < 0.975 {
		t.Errorf("only %v within 3 sigma", frac)
	}
}

func TestBallSampleIsUniformish(t *testing.T) {
	// The inner half-radius disc should hold ~25% of samples in 2-D.
	rng := stats.NewRNG(3)
	b := Ball{Center: geom.Point{0, 0}, Radius: 1}
	inner := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if b.Sample(rng).Norm() <= 0.5 {
			inner++
		}
	}
	if frac := float64(inner) / n; math.Abs(frac-0.25) > 0.02 {
		t.Errorf("inner fraction = %v, want ~0.25", frac)
	}
}

func TestGenerateCountsAndLabels(t *testing.T) {
	rng := stats.NewRNG(4)
	clusters := []Cluster{
		{Shape: Ball{Center: geom.Point{0.3, 0.3}, Radius: 0.1}, Size: 500},
		{Shape: Ball{Center: geom.Point{0.7, 0.7}, Radius: 0.1}, Size: 300},
	}
	l := Generate(clusters, geom.UnitCube(2), 0.25, rng)
	if len(l.Points) != 500+300+200 {
		t.Fatalf("total = %d", len(l.Points))
	}
	counts := map[int]int{}
	for i, lb := range l.Labels {
		counts[lb]++
		if lb >= 0 && !clusters[lb].Shape.Contains(l.Points[i]) {
			t.Fatalf("point %d labelled %d but outside its shape", i, lb)
		}
	}
	if counts[0] != 500 || counts[1] != 300 || counts[LabelNoise] != 200 {
		t.Errorf("label counts = %v", counts)
	}
	if l.NumNoise() != 200 {
		t.Errorf("NumNoise = %d", l.NumNoise())
	}
}

func TestGenerateShuffles(t *testing.T) {
	rng := stats.NewRNG(5)
	clusters := []Cluster{
		{Shape: Ball{Center: geom.Point{0.3, 0.3}, Radius: 0.1}, Size: 500},
		{Shape: Ball{Center: geom.Point{0.7, 0.7}, Radius: 0.1}, Size: 500},
	}
	l := Generate(clusters, geom.UnitCube(2), 0, rng)
	// First 100 labels must not be all-zero (generation order destroyed).
	allSame := true
	for _, lb := range l.Labels[:100] {
		if lb != l.Labels[0] {
			allSame = false
			break
		}
	}
	if allSame {
		t.Error("labels not shuffled")
	}
}

func TestPlaceBoxesNoOverlap(t *testing.T) {
	rng := stats.NewRNG(6)
	sides := []float64{0.2, 0.15, 0.1, 0.1, 0.1}
	boxes := PlaceBoxes(5, sides, geom.UnitCube(2), rng)
	for i := range boxes {
		for j := i + 1; j < len(boxes); j++ {
			if boxes[i].Intersects(boxes[j]) {
				t.Fatalf("boxes %d and %d overlap", i, j)
			}
		}
		if boxes[i].Side(0)-sides[i] > 1e-12 {
			t.Fatalf("box %d has wrong side", i)
		}
	}
}

func TestPlaceBoxesImpossiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for over-packed request")
		}
	}()
	rng := stats.NewRNG(7)
	PlaceBoxes(2, []float64{0.9, 0.9}, geom.UnitCube(2), rng)
}

func TestEqualClusters(t *testing.T) {
	rng := stats.NewRNG(8)
	l := EqualClusters(10, 2, 10000, 0.1, rng)
	if len(l.Clusters) != 10 {
		t.Fatalf("clusters = %d", len(l.Clusters))
	}
	if got := len(l.Points); got != 11000 {
		t.Errorf("points = %d, want 11000", got)
	}
}

func TestVariedClustersDensityRatio(t *testing.T) {
	rng := stats.NewRNG(9)
	l := VariedClusters(10, 2, 100000, 10, 20, 0, rng)
	dens := make([]float64, len(l.Clusters))
	for i, c := range l.Clusters {
		dens[i] = float64(c.Size) / volume(c.Shape)
	}
	ratio := dens[0] / dens[len(dens)-1]
	if ratio < 5 || ratio > 20 {
		t.Errorf("density ratio = %v, want ~10", ratio)
	}
	// sizes must span ~20x
	sr := float64(l.Clusters[0].Size) / float64(l.Clusters[9].Size)
	if sr < 10 || sr > 40 {
		t.Errorf("size ratio = %v, want ~20", sr)
	}
}

func TestDS1Shape(t *testing.T) {
	rng := stats.NewRNG(10)
	l := DS1(100000, 0.05, rng)
	if len(l.Clusters) != 5 {
		t.Fatalf("DS1 clusters = %d", len(l.Clusters))
	}
	if len(l.Points) < 99000 || len(l.Points) > 110000 {
		t.Errorf("DS1 size = %d", len(l.Points))
	}
	// Big cluster must dominate.
	if l.Clusters[0].Size < 3*l.Clusters[3].Size {
		t.Error("DS1 big cluster not dominant")
	}
	// Small discs must be denser than the big disc.
	dBig := float64(l.Clusters[0].Size) / volume(l.Clusters[0].Shape)
	dSmall := float64(l.Clusters[3].Size) / volume(l.Clusters[3].Shape)
	if dSmall <= dBig {
		t.Errorf("small disc density %v <= big %v", dSmall, dBig)
	}
}

func TestNamedDatasetSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("large generators")
	}
	rng := stats.NewRNG(11)
	ne := NorthEast(rng)
	if len(ne.Points) != 130000 {
		t.Errorf("NorthEast size = %d", len(ne.Points))
	}
	if len(ne.Clusters) != 3 {
		t.Errorf("NorthEast metros = %d", len(ne.Clusters))
	}
	ca := California(rng)
	if len(ca.Points) != 62553 {
		t.Errorf("California size = %d", len(ca.Points))
	}
	fc := ForestCover(rng)
	if len(fc.Points) < 59000 || len(fc.Points) > 61000 {
		t.Errorf("ForestCover size = %d", len(fc.Points))
	}
	if fc.Points[0].Dims() != 10 {
		t.Errorf("ForestCover dims = %d", fc.Points[0].Dims())
	}
}

func TestPlantOutliers(t *testing.T) {
	rng := stats.NewRNG(12)
	l := EqualClusters(3, 2, 3000, 0, rng)
	PlantOutliers(l, 10, 0.05, rng)
	outs := l.OutlierIndices()
	if len(outs) != 10 {
		t.Fatalf("planted %d outliers", len(outs))
	}
	for _, i := range outs {
		p := l.Points[i]
		for _, c := range l.Clusters {
			if c.Shape.Bounds().MinDist(p) < 0.05 {
				t.Fatalf("outlier %v too close to a cluster", p)
			}
		}
	}
}

func TestScaleToUnit(t *testing.T) {
	rng := stats.NewRNG(13)
	l := &Labeled{
		Points: []geom.Point{{-10, 0}, {10, 5}, {0, 2.5}},
		Labels: []int{0, 0, 0},
		Domain: geom.NewRect(geom.Point{-10, 0}, geom.Point{10, 5}),
	}
	_ = rng
	ScaleToUnit(l)
	for _, p := range l.Points {
		if p[0] < 0 || p[0] > 1 || p[1] < 0 || p[1] > 1 {
			t.Fatalf("scaled point %v outside unit cube", p)
		}
	}
}

func TestDatasetWrapper(t *testing.T) {
	rng := stats.NewRNG(14)
	l := EqualClusters(2, 2, 200, 0, rng)
	ds := l.Dataset()
	if ds.Len() != len(l.Points) {
		t.Errorf("dataset len = %d", ds.Len())
	}
}

func TestSideForDensity(t *testing.T) {
	// 100 points at density 100/0.25 in 2-D needs side 0.5.
	side := sideForDensity(100, 400, 2)
	if math.Abs(side-0.5) > 1e-12 {
		t.Errorf("side = %v", side)
	}
}
