// Package synth generates the synthetic and substitute workloads of the
// paper's evaluation (§4.1): hyper-rectangular clusters with uniform
// interiors, variable sizes and densities, additive uniform noise, the
// CURE dataset1 lookalike used in Fig. 3, the variable-density DS2, the
// geospatial substitutes (NorthEast / California / ForestCover lookalikes,
// see DESIGN.md §3), and planted-outlier datasets for §3.2.
//
// All generators are deterministic given an RNG, and return labelled data
// so internal/eval can score clustering output against ground truth.
package synth

import (
	"math"

	"repro/internal/geom"
	"repro/internal/stats"
)

// Shape is a region that can be sampled uniformly (or near-uniformly) and
// queried for membership. Ground-truth clusters are shapes; the evaluation
// metric asks whether found representatives lie inside the true shape.
type Shape interface {
	// Sample draws one point from the shape's distribution.
	Sample(rng *stats.RNG) geom.Point
	// Contains reports whether p lies in the shape's interior (for
	// Gaussian shapes, within the 3σ ellipsoid).
	Contains(p geom.Point) bool
	// Bounds returns a rectangle covering the shape.
	Bounds() geom.Rect
}

// Box is a hyper-rectangle with a uniform interior — the cluster shape of
// §4.1 ("each cluster is defined as a hyper-rectangle, and the points in
// the interior of the cluster are uniformly distributed").
type Box struct {
	R geom.Rect
}

// Sample draws a uniform point in the box.
func (b Box) Sample(rng *stats.RNG) geom.Point {
	p := make(geom.Point, b.R.Dims())
	for i := range p {
		p[i] = rng.Uniform(b.R.Min[i], b.R.Max[i])
	}
	return p
}

// Contains reports whether p is inside the box.
func (b Box) Contains(p geom.Point) bool { return b.R.Contains(p) }

// Bounds returns the box itself.
func (b Box) Bounds() geom.Rect { return b.R.Clone() }

// Ball is a uniform-density Euclidean ball.
type Ball struct {
	Center geom.Point
	Radius float64
}

// Sample draws a uniform point in the ball by rejection from the bounding box.
func (b Ball) Sample(rng *stats.RNG) geom.Point {
	d := b.Center.Dims()
	for {
		p := make(geom.Point, d)
		var r2 float64
		for i := range p {
			u := rng.Uniform(-1, 1)
			p[i] = u
			r2 += u * u
		}
		if r2 <= 1 {
			for i := range p {
				p[i] = b.Center[i] + b.Radius*p[i]
			}
			return p
		}
	}
}

// Contains reports whether p lies within the ball.
func (b Ball) Contains(p geom.Point) bool {
	return geom.Distance(p, b.Center) <= b.Radius
}

// Bounds returns the ball's bounding box.
func (b Ball) Bounds() geom.Rect {
	min := make(geom.Point, len(b.Center))
	max := make(geom.Point, len(b.Center))
	for i, c := range b.Center {
		min[i] = c - b.Radius
		max[i] = c + b.Radius
	}
	return geom.Rect{Min: min, Max: max}
}

// Ellipsoid is a uniform-density axis-aligned ellipsoid, used by the DS1
// lookalike for the two elongated clusters of Fig. 3(a).
type Ellipsoid struct {
	Center geom.Point
	Radii  geom.Point
}

// Sample draws a uniform point in the ellipsoid.
func (e Ellipsoid) Sample(rng *stats.RNG) geom.Point {
	d := e.Center.Dims()
	for {
		u := make(geom.Point, d)
		var r2 float64
		for i := range u {
			v := rng.Uniform(-1, 1)
			u[i] = v
			r2 += v * v
		}
		if r2 <= 1 {
			p := make(geom.Point, d)
			for i := range p {
				p[i] = e.Center[i] + e.Radii[i]*u[i]
			}
			return p
		}
	}
}

// Contains reports whether p lies within the ellipsoid.
func (e Ellipsoid) Contains(p geom.Point) bool {
	var s float64
	for i := range p {
		u := (p[i] - e.Center[i]) / e.Radii[i]
		s += u * u
	}
	return s <= 1
}

// Bounds returns the ellipsoid's bounding box.
func (e Ellipsoid) Bounds() geom.Rect {
	min := make(geom.Point, len(e.Center))
	max := make(geom.Point, len(e.Center))
	for i := range e.Center {
		min[i] = e.Center[i] - e.Radii[i]
		max[i] = e.Center[i] + e.Radii[i]
	}
	return geom.Rect{Min: min, Max: max}
}

// GaussianShape is an isotropic normal blob; Contains uses the 3σ ball.
// The geospatial substitutes use it for metro areas.
type GaussianShape struct {
	Center geom.Point
	Sigma  float64
}

// Sample draws one normal variate around the center.
func (g GaussianShape) Sample(rng *stats.RNG) geom.Point {
	p := make(geom.Point, g.Center.Dims())
	for i := range p {
		p[i] = rng.Normal(g.Center[i], g.Sigma)
	}
	return p
}

// Contains reports whether p is within 3σ of the center.
func (g GaussianShape) Contains(p geom.Point) bool {
	return geom.Distance(p, g.Center) <= 3*g.Sigma
}

// Bounds returns the 3σ bounding box.
func (g GaussianShape) Bounds() geom.Rect {
	min := make(geom.Point, len(g.Center))
	max := make(geom.Point, len(g.Center))
	for i, c := range g.Center {
		min[i] = c - 3*g.Sigma
		max[i] = c + 3*g.Sigma
	}
	return geom.Rect{Min: min, Max: max}
}

// volume returns the approximate volume of a shape's support, used to
// compute per-cluster densities when constructing variable-density mixes.
func volume(s Shape) float64 {
	switch v := s.(type) {
	case Box:
		return v.R.Volume()
	case Ball:
		return geom.UnitBallVolume(v.Center.Dims(), v.Radius)
	case Ellipsoid:
		vol := geom.UnitBallVolume(v.Center.Dims(), 1)
		for _, r := range v.Radii {
			vol *= r
		}
		return vol
	case GaussianShape:
		// effective support ≈ 2σ ball
		return geom.UnitBallVolume(v.Center.Dims(), 2*v.Sigma)
	default:
		b := s.Bounds()
		return b.Volume()
	}
}

// sideForDensity returns the box side length giving `size` points the
// target density in d dimensions: side = (size/density)^(1/d).
func sideForDensity(size int, density float64, d int) float64 {
	return math.Pow(float64(size)/density, 1/float64(d))
}
