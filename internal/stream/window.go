package stream

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/stats"
)

// WindowedOptions configure the sliding-window sampler.
type WindowedOptions struct {
	// Alpha is the bias exponent a of the density-biased sample.
	Alpha float64

	// TargetSize is the expected sample size b. Required.
	TargetSize int

	// WindowPoints bounds the live window: after each append, whole
	// generations are evicted from the front while the window would stay
	// at least this long without them — the smallest generation suffix
	// covering the window. 0 means unbounded (grow-only).
	WindowPoints int

	// RebuildTol is the accumulated-drift budget: when the incremental
	// lineage's Σ m/n crosses it, the next maintenance step redraws the
	// sample exactly (core.RebuildSchedule's criterion applied online).
	// Default 0.25.
	RebuildTol float64

	// Parallelism is the worker budget for draws (0 = all cores).
	// Results are bit-identical at every setting.
	Parallelism int

	// Seed derives one independent RNG stream per maintenance step, so a
	// step's draw depends on the schedule position, not on how many
	// random values earlier steps consumed.
	Seed uint64
}

// Windowed maintains a density-biased sample over the most recent points
// of a stream with incremental maintenance: each Append extends the sample
// over the delta (core.ExtendDraw), evictions shrink it by subtracting the
// evicted mass from the normalizer (core.ShrinkDraw — the inverse of the
// extend delta math), and accumulated drift schedules exact rebuilds. The
// backing dataset keeps the full stream (it is the caller's storage); the
// estimator and the sample stay bounded.
type Windowed struct {
	opts  WindowedOptions
	est   *Estimator
	ds    *dataset.InMemory
	start int // absolute index of the window's first live point
	smp   *core.Sample
	ns    core.NormState

	step     uint64
	rebuilds int
	shrinks  int
}

// NewWindowed wraps est (which must be empty — no observed generations)
// in a sliding-window sampler.
func NewWindowed(est *Estimator, opts WindowedOptions) (*Windowed, error) {
	if est == nil {
		return nil, errors.New("stream: nil estimator")
	}
	if est.Generations() != 0 {
		return nil, errors.New("stream: estimator already holds generations")
	}
	if opts.TargetSize <= 0 {
		return nil, errors.New("stream: TargetSize must be positive")
	}
	if opts.RebuildTol == 0 {
		opts.RebuildTol = 0.25
	}
	if opts.RebuildTol < 0 {
		return nil, errors.New("stream: negative RebuildTol")
	}
	return &Windowed{opts: opts, est: est}, nil
}

// rngAt returns the RNG stream for maintenance step s: derived from the
// seed and the step index alone, so replaying the same append schedule
// replays the same draws bit-for-bit.
func (w *Windowed) rngAt(s uint64) *stats.RNG {
	return stats.NewRNG(mix64(w.opts.Seed ^ (s * 0x9e3779b97f4a7c15)))
}

// Append folds a batch into the stream as one generation and runs the
// maintenance cycle: observe, extend the sample over the delta, evict
// whole generations that fell out of the window (shrinking the sample and
// its normalizer exactly), and redraw from scratch when drift crosses the
// budget.
func (w *Windowed) Append(pts []geom.Point) error {
	if len(pts) == 0 {
		return errors.New("stream: empty append")
	}
	w.step++
	if w.ds == nil {
		ds, err := dataset.NewInMemory(pts)
		if err != nil {
			return err
		}
		w.ds = ds
	} else if err := w.ds.Append(pts...); err != nil {
		return err
	}
	if err := w.est.Observe(pts); err != nil {
		return err
	}

	if w.smp == nil {
		// First batch: bootstrap with an exact draw.
		return w.rebuild()
	}

	// Extend over the delta.
	view, err := w.view()
	if err != nil {
		return err
	}
	smp, ns, err := core.ExtendDraw(view, w.est, core.ExtendOptions{
		Options: core.Options{
			Alpha:       w.opts.Alpha,
			TargetSize:  w.opts.TargetSize,
			Parallelism: w.opts.Parallelism,
		},
		DeltaStart: w.ns.N,
		Prior:      w.smp,
		PriorNorm:  w.ns,
	}, w.rngAt(w.step))
	if err != nil {
		return fmt.Errorf("stream: extend: %w", err)
	}
	w.smp, w.ns = smp, ns

	if err := w.evict(); err != nil {
		return err
	}
	if w.ns.Drift > w.opts.RebuildTol {
		return w.rebuild()
	}
	return nil
}

// evict drops whole generations from the front while the window stays at
// least WindowPoints long without them, shrinking the sample per evicted
// generation.
func (w *Windowed) evict() error {
	if w.opts.WindowPoints <= 0 {
		return nil
	}
	for {
		m := w.est.OldestCount()
		if m == 0 || w.Len()-m < w.opts.WindowPoints {
			return nil
		}
		evicted, err := dataset.Window(w.ds, w.start, w.start+m)
		if err != nil {
			return err
		}
		// The estimator forgets the generation first: ShrinkDraw
		// subtracts the evicted mass measured against the post-eviction
		// density field.
		if err := w.est.EvictOldest(evicted); err != nil {
			return err
		}
		smp, ns, err := core.ShrinkDraw(evicted, w.est, core.ShrinkOptions{
			Options: core.Options{
				Alpha:       w.opts.Alpha,
				Parallelism: w.opts.Parallelism,
			},
			EvictCount: m,
			Prior:      w.smp,
			PriorNorm:  w.ns,
		})
		if err != nil {
			return fmt.Errorf("stream: shrink: %w", err)
		}
		w.smp, w.ns = smp, ns
		w.start += m
		w.shrinks++
	}
}

// rebuild redraws the sample exactly over the current window and resets
// drift.
func (w *Windowed) rebuild() error {
	view, err := w.view()
	if err != nil {
		return err
	}
	// The high bit separates rebuild streams from the same step's extend
	// stream (step counters never get near 2^63).
	smp, err := core.Draw(view, w.est, core.Options{
		Alpha:       w.opts.Alpha,
		TargetSize:  w.opts.TargetSize,
		Parallelism: w.opts.Parallelism,
	}, w.rngAt(w.step|1<<63))
	if err != nil {
		return fmt.Errorf("stream: rebuild: %w", err)
	}
	w.smp = smp
	w.ns = core.NormState{
		K:       smp.Norm,
		N:       view.Len(),
		Kernels: len(w.est.Centers()),
	}
	w.rebuilds++
	return nil
}

// view returns the dataset view of the live window.
func (w *Windowed) view() (dataset.Dataset, error) {
	return dataset.Window(w.ds, w.start, w.ds.Len())
}

// Sample returns the current sample (window-relative indices).
func (w *Windowed) Sample() *core.Sample { return w.smp }

// Norm returns the lineage's normalizer state.
func (w *Windowed) Norm() core.NormState { return w.ns }

// Len returns the live window length.
func (w *Windowed) Len() int {
	if w.ds == nil {
		return 0
	}
	return w.ds.Len() - w.start
}

// Start returns the absolute stream index of the window's first point.
func (w *Windowed) Start() int { return w.start }

// Window returns the dataset view of the live window.
func (w *Windowed) Window() (dataset.Dataset, error) {
	if w.ds == nil {
		return nil, errors.New("stream: no points appended")
	}
	return w.view()
}

// Estimator returns the backing estimator.
func (w *Windowed) Estimator() *Estimator { return w.est }

// Rebuilds returns how many exact rebuilds have run (≥ 1 once any points
// arrived: the bootstrap draw counts).
func (w *Windowed) Rebuilds() int { return w.rebuilds }

// Shrinks returns how many generation evictions have shrunk the sample.
func (w *Windowed) Shrinks() int { return w.shrinks }
