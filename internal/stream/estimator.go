package stream

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/stats"
)

// Options configure the sketch-backed estimator.
type Options struct {
	// CellsPerDim is the grid resolution g per shifted grid. Default 64.
	CellsPerDim int

	// Width is the counter width of EACH shift's sketch. Default is
	// 1<<14 divided by the number of shifts, so the total counter budget
	// is matched whether the estimator runs one grid or several.
	Width int

	// Depth is the number of sketch rows. Default 4.
	Depth int

	// Shifts is the number of offset grids averaged per density query
	// (Wells & Ting's averaged shifted histograms): grid s is offset by
	// s/Shifts of a cell width along every dimension, and Density is the
	// mean of the per-grid cell counts over the cell volume. 1 (the
	// default for New) is a plain single-grid sketch; NewASG defaults
	// to 4.
	Shifts int

	// ProbesPerGen is the reservoir size kept per observed generation —
	// the estimator's probe points, exposed as Centers for floor
	// selection and used by NormEstimate. Default 32.
	ProbesPerGen int

	// Seed drives the sketch row hashes and probe reservoirs.
	Seed uint64
}

func (o Options) withDefaults(asg bool) Options {
	if o.CellsPerDim == 0 {
		o.CellsPerDim = 64
	}
	if o.Shifts == 0 {
		if asg {
			o.Shifts = 4
		} else {
			o.Shifts = 1
		}
	}
	if o.Width == 0 {
		o.Width = (1 << 14) / o.Shifts
	}
	if o.Depth == 0 {
		o.Depth = 4
	}
	if o.ProbesPerGen == 0 {
		o.ProbesPerGen = 32
	}
	return o
}

// generation is the bookkeeping for one Observe batch: its size and a
// fixed-size probe reservoir. Probes are dropped with the generation on
// eviction, so estimator memory stays O(sketch + live generations), never
// O(stream length).
type generation struct {
	count  int
	probes []geom.Point
	seen   int
}

// Estimator estimates point density from Count-Min sketches of grid-cell
// occupancy, maintained incrementally: Observe folds a batch in, and
// EvictOldest removes the oldest batch exactly (linear sketch rows make
// removal an exact inverse). Densities are absolute cell counts over cell
// volume — independent of the total stream length — so the estimator's
// NormRescale is 1: appending or evicting points leaves a surviving
// point's density unchanged except where the occupancy of its own cell
// changed. It satisfies internal/core's estimator interfaces
// (DensityEstimator, Centers/N, NormRescaler) and plugs into Draw,
// ExtendDraw, and ShrinkDraw unmodified.
type Estimator struct {
	domain   geom.Rect
	d, g     int
	shifts   int
	sketches []*CMSketch
	cellVol  float64
	n        int
	gens     []generation
	probes   int
	rng      *stats.RNG
}

// New returns a single-grid sketch estimator over the domain.
func New(domain geom.Rect, opts Options) (*Estimator, error) {
	return build(domain, opts.withDefaults(false))
}

// NewASG returns an averaged-shifted-grid estimator: Options.Shifts
// offset grids (default 4), each with a proportionally smaller sketch so
// the total counter budget matches New at the same Options.
func NewASG(domain geom.Rect, opts Options) (*Estimator, error) {
	return build(domain, opts.withDefaults(true))
}

func build(domain geom.Rect, opts Options) (*Estimator, error) {
	d := domain.Dims()
	if d == 0 {
		return nil, errors.New("stream: empty domain")
	}
	if opts.CellsPerDim < 1 {
		return nil, errors.New("stream: CellsPerDim must be positive")
	}
	if opts.Shifts < 1 {
		return nil, errors.New("stream: Shifts must be positive")
	}
	vol := domain.Volume()
	if vol <= 0 || math.IsInf(vol, 0) || math.IsNaN(vol) {
		return nil, fmt.Errorf("stream: degenerate domain volume %v", vol)
	}
	e := &Estimator{
		domain:   domain.Clone(),
		d:        d,
		g:        opts.CellsPerDim,
		shifts:   opts.Shifts,
		sketches: make([]*CMSketch, opts.Shifts),
		cellVol:  vol / math.Pow(float64(opts.CellsPerDim), float64(d)),
		probes:   opts.ProbesPerGen,
		rng:      stats.NewRNG(mix64(opts.Seed ^ 0x57ea3)),
	}
	for s := range e.sketches {
		sk, err := NewCMSketch(opts.Width, opts.Depth, opts.Seed+uint64(s))
		if err != nil {
			return nil, err
		}
		e.sketches[s] = sk
	}
	return e, nil
}

// cellKey maps p to its cell identifier under shift s: FNV-1a over the
// per-dimension cell coordinates of the grid offset by s/shifts of a cell
// width. Out-of-domain coordinates clamp to the boundary cells (a shifted
// grid has g+1 cells per dimension; indices clamp to [0, g]).
func (e *Estimator) cellKey(s int, p geom.Point) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	off := float64(s) / float64(e.shifts)
	h := uint64(offset) ^ (uint64(s) * prime)
	for j := 0; j < e.d; j++ {
		side := e.domain.Side(j)
		var c int
		if side > 0 {
			c = int(float64(e.g)*(p[j]-e.domain.Min[j])/side + off)
		}
		if c < 0 {
			c = 0
		}
		if c > e.g {
			c = e.g
		}
		v := uint64(c)
		for k := 0; k < 4; k++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	return h
}

// Observe folds pts in as a new generation: every shift's sketch counts
// each point's cell, and a fixed-size reservoir of the generation's points
// is kept as probes.
func (e *Estimator) Observe(pts []geom.Point) error {
	gen := generation{count: len(pts)}
	for _, p := range pts {
		if len(p) != e.d {
			return fmt.Errorf("stream: point has %d dims, estimator %d", len(p), e.d)
		}
		for s := range e.sketches {
			e.sketches[s].Add(e.cellKey(s, p))
		}
		// Reservoir-sample the generation's probes.
		if len(gen.probes) < e.probes {
			gen.probes = append(gen.probes, p.Clone())
		} else if j := e.rng.Intn(gen.seen + 1); j < e.probes {
			gen.probes[j] = p.Clone()
		}
		gen.seen++
	}
	e.n += len(pts)
	e.gens = append(e.gens, gen)
	return nil
}

// Generations returns the number of live (observed, not yet evicted)
// generations.
func (e *Estimator) Generations() int { return len(e.gens) }

// OldestCount returns the size of the oldest live generation, 0 when none.
func (e *Estimator) OldestCount() int {
	if len(e.gens) == 0 {
		return 0
	}
	return e.gens[0].count
}

// EvictOldest removes the oldest generation: evicted must scan exactly the
// points that generation observed (the caller holds them — the estimator
// keeps only their sketch marks). Every cell key the generation added is
// removed from every sketch — an exact inverse, because the rows are
// linear — and the generation's probes are dropped.
func (e *Estimator) EvictOldest(evicted dataset.Dataset) error {
	if len(e.gens) == 0 {
		return errors.New("stream: no generation to evict")
	}
	m := e.gens[0].count
	if evicted.Len() != m {
		return fmt.Errorf("stream: evicted view has %d points, oldest generation %d", evicted.Len(), m)
	}
	err := evicted.Scan(func(p geom.Point) error {
		for s := range e.sketches {
			e.sketches[s].Remove(e.cellKey(s, p))
		}
		return nil
	})
	if err != nil {
		return err
	}
	e.n -= m
	e.gens = e.gens[1:]
	return nil
}

// Density implements core.DensityEstimator: the mean over shifts of p's
// cell count, divided by the cell volume. Counts are absolute occupancy,
// so the scale does not depend on the total stream length.
func (e *Estimator) Density(p geom.Point) float64 {
	var sum int64
	for s := range e.sketches {
		sum += e.sketches[s].Count(e.cellKey(s, p))
	}
	return float64(sum) / (float64(e.shifts) * e.cellVol)
}

// Centers exposes the live probe points (concatenated across generations)
// so core's floor selection and norm bootstrapping see representative
// data locations.
func (e *Estimator) Centers() []geom.Point {
	var out []geom.Point
	for _, g := range e.gens {
		out = append(out, g.probes...)
	}
	return out
}

// N reports the number of live (observed minus evicted) points.
func (e *Estimator) N() int { return e.n }

// NormRescale implements core.NormRescaler: sketch densities are absolute
// counts, so extending or shrinking the window does not rescale a
// surviving point's density — s = 1 exactly.
func (e *Estimator) NormRescale(priorN, priorKernels int) float64 { return 1 }

// NormEstimate estimates the normalizer k_a = Σ f(x)^a over the live
// window from the probe reservoirs alone — no data pass: each
// generation's mean probe mass is scaled by the generation's size.
// Densities below floor are floored before exponentiation, mirroring
// core's handling.
func (e *Estimator) NormEstimate(alpha, floor float64) float64 {
	var total float64
	for _, g := range e.gens {
		if len(g.probes) == 0 {
			continue
		}
		var sum float64
		for _, p := range g.probes {
			f := e.Density(p)
			if f < floor {
				f = floor
			}
			sum += math.Pow(f, alpha)
		}
		total += float64(g.count) * sum / float64(len(g.probes))
	}
	return total
}

// Bytes reports the estimator's counter memory plus live probe storage —
// O(width × depth + generations × probes), independent of how many points
// have streamed through.
func (e *Estimator) Bytes() int {
	b := 0
	for _, sk := range e.sketches {
		b += sk.Bytes()
	}
	for _, g := range e.gens {
		b += len(g.probes) * e.d * 8
	}
	return b
}
