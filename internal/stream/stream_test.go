package stream

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/stats"
)

// The estimator must satisfy core's full estimator surface.
var (
	_ core.DensityEstimator = (*Estimator)(nil)
	_ core.NormRescaler     = (*Estimator)(nil)
	_ interface {
		Centers() []geom.Point
		N() int
	} = (*Estimator)(nil)
)

func TestCMSketchExactRemove(t *testing.T) {
	sk, err := NewCMSketch(256, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(7)
	keys := make([]uint64, 500)
	for i := range keys {
		keys[i] = rng.Uint64() % 64 // heavy collisions on purpose
		sk.Add(keys[i])
	}
	// Counts never undercount true multiplicity.
	mult := map[uint64]int64{}
	for _, k := range keys {
		mult[k]++
	}
	for k, m := range mult {
		if got := sk.Count(k); got < m {
			t.Fatalf("key %d count %d < true %d", k, got, m)
		}
	}
	// Removing exactly the added keys is an exact inverse: all counters
	// return to zero.
	for _, k := range keys {
		sk.Remove(k)
	}
	for k := range mult {
		if got := sk.Count(k); got != 0 {
			t.Fatalf("after full removal key %d count %d, want 0", k, got)
		}
	}
	for r, row := range sk.rows {
		for i, c := range row {
			if c != 0 {
				t.Fatalf("row %d counter %d = %d after full removal", r, i, c)
			}
		}
	}
}

func TestCMSketchValidation(t *testing.T) {
	if _, err := NewCMSketch(0, 4, 1); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewCMSketch(16, 0, 1); err == nil {
		t.Error("zero depth accepted")
	}
}

func mustDataset(t *testing.T, pts []geom.Point) *dataset.InMemory {
	t.Helper()
	ds, err := dataset.NewInMemory(pts)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// denseSparse returns points with 90% in a tight blob and 10% spread out.
func denseSparse(n int, rng *stats.RNG) []geom.Point {
	pts := make([]geom.Point, 0, n)
	for i := 0; i < n; i++ {
		if i%10 != 0 {
			pts = append(pts, geom.Point{0.2 + 0.05*rng.Float64(), 0.2 + 0.05*rng.Float64()})
		} else {
			pts = append(pts, geom.Point{0.6 + 0.35*rng.Float64(), 0.6 + 0.35*rng.Float64()})
		}
	}
	return pts
}

func TestEstimatorDensityOrderingBothBackends(t *testing.T) {
	for _, backend := range []struct {
		name string
		make func() (*Estimator, error)
	}{
		{"sketch", func() (*Estimator, error) { return New(geom.UnitCube(2), Options{Seed: 3}) }},
		{"asg", func() (*Estimator, error) { return NewASG(geom.UnitCube(2), Options{Seed: 3}) }},
	} {
		e, err := backend.make()
		if err != nil {
			t.Fatal(err)
		}
		pts := denseSparse(8000, stats.NewRNG(11))
		if err := e.Observe(pts); err != nil {
			t.Fatal(err)
		}
		if e.N() != len(pts) {
			t.Errorf("%s: N = %d, want %d", backend.name, e.N(), len(pts))
		}
		if len(e.Centers()) == 0 {
			t.Errorf("%s: no probe centers", backend.name)
		}
		dense := e.Density(geom.Point{0.22, 0.22})
		sparse := e.Density(geom.Point{0.8, 0.8})
		if dense <= sparse {
			t.Errorf("%s: dense density %v <= sparse %v", backend.name, dense, sparse)
		}
		if e.NormRescale(1, 1) != 1 {
			t.Errorf("%s: NormRescale != 1", backend.name)
		}
		if e.NormEstimate(1, 0) <= 0 {
			t.Errorf("%s: NormEstimate not positive", backend.name)
		}
	}
}

// TestEstimatorEvictExactInverse: observing A then B and evicting A leaves
// the density field identical to observing B alone — the linear sketch
// rows make eviction an exact inverse, for both backends.
func TestEstimatorEvictExactInverse(t *testing.T) {
	rng := stats.NewRNG(23)
	genA := denseSparse(2000, rng)
	genB := denseSparse(3000, rng)
	for _, asg := range []bool{false, true} {
		mk := New
		if asg {
			mk = NewASG
		}
		both, err := mk(geom.UnitCube(2), Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if err := both.Observe(genA); err != nil {
			t.Fatal(err)
		}
		if err := both.Observe(genB); err != nil {
			t.Fatal(err)
		}
		evicted := mustDataset(t, genA)
		if err := both.EvictOldest(evicted); err != nil {
			t.Fatal(err)
		}

		only, err := mk(geom.UnitCube(2), Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if err := only.Observe(genB); err != nil {
			t.Fatal(err)
		}

		if both.N() != only.N() {
			t.Fatalf("asg=%v: N %d vs %d", asg, both.N(), only.N())
		}
		probe := stats.NewRNG(77)
		for i := 0; i < 500; i++ {
			p := geom.Point{probe.Float64(), probe.Float64()}
			if a, b := both.Density(p), only.Density(p); a != b {
				t.Fatalf("asg=%v: density after evict %v != fresh %v at %v", asg, a, b, p)
			}
		}
	}
}

func TestEstimatorEvictValidation(t *testing.T) {
	e, err := New(geom.UnitCube(2), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EvictOldest(mustDataset(t, denseSparse(5, stats.NewRNG(1)))); err == nil {
		t.Error("evict with no generations accepted")
	}
	if err := e.Observe(denseSparse(10, stats.NewRNG(2))); err != nil {
		t.Fatal(err)
	}
	if err := e.EvictOldest(mustDataset(t, denseSparse(5, stats.NewRNG(3)))); err == nil {
		t.Error("evicted view length mismatch accepted")
	}
}

// TestEstimatorMemoryBounded: sketch memory is O(width × depth), and with
// a bounded window the probe storage is bounded too — streaming 20x more
// points through must not grow the estimator.
func TestEstimatorMemoryBounded(t *testing.T) {
	// Track generations outside the estimator so eviction can hand the
	// evicted points back (the estimator keeps only their sketch marks).
	measure := func(gens int) int {
		e, err := New(geom.UnitCube(2), Options{Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewRNG(31)
		var live [][]geom.Point
		for g := 0; g < gens; g++ {
			pts := denseSparse(500, rng)
			if err := e.Observe(pts); err != nil {
				t.Fatal(err)
			}
			live = append(live, pts)
			for e.Generations() > 4 {
				if err := e.EvictOldest(mustDataset(t, live[0])); err != nil {
					t.Fatal(err)
				}
				live = live[1:]
			}
		}
		return e.Bytes()
	}
	short, long := measure(5), measure(100)
	if long > short {
		t.Errorf("estimator grew with stream length: %d bytes after 100 gens, %d after 5", long, short)
	}
	if sketchOnly := 8 * (1 << 14) * 4; short < sketchOnly {
		t.Errorf("Bytes %d under counter floor %d", short, sketchOnly)
	}
}

// TestWindowedLineage drives the sliding-window sampler through appends
// and evictions and pins the lineage bookkeeping: the norm state tracks
// the live window, sample indices stay window-relative, and an exact
// rebuild resets drift with k_a equal to the exact normalizer.
func TestWindowedLineage(t *testing.T) {
	est, err := New(geom.UnitCube(2), Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWindowed(est, WindowedOptions{
		Alpha:        1,
		TargetSize:   200,
		WindowPoints: 2000,
		RebuildTol:   1e9, // never rebuild on drift: isolate the incremental path
		Seed:         41,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(17)
	for step := 0; step < 8; step++ {
		if err := w.Append(denseSparse(600, rng)); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if w.Norm().N != w.Len() {
			t.Fatalf("step %d: norm covers %d, window has %d", step, w.Norm().N, w.Len())
		}
		smp := w.Sample()
		if smp.Indices == nil || len(smp.Indices) != len(smp.Points) {
			t.Fatalf("step %d: indices out of sync", step)
		}
		for _, idx := range smp.Indices {
			if idx < 0 || idx >= int64(w.Len()) {
				t.Fatalf("step %d: index %d outside window [0, %d)", step, idx, w.Len())
			}
		}
	}
	if w.Shrinks() == 0 {
		t.Fatal("no evictions happened; window bound not exercised")
	}
	if w.Len() < 2000 || w.Len() >= 2600 {
		t.Fatalf("window length %d outside generation-granular bound [2000, 2600)", w.Len())
	}
	if w.Norm().Drift <= 0 {
		t.Fatal("incremental lineage accumulated no drift")
	}

	// Force an exact rebuild by appending with a zero drift budget, and
	// verify k_a matches the exact normalizer over the live window.
	w.opts.RebuildTol = 1e-12
	if err := w.Append(denseSparse(600, rng)); err != nil {
		t.Fatal(err)
	}
	if w.Rebuilds() < 2 { // bootstrap + drift-forced
		t.Fatalf("rebuilds = %d, want the drift budget to force one", w.Rebuilds())
	}
	if got := w.Norm().Drift; got != 0 {
		t.Fatalf("drift after rebuild = %v, want 0", got)
	}
	view, err := w.Window()
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.ExactNorm(view, est, 1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(w.Norm().K-want) / want; rel > 1e-9 {
		t.Fatalf("rebuilt k_a = %v, exact = %v (rel %v)", w.Norm().K, want, rel)
	}
}

// TestWindowedWorkerParity: the whole maintenance pipeline — extend,
// shrink, rebuild — is bit-identical at parallelism 1 and 8.
func TestWindowedWorkerParity(t *testing.T) {
	runSchedule := func(par int) *Windowed {
		est, err := New(geom.UnitCube(2), Options{Seed: 19})
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWindowed(est, WindowedOptions{
			Alpha:        1,
			TargetSize:   150,
			WindowPoints: 1500,
			RebuildTol:   0.3,
			Parallelism:  par,
			Seed:         53,
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewRNG(29)
		for step := 0; step < 10; step++ {
			if err := w.Append(denseSparse(400, rng)); err != nil {
				t.Fatal(err)
			}
		}
		return w
	}
	a, b := runSchedule(1), runSchedule(8)
	if a.Norm() != b.Norm() {
		t.Fatalf("norm state diverged across workers: %+v vs %+v", a.Norm(), b.Norm())
	}
	as, bs := a.Sample(), b.Sample()
	if len(as.Points) != len(bs.Points) {
		t.Fatalf("sample sizes diverged: %d vs %d", len(as.Points), len(bs.Points))
	}
	for i := range as.Points {
		if !as.Points[i].P.Equal(bs.Points[i].P) || as.Points[i].W != bs.Points[i].W ||
			as.Indices[i] != bs.Indices[i] {
			t.Fatalf("sample point %d diverged across workers", i)
		}
	}
}

// TestWindowedExpectedSize: the live sample's size stays near the target b
// through extends, shrinks, and rebuilds.
func TestWindowedExpectedSize(t *testing.T) {
	const b = 250
	var total, steps int
	for trial := 0; trial < 3; trial++ {
		est, err := New(geom.UnitCube(2), Options{Seed: 61 + uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWindowed(est, WindowedOptions{
			Alpha:        1,
			TargetSize:   b,
			WindowPoints: 3000,
			RebuildTol:   0.25,
			Seed:         101 + uint64(trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewRNG(71 + uint64(trial))
		for step := 0; step < 12; step++ {
			if err := w.Append(denseSparse(700, rng)); err != nil {
				t.Fatal(err)
			}
			total += len(w.Sample().Points)
			steps++
		}
	}
	mean := float64(total) / float64(steps)
	// Shrinks decay E[|S|] below b until the next rebuild repairs it;
	// allow a generous band around the target.
	if mean < 0.6*b || mean > 1.4*b {
		t.Errorf("mean live sample size %v, want within 40%% of %v", mean, float64(b))
	}
}
