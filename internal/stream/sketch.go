// Package stream provides bounded-memory density estimation over growing
// and sliding-window datasets: a Count-Min sketch of grid-cell occupancy
// (optionally averaged over shifted grids, after Wells & Ting's averaged
// shifted histograms) that maintains cell counts, the density field f, and
// the normalizer k_a in one pass with O(width × depth) memory — and a
// windowed sampler that keeps a density-biased sample live over the most
// recent points by extending on append (core.ExtendDraw) and shrinking on
// eviction (core.ShrinkDraw), with drift-scheduled exact rebuilds.
package stream

import "fmt"

// CMSketch is a Count-Min sketch over uint64 keys with plain linear
// updates — deliberately NOT the conservative-update variant. Linear rows
// make Remove an exact inverse of Add: removing exactly the keys
// previously added returns every counter to its prior state, which the
// sliding-window estimator relies on when it evicts a generation.
// Count reads the minimum over rows (clamped at zero), so estimates
// overshoot only by hash collisions, never undershoot.
type CMSketch struct {
	width, depth int
	rows         [][]int64
	seeds        []uint64
}

// NewCMSketch returns a sketch of depth rows × width counters. The row
// seeds derive deterministically from seed, so two sketches built with the
// same shape and seed are interchangeable.
func NewCMSketch(width, depth int, seed uint64) (*CMSketch, error) {
	if width < 1 || depth < 1 {
		return nil, fmt.Errorf("stream: sketch shape %dx%d invalid", width, depth)
	}
	s := &CMSketch{
		width: width,
		depth: depth,
		rows:  make([][]int64, depth),
		seeds: make([]uint64, depth),
	}
	x := seed
	for r := 0; r < depth; r++ {
		s.rows[r] = make([]int64, width)
		x += 0x9e3779b97f4a7c15
		s.seeds[r] = mix64(x)
	}
	return s, nil
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed bijection
// used for row hashing and per-step seed derivation.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (s *CMSketch) pos(row int, key uint64) int {
	return int(mix64(key^s.seeds[row]) % uint64(s.width))
}

// Add increments key's counter in every row.
func (s *CMSketch) Add(key uint64) {
	for r := 0; r < s.depth; r++ {
		s.rows[r][s.pos(r, key)]++
	}
}

// Remove decrements key's counter in every row — the exact inverse of a
// prior Add of the same key. Removing a key that was never added skews the
// sketch; callers must only remove observed keys.
func (s *CMSketch) Remove(key uint64) {
	for r := 0; r < s.depth; r++ {
		s.rows[r][s.pos(r, key)]--
	}
}

// Count estimates key's multiplicity: the minimum over rows, clamped at
// zero. Never an undercount of the true multiplicity when only observed
// keys have been removed.
func (s *CMSketch) Count(key uint64) int64 {
	min := s.rows[0][s.pos(0, key)]
	for r := 1; r < s.depth; r++ {
		if c := s.rows[r][s.pos(r, key)]; c < min {
			min = c
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// Bytes reports the counter memory: 8 bytes × width × depth, independent
// of how many keys have been added.
func (s *CMSketch) Bytes() int { return 8 * s.width * s.depth }
