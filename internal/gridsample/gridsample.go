// Package gridsample implements the grid/hash density-biased sampling of
// Palmer & Faloutsos (SIGMOD 2000), the prior-work baseline the paper
// compares against (§1.1, §4.3 "Grid based Biased Sampling").
//
// The data space is partitioned into a regular grid; cell occupancy counts
// are kept in a bounded hash table, so distinct cells may collide into one
// bucket — the memory/accuracy degradation the paper highlights ("the
// quality of the sample degrades with collisions implicit to any hash
// based approach"). Sampling then draws each point of a bucket with
// population n_i with probability (b/Σ n_j^e) · n_i^(e-1):
//
//	e = 1   uniform sampling;
//	e = 0   equal expected count per occupied cell (undersamples dense,
//	        oversamples sparse — their recommended mode for skewed data);
//	e < 0   stronger bias toward sparse cells (the paper's Fig. 5(c) uses
//	        e = -0.5).
//
// The grid also doubles as a density estimator (Density reports bucket
// count divided by cell volume), so it can be plugged into internal/core's
// decoupled sampler for ablations against the kernel estimator.
package gridsample

import (
	"errors"
	"math"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/stats"
)

// Options configure grid construction and sampling.
type Options struct {
	// Exponent is e; see the package comment.
	Exponent float64

	// TargetSize is the expected sample size b. Required by Draw.
	TargetSize int

	// CellsPerDim is the grid resolution g (g^d logical cells).
	// Default 64.
	CellsPerDim int

	// MemoryBytes bounds the hash table (16 bytes per bucket). The
	// paper's comparison allows 5 MB. Default 5 MB.
	MemoryBytes int
}

// Grid is the bounded hash table of cell occupancy counts built in one
// dataset pass.
type Grid struct {
	domain   geom.Rect
	g        int // cells per dimension
	d        int
	buckets  []bucket
	mask     uint64
	cellVol  float64
	total    int
	occupied int
	// collided counts buckets that received at least two distinct cell
	// ids — the degradation measure.
	collided int
}

type bucket struct {
	count   int32
	firstID uint64 // +1; 0 means empty
	clash   bool
}

// BuildGrid scans ds once and returns the occupancy grid over the domain.
func BuildGrid(ds dataset.Dataset, domain geom.Rect, opts Options) (*Grid, error) {
	if ds.Len() == 0 {
		return nil, errors.New("gridsample: empty dataset")
	}
	g := opts.CellsPerDim
	if g == 0 {
		g = 64
	}
	if g < 1 {
		return nil, errors.New("gridsample: CellsPerDim must be positive")
	}
	mem := opts.MemoryBytes
	if mem == 0 {
		mem = 5 << 20
	}
	if mem < 16 {
		return nil, errors.New("gridsample: MemoryBytes too small for one bucket")
	}
	nb := nextPow2(mem / 16)
	d := ds.Dims()
	if domain.Dims() != d {
		return nil, errors.New("gridsample: domain dimensionality mismatch")
	}
	gr := &Grid{
		domain:  domain.Clone(),
		g:       g,
		d:       d,
		buckets: make([]bucket, nb),
		mask:    uint64(nb - 1),
	}
	vol := domain.Volume()
	gr.cellVol = vol / math.Pow(float64(g), float64(d))
	err := ds.Scan(func(p geom.Point) error {
		id := gr.cellID(p)
		b := &gr.buckets[id&gr.mask]
		if b.firstID == 0 {
			b.firstID = id + 1
			gr.occupied++
		} else if b.firstID != id+1 && !b.clash {
			b.clash = true
			gr.collided++
		}
		b.count++
		gr.total++
		return nil
	})
	if err != nil {
		return nil, err
	}
	return gr, nil
}

// cellID maps a point to a hashed cell identifier (FNV-1a over the
// per-dimension cell coordinates). Points outside the domain clamp to the
// boundary cells.
func (gr *Grid) cellID(p geom.Point) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for j := 0; j < gr.d; j++ {
		side := gr.domain.Side(j)
		var c int
		if side > 0 {
			c = int(float64(gr.g) * (p[j] - gr.domain.Min[j]) / side)
		}
		if c < 0 {
			c = 0
		}
		if c >= gr.g {
			c = gr.g - 1
		}
		v := uint64(c)
		for k := 0; k < 4; k++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	return h
}

// Count returns the occupancy of the bucket owning p's cell (including any
// colliding cells).
func (gr *Grid) Count(p geom.Point) int {
	return int(gr.buckets[gr.cellID(p)&gr.mask].count)
}

// Density returns the bucket count divided by the cell volume, making Grid
// a drop-in core.DensityEstimator.
func (gr *Grid) Density(p geom.Point) float64 {
	return float64(gr.Count(p)) / gr.cellVol
}

// OccupiedBuckets returns how many buckets hold at least one point.
func (gr *Grid) OccupiedBuckets() int { return gr.occupied }

// CollidedBuckets returns how many buckets absorbed two or more distinct
// grid cells.
func (gr *Grid) CollidedBuckets() int { return gr.collided }

// Result is the output of Draw.
type Result struct {
	Points []dataset.WeightedPoint
	// Collisions is the number of hash buckets that merged distinct cells.
	Collisions int
	// DataPasses used (always 2: one to build the grid, one to sample).
	DataPasses int
	// Norm is Σ n_i^e over the points' buckets (the normalizer).
	Norm float64
}

// Draw runs the full Palmer-Faloutsos procedure: build the grid (pass 1),
// then sample each point with probability (b/K)·n^(e-1) where n is its
// bucket count and K = Σ_points n^(e-1) = Σ_buckets n^e (pass 2).
func Draw(ds dataset.Dataset, domain geom.Rect, opts Options, rng *stats.RNG) (*Result, error) {
	if opts.TargetSize <= 0 {
		return nil, errors.New("gridsample: TargetSize must be positive")
	}
	gr, err := BuildGrid(ds, domain, opts)
	if err != nil {
		return nil, err
	}
	// K = Σ over occupied buckets of n_i^e, computable without rescanning.
	var norm float64
	for i := range gr.buckets {
		if n := float64(gr.buckets[i].count); n > 0 {
			norm += math.Pow(n, opts.Exponent)
		}
	}
	if norm <= 0 || math.IsInf(norm, 0) || math.IsNaN(norm) {
		return nil, errors.New("gridsample: degenerate normalizer")
	}
	b := float64(opts.TargetSize)
	res := &Result{Collisions: gr.collided, DataPasses: 2, Norm: norm}
	err = ds.Scan(func(p geom.Point) error {
		n := float64(gr.Count(p))
		prob := b / norm * math.Pow(n, opts.Exponent-1)
		if prob > 1 {
			prob = 1
		}
		if rng.Bernoulli(prob) {
			res.Points = append(res.Points, dataset.WeightedPoint{P: p.Clone(), W: 1 / prob})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func nextPow2(n int) int {
	if n < 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
