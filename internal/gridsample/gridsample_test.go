package gridsample

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/stats"
)

func denseSparse(rng *stats.RNG) *dataset.InMemory {
	var pts []geom.Point
	for i := 0; i < 9000; i++ {
		pts = append(pts, geom.Point{0.2 + 0.05*rng.Float64(), 0.2 + 0.05*rng.Float64()})
	}
	for i := 0; i < 1000; i++ {
		pts = append(pts, geom.Point{0.6 + 0.3*rng.Float64(), 0.6 + 0.3*rng.Float64()})
	}
	return dataset.MustInMemory(pts)
}

func TestBuildGridOnePass(t *testing.T) {
	rng := stats.NewRNG(1)
	ds := denseSparse(rng)
	gr, err := BuildGrid(ds, geom.UnitCube(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Passes() != 1 {
		t.Errorf("grid build took %d passes", ds.Passes())
	}
	if gr.total != ds.Len() {
		t.Errorf("grid total = %d", gr.total)
	}
}

func TestGridCountsDenseCells(t *testing.T) {
	rng := stats.NewRNG(2)
	ds := denseSparse(rng)
	gr, err := BuildGrid(ds, geom.UnitCube(2), Options{CellsPerDim: 20})
	if err != nil {
		t.Fatal(err)
	}
	dense := gr.Count(geom.Point{0.22, 0.22})
	sparse := gr.Count(geom.Point{0.75, 0.75})
	if dense <= sparse {
		t.Errorf("dense cell count %d <= sparse %d", dense, sparse)
	}
	if gr.Density(geom.Point{0.22, 0.22}) <= gr.Density(geom.Point{0.75, 0.75}) {
		t.Error("density ordering wrong")
	}
}

func TestGridClampsOutOfDomain(t *testing.T) {
	rng := stats.NewRNG(3)
	ds := denseSparse(rng)
	gr, err := BuildGrid(ds, geom.UnitCube(2), Options{CellsPerDim: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-domain queries must not panic and map to boundary cells.
	_ = gr.Count(geom.Point{-5, 2})
}

func TestCollisionsUnderTinyMemory(t *testing.T) {
	rng := stats.NewRNG(4)
	ds := denseSparse(rng)
	// 16 buckets for a 64x64 grid: collisions guaranteed.
	gr, err := BuildGrid(ds, geom.UnitCube(2), Options{CellsPerDim: 64, MemoryBytes: 16 * 16})
	if err != nil {
		t.Fatal(err)
	}
	if gr.CollidedBuckets() == 0 {
		t.Error("expected collisions with 16 buckets")
	}
	// Generous memory: no collisions for a modest grid.
	gr2, err := BuildGrid(ds, geom.UnitCube(2), Options{CellsPerDim: 16, MemoryBytes: 5 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if gr2.CollidedBuckets() != 0 {
		t.Errorf("unexpected collisions: %d", gr2.CollidedBuckets())
	}
}

func TestDrawExpectedSize(t *testing.T) {
	rng := stats.NewRNG(5)
	ds := denseSparse(rng)
	for _, e := range []float64{1, 0, -0.5} {
		res, err := Draw(ds, geom.UnitCube(2), Options{Exponent: e, TargetSize: 500}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Points) < 330 || len(res.Points) > 670 {
			t.Errorf("e=%v sample size = %d, want ~500", e, len(res.Points))
		}
		if res.DataPasses != 2 {
			t.Errorf("passes = %d", res.DataPasses)
		}
	}
}

func TestExponentOneIsUniform(t *testing.T) {
	rng := stats.NewRNG(6)
	ds := denseSparse(rng)
	res, err := Draw(ds, geom.UnitCube(2), Options{Exponent: 1, TargetSize: 1000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// With e=1 the probability is b/n for everyone: weights all equal n/b.
	want := float64(ds.Len()) / 1000
	for _, wp := range res.Points {
		if math.Abs(wp.W-want) > 1e-9 {
			t.Fatalf("e=1 weight %v, want %v", wp.W, want)
		}
	}
	// Dense region (90% of points) gets ~90% of the sample.
	dense := 0
	for _, wp := range res.Points {
		if wp.P[0] < 0.4 {
			dense++
		}
	}
	frac := float64(dense) / float64(len(res.Points))
	if frac < 0.85 || frac > 0.95 {
		t.Errorf("e=1 dense fraction = %v, want ~0.9", frac)
	}
}

func TestNegativeExponentOversamplesSparse(t *testing.T) {
	rng := stats.NewRNG(7)
	ds := denseSparse(rng)
	res, err := Draw(ds, geom.UnitCube(2), Options{Exponent: -0.5, TargetSize: 500, CellsPerDim: 20}, rng)
	if err != nil {
		t.Fatal(err)
	}
	sparse := 0
	for _, wp := range res.Points {
		if wp.P[0] > 0.4 {
			sparse++
		}
	}
	frac := float64(sparse) / float64(len(res.Points))
	// Sparse region holds 10% of the data; e=-0.5 must push well above that.
	if frac < 0.3 {
		t.Errorf("e=-0.5 sparse fraction = %v, want oversampled", frac)
	}
}

func TestDrawValidation(t *testing.T) {
	rng := stats.NewRNG(8)
	ds := denseSparse(rng)
	if _, err := Draw(ds, geom.UnitCube(2), Options{TargetSize: 0}, rng); err == nil {
		t.Error("TargetSize=0 accepted")
	}
	if _, err := BuildGrid(ds, geom.UnitCube(3), Options{}); err == nil {
		t.Error("domain dims mismatch accepted")
	}
	if _, err := BuildGrid(ds, geom.UnitCube(2), Options{MemoryBytes: 8}); err == nil {
		t.Error("sub-bucket memory accepted")
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 100: 128, 1024: 1024}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Errorf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestGridAsDensityEstimatorOrdering(t *testing.T) {
	// Density through the grid must preserve the dense/sparse ordering
	// that internal/core relies on when using it as an estimator.
	rng := stats.NewRNG(9)
	ds := denseSparse(rng)
	gr, err := BuildGrid(ds, geom.UnitCube(2), Options{CellsPerDim: 32})
	if err != nil {
		t.Fatal(err)
	}
	// Sum of bucket counts at all probe points stays sane.
	if gr.OccupiedBuckets() == 0 {
		t.Fatal("no occupied buckets")
	}
	if gr.Density(geom.Point{0.21, 0.21}) < 100*gr.Density(geom.Point{0.95, 0.05})+1 {
		// dense blob density vastly exceeds empty-corner density
		t.Error("grid density contrast too low")
	}
}

// TestTopEdgeCellIndexing is the property test for the top boundary: a
// point with any subset of its coordinates exactly on the domain max must
// land in cell g-1 along those dimensions — the same cell as an interior
// point of the top cell — never an out-of-range index that hashes to (and
// pollutes) an unrelated bucket. Swept across dims {1,2,4} and g {1,64},
// over randomized domains (including negative mins and uneven sides).
func TestTopEdgeCellIndexing(t *testing.T) {
	rng := stats.NewRNG(8011)
	for _, d := range []int{1, 2, 4} {
		for _, g := range []int{1, 64} {
			for trial := 0; trial < 25; trial++ {
				min := make(geom.Point, d)
				max := make(geom.Point, d)
				for j := 0; j < d; j++ {
					min[j] = -2 + 3*rng.Float64()
					max[j] = min[j] + 0.1 + 2*rng.Float64()
				}
				domain := geom.Rect{Min: min, Max: max}

				// One interior anchor point in the top corner cell: the
				// midpoint of cell g-1 along every dimension.
				anchor := make(geom.Point, d)
				for j := 0; j < d; j++ {
					anchor[j] = min[j] + domain.Side(j)*(float64(g)-0.5)/float64(g)
				}
				ds := dataset.MustInMemory([]geom.Point{anchor})
				gr, err := BuildGrid(ds, domain, Options{CellsPerDim: g})
				if err != nil {
					t.Fatal(err)
				}
				anchorID := gr.cellID(anchor)

				// Every point with a random subset of coordinates pinned
				// to the exact domain max (the rest in the top cell's
				// interior) must share the anchor's cell id and count.
				for variant := 0; variant < 8; variant++ {
					p := anchor.Clone()
					pinned := 0
					for j := 0; j < d; j++ {
						if variant == 0 || rng.Bernoulli(0.5) {
							p[j] = max[j]
							pinned++
						}
					}
					if pinned == 0 {
						p[0] = max[0] // always test at least one pinned coordinate
					}
					if got := gr.cellID(p); got != anchorID {
						t.Fatalf("d=%d g=%d: top-edge point %v cell id %#x, want top cell %#x",
							d, g, p, got, anchorID)
					}
					if got := gr.Count(p); got != 1 {
						t.Fatalf("d=%d g=%d: top-edge point %v count %d, want the anchor's 1",
							d, g, p, got)
					}
				}
			}
		}
	}
}
