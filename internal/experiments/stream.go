package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/gridsample"
	"repro/internal/kde"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/synth"
)

func init() {
	register("stream", "streaming density at matched memory: CM-sketch vs ASG vs KDE vs hash grid", expStream)
}

// expStream compares the bounded-memory streaming estimators against the
// paper's KDE sampler and the Palmer-Faloutsos hash grid at matched byte
// budgets. Every method feeds the same density-biased sampler (a=1) over
// the 30%-noise workload; the score is how many of the 10 planted
// clusters CURE recovers from the sample. Memory is what the density
// state costs: the sketch rows (plus probe reservoirs) for the streaming
// estimators, kernel centers + bandwidth for KDE (the kd-tree roughly
// doubles this), and the bucket table for the grid. The streaming
// estimators build their state in ONE forward pass over the stream and
// additionally support eviction (sliding windows) — the others need the
// dataset at rest.
func expStream(cfg Config) (*Table, error) {
	total := 100000
	if cfg.Quick {
		total = 20000
	}
	b := total / 50
	tr := trials(cfg)
	budgets := []int{64 << 10, 256 << 10}
	if cfg.Quick {
		budgets = budgets[:1]
	}
	t := &Table{
		Columns: []string{"method", "budget", "bytes", "found (of 10)", "sample"},
		Notes: []string{
			fmt.Sprintf("2-d, %d base points + 30%% noise, a=1, target sample %d, %d trial(s)", total, b, tr),
			"bytes = density state actually allocated at that budget (KDE excludes its kd-tree)",
			"sketch and ASG build in one stream pass and support window eviction; KDE and grid need the data at rest",
		},
	}

	const d = 2
	for _, budget := range budgets {
		type variant struct {
			name   string
			sample func(l *synth.Labeled, rng *stats.RNG) (pts int, bytes int, found int, err error)
		}
		sketchVariant := func(name string, shifts int) variant {
			return variant{name, func(l *synth.Labeled, rng *stats.RNG) (int, int, int, error) {
				// 8 bytes per counter, depth rows per shift; the probe
				// reservoir rides on top and is counted by Bytes().
				depth := 4
				width := budget / (8 * depth * shifts)
				est, err := stream.New(l.Domain, stream.Options{
					Width: width, Depth: depth, Shifts: shifts, Seed: rng.Uint64(),
				})
				if err != nil {
					return 0, 0, 0, err
				}
				if err := est.Observe(l.Points); err != nil {
					return 0, 0, 0, err
				}
				s, err := core.Draw(l.Dataset(), est, core.Options{Alpha: 1, TargetSize: b}, rng)
				if err != nil {
					return 0, 0, 0, err
				}
				found, err := clusterAndScore(l, s.PlainPoints(), 10)
				return len(s.Points), est.Bytes(), found, err
			}}
		}
		variants := []variant{
			sketchVariant("sketch-DBS", 1),
			sketchVariant("asg-DBS", 4),
			{"kde-DBS", func(l *synth.Labeled, rng *stats.RNG) (int, int, int, error) {
				// (d+1) float64s per kernel: center + bandwidth share.
				kernels := budget / ((d + 1) * 8)
				est, err := kde.Build(l.Dataset(), kde.Options{NumKernels: kernels}, rng)
				if err != nil {
					return 0, 0, 0, err
				}
				s, err := core.Draw(l.Dataset(), est, core.Options{Alpha: 1, TargetSize: b}, rng)
				if err != nil {
					return 0, 0, 0, err
				}
				found, err := clusterAndScore(l, s.PlainPoints(), 10)
				return len(s.Points), kernels * (d + 1) * 8, found, err
			}},
			{"gridsample", func(l *synth.Labeled, rng *stats.RNG) (int, int, int, error) {
				res, err := gridsample.Draw(l.Dataset(), l.Domain, gridsample.Options{
					Exponent: 2, TargetSize: b, MemoryBytes: budget,
				}, rng)
				if err != nil {
					return 0, 0, 0, err
				}
				pts := make([]geom.Point, len(res.Points))
				for i, wp := range res.Points {
					pts[i] = wp.P
				}
				if len(pts) == 0 {
					return 0, 0, 0, fmt.Errorf("experiments: empty grid sample")
				}
				found, err := clusterAndScore(l, pts, 10)
				return len(pts), budget, found, err
			}},
		}
		for _, v := range variants {
			var sampleSum, byteSum int
			found, err := avgOver(cfg, tr, func(rng *stats.RNG) (int, error) {
				l := noiseWorkload(d, total, 0.30, rng)
				n, bytes, fnd, err := v.sample(l, rng)
				if err != nil {
					return 0, err
				}
				sampleSum += n
				byteSum = bytes
				return fnd, nil
			})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				v.name,
				fmt.Sprintf("%dKiB", budget>>10),
				itoa(byteSum),
				ftoa(found),
				itoa(sampleSum / tr),
			})
		}
	}
	return t, nil
}
