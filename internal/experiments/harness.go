// Package experiments regenerates every table and figure of the paper's
// evaluation (§4). Each experiment is addressed by the id used in
// DESIGN.md's experiment index (fig2 … fig7, thm1, scale, outliers, geo,
// samplesize, and the ablation-* extras) and produces a Table whose rows
// mirror the series the paper plots.
//
// Experiments run in two profiles: the full profile reproduces the paper's
// workload sizes (hundreds of thousands to a million points), while the
// quick profile shrinks cardinalities so the whole suite can run inside
// the test budget. The shapes of the results — who wins, by what factor,
// where the curves cross — are the reproduction target, not absolute
// numbers (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Config selects the execution profile.
type Config struct {
	// Seed drives all randomness; runs are reproducible per seed.
	Seed uint64
	// Quick shrinks dataset and sweep sizes for tests.
	Quick bool
	// Parallelism bounds the workers for the experiments that exercise
	// the parallel execution layer (0 = all CPUs, 1 = serial). Results
	// never depend on it; only wall-clock does.
	Parallelism int
	// Obs, when non-nil, is threaded into the pipeline stages of the
	// experiments that support it (dbsbench -metrics). Results never
	// depend on it.
	Obs *obs.Recorder
}

// BenchResult is one benchmark-style measurement in the BENCH_*.json
// schema (see BENCH_obs.json) that dbsbench -json emits. Speedup, where
// set, is relative to the experiment's own reference row (values below 1
// mean slower — an overhead).
type BenchResult struct {
	Name         string  `json:"name"`
	Iters        int     `json:"iters"`
	NsPerOp      int64   `json:"ns_per_op"`
	PointsPerSec float64 `json:"points_per_sec,omitempty"`
	Speedup      float64 `json:"speedup,omitempty"`
}

// Table is a formatted experiment result.
type Table struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`
	// Benchmarks carries the machine-readable form of the timing
	// experiments' measurements for dbsbench -json.
	Benchmarks []BenchResult `json:"benchmarks,omitempty"`
	// Notes records parameter choices and deviations worth surfacing.
	Notes []string `json:"notes,omitempty"`
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// runner is one registered experiment.
type runner struct {
	title string
	fn    func(Config) (*Table, error)
}

var registry = map[string]runner{}

func register(id, title string, fn func(Config) (*Table, error)) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = runner{title: title, fn: fn}
}

// IDs returns all registered experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns the registered title for an id ("" when unknown).
func Title(id string) string { return registry[id].title }

// Run executes the experiment with the given id.
func Run(id string, cfg Config) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return r.fn(cfg)
}
