package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/cure"
	"repro/internal/dataset"
	"repro/internal/kde"
	"repro/internal/stats"
	"repro/internal/synth"
)

func init() {
	register("fig2", "clustering runtime: biased vs uniform sampling (Fig. 2)", fig2)
	register("fig3", "cluster discovery on the DS1 lookalike (Fig. 3)", fig3)
	register("fig4a", "found clusters vs noise, 2-D, 2% sample (Fig. 4a)", figNoise(2, 0.02, false))
	register("fig4b", "found clusters vs noise, 2-D, 4% sample (Fig. 4b)", figNoise(2, 0.04, false))
	register("fig4c", "found clusters vs noise, 3-D, 2% sample (Fig. 4c)", figNoise(3, 0.02, false))
	register("fig5a", "variable-density clusters vs sample size, 2-D, 10% noise (Fig. 5a)", figVarDensity(2, 0.10))
	register("fig5b", "variable-density clusters vs sample size, 2-D, 20% noise (Fig. 5b)", figVarDensity(2, 0.20))
	register("fig5c", "variable-density clusters vs sample size, 5-D, 10% noise, grid baseline (Fig. 5c)", fig5c)
	register("fig6", "found clusters vs noise, 3-D, 2% sample, with grid baseline (Fig. 6)", figNoise(3, 0.02, true))
	register("fig7", "found clusters vs number of kernels (Fig. 7)", fig7)
}

// trials returns how many seeds each cell is averaged over.
func trials(cfg Config) int {
	if cfg.Quick {
		return 1
	}
	return 3
}

// avgOver runs fn for `tr` seeds derived from cfg.Seed and returns the
// mean of the returned counts.
func avgOver(cfg Config, tr int, fn func(rng *stats.RNG) (int, error)) (float64, error) {
	var sum int
	for t := 0; t < tr; t++ {
		rng := stats.NewRNG(cfg.Seed + uint64(t)*7919)
		v, err := fn(rng)
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return float64(sum) / float64(tr), nil
}

// noiseWorkload builds the Fig. 4/6 dataset: 10 compact clusters with
// mildly varying densities (3x) and sizes (5x) plus fn·n uniform noise.
func noiseWorkload(d, total int, fn float64, rng *stats.RNG) *synth.Labeled {
	return synth.VariedClustersSide(10, d, total, 3, 5, fn, 0.1, rng)
}

// varDensityWorkload builds the Fig. 5 dataset: densities spanning 10x,
// sizes spanning 100x (small clusters are also sparse, and small enough
// that a 1% uniform sample catches only a handful of their points). The
// largest cluster's box volume is held constant across dimensions —
// keeping the side length fixed instead would collapse the volume
// exponentially with d and blow the cluster/noise density contrast up to
// the point where f^a weighting becomes degenerate.
func varDensityWorkload(d, total int, fn float64, rng *stats.RNG) *synth.Labeled {
	side := math.Pow(0.0144, 1/float64(d)) // 0.12 in 2-d
	return synth.VariedClustersSide(10, d, total, 10, 100, fn, side, rng)
}

// figNoise produces the Fig. 4 family (and Fig. 6 when withGrid is set):
// found clusters vs noise fraction for biased (a=1), uniform, and BIRCH.
func figNoise(d int, sampleFrac float64, withGrid bool) func(Config) (*Table, error) {
	return func(cfg Config) (*Table, error) {
		total := 100000
		noises := []float64{0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80}
		if cfg.Quick {
			total = 20000
			noises = []float64{0.10, 0.40, 0.80}
		}
		b := int(sampleFrac * float64(total))
		tr := trials(cfg)
		cols := []string{"noise%", "biased a=1", "uniform/CURE", "BIRCH"}
		if withGrid {
			// The grid baseline's noise-robust mode mirrors a=1: expected
			// per-cell draw ∝ n_i^e with e > 1 oversamples dense cells.
			cols = append(cols, "grid e=2")
		}
		t := &Table{
			Columns: cols,
			Notes: []string{
				fmt.Sprintf("%d-d, %d base points, 10 clusters (density 3x, size 5x), sample %d, %d trial(s)", d, total, b, tr),
			},
		}
		for _, fn := range noises {
			bs, err := avgOver(cfg, tr, func(rng *stats.RNG) (int, error) {
				l := noiseWorkload(d, total, fn, rng)
				v, _, err := biasedFound(l, 1, b, kde.DefaultNumKernels, 10, rng)
				return v, err
			})
			if err != nil {
				return nil, err
			}
			rs, err := avgOver(cfg, tr, func(rng *stats.RNG) (int, error) {
				l := noiseWorkload(d, total, fn, rng)
				v, _, err := uniformFound(l, b, 10, rng)
				return v, err
			})
			if err != nil {
				return nil, err
			}
			bi, err := avgOver(cfg, tr, func(rng *stats.RNG) (int, error) {
				l := noiseWorkload(d, total, fn, rng)
				return birchFound(l, b, 10)
			})
			if err != nil {
				return nil, err
			}
			row := []string{ftoa(fn * 100), ftoa(bs), ftoa(rs), ftoa(bi)}
			if withGrid {
				gr, err := avgOver(cfg, tr, func(rng *stats.RNG) (int, error) {
					l := noiseWorkload(d, total, fn, rng)
					v, _, err := gridFound(l, 2, b, 10, rng)
					return v, err
				})
				if err != nil {
					return nil, err
				}
				row = append(row, ftoa(gr))
			}
			t.Rows = append(t.Rows, row)
		}
		return t, nil
	}
}

// figVarDensity produces the Fig. 5(a)/(b) sweeps: found clusters vs
// sample size for a = -0.5, a = -0.25, uniform, and BIRCH.
func figVarDensity(d int, noise float64) func(Config) (*Table, error) {
	return func(cfg Config) (*Table, error) {
		total := 100000
		fracs := []float64{0.0025, 0.005, 0.01, 0.02, 0.03, 0.05}
		if cfg.Quick {
			total = 20000
			fracs = []float64{0.01, 0.05}
		}
		tr := trials(cfg)
		t := &Table{
			Columns: []string{"sample%", "biased a=-0.5", "biased a=-0.25", "uniform/CURE", "BIRCH"},
			Notes: []string{
				fmt.Sprintf("%d-d, %d base points, 10 clusters (density 10x, size 100x), %.0f%% noise, %d trial(s)", d, total, noise*100, tr),
			},
		}
		for _, frac := range fracs {
			b := int(frac * float64(total))
			if b < 20 {
				b = 20
			}
			cell := func(alpha float64) (float64, error) {
				return avgOver(cfg, tr, func(rng *stats.RNG) (int, error) {
					l := varDensityWorkload(d, total, noise, rng)
					v, _, err := biasedFoundProfile(l, alpha, b, kde.DefaultNumKernels, 10, rng, noisyProfile(alpha))
					return v, err
				})
			}
			b05, err := cell(-0.5)
			if err != nil {
				return nil, err
			}
			b025, err := cell(-0.25)
			if err != nil {
				return nil, err
			}
			rs, err := avgOver(cfg, tr, func(rng *stats.RNG) (int, error) {
				l := varDensityWorkload(d, total, noise, rng)
				v, _, err := uniformFound(l, b, 10, rng)
				return v, err
			})
			if err != nil {
				return nil, err
			}
			bi, err := avgOver(cfg, tr, func(rng *stats.RNG) (int, error) {
				l := varDensityWorkload(d, total, noise, rng)
				return birchFound(l, b, 10)
			})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				ftoa(frac * 100), ftoa(b05), ftoa(b025), ftoa(rs), ftoa(bi),
			})
		}
		return t, nil
	}
}

// fig5c is the 5-D variable-density sweep including the Palmer-Faloutsos
// grid baseline at e = -0.5.
func fig5c(cfg Config) (*Table, error) {
	total := 100000
	fracs := []float64{0.0025, 0.005, 0.01, 0.015, 0.02, 0.025}
	if cfg.Quick {
		total = 20000
		fracs = []float64{0.01, 0.025}
	}
	tr := trials(cfg)
	const d = 5
	t := &Table{
		Columns: []string{"sample%", "biased a=-0.5", "uniform/CURE", "grid e=-0.5"},
		Notes: []string{
			fmt.Sprintf("5-d, %d base points, 10 clusters (density 10x, size 100x), 10%% noise, grid hash limited to 5MB, %d trial(s)", total, tr),
		},
	}
	for _, frac := range fracs {
		b := int(frac * float64(total))
		if b < 20 {
			b = 20
		}
		bs, err := avgOver(cfg, tr, func(rng *stats.RNG) (int, error) {
			l := varDensityWorkload(d, total, 0.10, rng)
			v, _, err := biasedFoundProfile(l, -0.5, b, kde.DefaultNumKernels, 10, rng, noisyProfile(-0.5))
			return v, err
		})
		if err != nil {
			return nil, err
		}
		rs, err := avgOver(cfg, tr, func(rng *stats.RNG) (int, error) {
			l := varDensityWorkload(d, total, 0.10, rng)
			v, _, err := uniformFound(l, b, 10, rng)
			return v, err
		})
		if err != nil {
			return nil, err
		}
		gr, err := avgOver(cfg, tr, func(rng *stats.RNG) (int, error) {
			l := varDensityWorkload(d, total, 0.10, rng)
			v, _, err := gridFoundProfile(l, -0.5, b, 10, rng, noisyProfile(-0.5))
			return v, err
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{ftoa(frac * 100), ftoa(bs), ftoa(rs), ftoa(gr)})
	}
	return t, nil
}

// fig2 measures the end-to-end clustering runtime against the sample
// size: biased sampling pays a linear estimator/sampling cost and then
// runs the quadratic hierarchical algorithm on the sample, so the curves
// are quadratic with biased shifted up by the linear cost.
func fig2(cfg Config) (*Table, error) {
	total := 1000000
	sizes := []int{1000, 3000, 5000, 7000, 9000}
	if cfg.Quick {
		total = 50000
		sizes = []int{500, 1000}
	}
	rng := stats.NewRNG(cfg.Seed)
	l := synth.EqualClusters(10, 2, total, 0.10, rng)
	ds := l.Dataset()
	t := &Table{
		Columns: []string{"samples", "BS-CURE sec", "RS-CURE sec", "BS sampling sec", "CURE-on-sample sec"},
		Notes: []string{
			fmt.Sprintf("2-d, %d points, 1000 kernels; BS time includes KDE build + both sampling passes", total),
			"the paper sweeps to 19000 samples; the quadratic clustering term dominates equally there",
		},
	}
	for _, b := range sizes {
		var bsSample, bsCluster, rsTotal float64
		dSample, err := timed(func() error {
			est, err := kde.Build(ds, kde.Options{NumKernels: 1000}, rng)
			if err != nil {
				return err
			}
			s, err := core.Draw(ds, est, core.Options{Alpha: 0.5, TargetSize: b}, rng)
			if err != nil {
				return err
			}
			pts := s.PlainPoints()
			dCluster, err := timed(func() error {
				_, cerr := cure.Run(pts, cureOptions(10, len(pts)))
				return cerr
			})
			bsCluster = dCluster.Seconds()
			return err
		})
		if err != nil {
			return nil, err
		}
		bsSample = dSample.Seconds() - bsCluster

		dRS, err := timed(func() error {
			pts, err := dataset.Bernoulli(ds, b, rng)
			if err != nil {
				return err
			}
			_, err2 := cure.Run(pts, cureOptions(10, len(pts)))
			return err2
		})
		if err != nil {
			return nil, err
		}
		rsTotal = dRS.Seconds()

		t.Rows = append(t.Rows, []string{
			itoa(b),
			fmt.Sprintf("%.2f", bsSample+bsCluster),
			fmt.Sprintf("%.2f", rsTotal),
			fmt.Sprintf("%.2f", bsSample),
			fmt.Sprintf("%.2f", bsCluster),
		})
	}
	return t, nil
}

// fig3 reproduces the qualitative DS1 experiment: a 1000-point biased
// sample (a=0.5) recovers all five clusters while a 1000-point uniform
// sample misses some, and uniform needs several times the sample to catch
// up — the Theorem 1 effect. Our CURE implementation's noise elimination
// is more robust than whatever the paper used, so the uniform failure at
// 1000 samples only shows once the background noise is substantial; fig3
// therefore runs DS1 with 30% noise (see EXPERIMENTS.md).
func fig3(cfg Config) (*Table, error) {
	total := 100000
	tr := 5 // extra trials: single runs of this qualitative contrast are noisy
	if cfg.Quick {
		total = 20000
		tr = 1
	}
	t := &Table{
		Columns: []string{"method", "sample", "clusters found (of 5)"},
		Notes: []string{
			fmt.Sprintf("DS1 lookalike, %d points, 5 clusters of contrasting shape/density, 30%% noise, %d trial(s)", total, tr),
		},
	}
	type variant struct {
		name  string
		b     int
		alpha float64
		bias  bool
	}
	for _, v := range []variant{
		{"biased a=0.5", 1000, 0.5, true},
		{"uniform", 1000, 0, false},
		{"uniform", 2000, 0, false},
		{"uniform", 4000, 0, false},
	} {
		v := v
		found, err := avgOver(cfg, tr, func(rng *stats.RNG) (int, error) {
			l := synth.DS1(total, 0.30, rng)
			// Same clustering profile for every row (§4: "the same
			// algorithm ... to make the comparison objective"); the 30%
			// noise level wants the slightly harder mild trim.
			if v.bias {
				got, _, err := biasedFoundProfile(l, v.alpha, v.b, kde.DefaultNumKernels, 5, rng, mildProfile(300))
				return got, err
			}
			got, _, err := uniformFoundProfile(l, v.b, 5, rng, mildProfile(300))
			return got, err
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{v.name, itoa(v.b), ftoa(found)})
	}
	return t, nil
}

// fig7 sweeps the number of kernels: clustering quality rises steeply and
// then plateaus, supporting the paper's ks=1000 recommendation.
func fig7(cfg Config) (*Table, error) {
	total := 100000
	kernels := []int{100, 200, 300, 400, 500, 700, 900, 1100, 1200}
	b := 500
	if cfg.Quick {
		total = 20000
		kernels = []int{100, 400, 1200}
	}
	tr := trials(cfg)
	t := &Table{
		Columns: []string{"kernels", "DS1-50% a=1", "DS2-20% a=-0.25"},
		Notes: []string{
			fmt.Sprintf("DS1: %d pts, 10 equal clusters + 50%% noise; DS2: %d pts, 10 clusters (10x density, 20x size) + 20%% noise; 500 samples, %d trial(s)", total, total, tr),
		},
	}
	for _, ks := range kernels {
		ds1, err := avgOver(cfg, tr, func(rng *stats.RNG) (int, error) {
			l := synth.EqualClusters(10, 2, total, 0.50, rng)
			v, _, err := biasedFound(l, 1, b, ks, 10, rng)
			return v, err
		})
		if err != nil {
			return nil, err
		}
		ds2, err := avgOver(cfg, tr, func(rng *stats.RNG) (int, error) {
			l := varDensityWorkload(2, total, 0.20, rng)
			v, _, err := biasedFound(l, -0.25, b, ks, 10, rng)
			return v, err
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{itoa(ks), ftoa(ds1), ftoa(ds2)})
	}
	return t, nil
}
