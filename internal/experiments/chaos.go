package experiments

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/synth"
)

func init() {
	register("chaos", "serving under deterministic fault injection: availability and bit-stability", chaosExp)
}

// chaosExp replays one request mix against three fault profiles — none,
// light, heavy — injected into the dataset scans and both build stages of
// an httptest server, with retry/backoff and stale fallback enabled. The
// fault-free profile provides the reference bytes; for the faulted
// profiles the table reports how many requests still succeeded (and how
// many of those rode the stale ring), how many were shed or failed, how
// many retries and injected faults it took, and — the core serving
// guarantee — whether every successful response stayed bit-identical to
// the fault-free run.
func chaosExp(cfg Config) (*Table, error) {
	n := 40000
	rounds := 48
	if cfg.Quick {
		n = 10000
		rounds = 16
	}
	setup := stats.NewRNG(cfg.Seed)
	l := synth.EqualClusters(8, 3, n, 0.10, setup)
	ds := l.Dataset()

	// Four request identities, repeated round-robin: repeats exercise the
	// cache, and the budget below only fits two of them, so identities
	// evict each other through the stale ring all run long.
	seedOf := func(i int) uint64 { return 101 + uint64(i%4) }

	type tally struct {
		ok, stale, shed, failed int
		mismatch                int
		retries, injected       int64
	}
	profiles := []struct {
		name string
		fc   *faults.Config
	}{
		{"none", nil},
		{"light", &faults.Config{PError: 0.05, PDelay: 0.05, PPartial: 0.03, PCancel: 0.02, MaxDelay: 500 * time.Microsecond}},
		{"heavy", &faults.Config{PError: 0.15, PDelay: 0.10, PPartial: 0.10, PCancel: 0.05, MaxDelay: 500 * time.Microsecond}},
	}

	ref := make(map[uint64][]byte)
	tallies := make([]tally, len(profiles))
	for pi, prof := range profiles {
		var inj *faults.Injector
		if prof.fc != nil {
			fc := *prof.fc
			fc.Seed = cfg.Seed + uint64(pi)
			inj = faults.New(fc)
		}
		rec := obs.New()
		srv := server.New(server.Config{
			Parallelism:  cfg.Parallelism,
			CacheBytes:   96 << 10,
			StaleOK:      true,
			Retry:        2,
			RetryBackoff: time.Millisecond,
			Deadline:     30 * time.Second,
			Faults:       inj,
			Rec:          rec,
		})
		if err := srv.Registry().RegisterDataset("bench", faults.Wrap(ds, inj.Point("dataset"))); err != nil {
			return nil, err
		}
		ts := httptest.NewServer(srv.Handler())

		tl := &tallies[pi]
		for i := 0; i < rounds; i++ {
			seed := seedOf(i)
			body := fmt.Sprintf(`{"dataset":"bench","alpha":1,"size":400,"kernels":128,"seed":%d}`, seed)
			resp, err := http.Post(ts.URL+"/v1/sample", "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				ts.Close()
				return nil, err
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				ts.Close()
				return nil, err
			}
			switch resp.StatusCode {
			case http.StatusOK:
				tl.ok++
				if resp.Header.Get("X-DBS-Cache") == "stale" {
					tl.stale++
				}
				if prof.fc == nil {
					ref[seed] = data
				} else if !bytes.Equal(data, ref[seed]) {
					tl.mismatch++
				}
			case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
				tl.shed++
			default:
				tl.failed++
			}
		}
		ts.Close()
		tl.retries = rec.Counter(obs.CtrRetries).Value()
		tl.injected = inj.Injected()
		if prof.fc == nil && tl.ok != rounds {
			return nil, fmt.Errorf("chaos: fault-free profile had %d/%d successes", tl.ok, rounds)
		}
	}

	t := &Table{
		Columns: []string{"profile", "requests", "ok", "stale", "shed/failed", "faults", "retries", "bit-identical"},
		Notes: []string{
			fmt.Sprintf("POST /v1/sample, n = %d, d = 3, b = 400, 128 kernels, %d requests over 4 identities per profile", n, rounds),
			"faults injected into dataset scans and both build stages; retry = 2, stale fallback on",
			"bit-identical: every 200 response matches the fault-free profile's bytes for the same request",
		},
	}
	for pi, prof := range profiles {
		tl := &tallies[pi]
		ident := "yes"
		if tl.mismatch > 0 {
			ident = fmt.Sprintf("NO (%d)", tl.mismatch)
		}
		t.Rows = append(t.Rows, []string{
			prof.name,
			fmt.Sprintf("%d", rounds),
			fmt.Sprintf("%d", tl.ok),
			fmt.Sprintf("%d", tl.stale),
			fmt.Sprintf("%d", tl.shed+tl.failed),
			fmt.Sprintf("%d", tl.injected),
			fmt.Sprintf("%d", tl.retries),
			ident,
		})
		t.Benchmarks = append(t.Benchmarks, BenchResult{
			Name:  "Chaos_" + prof.name + "_ok",
			Iters: tl.ok,
		})
	}
	return t, nil
}
