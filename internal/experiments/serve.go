package experiments

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/synth"
)

func init() {
	register("serve", "serving layer: cold vs cache-hit /v1/sample latency", serveExp)
}

// serveExp measures what the artifact cache buys an HTTP client of
// /v1/sample. An httptest server is loaded with a synthetic clustered
// dataset; "cold" requests vary the seed so every one misses the cache and
// pays the full pipeline (estimator build + two sampling passes), while
// "hit" requests repeat one seed so everything after the first is served
// from the cached sample artifact. The table reports p50/p99 over the
// request latencies; the speedup column (cold p50 over hit p50) is the
// cache's effect on the median request.
func serveExp(cfg Config) (*Table, error) {
	n := 100000
	reqs := 30
	if cfg.Quick {
		n = 20000
		reqs = 10
	}
	setup := stats.NewRNG(cfg.Seed)
	l := synth.EqualClusters(10, 4, n, 0.10, setup)

	srv := server.New(server.Config{
		Parallelism: cfg.Parallelism,
		Rec:         cfg.Obs,
	})
	if err := srv.Registry().RegisterDataset("bench", l.Dataset()); err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(seed uint64) (time.Duration, error) {
		body := fmt.Sprintf(`{"dataset":"bench","alpha":1,"size":1000,"kernels":500,"seed":%d}`, seed)
		start := time.Now()
		resp, err := http.Post(ts.URL+"/v1/sample", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("serve: /v1/sample returned %d", resp.StatusCode)
		}
		return time.Since(start), nil
	}

	// Cold: a fresh seed per request — every one is a cache miss. Seeds
	// offset past the hit seed so the two phases never collide.
	cold := make([]float64, 0, reqs)
	for i := 0; i < reqs; i++ {
		d, err := post(1000 + uint64(i))
		if err != nil {
			return nil, err
		}
		cold = append(cold, float64(d.Nanoseconds()))
	}
	// Hit: one warming request, then repeats of the same seed are served
	// from the cached artifact without a single dataset pass.
	if _, err := post(1); err != nil {
		return nil, err
	}
	hit := make([]float64, 0, reqs)
	for i := 0; i < reqs; i++ {
		d, err := post(1)
		if err != nil {
			return nil, err
		}
		hit = append(hit, float64(d.Nanoseconds()))
	}

	coldP50, coldP99 := stats.Quantile(cold, 0.50), stats.Quantile(cold, 0.99)
	hitP50, hitP99 := stats.Quantile(hit, 0.50), stats.Quantile(hit, 0.99)

	t := &Table{
		Columns: []string{"phase", "requests", "p50 ms", "p99 ms", "speedup"},
		Notes: []string{
			fmt.Sprintf("POST /v1/sample, n = %d, d = 4, a = 1, b = 1000, 500 kernels, %d requests per phase", n, reqs),
			"cold = unique seed per request (all misses); hit = repeated seed (cached sample artifact)",
			"speedup is cold p50 over hit p50 — what the cache saves the median request",
		},
	}
	ms := func(ns float64) string { return fmt.Sprintf("%.3f", ns/1e6) }
	t.Rows = append(t.Rows,
		[]string{"cold", fmt.Sprintf("%d", reqs), ms(coldP50), ms(coldP99), "1.000x"},
		[]string{"cache-hit", fmt.Sprintf("%d", reqs), ms(hitP50), ms(hitP99), fmt.Sprintf("%.3fx", coldP50/hitP50)},
	)
	t.Benchmarks = append(t.Benchmarks,
		BenchResult{Name: "Serve_sample_cold_p50", Iters: reqs, NsPerOp: int64(coldP50), PointsPerSec: float64(n) / (coldP50 / 1e9), Speedup: 1},
		BenchResult{Name: "Serve_sample_cold_p99", Iters: reqs, NsPerOp: int64(coldP99), PointsPerSec: float64(n) / (coldP99 / 1e9)},
		BenchResult{Name: "Serve_sample_hit_p50", Iters: reqs, NsPerOp: int64(hitP50), PointsPerSec: float64(n) / (hitP50 / 1e9), Speedup: coldP50 / hitP50},
		BenchResult{Name: "Serve_sample_hit_p99", Iters: reqs, NsPerOp: int64(hitP99), PointsPerSec: float64(n) / (hitP99 / 1e9), Speedup: coldP99 / hitP99},
	)
	return t, nil
}
