package experiments

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/synth"
)

func init() {
	register("shard", "sharded serving: /v1/sample across shard counts, HTTP workers, hedging", shardExp)
}

// shardExp measures the scatter-gather serving path against single-node
// across in-process shard counts {1,2,4,8} and a 2-worker HTTP mode, and
// reports the hedge-fire rate of a delay-injected HTTP run. Every mode's
// response bytes are asserted identical to single-node before any timing
// is reported — parity first, performance second. All modes here run on
// one machine, so in-process sharding reports the protocol's overhead
// (densities are evaluated once per phase — workers are stateless and
// cannot share the normalization pass's weight cache with the coin pass);
// the HTTP rows additionally pay JSON transport. The scale-out win is
// distributing those same RPCs across machines, which a single-box
// benchmark cannot show — the honest numbers are the cost side of that
// trade.
func shardExp(cfg Config) (*Table, error) {
	n := 100000
	reqs := 20
	if cfg.Quick {
		n = 20000
		reqs = 6
	}
	setup := stats.NewRNG(cfg.Seed)
	l := synth.EqualClusters(10, 4, n, 0.10, setup)

	// workers builds w HTTP shard-worker servers over identical data and
	// returns their peer map plus a shutdown func.
	workers := func(w int) (map[string]string, func(), error) {
		peers := make(map[string]string, w)
		var closers []func()
		for i := 0; i < w; i++ {
			name := fmt.Sprintf("w%d", i)
			ws := server.New(server.Config{Parallelism: cfg.Parallelism, ShardOf: name})
			if err := ws.Registry().RegisterDataset("bench", l.Dataset()); err != nil {
				for _, c := range closers {
					c()
				}
				return nil, nil, err
			}
			ts := httptest.NewServer(ws.Handler())
			closers = append(closers, ts.Close)
			peers[name] = ts.URL
		}
		return peers, func() {
			for _, c := range closers {
				c()
			}
		}, nil
	}

	type mode struct {
		name string
		cfg  server.Config
		http int // HTTP worker count, 0 = in-process/single
	}
	modes := []mode{
		{"single-node", server.Config{}, 0},
		{"inproc-1", server.Config{ShardWorkers: 1}, 0},
		{"inproc-2", server.Config{ShardWorkers: 2}, 0},
		{"inproc-4", server.Config{ShardWorkers: 4}, 0},
		{"inproc-8", server.Config{ShardWorkers: 8}, 0},
		{"http-2", server.Config{}, 2},
	}

	post := func(url string, seed uint64) ([]byte, time.Duration, error) {
		body := fmt.Sprintf(`{"dataset":"bench","alpha":1,"size":1000,"kernels":300,"seed":%d}`, seed)
		start := time.Now()
		resp, err := http.Post(url+"/v1/sample", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return nil, 0, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, 0, fmt.Errorf("shard: /v1/sample returned %d: %s", resp.StatusCode, data)
		}
		return data, time.Since(start), nil
	}

	t := &Table{
		Columns: []string{"mode", "requests", "p50 ms", "p99 ms", "vs single-node", "parity"},
		Notes: []string{
			fmt.Sprintf("POST /v1/sample, n = %d, d = 4, a = 1, b = 1000, 300 kernels, %d cold requests per mode", n, reqs),
			"every mode's bytes are asserted identical to single-node (cold, fresh seed per request)",
			"all modes share one machine: in-process rows price the two-phase protocol (no cross-phase weight cache), http rows add JSON transport; distribution across machines is what the RPC cost buys",
			"hedge-fire rate measured separately on http-2 with injected RPC delays and a 200µs hedge budget",
		},
	}
	ms := func(ns float64) string { return fmt.Sprintf("%.3f", ns/1e6) }

	var basisP50 float64
	var refBytes [][]byte
	for _, m := range modes {
		sc := m.cfg
		sc.Parallelism = cfg.Parallelism
		sc.Rec = cfg.Obs
		var stop func()
		if m.http > 0 {
			peers, closeAll, err := workers(m.http)
			if err != nil {
				return nil, err
			}
			stop = closeAll
			sc.ShardPeers = peers
		}
		srv := server.New(sc)
		if err := srv.Registry().RegisterDataset("bench", l.Dataset()); err != nil {
			return nil, err
		}
		ts := httptest.NewServer(srv.Handler())

		lat := make([]float64, 0, reqs)
		parity := true
		for i := 0; i < reqs; i++ {
			data, d, err := post(ts.URL, 3000+uint64(i))
			if err != nil {
				ts.Close()
				if stop != nil {
					stop()
				}
				return nil, fmt.Errorf("%s: %w", m.name, err)
			}
			lat = append(lat, float64(d.Nanoseconds()))
			if refBytes == nil || len(refBytes) <= i {
				refBytes = append(refBytes, data)
			} else if !bytes.Equal(data, refBytes[i]) {
				parity = false
			}
		}
		ts.Close()
		if stop != nil {
			stop()
		}
		if !parity {
			return nil, fmt.Errorf("shard: mode %s bytes diverged from single-node", m.name)
		}

		p50, p99 := stats.Quantile(lat, 0.50), stats.Quantile(lat, 0.99)
		rel := "1.000x"
		speed := 1.0
		if basisP50 == 0 {
			basisP50 = p50
		} else {
			speed = basisP50 / p50
			rel = fmt.Sprintf("%.3fx", speed)
		}
		t.Rows = append(t.Rows, []string{
			m.name, fmt.Sprintf("%d", reqs), ms(p50), ms(p99), rel, "ok",
		})
		t.Benchmarks = append(t.Benchmarks, BenchResult{
			Name:         "Shard_sample_" + m.name + "_p50",
			Iters:        reqs,
			NsPerOp:      int64(p50),
			PointsPerSec: float64(n) / (p50 / 1e9),
			Speedup:      speed,
		})
	}

	// Hedge-fire rate: http-2 again, with delay faults injected into the
	// coordinator's RPC attempts and a small hedge budget. The bytes are
	// still checked — hedging must change latency only.
	peers, closeAll, err := workers(2)
	if err != nil {
		return nil, err
	}
	defer closeAll()
	rec := obs.New()
	srv := server.New(server.Config{
		Parallelism: cfg.Parallelism,
		Rec:         rec,
		ShardPeers:  peers,
		ShardHedge:  200 * time.Microsecond,
		Faults: faults.New(faults.Config{
			Seed:     cfg.Seed,
			PDelay:   0.5,
			MaxDelay: 2 * time.Millisecond,
		}),
	})
	if err := srv.Registry().RegisterDataset("bench", l.Dataset()); err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for i := 0; i < reqs; i++ {
		data, _, err := post(ts.URL, 3000+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("hedged http-2: %w", err)
		}
		if !bytes.Equal(data, refBytes[i]) {
			return nil, fmt.Errorf("shard: hedged run bytes diverged from single-node")
		}
	}
	rpcs := rec.Counter(shard.CtrRPCs).Value()
	hedges := rec.Counter(shard.CtrHedges).Value()
	rate := 0.0
	if rpcs > 0 {
		rate = float64(hedges) / float64(rpcs)
	}
	t.Rows = append(t.Rows, []string{
		"http-2 hedged", fmt.Sprintf("%d", reqs),
		fmt.Sprintf("hedges=%d", hedges), fmt.Sprintf("rpcs=%d", rpcs),
		fmt.Sprintf("fire rate %.3f", rate), "ok",
	})
	t.Benchmarks = append(t.Benchmarks, BenchResult{
		Name:    "Shard_hedge_fire_rate_x1000",
		Iters:   int(rpcs),
		NsPerOp: int64(rate * 1000),
	})
	return t, nil
}
