package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/geom"
	"repro/internal/kde"
	"repro/internal/outlier"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/theory"
)

func init() {
	register("thm1", "Theorem 1: uniform vs biased sample-size bounds", thm1)
	register("scale", "estimator build + sampling scale linearly in n and kernels (§4.3)", scaleExp)
	register("outliers", "approximate DB(p,k) outlier detection (§3.2, §4.5)", outliersExp)
	register("geo", "geospatial substitutes: metro detection (§4.3)", geoExp)
	register("samplesize", "quality saturation vs sample size (§4.3)", sampleSizeExp)
}

// thm1 tabulates the Guha uniform bound against biased-rule sizes and
// Monte-Carlo-validates the retention guarantee, including the paper's
// worked example (ξ=0.2, |u|=1000, δ=0.1 → ~25% of the dataset).
func thm1(cfg Config) (*Table, error) {
	n := 100000
	mcTrials := 2000
	if cfg.Quick {
		mcTrials = 300
	}
	rng := stats.NewRNG(cfg.Seed)
	t := &Table{
		Columns: []string{"|u|", "xi", "delta", "p_min", "s_uniform", "s_biased(q=0.01)", "savings", "MC retention @p_min"},
		Notes: []string{
			fmt.Sprintf("n = %d; s_biased assumes the guarantee rate inside the cluster and 1%% outside", n),
			"row 2 is the paper's worked example: uniform needs ~25% of the dataset",
		},
	}
	type c struct {
		u         int
		xi, delta float64
	}
	for _, e := range []c{
		{500, 0.2, 0.1},
		{1000, 0.2, 0.1},
		{5000, 0.2, 0.1},
		{1000, 0.5, 0.1},
		{1000, 0.2, 0.01},
	} {
		p, err := theory.RequiredInclusionProb(e.u, e.xi, e.delta)
		if err != nil {
			return nil, err
		}
		s, err := theory.GuhaUniformSampleSize(n, e.u, e.xi, e.delta)
		if err != nil {
			return nil, err
		}
		sb, err := theory.MinBiasedSampleSize(n, e.u, e.xi, e.delta, 0.01)
		if err != nil {
			return nil, err
		}
		ret := theory.RetentionProbability(e.u, e.xi, p, mcTrials, rng)
		t.Rows = append(t.Rows, []string{
			itoa(e.u), ftoa(e.xi), ftoa(e.delta), ftoa(p),
			fmt.Sprintf("%.0f", s), fmt.Sprintf("%.0f", sb),
			fmt.Sprintf("%.1fx", s/sb), ftoa(ret),
		})
	}
	return t, nil
}

// scaleExp verifies the §4.3 running-time claim: estimator construction
// plus biased sampling scales linearly with the dataset size and with the
// number of kernels.
func scaleExp(cfg Config) (*Table, error) {
	sizes := []int{100000, 200000, 400000, 800000}
	kernels := []int{250, 500, 1000, 2000}
	kernelN := 200000
	if cfg.Quick {
		sizes = []int{20000, 40000}
		kernels = []int{250, 1000}
		kernelN = 40000
	}
	rng := stats.NewRNG(cfg.Seed)
	t := &Table{
		Columns: []string{"sweep", "value", "KDE+sample sec"},
		Notes:   []string{"time covers one KDE build (1 pass) plus the exact two-pass biased sample, a=1, b=1000"},
	}
	measure := func(n, ks int) (time.Duration, error) {
		l := synth.EqualClusters(10, 2, n, 0.10, rng)
		ds := l.Dataset()
		return timed(func() error {
			est, err := kde.Build(ds, kde.Options{NumKernels: ks}, rng)
			if err != nil {
				return err
			}
			_, err = core.Draw(ds, est, core.Options{Alpha: 1, TargetSize: 1000}, rng)
			return err
		})
	}
	for _, n := range sizes {
		d, err := measure(n, 1000)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"n", itoa(n), secs(d)})
	}
	for _, ks := range kernels {
		d, err := measure(kernelN, ks)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"kernels", itoa(ks), secs(d)})
	}
	return t, nil
}

// outliersExp plants unambiguous DB(p,k) outliers, then compares the
// exact detector with the approximate two-pass detector: recall must be
// total, candidates few, and the pass budget as §4.5 states.
func outliersExp(cfg Config) (*Table, error) {
	total := 50000
	if cfg.Quick {
		total = 10000
	}
	rng := stats.NewRNG(cfg.Seed)
	t := &Table{
		Columns: []string{"dataset", "exact", "approx", "recall", "precision", "candidates", "detect passes"},
		Notes: []string{
			"detect passes exclude the single estimator-construction pass; the paper reports ≤2 (+1 for the estimator)",
		},
	}

	type workload struct {
		name string
		l    *synth.Labeled
		prm  outlier.Params
		opts kde.Options
		cf   float64
	}
	defaultKDE := kde.Options{NumKernels: kde.DefaultNumKernels}
	make2d := func() workload {
		l := synth.EqualClusters(5, 2, total, 0.0, rng)
		synth.PlantOutliers(l, 25, 0.08, rng)
		return workload{"synthetic 2-d", l, outlier.Params{K: 0.04, P: 3}, defaultKDE, 0}
	}
	make5d := func() workload {
		l := synth.EqualClusters(5, 5, total, 0.0, rng)
		synth.PlantOutliers(l, 25, 0.15, rng)
		return workload{"synthetic 5-d", l, outlier.Params{K: 0.1, P: 3}, defaultKDE, 0}
	}
	workloads := []workload{make2d(), make5d()}
	if !cfg.Quick {
		// The NorthEast task hunts the naturally isolated rural
		// addresses. Its radius k = 0.01 is far below the Scott-rule
		// bandwidth, so the estimator needs a finer bandwidth (and a
		// wider candidate factor) to resolve density at that scale.
		ne := synth.NorthEast(rng)
		workloads = append(workloads, workload{
			"NorthEast lookalike", ne, outlier.Params{K: 0.01, P: 2},
			kde.Options{NumKernels: 2000, BandwidthScale: 0.15}, 5,
		})
	}

	for _, w := range workloads {
		exact, err := outlier.Exact(w.l.Points, w.prm)
		if err != nil {
			return nil, err
		}
		ds := w.l.Dataset()
		est, err := kde.Build(ds, w.opts, rng)
		if err != nil {
			return nil, err
		}
		res, err := outlier.Approximate(ds, est, w.prm, outlier.ApproxOptions{CandidateFactor: w.cf})
		if err != nil {
			return nil, err
		}
		truthPts := make([]geom.Point, len(exact))
		for i, idx := range exact {
			truthPts[i] = w.l.Points[idx]
		}
		prec, rec := eval.SetMetrics(res.Outliers, truthPts, 1e-12)
		t.Rows = append(t.Rows, []string{
			w.name, itoa(len(exact)), itoa(len(res.Outliers)),
			ftoa(rec), ftoa(prec), itoa(res.NumCandidates), itoa(res.DataPasses),
		})
	}
	return t, nil
}

// geoExp reproduces the §4.3 real-data finding on the geospatial
// substitutes: biased sampling (a=1) isolates the metropolitan clusters,
// uniform sampling drowns them in the rural background.
func geoExp(cfg Config) (*Table, error) {
	rng := stats.NewRNG(cfg.Seed)
	t := &Table{
		Columns: []string{"dataset", "method", "metros found", "of"},
		Notes:   []string{"1% samples; metros found via the 90% representative rule on the ground-truth metro shapes"},
	}
	run := func(name string, l *synth.Labeled, k, b int) error {
		bs, _, err := biasedFound(l, 1, b, kde.DefaultNumKernels, k, rng)
		if err != nil {
			return err
		}
		rs, _, err := uniformFound(l, b, k, rng)
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows,
			[]string{name, "biased a=1", itoa(bs), itoa(k)},
			[]string{name, "uniform", itoa(rs), itoa(k)},
		)
		return nil
	}
	ne := synth.NorthEast(rng)
	if err := run("NorthEast lookalike", ne, len(ne.Clusters), 1300); err != nil {
		return nil, err
	}
	if !cfg.Quick {
		ca := synth.California(rng)
		if err := run("California lookalike", ca, len(ca.Clusters), 625); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// sampleSizeExp sweeps the sample size on DS1 to expose the saturation
// the paper reports: biased sampling stops improving near 1000 samples,
// uniform near 2000.
func sampleSizeExp(cfg Config) (*Table, error) {
	total := 100000
	sizes := []int{250, 500, 1000, 2000, 4000}
	if cfg.Quick {
		total = 20000
		sizes = []int{250, 1000}
	}
	tr := trials(cfg)
	t := &Table{
		Columns: []string{"sample", "biased a=0.5 (of 5)", "uniform (of 5)"},
		Notes:   []string{fmt.Sprintf("DS1 lookalike, %d points, %d trial(s)", total, tr)},
	}
	for _, b := range sizes {
		b := b
		bs, err := avgOver(cfg, tr, func(rng *stats.RNG) (int, error) {
			l := synth.DS1(total, 0.05, rng)
			v, _, err := biasedFound(l, 0.5, b, kde.DefaultNumKernels, 5, rng)
			return v, err
		})
		if err != nil {
			return nil, err
		}
		rs, err := avgOver(cfg, tr, func(rng *stats.RNG) (int, error) {
			l := synth.DS1(total, 0.05, rng)
			v, _, err := uniformFound(l, b, 5, rng)
			return v, err
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{itoa(b), ftoa(bs), ftoa(rs)})
	}
	return t, nil
}
