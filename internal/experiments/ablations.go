package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/cure"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/geom"
	"repro/internal/gridsample"
	"repro/internal/histogram"
	"repro/internal/kde"
	"repro/internal/kmeans"
	"repro/internal/stats"
	"repro/internal/synth"
)

func init() {
	register("ablation-kernel", "kernel-function choice vs clustering quality", ablationKernel)
	register("ablation-onepass", "exact two-pass vs integrated one-pass sampling", ablationOnePass)
	register("ablation-alpha", "bias exponent sweep on the variable-density workload", ablationAlpha)
	register("ablation-weights", "inverse-probability weights for k-means on biased samples (§3.1)", ablationWeights)
	register("ablation-estimator", "density estimator choice: kernels vs histogram vs hash grid", ablationEstimator)
	register("ablation-partitions", "CURE partitioning speedup on a large sample", ablationPartitions)
}

// ablationKernel swaps the kernel profile on the Fig. 4 (50% noise)
// workload: the paper uses Epanechnikov; the ablation shows the choice is
// not load-bearing.
func ablationKernel(cfg Config) (*Table, error) {
	total := 100000
	if cfg.Quick {
		total = 20000
	}
	b := total / 50
	tr := trials(cfg)
	t := &Table{
		Columns: []string{"kernel", "found (of 10)"},
		Notes:   []string{fmt.Sprintf("2-d, %d base points + 50%% noise, a=1, sample %d, %d trial(s)", total, b, tr)},
	}
	for _, name := range []string{"epanechnikov", "biweight", "triangular", "uniform", "gaussian"} {
		kern := kde.KernelByName(name)
		found, err := avgOver(cfg, tr, func(rng *stats.RNG) (int, error) {
			l := noiseWorkload(2, total, 0.50, rng)
			ds := l.Dataset()
			est, err := kde.Build(ds, kde.Options{NumKernels: kde.DefaultNumKernels, Kernel: kern}, rng)
			if err != nil {
				return 0, err
			}
			s, err := core.Draw(ds, est, core.Options{Alpha: 1, TargetSize: b}, rng)
			if err != nil {
				return 0, err
			}
			return clusterAndScore(l, s.PlainPoints(), 10)
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{name, ftoa(found)})
	}
	return t, nil
}

// ablationOnePass compares the exact two-pass normalizer against the
// integrated one-pass approximation (§2.2's integration remark): quality
// should match while one data pass is saved.
func ablationOnePass(cfg Config) (*Table, error) {
	total := 100000
	if cfg.Quick {
		total = 20000
	}
	b := total / 50
	tr := trials(cfg)
	t := &Table{
		Columns: []string{"variant", "found (of 10)", "detect passes", "norm rel err"},
		Notes:   []string{fmt.Sprintf("2-d, %d base points + 30%% noise, a=1, sample %d, %d trial(s)", total, b, tr)},
	}
	for _, onePass := range []bool{false, true} {
		onePass := onePass
		var relErrSum float64
		var passes int
		found, err := avgOver(cfg, tr, func(rng *stats.RNG) (int, error) {
			l := noiseWorkload(2, total, 0.30, rng)
			ds := l.Dataset()
			est, err := kde.Build(ds, kde.Options{NumKernels: kde.DefaultNumKernels}, rng)
			if err != nil {
				return 0, err
			}
			const floor = 1.0
			exact, err := core.ExactNorm(ds, est, 1, floor)
			if err != nil {
				return 0, err
			}
			s, err := core.Draw(ds, est, core.Options{Alpha: 1, TargetSize: b, OnePass: onePass, FloorDensity: floor}, rng)
			if err != nil {
				return 0, err
			}
			relErrSum += math.Abs(s.Norm-exact) / exact
			passes = s.DataPasses
			return clusterAndScore(l, s.PlainPoints(), 10)
		})
		if err != nil {
			return nil, err
		}
		name := "two-pass exact"
		if onePass {
			name = "one-pass integrated"
		}
		t.Rows = append(t.Rows, []string{name, ftoa(found), itoa(passes), ftoa(relErrSum / float64(tr))})
	}
	return t, nil
}

// ablationAlpha sweeps the bias exponent on the variable-density
// workload: a≈-0.5 is the sweet spot for small sparse clusters, a=0 is
// uniform, strongly negative a floods the sample with noise, positive a
// abandons the sparse clusters.
func ablationAlpha(cfg Config) (*Table, error) {
	total := 100000
	if cfg.Quick {
		total = 20000
	}
	b := total / 100
	tr := trials(cfg)
	t := &Table{
		Columns: []string{"alpha", "found (of 10)"},
		Notes:   []string{fmt.Sprintf("2-d, %d base points, 10 clusters (10x density, 20x size), 10%% noise, sample %d, %d trial(s)", total, b, tr)},
	}
	for _, alpha := range []float64{-2, -1, -0.5, -0.25, 0, 0.5, 1, 2} {
		alpha := alpha
		found, err := avgOver(cfg, tr, func(rng *stats.RNG) (int, error) {
			l := varDensityWorkload(2, total, 0.10, rng)
			v, _, err := biasedFoundProfile(l, alpha, b, kde.DefaultNumKernels, 10, rng, noisyProfile(alpha))
			return v, err
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{ftoa(alpha), ftoa(found)})
	}
	return t, nil
}

// ablationWeights quantifies §3.1's weighting prescription: k-means on a
// sparse-biased sample recovers the true centroids only when the sample
// is weighted by inverse inclusion probabilities.
func ablationWeights(cfg Config) (*Table, error) {
	total := 40000
	if cfg.Quick {
		total = 10000
	}
	rng := stats.NewRNG(cfg.Seed)
	// Two blobs, 9:1 point ratio, equal spreads: a=-0.5 overrepresents
	// the light blob; unweighted k-means then drifts the heavy center.
	heavy := geom.Point{0.25, 0.25}
	light := geom.Point{0.75, 0.75}
	clusters := []synth.Cluster{
		{Shape: synth.GaussianShape{Center: heavy, Sigma: 0.05}, Size: total * 9 / 10},
		{Shape: synth.GaussianShape{Center: light, Sigma: 0.05}, Size: total / 10},
	}
	l := synth.Generate(clusters, geom.UnitCube(2), 0, rng)
	ds := l.Dataset()
	est, err := kde.Build(ds, kde.Options{NumKernels: kde.DefaultNumKernels}, rng)
	if err != nil {
		return nil, err
	}
	s, err := core.Draw(ds, est, core.Options{Alpha: -0.5, TargetSize: 1000}, rng)
	if err != nil {
		return nil, err
	}

	centerErr := func(centers []geom.Point) float64 {
		var worst float64
		for _, truth := range []geom.Point{heavy, light} {
			best := math.Inf(1)
			for _, c := range centers {
				if d := geom.Distance(truth, c); d < best {
					best = d
				}
			}
			if best > worst {
				worst = best
			}
		}
		return worst
	}

	weightedRes, err := kmeans.Run(s.Points, kmeans.Options{K: 2}, rng)
	if err != nil {
		return nil, err
	}
	// Same sample with the weights stripped (every point weight 1).
	unweightedPts := make([]dataset.WeightedPoint, len(s.Points))
	for i, wp := range s.Points {
		unweightedPts[i] = dataset.WeightedPoint{P: wp.P, W: 1}
	}
	unweightedRes, err := kmeans.Run(unweightedPts, kmeans.Options{K: 2}, rng)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Columns: []string{"variant", "worst center error"},
		Notes: []string{
			fmt.Sprintf("two gaussian blobs 9:1, %d points, a=-0.5 sample of %d", total, len(s.Points)),
		},
	}
	t.Rows = append(t.Rows,
		[]string{"inverse-probability weights", ftoa(centerErr(weightedRes.Centers))},
		[]string{"unweighted", ftoa(centerErr(unweightedRes.Centers))},
	)
	return t, nil
}

// clusterAndScore clusters sample points with the shared CURE settings
// and scores against ground truth with the 90% representative rule.
func clusterAndScore(l *synth.Labeled, pts []geom.Point, k int) (int, error) {
	if len(pts) == 0 {
		return 0, fmt.Errorf("experiments: empty sample")
	}
	clusters, err := cure.Run(pts, cureOptions(k, len(pts)))
	if err != nil {
		return 0, err
	}
	return eval.CountTrue(eval.FoundByReps(repsOf(clusters), l.Clusters, eval.DefaultRepFraction)), nil
}

// ablationEstimator swaps the density estimator feeding the sampler —
// kernels (the paper's choice), a multi-dimensional histogram, and the
// hash-grid — exercising the decoupling claim of §1.1 and the §2.1
// argument that kernels estimate density most accurately.
func ablationEstimator(cfg Config) (*Table, error) {
	total := 100000
	if cfg.Quick {
		total = 20000
	}
	b := total / 50
	tr := trials(cfg)
	t := &Table{
		Columns: []string{"estimator", "found (of 10)"},
		Notes:   []string{fmt.Sprintf("2-d, %d base points + 50%% noise, a=1, sample %d, %d trial(s)", total, b, tr)},
	}
	type variant struct {
		name  string
		build func(l *synth.Labeled, rng *stats.RNG) (core.DensityEstimator, error)
	}
	variants := []variant{
		{"kde (1000 kernels)", func(l *synth.Labeled, rng *stats.RNG) (core.DensityEstimator, error) {
			return kde.Build(l.Dataset(), kde.Options{NumKernels: kde.DefaultNumKernels}, rng)
		}},
		{"histogram (32/dim)", func(l *synth.Labeled, rng *stats.RNG) (core.DensityEstimator, error) {
			return histogram.Build(l.Dataset(), l.Domain, histogram.Options{})
		}},
		{"hash grid (64/dim)", func(l *synth.Labeled, rng *stats.RNG) (core.DensityEstimator, error) {
			return gridsample.BuildGrid(l.Dataset(), l.Domain, gridsample.Options{})
		}},
	}
	for _, v := range variants {
		v := v
		found, err := avgOver(cfg, tr, func(rng *stats.RNG) (int, error) {
			l := noiseWorkload(2, total, 0.50, rng)
			est, err := v.build(l, rng)
			if err != nil {
				return 0, err
			}
			s, err := core.Draw(l.Dataset(), est, core.Options{Alpha: 1, TargetSize: b}, rng)
			if err != nil {
				return 0, err
			}
			return clusterAndScore(l, s.PlainPoints(), 10)
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{v.name, ftoa(found)})
	}
	return t, nil
}

// ablationPartitions measures CURE's partitioning speedup on a large
// biased sample: pre-clustering p partitions cuts the quadratic merge cost
// roughly by p while the final quality holds — the speedup §4.2 declines
// to use ("we use one partition") but the implementation supports.
func ablationPartitions(cfg Config) (*Table, error) {
	total := 500000
	b := 6000
	if cfg.Quick {
		total = 50000
		b = 1500
	}
	rng := stats.NewRNG(cfg.Seed)
	l := noiseWorkload(2, total, 0.10, rng)
	ds := l.Dataset()
	est, err := kde.Build(ds, kde.Options{NumKernels: kde.DefaultNumKernels}, rng)
	if err != nil {
		return nil, err
	}
	s, err := core.Draw(ds, est, core.Options{Alpha: 1, TargetSize: b}, rng)
	if err != nil {
		return nil, err
	}
	pts := s.PlainPoints()
	t := &Table{
		Columns: []string{"partitions", "cluster sec", "found (of 10)"},
		Notes:   []string{fmt.Sprintf("biased a=1 sample of %d from %d points + 10%% noise; reduction 4", len(pts), total)},
	}
	for _, parts := range []int{1, 2, 4, 8} {
		var clusters []cure.Cluster
		dur, err := timed(func() error {
			var cerr error
			clusters, cerr = cure.RunPartitioned(pts, cureOptions(10, len(pts)), parts, 4)
			return cerr
		})
		if err != nil {
			return nil, err
		}
		found := eval.CountTrue(eval.FoundByReps(repsOf(clusters), l.Clusters, eval.DefaultRepFraction))
		t.Rows = append(t.Rows, []string{itoa(parts), secs(dur), itoa(found)})
	}
	return t, nil
}
