package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/kde"
	"repro/internal/stats"
	"repro/internal/synth"
)

func init() {
	register("append", "incremental ingestion: full rebuild vs delta extend after append", appendExp)
}

// appendExp measures what the incremental ingestion path buys when a
// dataset grows by a small delta and a sample of the prior prefix is
// already in hand. For each delta fraction, "full" rebuilds the estimator
// and redraws the sample over all n' points (what a server without delta
// builds must do after an append), while "incremental" reservoir-picks
// delta centers, extends the cached estimator, and runs core.ExtendDraw —
// passes over the delta only. Both paths are timed end to end; the
// speedup column is full over incremental.
func appendExp(cfg Config) (*Table, error) {
	n := 200000
	if cfg.Quick {
		n = 25000
	}
	const (
		ks    = 500
		b     = 1000
		alpha = 1.0
		iters = 2 // timed twice, min taken: enough for a >5x signal
	)
	fractions := []float64{0.01, 0.05}

	// One generation per fraction: base points plus the largest delta,
	// sliced so every run sees identical data.
	maxDelta := int(float64(n) * fractions[len(fractions)-1])
	setup := stats.NewRNG(cfg.Seed)
	all := synth.EqualClusters(10, 4, n+maxDelta, 0.10, setup).Dataset().Points()

	t := &Table{
		Columns: []string{"delta", "path", "ms", "speedup"},
		Notes: []string{
			fmt.Sprintf("n = %d, d = 4, a = %g, b = %d, %d kernels; delta appended as one generation", n, alpha, b, ks),
			"full = kde.Build + core.Draw over all n' points; incremental = Reservoir(delta) + Estimator.Extend + core.ExtendDraw",
			"both paths start from the same cached prior (estimator + sample of the first n points); times are min of 2 runs",
		},
	}

	for _, frac := range fractions {
		m := int(float64(n) * frac)
		base, err := dataset.NewInMemory(clonePoints(all[:n]))
		if err != nil {
			return nil, err
		}
		if err := base.Append(clonePoints(all[n : n+m])...); err != nil {
			return nil, err
		}
		full, err := dataset.GenView(base, 1)
		if err != nil {
			return nil, err
		}
		delta, err := dataset.DeltaView(base, 1)
		if err != nil {
			return nil, err
		}
		prefix, err := dataset.GenView(base, 0)
		if err != nil {
			return nil, err
		}

		// The shared prior: estimator and sample of the first n points,
		// built once outside the timed region (a serving cache hit).
		streams := stats.NewRNG(cfg.Seed ^ 0xa99e).Splits(4)
		prior, err := kde.Build(prefix, kde.Options{NumKernels: ks, Parallelism: cfg.Parallelism, Obs: cfg.Obs}, streams[0])
		if err != nil {
			return nil, err
		}
		priorSample, err := core.Draw(prefix, prior, core.Options{
			Alpha: alpha, TargetSize: b, Parallelism: cfg.Parallelism, Obs: cfg.Obs,
		}, streams[1])
		if err != nil {
			return nil, err
		}
		priorNorm := core.NormState{K: priorSample.Norm, N: n, Kernels: prior.NumKernels()}

		fullNs, err := timeMin(iters, func(rng *stats.RNG) error {
			st := rng.Splits(2)
			est, berr := kde.Build(full, kde.Options{NumKernels: ks, Parallelism: cfg.Parallelism, Obs: cfg.Obs}, st[0])
			if berr != nil {
				return berr
			}
			_, derr := core.Draw(full, est, core.Options{
				Alpha: alpha, TargetSize: b, Parallelism: cfg.Parallelism, Obs: cfg.Obs,
			}, st[1])
			return derr
		}, streams[2])
		if err != nil {
			return nil, err
		}

		incNs, err := timeMin(iters, func(rng *stats.RNG) error {
			st := rng.Splits(2)
			dk := ks * m / n
			if dk < 1 {
				dk = 1
			}
			centers, rerr := dataset.Reservoir(delta, dk, st[0])
			if rerr != nil {
				return rerr
			}
			est, xerr := prior.Extend(centers, n+m)
			if xerr != nil {
				return xerr
			}
			_, _, derr := core.ExtendDraw(full, est, core.ExtendOptions{
				Options: core.Options{
					Alpha: alpha, TargetSize: b, Parallelism: cfg.Parallelism, Obs: cfg.Obs,
				},
				DeltaStart: n,
				Prior:      priorSample,
				PriorNorm:  priorNorm,
			}, st[1])
			return derr
		}, streams[3])
		if err != nil {
			return nil, err
		}

		speedup := fullNs / incNs
		label := fmt.Sprintf("%g%%", frac*100)
		ms := func(ns float64) string { return fmt.Sprintf("%.3f", ns/1e6) }
		t.Rows = append(t.Rows,
			[]string{label, "full", ms(fullNs), "1.000x"},
			[]string{label, "incremental", ms(incNs), fmt.Sprintf("%.3fx", speedup)},
		)
		pct := int(frac * 100)
		t.Benchmarks = append(t.Benchmarks,
			BenchResult{Name: fmt.Sprintf("Append_full_%dpct", pct), Iters: iters, NsPerOp: int64(fullNs), PointsPerSec: float64(n+m) / (fullNs / 1e9), Speedup: 1},
			BenchResult{Name: fmt.Sprintf("Append_incremental_%dpct", pct), Iters: iters, NsPerOp: int64(incNs), PointsPerSec: float64(m) / (incNs / 1e9), Speedup: speedup},
		)
	}
	return t, nil
}

// timeMin runs fn iters times with independent RNG streams and returns
// the minimum wall-clock nanoseconds — the usual best-of-k benchmark
// discipline, robust to one-off scheduler noise.
func timeMin(iters int, fn func(rng *stats.RNG) error, rng *stats.RNG) (float64, error) {
	streams := rng.Splits(iters)
	best := 0.0
	for i := 0; i < iters; i++ {
		start := time.Now()
		if err := fn(streams[i]); err != nil {
			return 0, err
		}
		ns := float64(time.Since(start).Nanoseconds())
		if i == 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

// clonePoints deep-copies a point slice so generational appends never
// alias the generator's backing array.
func clonePoints(pts []geom.Point) []geom.Point {
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = p.Clone()
	}
	return out
}
