package experiments

import (
	"fmt"
	"time"

	"repro/internal/birch"
	"repro/internal/core"
	"repro/internal/cure"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/geom"
	"repro/internal/gridsample"
	"repro/internal/kde"
	"repro/internal/stats"
	"repro/internal/synth"
)

// pipeline glue shared by the figure experiments: draw a sample (biased,
// uniform, or grid), cluster it with the CURE-style hierarchical
// algorithm, and score against ground truth with the §4.3 criteria.

// cureProfile picks the clustering parameters for a sample. Both
// profiles use the paper's α=0.3 and 10 representatives plus CURE's
// two-phase outlier elimination; they differ in how aggressively the
// second phase prunes, matching how much noise the sampling mode admits.
type cureProfile func(k, n int) cure.Options

// cureOptions is the mild profile for dense-biased (a ≥ 0) and uniform
// samples, which carry little noise: a late, gentle second trim.
func cureOptions(k, n int) cure.Options {
	return mildProfile(500)(k, n)
}

// mildProfile parameterizes the mild profile's final-trim threshold
// divisor: FinalTrimMinSize = n/div. The default 500 suits workloads
// whose smallest clusters contribute only a few dozen sample points; the
// heavier-noise DS1 experiment (fig3) uses 300 so uniform samples of
// intermediate sizes shed their larger residual noise blobs.
func mildProfile(div int) cureProfile {
	return func(k, n int) cure.Options {
		finalMin := n / div
		if finalMin < 3 {
			finalMin = 3
		}
		return cure.Options{
			K:       k,
			NumReps: 10,
			Shrink:  0.3,
			// Phase 1 (CURE §4.1): when clusters reach a third of the
			// sample size, drop 1-2 point clusters — isolated noise —
			// before they chain real clusters together.
			TrimAt:      n / 3,
			TrimMinSize: 3,
			// Phase 2: near the end, drop residual small noise groups.
			FinalTrimAt:      5 * k,
			FinalTrimMinSize: finalMin,
		}
	}
}

// noisyProfile returns the profile for sparse-biased (a < 0) samples,
// which deliberately admit background noise: extra cluster slots so noise
// blobs do not force true clusters to merge, plus a second trim whose
// strength follows the bias — a = -0.5 admits roughly twice the noise of
// a = -0.25 and needs a correspondingly harder prune.
func noisyProfile(alpha float64) cureProfile {
	div := 300
	if alpha <= -0.4 {
		div = 150
	}
	return func(k, n int) cure.Options {
		finalMin := n / div
		if finalMin < 3 {
			finalMin = 3
		}
		kk := k + 5
		return cure.Options{
			K:                kk,
			NumReps:          10,
			Shrink:           0.3,
			TrimAt:           n / 3,
			TrimMinSize:      3,
			FinalTrimAt:      3 * kk,
			FinalTrimMinSize: finalMin,
		}
	}
}

// repsOf extracts the representative sets from a clustering.
func repsOf(clusters []cure.Cluster) [][]geom.Point {
	reps := make([][]geom.Point, len(clusters))
	for i := range clusters {
		reps[i] = clusters[i].Reps
	}
	return reps
}

// timed runs fn and returns its duration.
func timed(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}

// biasedFound draws a density-biased sample of size b with exponent alpha
// (building a fresh KDE with ks kernels), clusters it, and returns the
// number of true clusters found plus the sample actually drawn.
func biasedFound(l *synth.Labeled, alpha float64, b, ks, k int, rng *stats.RNG) (int, int, error) {
	return biasedFoundProfile(l, alpha, b, ks, k, rng, cureOptions)
}

// biasedFoundProfile is biasedFound with an explicit clustering profile.
func biasedFoundProfile(l *synth.Labeled, alpha float64, b, ks, k int, rng *stats.RNG, prof cureProfile) (int, int, error) {
	ds := l.Dataset()
	est, err := kde.Build(ds, kde.Options{NumKernels: ks}, rng)
	if err != nil {
		return 0, 0, err
	}
	s, err := core.Draw(ds, est, core.Options{Alpha: alpha, TargetSize: b}, rng)
	if err != nil {
		return 0, 0, err
	}
	pts := s.PlainPoints()
	if len(pts) == 0 {
		return 0, 0, fmt.Errorf("experiments: empty biased sample")
	}
	clusters, err := cure.Run(pts, prof(k, len(pts)))
	if err != nil {
		return 0, 0, err
	}
	found := eval.CountTrue(eval.FoundByReps(repsOf(clusters), l.Clusters, eval.DefaultRepFraction))
	return found, len(pts), nil
}

// uniformFound draws a uniform Bernoulli sample of expected size b,
// clusters it, and scores it.
func uniformFound(l *synth.Labeled, b, k int, rng *stats.RNG) (int, int, error) {
	return uniformFoundProfile(l, b, k, rng, cureOptions)
}

// uniformFoundProfile is uniformFound with an explicit clustering profile.
func uniformFoundProfile(l *synth.Labeled, b, k int, rng *stats.RNG, prof cureProfile) (int, int, error) {
	ds := l.Dataset()
	pts, err := dataset.Bernoulli(ds, b, rng)
	if err != nil {
		return 0, 0, err
	}
	if len(pts) == 0 {
		return 0, 0, fmt.Errorf("experiments: empty uniform sample")
	}
	clusters, err := cure.Run(pts, prof(k, len(pts)))
	if err != nil {
		return 0, 0, err
	}
	found := eval.CountTrue(eval.FoundByReps(repsOf(clusters), l.Clusters, eval.DefaultRepFraction))
	return found, len(pts), nil
}

// gridFound runs the Palmer-Faloutsos sampler with exponent e and the 5 MB
// hash budget of §4.3, clusters the sample, and scores it.
func gridFound(l *synth.Labeled, e float64, b, k int, rng *stats.RNG) (int, int, error) {
	return gridFoundProfile(l, e, b, k, rng, cureOptions)
}

// gridFoundProfile is gridFound with an explicit clustering profile.
func gridFoundProfile(l *synth.Labeled, e float64, b, k int, rng *stats.RNG, prof cureProfile) (int, int, error) {
	ds := l.Dataset()
	res, err := gridsample.Draw(ds, l.Domain, gridsample.Options{
		Exponent:   e,
		TargetSize: b,
	}, rng)
	if err != nil {
		return 0, 0, err
	}
	pts := make([]geom.Point, len(res.Points))
	for i, wp := range res.Points {
		pts[i] = wp.P
	}
	if len(pts) == 0 {
		return 0, 0, fmt.Errorf("experiments: empty grid sample")
	}
	clusters, err := cure.Run(pts, prof(k, len(pts)))
	if err != nil {
		return 0, 0, err
	}
	found := eval.CountTrue(eval.FoundByReps(repsOf(clusters), l.Clusters, eval.DefaultRepFraction))
	return found, len(pts), nil
}

// birchFound runs BIRCH over the full dataset with a CF-tree budget equal
// to the byte size of a b-point sample (§4.2), and scores its reported
// centers with the center-containment criterion.
func birchFound(l *synth.Labeled, b, k int) (int, error) {
	ds := l.Dataset()
	budget := b * 8 * ds.Dims()
	res, err := birch.Cluster(ds, birch.Options{K: k, MemoryBudget: budget, OutlierFraction: 0.5})
	if err != nil {
		return 0, err
	}
	centers := make([]geom.Point, len(res.Clusters))
	for i, s := range res.Clusters {
		centers[i] = s.Centroid
	}
	return eval.CountTrue(eval.FoundByCenters(centers, l.Clusters)), nil
}

func itoa(v int) string           { return fmt.Sprintf("%d", v) }
func ftoa(v float64) string       { return fmt.Sprintf("%.3g", v) }
func secs(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }
