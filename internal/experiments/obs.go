package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kde"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/synth"
)

func init() {
	register("obs", "observability overhead: exact draw with the Recorder disabled vs enabled", obsExp)
}

// obsExp measures what attaching a Recorder costs the exact two-pass
// biased draw. Three configurations run over the same workload from the
// same seed: the disabled state (nil Recorder — the hot paths' no-op
// handles), an enabled Recorder, and an enabled Recorder on a fresh
// estimator (so the kde counting twins are exercised from a cold cache).
// The draws are checked bit-identical across configurations — the layer's
// non-perturbation guarantee — and the table reports the relative cost of
// each enabled configuration against the disabled reference. The BENCH
// entries back BENCH_obs.json and the verify.sh overhead guard.
func obsExp(cfg Config) (*Table, error) {
	n := 100000
	iters := 3
	if cfg.Quick {
		n = 20000
		iters = 2
	}
	setup := stats.NewRNG(cfg.Seed)
	l := synth.EqualClusters(10, 4, n, 0.10, setup)
	ds := l.Dataset()
	est, err := kde.Build(ds, kde.Options{NumKernels: 500}, setup)
	if err != nil {
		return nil, err
	}

	type config struct {
		name string
		rec  func() *obs.Recorder
	}
	configs := []config{
		{"disabled", func() *obs.Recorder { return nil }},
		{"enabled", obs.New},
	}

	t := &Table{
		Columns: []string{"recorder", "ns/op", "points/sec", "relative", "same sample"},
		Notes: []string{
			fmt.Sprintf("exact two-pass draw, n = %d, d = 4, a = 1, b = 1000, 500 kernels, best of %d iters", n, iters),
			"relative is ns/op vs the disabled row; 1.02x means 2% overhead",
		},
	}
	var ref *core.Sample
	var refNs int64
	for _, c := range configs {
		var s *core.Sample
		var best int64
		for it := 0; it < iters; it++ {
			rec := c.rec()
			// SetRecorder swaps the estimator's counting twins in and
			// out, so one estimator serves both configurations.
			est.SetRecorder(rec)
			var cur *core.Sample
			d, err := timed(func() error {
				var derr error
				cur, derr = core.Draw(ds, est, core.Options{Alpha: 1, TargetSize: 1000, Parallelism: cfg.Parallelism, Obs: rec}, stats.NewRNG(cfg.Seed))
				return derr
			})
			if err != nil {
				return nil, err
			}
			if best == 0 || d.Nanoseconds() < best {
				best = d.Nanoseconds()
			}
			s = cur
		}
		est.SetRecorder(nil)
		sec := float64(best) / 1e9
		identical := "ref"
		if ref == nil {
			ref, refNs = s, best
		} else {
			identical = "yes"
			if !sameDraw(ref, s) {
				identical = "NO"
			}
		}
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprintf("%d", best),
			fmt.Sprintf("%.0f", float64(n)/sec),
			fmt.Sprintf("%.3fx", float64(best)/float64(refNs)),
			identical,
		})
		t.Benchmarks = append(t.Benchmarks, BenchResult{
			Name:         "DrawExact_obs_" + c.name,
			Iters:        iters,
			NsPerOp:      best,
			PointsPerSec: float64(n) / sec,
			Speedup:      float64(refNs) / float64(best),
		})
	}
	return t, nil
}
