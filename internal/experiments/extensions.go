package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dtree"
	"repro/internal/geom"
	"repro/internal/kde"
	"repro/internal/stats"
	"repro/internal/synth"
)

func init() {
	register("ext-dtree", "future work (§5): decision trees on weighted biased samples", extDtree)
}

// extDtree implements the paper's §5 suggestion that classification and
// decision-tree construction can benefit from biased sampling. The
// workload is a skewed classification problem: the minority class lives in
// a few small dense clusters inside a broad majority background. A uniform
// 1% sample contains a handful of minority examples; a dense-biased (a=1)
// sample concentrates on exactly the minority regions, and training with
// inverse-probability weights keeps the tree calibrated. Reported metrics:
// overall accuracy and minority-class recall on a held-out test set.
func extDtree(cfg Config) (*Table, error) {
	total := 100000
	if cfg.Quick {
		total = 20000
	}
	b := total / 100
	tr := trials(cfg)
	t := &Table{
		Columns: []string{"training set", "size", "accuracy", "minority recall"},
		Notes: []string{
			fmt.Sprintf("%d points, 2%% minority in 5 dense clusters, 1%% samples, %d trial(s)", total, tr),
		},
	}

	type resRow struct {
		acc, rec float64
		size     int
	}
	rows := map[string]*resRow{
		"full data":        {},
		"uniform sample":   {},
		"biased a=1 (wtd)": {},
	}

	for trial := 0; trial < tr; trial++ {
		rng := stats.NewRNG(cfg.Seed + uint64(trial)*7919)
		train := classificationWorkload(total, rng)
		testSet := classificationWorkload(total/4, rng)
		testPts, testLabels := splitExamples(testSet)

		evalTree := func(name string, ex []dtree.Example) error {
			tree, err := dtree.Train(ex, dtree.Options{})
			if err != nil {
				return err
			}
			r := rows[name]
			r.acc += tree.Accuracy(testPts, testLabels)
			r.rec += tree.Recall(testPts, testLabels, 1)
			r.size += len(ex)
			return nil
		}

		if err := evalTree("full data", train); err != nil {
			return nil, err
		}

		// Uniform 1% sample: keep each example with probability b/n.
		var uni []dtree.Example
		prob := float64(b) / float64(len(train))
		for _, e := range train {
			if rng.Bernoulli(prob) {
				uni = append(uni, e)
			}
		}
		if len(uni) == 0 {
			uni = train[:1]
		}
		if err := evalTree("uniform sample", uni); err != nil {
			return nil, err
		}

		// Biased 1% sample (a=1) with inverse-probability weights.
		pts := make([]geom.Point, len(train))
		for i, e := range train {
			pts[i] = e.P
		}
		l := &synth.Labeled{Points: pts}
		ds := l.Dataset()
		// Scott's rule smooths at ~0.09 here, wider than the 0.04 minority
		// clusters, which would blur their density peaks below the
		// background; a finer bandwidth lets the estimator resolve them.
		est, err := kde.Build(ds, kde.Options{NumKernels: kde.DefaultNumKernels, BandwidthScale: 0.25}, rng)
		if err != nil {
			return nil, err
		}
		s, err := core.Draw(ds, est, core.Options{Alpha: 1, TargetSize: b}, rng)
		if err != nil {
			return nil, err
		}
		// Re-attach labels by exact coordinate lookup.
		byKey := map[string]int{}
		for _, e := range train {
			byKey[pointKey(e.P)] = e.Label
		}
		biased := make([]dtree.Example, 0, len(s.Points))
		for _, wp := range s.Points {
			lb, ok := byKey[pointKey(wp.P)]
			if !ok {
				continue
			}
			biased = append(biased, dtree.Example{P: wp.P, Label: lb, W: wp.W})
		}
		if len(biased) == 0 {
			return nil, fmt.Errorf("experiments: empty biased training sample")
		}
		if err := evalTree("biased a=1 (wtd)", biased); err != nil {
			return nil, err
		}
	}

	for _, name := range []string{"full data", "uniform sample", "biased a=1 (wtd)"} {
		r := rows[name]
		t.Rows = append(t.Rows, []string{
			name, itoa(r.size / tr), ftoa(r.acc / float64(tr)), ftoa(r.rec / float64(tr)),
		})
	}
	return t, nil
}

// classificationWorkload builds the skewed labelled dataset: 95% majority
// class uniform over the domain, 5% minority class concentrated in five
// small dense clusters.
func classificationWorkload(total int, rng *stats.RNG) []dtree.Example {
	minority := total / 50
	clusters := [][2]float64{{0.12, 0.75}, {0.85, 0.2}, {0.5, 0.5}, {0.2, 0.15}, {0.78, 0.82}}
	ex := make([]dtree.Example, 0, total)
	for i := 0; i < total-minority; i++ {
		ex = append(ex, dtree.Example{
			P: geom.Point{rng.Float64(), rng.Float64()}, Label: 0, W: 1,
		})
	}
	per := minority / len(clusters)
	for _, c := range clusters {
		for i := 0; i < per; i++ {
			ex = append(ex, dtree.Example{
				P:     geom.Point{c[0] + 0.03*rng.Float64(), c[1] + 0.03*rng.Float64()},
				Label: 1, W: 1,
			})
		}
	}
	rng.Shuffle(len(ex), func(i, j int) { ex[i], ex[j] = ex[j], ex[i] })
	return ex
}

func splitExamples(ex []dtree.Example) ([]geom.Point, []int) {
	pts := make([]geom.Point, len(ex))
	labels := make([]int, len(ex))
	for i, e := range ex {
		pts[i] = e.P
		labels[i] = e.Label
	}
	return pts, labels
}

func pointKey(p geom.Point) string {
	buf := make([]byte, 0, len(p)*8)
	for _, v := range p {
		bits := math.Float64bits(v)
		for s := 0; s < 8; s++ {
			buf = append(buf, byte(bits>>(8*s)))
		}
	}
	return string(buf)
}
