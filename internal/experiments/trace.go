package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kde"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/trace"
)

func init() {
	register("trace", "request tracing overhead: exact draw untraced vs recorder-only vs fully traced", traceExp)
}

// traceExp measures what request-scoped tracing costs the exact
// two-pass biased draw, on top of the Recorder it forwards through.
// Three configurations run the same workload from the same seed: fully
// disabled (nil Recorder, nil trace — the production default), a
// Recorder with no trace attached (the PR 2 baseline BENCH_obs.json
// guards), and a Recorder forwarding every span open/close into a live
// Trace (what a sampled request pays). Draws are checked bit-identical
// across configurations — tracing consumes no RNG state — and the
// BENCH entries back BENCH_trace.json and the verify.sh TRACE_GUARD.
func traceExp(cfg Config) (*Table, error) {
	n := 100000
	// Best-of-10: the relative column compares ~55ms draws, where scheduler
	// noise alone is a few percent per run.
	iters := 10
	if cfg.Quick {
		n = 20000
		iters = 2
	}
	setup := stats.NewRNG(cfg.Seed)
	l := synth.EqualClusters(10, 4, n, 0.10, setup)
	ds := l.Dataset()
	est, err := kde.Build(ds, kde.Options{NumKernels: 500}, setup)
	if err != nil {
		return nil, err
	}

	type config struct {
		name string
		rec  func() *obs.Recorder
	}
	configs := []config{
		{"disabled", func() *obs.Recorder { return nil }},
		{"obs", obs.New},
		{"traced", func() *obs.Recorder {
			rec := obs.New()
			rec.SetTrace(trace.New("bench"))
			return rec
		}},
	}

	t := &Table{
		Columns: []string{"tracing", "ns/op", "points/sec", "relative", "same sample"},
		Notes: []string{
			fmt.Sprintf("exact two-pass draw, n = %d, d = 4, a = 1, b = 1000, 500 kernels, best of %d iters", n, iters),
			"relative is ns/op vs the disabled row; traced pays recorder + span forwarding",
		},
	}
	// Iterations interleave round-robin across configurations so a drift
	// in machine load lands on every configuration's best-of window, not
	// on whichever happened to run last.
	bests := make([]int64, len(configs))
	samples := make([]*core.Sample, len(configs))
	for it := 0; it < iters; it++ {
		for ci, c := range configs {
			rec := c.rec()
			est.SetRecorder(rec)
			var cur *core.Sample
			d, err := timed(func() error {
				var derr error
				cur, derr = core.Draw(ds, est, core.Options{Alpha: 1, TargetSize: 1000, Parallelism: cfg.Parallelism, Obs: rec}, stats.NewRNG(cfg.Seed))
				return derr
			})
			if err != nil {
				return nil, err
			}
			if bests[ci] == 0 || d.Nanoseconds() < bests[ci] {
				bests[ci] = d.Nanoseconds()
			}
			samples[ci] = cur
		}
	}
	est.SetRecorder(nil)
	var ref *core.Sample
	var refNs int64
	for ci, c := range configs {
		s, best := samples[ci], bests[ci]
		sec := float64(best) / 1e9
		identical := "ref"
		if ref == nil {
			ref, refNs = s, best
		} else {
			identical = "yes"
			if !sameDraw(ref, s) {
				identical = "NO"
			}
		}
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprintf("%d", best),
			fmt.Sprintf("%.0f", float64(n)/sec),
			fmt.Sprintf("%.3fx", float64(best)/float64(refNs)),
			identical,
		})
		t.Benchmarks = append(t.Benchmarks, BenchResult{
			Name:         "DrawExact_trace_" + c.name,
			Iters:        iters,
			NsPerOp:      best,
			PointsPerSec: float64(n) / sec,
			Speedup:      float64(refNs) / float64(best),
		})
	}
	return t, nil
}
