package experiments

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/kde"
	"repro/internal/stats"
	"repro/internal/synth"
)

func init() {
	register("parallel", "parallel draw throughput: points/sec and speedup vs one worker", parallelExp)
}

// parallelExp measures the exact two-pass biased draw under the parallel
// execution layer. Every worker count draws from the same seed and the
// samples are checked to be identical — the layer's core guarantee — while
// the table reports wall-clock, scan throughput, and speedup over the
// serial reference. cfg.Parallelism (dbsbench -p), when above the default
// sweep, is measured as an extra row.
func parallelExp(cfg Config) (*Table, error) {
	n := 100000
	if cfg.Quick {
		n = 20000
	}
	setup := stats.NewRNG(cfg.Seed)
	l := synth.EqualClusters(10, 4, n, 0.10, setup)
	ds := l.Dataset()
	est, err := kde.Build(ds, kde.Options{NumKernels: 500}, setup)
	if err != nil {
		return nil, err
	}

	workers := []int{1, 2, 4}
	max := cfg.Parallelism
	if max <= 0 {
		max = runtime.GOMAXPROCS(0)
	}
	if max > workers[len(workers)-1] {
		workers = append(workers, max)
	}

	t := &Table{
		Columns: []string{"workers", "sec", "points/sec", "speedup", "same sample"},
		Notes: []string{
			fmt.Sprintf("exact two-pass draw, n = %d, d = 4, a = 1, b = 1000, 500 kernels", n),
			fmt.Sprintf("GOMAXPROCS = %d; speedup is wall-clock vs the workers=1 row", runtime.GOMAXPROCS(0)),
		},
	}
	var ref *core.Sample
	var refSec float64
	for _, p := range workers {
		var s *core.Sample
		d, err := timed(func() error {
			var derr error
			s, derr = core.Draw(ds, est, core.Options{Alpha: 1, TargetSize: 1000, Parallelism: p, Obs: cfg.Obs}, stats.NewRNG(cfg.Seed))
			return derr
		})
		if err != nil {
			return nil, err
		}
		sec := d.Seconds()
		identical := "ref"
		if ref == nil {
			ref, refSec = s, sec
		} else {
			identical = "yes"
			if !sameDraw(ref, s) {
				identical = "NO"
			}
		}
		t.Rows = append(t.Rows, []string{
			itoa(p), secs(d),
			fmt.Sprintf("%.0f", float64(ds.Len())/sec),
			fmt.Sprintf("%.2fx", refSec/sec),
			identical,
		})
		t.Benchmarks = append(t.Benchmarks, BenchResult{
			Name:         fmt.Sprintf("DrawParallel/%d", p),
			Iters:        1,
			NsPerOp:      d.Nanoseconds(),
			PointsPerSec: float64(ds.Len()) / sec,
			Speedup:      refSec / sec,
		})
	}
	return t, nil
}

// sameDraw reports whether two draws are byte-identical in every field the
// determinism guarantee covers.
func sameDraw(a, b *core.Sample) bool {
	if a.Norm != b.Norm || a.Saturated != b.Saturated || len(a.Points) != len(b.Points) {
		return false
	}
	for i := range a.Points {
		if a.Points[i].W != b.Points[i].W || !a.Points[i].P.Equal(b.Points[i].P) {
			return false
		}
	}
	return true
}
