package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Seed: 7, Quick: true} }

func TestUnknownID(t *testing.T) {
	if _, err := Run("nope", quickCfg()); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestIDsRegistered(t *testing.T) {
	want := []string{
		"thm1", "fig2", "fig3", "fig4a", "fig4b", "fig4c",
		"fig5a", "fig5b", "fig5c", "fig6", "fig7",
		"scale", "outliers", "geo", "samplesize",
		"ablation-kernel", "ablation-onepass", "ablation-alpha", "ablation-weights", "ablation-estimator", "ablation-partitions", "ext-dtree",
		"stream",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
		if Title(id) == "" {
			t.Errorf("id %q has empty title", id)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
}

func TestTableString(t *testing.T) {
	tb := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   []string{"hello"},
	}
	s := tb.String()
	for _, want := range []string{"demo", "a", "bb", "hello"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
}

// cell parses a numeric table cell.
func cell(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric", row, col, tb.Rows[row][col])
	}
	return v
}

func TestExpThm1(t *testing.T) {
	tb, err := Run("thm1", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Worked example row: p_min ≈ 0.233, retention ≥ 0.9.
	p := cell(t, tb, 1, 3)
	if p < 0.22 || p > 0.26 {
		t.Errorf("worked-example p_min = %v", p)
	}
	ret := cell(t, tb, 1, 7)
	if ret < 0.9 {
		t.Errorf("MC retention %v below guarantee", ret)
	}
}

func TestExpFig3Shape(t *testing.T) {
	tb, err := Run("fig3", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Row 0: biased 1000; row 1: uniform 1000; row 3: uniform 4000.
	biased := cell(t, tb, 0, 2)
	uni1k := cell(t, tb, 1, 2)
	uni4k := cell(t, tb, 3, 2)
	if biased < 4 {
		t.Errorf("biased 1000-sample found %v of 5", biased)
	}
	if uni1k >= biased {
		t.Errorf("uniform 1000 (%v) should trail biased (%v)", uni1k, biased)
	}
	if uni4k < uni1k {
		t.Errorf("uniform should improve with sample size: %v -> %v", uni1k, uni4k)
	}
}

func TestExpFig4aShape(t *testing.T) {
	tb, err := Run("fig4a", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	last := len(tb.Rows) - 1
	bsHigh := cell(t, tb, last, 1)
	rsHigh := cell(t, tb, last, 2)
	if bsHigh < 7 {
		t.Errorf("biased found %v at max noise, want ≥7", bsHigh)
	}
	if rsHigh >= bsHigh {
		t.Errorf("uniform (%v) should trail biased (%v) at max noise", rsHigh, bsHigh)
	}
}

func TestExpFig5aShape(t *testing.T) {
	tb, err := Run("fig5a", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	last := len(tb.Rows) - 1
	bs := cell(t, tb, last, 1)
	rs := cell(t, tb, last, 3)
	if bs < rs {
		t.Errorf("a=-0.5 (%v) should not trail uniform (%v) at the largest sample", bs, rs)
	}
	if bs < 7 {
		t.Errorf("a=-0.5 found %v, want ≥7 at largest sample", bs)
	}
}

func TestExpFig2Monotone(t *testing.T) {
	tb, err := Run("fig2", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Clustering time must grow with the sample size.
	c0 := cell(t, tb, 0, 4)
	c1 := cell(t, tb, len(tb.Rows)-1, 4)
	if c1 < c0 {
		t.Errorf("CURE time not increasing: %v -> %v", c0, c1)
	}
}

func TestExpOutliers(t *testing.T) {
	tb, err := Run("outliers", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		rec, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if rec < 1 {
			t.Errorf("%s: recall %v < 1", row[0], rec)
		}
		passes, _ := strconv.Atoi(row[6])
		if passes > 2 {
			t.Errorf("%s: %d detection passes, want ≤2", row[0], passes)
		}
	}
}

func TestExpGeo(t *testing.T) {
	tb, err := Run("geo", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 biased, row 1 uniform on NorthEast.
	bs := cell(t, tb, 0, 2)
	rs := cell(t, tb, 1, 2)
	if bs < 3 {
		t.Errorf("biased found %v of 3 metros", bs)
	}
	if rs >= bs {
		t.Errorf("uniform (%v) should trail biased (%v) on the metro task", rs, bs)
	}
}

func TestExpAblationWeights(t *testing.T) {
	tb, err := Run("ablation-weights", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	weighted := cell(t, tb, 0, 1)
	if weighted > 0.05 {
		t.Errorf("weighted k-means center error %v, want <0.05", weighted)
	}
}

func TestExpScaleRuns(t *testing.T) {
	tb, err := Run("scale", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Errorf("rows = %d", len(tb.Rows))
	}
}

func TestExpStreamShape(t *testing.T) {
	tb, err := Run("stream", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (one per method at the quick budget)", len(tb.Rows))
	}
	// The streaming estimators must stay competitive: every method finds
	// most of the 10 planted clusters at a 64 KiB density budget.
	for i := range tb.Rows {
		if found := cell(t, tb, i, 3); found < 6 {
			t.Errorf("%s found %v clusters, want ≥6", tb.Rows[i][0], found)
		}
	}
}

func TestExpRemainingQuickProfiles(t *testing.T) {
	// Smoke-run every other experiment in quick mode: they must complete
	// and produce non-empty tables.
	for _, id := range []string{"fig4b", "fig4c", "fig5b", "fig5c", "fig6", "fig7", "samplesize", "ablation-kernel", "ablation-onepass", "ablation-alpha", "ablation-estimator", "ablation-partitions", "ext-dtree", "columnar"} {
		id := id
		t.Run(id, func(t *testing.T) {
			tb, err := Run(id, quickCfg())
			if err != nil {
				t.Fatal(err)
			}
			if len(tb.Rows) == 0 {
				t.Error("empty table")
			}
		})
	}
}
