package experiments

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/faults"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/synth"
)

func init() {
	register("load", "sustained multi-tenant load: WFQ isolation, degrade ladder, availability under chaos", loadExp)
}

// loadExp is the sustained-load SLO proof: a three-tenant mix — gold and
// silver closed-loop over warm artifacts, bronze open-loop over cold
// seeds at an arrival rate the server cannot absorb — replayed against
// the none/light/heavy fault profiles. The admission queue is kept small
// so the bronze flood has to queue and shed; the table shows whether the
// weighted-fair scheduler kept the paying tenants' tails flat while
// bronze (low priority, a=1 over a prewarmed a=0 ladder) absorbed the
// overload as degraded answers and 429s. Availability counts degraded
// responses: a coarser-but-sound sample is the ladder working, not an
// outage. The isolation claim the table supports: every shed lands on
// bronze — gold and silver stay at availability 1.0 — and gold's tail
// under the flood is bounded by slot head-of-line (admitted builds are
// never preempted), not by bronze's queue depth; the baseline row gives
// the no-flood reference for that comparison.
func loadExp(cfg Config) (*Table, error) {
	n := 40000
	window := 2 * time.Second
	bronzeRPS := 300.0
	if cfg.Quick {
		n = 10000
		window = 400 * time.Millisecond
	}
	setup := stats.NewRNG(cfg.Seed)
	l := synth.EqualClusters(8, 3, n, 0.10, setup)
	ds := l.Dataset()

	diskDir, err := os.MkdirTemp("", "dbsload-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(diskDir)

	warmSeeds := []uint64{101, 102}
	// Bronze gets one fresh seed per expected arrival, offset per profile
	// so the shared disk tier cannot warm a later profile's flood: every
	// bronze a=1 request is a full cold build, which is what makes an
	// open-loop stream at this rate saturating rather than a cache echo.
	nCold := int(bronzeRPS*window.Seconds()) + 32
	coldFor := func(profile int) []uint64 {
		seeds := make([]uint64, nCold)
		for i := range seeds {
			seeds[i] = uint64(10000*(profile+1) + i)
		}
		return seeds
	}

	profiles := []struct {
		name string
		fc   *faults.Config
	}{
		{"none", nil},
		{"light", &faults.Config{PError: 0.05, PDelay: 0.05, PPartial: 0.03, PCancel: 0.02, MaxDelay: 500 * time.Microsecond}},
		{"heavy", &faults.Config{PError: 0.15, PDelay: 0.10, PPartial: 0.10, PCancel: 0.05, MaxDelay: 500 * time.Microsecond}},
	}

	t := &Table{
		Columns: []string{"profile", "tenant", "mode", "sent", "ok", "degraded", "shed", "err", "p50 ms", "p99 ms", "p99.9 ms", "avail"},
		Notes: []string{
			fmt.Sprintf("POST /v1/sample, n = %d, d = 3, b = 400, 128 kernels, %.1fs window per profile", n, window.Seconds()),
			"gold (w4, high) and silver (w2) closed-loop over 2 warm seeds; bronze (w1, low) open-loop, one fresh cold seed per arrival (offset per profile)",
			fmt.Sprintf("bronze arrivals %.0f/s against max-inflight 2, queue 8 — saturation by construction", bronzeRPS),
			"degrade ladder on: bronze's shed a=1 requests fall back to the prewarmed a=0 artifact (counted available)",
			"gold baseline row: the same gold stream with no bronze flood, for the isolation comparison",
		},
	}

	var goldBaselineP99 float64
	for pi, prof := range profiles {
		var inj *faults.Injector
		if prof.fc != nil {
			fc := *prof.fc
			fc.Seed = cfg.Seed + uint64(pi)
			inj = faults.New(fc)
		}
		rec := obs.New()
		srv := server.New(server.Config{
			Parallelism:  cfg.Parallelism,
			MaxInFlight:  2,
			MaxQueue:     8,
			Deadline:     5 * time.Second,
			StaleOK:      true,
			Retry:        2,
			RetryBackoff: time.Millisecond,
			DegradeOK:    true,
			DiskDir:      diskDir,
			Faults:       inj,
			Rec:          rec,
			Tenants: map[string]server.TenantPolicy{
				"gold":   {Weight: 4, Priority: server.PriorityHigh},
				"silver": {Weight: 2},
				"bronze": {Weight: 1, Priority: server.PriorityLow, MaxQueue: 4},
			},
		})
		if err := srv.Registry().RegisterDataset("bench", faults.Wrap(ds, inj.Point("dataset"))); err != nil {
			return nil, err
		}
		ts := httptest.NewServer(srv.Handler())

		// Prewarm: the gold/silver identities and the a=0 degrade rungs
		// for bronze's seed set, outside the measured window.
		warm := func(alpha float64, seeds []uint64) error {
			for _, seed := range seeds {
				body := fmt.Sprintf(`{"dataset":"bench","alpha":%g,"size":400,"kernels":128,"seed":%d}`, alpha, seed)
				// Prewarm is setup, not measurement: under the faulted
				// profiles a warm build can 503, so retry. A rung that
				// stays stuck is skipped — its requests then shed in the
				// measured window instead of degrading, which the table
				// reports honestly.
				for attempt := 0; attempt < 24; attempt++ {
					resp, err := http.Post(ts.URL+"/v1/sample", "application/json", bytes.NewReader([]byte(body)))
					if err != nil {
						return err
					}
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						break
					}
				}
			}
			return nil
		}
		coldSeeds := coldFor(pi)
		mix := []loadgen.TenantSpec{
			{Tenant: "gold", Mode: "closed", Conc: 2, Dataset: "bench", Alpha: 1, Size: 400, Kernels: 128, Seeds: warmSeeds},
			{Tenant: "silver", Mode: "closed", Conc: 2, Dataset: "bench", Alpha: 1, Size: 400, Kernels: 128, Seeds: warmSeeds},
			{Tenant: "bronze", Mode: "open", RPS: bronzeRPS, Dataset: "bench", Alpha: 1, Size: 400, Kernels: 128, Seeds: coldSeeds},
		}
		if err := warm(1, warmSeeds); err != nil {
			ts.Close()
			return nil, err
		}
		if err := warm(0, coldSeeds); err != nil {
			ts.Close()
			return nil, err
		}

		// Baseline window (fault-free profile only): gold alone, for the
		// isolation comparison.
		if prof.fc == nil {
			base, err := loadgen.Run(loadgen.Options{
				BaseURL: ts.URL, Duration: window,
				Specs: mix[:1],
			})
			if err != nil {
				ts.Close()
				return nil, err
			}
			g := base.Tenants[0]
			goldBaselineP99 = g.P99ms
			t.Rows = append(t.Rows, []string{
				"baseline", "gold", "closed",
				fmt.Sprintf("%d", g.Sent), fmt.Sprintf("%d", g.OK), "0", "0", "0",
				fmt.Sprintf("%.3f", g.P50ms), fmt.Sprintf("%.3f", g.P99ms), fmt.Sprintf("%.3f", g.P999ms),
				fmt.Sprintf("%.3f", g.Availability),
			})
			t.Benchmarks = append(t.Benchmarks, BenchResult{
				Name: "Load_baseline_gold_p99", Iters: int(g.OK), NsPerOp: int64(g.P99ms * 1e6),
			})
		}

		rep, err := loadgen.Run(loadgen.Options{BaseURL: ts.URL, Duration: window, Specs: mix})
		ts.Close()
		if err != nil {
			return nil, err
		}
		for _, tr := range rep.Tenants {
			shed := tr.Shed429 + tr.Unavail503 + tr.Timeout504
			t.Rows = append(t.Rows, []string{
				prof.name, tr.Tenant, tr.Mode,
				fmt.Sprintf("%d", tr.Sent), fmt.Sprintf("%d", tr.OK),
				fmt.Sprintf("%d", tr.Degraded), fmt.Sprintf("%d", shed),
				fmt.Sprintf("%d", tr.Errors),
				fmt.Sprintf("%.3f", tr.P50ms), fmt.Sprintf("%.3f", tr.P99ms), fmt.Sprintf("%.3f", tr.P999ms),
				fmt.Sprintf("%.3f", tr.Availability),
			})
			t.Benchmarks = append(t.Benchmarks, BenchResult{
				Name:  fmt.Sprintf("Load_%s_%s_p99", prof.name, tr.Tenant),
				Iters: int(tr.OK), NsPerOp: int64(tr.P99ms * 1e6),
			})
			// Failures under load must be sheds (429/503/504), never 5xx
			// surprises or transport errors — the chaos suite's guarantee,
			// restated at load. The faulted profiles get the same check:
			// injected faults surface as 503/504 after retries, not 500s.
			if tr.Errors > 0 {
				return nil, fmt.Errorf("load: profile %s tenant %s had %d non-shed failures", prof.name, tr.Tenant, tr.Errors)
			}
		}
	}
	if goldBaselineP99 > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("gold baseline p99 = %.3f ms — compare the flooded gold rows against it", goldBaselineP99))
	}
	return t, nil
}
