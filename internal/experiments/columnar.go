package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kde"
	"repro/internal/stats"
	"repro/internal/synth"
)

func init() {
	register("columnar", "columnar draw: row vs column layout, float32 path, worker scaling", columnarExp)
}

// columnarExp measures the exact two-pass biased draw under the three
// execution variants the columnar refactor introduced: the legacy row
// layout, the column (structure-of-arrays) layout, and the float32
// evaluation path. The workload matches the parallel experiment (n points,
// d = 4, 500 kernels, b = 1000) so BENCH_columnar.json is directly
// comparable against the BENCH_parallel.json baseline.
//
// Two contracts are asserted, not just reported:
//
//   - determinism: every float64 draw — row or columnar, at any worker
//     count — must be byte-identical to the serial row reference;
//   - scaling: two columnar workers must not run slower than one beyond a
//     noise allowance (wall-clock p2 ≤ 1.3 × p1, best-of-reps). This pins
//     the fix for the regression BENCH_parallel.json recorded, where
//     DrawParallel/2 (238.8ms) lost to DrawParallel/1 (210.9ms).
//
// The scaling assertion fails the experiment only in the full profile;
// the quick profile's workloads are too small to time reliably.
func columnarExp(cfg Config) (*Table, error) {
	n, reps := 100000, 3
	if cfg.Quick {
		n, reps = 20000, 1
	}
	setup := stats.NewRNG(cfg.Seed)
	l := synth.EqualClusters(10, 4, n, 0.10, setup)
	ds := l.Dataset()
	est, err := kde.Build(ds, kde.Options{NumKernels: 500}, setup)
	if err != nil {
		return nil, err
	}

	// draw runs one configuration reps times and keeps the fastest
	// wall-clock; the sample is identical across reps by the determinism
	// contract, so best-of is sound.
	draw := func(layout core.Layout, prec core.Precision, workers int) (*core.Sample, float64, error) {
		var best float64
		var s *core.Sample
		for r := 0; r < reps; r++ {
			var cur *core.Sample
			d, err := timed(func() error {
				var derr error
				cur, derr = core.Draw(ds, est, core.Options{
					Alpha:       1,
					TargetSize:  1000,
					Parallelism: workers,
					Layout:      layout,
					Precision:   prec,
					Obs:         cfg.Obs,
				}, stats.NewRNG(cfg.Seed))
				return derr
			})
			if err != nil {
				return nil, 0, err
			}
			if sec := d.Seconds(); r == 0 || sec < best {
				best, s = sec, cur
			}
		}
		return s, best, nil
	}

	type variant struct {
		name    string
		layout  core.Layout
		prec    core.Precision
		workers int
	}
	variants := []variant{
		{"row", core.LayoutRow, core.Float64, 1},
		{"row", core.LayoutRow, core.Float64, 4},
		{"col", core.LayoutColumnar, core.Float64, 1},
		{"col", core.LayoutColumnar, core.Float64, 2},
		{"col", core.LayoutColumnar, core.Float64, 4},
		{"col", core.LayoutColumnar, core.Float64, 8},
		{"col/f32", core.LayoutColumnar, core.Float32, 4},
	}

	t := &Table{
		Columns: []string{"layout", "workers", "sec", "points/sec", "speedup", "same sample"},
		Notes: []string{
			fmt.Sprintf("exact two-pass draw, n = %d, d = 4, a = 1, b = 1000, 500 kernels, best of %d reps", n, reps),
			"speedup is wall-clock vs the row/workers=1 reference; float64 rows must be byte-identical to it",
		},
	}
	var ref *core.Sample
	var refSec float64
	colSec := map[int]float64{}
	for _, v := range variants {
		s, sec, err := draw(v.layout, v.prec, v.workers)
		if err != nil {
			return nil, err
		}
		identical := "ref"
		switch {
		case ref == nil:
			ref, refSec = s, sec
		case v.prec == core.Float32:
			identical = fmt.Sprintf("n/a (%d pts)", len(s.Points))
		default:
			identical = "yes"
			if !sameDraw(ref, s) {
				identical = "NO"
			}
		}
		if identical == "NO" {
			return nil, fmt.Errorf("columnar: %s/%d draw diverged from the serial row reference", v.name, v.workers)
		}
		if v.layout == core.LayoutColumnar && v.prec == core.Float64 {
			colSec[v.workers] = sec
		}
		t.Rows = append(t.Rows, []string{
			v.name, itoa(v.workers), fmt.Sprintf("%.3f", sec),
			fmt.Sprintf("%.0f", float64(ds.Len())/sec),
			fmt.Sprintf("%.2fx", refSec/sec),
			identical,
		})
		t.Benchmarks = append(t.Benchmarks, BenchResult{
			Name:         fmt.Sprintf("Draw/%s/%d", v.name, v.workers),
			Iters:        reps,
			NsPerOp:      int64(sec * 1e9),
			PointsPerSec: float64(ds.Len()) / sec,
			Speedup:      refSec / sec,
		})
	}

	// Worker-scaling pin: adding a second worker must never cost more than
	// the noise allowance over one.
	ratio := colSec[2] / colSec[1]
	check := "PASS"
	if ratio > 1.3 {
		check = "FAIL"
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("scaling check: col/2 vs col/1 wall-clock ratio %.2f (bound 1.30) — %s", ratio, check))
	if check == "FAIL" && !cfg.Quick {
		return nil, fmt.Errorf("columnar: worker-scaling regression: col/2 took %.2fx col/1 (bound 1.30)", ratio)
	}
	return t, nil
}
