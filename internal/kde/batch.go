package kde

import (
	"repro/internal/geom"
	"repro/internal/kdtree"
)

// DensityBatch evaluates the density at every point of pts into
// out[:len(pts)], equivalent to calling Density per point but built for
// the block-scan hot path. Two ingredients make it fast:
//
//   - For kernels with true compact support (every profile except
//     Gaussian) the product kernel vanishes outside the axis-aligned box
//     p ± sup·h, so the center tree is pruned with the box itself rather
//     than the circumscribed ball Density uses — admitting a factor
//     ~(πd/2)^(d/2)/Γ(d/2+1) fewer candidates as dimension grows — and
//     leaf points are fed straight into the kernel without a distance
//     test (out-of-box centers contribute exact zeros).
//   - The traversal reuses one leaf-range buffer and node stack across
//     the batch (no per-query allocation, no per-center closure call),
//     and the Epanechnikov kernel — the paper's default — is evaluated
//     with a fused product loop instead of two interface calls per
//     center per dimension.
//
// The method allocates only its per-call scratch, so concurrent calls on
// the same Estimator (one per scan block) are safe. Results are a pure
// function of the inputs — identical for any batching or concurrency.
// Floating-point visit order differs from Density's recursive traversal,
// so the two agree to rounding, not bit-for-bit.
func (e *Estimator) DensityBatch(pts []geom.Point, out []float64) {
	if len(out) < len(pts) {
		panic("kde: DensityBatch output shorter than input")
	}
	// With a Recorder attached the counting twins run instead; they share
	// the evaluation code shape and produce identical densities, differing
	// only in traversal accounting. The dispatch keeps the disabled hot
	// path free of even per-leaf counting.
	switch e.kernel.(type) {
	case Epanechnikov, Biweight, Triangular, Uniform:
		if e.cKernelEvals != nil {
			e.compactBatchObs(pts, out)
		} else {
			e.compactBatch(pts, out)
		}
	default:
		if e.cKernelEvals != nil {
			e.ballBatchObs(pts, out)
		} else {
			e.ballBatch(pts, out)
		}
	}
}

// compactBatch is the box-pruned path for compactly supported kernels.
func (e *Estimator) compactBatch(pts []geom.Point, out []float64) {
	_, epan := e.kernel.(Epanechnikov)
	var leaves, stack []int32
	for i, p := range pts {
		if p.Dims() != e.dims {
			panic("kde: query dimension mismatch")
		}
		leaves, stack = e.tree.AppendBoxLeaves(p, e.boxReach, leaves[:0], stack)
		var sum float64
		for l := 0; l < len(leaves); l += 2 {
			idx := e.tree.Indices(leaves[l], leaves[l+1])
			if epan {
				sum += e.epanechnikovSum(idx, p)
			} else {
				for _, ci := range idx {
					sum += e.kernelAt(int(ci), p)
				}
			}
		}
		out[i] = e.weight * sum
	}
}

// ballBatch is the truncation-radius path for kernels with unbounded
// support (Gaussian): the Euclidean cutoff at e.reach is part of the
// estimate's definition there, so it must filter exactly as Density does.
func (e *Estimator) ballBatch(pts []geom.Point, out []float64) {
	var buf, stack []int32
	for i, p := range pts {
		if p.Dims() != e.dims {
			panic("kde: query dimension mismatch")
		}
		buf, stack = e.tree.WithinAppend(p, e.reach, buf[:0], stack)
		var sum float64
		for _, ci := range buf {
			sum += e.kernelAt(int(ci), p)
		}
		out[i] = e.weight * sum
	}
}

// compactBatchObs is compactBatch with observability: it counts candidate
// kernel evaluations (every center of every admitted leaf) and the
// kd-tree nodes visited versus pruned, tallying locally and flushing one
// atomic add per counter per batch call. Densities are identical to
// compactBatch — the per-center arithmetic is shared.
func (e *Estimator) compactBatchObs(pts []geom.Point, out []float64) {
	_, epan := e.kernel.(Epanechnikov)
	var leaves, stack []int32
	var st kdtree.Stats
	var evals int64
	for i, p := range pts {
		if p.Dims() != e.dims {
			panic("kde: query dimension mismatch")
		}
		leaves, stack = e.tree.AppendBoxLeavesStats(p, e.boxReach, leaves[:0], stack, &st)
		var sum float64
		for l := 0; l < len(leaves); l += 2 {
			idx := e.tree.Indices(leaves[l], leaves[l+1])
			evals += int64(len(idx))
			if epan {
				sum += e.epanechnikovSum(idx, p)
			} else {
				for _, ci := range idx {
					sum += e.kernelAt(int(ci), p)
				}
			}
		}
		out[i] = e.weight * sum
	}
	e.flushBatchStats(evals, st)
}

// ballBatchObs is ballBatch with the accounting of compactBatchObs.
func (e *Estimator) ballBatchObs(pts []geom.Point, out []float64) {
	var buf, stack []int32
	var st kdtree.Stats
	var evals int64
	for i, p := range pts {
		if p.Dims() != e.dims {
			panic("kde: query dimension mismatch")
		}
		buf, stack = e.tree.WithinAppendStats(p, e.reach, buf[:0], stack, &st)
		evals += int64(len(buf))
		var sum float64
		for _, ci := range buf {
			sum += e.kernelAt(int(ci), p)
		}
		out[i] = e.weight * sum
	}
	e.flushBatchStats(evals, st)
}

func (e *Estimator) flushBatchStats(evals int64, st kdtree.Stats) {
	e.cKernelEvals.Add(evals)
	e.cKDVisited.Add(st.Visited)
	e.cKDPruned.Add(st.Pruned)
}

// epanechnikovSum accumulates the unit-mass product-kernel values of the
// given centers at p with the Epanechnikov profile inlined:
// K(u) = 0.75·(1-u²) on [-1, 1].
func (e *Estimator) epanechnikovSum(centers []int32, p geom.Point) float64 {
	d := e.dims
	inv := e.invH
	var sum float64
	if e.invScale != nil {
		for _, ci := range centers {
			c := e.centers[ci]
			is := e.invScale[ci]
			v := 1.0
			for j := 0; j < d; j++ {
				ih := inv[j] * is
				u := (p[j] - c[j]) * ih
				if u < -1 || u > 1 {
					v = 0
					break
				}
				v *= 0.75 * (1 - u*u) * ih
			}
			sum += v
		}
		return sum
	}
	for _, ci := range centers {
		c := e.centers[ci]
		v := 1.0
		for j := 0; j < d; j++ {
			u := (p[j] - c[j]) * inv[j]
			if u < -1 || u > 1 {
				v = 0
				break
			}
			v *= 0.75 * (1 - u*u) * inv[j]
		}
		sum += v
	}
	return sum
}
