package kde

import (
	"fmt"
	"sync"

	"repro/internal/geom"
	"repro/internal/kdtree"
)

// evalScratch is the reusable per-batch evaluation state: the pre-scaled
// query, the query box corners, a gather buffer for columnar input, and
// the kd-tree traversal slices. Batches borrow one from a package pool,
// so steady-state density evaluation performs no per-block allocations.
type evalScratch struct {
	qs     []float64  // query pre-scaled by invH
	qs32   []float32  // float32 twin of qs
	qlo    []float64  // query box corner q - boxReach
	qhi    []float64  // query box corner q + boxReach
	pt     geom.Point // gather buffer for columnar input
	leaves []int32
	stack  []int32
}

var evalScratchPool = sync.Pool{New: func() interface{} { return new(evalScratch) }}

func getEvalScratch(d int) *evalScratch {
	sc := evalScratchPool.Get().(*evalScratch)
	if cap(sc.qs) < d {
		sc.qs = make([]float64, d)
		sc.qs32 = make([]float32, d)
		sc.qlo = make([]float64, d)
		sc.qhi = make([]float64, d)
		sc.pt = make(geom.Point, d)
	}
	sc.qs, sc.qs32 = sc.qs[:d], sc.qs32[:d]
	sc.qlo, sc.qhi, sc.pt = sc.qlo[:d], sc.qhi[:d], sc.pt[:d]
	return sc
}

// DensityBatch evaluates the density at every point of pts into
// out[:len(pts)], equivalent to calling Density per point but built for
// the block-scan hot path. For the Epanechnikov kernel — the paper's
// default — evaluation runs on the flat slab layout (see the Estimator
// fields): the center tree is pruned with per-node bounding boxes, leaf
// ranges index a tree-ordered pre-scaled center slab directly, and the
// product kernel is evaluated with one subtraction per dimension. Other
// kernels keep the per-center path (box-pruned for compact supports, the
// truncation ball for Gaussian).
//
// All scratch is pooled, so concurrent calls on the same Estimator (one
// per scan block) are safe and allocation-free in steady state. Results
// are a pure function of the inputs — identical for any batching or
// concurrency, and bit-identical to DensityBatchCols over the same points.
// Floating-point visit order differs from Density's recursive traversal,
// so the per-point and batch paths agree to rounding, not bit-for-bit.
func (e *Estimator) DensityBatch(pts []geom.Point, out []float64) {
	if len(out) < len(pts) {
		panic("kde: DensityBatch output shorter than input")
	}
	sc := getEvalScratch(e.dims)
	defer evalScratchPool.Put(sc)
	// With a Recorder attached the counting twins run instead; they share
	// the evaluation arithmetic and produce identical densities, differing
	// only in traversal accounting. The dispatch keeps the disabled hot
	// path free of even per-leaf counting.
	if e.cKernelEvals != nil {
		var st kdtree.Stats
		var evals int64
		for i, p := range pts {
			if p.Dims() != e.dims {
				panic("kde: query dimension mismatch")
			}
			out[i] = e.evalPointObs(p, sc, &st, &evals)
		}
		e.flushBatchStats(evals, st)
		return
	}
	for i, p := range pts {
		if p.Dims() != e.dims {
			panic("kde: query dimension mismatch")
		}
		out[i] = e.evalPoint(p, sc)
	}
}

// DensityBatchCols is DensityBatch over a columnar block: cols[j][i] is
// coordinate j of point i. Each point is gathered into a pooled row
// buffer and evaluated by exactly the code path DensityBatch uses, so the
// row and columnar results are bit-identical at float64 precision — the
// parity contract the sampler's layout option rests on.
func (e *Estimator) DensityBatchCols(cols [][]float64, out []float64) {
	n := e.checkCols(cols, out)
	sc := getEvalScratch(e.dims)
	defer evalScratchPool.Put(sc)
	p := sc.pt
	if e.cKernelEvals != nil {
		var st kdtree.Stats
		var evals int64
		for i := 0; i < n; i++ {
			for j := range p {
				p[j] = cols[j][i]
			}
			out[i] = e.evalPointObs(p, sc, &st, &evals)
		}
		e.flushBatchStats(evals, st)
		return
	}
	for i := 0; i < n; i++ {
		for j := range p {
			p[j] = cols[j][i]
		}
		out[i] = e.evalPoint(p, sc)
	}
}

// DensityBatchCols32 is DensityBatchCols evaluated in float32: the center
// slab, the pre-scaled query, and the kernel products are all single
// precision, halving the evaluation bandwidth; the widened results land in
// out. The kd-tree traversal (an exact box test) stays in float64, so the
// same centers are considered — only the kernel arithmetic is rounded.
// Results are deterministic at every worker count but are NOT bit-equal to
// the float64 path; the relative error is bounded by the float32 epsilon
// times the summation depth (see DESIGN.md, "Memory layout & zero-copy
// scans"). Estimators without a fused engine (non-Epanechnikov kernels)
// fall back to the float64 columnar path.
func (e *Estimator) DensityBatchCols32(cols [][]float64, out []float64) {
	if e.flat == nil {
		e.DensityBatchCols(cols, out)
		return
	}
	n := e.checkCols(cols, out)
	e.f32Once.Do(e.buildFlat32)
	sc := getEvalScratch(e.dims)
	defer evalScratchPool.Put(sc)
	p := sc.pt
	if e.cKernelEvals != nil {
		var st kdtree.Stats
		var evals int64
		for i := 0; i < n; i++ {
			for j := range p {
				p[j] = cols[j][i]
			}
			out[i] = e.flatEval32Obs(p, sc, &st, &evals)
		}
		e.flushBatchStats(evals, st)
		return
	}
	for i := 0; i < n; i++ {
		for j := range p {
			p[j] = cols[j][i]
		}
		out[i] = e.flatEval32(p, sc)
	}
}

func (e *Estimator) checkCols(cols [][]float64, out []float64) int {
	if len(cols) != e.dims {
		panic(fmt.Sprintf("kde: %d columns for %d dims", len(cols), e.dims))
	}
	n := len(cols[0])
	for j, col := range cols {
		if len(col) != n {
			panic(fmt.Sprintf("kde: column %d has %d rows, want %d", j, len(col), n))
		}
	}
	if len(out) < n {
		panic("kde: DensityBatchCols output shorter than input")
	}
	return n
}

// evalPoint returns the density at p using the batch evaluation layout.
func (e *Estimator) evalPoint(p geom.Point, sc *evalScratch) float64 {
	if e.flat != nil {
		d := e.dims
		for j := 0; j < d; j++ {
			sc.qs[j] = p[j] * e.invH[j]
			sc.qlo[j] = p[j] - e.boxReach[j]
			sc.qhi[j] = p[j] + e.boxReach[j]
		}
		sc.leaves, sc.stack = e.tree.BoxLeaves(sc.qlo, sc.qhi, sc.leaves[:0], sc.stack)
		return e.weight * e.flatSum(sc.leaves, sc.qs)
	}
	if isCompact(e.kernel) {
		sc.leaves, sc.stack = e.tree.AppendBoxLeaves(p, e.boxReach, sc.leaves[:0], sc.stack)
		var sum float64
		for l := 0; l < len(sc.leaves); l += 2 {
			for _, ci := range e.tree.Indices(sc.leaves[l], sc.leaves[l+1]) {
				sum += e.kernelAt(int(ci), p)
			}
		}
		return e.weight * sum
	}
	// Unbounded support (Gaussian): the Euclidean cutoff at e.reach is part
	// of the estimate's definition, so it must filter exactly as Density does.
	sc.leaves, sc.stack = e.tree.WithinAppend(p, e.reach, sc.leaves[:0], sc.stack)
	var sum float64
	for _, ci := range sc.leaves {
		sum += e.kernelAt(int(ci), p)
	}
	return e.weight * sum
}

// evalPointObs is evalPoint with traversal and evaluation accounting.
// Densities are identical — the arithmetic is shared.
func (e *Estimator) evalPointObs(p geom.Point, sc *evalScratch, st *kdtree.Stats, evals *int64) float64 {
	if e.flat != nil {
		d := e.dims
		for j := 0; j < d; j++ {
			sc.qs[j] = p[j] * e.invH[j]
			sc.qlo[j] = p[j] - e.boxReach[j]
			sc.qhi[j] = p[j] + e.boxReach[j]
		}
		sc.leaves, sc.stack = e.tree.BoxLeavesStats(sc.qlo, sc.qhi, sc.leaves[:0], sc.stack, st)
		for l := 0; l < len(sc.leaves); l += 2 {
			*evals += int64(sc.leaves[l+1] - sc.leaves[l])
		}
		return e.weight * e.flatSum(sc.leaves, sc.qs)
	}
	if isCompact(e.kernel) {
		sc.leaves, sc.stack = e.tree.AppendBoxLeavesStats(p, e.boxReach, sc.leaves[:0], sc.stack, st)
		var sum float64
		for l := 0; l < len(sc.leaves); l += 2 {
			idx := e.tree.Indices(sc.leaves[l], sc.leaves[l+1])
			*evals += int64(len(idx))
			for _, ci := range idx {
				sum += e.kernelAt(int(ci), p)
			}
		}
		return e.weight * sum
	}
	sc.leaves, sc.stack = e.tree.WithinAppendStats(p, e.reach, sc.leaves[:0], sc.stack, st)
	*evals += int64(len(sc.leaves))
	var sum float64
	for _, ci := range sc.leaves {
		sum += e.kernelAt(int(ci), p)
	}
	return e.weight * sum
}

// isCompact reports whether the kernel's support is the box [-1, 1].
func isCompact(k Kernel) bool {
	switch k.(type) {
	case Epanechnikov, Biweight, Triangular, Uniform:
		return true
	}
	return false
}

func (e *Estimator) flushBatchStats(evals int64, st kdtree.Stats) {
	e.cKernelEvals.Add(evals)
	e.cKDVisited.Add(st.Visited)
	e.cKDPruned.Add(st.Pruned)
}

// flatSum accumulates the unnormalized Epanechnikov product-kernel values
// of the centers in the given leaf ranges at the pre-scaled query qs
// (qs[j] = p[j]·invH[j]). Leaf ranges index the flat slab directly — the
// tree-order layout means no index gather — and each dimension costs one
// subtraction, one multiply, and one fused range test. The dims==4
// specialization keeps the whole query in registers; its arithmetic is
// associativity-identical to the generic loop, so the two return the same
// bits and the specialization is purely a scheduling win.
func (e *Estimator) flatSum(leaves []int32, qs []float64) float64 {
	d := e.dims
	flat := e.flat
	var sum float64
	if e.isFlat == nil {
		if d == 4 {
			q0, q1, q2, q3 := qs[0], qs[1], qs[2], qs[3]
			for l := 0; l < len(leaves); l += 2 {
				for k, end := 4*int(leaves[l]), 4*int(leaves[l+1]); k < end; k += 4 {
					u0 := q0 - flat[k]
					u1 := q1 - flat[k+1]
					u2 := q2 - flat[k+2]
					u3 := q3 - flat[k+3]
					if u0 < -1 || u0 > 1 || u1 < -1 || u1 > 1 ||
						u2 < -1 || u2 > 1 || u3 < -1 || u3 > 1 {
						continue
					}
					sum += (1 - u0*u0) * (1 - u1*u1) * (1 - u2*u2) * (1 - u3*u3)
				}
			}
			return sum * e.coeffAll
		}
		for l := 0; l < len(leaves); l += 2 {
			for k := int(leaves[l]); k < int(leaves[l+1]); k++ {
				c := flat[k*d : k*d+d]
				v := 1.0
				ok := true
				for j, cv := range c {
					u := qs[j] - cv
					if u < -1 || u > 1 {
						ok = false
						break
					}
					v *= 1 - u*u
				}
				if ok {
					sum += v
				}
			}
		}
		return sum * e.coeffAll
	}
	// Adaptive bandwidths: the slab is pre-scaled per center, so the query
	// must be rescaled by the center's inverse scale as it is compared.
	for l := 0; l < len(leaves); l += 2 {
		for k := int(leaves[l]); k < int(leaves[l+1]); k++ {
			is := e.isFlat[k]
			c := flat[k*d : k*d+d]
			v := 1.0
			ok := true
			for j, cv := range c {
				u := qs[j]*is - cv
				if u < -1 || u > 1 {
					ok = false
					break
				}
				v *= 1 - u*u
			}
			if ok {
				sum += v * e.coeff[k]
			}
		}
	}
	return sum
}

// flatSlabs32 is the float32 twin of the flat evaluation slabs.
type flatSlabs32 struct {
	flat     []float32
	coeff    []float32
	isFlat   []float32
	coeffAll float32
	weight   float32
}

func (e *Estimator) buildFlat32() {
	s := &flatSlabs32{
		flat:     make([]float32, len(e.flat)),
		coeffAll: float32(e.coeffAll),
		weight:   float32(e.weight),
	}
	for i, v := range e.flat {
		s.flat[i] = float32(v)
	}
	if e.coeff != nil {
		s.coeff = make([]float32, len(e.coeff))
		for i, v := range e.coeff {
			s.coeff[i] = float32(v)
		}
		s.isFlat = make([]float32, len(e.isFlat))
		for i, v := range e.isFlat {
			s.isFlat[i] = float32(v)
		}
	}
	e.f32 = s
}

func (e *Estimator) flatEval32(p geom.Point, sc *evalScratch) float64 {
	d := e.dims
	for j := 0; j < d; j++ {
		sc.qs32[j] = float32(p[j] * e.invH[j])
		sc.qlo[j] = p[j] - e.boxReach[j]
		sc.qhi[j] = p[j] + e.boxReach[j]
	}
	sc.leaves, sc.stack = e.tree.BoxLeaves(sc.qlo, sc.qhi, sc.leaves[:0], sc.stack)
	return float64(e.f32.weight * e.flatSum32(sc.leaves, sc.qs32))
}

func (e *Estimator) flatEval32Obs(p geom.Point, sc *evalScratch, st *kdtree.Stats, evals *int64) float64 {
	d := e.dims
	for j := 0; j < d; j++ {
		sc.qs32[j] = float32(p[j] * e.invH[j])
		sc.qlo[j] = p[j] - e.boxReach[j]
		sc.qhi[j] = p[j] + e.boxReach[j]
	}
	sc.leaves, sc.stack = e.tree.BoxLeavesStats(sc.qlo, sc.qhi, sc.leaves[:0], sc.stack, st)
	for l := 0; l < len(sc.leaves); l += 2 {
		*evals += int64(sc.leaves[l+1] - sc.leaves[l])
	}
	return float64(e.f32.weight * e.flatSum32(sc.leaves, sc.qs32))
}

// flatSum32 is flatSum in float32 over the float32 slabs.
func (e *Estimator) flatSum32(leaves []int32, qs []float32) float32 {
	d := e.dims
	s := e.f32
	flat := s.flat
	var sum float32
	if s.isFlat == nil {
		for l := 0; l < len(leaves); l += 2 {
			for k := int(leaves[l]); k < int(leaves[l+1]); k++ {
				c := flat[k*d : k*d+d]
				v := float32(1)
				ok := true
				for j, cv := range c {
					u := qs[j] - cv
					if u < -1 || u > 1 {
						ok = false
						break
					}
					v *= 1 - u*u
				}
				if ok {
					sum += v
				}
			}
		}
		return sum * s.coeffAll
	}
	for l := 0; l < len(leaves); l += 2 {
		for k := int(leaves[l]); k < int(leaves[l+1]); k++ {
			is := s.isFlat[k]
			c := flat[k*d : k*d+d]
			v := float32(1)
			ok := true
			for j, cv := range c {
				u := qs[j]*is - cv
				if u < -1 || u > 1 {
					ok = false
					break
				}
				v *= 1 - u*u
			}
			if ok {
				sum += v * s.coeff[k]
			}
		}
	}
	return sum
}
