package kde

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// Options configure estimator construction.
type Options struct {
	// NumKernels is the number of kernel centers (ks in the paper).
	// The paper proposes 1000 as a practical default (§4.4); DefaultNumKernels
	// is applied when zero.
	NumKernels int

	// Kernel is the one-dimensional profile; Epanechnikov when nil,
	// matching the paper's experiments.
	Kernel Kernel

	// BandwidthScale multiplies the Scott's-rule bandwidth in every
	// dimension. 1.0 when zero.
	BandwidthScale float64

	// Bandwidths, when non-nil, overrides the per-dimension bandwidths
	// entirely. Its length must equal the dataset dimensionality.
	Bandwidths []float64

	// AdaptiveK, when positive, switches to locally adaptive (sample-
	// point) bandwidths in the spirit of the paper's KDE reference [9]:
	// each kernel's bandwidth is the global Scott's-rule bandwidth scaled
	// by the ratio of that center's distance to its AdaptiveK-th nearest
	// center over the median such distance. Kernels in dense regions
	// narrow, kernels in sparse regions widen, sharpening multi-modal
	// estimates without a global bandwidth tradeoff.
	AdaptiveK int

	// Parallelism bounds the workers used for estimator construction
	// (currently the adaptive-bandwidth k-NN scan over the centers):
	// 0 uses runtime.GOMAXPROCS(0), 1 is the serial reference path. The
	// resulting estimator is identical for every setting.
	Parallelism int

	// Ctx, when non-nil, cancels estimator construction: the build scan
	// checks it every few thousand points and a done context aborts with
	// dataset.ErrCanceled wrapping the context's error.
	Ctx context.Context

	// Obs, when non-nil, receives the build span plus, from the finished
	// estimator's DensityBatch calls, the kernel-evaluation and kd-tree
	// traversal counters. The estimator itself is identical with or
	// without it.
	Obs *obs.Recorder

	// Progress, when non-nil, is called periodically during the
	// construction scan with (points seen, dataset size).
	Progress func(done, total int)
}

// DefaultNumKernels is the paper's recommended kernel count (§4.4:
// "Setting the number of kernels … = 1000 allows accurate estimation").
const DefaultNumKernels = 1000

// Estimator is a product-kernel density estimator scaled to integrate to
// the dataset size n: for a region R, ∫_R f ≈ |D ∩ R|.
//
// Evaluation cost is O(log ks + m·d) per point, where m is the number of
// centers whose support reaches the query point; a kd-tree over the
// centers prunes the rest.
type Estimator struct {
	kernel  Kernel
	centers []geom.Point
	h       []float64 // per-dimension bandwidth
	weight  float64   // mass per kernel = n/ks
	n       int       // dataset size represented
	dims    int
	tree    *kdtree.Tree
	reach   float64 // Euclidean radius covering the widest support box
	// boxReach is the per-dimension half-width of the widest support box
	// (sup·h_j, scaled by the largest adaptive multiplier). For kernels
	// with true compact support the box test alone decides membership,
	// letting DensityBatch prune the center tree much more tightly than
	// the circumscribed ball `reach` allows.
	boxReach []float64
	invH     []float64
	// scale holds per-center bandwidth multipliers (nil when uniform);
	// invScale caches their reciprocals.
	scale    []float64
	invScale []float64
	// adaptiveK and buildPar remember the construction parameters so
	// Extend can rebuild the tree and adaptive scales the same way.
	adaptiveK int
	buildPar  int
	// Flat evaluation slabs, built for the Epanechnikov kernel only (the
	// paper's default and the only profile with a fused engine): the
	// kernel centers laid out in kd-tree leaf order, one contiguous
	// []float64, with every coordinate pre-scaled by the inverse
	// bandwidth — flat[k*dims+j] = c[j]·invH[j] (·invScale in the
	// adaptive case). Leaf ranges reported by the tree index the slab
	// directly, so the hot loop walks sequential memory with no
	// per-center pointer chase and evaluates u = q̂[j] − flat[…] in one
	// subtraction (the query is pre-scaled once per point). The
	// per-dimension 0.75·invH normalization is hoisted into coeffAll
	// (uniform) or per-center coeff (adaptive).
	flat     []float64
	coeff    []float64 // per-center Π 0.75·invH·invScale; nil when uniform
	isFlat   []float64 // per-center invScale in leaf order; nil when uniform
	coeffAll float64   // shared Π 0.75·invH when bandwidths are uniform
	// f32 holds the float32 twins of the flat slabs for the reduced-
	// precision evaluation path, built lazily on first use.
	f32     *flatSlabs32
	f32Once sync.Once
	// Observability counter handles (nil when no Recorder is attached —
	// the batch evaluation paths test cKernelEvals to pick the counting
	// variant, so the disabled hot path is unchanged).
	cKernelEvals *obs.Counter
	cKDVisited   *obs.Counter
	cKDPruned    *obs.Counter
}

// SetRecorder attaches (or, with nil, detaches) a Recorder: subsequent
// DensityBatch calls count candidate kernel evaluations and kd-tree nodes
// visited versus pruned. Density values are identical either way.
func (e *Estimator) SetRecorder(r *obs.Recorder) {
	if r == nil {
		e.cKernelEvals, e.cKDVisited, e.cKDPruned = nil, nil, nil
		return
	}
	e.cKernelEvals = r.Counter(obs.CtrKernelEvals)
	e.cKDVisited = r.Counter(obs.CtrKDNodesVisited)
	e.cKDPruned = r.Counter(obs.CtrKDNodesPruned)
}

// Build constructs an estimator from one pass over ds: a reservoir of
// NumKernels centers and per-dimension running moments for the Scott's-rule
// bandwidths are collected in the same scan.
func Build(ds interface {
	Scan(func(geom.Point) error) error
	Len() int
	Dims() int
}, opts Options, rng *stats.RNG) (*Estimator, error) {
	ks := opts.NumKernels
	if ks == 0 {
		ks = DefaultNumKernels
	}
	if ks < 1 {
		return nil, errors.New("kde: NumKernels must be positive")
	}
	kern := opts.Kernel
	if kern == nil {
		kern = Epanechnikov{}
	}
	scale := opts.BandwidthScale
	if scale == 0 {
		scale = 1
	}
	if scale < 0 {
		return nil, errors.New("kde: negative BandwidthScale")
	}
	d := ds.Dims()
	if opts.Bandwidths != nil && len(opts.Bandwidths) != d {
		return nil, fmt.Errorf("kde: %d bandwidths for %d dims", len(opts.Bandwidths), d)
	}

	span := opts.Obs.StartSpan("kde/build")
	defer span.End()

	// Single pass: reservoir sampling of centers + per-dim moments.
	centers := make([]geom.Point, 0, ks)
	mom := stats.NewMultiMoments(d)
	total := ds.Len()
	seen := 0
	err := ds.Scan(func(p geom.Point) error {
		mom.Add(p)
		seen++
		if seen%4096 == 0 && opts.Ctx != nil {
			if cerr := opts.Ctx.Err(); cerr != nil {
				return fmt.Errorf("%w: %w", dataset.ErrCanceled, cerr)
			}
		}
		if opts.Progress != nil && seen%8192 == 0 {
			opts.Progress(seen, total)
		}
		if len(centers) < ks {
			centers = append(centers, p.Clone())
			return nil
		}
		if j := rng.Intn(seen); j < ks {
			centers[j] = p.Clone()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if seen == 0 {
		return nil, errors.New("kde: empty dataset")
	}
	if opts.Progress != nil {
		opts.Progress(seen, total)
	}
	span.AddPoints(int64(seen))
	opts.Obs.Counter(obs.CtrDataPasses).Inc()
	opts.Obs.Counter(obs.CtrPointsScanned).Add(int64(seen))

	h := make([]float64, d)
	if opts.Bandwidths != nil {
		copy(h, opts.Bandwidths)
		for i, v := range h {
			if v <= 0 {
				return nil, fmt.Errorf("kde: non-positive bandwidth on dim %d", i)
			}
		}
	} else {
		// Scott's rule on the center sample: h_j = σ_j · ks^(-1/(d+4)).
		factor := math.Pow(float64(len(centers)), -1/float64(d+4)) * scale
		for j := 0; j < d; j++ {
			sigma := mom.Dim(j).StdDev()
			if sigma == 0 {
				// Degenerate dimension: any positive width works; use a
				// sliver of the (possibly zero) range or an absolute floor.
				sigma = 1e-3
			}
			h[j] = sigma * factor
		}
	}

	est, err := newEstimator(kern, centers, h, seen, opts.AdaptiveK, opts.Parallelism)
	if err != nil {
		return nil, err
	}
	est.SetRecorder(opts.Obs)
	return est, nil
}

// FromCenters builds an estimator directly from explicit centers and
// bandwidths, representing a dataset of size n. Tests and the grid baseline
// use it to construct estimators with known shapes.
func FromCenters(kern Kernel, centers []geom.Point, h []float64, n int) (*Estimator, error) {
	if kern == nil {
		kern = Epanechnikov{}
	}
	if len(centers) == 0 {
		return nil, errors.New("kde: no centers")
	}
	d := centers[0].Dims()
	if len(h) != d {
		return nil, fmt.Errorf("kde: %d bandwidths for %d dims", len(h), d)
	}
	for i, v := range h {
		if v <= 0 {
			return nil, fmt.Errorf("kde: non-positive bandwidth on dim %d", i)
		}
	}
	if n <= 0 {
		return nil, errors.New("kde: non-positive dataset size")
	}
	cc := make([]geom.Point, len(centers))
	for i, c := range centers {
		if c.Dims() != d {
			return nil, fmt.Errorf("kde: center %d has %d dims, want %d", i, c.Dims(), d)
		}
		cc[i] = c.Clone()
	}
	return newEstimator(kern, cc, append([]float64(nil), h...), n, 0, 1)
}

func newEstimator(kern Kernel, centers []geom.Point, h []float64, n int, adaptiveK, parallelism int) (*Estimator, error) {
	d := len(h)
	sup := kern.Support()
	var reach2 float64
	invH := make([]float64, d)
	boxReach := make([]float64, d)
	for j, v := range h {
		r := sup * v
		reach2 += r * r
		boxReach[j] = r
		invH[j] = 1 / v
	}
	e := &Estimator{
		kernel:    kern,
		centers:   centers,
		h:         h,
		weight:    float64(n) / float64(len(centers)),
		n:         n,
		dims:      d,
		reach:     math.Sqrt(reach2),
		boxReach:  boxReach,
		invH:      invH,
		adaptiveK: adaptiveK,
		buildPar:  parallelism,
	}
	e.tree = kdtree.Build(centers)
	if adaptiveK > 0 && len(centers) > 1 {
		e.applyAdaptiveScales(adaptiveK, parallelism)
	}
	e.buildFlat()
	return e, nil
}

// buildFlat materializes the flat evaluation slabs (see the Estimator
// fields). It must run after the tree and any adaptive scales exist.
func (e *Estimator) buildFlat() {
	if _, ok := e.kernel.(Epanechnikov); !ok {
		return
	}
	m := len(e.centers)
	d := e.dims
	idx := e.tree.Indices(0, int32(m))
	e.flat = make([]float64, m*d)
	base := 1.0
	for _, ih := range e.invH {
		base *= 0.75 * ih
	}
	if e.invScale == nil {
		e.coeffAll = base
		for k, ci := range idx {
			c := e.centers[ci]
			for j := 0; j < d; j++ {
				e.flat[k*d+j] = c[j] * e.invH[j]
			}
		}
		return
	}
	e.coeff = make([]float64, m)
	e.isFlat = make([]float64, m)
	for k, ci := range idx {
		c := e.centers[ci]
		is := e.invScale[ci]
		e.isFlat[k] = is
		co := base
		for j := 0; j < d; j++ {
			e.flat[k*d+j] = c[j] * (e.invH[j] * is)
			co *= is
		}
		e.coeff[k] = co
	}
}

// applyAdaptiveScales computes per-center bandwidth multipliers from the
// distance to the k-th nearest other center, normalized by the median so
// the typical kernel keeps the Scott's-rule width. Scales are clamped to
// [1/4, 4] to keep the kd-tree pruning radius and kernel mass sane.
// The k-NN queries are independent per center and run on the worker pool;
// each writes only its own dists slot, so the scales are identical for
// every parallelism.
func (e *Estimator) applyAdaptiveScales(k, parallelism int) {
	m := len(e.centers)
	if k > m-1 {
		k = m - 1
	}
	dists := make([]float64, m)
	parallel.Do(m, parallelism, func(i int) error {
		nn := e.tree.KNN(e.centers[i], k+1) // includes the center itself at distance 0
		dists[i] = nn[len(nn)-1].Dist
		return nil
	})
	med := stats.Quantile(dists, 0.5)
	if med <= 0 {
		return // degenerate center set; keep uniform bandwidths
	}
	e.scale = make([]float64, m)
	e.invScale = make([]float64, m)
	maxScale := 1.0
	for i, dv := range dists {
		s := dv / med
		if s < 0.25 {
			s = 0.25
		}
		if s > 4 {
			s = 4
		}
		e.scale[i] = s
		e.invScale[i] = 1 / s
		if s > maxScale {
			maxScale = s
		}
	}
	e.reach *= maxScale
	for j := range e.boxReach {
		e.boxReach[j] *= maxScale
	}
}

// Extend returns a new estimator over a dataset grown to n points: e's
// kernel set plus deltaCenters, with the per-kernel mass rescaled to
// n / (ks + len(deltaCenters)). The per-dimension Scott's-rule bandwidths
// are inherited from e — a deliberate approximation that keeps the extend
// O(ks' log ks') (only the kd-tree over the merged centers is rebuilt, and
// the adaptive per-center scales are recomputed against the merged tree);
// the bandwidth drift this introduces is part of the drift budget the
// incremental sampler tracks (DESIGN.md §5e).
//
// e itself is unchanged — estimators are immutable once built, which is
// what lets the serving layer extend a cached artifact that concurrent
// requests are still reading. deltaCenters are cloned; observability
// counter handles are carried over.
func (e *Estimator) Extend(deltaCenters []geom.Point, n int) (*Estimator, error) {
	if n <= 0 {
		return nil, errors.New("kde: non-positive dataset size")
	}
	merged := make([]geom.Point, 0, len(e.centers)+len(deltaCenters))
	merged = append(merged, e.centers...)
	for i, c := range deltaCenters {
		if c.Dims() != e.dims {
			return nil, fmt.Errorf("kde: delta center %d has %d dims, want %d", i, c.Dims(), e.dims)
		}
		if !c.IsFinite() {
			return nil, fmt.Errorf("kde: delta center %d has non-finite coordinates", i)
		}
		merged = append(merged, c.Clone())
	}
	ne, err := newEstimator(e.kernel, merged, append([]float64(nil), e.h...), n, e.adaptiveK, e.buildPar)
	if err != nil {
		return nil, err
	}
	ne.cKernelEvals, ne.cKDVisited, ne.cKDPruned = e.cKernelEvals, e.cKDVisited, e.cKDPruned
	return ne, nil
}

// N returns the dataset size the estimator represents (its total integral).
func (e *Estimator) N() int { return e.n }

// Dims returns the dimensionality.
func (e *Estimator) Dims() int { return e.dims }

// NumKernels returns the number of kernel centers.
func (e *Estimator) NumKernels() int { return len(e.centers) }

// Bandwidths returns the per-dimension bandwidths (caller must not mutate).
func (e *Estimator) Bandwidths() []float64 { return e.h }

// Kernel returns the one-dimensional kernel profile in use.
func (e *Estimator) Kernel() Kernel { return e.kernel }

// Density returns f(p), the estimated point density at p, scaled so that
// the integral of f over the whole space is the dataset size n.
func (e *Estimator) Density(p geom.Point) float64 {
	if p.Dims() != e.dims {
		panic("kde: query dimension mismatch")
	}
	var sum float64
	e.tree.WithinFunc(p, e.reach, func(ci int) {
		sum += e.kernelAt(ci, p)
	})
	return e.weight * sum
}

// kernelAt evaluates the unit-mass product kernel of center ci at point p.
func (e *Estimator) kernelAt(ci int, p geom.Point) float64 {
	c := e.centers[ci]
	v := 1.0
	inv := e.invH
	if e.invScale != nil {
		is := e.invScale[ci]
		for j := 0; j < e.dims; j++ {
			ih := inv[j] * is
			u := (p[j] - c[j]) * ih
			kv := e.kernel.Value(u)
			if kv == 0 {
				return 0
			}
			v *= kv * ih
		}
		return v
	}
	for j := 0; j < e.dims; j++ {
		u := (p[j] - c[j]) * inv[j]
		kv := e.kernel.Value(u)
		if kv == 0 {
			return 0
		}
		v *= kv * inv[j]
	}
	return v
}

// AverageDensity returns n / volume(box): the mean density over a domain.
// Regions above it are the "dense" ones the paper's a>0 mode oversamples.
func (e *Estimator) AverageDensity(box geom.Rect) float64 {
	v := box.Volume()
	if v <= 0 {
		return 0
	}
	return float64(e.n) / v
}

// IntegrateBox returns ∫_box f exactly (up to float rounding), using the
// product-kernel CDF factorization: each kernel's mass inside an axis-
// aligned box is a product of one-dimensional CDF differences.
func (e *Estimator) IntegrateBox(box geom.Rect) float64 {
	if box.Dims() != e.dims {
		panic("kde: box dimension mismatch")
	}
	var sum float64
	for ci, c := range e.centers {
		is := 1.0
		if e.invScale != nil {
			is = e.invScale[ci]
		}
		m := 1.0
		for j := 0; j < e.dims && m > 0; j++ {
			lo := (box.Min[j] - c[j]) * e.invH[j] * is
			hi := (box.Max[j] - c[j]) * e.invH[j] * is
			m *= e.kernel.CDF(hi) - e.kernel.CDF(lo)
		}
		sum += m
	}
	return e.weight * sum
}

// IntegrateBall returns an estimate of ∫_Ball(o,r) f — the expected number
// of dataset points within distance r of o (the quantity N'_D(O,k) of
// §3.2) — using deterministic quasi-Monte-Carlo quadrature over the ball.
func (e *Estimator) IntegrateBall(o geom.Point, r float64) float64 {
	if o.Dims() != e.dims {
		panic("kde: ball center dimension mismatch")
	}
	if r <= 0 {
		return 0
	}
	quad := ballQuadrature(e.dims)
	// Restrict evaluation to kernels that can reach the ball at all.
	near := e.tree.Within(o, e.reach+r)
	if len(near) == 0 {
		return 0
	}
	q := make(geom.Point, e.dims)
	var sum float64
	for _, u := range quad {
		for j := range q {
			q[j] = o[j] + r*u[j]
		}
		for _, ci := range near {
			sum += e.kernelAt(ci, q)
		}
	}
	mean := sum / float64(len(quad))
	return e.weight * mean * geom.UnitBallVolume(e.dims, r)
}

// Centers returns the kernel centers (caller must not mutate).
func (e *Estimator) Centers() []geom.Point { return e.centers }
