package kde

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/stats"
)

func codecTestData(n int, seed uint64) *dataset.InMemory {
	rng := stats.NewRNG(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64(), rng.Float64() * 2, rng.NormFloat64()}
	}
	return dataset.MustInMemory(pts)
}

// TestEstimatorCodecRoundTrip pins the disk tier's core guarantee: a
// serialized estimator reconstructs bit-identically — same densities,
// same batch evaluations, same re-serialized bytes — including the
// adaptive-bandwidth and parallel-build configurations, whose derived
// structures are rebuilt on load rather than stored.
func TestEstimatorCodecRoundTrip(t *testing.T) {
	ds := codecTestData(4000, 7)
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"uniform", Options{NumKernels: 200}},
		{"adaptive", Options{NumKernels: 200, AdaptiveK: 5}},
		{"adaptive-parallel", Options{NumKernels: 300, AdaptiveK: 3, Parallelism: 4}},
		{"gaussian", Options{NumKernels: 150, Kernel: Gaussian{}}},
		{"scaled", Options{NumKernels: 100, BandwidthScale: 1.5}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			est, err := Build(ds, tc.opts, stats.NewRNG(11))
			if err != nil {
				t.Fatal(err)
			}
			blob, err := est.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			got, err := UnmarshalEstimator(blob)
			if err != nil {
				t.Fatal(err)
			}
			if got.N() != est.N() || got.Dims() != est.Dims() || got.NumKernels() != est.NumKernels() {
				t.Fatalf("shape = (%d, %d, %d), want (%d, %d, %d)",
					got.N(), got.Dims(), got.NumKernels(), est.N(), est.Dims(), est.NumKernels())
			}
			// Bit-exact densities at probe points, including compact-
			// support edges.
			probe := stats.NewRNG(99)
			for i := 0; i < 200; i++ {
				q := geom.Point{probe.Float64() * 1.5, probe.Float64() * 3, probe.NormFloat64() * 2}
				dw, dg := est.Density(q), got.Density(q)
				if math.Float64bits(dw) != math.Float64bits(dg) {
					t.Fatalf("density(%v) = %x, want %x (not bit-identical)",
						q, math.Float64bits(dg), math.Float64bits(dw))
				}
			}
			// Idempotent: re-serializing the loaded estimator yields the
			// same bytes.
			blob2, err := got.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, blob2) {
				t.Error("re-serialized artifact differs from the original")
			}
		})
	}
}

// TestEstimatorCodecExtendAfterLoad: a loaded estimator keeps its build
// parameters, so extending it matches extending the original exactly.
func TestEstimatorCodecExtendAfterLoad(t *testing.T) {
	ds := codecTestData(2000, 3)
	est, err := Build(ds, Options{NumKernels: 100, AdaptiveK: 4}, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := est.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := UnmarshalEstimator(blob)
	if err != nil {
		t.Fatal(err)
	}
	delta := []geom.Point{{0.1, 0.2, 0.3}, {0.4, 0.5, 0.6}}
	e1, err := est.Extend(delta, 2100)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := loaded.Extend(delta, 2100)
	if err != nil {
		t.Fatal(err)
	}
	q := geom.Point{0.3, 0.4, 0.2}
	if d1, d2 := e1.Density(q), e2.Density(q); math.Float64bits(d1) != math.Float64bits(d2) {
		t.Fatalf("extended density = %v, want %v (loaded estimator extends differently)", d2, d1)
	}
}

func TestEstimatorCodecCorruption(t *testing.T) {
	est, err := Build(codecTestData(500, 1), Options{NumKernels: 50}, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := est.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  append([]byte("XXXXX"), blob[5:]...),
		"truncated":  blob[:len(blob)-9],
		"trailing":   append(append([]byte{}, blob...), 0),
		"bad kernel": append([]byte("DBSK1\x03zzz"), blob[len("DBSK1")+1+len("epanechnikov"):]...),
	}
	for name, data := range cases {
		if _, err := UnmarshalEstimator(data); err == nil {
			t.Errorf("%s: corrupt artifact accepted", name)
		}
	}
}
