package kde

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/stats"
)

// gaussianBlob samples n points from N(center, sigma²I).
func gaussianBlob(n int, center geom.Point, sigma float64, rng *stats.RNG) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, len(center))
		for j := range p {
			p[j] = rng.Normal(center[j], sigma)
		}
		pts[i] = p
	}
	return pts
}

func TestBuildOnePass(t *testing.T) {
	rng := stats.NewRNG(1)
	ds := dataset.MustInMemory(gaussianBlob(5000, geom.Point{0.5, 0.5}, 0.1, rng))
	_, err := Build(ds, Options{NumKernels: 200}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Passes() != 1 {
		t.Errorf("Build used %d passes, want exactly 1", ds.Passes())
	}
}

func TestBuildDefaults(t *testing.T) {
	rng := stats.NewRNG(2)
	ds := dataset.MustInMemory(gaussianBlob(3000, geom.Point{0, 0}, 1, rng))
	e, err := Build(ds, Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumKernels() != DefaultNumKernels {
		t.Errorf("kernels = %d, want default %d", e.NumKernels(), DefaultNumKernels)
	}
	if e.Kernel().Name() != "epanechnikov" {
		t.Errorf("default kernel = %s", e.Kernel().Name())
	}
	if e.N() != 3000 || e.Dims() != 2 {
		t.Errorf("N/Dims = %d/%d", e.N(), e.Dims())
	}
}

func TestBuildSmallDataset(t *testing.T) {
	// Fewer points than kernels: every point becomes a center.
	rng := stats.NewRNG(3)
	ds := dataset.MustInMemory(gaussianBlob(50, geom.Point{0, 0}, 1, rng))
	e, err := Build(ds, Options{NumKernels: 1000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumKernels() != 50 {
		t.Errorf("kernels = %d, want 50", e.NumKernels())
	}
}

func TestBuildValidation(t *testing.T) {
	rng := stats.NewRNG(4)
	ds := dataset.MustInMemory(gaussianBlob(10, geom.Point{0}, 1, rng))
	if _, err := Build(ds, Options{NumKernels: -5}, rng); err == nil {
		t.Error("negative kernels accepted")
	}
	if _, err := Build(ds, Options{BandwidthScale: -1}, rng); err == nil {
		t.Error("negative scale accepted")
	}
	if _, err := Build(ds, Options{Bandwidths: []float64{1, 2}}, rng); err == nil {
		t.Error("mismatched bandwidths accepted")
	}
	if _, err := Build(ds, Options{Bandwidths: []float64{0}}, rng); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestTotalIntegralApproxN(t *testing.T) {
	rng := stats.NewRNG(5)
	const n = 20000
	ds := dataset.MustInMemory(gaussianBlob(n, geom.Point{0.5, 0.5}, 0.08, rng))
	e, err := Build(ds, Options{NumKernels: 500}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Integrate over a box that surely contains all kernel mass.
	box := geom.NewRect(geom.Point{-2, -2}, geom.Point{3, 3})
	got := e.IntegrateBox(box)
	if math.Abs(got-n) > 1e-6*n {
		t.Errorf("total integral = %v, want %v", got, float64(n))
	}
}

func TestDensityTracksTrueDensity(t *testing.T) {
	// Two blobs with a 4:1 point ratio at the same spread: the estimated
	// density at the heavy center must be ≈4× the light one.
	rng := stats.NewRNG(6)
	heavy := gaussianBlob(16000, geom.Point{0.25, 0.25}, 0.05, rng)
	light := gaussianBlob(4000, geom.Point{0.75, 0.75}, 0.05, rng)
	ds := dataset.MustInMemory(append(heavy, light...))
	e, err := Build(ds, Options{NumKernels: 800}, rng)
	if err != nil {
		t.Fatal(err)
	}
	fh := e.Density(geom.Point{0.25, 0.25})
	fl := e.Density(geom.Point{0.75, 0.75})
	ratio := fh / fl
	if ratio < 3 || ratio > 5.5 {
		t.Errorf("density ratio = %v, want ~4", ratio)
	}
	// Empty region should be near zero.
	f0 := e.Density(geom.Point{0.25, 0.75})
	if f0 > fl/10 {
		t.Errorf("empty-region density %v vs light center %v", f0, fl)
	}
}

func TestDensityMatchesBruteForce(t *testing.T) {
	// The kd-tree pruned evaluation must equal the all-kernels sum.
	rng := stats.NewRNG(7)
	pts := gaussianBlob(2000, geom.Point{0.5, 0.5}, 0.2, rng)
	ds := dataset.MustInMemory(pts)
	e, err := Build(ds, Options{NumKernels: 300}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		q := geom.Point{rng.Float64(), rng.Float64()}
		var brute float64
		for ci := range e.Centers() {
			brute += e.kernelAt(ci, q)
		}
		brute *= e.weight
		if math.Abs(e.Density(q)-brute) > 1e-9*(1+brute) {
			t.Fatalf("pruned density %v != brute %v", e.Density(q), brute)
		}
	}
}

func TestIntegrateBoxCountsPoints(t *testing.T) {
	// On a uniform dataset, the box integral must track the point count
	// in the box.
	rng := stats.NewRNG(8)
	const n = 30000
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64(), rng.Float64()}
	}
	ds := dataset.MustInMemory(pts)
	e, err := Build(ds, Options{NumKernels: 1000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	box := geom.NewRect(geom.Point{0.2, 0.2}, geom.Point{0.6, 0.7})
	got := e.IntegrateBox(box)
	want := float64(n) * 0.4 * 0.5 // uniform expectation = 6000
	if math.Abs(got-want) > 0.15*want {
		t.Errorf("box integral = %v, want ~%v", got, want)
	}
}

func TestIntegrateBallCountsPoints(t *testing.T) {
	rng := stats.NewRNG(9)
	const n = 30000
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64(), rng.Float64()}
	}
	ds := dataset.MustInMemory(pts)
	e, err := Build(ds, Options{NumKernels: 1000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	o := geom.Point{0.5, 0.5}
	r := 0.2
	got := e.IntegrateBall(o, r)
	want := float64(n) * math.Pi * r * r // ≈ 3770
	if math.Abs(got-want) > 0.2*want {
		t.Errorf("ball integral = %v, want ~%v", got, want)
	}
	if e.IntegrateBall(o, 0) != 0 {
		t.Error("zero-radius ball must integrate to 0")
	}
}

func TestIntegrateBallEmptyRegion(t *testing.T) {
	rng := stats.NewRNG(10)
	ds := dataset.MustInMemory(gaussianBlob(5000, geom.Point{0.2, 0.2}, 0.02, rng))
	e, err := Build(ds, Options{NumKernels: 300}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.IntegrateBall(geom.Point{0.9, 0.9}, 0.05); got != 0 {
		t.Errorf("far-away ball integral = %v, want 0", got)
	}
}

func TestFromCenters(t *testing.T) {
	e, err := FromCenters(Epanechnikov{}, []geom.Point{{0.5}}, []float64{0.1}, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Single kernel of mass 100: peak density = 100 * 0.75/0.1 = 750.
	if got := e.Density(geom.Point{0.5}); math.Abs(got-750) > 1e-9 {
		t.Errorf("peak density = %v, want 750", got)
	}
	if got := e.Density(geom.Point{0.7}); got != 0 {
		t.Errorf("outside support = %v, want 0", got)
	}
}

func TestFromCentersValidation(t *testing.T) {
	if _, err := FromCenters(nil, nil, nil, 10); err == nil {
		t.Error("no centers accepted")
	}
	if _, err := FromCenters(nil, []geom.Point{{1}}, []float64{1}, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := FromCenters(nil, []geom.Point{{1}}, []float64{-1}, 5); err == nil {
		t.Error("negative bandwidth accepted")
	}
	if _, err := FromCenters(nil, []geom.Point{{1}, {1, 2}}, []float64{1}, 5); err == nil {
		t.Error("ragged centers accepted")
	}
}

func TestGaussianKernelEstimator(t *testing.T) {
	rng := stats.NewRNG(11)
	ds := dataset.MustInMemory(gaussianBlob(5000, geom.Point{0.5, 0.5}, 0.1, rng))
	e, err := Build(ds, Options{NumKernels: 200, Kernel: Gaussian{}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	center := e.Density(geom.Point{0.5, 0.5})
	edge := e.Density(geom.Point{0.9, 0.9})
	if center <= edge {
		t.Errorf("gaussian estimator: center %v <= edge %v", center, edge)
	}
}

func TestDegenerateDimension(t *testing.T) {
	// One dimension constant: bandwidth floor must keep the estimator finite.
	rng := stats.NewRNG(12)
	pts := make([]geom.Point, 1000)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64(), 0.5}
	}
	ds := dataset.MustInMemory(pts)
	e, err := Build(ds, Options{NumKernels: 100}, rng)
	if err != nil {
		t.Fatal(err)
	}
	f := e.Density(geom.Point{0.5, 0.5})
	if math.IsInf(f, 0) || math.IsNaN(f) || f <= 0 {
		t.Errorf("degenerate-dim density = %v", f)
	}
}

func TestHaltonInUnitInterval(t *testing.T) {
	for i := 1; i < 1000; i++ {
		v := halton(i, 2)
		if v <= 0 || v >= 1 {
			t.Fatalf("halton(%d,2) = %v", i, v)
		}
	}
}

func TestBallQuadratureInsideBall(t *testing.T) {
	for _, d := range []int{1, 2, 3, 5} {
		pts := ballQuadrature(d)
		if len(pts) == 0 {
			t.Fatalf("no quadrature points for d=%d", d)
		}
		for _, p := range pts {
			var r2 float64
			for _, v := range p {
				r2 += v * v
			}
			if r2 > 1 {
				t.Fatalf("d=%d quadrature point outside ball", d)
			}
		}
	}
}

func TestPrimeTable(t *testing.T) {
	want := []int{2, 3, 5, 7, 11, 13}
	for i, w := range want {
		if got := prime(i); got != w {
			t.Errorf("prime(%d) = %d, want %d", i, got, w)
		}
	}
	if got := prime(25); got != 101 {
		t.Errorf("prime(25) = %d, want 101", got)
	}
}

func TestAdaptiveBandwidths(t *testing.T) {
	// A tight blob plus a diffuse one: adaptive scaling must narrow the
	// kernels in the tight blob (scale < 1) and widen those in the
	// diffuse one (scale > 1), raising the estimated peak contrast.
	rng := stats.NewRNG(21)
	pts := append(
		gaussianBlob(5000, geom.Point{0.25, 0.25}, 0.01, rng),
		gaussianBlob(5000, geom.Point{0.75, 0.75}, 0.15, rng)...,
	)
	ds := dataset.MustInMemory(pts)
	fixed, err := Build(ds, Options{NumKernels: 400}, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := Build(ds, Options{NumKernels: 400, AdaptiveK: 10}, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	peakF := fixed.Density(geom.Point{0.25, 0.25})
	peakA := adaptive.Density(geom.Point{0.25, 0.25})
	if peakA <= peakF {
		t.Errorf("adaptive peak %v should exceed fixed peak %v on the tight blob", peakA, peakF)
	}
	// Total mass must stay ≈ n under either bandwidth policy.
	box := geom.NewRect(geom.Point{-3, -3}, geom.Point{4, 4})
	got := adaptive.IntegrateBox(box)
	if math.Abs(got-10000) > 1e-6*10000 {
		t.Errorf("adaptive total mass = %v, want 10000", got)
	}
}

func TestAdaptiveDegenerateCenters(t *testing.T) {
	// All centers coincident: median k-NN distance is zero; the adaptive
	// path must fall back to uniform bandwidths rather than divide by 0.
	pts := make([]geom.Point, 50)
	for i := range pts {
		pts[i] = geom.Point{0.5, 0.5}
	}
	ds := dataset.MustInMemory(pts)
	e, err := Build(ds, Options{NumKernels: 20, AdaptiveK: 5}, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	f := e.Density(geom.Point{0.5, 0.5})
	if math.IsNaN(f) || math.IsInf(f, 0) || f <= 0 {
		t.Errorf("degenerate adaptive density = %v", f)
	}
}

func TestAdaptiveSingleCenter(t *testing.T) {
	e, err := FromCenters(Epanechnikov{}, []geom.Point{{0.5}}, []float64{0.1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	_ = e // FromCenters never applies adaptive scaling; nothing to crash.
	pts := []geom.Point{{0.1, 0.2}}
	ds := dataset.MustInMemory(pts)
	if _, err := Build(ds, Options{NumKernels: 5, AdaptiveK: 3}, stats.NewRNG(2)); err != nil {
		t.Fatal(err)
	}
}
