package kde

import (
	"math"
	"testing"
	"testing/quick"
)

var allKernels = []Kernel{Epanechnikov{}, Biweight{}, Triangular{}, Uniform{}, Gaussian{}}

func TestKernelsIntegrateToOne(t *testing.T) {
	// Trapezoid rule over the support must give ~1.
	for _, k := range allKernels {
		s := k.Support()
		const steps = 200000
		var sum float64
		dx := 2 * s / steps
		for i := 0; i <= steps; i++ {
			u := -s + float64(i)*dx
			w := 1.0
			if i == 0 || i == steps {
				w = 0.5
			}
			sum += w * k.Value(u)
		}
		sum *= dx
		if math.Abs(sum-1) > 1e-3 {
			t.Errorf("%s: integral = %v", k.Name(), sum)
		}
	}
}

func TestKernelsSymmetric(t *testing.T) {
	for _, k := range allKernels {
		for _, u := range []float64{0.1, 0.33, 0.7, 0.99} {
			if math.Abs(k.Value(u)-k.Value(-u)) > 1e-15 {
				t.Errorf("%s not symmetric at %v", k.Name(), u)
			}
		}
	}
}

func TestKernelsVanishOutsideSupport(t *testing.T) {
	for _, k := range allKernels {
		if k.Name() == "gaussian" {
			continue // unbounded support by definition
		}
		s := k.Support()
		if k.Value(s+1e-9) != 0 || k.Value(-s-1e-9) != 0 {
			t.Errorf("%s non-zero outside support", k.Name())
		}
	}
}

func TestKernelCDFEndpoints(t *testing.T) {
	for _, k := range allKernels {
		s := k.Support() + 1
		if got := k.CDF(-s); math.Abs(got) > 1e-4 {
			t.Errorf("%s: CDF(-∞) = %v", k.Name(), got)
		}
		if got := k.CDF(s); math.Abs(got-1) > 1e-4 {
			t.Errorf("%s: CDF(+∞) = %v", k.Name(), got)
		}
		if got := k.CDF(0); math.Abs(got-0.5) > 1e-12 {
			t.Errorf("%s: CDF(0) = %v, want 0.5 (symmetry)", k.Name(), got)
		}
	}
}

func TestKernelCDFMatchesValueDerivative(t *testing.T) {
	// (CDF(u+h) - CDF(u-h)) / 2h ≈ Value(u).
	const h = 1e-5
	for _, k := range allKernels {
		for _, u := range []float64{-0.9, -0.5, -0.1, 0, 0.2, 0.6, 0.95} {
			deriv := (k.CDF(u+h) - k.CDF(u-h)) / (2 * h)
			if math.Abs(deriv-k.Value(u)) > 1e-5 {
				t.Errorf("%s: CDF'(%v) = %v, Value = %v", k.Name(), u, deriv, k.Value(u))
			}
		}
	}
}

func TestKernelByName(t *testing.T) {
	for _, k := range allKernels {
		got := KernelByName(k.Name())
		if got == nil || got.Name() != k.Name() {
			t.Errorf("KernelByName(%q) = %v", k.Name(), got)
		}
	}
	if KernelByName("nope") != nil {
		t.Error("unknown kernel name accepted")
	}
}

// Property: every CDF is monotone non-decreasing.
func TestPropCDFMonotone(t *testing.T) {
	for _, k := range allKernels {
		k := k
		f := func(a, b float64) bool {
			if math.IsNaN(a) || math.IsNaN(b) {
				return true
			}
			a = math.Mod(a, 10)
			b = math.Mod(b, 10)
			if a > b {
				a, b = b, a
			}
			return k.CDF(a) <= k.CDF(b)+1e-12
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", k.Name(), err)
		}
	}
}

// Property: kernel values are non-negative everywhere.
func TestPropKernelNonNegative(t *testing.T) {
	for _, k := range allKernels {
		k := k
		f := func(u float64) bool {
			if math.IsNaN(u) {
				return true
			}
			return k.Value(math.Mod(u, 10)) >= 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", k.Name(), err)
		}
	}
}
