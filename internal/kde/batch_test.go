package kde

import (
	"math"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/stats"
)

func batchTestData(n, dims int, seed uint64) *dataset.InMemory {
	rng := stats.NewRNG(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dims)
		for j := range p {
			// Two lobes so densities span a useful range.
			if i%3 == 0 {
				p[j] = 0.2 + 0.05*rng.Float64()
			} else {
				p[j] = 0.6 + 0.3*rng.Float64()
			}
		}
		pts[i] = p
	}
	return dataset.MustInMemory(pts)
}

// DensityBatch must agree with per-point Density to rounding, for the
// fused Epanechnikov path, the generic kernel path, and adaptive scales.
func TestDensityBatchMatchesDensity(t *testing.T) {
	ds := batchTestData(3000, 3, 5)
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"epanechnikov", Options{NumKernels: 200}},
		{"gaussian", Options{NumKernels: 200, Kernel: Gaussian{}}},
		{"biweight", Options{NumKernels: 200, Kernel: Biweight{}}},
		{"adaptive", Options{NumKernels: 200, AdaptiveK: 5}},
	} {
		est, err := Build(ds, tc.opts, stats.NewRNG(1))
		if err != nil {
			t.Fatal(err)
		}
		pts := ds.Points()[:500]
		out := make([]float64, len(pts))
		est.DensityBatch(pts, out)
		for i, p := range pts {
			want := est.Density(p)
			diff := math.Abs(out[i] - want)
			if diff > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("%s: point %d: batch %v vs density %v", tc.name, i, out[i], want)
			}
		}
	}
}

// Concurrent batches on one estimator must be safe and agree with the
// serial evaluation (run with -race in verify.sh).
func TestDensityBatchConcurrent(t *testing.T) {
	ds := batchTestData(2000, 2, 6)
	est, err := Build(ds, Options{NumKernels: 150}, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	pts := ds.Points()
	want := make([]float64, len(pts))
	est.DensityBatch(pts, want)

	const workers = 8
	block := (len(pts) + workers - 1) / workers
	got := make([]float64, len(pts))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		start := w * block
		end := start + block
		if end > len(pts) {
			end = len(pts)
		}
		if start >= end {
			continue
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			est.DensityBatch(pts[s:e], got[s:e])
		}(start, end)
	}
	wg.Wait()
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("concurrent batch differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// Adaptive-scale construction must not depend on the worker count.
func TestAdaptiveScalesParallelismInvariant(t *testing.T) {
	ds := batchTestData(2000, 2, 7)
	var ref *Estimator
	for _, p := range []int{1, 2, 8} {
		est, err := Build(ds, Options{NumKernels: 300, AdaptiveK: 5, Parallelism: p}, stats.NewRNG(3))
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = est
			continue
		}
		if len(est.scale) != len(ref.scale) {
			t.Fatalf("p=%d: %d scales vs %d", p, len(est.scale), len(ref.scale))
		}
		for i := range est.scale {
			if est.scale[i] != ref.scale[i] {
				t.Fatalf("p=%d: scale %d = %v, want %v", p, i, est.scale[i], ref.scale[i])
			}
		}
		if est.reach != ref.reach {
			t.Fatalf("p=%d: reach %v, want %v", p, est.reach, ref.reach)
		}
	}
}

// Concurrent ball integrals exercise the per-dimension quadrature cache
// (run with -race in verify.sh); results must match the serial ones.
func TestIntegrateBallConcurrent(t *testing.T) {
	ds := batchTestData(1000, 2, 8)
	est, err := Build(ds, Options{NumKernels: 100}, stats.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	pts := ds.Points()[:64]
	want := make([]float64, len(pts))
	for i, p := range pts {
		want[i] = est.IntegrateBall(p, 0.1)
	}
	got := make([]float64, len(pts))
	var wg sync.WaitGroup
	for i := range pts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = est.IntegrateBall(pts[i], 0.1)
		}(i)
	}
	wg.Wait()
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("concurrent IntegrateBall differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
}
