package kde

import "sync"

// ballQuadrature returns a fixed set of low-discrepancy points inside the
// d-dimensional unit ball, used by IntegrateBall. The set is deterministic
// (Halton sequence, rejection-sampled from [-1,1]^d) and cached per
// dimension, so repeated integrals share the work and results are
// reproducible.
const quadraturePoints = 128

// The per-dimension cache is a fixed array of sync.Once slots rather than
// a mutex-guarded map: after the first IntegrateBox/IntegrateBall in a
// dimension, concurrent readers take a Once fast path (a single atomic
// load) with no shared lock on the hot path, whereas a global mutex would
// serialize every parallel ball integral. Dimensions beyond the table —
// far outside this repository's workloads — recompute the set per call,
// trading repeat cost for unbounded-dimension safety.
const maxCachedQuadDim = 64

var quadCache [maxCachedQuadDim + 1]struct {
	once sync.Once
	pts  [][]float64
}

func ballQuadrature(d int) [][]float64 {
	if d >= 0 && d <= maxCachedQuadDim {
		c := &quadCache[d]
		c.once.Do(func() { c.pts = computeBallQuadrature(d) })
		return c.pts
	}
	return computeBallQuadrature(d)
}

func computeBallQuadrature(d int) [][]float64 {
	q := make([][]float64, 0, quadraturePoints)
	// Rejection from the cube keeps Halton's uniformity; acceptance decays
	// with dimension, so scan enough indices to fill the budget.
	for i := 1; len(q) < quadraturePoints && i < 1<<22; i++ {
		p := make([]float64, d)
		inside := 0.0
		for j := 0; j < d; j++ {
			p[j] = 2*halton(i, prime(j)) - 1
			inside += p[j] * p[j]
		}
		if inside <= 1 {
			q = append(q, p)
		}
	}
	if len(q) == 0 {
		// Extremely high dimension: fall back to the center point; the
		// integral degrades to f(o)·Vol(ball), still a usable estimate.
		q = append(q, make([]float64, d))
	}
	return q
}

// halton returns the i-th element of the base-b Halton sequence in (0,1).
func halton(i, b int) float64 {
	f := 1.0
	r := 0.0
	for i > 0 {
		f /= float64(b)
		r += f * float64(i%b)
		i /= b
	}
	return r
}

// prime returns the n-th prime (0-indexed) for Halton bases.
func prime(n int) int {
	primes := [...]int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71}
	if n < len(primes) {
		return primes[n]
	}
	// Beyond the table, extend by trial division; dimensions that large
	// are outside this repository's use but should not panic.
	c := primes[len(primes)-1]
	for k := len(primes) - 1; k < n; {
		c++
		isP := true
		for _, p := range primes {
			if p*p > c {
				break
			}
			if c%p == 0 {
				isP = false
				break
			}
		}
		if isP {
			k++
		}
	}
	return c
}
