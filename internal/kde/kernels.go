// Package kde implements multivariate kernel density estimation, the
// density-approximation substrate of the paper (§2.1). An estimator is
// built in a single dataset pass: kernel centers are chosen by reservoir
// sampling and per-dimension bandwidths by Scott's rule from running
// moments. The resulting estimator f satisfies ∫ f ≈ n, so for any region
// R the integral of f over R approximates the number of dataset points in
// R — exactly the property the biased sampler (internal/core) and the
// approximate outlier detector (internal/outlier) rely on.
package kde

import "math"

// Kernel is a normalized one-dimensional kernel profile: Value integrates
// to 1 over the real line and is symmetric around 0. Multivariate kernels
// are built as products of one-dimensional profiles (product kernels).
type Kernel interface {
	// Name returns a short identifier such as "epanechnikov".
	Name() string
	// Value returns the kernel profile at u.
	Value(u float64) float64
	// CDF returns the integral of Value over (-∞, u]. It enables exact
	// box integrals of product kernels.
	CDF(u float64) float64
	// Support returns the radius s such that Value(u) = 0 for |u| > s.
	// Kernels with unbounded support (Gaussian) return an effective
	// radius beyond which the mass is negligible.
	Support() float64
}

// Epanechnikov is the mean-square-error optimal kernel (3/4)(1-u²) on
// [-1,1]. It is the kernel the paper uses in all experiments (§4.2).
type Epanechnikov struct{}

// Name returns "epanechnikov".
func (Epanechnikov) Name() string { return "epanechnikov" }

// Value returns (3/4)(1-u²) for |u| ≤ 1 and 0 otherwise.
func (Epanechnikov) Value(u float64) float64 {
	if u < -1 || u > 1 {
		return 0
	}
	return 0.75 * (1 - u*u)
}

// CDF returns the Epanechnikov cumulative distribution at u.
func (Epanechnikov) CDF(u float64) float64 {
	switch {
	case u <= -1:
		return 0
	case u >= 1:
		return 1
	default:
		return 0.5 + 0.75*u - 0.25*u*u*u
	}
}

// Support returns 1.
func (Epanechnikov) Support() float64 { return 1 }

// Biweight is the quartic kernel (15/16)(1-u²)² on [-1,1].
type Biweight struct{}

// Name returns "biweight".
func (Biweight) Name() string { return "biweight" }

// Value returns (15/16)(1-u²)² for |u| ≤ 1 and 0 otherwise.
func (Biweight) Value(u float64) float64 {
	if u < -1 || u > 1 {
		return 0
	}
	t := 1 - u*u
	return 15.0 / 16.0 * t * t
}

// CDF returns the biweight cumulative distribution at u.
func (Biweight) CDF(u float64) float64 {
	switch {
	case u <= -1:
		return 0
	case u >= 1:
		return 1
	default:
		return 0.5 + 15.0/16.0*(u-2*u*u*u/3+u*u*u*u*u/5)
	}
}

// Support returns 1.
func (Biweight) Support() float64 { return 1 }

// Triangular is the kernel (1-|u|) on [-1,1].
type Triangular struct{}

// Name returns "triangular".
func (Triangular) Name() string { return "triangular" }

// Value returns 1-|u| for |u| ≤ 1 and 0 otherwise.
func (Triangular) Value(u float64) float64 {
	a := math.Abs(u)
	if a > 1 {
		return 0
	}
	return 1 - a
}

// CDF returns the triangular cumulative distribution at u.
func (Triangular) CDF(u float64) float64 {
	switch {
	case u <= -1:
		return 0
	case u >= 1:
		return 1
	case u < 0:
		t := 1 + u
		return t * t / 2
	default:
		t := 1 - u
		return 1 - t*t/2
	}
}

// Support returns 1.
func (Triangular) Support() float64 { return 1 }

// Uniform is the box kernel 1/2 on [-1,1].
type Uniform struct{}

// Name returns "uniform".
func (Uniform) Name() string { return "uniform" }

// Value returns 1/2 for |u| ≤ 1 and 0 otherwise.
func (Uniform) Value(u float64) float64 {
	if u < -1 || u > 1 {
		return 0
	}
	return 0.5
}

// CDF returns the uniform cumulative distribution at u.
func (Uniform) CDF(u float64) float64 {
	switch {
	case u <= -1:
		return 0
	case u >= 1:
		return 1
	default:
		return (u + 1) / 2
	}
}

// Support returns 1.
func (Uniform) Support() float64 { return 1 }

// Gaussian is the standard normal kernel. Its support is unbounded; the
// effective support radius is 4 (mass beyond 4σ is below 7e-5).
type Gaussian struct{}

// Name returns "gaussian".
func (Gaussian) Name() string { return "gaussian" }

// Value returns the standard normal density at u.
func (Gaussian) Value(u float64) float64 {
	return math.Exp(-u*u/2) / math.Sqrt(2*math.Pi)
}

// CDF returns the standard normal cumulative distribution at u.
func (Gaussian) CDF(u float64) float64 {
	return 0.5 * math.Erfc(-u/math.Sqrt2)
}

// Support returns the effective radius 4.
func (Gaussian) Support() float64 { return 4 }

// KernelByName returns the kernel with the given Name, or nil if unknown.
// The cmd/ tools use it to parse -kernel flags.
func KernelByName(name string) Kernel {
	switch name {
	case "epanechnikov":
		return Epanechnikov{}
	case "biweight":
		return Biweight{}
	case "triangular":
		return Triangular{}
	case "uniform":
		return Uniform{}
	case "gaussian":
		return Gaussian{}
	default:
		return nil
	}
}
