package kde

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
)

// Binary estimator artifact format ("DBSK1"), the disk tier's payload
// for cached estimators. Only the construction inputs are stored —
// kernel profile, centers, bandwidths, dataset size, and the two build
// parameters — because newEstimator is deterministic: the kd-tree,
// adaptive scales, and flat evaluation slabs rebuild bit-identically
// from them on load (pinned by TestEstimatorCodecRoundTrip). That keeps
// artifacts small (≈ ks·d·8 bytes) and forward-portable across changes
// to the derived structures.
//
// Layout (little-endian, fixed-width header fields):
//
//	offset 0: magic "DBSK1" (5 bytes)
//	byte  5:  kernel name length (1 byte), then the name bytes
//	then:     uint32 dims, uint32 numCenters,
//	          uint64 n, uint32 adaptiveK, uint32 buildPar
//	then:     dims float64 bandwidths
//	then:     numCenters × dims float64 center coordinates
const estimatorMagic = "DBSK1"

// maxCodecElems bounds decoded allocations so a corrupt header cannot
// ask for petabytes.
const maxCodecElems = 1 << 31

// MarshalBinary serializes the estimator's construction inputs.
func (e *Estimator) MarshalBinary() ([]byte, error) {
	name := e.kernel.Name()
	if KernelByName(name) == nil {
		return nil, fmt.Errorf("kde: kernel %q has no registered name; cannot serialize", name)
	}
	if len(name) > 255 {
		return nil, fmt.Errorf("kde: kernel name %q too long", name)
	}
	size := len(estimatorMagic) + 1 + len(name) + 4 + 4 + 8 + 4 + 4 +
		8*len(e.h) + 8*len(e.centers)*e.dims
	buf := make([]byte, 0, size)
	buf = append(buf, estimatorMagic...)
	buf = append(buf, byte(len(name)))
	buf = append(buf, name...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.dims))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.centers)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.n))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.adaptiveK))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.buildPar))
	for _, v := range e.h {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, c := range e.centers {
		for _, v := range c {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf, nil
}

// UnmarshalEstimator reconstructs an estimator serialized with
// MarshalBinary. The returned estimator has no recorder attached; the
// caller re-attaches one with SetRecorder.
func UnmarshalEstimator(data []byte) (*Estimator, error) {
	r := data
	take := func(n int) ([]byte, error) {
		if len(r) < n {
			return nil, errors.New("kde: truncated estimator artifact")
		}
		b := r[:n]
		r = r[n:]
		return b, nil
	}
	b, err := take(len(estimatorMagic) + 1)
	if err != nil {
		return nil, err
	}
	if string(b[:len(estimatorMagic)]) != estimatorMagic {
		return nil, fmt.Errorf("kde: bad artifact magic %q", b[:len(estimatorMagic)])
	}
	nameLen := int(b[len(estimatorMagic)])
	if b, err = take(nameLen); err != nil {
		return nil, err
	}
	kern := KernelByName(string(b))
	if kern == nil {
		return nil, fmt.Errorf("kde: artifact uses unknown kernel %q", b)
	}
	if b, err = take(4 + 4 + 8 + 4 + 4); err != nil {
		return nil, err
	}
	dims := int(binary.LittleEndian.Uint32(b[0:4]))
	numCenters := int(binary.LittleEndian.Uint32(b[4:8]))
	n := binary.LittleEndian.Uint64(b[8:16])
	adaptiveK := int(binary.LittleEndian.Uint32(b[16:20]))
	buildPar := int(binary.LittleEndian.Uint32(b[20:24]))
	if dims < 1 || numCenters < 1 || n == 0 || n > maxCodecElems ||
		numCenters > maxCodecElems || dims > maxCodecElems/numCenters {
		return nil, fmt.Errorf("kde: implausible artifact header (dims %d, centers %d, n %d)", dims, numCenters, n)
	}
	if b, err = take(8 * dims); err != nil {
		return nil, err
	}
	h := make([]float64, dims)
	for j := range h {
		h[j] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*j:]))
		if !(h[j] > 0) || math.IsInf(h[j], 0) {
			return nil, fmt.Errorf("kde: artifact bandwidth %d = %v out of range", j, h[j])
		}
	}
	if b, err = take(8 * numCenters * dims); err != nil {
		return nil, err
	}
	// One backing array for all centers keeps the load allocation-lean.
	flat := make([]float64, numCenters*dims)
	for i := range flat {
		flat[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	centers := make([]geom.Point, numCenters)
	for i := range centers {
		centers[i] = geom.Point(flat[i*dims : (i+1)*dims : (i+1)*dims])
		if !centers[i].IsFinite() {
			return nil, fmt.Errorf("kde: artifact center %d has non-finite coordinates", i)
		}
	}
	if len(r) != 0 {
		return nil, fmt.Errorf("kde: %d trailing bytes after estimator artifact", len(r))
	}
	return newEstimator(kern, centers, h, int(n), adaptiveK, buildPar)
}
