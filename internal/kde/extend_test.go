package kde

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/stats"
)

func TestExtendBookkeeping(t *testing.T) {
	rng := stats.NewRNG(21)
	ds := dataset.MustInMemory(gaussianBlob(2000, geom.Point{0, 0}, 1, rng))
	prior, err := Build(ds, Options{NumKernels: 64}, rng)
	if err != nil {
		t.Fatal(err)
	}
	delta := gaussianBlob(10, geom.Point{3, 3}, 0.5, rng)
	ext, err := prior.Extend(delta, 2100)
	if err != nil {
		t.Fatal(err)
	}
	if ext.NumKernels() != 74 || ext.N() != 2100 || ext.Dims() != 2 {
		t.Errorf("extended kernels/N/dims = %d/%d/%d, want 74/2100/2", ext.NumKernels(), ext.N(), ext.Dims())
	}
	// The prior is a shared cache artifact: Extend must leave it intact.
	if prior.NumKernels() != 64 || prior.N() != 2000 {
		t.Errorf("prior mutated: kernels/N = %d/%d", prior.NumKernels(), prior.N())
	}
	for j, h := range ext.Bandwidths() {
		if h != prior.Bandwidths()[j] {
			t.Errorf("base bandwidth %d changed: %v -> %v", j, prior.Bandwidths()[j], h)
		}
	}
}

// TestExtendMatchesFromCenters: extending is definitionally the same
// estimator as constructing from the merged center list with the
// inherited bandwidths and the new mass — density must agree everywhere.
func TestExtendMatchesFromCenters(t *testing.T) {
	rng := stats.NewRNG(22)
	a := gaussianBlob(40, geom.Point{0, 0}, 1, rng)
	b := gaussianBlob(8, geom.Point{2, 2}, 0.5, rng)
	h := []float64{0.4, 0.4}
	prior, err := FromCenters(Epanechnikov{}, a, h, 4000)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := prior.Extend(b, 4400)
	if err != nil {
		t.Fatal(err)
	}
	merged := append(append([]geom.Point{}, a...), b...)
	want, err := FromCenters(Epanechnikov{}, merged, h, 4400)
	if err != nil {
		t.Fatal(err)
	}
	probes := gaussianBlob(200, geom.Point{1, 1}, 1.5, rng)
	for _, p := range probes {
		if got, w := ext.Density(p), want.Density(p); math.Abs(got-w) > 1e-9*(1+w) {
			t.Fatalf("density(%v) = %v, from-scratch %v", p, got, w)
		}
	}
}

// TestExtendAdaptiveDeterministic: with adaptive bandwidths the scales
// are recomputed over the merged centers; two identical Extend calls
// must agree bit-for-bit (the serving layer may rebuild an evicted
// artifact and must land on the same estimator).
func TestExtendAdaptiveDeterministic(t *testing.T) {
	rng := stats.NewRNG(23)
	ds := dataset.MustInMemory(gaussianBlob(3000, geom.Point{0, 0}, 1, rng))
	prior, err := Build(ds, Options{NumKernels: 80, AdaptiveK: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	delta := gaussianBlob(12, geom.Point{-2, 2}, 0.3, rng)
	e1, err := prior.Extend(delta, 3300)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := prior.Extend(delta, 3300)
	if err != nil {
		t.Fatal(err)
	}
	probes := gaussianBlob(100, geom.Point{0, 0}, 2, rng)
	for _, p := range probes {
		d1, d2 := e1.Density(p), e2.Density(p)
		if d1 != d2 {
			t.Fatalf("repeated Extend diverged: %v vs %v at %v", d1, d2, p)
		}
		if math.IsNaN(d1) || d1 < 0 {
			t.Fatalf("bad density %v at %v", d1, p)
		}
	}
}

func TestExtendValidation(t *testing.T) {
	rng := stats.NewRNG(24)
	prior, err := FromCenters(Epanechnikov{}, gaussianBlob(10, geom.Point{0, 0}, 1, rng), []float64{1, 1}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prior.Extend([]geom.Point{{1, 2, 3}}, 110); err == nil {
		t.Error("dims-mismatched delta center accepted")
	}
	if _, err := prior.Extend([]geom.Point{{math.NaN(), 0}}, 110); err == nil {
		t.Error("NaN delta center accepted")
	}
	if _, err := prior.Extend([]geom.Point{{1, 1}}, 0); err == nil {
		t.Error("n=0 accepted")
	}
}
