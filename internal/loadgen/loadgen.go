// Package loadgen drives a DBS server with a mixed multi-tenant
// workload and reports per-tenant latency and availability. It supports
// the two canonical generator shapes: closed-loop tenants (a fixed
// worker pool, each issuing the next request when the last completes —
// throughput self-limits under server slowdown) and open-loop tenants
// (a fixed arrival rate regardless of completions — the shape that
// actually saturates a server, since arrivals do not back off). The
// open-loop tenant is how a load test proves isolation: its arrivals
// keep coming while the closed-loop tenants' latencies show whether the
// weighted-fair scheduler protected them.
package loadgen

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/server"
	"repro/internal/stats"
)

// TenantSpec is one tenant's traffic shape against /v1/sample.
type TenantSpec struct {
	// Tenant is the X-DBS-Tenant header value ("" = default tenant).
	Tenant string
	// Mode is "closed" (Conc workers, think-time zero) or "open"
	// (RPS fixed arrivals).
	Mode string
	// Conc is the closed-loop worker count.
	Conc int
	// RPS is the open-loop arrival rate.
	RPS float64
	// Dataset, Alpha, Size, Kernels, Seeds parameterize the request
	// bodies; Seeds rotates round-robin so cache behaviour is part of
	// the spec (one seed = all hits after warmup, many = cold builds).
	Dataset string
	Alpha   float64
	Size    int
	Kernels int
	Seeds   []uint64
}

// Options configures a Run.
type Options struct {
	// BaseURL is the server under test (no trailing slash).
	BaseURL string
	// Duration is the measurement window.
	Duration time.Duration
	// Specs is the tenant mix.
	Specs []TenantSpec
	// Client overrides http.DefaultClient (e.g. for timeouts).
	Client *http.Client
}

// TenantReport is one tenant's tally over the window. Latency quantiles
// are over successful (200, including degraded) responses only; shed
// and failed requests are availability events, not latency samples.
type TenantReport struct {
	Tenant     string  `json:"tenant"`
	Mode       string  `json:"mode"`
	Sent       int64   `json:"sent"`
	OK         int64   `json:"ok"`
	Degraded   int64   `json:"degraded,omitempty"`
	Shed429    int64   `json:"shed_429,omitempty"`
	Unavail503 int64   `json:"unavail_503,omitempty"`
	Timeout504 int64   `json:"timeout_504,omitempty"`
	Errors     int64   `json:"errors,omitempty"`
	P50ms      float64 `json:"p50_ms"`
	P99ms      float64 `json:"p99_ms"`
	P999ms     float64 `json:"p999_ms"`
	// Availability counts degraded responses as available: the client
	// got a sound (coarser) answer, which is the point of the ladder.
	Availability float64 `json:"availability"`
}

// Report is the whole run.
type Report struct {
	DurationSec float64        `json:"duration_sec"`
	Tenants     []TenantReport `json:"tenants"`
}

// tally accumulates one tenant's outcomes under its own lock.
type tally struct {
	mu        sync.Mutex
	sent, ok  int64
	degraded  int64
	s429      int64
	s503      int64
	s504      int64
	errs      int64
	latencies []float64 // seconds, successes only
}

func (tl *tally) record(status int, degraded bool, d time.Duration, err error) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	tl.sent++
	switch {
	case err != nil:
		tl.errs++
	case status == http.StatusOK:
		tl.ok++
		if degraded {
			tl.degraded++
		}
		tl.latencies = append(tl.latencies, d.Seconds())
	case status == http.StatusTooManyRequests:
		tl.s429++
	case status == http.StatusServiceUnavailable:
		tl.s503++
	case status == http.StatusGatewayTimeout:
		tl.s504++
	default:
		tl.errs++
	}
}

// Run drives the tenant mix for the window and reports per-tenant
// outcome tallies and latency quantiles.
func Run(opts Options) (*Report, error) {
	if len(opts.Specs) == 0 {
		return nil, fmt.Errorf("loadgen: no tenant specs")
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 2*opts.Duration + 10*time.Second}
	}
	tallies := make([]*tally, len(opts.Specs))
	for i := range tallies {
		tallies[i] = &tally{}
	}

	start := time.Now()
	deadline := start.Add(opts.Duration)
	var wg sync.WaitGroup
	for i, spec := range opts.Specs {
		spec := spec
		tl := tallies[i]
		shoot := func(reqIdx int) {
			seed := spec.Seeds[reqIdx%len(spec.Seeds)]
			body := fmt.Sprintf(`{"dataset":%q,"alpha":%g,"size":%d,"kernels":%d,"seed":%d}`,
				spec.Dataset, spec.Alpha, spec.Size, spec.Kernels, seed)
			req, err := http.NewRequest(http.MethodPost, opts.BaseURL+"/v1/sample", bytes.NewReader([]byte(body)))
			if err != nil {
				tl.record(0, false, 0, err)
				return
			}
			req.Header.Set("Content-Type", "application/json")
			if spec.Tenant != "" {
				req.Header.Set(server.TenantHeader, spec.Tenant)
			}
			t0 := time.Now()
			resp, err := client.Do(req)
			if err != nil {
				tl.record(0, false, 0, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			tl.record(resp.StatusCode, resp.Header.Get(server.DegradedHeader) != "", time.Since(t0), nil)
		}
		switch spec.Mode {
		case "closed":
			for w := 0; w < spec.Conc; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for n := w; time.Now().Before(deadline); n += spec.Conc {
						shoot(n)
					}
				}(w)
			}
		case "open":
			if spec.RPS <= 0 {
				return nil, fmt.Errorf("loadgen: open-loop tenant %q needs RPS > 0", spec.Tenant)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				interval := time.Duration(float64(time.Second) / spec.RPS)
				tick := time.NewTicker(interval)
				defer tick.Stop()
				var inner sync.WaitGroup
				for n := 0; ; n++ {
					if !time.Now().Before(deadline) {
						break
					}
					<-tick.C
					inner.Add(1)
					go func(n int) {
						defer inner.Done()
						shoot(n)
					}(n)
				}
				inner.Wait()
			}()
		default:
			return nil, fmt.Errorf("loadgen: tenant %q: unknown mode %q", spec.Tenant, spec.Mode)
		}
	}
	wg.Wait()

	rep := &Report{DurationSec: time.Since(start).Seconds()}
	for i, spec := range opts.Specs {
		tl := tallies[i]
		tr := TenantReport{
			Tenant: spec.Tenant, Mode: spec.Mode,
			Sent: tl.sent, OK: tl.ok, Degraded: tl.degraded,
			Shed429: tl.s429, Unavail503: tl.s503, Timeout504: tl.s504,
			Errors: tl.errs,
		}
		if len(tl.latencies) > 0 {
			tr.P50ms = stats.Quantile(tl.latencies, 0.50) * 1e3
			tr.P99ms = stats.Quantile(tl.latencies, 0.99) * 1e3
			tr.P999ms = stats.Quantile(tl.latencies, 0.999) * 1e3
		}
		if tl.sent > 0 {
			tr.Availability = float64(tl.ok) / float64(tl.sent)
		}
		rep.Tenants = append(rep.Tenants, tr)
	}
	return rep, nil
}
