package loadgen

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// TestRunTalliesPerTenant drives a stub server that answers each tenant
// differently — gold always 200, bronze alternating degraded 200s and
// 429s — and checks the per-tenant bookkeeping: counts land in the right
// buckets, latency quantiles only cover successes, and availability
// counts degraded responses as served.
func TestRunTalliesPerTenant(t *testing.T) {
	var bronzeN atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Header.Get(server.TenantHeader) {
		case "bronze":
			if bronzeN.Add(1)%2 == 0 {
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(http.StatusTooManyRequests)
				return
			}
			w.Header().Set(server.DegradedHeader, "a0")
			w.WriteHeader(http.StatusOK)
		default:
			w.WriteHeader(http.StatusOK)
		}
	}))
	defer ts.Close()

	rep, err := Run(Options{
		BaseURL:  ts.URL,
		Duration: 150 * time.Millisecond,
		Specs: []TenantSpec{
			{Tenant: "gold", Mode: "closed", Conc: 2, Dataset: "d", Alpha: 1, Size: 10, Kernels: 8, Seeds: []uint64{1, 2}},
			{Tenant: "bronze", Mode: "open", RPS: 200, Dataset: "d", Alpha: 1, Size: 10, Kernels: 8, Seeds: []uint64{1}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tenants) != 2 {
		t.Fatalf("tenants = %d, want 2", len(rep.Tenants))
	}
	gold, bronze := rep.Tenants[0], rep.Tenants[1]
	if gold.Tenant != "gold" || bronze.Tenant != "bronze" {
		t.Fatalf("tenant order: %q, %q", gold.Tenant, bronze.Tenant)
	}
	if gold.Sent == 0 || gold.OK != gold.Sent || gold.Availability != 1 {
		t.Errorf("gold = %+v, want all-success", gold)
	}
	if gold.Degraded != 0 || gold.Shed429 != 0 || gold.Errors != 0 {
		t.Errorf("gold has stray outcomes: %+v", gold)
	}
	if gold.P50ms <= 0 || gold.P99ms < gold.P50ms || gold.P999ms < gold.P99ms {
		t.Errorf("gold quantiles not ordered: %+v", gold)
	}
	if bronze.Sent == 0 || bronze.OK == 0 || bronze.Shed429 == 0 {
		t.Errorf("bronze = %+v, want both 200s and 429s", bronze)
	}
	if bronze.Degraded != bronze.OK {
		t.Errorf("bronze degraded = %d, ok = %d: every stub success was degraded", bronze.Degraded, bronze.OK)
	}
	if bronze.OK+bronze.Shed429 != bronze.Sent {
		t.Errorf("bronze buckets don't partition: %+v", bronze)
	}
	if got := float64(bronze.OK) / float64(bronze.Sent); bronze.Availability != got {
		t.Errorf("bronze availability = %v, want %v (degraded counts as served)", bronze.Availability, got)
	}
}

func TestRunRejectsBadSpecs(t *testing.T) {
	if _, err := Run(Options{}); err == nil {
		t.Error("empty spec list accepted")
	}
	base := TenantSpec{Tenant: "x", Dataset: "d", Alpha: 1, Size: 1, Kernels: 1, Seeds: []uint64{1}}
	bad := base
	bad.Mode = "sideways"
	if _, err := Run(Options{BaseURL: "http://127.0.0.1:0", Duration: time.Millisecond, Specs: []TenantSpec{bad}}); err == nil {
		t.Error("unknown mode accepted")
	}
	open := base
	open.Mode = "open"
	if _, err := Run(Options{BaseURL: "http://127.0.0.1:0", Duration: time.Millisecond, Specs: []TenantSpec{open}}); err == nil {
		t.Error("open loop without RPS accepted")
	}
}
