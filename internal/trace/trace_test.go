package trace

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	tr.Begin("x")
	tr.End("x", 1)
	tr.Add("y", 0, time.Millisecond, 2, "note")
	tr.Event("z", "note")
	tr.Eventf("z", "n=%d", 1)
	if got := tr.ID(); got != "" {
		t.Fatalf("nil ID = %q", got)
	}
	if got := tr.Now(); got != 0 {
		t.Fatalf("nil Now = %v", got)
	}
	snap := tr.Finish("/r", 200, "hit")
	if snap.ID != "" || len(snap.Events) != 0 {
		t.Fatalf("nil Finish = %+v", snap)
	}
	var r *Ring
	r.Add(snap)
	if r.Len() != 0 || r.Cap() != 0 || r.Total() != 0 || r.Snapshots() != nil {
		t.Fatal("nil Ring not inert")
	}
}

func TestBeginEndProducesEvent(t *testing.T) {
	tr := New("abc")
	tr.Begin("draw")
	tr.End("draw", 42)
	snap := tr.Finish("/v1/sample", 200, "miss")
	if snap.ID != "abc" || snap.Route != "/v1/sample" || snap.Status != 200 || snap.Cache != "miss" {
		t.Fatalf("snapshot header = %+v", snap)
	}
	if len(snap.Events) != 1 {
		t.Fatalf("events = %d, want 1", len(snap.Events))
	}
	e := snap.Events[0]
	if e.Path != "draw" || e.Points != 42 || e.EndMs < e.StartMs {
		t.Fatalf("event = %+v", e)
	}
	if snap.Orphans != 0 {
		t.Fatalf("orphans = %d", snap.Orphans)
	}
}

func TestNestedBeginEndCollapsesToOneEvent(t *testing.T) {
	tr := New("abc")
	tr.Begin("s")
	tr.Begin("s") // re-entrant
	tr.End("s", 10)
	tr.End("s", 5)
	snap := tr.Finish("", 0, "")
	if len(snap.Events) != 1 {
		t.Fatalf("events = %d, want 1 (nested pairs collapse)", len(snap.Events))
	}
	if snap.Events[0].Points != 15 {
		t.Fatalf("points = %d, want 15", snap.Events[0].Points)
	}
}

func TestSequentialOccurrencesStaySeparate(t *testing.T) {
	tr := New("abc")
	tr.Begin("scan")
	tr.End("scan", 100)
	tr.Begin("scan")
	tr.End("scan", 200)
	snap := tr.Finish("", 0, "")
	if len(snap.Events) != 2 {
		t.Fatalf("events = %d, want 2 (sequential passes are separate)", len(snap.Events))
	}
}

func TestOrphanCounting(t *testing.T) {
	tr := New("abc")
	tr.Begin("a")
	tr.Begin("b")
	tr.End("b", 0)
	snap := tr.Finish("", 0, "")
	if snap.Orphans != 1 {
		t.Fatalf("orphans = %d, want 1 (a left open)", snap.Orphans)
	}
	// Unmatched End is ignored entirely.
	tr2 := New("x")
	tr2.End("never-opened", 3)
	if snap2 := tr2.Finish("", 0, ""); len(snap2.Events) != 0 || snap2.Orphans != 0 {
		t.Fatalf("unmatched end produced %+v", snap2)
	}
}

func TestEventCapAndDropCounter(t *testing.T) {
	tr := New("abc")
	for i := 0; i < MaxEvents+25; i++ {
		tr.Event("e", "n")
	}
	snap := tr.Finish("", 0, "")
	if len(snap.Events) != MaxEvents {
		t.Fatalf("events = %d, want cap %d", len(snap.Events), MaxEvents)
	}
	if snap.Dropped != 25 {
		t.Fatalf("dropped = %d, want 25", snap.Dropped)
	}
}

func TestFinishSealsAndIsOneShot(t *testing.T) {
	tr := New("abc")
	tr.Event("a", "")
	first := tr.Finish("/r", 200, "")
	tr.Event("b", "") // after seal: ignored
	tr.Begin("c")
	tr.End("c", 0)
	if second := tr.Finish("/r", 200, ""); second.ID != "" {
		t.Fatalf("second Finish = %+v, want zero snapshot", second)
	}
	if len(first.Events) != 1 {
		t.Fatalf("first snapshot mutated: %d events", len(first.Events))
	}
}

func TestSpanTreeNesting(t *testing.T) {
	tr := New("abc")
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	// Explicit intervals so the tree is deterministic: a build stage
	// containing a draw containing a scan, plus a cache event whose
	// "cache" parent never records an event of its own.
	tr.Add("scan", ms(12), ms(18), 1000, "")
	tr.Add("draw", ms(11), ms(19), 1000, "")
	tr.Add("server/build/sample", ms(10), ms(20), 0, "")
	tr.Add("cache/sample", ms(9), ms(21), 0, "miss gen=0")
	snap := tr.Finish("/v1/sample", 200, "miss")

	byPath := map[string]SpanJSON{}
	var walk func(depth int, spans []SpanJSON)
	paths := map[string]int{} // path -> depth
	walk = func(depth int, spans []SpanJSON) {
		for _, s := range spans {
			byPath[s.Path] = s
			paths[s.Path] = depth
			walk(depth+1, s.Children)
		}
	}
	walk(0, snap.Spans)

	if paths["cache"] != 0 || !byPath["cache"].Synthetic {
		t.Fatalf("cache container: depth=%d synthetic=%v", paths["cache"], byPath["cache"].Synthetic)
	}
	if paths["cache/sample"] != 1 {
		t.Fatalf("cache/sample depth = %d, want 1", paths["cache/sample"])
	}
	if !byPath["server"].Synthetic || !byPath["server/build"].Synthetic {
		t.Fatal("server and server/build should be synthesized containers")
	}
	if paths["server/build/sample"] != 2 {
		t.Fatalf("server/build/sample depth = %d, want 2", paths["server/build/sample"])
	}
	// draw and scan nest by path, not containment alone: they are roots
	// of their own paths.
	if paths["draw"] != 0 {
		t.Fatalf("draw depth = %d, want 0 (top-level path)", paths["draw"])
	}
	if paths["scan"] != 0 {
		t.Fatalf("scan depth = %d, want 0 (top-level path)", paths["scan"])
	}
}

func TestSpanTreeSiblingOccurrences(t *testing.T) {
	tr := New("abc")
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	// Two attempts of one stage; a child event inside the second only.
	tr.Add("stage/inner", ms(25), ms(28), 0, "")
	tr.Add("stage", ms(0), ms(10), 0, "")
	tr.Add("stage", ms(20), ms(30), 0, "")
	snap := tr.Finish("", 0, "")
	if len(snap.Spans) != 2 {
		t.Fatalf("roots = %d, want 2 stage occurrences", len(snap.Spans))
	}
	var withChild int
	for _, s := range snap.Spans {
		if s.Path != "stage" {
			t.Fatalf("unexpected root %q", s.Path)
		}
		if len(s.Children) == 1 && s.Children[0].Path == "stage/inner" {
			if s.StartMs != 20 {
				t.Fatalf("inner attached to occurrence starting %v, want 20", s.StartMs)
			}
			withChild++
		}
	}
	if withChild != 1 {
		t.Fatalf("inner event attached to %d occurrences, want exactly the containing one", withChild)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(nil) != nil {
		t.Fatal("FromContext(nil) != nil")
	}
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("empty context carries a trace")
	}
	if NewContext(ctx, nil) != ctx {
		t.Fatal("NewContext(nil trace) should return ctx unchanged")
	}
	tr := New("abc")
	if got := FromContext(NewContext(ctx, tr)); got != tr {
		t.Fatalf("round trip = %p, want %p", got, tr)
	}
}

func TestIDSourceDeterministicWhenSeeded(t *testing.T) {
	a, b := NewIDSource(42), NewIDSource(42)
	for i := 0; i < 10; i++ {
		ia, ib := a.Next(), b.Next()
		if ia != ib {
			t.Fatalf("step %d: %q != %q", i, ia, ib)
		}
		if len(ia) != 16 || strings.Trim(ia, "0123456789abcdef") != "" {
			t.Fatalf("ID %q is not 16 hex digits", ia)
		}
	}
	if NewIDSource(42).Next() == NewIDSource(43).Next() {
		t.Fatal("different seeds produced the same first ID")
	}
	// Seed 0 is random: two sources should not collide on their first ID.
	if NewIDSource(0).Next() == NewIDSource(0).Next() {
		t.Fatal("random seeding collided (astronomically unlikely)")
	}
}

func TestSampleID(t *testing.T) {
	src := NewIDSource(7)
	ids := make([]string, 2000)
	for i := range ids {
		ids[i] = src.Next()
	}
	for _, id := range ids {
		if SampleID(id, 1) != true {
			t.Fatal("rate 1 must keep everything")
		}
		if SampleID(id, 0) != false {
			t.Fatal("rate 0 must keep nothing")
		}
		if SampleID(id, 0.3) != SampleID(id, 0.3) {
			t.Fatal("sampling decision not deterministic")
		}
		// Monotone in rate: kept at 0.3 implies kept at 0.8.
		if SampleID(id, 0.3) && !SampleID(id, 0.8) {
			t.Fatal("sampling not monotone in rate")
		}
	}
	kept := 0
	for _, id := range ids {
		if SampleID(id, 0.3) {
			kept++
		}
	}
	if kept < 450 || kept > 750 {
		t.Fatalf("rate 0.3 kept %d of 2000 (want roughly 600)", kept)
	}
	// Non-hex IDs fall back to string hashing, still deterministic.
	if SampleID("not-hex!", 0.5) != SampleID("not-hex!", 0.5) {
		t.Fatal("non-hex sampling not deterministic")
	}
}

func TestRingBoundsAndOrder(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Add(Snapshot{ID: string(rune('a' + i))})
	}
	if r.Len() != 4 || r.Cap() != 4 || r.Total() != 10 {
		t.Fatalf("len=%d cap=%d total=%d", r.Len(), r.Cap(), r.Total())
	}
	got := r.Snapshots()
	want := []string{"j", "i", "h", "g"} // newest first
	for i, s := range got {
		if s.ID != want[i] {
			t.Fatalf("snapshot %d = %q, want %q", i, s.ID, want[i])
		}
	}
	if NewRing(0).Cap() != 1 {
		t.Fatal("capacity should clamp to 1")
	}
}

func TestTraceConcurrentUse(t *testing.T) {
	tr := New("abc")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			path := "worker"
			for i := 0; i < 200; i++ {
				tr.Begin(path)
				tr.Eventf("fault", "g=%d i=%d", g, i)
				tr.End(path, 1)
			}
		}(g)
	}
	wg.Wait()
	snap := tr.Finish("", 0, "")
	if snap.Orphans != 0 {
		t.Fatalf("orphans = %d after matched concurrent use", snap.Orphans)
	}
	if len(snap.Events)+snap.Dropped != 8*400 {
		// 8 goroutines × (≤200 worker events after collapse + 200 faults):
		// worker Begin/End pairs may interleave across goroutines and
		// collapse, so only the total recorded-plus-dropped is bounded.
		if len(snap.Events) > MaxEvents {
			t.Fatalf("events %d exceed cap", len(snap.Events))
		}
	}
}
