package trace

import "context"

// ctxKey is the private context key for the request's trace.
type ctxKey struct{}

// NewContext returns a context carrying t. A nil trace returns ctx
// unchanged, so callers can attach unconditionally.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil. Safe on a nil
// context — the disabled path costs one value lookup at most.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
